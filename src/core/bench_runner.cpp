#include "core/bench_runner.h"

#include <cstdio>
#include <vector>

#include "common/bench_report.h"
#include "common/thread_pool.h"
#include "core/designs.h"
#include "core/dse.h"
#include "core/frontend_cache.h"
#include "ir/analysis.h"
#include "ir/deps.h"
#include "obs/metrics.h"
#include "sched/force_directed.h"
#include "sched/schedule.h"
#include "sta/sta.h"

namespace mphls {

namespace {

/// Deterministic synthetic dataflow block for the scheduler bench: layers
/// of adds/subs with a multiply every few ops, operands drawn a fixed
/// distance back so frames overlap heavily (the force-directed worst-ish
/// case). Unit latency, single block.
Function syntheticDfg(int numOps) {
  Function fn("bench_dfg");
  BlockId b = fn.addBlock("entry");
  std::vector<ValueId> pool;
  for (int i = 0; i < 4; ++i) {
    // Sequential append: GCC 12 -Wrestrict -O3 false positive on the
    // temporary chain (same story as obs/vcd.cpp).
    std::string pname = "p";
    pname += std::to_string(i);
    pool.push_back(fn.emitRead(b, fn.addInput(pname, 16)));
  }
  std::uint64_t state = 0x9E3779B97F4A7C15ull;  // xorshift, fixed seed
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int i = 0; i < numOps; ++i) {
    ValueId a = pool[next() % pool.size()];
    ValueId c = pool[next() % pool.size()];
    OpKind k = (next() % 4 == 0) ? OpKind::Mul
               : (next() % 2 == 0) ? OpKind::Add
                                   : OpKind::Sub;
    pool.push_back(fn.emitBinary(b, k, a, c));
  }
  PortId out = fn.addOutput("y", 16);
  fn.emitWrite(b, out, pool.back());
  fn.setReturn(b);
  return fn;
}

bool sameSchedule(const BlockSchedule& a, const BlockSchedule& b) {
  return a.numSteps == b.numSteps && a.step == b.step;
}

/// Time the pre-PR DSE loop: every point re-parses, re-lowers and
/// re-optimizes the source before synthesizing. The frontend-cache speedup
/// in the report is measured against this.
double timeLegacySweep(const std::string& source, int points, int repeats) {
  return BenchReporter::timeBest(repeats, [&] {
    for (int n = 1; n <= points; ++n) {
      SynthesisOptions opts;
      opts.scheduler = SchedulerKind::List;
      opts.resources = ResourceLimits::universalSet(n);
      Synthesizer synth(opts);
      (void)synth.synthesizeSource(source);
    }
  });
}

double timeSweep(const std::string& source, int points, int jobs,
                 int repeats) {
  return BenchReporter::timeBest(repeats, [&] {
    SynthesisOptions base;
    base.jobs = jobs;
    (void)exploreResourceSweep(source, points, base);
  });
}

}  // namespace

int runBenchSuite(const BenchOptions& opts) {
  const std::string sep = opts.outDir.empty() || opts.outDir.back() == '/'
                              ? ""
                              : "/";
  const std::string src = designs::diffeqSource();
  const int jobs = opts.jobs < 1 ? ThreadPool::hardwareConcurrency()
                                 : opts.jobs;

  // ---------------------------------------------------------------- DSE
  BenchReporter dse("dse_resource_sweep");
  dse.root()["design"] = "diffeq";
  dse.root()["points"] = opts.points;
  dse.root()["jobs"] = jobs;
  dse.root()["repeats"] = opts.repeats;
  dse.root()["hardware_threads"] = ThreadPool::hardwareConcurrency();

  // Determinism first (also warms the frontend cache): the serial and the
  // parallel sweep must agree byte for byte, Verilog included.
  SynthesisOptions detBase;
  detBase.dseCaptureVerilog = true;
  detBase.jobs = 1;
  auto serialPts = exploreResourceSweep(src, opts.points, detBase);
  detBase.jobs = jobs;
  auto parallelPts = exploreResourceSweep(src, opts.points, detBase);
  bool sameVerilog = serialPts.size() == parallelPts.size();
  for (std::size_t i = 0; sameVerilog && i < serialPts.size(); ++i)
    sameVerilog = samePoint(serialPts[i], parallelPts[i]);
  dse.root()["deterministic"] =
      renderPoints(serialPts) == renderPoints(parallelPts);
  dse.root()["verilog_identical"] = sameVerilog;

  const double legacySec = timeLegacySweep(src, opts.points, opts.repeats);
  const double serialSec = timeSweep(src, opts.points, 1, opts.repeats);
  const double parallelSec = timeSweep(src, opts.points, jobs, opts.repeats);
  dse.root()["wall_seconds_legacy"] = legacySec;
  dse.root()["wall_seconds_jobs1"] = serialSec;
  dse.root()["wall_seconds"] = parallelSec;
  dse.root()["points_per_sec_jobs1"] =
      serialSec > 0 ? opts.points / serialSec : 0.0;
  dse.root()["points_per_sec"] =
      parallelSec > 0 ? opts.points / parallelSec : 0.0;
  dse.root()["speedup_vs_1_thread"] =
      parallelSec > 0 ? serialSec / parallelSec : 0.0;
  dse.root()["speedup_vs_legacy"] =
      parallelSec > 0 ? legacySec / parallelSec : 0.0;

  // Per-point wall times from the determinism runs (diagnostics).
  JsonValue& ptArr = dse.root()["point_wall_seconds"] = JsonValue::array();
  for (const auto& p : parallelPts) ptArr.push(p.wallSeconds);

  // Which thread ran each point: the pool worker index plus its tracer
  // track identity (named "dse-<worker>" by the pool, "thread-0" for the
  // serial path on the caller's thread).
  JsonValue& thrArr = dse.root()["point_threads"] = JsonValue::array();
  for (const auto& p : parallelPts) {
    JsonValue t = JsonValue::object();
    t["worker"] = p.threadId;
    t["tid"] = p.traceTid;
    t["name"] = p.threadName;
    thrArr.push(std::move(t));
  }

  // Stage breakdown of one representative synthesis (2 universal FUs).
  {
    SynthesisOptions o;
    o.scheduler = SchedulerKind::List;
    o.resources = ResourceLimits::universalSet(2);
    Synthesizer synth(o);
    SynthesisResult r = synth.synthesizeSource(src);
    JsonValue& st = dse.root()["stage_seconds"] = JsonValue::object();
    st["optimize"] = r.stages.optimize;
    st["schedule"] = r.stages.schedule;
    st["allocate"] = r.stages.allocate;
    st["control"] = r.stages.control;
    st["estimate"] = r.stages.estimate;
    st["check"] = r.stages.check;
    st["prove"] = r.stages.prove;
    st["total"] = r.stages.total();
  }

  // Chippe + time sweep, for coverage of all three DSE styles.
  {
    SynthesisOptions base;
    base.jobs = jobs;
    WallTimer t;
    auto chippe = chippeIterate(src, serialPts.back().latencySteps, 8, base);
    dse.root()["chippe_wall_seconds"] = t.seconds();
    dse.root()["chippe_points"] = chippe.size();
    t.reset();
    auto times = exploreTimeSweep(src, 4, base);
    dse.root()["time_sweep_wall_seconds"] = t.seconds();
    dse.root()["time_sweep_points"] = times.size();
  }

  // Unified metrics: the same registry snapshot --stats would export, so
  // bench JSON and metrics JSON can never disagree on the counters.
  {
    const auto snap = obs::MetricsRegistry::global().snapshot();
    JsonValue& metrics = dse.root()["metrics"] = JsonValue::object();
    JsonValue& counters = metrics["counters"] = JsonValue::object();
    for (const auto& [name, v] : snap.counters)
      counters[name] = (std::size_t)v;
    JsonValue& gauges = metrics["gauges"] = JsonValue::object();
    for (const auto& [name, v] : snap.gauges) gauges[name] = v;
    JsonValue& hists = metrics["histograms"] = JsonValue::object();
    for (const auto& [name, h] : snap.histograms) {
      JsonValue hv = JsonValue::object();
      hv["count"] = (std::size_t)h.count;
      hv["sum"] = h.sum;
      hv["min"] = h.min;
      hv["max"] = h.max;
      hv["mean"] = h.mean();
      hists[name] = std::move(hv);
    }
  }

  const std::string dsePath = opts.outDir + sep + "BENCH_dse.json";
  if (!dse.writeFile(dsePath)) {
    std::fprintf(stderr, "mphls bench: cannot write %s\n", dsePath.c_str());
    return 1;
  }
  if (!opts.quiet)
    std::printf("wrote %s (speedup vs 1 thread: %.2fx, vs legacy: %.2fx)\n",
                dsePath.c_str(), serialSec / parallelSec,
                legacySec / parallelSec);

  // ---------------------------------------------------------- scheduler
  BenchReporter sched("force_directed_incremental");
  JsonValue& cases = sched.root()["cases"] = JsonValue::array();
  double worstSpeedup = -1;
  bool allEqual = true;

  struct Case {
    std::string name;
    Function fn;
    int slack;
  };
  std::vector<Case> caseList;
  caseList.push_back({"synthetic16", syntheticDfg(16), 2});
  caseList.push_back(
      {"synthetic" + std::to_string(opts.schedOps),
       syntheticDfg(opts.schedOps), 3});
  {
    auto fn =
        FrontendCache::global().get(src, "", SynthesisOptions{}.opt);
    caseList.push_back({"diffeq", fn->clone(), 2});
  }

  for (const auto& c : caseList) {
    const Block& blk = c.fn.block(c.fn.entry());
    BlockDeps deps(c.fn, blk);
    LevelInfo li = computeLevels(deps);
    const int horizon = li.criticalLength + c.slack;

    BlockSchedule inc = forceDirectedSchedule(deps, horizon);
    BlockSchedule ref = forceDirectedScheduleReference(deps, horizon);
    const bool equal = sameSchedule(inc, ref);
    allEqual = allEqual && equal;

    const double incSec = BenchReporter::timeBest(
        opts.repeats, [&] { (void)forceDirectedSchedule(deps, horizon); });
    const double refSec = BenchReporter::timeBest(opts.repeats, [&] {
      (void)forceDirectedScheduleReference(deps, horizon);
    });
    const double speedup = incSec > 0 ? refSec / incSec : 0.0;
    if (worstSpeedup < 0 || speedup < worstSpeedup) worstSpeedup = speedup;

    JsonValue cs = JsonValue::object();
    cs["name"] = c.name;
    cs["ops"] = deps.numOps();
    cs["horizon"] = horizon;
    cs["incremental_seconds"] = incSec;
    cs["reference_seconds"] = refSec;
    cs["speedup"] = speedup;
    cs["equal"] = equal;
    cases.push(std::move(cs));
    if (!opts.quiet)
      std::printf("sched %-12s %3zu ops: incremental %.2fx vs reference "
                  "(%s)\n",
                  c.name.c_str(), deps.numOps(), speedup,
                  equal ? "identical schedules" : "SCHEDULES DIFFER");
  }
  sched.root()["all_equal"] = allEqual;
  sched.root()["min_speedup"] = worstSpeedup;
  sched.root()["repeats"] = opts.repeats;

  const std::string schedPath = opts.outDir + sep + "BENCH_sched.json";
  if (!sched.writeFile(schedPath)) {
    std::fprintf(stderr, "mphls bench: cannot write %s\n",
                 schedPath.c_str());
    return 1;
  }
  if (!opts.quiet) std::printf("wrote %s\n", schedPath.c_str());
  return 0;
}

int runStaBenchSuite(const BenchOptions& opts) {
  const std::string sep = opts.outDir.empty() || opts.outDir.back() == '/'
                              ? ""
                              : "/";
  WallTimer timer;
  BenchReporter rep("sta_analysis");
  rep.root()["repeats"] = opts.repeats;
  JsonValue& arr = rep.root()["designs"] = JsonValue::array();

  double worstSlack = 0.0;
  bool closed = true;
  for (const auto& d : designs::all()) {
    Synthesizer synth;
    SynthesisResult res = synth.synthesizeSource(d.source);

    sta::StaResult r = sta::runSta(res.design);
    const double sec = BenchReporter::timeBest(
        opts.repeats, [&] { (void)sta::runSta(res.design); });

    JsonValue e = JsonValue::object();
    e["name"] = d.name;
    e["states"] = r.totalStates;
    e["reachable_states"] = r.reachableStates;
    e["endpoints"] = r.endpointCount;
    e["clock_ns"] = r.clockNs;
    e["cycle_time"] = r.cycleTime;
    e["estimated_cycle_time"] = r.estimatedCycleTime;
    e["worst_slack"] = r.worstSlack;
    e["critical_state"] = r.criticalState;
    e["critical_path_points"] =
        r.paths.empty() ? (std::size_t)0 : r.paths.front().points.size();
    e["structural_cycle_time"] = r.structuralCycleTime;
    e["false_path_endpoints"] = r.falsePathEndpoints;
    e["analysis_seconds"] = sec;
    arr.push(std::move(e));

    if (r.worstSlack < worstSlack) worstSlack = r.worstSlack;
    // At its own estimated clock every builtin must close timing.
    if (r.worstSlack < -1e-9 || r.combLoop) closed = false;
    if (!opts.quiet)
      std::printf("sta %-12s %2zu states, %3zu endpoints: cycle %.3f ns, "
                  "slack %+.3f, %.2f us/run\n",
                  d.name, r.reachableStates, r.endpointCount,
                  r.cycleTime, r.worstSlack, sec * 1e6);
  }
  rep.root()["all_closed"] = closed;
  rep.root()["worst_slack"] = worstSlack;
  rep.root()["wall_seconds"] = timer.seconds();

  const std::string staPath = opts.outDir + sep + "BENCH_sta.json";
  if (!rep.writeFile(staPath)) {
    std::fprintf(stderr, "mphls bench: cannot write %s\n", staPath.c_str());
    return 1;
  }
  if (!opts.quiet) std::printf("wrote %s\n", staPath.c_str());
  return closed ? 0 : 1;
}

}  // namespace mphls
