// Built-in benchmark designs (BDL sources), used by the examples, the test
// suite and every bench binary:
//   - sqrt:   the paper's Fig. 1 Newton's-method square root;
//   - diffeq: the HAL differential-equation solver (y'' + 3xy' + 3y = 0),
//             the classic benchmark of the paper's force-directed
//             scheduling reference [22];
//   - ewf:    a fifth-order elliptic wave filter body (representative
//             dataflow: long adder chains with a few multiplies — the
//             standard "EWF" workload shape of the era's literature);
//   - fir8:   an 8-tap FIR filter (wide, flat parallelism);
//   - gcd:    Euclid's algorithm (data-dependent control flow).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace mphls::designs {

[[nodiscard]] const char* sqrtSource();
[[nodiscard]] const char* diffeqSource();
[[nodiscard]] const char* ewfSource();
[[nodiscard]] const char* fir8Source();
[[nodiscard]] const char* gcdSource();

struct NamedDesign {
  const char* name;
  const char* source;
  /// A representative input assignment (port name -> value).
  std::map<std::string, std::uint64_t> sampleInputs;
};

/// All built-in designs with representative stimulus.
[[nodiscard]] const std::vector<NamedDesign>& all();

}  // namespace mphls::designs
