#include "core/bench_check.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/bench_report.h"
#include "common/json_reader.h"

namespace mphls {

namespace {

/// How one metric is judged against its baseline.
enum class RuleKind {
  True,          ///< current must be boolean true (baseline unused)
  ZeroInt,       ///< current must be exactly 0 (baseline unused)
  NearZero,      ///< |current| <= slack (baseline unused)
  LowerBetter,   ///< current <= baseline * factor + slack
  HigherBetter,  ///< current >= baseline / factor - slack
  Equal,         ///< current == baseline exactly (config invariants)
};

struct Rule {
  const char* file;    ///< report filename, e.g. "BENCH_dse.json"
  const char* path;    ///< dotted path into the report
  RuleKind kind;
  double factor = 1;   ///< tolerance band multiplier
  double slack = 0;    ///< absolute allowance on top of the band
};

// Timing bands are deliberately loose (2-3x + absolute slack): CI runs
// on a shared single-CPU container where wall time jitters freely. The
// gate exists to catch order-of-magnitude regressions and broken
// invariants, not to police noise.
constexpr Rule kRules[] = {
    {"BENCH_dse.json", "deterministic", RuleKind::True},
    {"BENCH_dse.json", "verilog_identical", RuleKind::True},
    {"BENCH_dse.json", "points", RuleKind::Equal},
    {"BENCH_dse.json", "wall_seconds", RuleKind::LowerBetter, 2.5, 1.0},
    {"BENCH_dse.json", "speedup_vs_legacy", RuleKind::HigherBetter, 2.0, 0.2},
    {"BENCH_sched.json", "all_equal", RuleKind::True},
    {"BENCH_sched.json", "min_speedup", RuleKind::HigherBetter, 2.0, 0.2},
    {"BENCH_sim.json", "behav_speedup_geomean", RuleKind::HigherBetter, 2.0,
     0.2},
    {"BENCH_sim.json", "rtl_speedup_geomean", RuleKind::HigherBetter, 2.0,
     0.2},
    {"BENCH_sta.json", "all_closed", RuleKind::True},
    // Timing-model output, not wall time: deterministic, so exact.
    {"BENCH_sta.json", "worst_slack", RuleKind::Equal},
    {"BENCH_sta.json", "wall_seconds", RuleKind::LowerBetter, 2.5, 1.0},
    {"BENCH_serve.json", "errors.transport", RuleKind::ZeroInt},
    {"BENCH_serve.json", "errors.http", RuleKind::ZeroInt},
    {"BENCH_serve.json", "errors.invalid_json", RuleKind::ZeroInt},
    {"BENCH_serve.json", "latency.p99_ms", RuleKind::LowerBetter, 3.0, 25.0},
    {"BENCH_serve.json", "requests_per_second", RuleKind::HigherBetter, 3.0,
     1.0},
    {"BENCH_serve.json", "cache.hit_rate", RuleKind::HigherBetter, 2.0, 0.05},
};

constexpr const char* kReportFiles[] = {
    "BENCH_dse.json", "BENCH_sched.json", "BENCH_sim.json", "BENCH_sta.json",
    "BENCH_serve.json"};

const char* ruleKindName(RuleKind k) {
  switch (k) {
    case RuleKind::True: return "true";
    case RuleKind::ZeroInt: return "zero";
    case RuleKind::NearZero: return "near_zero";
    case RuleKind::LowerBetter: return "lower_better";
    case RuleKind::HigherBetter: return "higher_better";
    case RuleKind::Equal: return "equal";
  }
  return "?";
}

std::unique_ptr<json::Node> loadJson(const std::string& path) {
  std::ifstream in(path);
  if (!in) return nullptr;
  std::ostringstream ss;
  ss << in.rdbuf();
  return json::parse(ss.str());
}

/// Walk a dotted path ("latency.p99_ms") through nested objects.
const json::Node* lookup(const json::Node& root, std::string_view path) {
  const json::Node* n = &root;
  std::size_t pos = 0;
  while (pos <= path.size()) {
    std::size_t dot = path.find('.', pos);
    if (dot == std::string_view::npos) dot = path.size();
    n = n->get(path.substr(pos, dot - pos));
    if (n == nullptr) return nullptr;
    pos = dot + 1;
  }
  return n;
}

struct CheckResult {
  const Rule* rule = nullptr;
  bool pass = false;
  std::string detail;  ///< human-readable pass/fail explanation
  double current = 0;
  double baseline = 0;
  bool haveBaseline = false;
};

CheckResult evaluate(const Rule& rule, const json::Node& report,
                     const json::Node* baseline) {
  CheckResult r;
  r.rule = &rule;
  const json::Node* cur = lookup(report, rule.path);
  if (cur == nullptr) {
    r.detail = "missing in report";
    return r;
  }
  char buf[160];
  switch (rule.kind) {
    case RuleKind::True:
      r.pass = cur->isBool() && cur->boolean();
      r.detail = r.pass ? "true" : "expected true";
      return r;
    case RuleKind::ZeroInt:
      r.current = cur->number(-1);
      r.pass = cur->isNumber() && r.current == 0;
      std::snprintf(buf, sizeof buf, "%g (expected 0)", r.current);
      r.detail = r.pass ? "0" : buf;
      return r;
    case RuleKind::NearZero:
      r.current = cur->number();
      r.pass = cur->isNumber() && r.current >= -rule.slack &&
               r.current <= rule.slack;
      std::snprintf(buf, sizeof buf, "%g (|x| <= %g)", r.current, rule.slack);
      r.detail = buf;
      return r;
    default:
      break;
  }
  // Baseline-relative kinds from here on.
  if (!cur->isNumber()) {
    r.detail = "not a number in report";
    return r;
  }
  r.current = cur->number();
  const json::Node* base =
      baseline != nullptr ? lookup(*baseline, rule.path) : nullptr;
  if (base == nullptr || !base->isNumber()) {
    r.detail = "no baseline";
    return r;
  }
  r.haveBaseline = true;
  r.baseline = base->number();
  double limit = 0;
  switch (rule.kind) {
    case RuleKind::LowerBetter:
      limit = r.baseline * rule.factor + rule.slack;
      r.pass = r.current <= limit;
      std::snprintf(buf, sizeof buf, "%g vs baseline %g (limit <= %g)",
                    r.current, r.baseline, limit);
      break;
    case RuleKind::HigherBetter:
      limit = r.baseline / rule.factor - rule.slack;
      r.pass = r.current >= limit;
      std::snprintf(buf, sizeof buf, "%g vs baseline %g (limit >= %g)",
                    r.current, r.baseline, limit);
      break;
    case RuleKind::Equal:
      r.pass = r.current == r.baseline;
      std::snprintf(buf, sizeof buf, "%g vs baseline %g (exact)", r.current,
                    r.baseline);
      break;
    default:
      break;
  }
  r.detail = buf;
  return r;
}

std::string findReport(const std::vector<std::string>& dirs,
                       const char* file) {
  for (const std::string& d : dirs) {
    const std::string path = d.empty() ? file : d + "/" + file;
    std::ifstream in(path);
    if (in) return path;
  }
  return "";
}

}  // namespace

int runBenchCheck(const BenchCheckOptions& opts) {
  JsonValue verdict = JsonValue::object();
  JsonValue files = JsonValue::array();
  int comparedFiles = 0;
  int passed = 0;
  int failed = 0;
  int skippedNoBaseline = 0;

  for (const char* file : kReportFiles) {
    const std::string reportPath = findReport(opts.inDirs, file);
    JsonValue fj = JsonValue::object();
    fj["file"] = std::string(file);
    if (reportPath.empty()) {
      fj["status"] = std::string("not_found");
      files.push(std::move(fj));
      continue;
    }
    auto report = loadJson(reportPath);
    if (!report) {
      fj["status"] = std::string("unreadable");
      files.push(std::move(fj));
      std::fprintf(stderr, "bench --check: cannot parse %s\n",
                   reportPath.c_str());
      ++failed;
      continue;
    }
    auto baseline = loadJson(opts.baselineDir + "/" + file);
    if (!baseline && !opts.quiet)
      std::fprintf(stderr,
                   "bench --check: no baseline %s/%s "
                   "(baseline-relative checks skipped)\n",
                   opts.baselineDir.c_str(), file);
    ++comparedFiles;
    fj["status"] = std::string("compared");
    fj["report"] = reportPath;
    fj["baseline"] = static_cast<bool>(baseline);
    JsonValue checks = JsonValue::array();
    for (const Rule& rule : kRules) {
      if (std::string_view(rule.file) != file) continue;
      const CheckResult r = evaluate(rule, *report, baseline.get());
      const bool baselineRelative = rule.kind == RuleKind::LowerBetter ||
                                    rule.kind == RuleKind::HigherBetter ||
                                    rule.kind == RuleKind::Equal;
      JsonValue cj = JsonValue::object();
      cj["metric"] = std::string(rule.path);
      cj["kind"] = std::string(ruleKindName(rule.kind));
      if (baselineRelative && !r.haveBaseline) {
        cj["status"] = std::string("skipped");
        cj["detail"] = r.detail;
        ++skippedNoBaseline;
      } else {
        cj["status"] = std::string(r.pass ? "pass" : "fail");
        cj["detail"] = r.detail;
        if (r.pass) ++passed; else ++failed;
        if (!opts.quiet || !r.pass)
          std::printf("%-5s %s %s: %s\n", r.pass ? "ok" : "FAIL", file,
                      rule.path, r.detail.c_str());
      }
      checks.push(std::move(cj));
    }
    fj["checks"] = std::move(checks);
    files.push(std::move(fj));
  }

  const bool ok = failed == 0 && comparedFiles > 0;
  verdict["files"] = std::move(files);
  verdict["compared_files"] = comparedFiles;
  verdict["passed"] = passed;
  verdict["failed"] = failed;
  verdict["skipped_no_baseline"] = skippedNoBaseline;
  verdict["ok"] = ok;
  if (!opts.outFile.empty()) {
    std::ofstream out(opts.outFile);
    if (out) out << verdict.dump();
  }
  if (comparedFiles == 0)
    std::fprintf(stderr,
                 "bench --check: no BENCH_*.json found in the input "
                 "directories\n");
  if (!opts.quiet)
    std::printf("bench --check: %d file(s), %d passed, %d failed, "
                "%d skipped -> %s\n",
                comparedFiles, passed, failed, skippedNoBaseline,
                ok ? "OK" : "REGRESSED");
  return ok ? 0 : 1;
}

}  // namespace mphls
