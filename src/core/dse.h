// Design-space exploration (Sections 1.2 and 3.1.1).
//
// "A good synthesis system can produce several designs for the same
// specification in a reasonable amount of time. This allows the developer
// to explore different trade-offs between cost, speed, power and so on."
//
// Three interaction styles between scheduling and allocation are provided,
// mirroring the paper's taxonomy:
//   - fixed-limit sweep: "set some limit on the number of functional units
//     available and then schedule" (Facet / early DAA / Flamel), swept over
//     a range of limits;
//   - Chippe-style feedback: "first choosing a resource limit, then
//     scheduling, then changing the limit based on the results of the
//     scheduling, rescheduling and so on until a satisfactory design has
//     been found";
//   - HAL-style time sweep: force-directed scheduling under successively
//     relaxed time constraints, reading off the implied allocation.
#pragma once

#include <vector>

#include "core/synthesizer.h"

namespace mphls {

struct DsePoint {
  std::string label;       ///< e.g. "2 FUs" or "11 steps"
  int limit = 0;           ///< FU limit or time constraint driving the point
  int latencySteps = 0;    ///< static one-pass latency
  double cycleTime = 0;
  double area = 0;
  bool pareto = false;     ///< on the area/latency Pareto front

  [[nodiscard]] double executionTime() const {
    return latencySteps * cycleTime;
  }
};

/// Mark the Pareto-optimal points (minimal area for their latency class).
void markPareto(std::vector<DsePoint>& points);

/// Fixed-limit sweep: synthesize with 1..maxUniversalFus universal units.
[[nodiscard]] std::vector<DsePoint> exploreResourceSweep(
    const std::string& source, int maxUniversalFus,
    SynthesisOptions base = {});

/// HAL-style: force-directed with time constraints from the critical
/// length to critical + extraSlack steps (per block, applied uniformly).
[[nodiscard]] std::vector<DsePoint> exploreTimeSweep(
    const std::string& source, int extraSlack, SynthesisOptions base = {});

/// Chippe-style feedback: grow the FU budget until the latency target is
/// met (or the budget cap is reached); returns the visited points, last
/// one being the accepted design.
[[nodiscard]] std::vector<DsePoint> chippeIterate(const std::string& source,
                                                  int targetLatency,
                                                  int maxUniversalFus = 8,
                                                  SynthesisOptions base = {});

}  // namespace mphls
