// Design-space exploration (Sections 1.2 and 3.1.1).
//
// "A good synthesis system can produce several designs for the same
// specification in a reasonable amount of time. This allows the developer
// to explore different trade-offs between cost, speed, power and so on."
//
// Three interaction styles between scheduling and allocation are provided,
// mirroring the paper's taxonomy:
//   - fixed-limit sweep: "set some limit on the number of functional units
//     available and then schedule" (Facet / early DAA / Flamel), swept over
//     a range of limits;
//   - Chippe-style feedback: "first choosing a resource limit, then
//     scheduling, then changing the limit based on the results of the
//     scheduling, rescheduling and so on until a satisfactory design has
//     been found";
//   - HAL-style time sweep: force-directed scheduling under successively
//     relaxed time constraints, reading off the implied allocation.
//
// Throughput model: each entry point compiles and optimizes the source
// exactly once (core/frontend_cache.h), hands every sweep point a clone of
// the cached IR, and synthesizes the points concurrently on a work-stealing
// pool sized by SynthesisOptions::jobs (common/thread_pool.h). The sweeps
// are embarrassingly parallel; Chippe's feedback loop is inherently
// sequential but speculatively pre-synthesizes limit+1 while the current
// limit is being evaluated. Results are deterministic: points land in
// index order and markPareto is input-order independent, so the returned
// vector — and any Verilog captured per point — is identical at every
// thread count.
#pragma once

#include <string>
#include <vector>

#include "core/synthesizer.h"

namespace mphls {

struct DsePoint {
  std::string label;       ///< e.g. "2 FUs" or "11 steps"
  int limit = 0;           ///< FU limit or time constraint driving the point
  int latencySteps = 0;    ///< static one-pass latency
  double cycleTime = 0;
  double area = 0;
  bool pareto = false;     ///< on the area/latency Pareto front

  // Diagnostics, excluded from renderPoints and equality: which worker
  // synthesized the point and how long it took. These legitimately differ
  // between runs and thread counts. wallSeconds is measured by the same
  // "dse.point" TraceSpan that emits the point into --trace output.
  double wallSeconds = 0;  ///< backend synthesis wall time for this point
  int threadId = 0;        ///< pool worker index (0 on the serial path)
  int traceTid = 0;        ///< obs::Tracer track id of the executing thread
  std::string threadName;  ///< tracer track name, e.g. "dse-2"

  /// Emitted Verilog for the point's design; filled only when
  /// SynthesisOptions::dseCaptureVerilog is set and the latency model is
  /// unit (the emitter's precondition). Deterministic across thread counts.
  std::string verilog;

  [[nodiscard]] double executionTime() const {
    return latencySteps * cycleTime;
  }
};

/// True when the deterministic fields (label, limit, latency, cycle time,
/// area, pareto flag, captured Verilog) of both points agree.
[[nodiscard]] bool samePoint(const DsePoint& a, const DsePoint& b);

/// Render the deterministic fields of every point, one line each — the
/// byte-comparison surface for the "identical at any thread count"
/// guarantee, and the table body printed by `mphls --sweep`.
[[nodiscard]] std::string renderPoints(const std::vector<DsePoint>& points);

/// Mark the Pareto-optimal points (minimal area for their latency class).
/// Order independent and stable under ties: the marking depends only on
/// the multiset of (label, latency, area) — points are ranked by latency,
/// then area, then label — so serial and parallel sweeps print
/// identically. Points with exactly equal latency and area are either all
/// on the front or all off it.
void markPareto(std::vector<DsePoint>& points);

/// Fixed-limit sweep: synthesize with 1..maxUniversalFus universal units.
/// Points are synthesized concurrently per `base.jobs`.
[[nodiscard]] std::vector<DsePoint> exploreResourceSweep(
    const std::string& source, int maxUniversalFus,
    SynthesisOptions base = {});

/// HAL-style: force-directed with time constraints from the critical
/// length to critical + extraSlack steps (per block, applied uniformly).
/// Points are synthesized concurrently per `base.jobs`.
[[nodiscard]] std::vector<DsePoint> exploreTimeSweep(
    const std::string& source, int extraSlack, SynthesisOptions base = {});

/// Chippe-style feedback: grow the FU budget until the latency target is
/// met (or the budget cap is reached); returns the visited points, last
/// one being the accepted design. The feedback decisions are sequential,
/// but with jobs > 1 the next budget is speculatively synthesized on the
/// pool while the current one is evaluated (at most one point of wasted
/// work when the loop stops).
[[nodiscard]] std::vector<DsePoint> chippeIterate(const std::string& source,
                                                  int targetLatency,
                                                  int maxUniversalFus = 8,
                                                  SynthesisOptions base = {});

}  // namespace mphls
