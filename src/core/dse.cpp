#include "core/dse.h"

#include <algorithm>

namespace mphls {

void markPareto(std::vector<DsePoint>& points) {
  for (auto& p : points) {
    p.pareto = true;
    for (const auto& q : points) {
      if (&p == &q) continue;
      const bool qNoWorse =
          q.latencySteps <= p.latencySteps && q.area <= p.area;
      const bool qBetter =
          q.latencySteps < p.latencySteps || q.area < p.area;
      if (qNoWorse && qBetter) {
        p.pareto = false;
        break;
      }
    }
  }
}

std::vector<DsePoint> exploreResourceSweep(const std::string& source,
                                           int maxUniversalFus,
                                           SynthesisOptions base) {
  std::vector<DsePoint> points;
  for (int n = 1; n <= maxUniversalFus; ++n) {
    SynthesisOptions opts = base;
    opts.scheduler = SchedulerKind::List;
    opts.resources = ResourceLimits::universalSet(n);
    Synthesizer synth(opts);
    SynthesisResult r = synth.synthesizeSource(source);
    DsePoint p;
    p.label = std::to_string(n) + " FUs";
    p.limit = n;
    p.latencySteps = r.staticLatency();
    p.cycleTime = r.timing.cycleTime;
    p.area = r.area.total();
    points.push_back(p);
  }
  markPareto(points);
  return points;
}

std::vector<DsePoint> exploreTimeSweep(const std::string& source,
                                       int extraSlack,
                                       SynthesisOptions base) {
  // Discover the longest block's critical length with an unconstrained
  // force-directed run, then sweep uniform horizons upward from there
  // (forceDirectedSchedule clamps per block to its own critical length).
  SynthesisOptions probeOpts = base;
  probeOpts.scheduler = SchedulerKind::ForceDirected;
  probeOpts.timeConstraint = 0;
  Synthesizer probe(probeOpts);
  SynthesisResult r0 = probe.synthesizeSource(source);
  int maxBlockSteps = 0;
  for (const auto& bs : r0.design.sched.blocks)
    maxBlockSteps = std::max(maxBlockSteps, bs.numSteps);

  std::vector<DsePoint> points;
  for (int slack = 0; slack <= extraSlack; ++slack) {
    SynthesisOptions opts = base;
    opts.scheduler = SchedulerKind::ForceDirected;
    opts.timeConstraint = maxBlockSteps + slack;
    Synthesizer synth(opts);
    SynthesisResult r = synth.synthesizeSource(source);
    DsePoint p;
    p.label = std::to_string(opts.timeConstraint) + " steps";
    p.limit = opts.timeConstraint;
    p.latencySteps = r.staticLatency();
    p.cycleTime = r.timing.cycleTime;
    p.area = r.area.total();
    points.push_back(p);
  }
  markPareto(points);
  return points;
}

std::vector<DsePoint> chippeIterate(const std::string& source,
                                    int targetLatency, int maxUniversalFus,
                                    SynthesisOptions base) {
  std::vector<DsePoint> points;
  for (int n = 1; n <= maxUniversalFus; ++n) {
    SynthesisOptions opts = base;
    opts.scheduler = SchedulerKind::List;
    opts.resources = ResourceLimits::universalSet(n);
    Synthesizer synth(opts);
    SynthesisResult r = synth.synthesizeSource(source);
    DsePoint p;
    p.label = std::to_string(n) + " FUs";
    p.limit = n;
    p.latencySteps = r.staticLatency();
    p.cycleTime = r.timing.cycleTime;
    p.area = r.area.total();
    points.push_back(p);
    if (p.latencySteps <= targetLatency) break;  // constraint satisfied
    if (n > 1 && points[points.size() - 2].latencySteps == p.latencySteps)
      break;  // more hardware no longer helps: accept
  }
  markPareto(points);
  return points;
}

}  // namespace mphls
