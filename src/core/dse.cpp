#include "core/dse.h"

#include <algorithm>
#include <cstdio>
#include <future>
#include <limits>
#include <memory>
#include <numeric>
#include <optional>

#include "common/thread_pool.h"
#include "core/frontend_cache.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rtl/verilog.h"

namespace mphls {

namespace {

/// Pool for one exploration, or null for the jobs=1 serial bypass. Never
/// spawns more workers than there are points to synthesize.
std::unique_ptr<ThreadPool> makePool(int jobs, std::size_t numPoints) {
  const int n = resolveJobs(jobs);
  if (n <= 1 || numPoints <= 1) return nullptr;
  return std::make_unique<ThreadPool>(
      static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(n), numPoints)),
      "dse");
}

/// Synthesize one sweep point from the shared optimized IR.
DsePoint synthesizePoint(const Function& fn, const SynthesisOptions& opts,
                         std::string label, int limit, int worker) {
  DsePoint p;
  {
    // The span both shows the point on the executing thread's trace lane
    // and measures DsePoint::wallSeconds — one clock pair for both.
    obs::TraceSpan span("dse.point", label, &p.wallSeconds);
    Synthesizer synth(opts);
    SynthesisResult r = synth.synthesizeOptimized(fn);
    p.label = std::move(label);
    p.limit = limit;
    p.latencySteps = r.staticLatency();
    p.cycleTime = r.timing.cycleTime;
    p.area = r.area.total();
    if (opts.dseCaptureVerilog && opts.latencies.isUnit())
      p.verilog = emitVerilog(r.design);
  }
  p.threadId = worker < 0 ? 0 : worker;
  p.traceTid = obs::Tracer::global().currentTid();
  p.threadName = obs::Tracer::global().currentThreadName();
  auto& mr = obs::MetricsRegistry::global();
  mr.counter("dse.points").add();
  mr.histogram("dse.point_seconds").observe(p.wallSeconds);
  return p;
}

}  // namespace

bool samePoint(const DsePoint& a, const DsePoint& b) {
  return a.label == b.label && a.limit == b.limit &&
         a.latencySteps == b.latencySteps && a.cycleTime == b.cycleTime &&
         a.area == b.area && a.pareto == b.pareto && a.verilog == b.verilog;
}

std::string renderPoints(const std::vector<DsePoint>& points) {
  std::string out;
  for (const auto& p : points) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "%-12s %6d %8d %12.4f %12.2f %s\n",
                  p.label.c_str(), p.limit, p.latencySteps, p.cycleTime,
                  p.area, p.pareto ? "*" : "-");
    out += buf;
  }
  return out;
}

void markPareto(std::vector<DsePoint>& points) {
  // Rank points by (latency, area, label); the label only sequences exact
  // metric ties, so the marking is a function of the point multiset alone
  // — independent of sweep order, thread count, and duplicate placement.
  std::vector<std::size_t> order(points.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const DsePoint& pa = points[a];
    const DsePoint& pb = points[b];
    if (pa.latencySteps != pb.latencySteps)
      return pa.latencySteps < pb.latencySteps;
    if (pa.area != pb.area) return pa.area < pb.area;
    return pa.label < pb.label;
  });

  // Sweep latency groups in increasing order. A point is on the front iff
  // it has its group's minimal area and no strictly faster point matched
  // or beat that area.
  double fasterBest = std::numeric_limits<double>::infinity();
  std::size_t g = 0;
  while (g < order.size()) {
    const int lat = points[order[g]].latencySteps;
    const double groupMin = points[order[g]].area;  // sorted: first is min
    std::size_t h = g;
    while (h < order.size() && points[order[h]].latencySteps == lat) ++h;
    for (std::size_t i = g; i < h; ++i) {
      DsePoint& p = points[order[i]];
      p.pareto = p.area == groupMin && p.area < fasterBest;
    }
    fasterBest = std::min(fasterBest, groupMin);
    g = h;
  }
}

std::vector<DsePoint> exploreResourceSweep(const std::string& source,
                                           int maxUniversalFus,
                                           SynthesisOptions base) {
  if (maxUniversalFus < 1) return {};
  auto fn = FrontendCache::global().get(source, "", base.opt);
  const std::size_t count = static_cast<std::size_t>(maxUniversalFus);
  std::vector<DsePoint> points(count);
  auto pool = makePool(base.jobs, count);
  obs::Logger::global().debug("dse", "resource sweep start",
                              {{"points", count}, {"jobs", base.jobs}});
  parallelFor(pool.get(), count, [&](std::size_t idx, int worker) {
    const int n = static_cast<int>(idx) + 1;
    SynthesisOptions opts = base;
    opts.scheduler = SchedulerKind::List;
    opts.resources = ResourceLimits::universalSet(n);
    points[idx] = synthesizePoint(*fn, opts, std::to_string(n) + " FUs", n,
                                  worker);
  });
  markPareto(points);
  obs::Logger::global().info("dse", "resource sweep done",
                             {{"points", count}, {"jobs", base.jobs}});
  return points;
}

std::vector<DsePoint> exploreTimeSweep(const std::string& source,
                                       int extraSlack,
                                       SynthesisOptions base) {
  auto fn = FrontendCache::global().get(source, "", base.opt);

  // Discover the longest block's critical length with an unconstrained
  // force-directed run, then sweep uniform horizons upward from there
  // (forceDirectedSchedule clamps per block to its own critical length).
  SynthesisOptions probeOpts = base;
  probeOpts.scheduler = SchedulerKind::ForceDirected;
  probeOpts.timeConstraint = 0;
  Synthesizer probe(probeOpts);
  SynthesisResult r0 = probe.synthesizeOptimized(*fn);
  int maxBlockSteps = 0;
  for (const auto& bs : r0.design.sched.blocks)
    maxBlockSteps = std::max(maxBlockSteps, bs.numSteps);

  if (extraSlack < 0) extraSlack = 0;
  const std::size_t count = static_cast<std::size_t>(extraSlack) + 1;
  std::vector<DsePoint> points(count);
  auto pool = makePool(base.jobs, count);
  parallelFor(pool.get(), count, [&](std::size_t idx, int worker) {
    SynthesisOptions opts = base;
    opts.scheduler = SchedulerKind::ForceDirected;
    opts.timeConstraint = maxBlockSteps + static_cast<int>(idx);
    points[idx] = synthesizePoint(
        *fn, opts, std::to_string(opts.timeConstraint) + " steps",
        opts.timeConstraint, worker);
  });
  markPareto(points);
  obs::Logger::global().info("dse", "time sweep done",
                             {{"points", count}, {"jobs", base.jobs}});
  return points;
}

std::vector<DsePoint> chippeIterate(const std::string& source,
                                    int targetLatency, int maxUniversalFus,
                                    SynthesisOptions base) {
  auto fn = FrontendCache::global().get(source, "", base.opt);
  auto pool = makePool(base.jobs, 2);

  auto synthAt = [&](int n) {
    SynthesisOptions opts = base;
    opts.scheduler = SchedulerKind::List;
    opts.resources = ResourceLimits::universalSet(n);
    const int worker = pool ? pool->currentWorker() : -1;
    return synthesizePoint(*fn, opts, std::to_string(n) + " FUs", n, worker);
  };

  std::vector<DsePoint> points;
  std::optional<DsePoint> ready;  ///< speculated result for the current n
  for (int n = 1; n <= maxUniversalFus; ++n) {
    // The feedback decision is sequential, but the pool can already work
    // on the next budget while this one synthesizes (first lap) or while
    // its result is judged. At most one point is wasted on a stop.
    std::optional<std::future<DsePoint>> inflight;
    if (pool && n + 1 <= maxUniversalFus)
      inflight = pool->submit([&synthAt, next = n + 1] {
        return synthAt(next);
      });

    DsePoint p = ready ? std::move(*ready) : synthAt(n);
    ready.reset();
    points.push_back(std::move(p));

    const DsePoint& cur = points.back();
    const bool met = cur.latencySteps <= targetLatency;
    const bool flat =
        n > 1 && points[points.size() - 2].latencySteps == cur.latencySteps;
    if (met || flat) {
      // Accept. The speculative point (if any) is wasted work; wait for it
      // so it cannot outlive the locals it references.
      if (inflight) inflight->wait();
      break;
    }
    if (inflight) ready = inflight->get();
  }
  markPareto(points);
  if (!points.empty())
    obs::Logger::global().info(
        "dse", "chippe iteration done",
        {{"points", points.size()},
         {"target_latency", targetLatency},
         {"met", points.back().latencySteps <= targetLatency}});
  return points;
}

}  // namespace mphls
