#include "core/frontend_cache.h"

#include <list>
#include <mutex>
#include <unordered_map>

#include "ir/verify.h"
#include "lang/frontend.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "opt/pass.h"

namespace mphls {

namespace {

thread_local bool tlsSawHit = false;
thread_local bool tlsSawMiss = false;

std::string keyOf(const std::string& source, const std::string& top,
                  OptLevel opt) {
  // '\x1f' cannot appear in BDL identifiers, so the key is unambiguous.
  std::string key;
  key.reserve(source.size() + top.size() + 4);
  key += static_cast<char>('0' + static_cast<int>(opt));
  key += '\x1f';
  key += top;
  key += '\x1f';
  key += source;
  return key;
}

}  // namespace

struct FrontendCache::Impl {
  struct Entry {
    std::string key;
    std::shared_ptr<const Function> fn;
  };

  mutable std::mutex m;
  std::list<Entry> lru;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index;
  std::size_t hits = 0;
  std::size_t misses = 0;
};

FrontendCache::FrontendCache() : impl_(std::make_unique<Impl>()) {}
FrontendCache::~FrontendCache() = default;

FrontendCache& FrontendCache::global() {
  static FrontendCache cache;
  return cache;
}

std::shared_ptr<const Function> FrontendCache::get(const std::string& source,
                                                   const std::string& top,
                                                   OptLevel opt) {
  Impl& im = impl();
  const std::string key = keyOf(source, top, opt);
  {
    std::lock_guard<std::mutex> lk(im.m);
    auto it = im.index.find(key);
    if (it != im.index.end()) {
      im.lru.splice(im.lru.begin(), im.lru, it->second);
      ++im.hits;
      tlsSawHit = true;
      obs::MetricsRegistry::global().counter("frontend_cache.hits").add();
      return im.lru.front().fn;
    }
    ++im.misses;
    tlsSawMiss = true;
  }
  obs::MetricsRegistry::global().counter("frontend_cache.misses").add();

  // Compile outside the lock: concurrent misses on different keys must not
  // serialize on each other. Two racing misses on the same key both
  // compile; the second insert wins and the loser's copy is dropped —
  // wasteful but correct, and sweeps only race on a key they share after
  // it is already cached.
  obs::TraceSpan span("frontend.compile", top);
  Function fn = compileBdlOrThrow(source, top);
  verifyOrThrow(fn);
  switch (opt) {
    case OptLevel::None:
      break;
    case OptLevel::Standard: {
      auto pm = PassManager::standardPipeline();
      pm.run(fn);
      break;
    }
    case OptLevel::Aggressive: {
      auto pm = PassManager::aggressivePipeline();
      pm.run(fn);
      break;
    }
  }
  auto shared = std::make_shared<const Function>(std::move(fn));

  std::lock_guard<std::mutex> lk(im.m);
  auto it = im.index.find(key);
  if (it != im.index.end()) {
    im.lru.splice(im.lru.begin(), im.lru, it->second);
    return im.lru.front().fn;
  }
  im.lru.push_front(Impl::Entry{key, shared});
  im.index[key] = im.lru.begin();
  while (im.lru.size() > kCapacity) {
    im.index.erase(im.lru.back().key);
    im.lru.pop_back();
  }
  return shared;
}

void FrontendCache::clearThreadStats() { tlsSawHit = tlsSawMiss = false; }
bool FrontendCache::threadSawHit() { return tlsSawHit; }
bool FrontendCache::threadSawMiss() { return tlsSawMiss; }

void FrontendCache::clear() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.m);
  im.lru.clear();
  im.index.clear();
}

std::size_t FrontendCache::size() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.m);
  return im.lru.size();
}

std::size_t FrontendCache::hits() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.m);
  return im.hits;
}

std::size_t FrontendCache::misses() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.m);
  return im.misses;
}

}  // namespace mphls
