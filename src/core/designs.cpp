#include "core/designs.h"

namespace mphls::designs {

const char* sqrtSource() {
  // Paper Fig. 1: Y := 0.222222 + 0.888889*X; 4 Newton iterations with a
  // 2-bit counter whose wraparound is the exit test (the paper's optimized
  // form). Fixed point Q4.12; X in <1/16, 1>.
  return R"(
    proc sqrt(in x: uint<16>, out y: uint<16>) {
      var i: uint<2>;
      y = trunc<16>((zext<32>(x) * 3641) >> 12) + 910;   # minimax seed
      i = 0;
      do {
        y = (y + trunc<16>((zext<32>(x) << 12) / zext<32>(y))) >> 1;
        i = i + 1;
      } until (i == 0);
    }
  )";
}

const char* diffeqSource() {
  // The HAL differential-equation benchmark: integrate y'' + 3xy' + 3y = 0
  // with forward Euler from x to a with step dx. Q8.8 fixed point.
  return R"(
    proc diffeq(in x0: uint<16>, in y0: uint<16>, in u0: uint<16>,
                in dx: uint<16>, in a: uint<16>,
                out xo: uint<16>, out yo: uint<16>, out uo: uint<16>) {
      var x: uint<16>; var y: uint<16>; var u: uint<16>;
      x = x0; y = y0; u = u0;
      while (x < a) {
        var xdx: uint<32>;   # x * dx, Q16.16
        var udx: uint<16>;
        xdx = zext<32>(x) * zext<32>(dx);
        udx = trunc<16>((zext<32>(u) * zext<32>(dx)) >> 8);
        # u1 = u - 3*x*u*dx - 3*y*dx
        var t1: uint<16>; var t2: uint<16>;
        t1 = trunc<16>((zext<32>(3 * u) * trunc<32>(xdx >> 8)) >> 16);
        t2 = trunc<16>((zext<32>(3 * y) * zext<32>(dx)) >> 8);
        u = u - t1 - t2;
        y = y + udx;
        x = x + dx;
      }
      xo = x; yo = y; uo = u;
    }
  )";
}

const char* ewfSource() {
  // Fifth-order elliptic wave filter body: the standard EWF dataflow shape
  // (26 additions, 8 multiplications by fixed Q12 coefficients, two long
  // re-convergent adder chains). State s1..s5 carries between samples.
  return R"(
    proc ewf(in xin: uint<16>, in n: uint<8>,
             out yout: uint<16>) {
      var s1: uint<16>; var s2: uint<16>; var s3: uint<16>;
      var s4: uint<16>; var s5: uint<16>;
      var k: uint<8>;
      s1 = 0; s2 = 0; s3 = 0; s4 = 0; s5 = 0;
      k = 0;
      yout = 0;
      while (k < n) {
        var a1: uint<16>; var a2: uint<16>; var a3: uint<16>;
        var a4: uint<16>; var a5: uint<16>; var a6: uint<16>;
        var m1: uint<16>; var m2: uint<16>; var m3: uint<16>;
        var m4: uint<16>; var m5: uint<16>; var m6: uint<16>;
        var m7: uint<16>; var m8: uint<16>;
        a1 = xin + s1;
        a2 = a1 + s2;
        m1 = trunc<16>((zext<32>(a2) * 1799) >> 12);
        a3 = m1 + s3;
        m2 = trunc<16>((zext<32>(a3) * 3037) >> 12);
        a4 = m2 + s4;
        m3 = trunc<16>((zext<32>(a4) * 1540) >> 12);
        a5 = m3 + s5;
        m4 = trunc<16>((zext<32>(a5) * 2819) >> 12);
        a6 = a2 + a4;
        m5 = trunc<16>((zext<32>(a6) * 905) >> 12);
        m6 = trunc<16>((zext<32>(a1 + a3) * 1453) >> 12);
        m7 = trunc<16>((zext<32>(a5 + m5) * 2222) >> 12);
        m8 = trunc<16>((zext<32>(m6 + m7) * 611) >> 12);
        s1 = a2 + m8;
        s2 = a3 + m7 + (a1 + m5);
        s3 = a4 + m6 + (a2 + m4);
        s4 = a5 + m5 + (a3 + m3);
        s5 = m4 + m8 + (a4 + m2);
        yout = m8 + a6 + (a5 + m1);
        k = k + 1;
      }
    }
  )";
}

const char* fir8Source() {
  return R"(
    proc fir8(in x0: uint<16>, in x1: uint<16>, in x2: uint<16>,
              in x3: uint<16>, in x4: uint<16>, in x5: uint<16>,
              in x6: uint<16>, in x7: uint<16>,
              out y: uint<32>) {
      y = zext<32>(x0) * 7  + zext<32>(x1) * 23 + zext<32>(x2) * 61
        + zext<32>(x3) * 94 + zext<32>(x4) * 94 + zext<32>(x5) * 61
        + zext<32>(x6) * 23 + zext<32>(x7) * 7;
    }
  )";
}

const char* gcdSource() {
  return R"(
    proc gcd(in a0: uint<16>, in b0: uint<16>, out g: uint<16>) {
      var a: uint<16>; var b: uint<16>;
      a = a0; b = b0;
      while (b != 0) {
        var t: uint<16>;
        t = a % b;
        a = b;
        b = t;
      }
      g = a;
    }
  )";
}

const std::vector<NamedDesign>& all() {
  static const std::vector<NamedDesign> kAll = {
      {"sqrt", sqrtSource(), {{"x", 2048}}},
      {"diffeq",
       diffeqSource(),
       {{"x0", 0}, {"y0", 256}, {"u0", 256}, {"dx", 32}, {"a", 256}}},
      {"ewf", ewfSource(), {{"xin", 1000}, {"n", 4}}},
      {"fir8",
       fir8Source(),
       {{"x0", 10}, {"x1", 20}, {"x2", 30}, {"x3", 40},
        {"x4", 50}, {"x5", 60}, {"x6", 70}, {"x7", 80}}},
      {"gcd", gcdSource(), {{"a0", 1071}, {"b0", 462}}},
  };
  return kAll;
}

}  // namespace mphls::designs
