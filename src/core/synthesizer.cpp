#include "core/synthesizer.h"

#include <sstream>

#include "alloc/interconnect.h"
#include "check/check_binding.h"
#include "check/check_controller.h"
#include "check/check_schedule.h"
#include "check/check_timing.h"
#include "ir/interp.h"
#include "ir/verify.h"
#include "lang/frontend.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "opt/pass.h"
#include "rtl/rtlsim.h"
#include "sec/prove.h"
#include "vm/sim_engine.h"
#include "sched/asap.h"
#include "sched/bnb.h"
#include "sched/force_directed.h"
#include "sched/freedom.h"
#include "sched/sched_util.h"
#include "sched/schedule.h"
#include "sched/transform_sched.h"

namespace mphls {

std::string_view schedulerName(SchedulerKind k) {
  switch (k) {
    case SchedulerKind::Serial: return "serial";
    case SchedulerKind::Asap: return "asap";
    case SchedulerKind::List: return "list";
    case SchedulerKind::ForceDirected: return "force-directed";
    case SchedulerKind::Freedom: return "freedom";
    case SchedulerKind::BranchBound: return "branch-and-bound";
    case SchedulerKind::Transform: return "transformational";
  }
  return "?";
}

long SynthesisResult::latencyFor(
    const std::map<std::string, std::uint64_t>& inputs) const {
  Interpreter interp(design.fn);
  auto res = interp.run(inputs);
  MPHLS_CHECK(res.finished, "behavioral execution did not finish");
  return design.sched.stepsForTrace(res.blockTrace);
}

SynthesisResult Synthesizer::synthesizeSource(const std::string& source,
                                              const std::string& top) {
  return synthesize(compileBdlOrThrow(source, top));
}

void StageTimes::accumulate(const StageTimes& o) {
  optimize += o.optimize;
  schedule += o.schedule;
  allocate += o.allocate;
  control += o.control;
  estimate += o.estimate;
  check += o.check;
  prove += o.prove;
}

SynthesisResult Synthesizer::synthesize(Function fn) {
  verifyOrThrow(fn);

  // 1. High-level transformations (Section 2).
  StageTimes st;
  {
    obs::TraceSpan span("stage.optimize", &st.optimize);
    switch (options_.opt) {
      case OptLevel::None:
        break;
      case OptLevel::Standard: {
        auto pm = PassManager::standardPipeline();
        pm.run(fn);
        break;
      }
      case OptLevel::Aggressive: {
        auto pm = PassManager::aggressivePipeline();
        pm.run(fn);
        break;
      }
    }
    if (options_.narrow) {
      PassManager pm;
      pm.add(createNarrowWidthsPass());
      pm.run(fn);
    }
  }
  return backend(std::move(fn), st);
}

SynthesisResult Synthesizer::synthesizeOptimized(const Function& fn) {
  return backend(fn.clone(), StageTimes{});
}

SynthesisResult Synthesizer::backend(Function fn, StageTimes st) {
  // Each stage runs inside a TraceSpan that both emits the trace event
  // (when tracing is on) and accumulates the corresponding StageTimes
  // field — one pair of clock reads is the single source of truth for
  // bench JSON and --trace output.
  Schedule sched;

  {
    obs::TraceSpan span("stage.schedule", &st.schedule);
    // 2. Scheduling (Section 3.1).
    MPHLS_CHECK(options_.latencies.isUnit() ||
                    options_.scheduler != SchedulerKind::ForceDirected,
                "force-directed scheduling supports unit latency only");
    sched = scheduleFunction(fn, [&](const BlockDeps& deps) {
      switch (options_.scheduler) {
        case SchedulerKind::Serial:
          return serialSchedule(deps);
        case SchedulerKind::Asap:
          return asapResourceSchedule(deps, options_.resources);
        case SchedulerKind::List:
          return listSchedule(deps, options_.resources, options_.listPriority);
        case SchedulerKind::ForceDirected:
          return forceDirectedSchedule(deps, options_.timeConstraint);
        case SchedulerKind::Freedom:
          return freedomSchedule(deps, options_.resources).schedule;
        case SchedulerKind::BranchBound:
          return branchBoundSchedule(deps, options_.resources).schedule;
        case SchedulerKind::Transform:
          return transformationalSchedule(deps, options_.resources).schedule;
      }
      return serialSchedule(deps);
    }, options_.latencies);
    if (options_.scheduler != SchedulerKind::ForceDirected &&
        options_.scheduler != SchedulerKind::Serial) {
      std::string msg =
          validateSchedule(fn, sched, options_.resources, options_.latencies);
      MPHLS_CHECK(msg.empty(), "invalid schedule: " << msg);
    }
  }
  if (options_.check) {
    obs::TraceSpan span("stage.check", "schedule", &st.check);
    // Stage exit: schedule legality. Time-constrained (force-directed) and
    // trivially-serial schedules are not produced under the resource
    // limits, so only their dependence legality is checked.
    const bool limited =
        options_.scheduler != SchedulerKind::ForceDirected &&
        options_.scheduler != SchedulerKind::Serial;
    CheckReport rep;
    checkSchedule(fn, sched,
                  limited ? options_.resources : ResourceLimits::unlimited(),
                  options_.latencies, rep);
    MPHLS_CHECK(rep.clean(), "schedule legality check failed ("
                                 << rep.errorCount()
                                 << " finding(s)): " << rep.firstError());
  }

  // 3. Data-path allocation (Section 3.2).
  HwLibrary lib;
  LifetimeInfo lt;
  RegAssignment regs;
  FuBinding binding;
  InterconnectResult ic;
  {
    obs::TraceSpan span("stage.allocate", &st.allocate);
    lib = HwLibrary::defaultLibrary();
    lt = computeLifetimes(fn, sched, options_.latencies);
    regs = allocateRegisters(lt, options_.regMethod);
    {
      std::string msg = validateRegAssignment(lt, regs);
      MPHLS_CHECK(msg.empty(), "invalid register allocation: " << msg);
    }
    binding = allocateFus(fn, sched, lt, regs, lib,
                          options_.fuMethod, options_.latencies);
    {
      std::string msg =
          validateFuBinding(fn, sched, binding, lib, options_.latencies);
      MPHLS_CHECK(msg.empty(), "invalid FU binding: " << msg);
    }
    ic = buildInterconnect(fn, sched, lt, regs, binding, lib,
                           options_.latencies);
    {
      std::string msg = validateInterconnect(ic);
      MPHLS_CHECK(msg.empty(), "invalid interconnect: " << msg);
    }
  }
  if (options_.check) {
    obs::TraceSpan span("stage.check", "binding", &st.check);
    // Stage exit: binding consistency (registers, units, multiplexers).
    CheckReport rep;
    checkBinding(fn, sched, lt, regs, binding, ic, lib, options_.latencies,
                 rep);
    MPHLS_CHECK(rep.clean(), "binding consistency check failed ("
                                 << rep.errorCount()
                                 << " finding(s)): " << rep.firstError());
  }

  // 4. Controller synthesis (Section 2).
  Controller ctrl;
  {
    obs::TraceSpan span("stage.control", &st.control);
    ctrl =
        buildController(fn, sched, lt, regs, binding, ic, options_.latencies);
    std::string msg = validateController(ctrl, ic, binding);
    MPHLS_CHECK(msg.empty(), "invalid controller: " << msg);
  }
  if (options_.check) {
    obs::TraceSpan span("stage.check", "controller", &st.check);
    // Stage exit: controller completeness.
    CheckReport rep;
    checkController(fn, sched, ctrl, ic, binding, options_.latencies, rep);
    MPHLS_CHECK(rep.clean(), "controller completeness check failed ("
                                 << rep.errorCount()
                                 << " finding(s)): " << rep.firstError());
  }

  SynthesisResult result{
      RtlDesign{std::move(fn), std::move(sched), std::move(lt),
                std::move(regs), std::move(binding), std::move(ic),
                std::move(ctrl), std::move(lib)},
      {}, {}, {}, {}, {}, {}};
  {
    obs::TraceSpan span("stage.control", "encode", &st.control);
    result.fsm = encodeController(result.design.ctrl, result.design.ic,
                                  result.design.binding, options_.encoding);
    result.microHorizontal =
        buildMicrocode(result.design.ctrl, result.design.ic,
                       result.design.binding, MicrocodeStyle::Horizontal);
    result.microEncoded =
        buildMicrocode(result.design.ctrl, result.design.ic,
                       result.design.binding, MicrocodeStyle::Encoded);
  }
  {
    obs::TraceSpan span("stage.estimate", &st.estimate);
    result.area = estimateArea(result.design, result.fsm);
    result.timing = estimateTiming(result.design);
  }
  if (options_.check) {
    obs::TraceSpan span("stage.check", "timing", &st.check);
    // Stage exit: the STA engine must close timing at the estimated cycle
    // time and agree with the estimator it cross-validates.
    CheckReport rep;
    TimingLintOptions topt;
    topt.clockNs = result.timing.cycleTime;
    checkTiming(result.design, topt, rep);
    MPHLS_CHECK(rep.clean(), "timing closure check failed ("
                                 << rep.errorCount()
                                 << " finding(s)): " << rep.firstError());
  }
  if (options_.prove) {
    obs::TraceSpan span("stage.prove", &st.prove);
    CheckReport rep = sec::proveEquivalence(result.design);
    MPHLS_CHECK(rep.clean(), "behavioral/RTL equivalence proof failed ("
                                 << rep.errorCount()
                                 << " finding(s)): " << rep.firstError());
  }
  result.stages = st;

  auto& mr = obs::MetricsRegistry::global();
  mr.counter("synth.runs").add();
  mr.histogram("synth.total_seconds").observe(st.total());
  mr.histogram("design.registers").observe(result.design.regs.numRegs);
  mr.histogram("design.fus").observe(result.design.binding.numFus());
  mr.histogram("design.fsm_states")
      .observe((double)result.design.ctrl.numStates());
  return result;
}

std::string verifyAgainstBehavior(
    const SynthesisResult& result,
    const std::map<std::string, std::uint64_t>& inputs) {
  // Both sides run on the bytecode VM engines (default mode), which also
  // sample interpreter cross-checks; a divergence is reported verbatim.
  ExecResult want;
  RtlExecResult got;
  try {
    vm::BehavSim behav(result.design.fn);
    want = behav.run(inputs);
    if (!want.finished) return "behavioral execution did not finish";

    vm::RtlSim sim(result.design);
    got = sim.run(inputs);
  } catch (const vm::DivergenceError& e) {
    return e.what();
  }
  if (!got.finished) return "RTL simulation did not reach the halt state";

  if (want.outputs != got.outputs) {
    std::ostringstream oss;
    oss << "output mismatch:";
    for (const auto& [name, v] : want.outputs)
      oss << " " << name << " behavioral=" << v;
    for (const auto& [name, v] : got.outputs)
      oss << " " << name << " rtl=" << v;
    return oss.str();
  }
  return {};
}

}  // namespace mphls
