// Shared-frontend cache for design-space exploration.
//
// Every DSE sweep point used to re-lex, re-parse, re-lower and re-optimize
// the same BDL source before diverging in the backend; only scheduling and
// everything after it actually depend on the swept options. The cache
// memoizes (source, top, optimization level) -> optimized Function so a
// sweep pays the frontend once and each point starts from a clone()d IR.
// Chippe-style feedback iteration hits the same entry on every lap.
//
// Thread-safety: get() may be called from any thread; the returned Function
// is immutable (shared_ptr<const Function>) and safe to clone concurrently.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "core/synthesizer.h"

namespace mphls {

class FrontendCache {
 public:
  /// The process-wide cache used by the DSE entry points.
  [[nodiscard]] static FrontendCache& global();

  /// Compile `source` (selecting procedure `top`), verify it, run the
  /// `opt` pass pipeline over it, and cache the result. Subsequent calls
  /// with the same key return the cached function without touching the
  /// frontend. Throws InternalError on invalid input, like
  /// compileBdlOrThrow.
  [[nodiscard]] std::shared_ptr<const Function> get(const std::string& source,
                                                    const std::string& top,
                                                    OptLevel opt);

  /// Evict everything (tests; also bench runs that want cold-cache timings).
  void clear();

  /// Per-thread hit/miss tracking for request-scoped attribution (the
  /// serve access log): clear before dispatching a request, then ask
  /// whether this thread hit the cache while handling it. A serve
  /// worker handles one request at a time, so the flags are exact.
  static void clearThreadStats();
  [[nodiscard]] static bool threadSawHit();
  [[nodiscard]] static bool threadSawMiss();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t hits() const;
  [[nodiscard]] std::size_t misses() const;

  /// Entries kept before the least-recently-used one is evicted.
  static constexpr std::size_t kCapacity = 64;

  FrontendCache();
  FrontendCache(const FrontendCache&) = delete;
  FrontendCache& operator=(const FrontendCache&) = delete;
  ~FrontendCache();

 private:
  struct Impl;
  [[nodiscard]] Impl& impl() const { return *impl_; }
  std::unique_ptr<Impl> impl_;
};

}  // namespace mphls
