// Shared machine-readable command layer: one implementation of every JSON
// report the system can produce, used verbatim by the CLI (`mphls
// synth/lint/analyze/sta/prove --format json`) and by the serve daemon's
// POST endpoints. The daemon can never drift from the offline tool because
// both render their responses through these functions; the golden
// differential test (tests/test_serve.cpp) and the ci.sh serve smoke
// assert byte equality end to end.
//
// Every command compiles through the process-wide FrontendCache, so repeat
// traffic (a daemon serving the same source many times, a DSE sweep, the
// test battery) pays the frontend once per (source, top, opt) key.
//
// Reports are deterministic by construction: they carry no wall-clock
// times, no machine identity, and no iteration-order-dependent fields.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "check/report.h"
#include "common/bench_report.h"
#include "core/synthesizer.h"
#include "sta/sta.h"

namespace mphls::cmd {

/// One command invocation: the report key (`name` — the file path when the
/// CLI runs it, the client-supplied name under the daemon), the BDL source
/// to operate on, and the synthesis option vector.
struct Request {
  std::string name;
  std::string source;
  std::string top;
  SynthesisOptions opts;
};

/// Outcome of one command. `body` is the exact text the CLI prints on
/// stdout (trailing newline included) and the exact HTTP response body the
/// daemon returns. `ok` carries the CLI exit-0 semantics (lint findings,
/// failed proofs and negative slack make it false while the body is still
/// a well-formed report). `inputError` is set when the source itself was
/// rejected (parse/verify failure) — the daemon maps it to 422.
struct Result {
  std::string body;
  bool ok = true;
  bool inputError = false;
};

/// Synthesis summary report: design shape, scheduler, latency, datapath
/// and controller structure, area/cycle-time estimates.
[[nodiscard]] Result synthJson(const Request& req);

/// Full static verification report over the synthesized design
/// (checkDesign), exactly what `mphls lint --format json` prints.
[[nodiscard]] Result lintJson(const Request& req);

/// Semantic lint report over the behavioral IR (checkSemantics). With
/// `postPipeline` the configured pass pipeline (and, per opts.narrow, the
/// narrowing pass) runs first, mirroring `mphls analyze --opt ...`.
[[nodiscard]] Result analyzeJson(const Request& req, bool postPipeline);

/// Path-level static timing analysis report plus the timing lint,
/// exactly what `mphls sta --format json` prints for one file.
/// `clockNs` <= 0 means "at the estimated clock".
[[nodiscard]] Result staJson(const Request& req, double clockNs,
                             int maxPaths);

/// Formal equivalence report (one-element array, the prove CLI
/// convention). With `provePasses` each optimization pass application is
/// additionally translation-validated.
[[nodiscard]] Result proveJson(const Request& req, bool provePasses);

/// Simulate the synthesized RTL on `inputs` (unset input ports default to
/// zero) and report outputs, cycle count and halt status.
[[nodiscard]] Result simJson(const Request& req,
                             const std::map<std::string, std::uint64_t>& inputs);

/// {"file":<name>, ...} splice of a CheckReport, shared by the lint,
/// analyze and prove renderers (and the CLI's text-mode prove).
[[nodiscard]] std::string reportJson(const std::string& key,
                                     const std::string& name,
                                     const CheckReport& rep);

/// One sta report as a JsonValue: the StaResult plus the timing lint's
/// findings in the lint/prove diagnostics convention (sorted/deduped).
/// Exposed so the CLI's `sta --builtins --format json` array uses the
/// same element renderer as staJson.
[[nodiscard]] JsonValue staJsonValue(const std::string& key,
                                     const std::string& name,
                                     const sta::StaResult& r,
                                     const CheckReport& rep);

}  // namespace mphls::cmd
