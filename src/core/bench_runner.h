// The `mphls bench` suite: measures design-space-exploration throughput
// (parallel sweep vs. serial, shared frontend vs. the legacy re-parse-per-
// point loop) and incremental force-directed scheduling vs. the from-
// scratch reference, then writes BENCH_dse.json and BENCH_sched.json so
// the performance trajectory is tracked from PR to PR. Also re-checks the
// determinism contract: the JSON records whether the parallel run produced
// byte-identical points and Verilog to the serial one.
#pragma once

#include <string>

namespace mphls {

struct BenchOptions {
  int jobs = 4;       ///< parallel configuration, measured against jobs=1
  int points = 8;     ///< resource-sweep width (universal FU limits 1..N)
  int repeats = 3;    ///< timing repetitions per configuration (best-of)
  int schedOps = 48;  ///< synthetic DFG size for the scheduler bench
  std::string outDir = ".";  ///< where the BENCH_*.json files land
  bool quiet = false;
};

/// Run both benches and write outDir/BENCH_dse.json and
/// outDir/BENCH_sched.json. Returns 0 on success (including writing the
/// files), 1 on failure. Not a correctness gate: determinism mismatches
/// are recorded in the JSON, and only I/O errors fail the run.
int runBenchSuite(const BenchOptions& opts);

/// `mphls bench --sta`: run the static timing engine over every builtin
/// design and write outDir/BENCH_sta.json — analysis wall time (best of
/// `repeats`), worst slack at the estimated clock, critical-path length,
/// and the state-aware vs structural comparison per design. Fails (1) on
/// I/O errors or if any builtin fails to close timing at its own
/// estimated cycle time.
int runStaBenchSuite(const BenchOptions& opts);

}  // namespace mphls
