// End-to-end synthesis driver: the pipeline the tutorial's Section 2 walks
// through — compile, optimize, schedule, allocate (registers, functional
// units, interconnect), bind, and synthesize control — with every task's
// algorithm selectable, so the technique comparisons of Section 3 can be
// run on real designs.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "alloc/fu_alloc.h"
#include "alloc/reg_alloc.h"
#include "ctrl/encode.h"
#include "ctrl/microcode.h"
#include "estim/estimate.h"
#include "rtl/design.h"
#include "sched/list_sched.h"
#include "sched/resource.h"

namespace mphls {

enum class SchedulerKind {
  Serial,         ///< one op per step (the paper's trivial case)
  Asap,           ///< resource-constrained ASAP (Fig. 3)
  List,           ///< list scheduling (Fig. 4)
  ForceDirected,  ///< HAL (Fig. 5); time-constrained
  Freedom,        ///< MAHA
  BranchBound,    ///< EXPL-style exhaustive/B&B
  Transform,      ///< YSC-style transformational
};

[[nodiscard]] std::string_view schedulerName(SchedulerKind k);

enum class OptLevel { None, Standard, Aggressive };

struct SynthesisOptions {
  OptLevel opt = OptLevel::Standard;
  SchedulerKind scheduler = SchedulerKind::List;
  ListPriority listPriority = ListPriority::PathLength;
  ResourceLimits resources;               ///< for resource-constrained kinds
  int timeConstraint = 0;                 ///< for ForceDirected (0: critical)
  RegAllocMethod regMethod = RegAllocMethod::LeftEdge;
  FuAllocMethod fuMethod = FuAllocMethod::GreedyLocal;
  StateEncoding encoding = StateEncoding::Binary;
  /// Operation execution times. Multicycle models are supported by the
  /// Serial, Asap, List, Freedom, BranchBound and Transform schedulers and
  /// the FSM-driven RTL; the Verilog emitter and the microcode simulator
  /// require unit latency.
  OpLatencyModel latencies = OpLatencyModel::unit();
  /// Run the src/check/ stage-boundary analyzers at every stage exit
  /// (schedule legality, binding consistency, controller completeness) and
  /// throw InternalError on the first violation. On by default so every
  /// test run is statically verified; `mphls --no-check` disables it.
  bool check = true;
  /// Run the analysis-driven width-narrowing pass (opt/narrow.cpp) after
  /// the optimization pipeline: every value and register shrinks to the
  /// bitwidth the abstract interpreter proves sufficient. Off by default —
  /// it changes declared datapath widths, which matters when the RTL
  /// interface is inspected externally; `mphls --narrow` enables it.
  bool narrow = false;
  /// Formally prove the synthesized RTL equivalent to the behavioral CDFG
  /// (src/sec/): symbolic execution of both sides per block, discharged by
  /// bit-blasting to SAT. Throws InternalError on the first failed proof
  /// obligation. Off by default (proof cost grows with datapath width);
  /// `mphls --prove` / `mphls prove` enables it.
  bool prove = false;
  /// Worker threads for design-space exploration (core/dse.h): <= 0 means
  /// one per hardware thread, 1 bypasses the thread pool entirely and runs
  /// the legacy serial loop. Results are identical at any value; only wall
  /// time changes.
  int jobs = 0;
  /// Design-space exploration only: record the emitted Verilog of every
  /// swept design point in DsePoint::verilog (unit-latency models only —
  /// the emitter rejects multicycle designs). Used by the determinism
  /// tests and `mphls bench` to prove thread-count independence.
  bool dseCaptureVerilog = false;
};

/// Wall-clock seconds spent in each pipeline stage of one synthesis run,
/// recorded unconditionally (the clock costs nanoseconds per stage) so
/// BenchReporter can break down where synthesis time goes.
struct StageTimes {
  double optimize = 0;   ///< high-level transformation passes
  double schedule = 0;   ///< control-step assignment (incl. validation)
  double allocate = 0;   ///< lifetimes, registers, FUs, interconnect
  double control = 0;    ///< controller build + FSM encode + microcode
  double estimate = 0;   ///< area/timing estimation
  double check = 0;      ///< stage-boundary analyzers (options.check)
  double prove = 0;      ///< formal equivalence proof (options.prove)

  [[nodiscard]] double total() const {
    return optimize + schedule + allocate + control + estimate + check +
           prove;
  }
  /// Accumulate another run's times (used when averaging over DSE points).
  void accumulate(const StageTimes& o);
};

struct SynthesisResult {
  RtlDesign design;
  EncodedFsm fsm;
  Microprogram microHorizontal;
  Microprogram microEncoded;
  AreaEstimate area;
  TimingEstimate timing;
  StageTimes stages;

  /// Latency in control steps for a given behavioral input (runs the
  /// interpreter to obtain the block trace).
  [[nodiscard]] long latencyFor(
      const std::map<std::string, std::uint64_t>& inputs) const;

  /// Static one-pass latency (sum of block step counts).
  [[nodiscard]] int staticLatency() const { return design.sched.totalSteps(); }

  [[nodiscard]] DesignPoint point() const {
    return {staticLatency(), timing.cycleTime, area.total()};
  }
};

class Synthesizer {
 public:
  explicit Synthesizer(SynthesisOptions options = {})
      : options_(std::move(options)) {}

  /// Full pipeline from BDL source. Throws InternalError on invalid input
  /// (use compileBdl directly for diagnostics-friendly handling).
  [[nodiscard]] SynthesisResult synthesizeSource(const std::string& source,
                                                 const std::string& top = "");

  /// Full pipeline from an already-built function (consumed by copy).
  [[nodiscard]] SynthesisResult synthesize(Function fn);

  /// Pipeline from a function that has already been verified and run
  /// through the high-level transformation passes — the shared-frontend
  /// path of design-space exploration: the DSE driver compiles and
  /// optimizes the source once (see core/frontend_cache.h), then hands
  /// each sweep point a clone of the cached IR. `fn` is cloned, never
  /// mutated, so many threads may synthesize from the same cached
  /// function concurrently.
  [[nodiscard]] SynthesisResult synthesizeOptimized(const Function& fn);

  [[nodiscard]] const SynthesisOptions& options() const { return options_; }
  [[nodiscard]] SynthesisOptions& options() { return options_; }

 private:
  /// Everything after the optimization stage: schedule, allocate, bind,
  /// build the controller, encode, estimate. `st` carries the frontend
  /// stage times already accrued for this run.
  [[nodiscard]] SynthesisResult backend(Function fn, StageTimes st);

  SynthesisOptions options_;
};

/// Check behavior preservation end to end: run the behavioral interpreter
/// and the RTL simulator on the same inputs and compare outputs. Returns an
/// empty string on agreement, else a description of the mismatch. This is
/// the paper's "design verification" obligation (Section 4).
[[nodiscard]] std::string verifyAgainstBehavior(
    const SynthesisResult& result,
    const std::map<std::string, std::uint64_t>& inputs);

}  // namespace mphls
