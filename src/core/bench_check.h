// `mphls bench --check`: baseline regression tracking for BENCH_*.json.
//
// Every bench suite in the repo emits a machine-readable report
// (BENCH_dse/BENCH_sched/BENCH_sim/BENCH_sta/BENCH_serve). This module
// compares fresh reports against committed baselines under
// `bench/baselines/` using a fixed per-metric rule table: boolean
// invariants must hold outright, error counts must be zero, and timing
// or throughput numbers must stay within a tolerance band of the
// baseline (bands are wide — CI wall time on a shared 1-CPU container
// is noisy — so the gate catches order-of-magnitude regressions, not
// single-digit drift). The verdict is written as BENCH_check.json and
// summarized on stdout; any failed check fails the run.
#pragma once

#include <string>
#include <vector>

namespace mphls {

struct BenchCheckOptions {
  /// Directories searched (in order) for fresh BENCH_*.json reports;
  /// the first directory containing a given file wins.
  std::vector<std::string> inDirs = {"."};
  /// Directory holding the committed baseline BENCH_*.json files.
  std::string baselineDir = "bench/baselines";
  /// Where to write the machine-readable verdict ("" = no file).
  std::string outFile = "BENCH_check.json";
  bool quiet = false;
};

/// Compare every known BENCH_*.json found in `inDirs` against its
/// baseline. Returns 0 when every executed check passed (missing
/// baselines warn and skip), 1 when any check failed or when no report
/// file was found at all.
int runBenchCheck(const BenchCheckOptions& opts);

}  // namespace mphls
