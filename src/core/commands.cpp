#include "core/commands.h"

#include <algorithm>
#include <optional>

#include "check/check.h"
#include "common/bench_report.h"
#include "common/diag.h"
#include "core/frontend_cache.h"
#include "obs/trace.h"
#include "opt/pass.h"
#include "sec/passes.h"
#include "sec/prove.h"
#include "sta/sta.h"
#include "vm/sim_engine.h"

namespace mphls::cmd {

namespace {

/// Compact single-line error report, same trailing-newline convention as
/// the lint/prove renderers.
Result errorResult(const std::string& name, const std::string& message,
                   bool inputError) {
  std::string body = "{\"file\":";
  obs::appendJsonString(body, name);
  body += ",\"error\":";
  obs::appendJsonString(body, message);
  body += "}\n";
  return {std::move(body), false, inputError};
}

/// Compile through the shared frontend cache and clone for backend use.
/// Applies the width-narrowing pass when the option vector asks for it —
/// exactly what Synthesizer::synthesize does after its pipeline stage.
/// On a parse/verify failure, fills `err` and returns nullopt.
std::optional<Function> compileCached(const Request& req, OptLevel opt,
                                      bool narrow, Result& err) {
  std::shared_ptr<const Function> cached;
  try {
    cached = FrontendCache::global().get(req.source, req.top, opt);
  } catch (const InternalError& e) {
    err = errorResult(req.name, e.what(), true);
    return std::nullopt;
  }
  Function fn = cached->clone();
  if (narrow) {
    PassManager pm;
    pm.add(createNarrowWidthsPass());
    pm.run(fn);
  }
  return fn;
}

}  // namespace

std::string reportJson(const std::string& key, const std::string& name,
                       const CheckReport& rep) {
  std::string out = "{\"" + key + "\":";
  obs::appendJsonString(out, name);
  out += ",";
  // Splice the report object's fields in after the name.
  out += rep.renderJson().substr(1);
  return out;
}

Result synthJson(const Request& req) {
  Result err;
  auto fn = compileCached(req, req.opts.opt, req.opts.narrow, err);
  if (!fn) return err;
  SynthesisOptions so = req.opts;
  so.opt = OptLevel::None;  // pipeline already applied by the cache
  so.narrow = false;
  Synthesizer synth(so);
  std::optional<SynthesisResult> res;
  try {
    res = synth.synthesizeOptimized(*fn);
  } catch (const InternalError& e) {
    return errorResult(req.name, e.what(), false);
  }
  const SynthesisResult& r = *res;
  const RtlDesign& d = r.design;

  JsonValue j = JsonValue::object();
  j["file"] = req.name;
  j["design"] = d.fn.name();
  j["scheduler"] = std::string(schedulerName(req.opts.scheduler));
  j["encoding"] = std::string(stateEncodingName(req.opts.encoding));
  j["ops"] = d.fn.numLiveOps();
  j["blocks"] = d.fn.numBlocks();
  j["static_latency"] = r.staticLatency();
  j["registers"] = d.regs.numRegs;
  JsonValue fus = JsonValue::array();
  for (int f = 0; f < d.binding.numFus(); ++f)
    fus.push(d.lib.component(d.binding.fus[(std::size_t)f].comp).name);
  j["fus"] = std::move(fus);
  j["muxes"] = d.ic.mux2to1Count;
  j["states"] = d.ctrl.numStates();
  j["pla_terms"] = r.fsm.minimizedLogic.termCount();
  j["microcode_word_encoded"] = r.microEncoded.wordWidth;
  j["microcode_word_horizontal"] = r.microHorizontal.wordWidth;
  j["area"] = r.area.total();
  j["cycle_time"] = r.timing.cycleTime;
  return {j.dump(), true, false};
}

Result lintJson(const Request& req) {
  Result err;
  auto fn = compileCached(req, req.opts.opt, req.opts.narrow, err);
  if (!fn) return err;
  // Lint collects every finding in one pass: the stage-exit throwing
  // checks are disabled and checkDesign runs on the finished design.
  SynthesisOptions so = req.opts;
  so.check = false;
  so.opt = OptLevel::None;
  so.narrow = false;
  Synthesizer synth(so);
  std::optional<SynthesisResult> result;
  try {
    result = synth.synthesizeOptimized(*fn);
  } catch (const InternalError& e) {
    return errorResult(req.name,
                       std::string("synthesis failed before checking: ") +
                           e.what(),
                       false);
  }
  CheckOptions copts;
  const bool limited = req.opts.scheduler != SchedulerKind::ForceDirected &&
                       req.opts.scheduler != SchedulerKind::Serial;
  copts.resources =
      limited ? req.opts.resources : ResourceLimits::unlimited();
  copts.latencies = req.opts.latencies;
  CheckReport report = checkDesign(result->design, copts);
  return {reportJson("file", req.name, report) + "\n", report.clean(), false};
}

Result analyzeJson(const Request& req, bool postPipeline) {
  Result err;
  auto fn = compileCached(req, postPipeline ? req.opts.opt : OptLevel::None,
                       req.opts.narrow, err);
  if (!fn) return err;
  CheckReport report;
  checkSemantics(*fn, report);
  return {reportJson("file", req.name, report) + "\n", report.clean(), false};
}

JsonValue staJsonValue(const std::string& key, const std::string& name,
                       const sta::StaResult& r, const CheckReport& rep) {
  JsonValue j = sta::staReportJson(key, name, r);
  JsonValue diags = JsonValue::array();
  for (const CheckDiag& dg : rep.sorted()) {
    JsonValue o = JsonValue::object();
    o["severity"] = std::string(checkSeverityName(dg.severity));
    o["code"] = dg.id;
    o["where"] = dg.where;
    o["message"] = dg.message;
    diags.push(std::move(o));
  }
  j["diagnostics"] = std::move(diags);
  j["errors"] = rep.errorCount();
  j["warnings"] = rep.warningCount();
  j["clean"] = rep.clean();
  return j;
}

Result staJson(const Request& req, double clockNs, int maxPaths) {
  Result err;
  auto fn = compileCached(req, req.opts.opt, req.opts.narrow, err);
  if (!fn) return err;
  // Like lint: stage-exit throwing checks off so the timing report below
  // collects every finding instead of dying mid-pipeline.
  SynthesisOptions so = req.opts;
  so.check = false;
  so.opt = OptLevel::None;
  so.narrow = false;
  Synthesizer synth(so);
  std::optional<SynthesisResult> result;
  try {
    result = synth.synthesizeOptimized(*fn);
  } catch (const InternalError& e) {
    return errorResult(req.name,
                       std::string("synthesis failed before timing"
                                   " analysis: ") +
                           e.what(),
                       false);
  }
  sta::StaOptions sopt;
  sopt.clockNs = clockNs;
  sopt.maxPaths = maxPaths;
  const sta::StaResult r = sta::runSta(result->design, sopt);
  CheckReport rep;
  TimingLintOptions topt;
  topt.clockNs = clockNs;
  topt.maxReported = std::max(maxPaths, 1);
  checkTiming(result->design, topt, rep);
  return {staJsonValue("file", req.name, r, rep).dump(), rep.clean(), false};
}

Result proveJson(const Request& req, bool provePasses) {
  Result err;
  auto fn = compileCached(req, OptLevel::None, false, err);
  if (!fn) return err;
  CheckReport rep;
  auto runPipe = [&](PassManager& pm) {
    if (provePasses)
      sec::runPipelineValidated(pm, *fn, rep);
    else
      pm.run(*fn);
  };
  switch (req.opts.opt) {
    case OptLevel::None:
      break;
    case OptLevel::Standard: {
      auto pm = PassManager::standardPipeline();
      runPipe(pm);
      break;
    }
    case OptLevel::Aggressive: {
      auto pm = PassManager::aggressivePipeline();
      runPipe(pm);
      break;
    }
  }
  if (req.opts.narrow) {
    PassManager pm;
    pm.add(createNarrowWidthsPass());
    runPipe(pm);
  }
  SynthesisOptions so = req.opts;
  so.prove = false;  // the proof runs below, reporting instead of throwing
  so.narrow = false;
  so.opt = OptLevel::None;  // pipeline already applied above
  Synthesizer synth(so);
  try {
    SynthesisResult r = synth.synthesizeOptimized(*fn);
    rep.merge(sec::proveEquivalence(r.design));
  } catch (const InternalError& e) {
    return errorResult(req.name, e.what(), false);
  }
  // One-element array: the prove CLI prints an array even for one file.
  // Sequential append: GCC 12 -Wrestrict -O3 false positive on the
  // temporary chain (same story as obs/vcd.cpp).
  std::string body = "[";
  body += reportJson("file", req.name, rep);
  body += "]\n";
  return {std::move(body), rep.clean(), false};
}

Result simJson(const Request& req,
               const std::map<std::string, std::uint64_t>& inputs) {
  Result err;
  auto fn = compileCached(req, req.opts.opt, req.opts.narrow, err);
  if (!fn) return err;
  SynthesisOptions so = req.opts;
  so.opt = OptLevel::None;
  so.narrow = false;
  Synthesizer synth(so);
  std::optional<SynthesisResult> result;
  try {
    result = synth.synthesizeOptimized(*fn);
  } catch (const InternalError& e) {
    return errorResult(req.name, e.what(), false);
  }
  const RtlDesign& d = result->design;
  std::map<std::string, std::uint64_t> in = inputs;
  for (const auto& p : d.fn.ports())
    if (p.isInput && in.find(p.name) == in.end()) in[p.name] = 0;

  vm::RtlSim sim(d);
  RtlExecResult res;
  try {
    res = sim.run(in);
  } catch (const std::exception& e) {
    return errorResult(req.name, e.what(), false);
  }
  JsonValue j = JsonValue::object();
  j["file"] = req.name;
  j["design"] = d.fn.name();
  JsonValue jin = JsonValue::object();
  for (const auto& [k, v] : in) jin[k] = (double)v;
  j["inputs"] = std::move(jin);
  JsonValue jout = JsonValue::object();
  for (const auto& [k, v] : res.outputs) jout[k] = (double)v;
  j["outputs"] = std::move(jout);
  j["cycles"] = (long)res.cycles;
  j["finished"] = res.finished;
  return {j.dump(), res.finished, false};
}

}  // namespace mphls::cmd
