#include "sched/pipeline.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "ir/analysis.h"
#include "sched/sched_util.h"

namespace mphls {

namespace {

/// Folded resource table: usage[class][step mod II].
class ModuloUsage {
 public:
  ModuloUsage(const ResourceLimits& limits, int ii)
      : limits_(limits), ii_(ii) {}

  [[nodiscard]] bool canPlace(FuClass c, int step, int duration) const {
    if (c == FuClass::None) return true;
    int limit = limitFor(c);
    // A span longer than the II would collide with the same unit serving
    // the next sample regardless of the count.
    if (duration > ii_ && limit != std::numeric_limits<int>::max())
      return false;
    for (int d = 0; d < std::min(duration, ii_); ++d)
      if (usageAt(c, (step + d) % ii_) >= limit) return false;
    return true;
  }

  void place(FuClass c, int step, int duration) {
    if (c == FuClass::None) return;
    auto& v = usage_[c];
    if (v.empty()) v.assign((std::size_t)ii_, 0);
    for (int d = 0; d < std::min(duration, ii_); ++d)
      ++v[(std::size_t)((step + d) % ii_)];
  }

  /// Current worst folded load over the span `step..step+duration`.
  [[nodiscard]] int peakOver(FuClass c, int step, int duration) const {
    int peak = 0;
    for (int d = 0; d < std::min(duration, ii_); ++d)
      peak = std::max(peak, usageAt(c, (step + d) % ii_));
    return peak;
  }

  [[nodiscard]] std::map<FuClass, int> peaks() const {
    std::map<FuClass, int> out;
    for (const auto& [c, v] : usage_)
      out[c] = *std::max_element(v.begin(), v.end());
    return out;
  }

 private:
  const ResourceLimits& limits_;
  int ii_;
  std::map<FuClass, std::vector<int>> usage_;

  [[nodiscard]] int limitFor(FuClass c) const {
    if (c == FuClass::Move) {
      auto it = limits_.perClass.find(FuClass::Move);
      return it == limits_.perClass.end() ? std::numeric_limits<int>::max()
                                          : it->second;
    }
    return limits_.universal ? limits_.universalCount : limits_.limitFor(c);
  }

  [[nodiscard]] int usageAt(FuClass c, int slot) const {
    auto it = usage_.find(c);
    return it == usage_.end() ? 0 : it->second[(std::size_t)slot];
  }
};

}  // namespace

PipelineResult pipelineSchedule(const BlockDeps& deps, int ii,
                                const ResourceLimits& limits) {
  PipelineResult out;
  out.initiationInterval = ii;
  const std::size_t n = deps.numOps();

  std::vector<std::vector<const DepEdge*>> in(n);
  for (const DepEdge& e : deps.edges()) in[e.to].push_back(&e);

  // Iterative modulo scheduling over the topological order: each operation
  // scans the II-wide window starting at its dependence bound (folded slots
  // repeat with period II, so II consecutive candidates are exhaustive) and
  // takes the least-loaded feasible slot — balancing the distribution so
  // folding actually shares units, and declaring the II infeasible when no
  // slot in the window admits the operation.
  std::vector<int> occSteps(n, -1);
  std::vector<int> placedStep(n, -1);
  ModuloUsage usage(limits, ii);

  auto bound = [&](std::size_t i) {
    int b = 0;
    for (const DepEdge* e : in[i])
      b = std::max(b, placedStep[e->from] + deps.edgeLatency(*e));
    return b;
  };

  for (std::size_t i : deps.topoOrder()) {
    if (!deps.occupiesSlot(i)) {
      placedStep[i] = bound(i);
      continue;
    }
    FuClass c = scheduleClassOf(deps, i);
    const int dur = deps.duration(i);
    const int lo = bound(i);
    int best = -1;
    int bestLoad = INT32_MAX;
    for (int s = lo; s < lo + ii; ++s) {
      if (!usage.canPlace(c, s, dur)) continue;
      int load = usage.peakOver(c, s, dur);
      if (load < bestLoad) {
        bestLoad = load;
        best = s;
      }
    }
    if (best < 0) {
      out.feasible = false;  // every folded slot is saturated at this II
      return out;
    }
    usage.place(c, best, dur);
    occSteps[i] = best;
    placedStep[i] = best;
  }

  out.schedule = finalizeSchedule(deps, occSteps);
  out.unitsRequired = usage.peaks();
  out.feasible = true;
  return out;
}

std::string validatePipelineSchedule(const BlockDeps& deps,
                                     const PipelineResult& pr) {
  if (!pr.feasible) return "schedule marked infeasible";
  std::string base = validateBlockSchedule(deps, pr.schedule);
  if (!base.empty()) return base;

  // Folded usage must not exceed the reported unit counts.
  std::ostringstream err;
  const int ii = pr.initiationInterval;
  std::map<FuClass, std::vector<int>> usage;
  for (std::size_t i = 0; i < deps.numOps(); ++i) {
    FuClass c = scheduleClassOf(deps, i);
    if (c == FuClass::None) continue;
    auto& v = usage[c];
    if (v.empty()) v.assign((std::size_t)ii, 0);
    for (int d = 0; d < std::min(deps.duration(i), ii); ++d)
      ++v[(std::size_t)((pr.schedule.step[i] + d) % ii)];
  }
  for (const auto& [c, v] : usage) {
    int peak = *std::max_element(v.begin(), v.end());
    auto it = pr.unitsRequired.find(c);
    if (it == pr.unitsRequired.end() || peak > it->second) {
      err << "class " << fuClassName(c) << " folded usage " << peak
          << " exceeds reported units";
      return err.str();
    }
  }
  return {};
}

std::vector<PipelineResult> explorePipelines(const BlockDeps& deps) {
  std::vector<PipelineResult> out;
  PipelineResult base = pipelineSchedule(deps, 1);
  int maxIi = std::max(base.schedule.numSteps, 1);
  for (int ii = 1; ii <= maxIi; ++ii)
    out.push_back(pipelineSchedule(deps, ii));
  return out;
}

}  // namespace mphls
