// As-soon-as-possible scheduling under resource limits (Section 3.1.2,
// Fig. 3): "Operations are taken from the list in [topological] order and
// each is put into the earliest control step possible, given its dependence
// on other operations and the limits on resource usage."
//
// Deliberately local: no priority is given to critical-path operations, so
// less critical ops scheduled earlier can block critical ones — the
// pathology Fig. 3 illustrates and list scheduling (list_sched.h) fixes.
#pragma once

#include "ir/deps.h"
#include "sched/resource.h"
#include "sched/schedule.h"

namespace mphls {

[[nodiscard]] BlockSchedule asapResourceSchedule(const BlockDeps& deps,
                                                 const ResourceLimits& limits);

}  // namespace mphls
