#include "sched/force_directed.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

#include "ir/analysis.h"
#include "sched/sched_util.h"

namespace mphls {

namespace {

/// ASAP/ALAP frames honoring already-fixed ops.
struct Frames {
  std::vector<int> lo, hi;
};

Frames computeFrames(const BlockDeps& deps, int horizon,
                     const std::vector<int>& fixed) {
  const std::size_t n = deps.numOps();
  Frames fr;
  fr.lo.assign(n, 0);
  fr.hi.assign(n, horizon - 1);

  std::vector<std::vector<const DepEdge*>> in(n), out(n);
  for (const DepEdge& e : deps.edges()) {
    in[e.to].push_back(&e);
    out[e.from].push_back(&e);
  }
  auto order = deps.topoOrder();
  for (std::size_t i : order) {
    if (!fixed.empty() && fixed[i] >= 0) fr.lo[i] = fixed[i];
    for (const DepEdge* e : in[i])
      fr.lo[i] = std::max(fr.lo[i], fr.lo[e->from] + deps.edgeLatency(*e));
    if (!fixed.empty() && fixed[i] >= 0)
      fr.lo[i] = std::max(fr.lo[i], fixed[i]);
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    std::size_t i = *it;
    if (!fixed.empty() && fixed[i] >= 0) fr.hi[i] = fixed[i];
    for (const DepEdge* e : out[i])
      fr.hi[i] = std::min(fr.hi[i], fr.hi[e->to] - deps.edgeLatency(*e));
    fr.hi[i] = std::max(fr.hi[i], fr.lo[i]);  // keep frames non-empty
  }
  return fr;
}

/// Frame change produced by a (trial or committed) fix.
struct FrameDiff {
  int lo = 0, hi = 0;  ///< the op's new frame
};

/// Cached frames + distribution graphs for one force-directed run.
///
/// trial(i, s) answers "which frames change if op i is fixed at step s?"
/// by propagating only along affected dependence chains: the ASAP pass
/// walks forward from i in topological order, the ALAP pass walks backward
/// from i and from every op whose ASAP bound moved (the non-empty-frame
/// clamp couples hi to lo). Both passes recompute a node exactly the way
/// computeFrames does, so the reachable fixpoint — and therefore the
/// schedule — is identical to the from-scratch computation.
class FrameCache {
 public:
  FrameCache(const BlockDeps& deps, int horizon)
      : deps_(deps), horizon_(horizon), n_(deps.numOps()) {
    in_.resize(n_);
    out_.resize(n_);
    for (const DepEdge& e : deps.edges()) {
      const int lat = deps.edgeLatency(e);
      in_[e.to].push_back({e.from, lat});
      out_[e.from].push_back({e.to, lat});
    }
    topo_ = deps.topoOrder();
    pos_.resize(n_);
    for (std::size_t k = 0; k < n_; ++k) pos_[topo_[k]] = k;
    fixed_.assign(n_, -1);
    fr_ = computeFrames(deps, horizon, fixed_);
    loStamp_.assign(n_, 0);
    hiStamp_.assign(n_, 0);
    loVal_.assign(n_, 0);
    hiVal_.assign(n_, 0);
    rebuildDgs();
  }

  [[nodiscard]] const Frames& frames() const { return fr_; }
  [[nodiscard]] const std::map<FuClass, DistributionGraph>& dgs() const {
    return dgs_;
  }
  [[nodiscard]] const std::vector<int>& fixed() const { return fixed_; }

  /// Ops whose frames change when `i` is fixed at `s`, keyed by op index
  /// (ascending, so force terms accumulate in the reference order), each
  /// with its new frame. Ops whose recomputed frame is unchanged are
  /// absent. Valid until the next trial() or fix() call.
  const std::map<std::size_t, FrameDiff>& trial(std::size_t i, int s) {
    ++gen_;
    diff_.clear();
    changedLo_.clear();
    changedHi_.clear();
    trialOp_ = i;
    trialStep_ = s;

    // ASAP pass: forward from i in topological order.
    pending_.clear();
    pending_.insert(pos_[i]);
    while (!pending_.empty()) {
      const std::size_t p = *pending_.begin();
      pending_.erase(pending_.begin());
      const std::size_t j = topo_[p];
      const int f = fixedAt(j);
      int v = f >= 0 ? f : 0;
      for (const auto& [from, lat] : in_[j])
        v = std::max(v, loOf(from) + lat);
      if (v == fr_.lo[j]) continue;
      loVal_[j] = v;
      loStamp_[j] = gen_;
      changedLo_.push_back(j);
      for (const auto& [to, lat] : out_[j]) pending_.insert(pos_[to]);
    }

    // ALAP pass: backward from i and from every op whose lo moved (the
    // non-empty-frame clamp couples hi to lo).
    pendingRev_.clear();
    pendingRev_.insert(pos_[i]);
    for (std::size_t j : changedLo_) pendingRev_.insert(pos_[j]);
    while (!pendingRev_.empty()) {
      const std::size_t p = *pendingRev_.begin();
      pendingRev_.erase(pendingRev_.begin());
      const std::size_t j = topo_[p];
      const int f = fixedAt(j);
      int v = f >= 0 ? f : horizon_ - 1;
      for (const auto& [to, lat] : out_[j]) v = std::min(v, hiOf(to) - lat);
      v = std::max(v, loOf(j));  // keep frames non-empty
      if (v == fr_.hi[j]) continue;
      hiVal_[j] = v;
      hiStamp_[j] = gen_;
      changedHi_.push_back(j);
      for (const auto& [from, lat] : in_[j]) pendingRev_.insert(pos_[from]);
    }

    for (std::size_t j : changedLo_) diff_[j] = FrameDiff{loOf(j), hiOf(j)};
    for (std::size_t j : changedHi_) diff_[j] = FrameDiff{loOf(j), hiOf(j)};
    return diff_;
  }

  /// Fix op `i` at step `s`: apply the trial deltas to the cached frames
  /// and refresh the distribution graphs.
  void fix(std::size_t i, int s) {
    const auto& d = trial(i, s);
    fixed_[i] = s;
    for (const auto& [j, df] : d) {
      fr_.lo[j] = df.lo;
      fr_.hi[j] = df.hi;
    }
    trialOp_ = kNoTrial;
    rebuildDgs();
  }

 private:
  static constexpr std::size_t kNoTrial =
      std::numeric_limits<std::size_t>::max();

  [[nodiscard]] int fixedAt(std::size_t j) const {
    return j == trialOp_ ? trialStep_ : fixed_[j];
  }
  [[nodiscard]] int loOf(std::size_t j) const {
    return loStamp_[j] == gen_ ? loVal_[j] : fr_.lo[j];
  }
  [[nodiscard]] int hiOf(std::size_t j) const {
    return hiStamp_[j] == gen_ ? hiVal_[j] : fr_.hi[j];
  }

  // Same per-op contribution loop as distributionGraphs(), run over the
  // cached frames: identical iteration order, identical floating-point
  // sums.
  void rebuildDgs() {
    dgs_.clear();
    for (std::size_t i = 0; i < n_; ++i) {
      FuClass c = scheduleClassOf(deps_, i);
      if (c == FuClass::None) continue;
      auto& dg = dgs_[c];
      dg.fuClass = c;
      if (dg.load.empty())
        dg.load.assign(static_cast<std::size_t>(horizon_), 0.0);
      const int k = fr_.hi[i] - fr_.lo[i] + 1;
      for (int s = fr_.lo[i]; s <= fr_.hi[i]; ++s)
        dg.load[static_cast<std::size_t>(s)] += 1.0 / k;
    }
  }

  const BlockDeps& deps_;
  const int horizon_;
  const std::size_t n_;
  std::vector<std::vector<std::pair<std::size_t, int>>> in_, out_;
  std::vector<std::size_t> topo_, pos_;
  std::vector<int> fixed_;
  Frames fr_;
  std::map<FuClass, DistributionGraph> dgs_;

  // Trial scratch: generation-stamped overlays over fr_, so a trial costs
  // only its affected ops — nothing is cleared between candidates.
  unsigned gen_ = 0;
  std::size_t trialOp_ = kNoTrial;
  int trialStep_ = -1;
  std::vector<unsigned> loStamp_, hiStamp_;
  std::vector<int> loVal_, hiVal_;
  std::vector<std::size_t> changedLo_, changedHi_;
  std::set<std::size_t> pending_;                        // min-first
  std::set<std::size_t, std::greater<>> pendingRev_;     // max-first
  std::map<std::size_t, FrameDiff> diff_;
};

}  // namespace

std::map<FuClass, DistributionGraph> distributionGraphs(
    const BlockDeps& deps, int horizon, const std::vector<int>& fixed) {
  LevelInfo li = computeLevels(deps, horizon);
  horizon = std::max(horizon, li.criticalLength);
  Frames fr = computeFrames(deps, horizon, fixed);

  std::map<FuClass, DistributionGraph> dgs;
  for (std::size_t i = 0; i < deps.numOps(); ++i) {
    FuClass c = scheduleClassOf(deps, i);
    if (c == FuClass::None) continue;
    auto& dg = dgs[c];
    dg.fuClass = c;
    if (dg.load.empty()) dg.load.assign(static_cast<std::size_t>(horizon), 0.0);
    const int k = fr.hi[i] - fr.lo[i] + 1;
    for (int s = fr.lo[i]; s <= fr.hi[i]; ++s)
      dg.load[static_cast<std::size_t>(s)] += 1.0 / k;
  }
  return dgs;
}

BlockSchedule forceDirectedSchedule(const BlockDeps& deps, int horizon) {
  const std::size_t n = deps.numOps();
  LevelInfo li = computeLevels(deps, horizon);
  horizon = std::max(horizon, li.criticalLength);

  FrameCache cache(deps, horizon);

  // Iteratively fix the (op, step) assignment with the least force.
  for (;;) {
    const Frames& fr = cache.frames();
    const auto& dgs = cache.dgs();
    const std::vector<int>& fixed = cache.fixed();

    bool any = false;
    double bestForce = std::numeric_limits<double>::max();
    std::size_t bestOp = 0;
    int bestStep = 0;

    for (std::size_t i = 0; i < n; ++i) {
      FuClass c = scheduleClassOf(deps, i);
      if (c == FuClass::None || fixed[i] >= 0) continue;
      if (fr.lo[i] == fr.hi[i]) {
        // Frame already tight: fix it outright.
        cache.fix(i, fr.lo[i]);
        any = true;
        bestForce = std::numeric_limits<double>::max();
        break;
      }
      any = true;
      const DistributionGraph& dg = dgs.at(c);
      const int k = fr.hi[i] - fr.lo[i] + 1;
      const double avg = 1.0 / k;
      for (int s = fr.lo[i]; s <= fr.hi[i]; ++s) {
        // Self force: DG(s)*(x(s) - avg) summed over the frame, where x is
        // the candidate assignment (1 at s, 0 elsewhere).
        double force = 0;
        for (int t = fr.lo[i]; t <= fr.hi[i]; ++t) {
          double x = (t == s) ? 1.0 : 0.0;
          force += dg.at(t) * (x - avg);
        }
        // Successor/predecessor forces: fixing i at s narrows neighbors'
        // frames; approximate with the DG load change of direct neighbors.
        // The cache hands back exactly the ops whose frames the trial
        // placement moved, in ascending op order.
        for (const auto& [j, df] : cache.trial(i, s)) {
          if (j == i) continue;
          FuClass cj = scheduleClassOf(deps, j);
          if (cj == FuClass::None || fixed[j] >= 0) continue;
          const DistributionGraph& dgj = dgs.at(cj);
          int kOld = fr.hi[j] - fr.lo[j] + 1;
          int kNew = df.hi - df.lo + 1;
          for (int t = df.lo; t <= df.hi; ++t)
            force += dgj.at(t) * (1.0 / kNew);
          for (int t = fr.lo[j]; t <= fr.hi[j]; ++t)
            force -= dgj.at(t) * (1.0 / kOld);
        }
        if (force < bestForce) {
          bestForce = force;
          bestOp = i;
          bestStep = s;
        }
      }
    }
    if (!any) break;
    if (bestForce != std::numeric_limits<double>::max()) {
      cache.fix(bestOp, bestStep);
    }
  }
  return finalizeSchedule(deps, cache.fixed());
}

BlockSchedule forceDirectedScheduleReference(const BlockDeps& deps,
                                             int horizon) {
  const std::size_t n = deps.numOps();
  LevelInfo li = computeLevels(deps, horizon);
  horizon = std::max(horizon, li.criticalLength);

  std::vector<int> fixed(n, -1);

  // Iteratively fix the (op, step) assignment with the least force.
  for (;;) {
    Frames fr = computeFrames(deps, horizon, fixed);
    auto dgs = distributionGraphs(deps, horizon, fixed);

    // Find an unfixed occupying op.
    bool any = false;
    double bestForce = std::numeric_limits<double>::max();
    std::size_t bestOp = 0;
    int bestStep = 0;

    for (std::size_t i = 0; i < n; ++i) {
      FuClass c = scheduleClassOf(deps, i);
      if (c == FuClass::None || fixed[i] >= 0) continue;
      if (fr.lo[i] == fr.hi[i]) {
        // Frame already tight: fix it outright.
        fixed[i] = fr.lo[i];
        any = true;
        bestForce = std::numeric_limits<double>::max();
        break;
      }
      any = true;
      const DistributionGraph& dg = dgs.at(c);
      const int k = fr.hi[i] - fr.lo[i] + 1;
      const double avg = 1.0 / k;
      for (int s = fr.lo[i]; s <= fr.hi[i]; ++s) {
        // Self force: DG(s)*(x(s) - avg) summed over the frame, where x is
        // the candidate assignment (1 at s, 0 elsewhere).
        double force = 0;
        for (int t = fr.lo[i]; t <= fr.hi[i]; ++t) {
          double x = (t == s) ? 1.0 : 0.0;
          force += dg.at(t) * (x - avg);
        }
        // Successor/predecessor forces: fixing i at s narrows neighbors'
        // frames; approximate with the DG load change of direct neighbors.
        std::vector<int> trial = fixed;
        trial[i] = s;
        Frames trialFr = computeFrames(deps, horizon, trial);
        for (std::size_t j = 0; j < n; ++j) {
          if (j == i) continue;
          FuClass cj = scheduleClassOf(deps, j);
          if (cj == FuClass::None || fixed[j] >= 0) continue;
          if (trialFr.lo[j] == fr.lo[j] && trialFr.hi[j] == fr.hi[j]) continue;
          const DistributionGraph& dgj = dgs.at(cj);
          int kOld = fr.hi[j] - fr.lo[j] + 1;
          int kNew = trialFr.hi[j] - trialFr.lo[j] + 1;
          for (int t = trialFr.lo[j]; t <= trialFr.hi[j]; ++t)
            force += dgj.at(t) * (1.0 / kNew);
          for (int t = fr.lo[j]; t <= fr.hi[j]; ++t)
            force -= dgj.at(t) * (1.0 / kOld);
        }
        if (force < bestForce) {
          bestForce = force;
          bestOp = i;
          bestStep = s;
        }
      }
    }
    if (!any) break;
    if (bestForce != std::numeric_limits<double>::max()) {
      fixed[bestOp] = bestStep;
    }
  }
  return finalizeSchedule(deps, fixed);
}

}  // namespace mphls
