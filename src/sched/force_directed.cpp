#include "sched/force_directed.h"

#include <algorithm>
#include <limits>

#include "ir/analysis.h"
#include "sched/sched_util.h"

namespace mphls {

namespace {

/// ASAP/ALAP frames honoring already-fixed ops.
struct Frames {
  std::vector<int> lo, hi;
};

Frames computeFrames(const BlockDeps& deps, int horizon,
                     const std::vector<int>& fixed) {
  const std::size_t n = deps.numOps();
  Frames fr;
  fr.lo.assign(n, 0);
  fr.hi.assign(n, horizon - 1);

  std::vector<std::vector<const DepEdge*>> in(n), out(n);
  for (const DepEdge& e : deps.edges()) {
    in[e.to].push_back(&e);
    out[e.from].push_back(&e);
  }
  auto order = deps.topoOrder();
  for (std::size_t i : order) {
    if (!fixed.empty() && fixed[i] >= 0) fr.lo[i] = fixed[i];
    for (const DepEdge* e : in[i])
      fr.lo[i] = std::max(fr.lo[i], fr.lo[e->from] + deps.edgeLatency(*e));
    if (!fixed.empty() && fixed[i] >= 0)
      fr.lo[i] = std::max(fr.lo[i], fixed[i]);
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    std::size_t i = *it;
    if (!fixed.empty() && fixed[i] >= 0) fr.hi[i] = fixed[i];
    for (const DepEdge* e : out[i])
      fr.hi[i] = std::min(fr.hi[i], fr.hi[e->to] - deps.edgeLatency(*e));
    fr.hi[i] = std::max(fr.hi[i], fr.lo[i]);  // keep frames non-empty
  }
  return fr;
}

}  // namespace

std::map<FuClass, DistributionGraph> distributionGraphs(
    const BlockDeps& deps, int horizon, const std::vector<int>& fixed) {
  LevelInfo li = computeLevels(deps, horizon);
  horizon = std::max(horizon, li.criticalLength);
  Frames fr = computeFrames(deps, horizon, fixed);

  std::map<FuClass, DistributionGraph> dgs;
  for (std::size_t i = 0; i < deps.numOps(); ++i) {
    FuClass c = scheduleClassOf(deps, i);
    if (c == FuClass::None) continue;
    auto& dg = dgs[c];
    dg.fuClass = c;
    if (dg.load.empty()) dg.load.assign(static_cast<std::size_t>(horizon), 0.0);
    const int k = fr.hi[i] - fr.lo[i] + 1;
    for (int s = fr.lo[i]; s <= fr.hi[i]; ++s)
      dg.load[static_cast<std::size_t>(s)] += 1.0 / k;
  }
  return dgs;
}

BlockSchedule forceDirectedSchedule(const BlockDeps& deps, int horizon) {
  const std::size_t n = deps.numOps();
  LevelInfo li = computeLevels(deps, horizon);
  horizon = std::max(horizon, li.criticalLength);

  std::vector<int> fixed(n, -1);

  // Iteratively fix the (op, step) assignment with the least force.
  for (;;) {
    Frames fr = computeFrames(deps, horizon, fixed);
    auto dgs = distributionGraphs(deps, horizon, fixed);

    // Find an unfixed occupying op.
    bool any = false;
    double bestForce = std::numeric_limits<double>::max();
    std::size_t bestOp = 0;
    int bestStep = 0;

    for (std::size_t i = 0; i < n; ++i) {
      FuClass c = scheduleClassOf(deps, i);
      if (c == FuClass::None || fixed[i] >= 0) continue;
      if (fr.lo[i] == fr.hi[i]) {
        // Frame already tight: fix it outright.
        fixed[i] = fr.lo[i];
        any = true;
        bestForce = std::numeric_limits<double>::max();
        break;
      }
      any = true;
      const DistributionGraph& dg = dgs.at(c);
      const int k = fr.hi[i] - fr.lo[i] + 1;
      const double avg = 1.0 / k;
      for (int s = fr.lo[i]; s <= fr.hi[i]; ++s) {
        // Self force: DG(s)*(x(s) - avg) summed over the frame, where x is
        // the candidate assignment (1 at s, 0 elsewhere).
        double force = 0;
        for (int t = fr.lo[i]; t <= fr.hi[i]; ++t) {
          double x = (t == s) ? 1.0 : 0.0;
          force += dg.at(t) * (x - avg);
        }
        // Successor/predecessor forces: fixing i at s narrows neighbors'
        // frames; approximate with the DG load change of direct neighbors.
        std::vector<int> trial = fixed;
        trial[i] = s;
        Frames trialFr = computeFrames(deps, horizon, trial);
        for (std::size_t j = 0; j < n; ++j) {
          if (j == i) continue;
          FuClass cj = scheduleClassOf(deps, j);
          if (cj == FuClass::None || fixed[j] >= 0) continue;
          if (trialFr.lo[j] == fr.lo[j] && trialFr.hi[j] == fr.hi[j]) continue;
          const DistributionGraph& dgj = dgs.at(cj);
          int kOld = fr.hi[j] - fr.lo[j] + 1;
          int kNew = trialFr.hi[j] - trialFr.lo[j] + 1;
          for (int t = trialFr.lo[j]; t <= trialFr.hi[j]; ++t)
            force += dgj.at(t) * (1.0 / kNew);
          for (int t = fr.lo[j]; t <= fr.hi[j]; ++t)
            force -= dgj.at(t) * (1.0 / kOld);
        }
        if (force < bestForce) {
          bestForce = force;
          bestOp = i;
          bestStep = s;
        }
      }
    }
    if (!any) break;
    if (bestForce != std::numeric_limits<double>::max()) {
      fixed[bestOp] = bestStep;
    }
  }
  return finalizeSchedule(deps, fixed);
}

}  // namespace mphls
