#include "sched/sched_util.h"

#include <algorithm>
#include <limits>

namespace mphls {

bool UsageTracker::canPlace(FuClass c, int step, int duration) const {
  if (c == FuClass::None) return true;
  // Stand-alone moves are register/port transfers, not operators: even in
  // universal mode they only compete against an explicit Move limit.
  int limit;
  if (c == FuClass::Move) {
    auto it = limits_.perClass.find(FuClass::Move);
    limit = it == limits_.perClass.end() ? std::numeric_limits<int>::max()
                                         : it->second;
  } else {
    limit = limits_.universal ? limits_.universalCount : limits_.limitFor(c);
  }
  for (int s = step; s < step + duration; ++s)
    if (usageAt(bucketOf(c), s) >= limit) return false;
  return true;
}

void UsageTracker::place(FuClass c, int step, int duration) {
  if (c == FuClass::None) return;
  std::size_t b = bucketOf(c);
  if (b >= usage_.size()) usage_.resize(b + 1);
  auto& v = usage_[b];
  if (step + duration > static_cast<int>(v.size()))
    v.resize(static_cast<std::size_t>(step + duration), 0);
  for (int s = step; s < step + duration; ++s)
    ++v[static_cast<std::size_t>(s)];
}

void UsageTracker::remove(FuClass c, int step, int duration) {
  if (c == FuClass::None) return;
  std::size_t b = bucketOf(c);
  for (int s = step; s < step + duration; ++s) {
    MPHLS_CHECK(b < usage_.size() && s < static_cast<int>(usage_[b].size()) &&
                    usage_[b][static_cast<std::size_t>(s)] > 0,
                "remove of unplaced resource");
    --usage_[b][static_cast<std::size_t>(s)];
  }
}

BlockSchedule finalizeSchedule(const BlockDeps& deps,
                               const std::vector<int>& occSteps) {
  const std::size_t n = deps.numOps();
  BlockSchedule out;
  out.step.assign(n, 0);

  std::vector<std::vector<const DepEdge*>> in(n);
  for (const DepEdge& e : deps.edges()) in[e.to].push_back(&e);

  for (std::size_t i : deps.topoOrder()) {
    if (deps.occupiesSlot(i)) {
      MPHLS_CHECK(occSteps[i] >= 0, "occupying op " << i << " unscheduled");
      out.step[i] = occSteps[i];
    } else {
      int s = 0;
      for (const DepEdge* e : in[i])
        s = std::max(s, out.step[e->from] + deps.edgeLatency(*e));
      out.step[i] = s;
    }
  }
  int maxEnd = 0;
  for (std::size_t i = 0; i < n; ++i)
    maxEnd = std::max(maxEnd, out.step[i] + deps.duration(i));
  out.numSteps = n == 0 ? 0 : maxEnd;
  return out;
}

BlockSchedule asapUnconstrained(const BlockDeps& deps) {
  LevelInfo li = computeLevels(deps);
  BlockSchedule out;
  out.step = li.asap;
  int maxEnd = 0;
  for (std::size_t i = 0; i < deps.numOps(); ++i)
    maxEnd = std::max(maxEnd, out.step[i] + deps.duration(i));
  out.numSteps = deps.numOps() == 0 ? 0 : maxEnd;
  return out;
}

BlockSchedule alapUnconstrained(const BlockDeps& deps, int horizon) {
  LevelInfo li = computeLevels(deps, horizon);
  BlockSchedule out;
  out.step = li.alap;
  int maxEnd = 0;
  for (std::size_t i = 0; i < deps.numOps(); ++i)
    maxEnd = std::max(maxEnd, out.step[i] + deps.duration(i));
  out.numSteps = deps.numOps() == 0 ? 0 : maxEnd;
  return out;
}

BlockSchedule serialSchedule(const BlockDeps& deps) {
  const std::size_t n = deps.numOps();
  std::vector<int> steps(n, -1);
  std::vector<std::vector<const DepEdge*>> in(n);
  for (const DepEdge& e : deps.edges()) in[e.to].push_back(&e);

  // A free constant shift is still a graph node in the paper's trivial
  // schedule when it computes a stored result (Fig. 2's ">>" gets its own
  // control step in the 23-step count); scaling shifts buried inside an
  // expression are wiring and chain like casts. "Feeds a store through
  // free ops only" distinguishes the two.
  auto feedsSinkFreely = [&](std::size_t i) {
    std::vector<std::size_t> work{i};
    std::vector<bool> seen(n, false);
    while (!work.empty()) {
      std::size_t x = work.back();
      work.pop_back();
      if (seen[x]) continue;
      seen[x] = true;
      for (std::size_t s : deps.succs(x)) {
        const Op& so = deps.op(s);
        if (so.isSink()) return true;
        if (kindFlowsFree(so.kind)) work.push_back(s);
      }
    }
    return false;
  };
  auto isSerialNode = [&](std::size_t i) {
    if (deps.occupiesSlot(i)) return true;
    OpKind k = deps.op(i).kind;
    if (k == OpKind::ShlConst || k == OpKind::ShrConst ||
        k == OpKind::SarConst)
      return feedsSinkFreely(i);
    return false;
  };

  int counter = 0;
  std::vector<int> placed(n, 0);
  for (std::size_t i : deps.topoOrder()) {
    int bound = 0;
    for (const DepEdge* e : in[i])
      bound = std::max(bound, placed[e->from] + deps.edgeLatency(*e));
    if (isSerialNode(i)) {
      int s = std::max(counter, bound);
      placed[i] = s;
      steps[i] = s;
      counter = s + deps.duration(i);
    } else {
      placed[i] = bound;
      steps[i] = bound;
    }
  }
  BlockSchedule out;
  out.step = std::move(steps);
  int maxEnd = 0;
  for (std::size_t i = 0; i < n; ++i)
    maxEnd = std::max(maxEnd, out.step[i] + deps.duration(i));
  out.numSteps = n == 0 ? 0 : maxEnd;
  return out;
}

}  // namespace mphls
