// Shared scheduling machinery: resource usage tracking, chained-op
// finalization, and the two "degenerate" schedules the transformational
// algorithms start from — maximally serial and maximally parallel
// (Section 3.1.2: "a default schedule, usually either maximally serial or
// maximally parallel").
#pragma once

#include <vector>

#include "ir/analysis.h"
#include "ir/deps.h"
#include "sched/resource.h"
#include "sched/schedule.h"

namespace mphls {

/// Tracks per-step resource usage during constructive scheduling.
/// Multicycle operations occupy their unit for `duration` consecutive
/// steps starting at the issue step.
class UsageTracker {
 public:
  explicit UsageTracker(const ResourceLimits& limits) : limits_(limits) {}

  /// True when an op of class `c` can be added at `step` for `duration`
  /// consecutive steps.
  [[nodiscard]] bool canPlace(FuClass c, int step, int duration = 1) const;
  void place(FuClass c, int step, int duration = 1);
  void remove(FuClass c, int step, int duration = 1);

 private:
  const ResourceLimits& limits_;
  // In universal mode all classes share bucket 0.
  std::vector<std::vector<int>> usage_;  ///< [bucket][step]

  [[nodiscard]] std::size_t bucketOf(FuClass c) const {
    if (c == FuClass::Move) return static_cast<std::size_t>(FuClass::Move);
    return limits_.universal ? 0 : static_cast<std::size_t>(c);
  }
  [[nodiscard]] int usageAt(std::size_t bucket, int step) const {
    if (bucket >= usage_.size()) return 0;
    const auto& v = usage_[bucket];
    return step < static_cast<int>(v.size()) ? v[static_cast<std::size_t>(step)] : 0;
  }
};

/// Given fixed steps for slot-occupying ops (`occSteps[i]`, ignored and
/// recomputed for non-occupying ops), place every chained/free op at its
/// earliest feasible step and compute numSteps. The result satisfies all
/// dependence-edge latencies provided the occupying placements do.
[[nodiscard]] BlockSchedule finalizeSchedule(const BlockDeps& deps,
                                             const std::vector<int>& occSteps);

/// Unconstrained ASAP: every op at its earliest dependence-feasible step.
[[nodiscard]] BlockSchedule asapUnconstrained(const BlockDeps& deps);

/// Unconstrained ALAP within `horizon` steps (horizon <= 0 means the
/// critical length).
[[nodiscard]] BlockSchedule alapUnconstrained(const BlockDeps& deps,
                                              int horizon = 0);

/// The paper's "trivial special case ... one functional unit and one
/// memory. Each operation has to be scheduled in a different control step."
/// Serial nodes are all slot-occupying ops plus free constant shifts (the
/// shift gets its own step in the trivial schedule, per Fig. 2's 23-step
/// count); everything else chains.
[[nodiscard]] BlockSchedule serialSchedule(const BlockDeps& deps);

/// Schedule a whole function by applying `schedBlock` to every block.
template <typename F>
[[nodiscard]] Schedule scheduleFunction(
    const Function& fn, F&& schedBlock,
    const OpLatencyModel& latencies = OpLatencyModel::unit()) {
  Schedule s;
  s.blocks.resize(fn.numBlocks());
  for (const auto& blk : fn.blocks()) {
    BlockDeps deps(fn, blk, latencies);
    s.blocks[blk.id.index()] = schedBlock(deps);
  }
  return s;
}

}  // namespace mphls
