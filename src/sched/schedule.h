// Schedule representation and validation.
//
// "Scheduling consists in assigning the operations to so-called control
// steps. A control step is the fundamental sequencing unit in synchronous
// systems; it corresponds to a clock cycle." (Section 2)
//
// A BlockSchedule assigns every operation of one basic block to a control
// step; a Schedule aggregates per-block schedules for a whole function.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ir/analysis.h"
#include "ir/cdfg.h"
#include "ir/deps.h"
#include "lib/library.h"
#include "sched/resource.h"

namespace mphls {

/// Control-step assignment for one basic block.
struct BlockSchedule {
  std::vector<int> step;  ///< per op index in Block::ops
  int numSteps = 0;

  [[nodiscard]] bool empty() const { return step.empty(); }
};

/// Whole-function schedule.
struct Schedule {
  std::vector<BlockSchedule> blocks;  ///< indexed by BlockId

  [[nodiscard]] const BlockSchedule& of(BlockId b) const {
    return blocks.at(b.index());
  }
  [[nodiscard]] BlockSchedule& of(BlockId b) { return blocks.at(b.index()); }

  /// Sum of per-block step counts (static one-pass latency).
  [[nodiscard]] int totalSteps() const;

  /// Control steps consumed by an execution following `blockTrace`
  /// (e.g. the paper's 3 + 4*5 = 23 accounting for the sqrt loop).
  [[nodiscard]] long stepsForTrace(const std::vector<BlockId>& trace) const;
};

/// Check a block schedule against the dependence graph: every op has a
/// step in [0, numSteps), and every edge's latency is respected. Returns
/// an empty string when valid, else a description of the violation.
[[nodiscard]] std::string validateBlockSchedule(const BlockDeps& deps,
                                                const BlockSchedule& sched);

/// Also check resource limits: in no step does the number of slot-occupying
/// ops of a class exceed its limit.
[[nodiscard]] std::string validateBlockSchedule(const BlockDeps& deps,
                                                const BlockSchedule& sched,
                                                const ResourceLimits& limits);

/// Validate every block of a function schedule (with resource limits).
[[nodiscard]] std::string validateSchedule(
    const Function& fn, const Schedule& sched, const ResourceLimits& limits,
    const OpLatencyModel& latencies = OpLatencyModel::unit());

/// Per-class peak concurrency of a block schedule: the number of functional
/// units of each class the schedule requires (HAL's "maximum number required
/// in any control step").
[[nodiscard]] std::map<FuClass, int> peakUsage(const BlockDeps& deps,
                                               const BlockSchedule& sched);

/// Peak usage across all blocks of a function.
[[nodiscard]] std::map<FuClass, int> peakUsage(const Function& fn,
                                               const Schedule& sched);

/// The FU class an op is charged against in a schedule: structural moves
/// map to FuClass::Move, chained sinks and free ops to FuClass::None.
[[nodiscard]] FuClass scheduleClassOf(const BlockDeps& deps, std::size_t i);

/// ASCII rendering of a block schedule (one line per control step), in the
/// spirit of the paper's Fig. 2/3/4 schedule drawings.
[[nodiscard]] std::string renderBlockSchedule(const BlockDeps& deps,
                                              const BlockSchedule& sched);

}  // namespace mphls
