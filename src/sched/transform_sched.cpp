#include "sched/transform_sched.h"

#include <algorithm>
#include <functional>

#include "ir/analysis.h"
#include "sched/sched_util.h"

namespace mphls {

namespace {

/// Per-step usage map for a tentative assignment of occupying ops.
class StepUsage {
 public:
  StepUsage(const BlockDeps& deps, const ResourceLimits& limits,
            const std::vector<int>& steps)
      : deps_(deps), limits_(limits), usage_(limits) {
    for (std::size_t i = 0; i < deps.numOps(); ++i) {
      FuClass c = scheduleClassOf(deps, i);
      if (c != FuClass::None) usage_.place(c, steps[i], deps.duration(i));
    }
  }

  [[nodiscard]] bool canMove(std::size_t i, int fromStep, int toStep) {
    FuClass c = scheduleClassOf(deps_, i);
    const int dur = deps_.duration(i);
    usage_.remove(c, fromStep, dur);
    bool ok = usage_.canPlace(c, toStep, dur);
    usage_.place(c, fromStep, dur);
    return ok;
  }
  void move(std::size_t i, int fromStep, int toStep) {
    FuClass c = scheduleClassOf(deps_, i);
    const int dur = deps_.duration(i);
    usage_.remove(c, fromStep, dur);
    usage_.place(c, toStep, dur);
  }
  [[nodiscard]] bool overloaded(std::size_t i, int step) {
    // A step is overloaded for op i when removing and re-adding i fails,
    // i.e. usage exceeds the limit.
    FuClass c = scheduleClassOf(deps_, i);
    if (c == FuClass::None) return false;
    const int dur = deps_.duration(i);
    usage_.remove(c, step, dur);
    bool fits = usage_.canPlace(c, step, dur);
    usage_.place(c, step, dur);
    return !fits;
  }

 private:
  const BlockDeps& deps_;
  const ResourceLimits& limits_;
  UsageTracker usage_;
};

/// Earliest dependence-feasible step of op i given the other assignments.
int depLowerBound(const BlockDeps& deps,
                  const std::vector<std::vector<const DepEdge*>>& in,
                  const std::vector<int>& steps, std::size_t i) {
  int lo = 0;
  for (const DepEdge* e : in[i])
    lo = std::max(lo, steps[e->from] + deps.edgeLatency(*e));
  return lo;
}

}  // namespace

TransformResult transformationalSchedule(const BlockDeps& deps,
                                         const ResourceLimits& limits,
                                         TransformStart start) {
  const std::size_t n = deps.numOps();
  TransformResult res;

  std::vector<std::vector<const DepEdge*>> in(n), out(n);
  for (const DepEdge& e : deps.edges()) {
    in[e.to].push_back(&e);
    out[e.from].push_back(&e);
  }

  // Starting schedule (all ops, chained ones included).
  BlockSchedule cur = start == TransformStart::MaximallySerial
                          ? serialSchedule(deps)
                          : asapUnconstrained(deps);
  std::vector<int> steps = cur.step;

  auto topo = deps.topoOrder();

  if (start == TransformStart::MaximallyParallel) {
    // Serializing moves: while some step exceeds its limits, push an
    // offending op one step later, cascading the push through successors
    // whose dependence edges would otherwise be violated ("more control
    // steps are added" until the hardware constraint is met).
    StepUsage su(deps, limits, steps);
    long pushGuard = 0;
    const long pushLimit = static_cast<long>(n) * (4 * n + 64);

    std::function<void(std::size_t)> pushDown = [&](std::size_t i) {
      MPHLS_CHECK(++pushGuard < pushLimit,
                  "serializing transform failed to converge");
      FuClass c = scheduleClassOf(deps, i);
      if (c != FuClass::None) su.move(i, steps[i], steps[i] + 1);
      (void)c;
      steps[i] += 1;
      ++res.movesApplied;
      for (const DepEdge* e : out[i]) {
        int need = steps[i] + deps.edgeLatency(*e);
        while (steps[e->to] < need) pushDown(e->to);
      }
    };

    bool changed = true;
    while (changed) {
      changed = false;
      ++res.rounds;
      // Later ops first so pushes cascade downward, not back upward.
      for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        std::size_t i = *it;
        if (scheduleClassOf(deps, i) == FuClass::None) continue;
        if (!su.overloaded(i, steps[i])) continue;
        pushDown(i);
        changed = true;
      }
    }
  }

  // Parallelizing moves (both starts benefit): repeatedly move each op to
  // the earliest feasible step with free resources; compact empty steps.
  // Critical-path-first move order realizes the paper's claim that the
  // transformations "produce a fastest possible schedule" on these graphs.
  {
    LevelInfo li = computeLevels(deps);
    std::vector<std::size_t> moveOrder = topo;
    std::stable_sort(moveOrder.begin(), moveOrder.end(),
                     [&](std::size_t a, std::size_t b) {
                       return li.pathToSink[a] > li.pathToSink[b];
                     });
    StepUsage su(deps, limits, steps);
    bool changed = true;
    while (changed) {
      changed = false;
      ++res.rounds;
      for (std::size_t i : moveOrder) {
        if (scheduleClassOf(deps, i) == FuClass::None) {
          steps[i] = depLowerBound(deps, in, steps, i);
          continue;
        }
        int lo = depLowerBound(deps, in, steps, i);
        for (int s = lo; s < steps[i]; ++s) {
          if (su.canMove(i, steps[i], s)) {
            su.move(i, steps[i], s);
            steps[i] = s;
            ++res.movesApplied;
            changed = true;
            break;
          }
        }
      }
      MPHLS_CHECK(res.rounds < static_cast<int>(16 * n + 128),
                  "parallelizing transform failed to converge");
    }
  }

  // Compact unused steps.
  int maxStep = 0;
  for (std::size_t i = 0; i < n; ++i) maxStep = std::max(maxStep, steps[i]);
  for (std::size_t i = 0; i < n; ++i)
    maxStep = std::max(maxStep, steps[i] + deps.duration(i) - 1);
  std::vector<bool> used(static_cast<std::size_t>(maxStep) + 1, false);
  for (std::size_t i = 0; i < n; ++i)
    if (deps.occupiesSlot(i))
      for (int s = steps[i]; s < steps[i] + deps.duration(i); ++s)
        used[static_cast<std::size_t>(s)] = true;
  std::vector<int> remap(used.size(), 0);
  int next = 0;
  for (std::size_t s = 0; s < used.size(); ++s) {
    remap[s] = next;
    if (used[s]) ++next;
  }
  std::vector<int> occSteps(n, -1);
  for (std::size_t i = 0; i < n; ++i)
    if (deps.occupiesSlot(i))
      occSteps[i] = remap[static_cast<std::size_t>(steps[i])];

  res.schedule = finalizeSchedule(deps, occSteps);
  return res;
}

}  // namespace mphls
