// Transformational scheduling (Section 3.1.2 and the YSC discussion in
// 3.1.1): "A transformational type of algorithm begins with a default
// schedule, usually either maximally serial or maximally parallel, and
// applies transformations to it ... The transformations move serial
// operations in parallel and parallel operations in series."
//
// Two starting points are provided:
//  - MaximallySerial: the paper's trivial one-op-per-step schedule, then
//    parallelizing moves pack operations upward while resources allow;
//  - MaximallyParallel (YSC style): "It begins with each operation being
//    done on a separate functional unit and all operations being done in
//    the same control step ... If there is too much hardware ... more
//    control steps are added" — serializing moves push operations down
//    until every step fits the resource limits.
//
// Both converge to a schedule valid under `limits`; with heuristic move
// selection the serial start reproduces the paper's claim that the YSC
// transformations "produce a fastest possible schedule" on chain-dominated
// graphs.
#pragma once

#include "ir/deps.h"
#include "sched/resource.h"
#include "sched/schedule.h"

namespace mphls {

enum class TransformStart { MaximallySerial, MaximallyParallel };

struct TransformResult {
  BlockSchedule schedule;
  int movesApplied = 0;   ///< number of accepted transformations
  int rounds = 0;         ///< fixpoint iterations
};

[[nodiscard]] TransformResult transformationalSchedule(
    const BlockDeps& deps, const ResourceLimits& limits,
    TransformStart start = TransformStart::MaximallySerial);

}  // namespace mphls
