// Resource limits for resource-constrained scheduling.
//
// Two styles, matching the tutorial's discussion (Section 3.1.1): per-class
// limits ("how many multipliers, how many ALUs") and the "universal
// functional unit" view used in the paper's own square-root walkthrough
// ("a trivial special case uses just one functional unit and one memory").
#pragma once

#include <limits>
#include <map>

#include "lib/library.h"

namespace mphls {

struct ResourceLimits {
  /// When true, every slot-occupying operation (of any class, including
  /// stand-alone moves) competes for the same pool of `universalCount`
  /// units — the paper's "n functional units" accounting.
  bool universal = false;
  int universalCount = 0;

  /// Per-class limits; classes absent from the map are unlimited.
  std::map<FuClass, int> perClass;

  [[nodiscard]] static ResourceLimits unlimited() { return {}; }

  [[nodiscard]] static ResourceLimits universalSet(int n) {
    ResourceLimits r;
    r.universal = true;
    r.universalCount = n;
    return r;
  }

  [[nodiscard]] static ResourceLimits withClasses(
      std::map<FuClass, int> limits) {
    ResourceLimits r;
    r.perClass = std::move(limits);
    return r;
  }

  /// Limit for a class (INT_MAX when unlimited).
  [[nodiscard]] int limitFor(FuClass c) const {
    if (universal) return universalCount;
    auto it = perClass.find(c);
    return it == perClass.end() ? std::numeric_limits<int>::max() : it->second;
  }

  [[nodiscard]] bool isUnlimited() const {
    return !universal && perClass.empty();
  }
};

}  // namespace mphls
