// Force-directed scheduling (Paulin & Knight's HAL, Section 3.1.1/3.1.2,
// Fig. 5): time-constrained scheduling that balances functional-unit load
// across control steps.
//
// "The range of possible control steps for each operation is used to form a
// so-called Distribution Graph. The distribution graph shows, for each
// control step, how heavily loaded that step is, given that all possible
// schedules are equally likely. If an operation could be done in any of k
// control steps, then 1/k is added to each of those control steps ...
// Operations are then selected and placed so as to balance the distribution
// as much as possible."
#pragma once

#include <map>
#include <vector>

#include "ir/deps.h"
#include "sched/schedule.h"

namespace mphls {

/// Expected per-step load for one FU class, assuming uniform placement of
/// each op within its [ASAP, ALAP] frame.
struct DistributionGraph {
  FuClass fuClass = FuClass::None;
  std::vector<double> load;  ///< indexed by control step

  [[nodiscard]] double at(int step) const {
    return step >= 0 && step < static_cast<int>(load.size())
               ? load[static_cast<std::size_t>(step)]
               : 0.0;
  }
};

/// Build the distribution graphs for every FU class present in the block,
/// under a time constraint of `horizon` steps (>= critical length). Frames
/// may be narrowed by `fixed` (step per op, -1 when unfixed).
[[nodiscard]] std::map<FuClass, DistributionGraph> distributionGraphs(
    const BlockDeps& deps, int horizon,
    const std::vector<int>& fixed = {});

/// Force-directed schedule of one block into at most `horizon` steps
/// (clamped up to the critical length). Minimizes peak FU usage; the FU
/// allocation implied by the result is `peakUsage(deps, sched)` — "the
/// maximum number required in any control step".
///
/// Incremental implementation: the ASAP/ALAP time frames and the
/// distribution graphs are cached across the fix iterations and updated by
/// delta propagation when an operation is fixed — candidate evaluation
/// re-derives only the frames a trial placement actually narrows, instead
/// of rebuilding every frame per candidate. The result is identical to
/// forceDirectedScheduleReference on every input (the propagation computes
/// the same integer fixpoint and force terms accumulate in the same
/// order); only the wall time differs.
[[nodiscard]] BlockSchedule forceDirectedSchedule(const BlockDeps& deps,
                                                  int horizon);

/// The from-scratch HAL formulation: rebuilds every time frame and
/// distribution graph on each candidate evaluation. Kept as the oracle the
/// incremental scheduler is tested and benchmarked against.
[[nodiscard]] BlockSchedule forceDirectedScheduleReference(
    const BlockDeps& deps, int horizon);

}  // namespace mphls
