#include "sched/list_sched.h"

#include <algorithm>
#include <functional>

#include "ir/analysis.h"
#include "sched/sched_util.h"

namespace mphls {

std::string_view listPriorityName(ListPriority p) {
  switch (p) {
    case ListPriority::PathLength: return "path-length";
    case ListPriority::Mobility: return "mobility";
    case ListPriority::Urgency: return "urgency";
    case ListPriority::ProgramOrder: return "program-order";
  }
  return "?";
}

BlockSchedule listSchedule(const BlockDeps& deps, const ResourceLimits& limits,
                           ListPriority priority) {
  const std::size_t n = deps.numOps();
  LevelInfo li = computeLevels(deps);

  // Urgency (Elf/ISYN): the shortest path from the op to the nearest
  // constraint — here the block end. A longer shortest path means an
  // earlier effective deadline, hence more urgent.
  std::vector<int> shortestToEnd(n, 0);
  {
    auto order = deps.topoOrder();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      std::size_t i = *it;
      int best = -1;
      for (std::size_t s : deps.succs(i)) {
        if (best < 0 || shortestToEnd[s] < best) best = shortestToEnd[s];
      }
      shortestToEnd[i] = std::max(best, 0) + (deps.occupiesSlot(i) ? 1 : 0);
    }
  }

  // Priority score: higher schedules first.
  auto score = [&](std::size_t i) -> double {
    switch (priority) {
      case ListPriority::PathLength:
        return li.pathToSink[i];
      case ListPriority::Mobility:
        return -li.mobility[i];
      case ListPriority::Urgency:
        return shortestToEnd[i];
      case ListPriority::ProgramOrder:
        return -static_cast<double>(i);
    }
    return 0;
  };

  std::vector<std::vector<const DepEdge*>> in(n);
  for (const DepEdge& e : deps.edges()) in[e.to].push_back(&e);

  std::vector<int> occSteps(n, -1);
  std::vector<int> placedStep(n, -1);  // all ops (chained resolved inline)
  std::vector<std::size_t> pending(n, 0);
  for (std::size_t i = 0; i < n; ++i) pending[i] = in[i].size();

  UsageTracker usage(limits);

  // Pool of occupying ops whose predecessors are all placed.
  std::vector<std::size_t> pool;
  std::size_t remaining = 0;

  // Resolve an op once its predecessors are placed: chained ops get their
  // bound step immediately; occupying ops enter the ready pool.
  std::vector<std::size_t> resolveQueue;
  auto onPredsPlaced = [&](std::size_t i) { resolveQueue.push_back(i); };

  auto bound = [&](std::size_t i) {
    int b = 0;
    for (const DepEdge* e : in[i]) {
      MPHLS_CHECK(placedStep[e->from] >= 0, "pred not placed");
      b = std::max(b, placedStep[e->from] + deps.edgeLatency(*e));
    }
    return b;
  };

  std::function<void(std::size_t)> markPlaced = [&](std::size_t i) {
    for (std::size_t s : deps.succs(i))
      if (--pending[s] == 0) onPredsPlaced(s);
  };

  for (std::size_t i = 0; i < n; ++i) {
    if (deps.occupiesSlot(i)) ++remaining;
    if (pending[i] == 0) onPredsPlaced(i);
  }

  auto drainResolveQueue = [&]() {
    while (!resolveQueue.empty()) {
      std::size_t i = resolveQueue.back();
      resolveQueue.pop_back();
      if (deps.occupiesSlot(i)) {
        pool.push_back(i);
      } else {
        placedStep[i] = bound(i);
        markPlaced(i);
      }
    }
  };
  drainResolveQueue();

  int cur = 0;
  while (remaining > 0) {
    // Available = in pool with dependence bound satisfied at `cur`.
    std::vector<std::size_t> avail;
    for (std::size_t i : pool)
      if (bound(i) <= cur) avail.push_back(i);
    std::stable_sort(avail.begin(), avail.end(),
                     [&](std::size_t a, std::size_t b) {
                       return score(a) > score(b);
                     });
    for (std::size_t i : avail) {
      FuClass c = scheduleClassOf(deps, i);
      if (!usage.canPlace(c, cur, deps.duration(i)))
        continue;  // deferred to the next step
      usage.place(c, cur, deps.duration(i));
      occSteps[i] = cur;
      placedStep[i] = cur;
      pool.erase(std::find(pool.begin(), pool.end(), i));
      --remaining;
      markPlaced(i);
      drainResolveQueue();
    }
    ++cur;
    MPHLS_CHECK(cur < static_cast<int>(4 * n + 16),
                "list scheduler failed to converge");
  }
  return finalizeSchedule(deps, occSteps);
}

}  // namespace mphls
