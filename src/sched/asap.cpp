#include "sched/asap.h"

#include <algorithm>

#include "sched/sched_util.h"

namespace mphls {

BlockSchedule asapResourceSchedule(const BlockDeps& deps,
                                   const ResourceLimits& limits) {
  const std::size_t n = deps.numOps();
  std::vector<int> occSteps(n, -1);
  std::vector<int> bound(n, 0);
  std::vector<std::vector<const DepEdge*>> in(n);
  for (const DepEdge& e : deps.edges()) in[e.to].push_back(&e);

  UsageTracker usage(limits);

  // Topological = "first come, first served" order; ties resolved by
  // program order, exactly the local selection rule the paper criticizes.
  for (std::size_t i : deps.topoOrder()) {
    for (const DepEdge* e : in[i])
      bound[i] = std::max(bound[i], bound[e->from] + deps.edgeLatency(*e));
    FuClass c = scheduleClassOf(deps, i);
    if (c == FuClass::None) continue;  // chained ops finalized later
    int s = bound[i];
    const int dur = deps.duration(i);
    while (!usage.canPlace(c, s, dur)) ++s;
    usage.place(c, s, dur);
    occSteps[i] = s;
    bound[i] = s;  // successors see the actual placement
  }
  return finalizeSchedule(deps, occSteps);
}

}  // namespace mphls
