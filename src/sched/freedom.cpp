#include "sched/freedom.h"

#include <algorithm>

#include "ir/analysis.h"
#include "sched/sched_util.h"

namespace mphls {

namespace {

/// Earliest/latest feasible step of each op given partial placement,
/// within `horizon` steps.
struct Range {
  std::vector<int> lo, hi;
};

Range rangesGiven(const BlockDeps& deps, int horizon,
                  const std::vector<int>& placed) {
  const std::size_t n = deps.numOps();
  Range r;
  r.lo.assign(n, 0);
  r.hi.assign(n, horizon - 1);
  std::vector<std::vector<const DepEdge*>> in(n), out(n);
  for (const DepEdge& e : deps.edges()) {
    in[e.to].push_back(&e);
    out[e.from].push_back(&e);
  }
  auto order = deps.topoOrder();
  for (std::size_t i : order) {
    if (placed[i] >= 0) r.lo[i] = placed[i];
    for (const DepEdge* e : in[i])
      r.lo[i] = std::max(r.lo[i], r.lo[e->from] + deps.edgeLatency(*e));
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    std::size_t i = *it;
    if (placed[i] >= 0) r.hi[i] = placed[i];
    for (const DepEdge* e : out[i])
      r.hi[i] = std::min(r.hi[i], r.hi[e->to] - deps.edgeLatency(*e));
  }
  return r;
}

}  // namespace

FreedomResult freedomSchedule(const BlockDeps& deps,
                              const ResourceLimits& cap) {
  const std::size_t n = deps.numOps();
  LevelInfo li = computeLevels(deps);
  int horizon = li.criticalLength;

  std::vector<int> placed(n, -1);
  UsageTracker usage(cap);
  std::map<FuClass, std::vector<int>> stepLoad;  // per class per step
  std::map<FuClass, int> allocated;

  auto loadAt = [&](FuClass c, int s) -> int {
    auto it = stepLoad.find(c);
    if (it == stepLoad.end() || s >= static_cast<int>(it->second.size()))
      return 0;
    return it->second[static_cast<std::size_t>(s)];
  };
  auto addLoad = [&](FuClass c, int s) {
    auto& v = stepLoad[c];
    if (s >= static_cast<int>(v.size()))
      v.resize(static_cast<std::size_t>(s) + 1, 0);
    ++v[static_cast<std::size_t>(s)];
    allocated[c] = std::max(allocated[c], v[static_cast<std::size_t>(s)]);
  };

  // Phase 1: schedule critical-path ops (zero mobility) at their ASAP step.
  for (std::size_t i = 0; i < n; ++i) {
    if (scheduleClassOf(deps, i) == FuClass::None) continue;
    if (li.mobility[i] == 0) {
      FuClass c = scheduleClassOf(deps, i);
      if (!usage.canPlace(c, li.asap[i], deps.duration(i))) continue;
      placed[i] = li.asap[i];
      usage.place(c, placed[i], deps.duration(i));
      addLoad(c, placed[i]);
    }
  }

  // Phase 2: repeatedly place the unscheduled op with least freedom.
  for (;;) {
    Range r = rangesGiven(deps, horizon, placed);
    std::size_t best = n;
    int bestFreedom = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (placed[i] >= 0 || scheduleClassOf(deps, i) == FuClass::None)
        continue;
      int freedom = r.hi[i] - r.lo[i];
      if (best == n || freedom < bestFreedom) {
        best = i;
        bestFreedom = freedom;
      }
    }
    if (best == n) break;

    FuClass c = scheduleClassOf(deps, best);
    // Prefer a step where an already-allocated unit is idle; else allocate
    // a new unit (cap permitting); else extend the horizon.
    int chosen = -1;
    for (int s = r.lo[best]; s <= r.hi[best]; ++s) {
      if (loadAt(c, s) < allocated[c] && usage.canPlace(c, s, deps.duration(best))) {
        chosen = s;
        break;
      }
    }
    if (chosen < 0) {
      for (int s = r.lo[best]; s <= r.hi[best]; ++s) {
        if (usage.canPlace(c, s, deps.duration(best))) {
          chosen = s;
          break;
        }
      }
    }
    if (chosen < 0) {
      // Resource cap reached everywhere in the frame. Growing the horizon
      // alone cannot help once the op's successors are placed — their
      // steps pin r.hi regardless of the horizon — so stretch the schedule
      // by inserting a fresh control step at the front of the window:
      // every placed op at or below the insertion point slides down one
      // step, which opens capacity inside the window itself.
      ++horizon;
      MPHLS_CHECK(horizon <= li.criticalLength + 4 * static_cast<int>(n) + 16,
                  "freedom scheduler failed to converge");
      const int at = r.lo[best];
      for (std::size_t i = 0; i < n; ++i) {
        if (placed[i] < at) continue;
        FuClass ci = scheduleClassOf(deps, i);
        usage.remove(ci, placed[i], deps.duration(i));
        ++placed[i];
        usage.place(ci, placed[i], deps.duration(i));
      }
      stepLoad.clear();
      allocated.clear();
      for (std::size_t i = 0; i < n; ++i)
        if (placed[i] >= 0) addLoad(scheduleClassOf(deps, i), placed[i]);
      continue;
    }
    placed[best] = chosen;
    usage.place(c, chosen, deps.duration(best));
    addLoad(c, chosen);
  }

  FreedomResult out;
  out.schedule = finalizeSchedule(deps, placed);
  out.allocated = std::move(allocated);
  return out;
}

}  // namespace mphls
