#include "sched/bnb.h"

#include <algorithm>

#include "ir/analysis.h"
#include "sched/list_sched.h"
#include "sched/sched_util.h"

namespace mphls {

namespace {

struct Searcher {
  const BlockDeps& deps;
  const ResourceLimits& limits;
  long budget;

  std::vector<std::size_t> occOps;          // occupying ops, topo order
  std::vector<std::vector<const DepEdge*>> in;
  std::vector<int> remainingDepth;          // pathToSink per op
  std::vector<int> placed;                  // step per op index, -1 unset
  UsageTracker usage;
  int bestLen;
  std::vector<int> bestPlaced;
  long nodes = 0;
  bool exhausted = false;  // budget ran out

  Searcher(const BlockDeps& d, const ResourceLimits& l, long b)
      : deps(d), limits(l), budget(b), usage(l), bestLen(0) {}

  /// Lower bound on total length if op list position `idx` onward is still
  /// unplaced and the current partial schedule already spans `curLen`.
  void dfs(std::size_t idx, int curLen) {
    if (exhausted) return;
    if (++nodes > budget) {
      exhausted = true;
      return;
    }
    if (idx == occOps.size()) {
      if (curLen < bestLen) {
        bestLen = curLen;
        bestPlaced = placed;
      }
      return;
    }
    std::size_t i = occOps[idx];
    // Dependence lower bound for this op.
    int lo = 0;
    for (const DepEdge* e : in[i]) {
      int from = placed[e->from];
      if (from < 0) continue;  // non-occupying chained op: bounded via others
      lo = std::max(lo, from + deps.edgeLatency(*e));
    }
    FuClass c = scheduleClassOf(deps, i);
    // Try steps in increasing order; prune when the critical-path tail from
    // this op can no longer beat the incumbent (branch-and-bound cut).
    for (int s = lo; s + remainingDepth[i] <= bestLen - 1; ++s) {
      const int dur = deps.duration(i);
      if (!usage.canPlace(c, s, dur)) continue;
      usage.place(c, s, dur);
      placed[i] = s;
      std::vector<std::size_t> resolved;
      resolveChained(i, resolved);
      dfs(idx + 1, std::max(curLen, s + 1));
      for (std::size_t r : resolved) placed[r] = -1;
      placed[i] = -1;
      usage.remove(c, s, deps.duration(i));
    }
  }

  /// Non-occupying ops get steps lazily: whenever all their preds are
  /// placed, record the implied step so successors can bound on them.
  /// Records what it resolved so the caller can backtrack.
  void resolveChained(std::size_t justPlaced,
                      std::vector<std::size_t>& resolved) {
    for (std::size_t s : deps.succs(justPlaced)) {
      if (deps.occupiesSlot(s) || placed[s] >= 0) continue;
      int b = 0;
      bool ready = true;
      for (const DepEdge* e : in[s]) {
        if (placed[e->from] < 0) {
          ready = false;
          break;
        }
        b = std::max(b, placed[e->from] + deps.edgeLatency(*e));
      }
      if (ready) {
        placed[s] = b;
        resolved.push_back(s);
        resolveChained(s, resolved);
      }
    }
  }
};

}  // namespace

BnbResult branchBoundSchedule(const BlockDeps& deps,
                              const ResourceLimits& limits, long nodeBudget) {
  const std::size_t n = deps.numOps();
  Searcher sr(deps, limits, nodeBudget);
  sr.in.resize(n);
  for (const DepEdge& e : deps.edges()) sr.in[e.to].push_back(&e);

  LevelInfo li = computeLevels(deps);
  sr.remainingDepth = li.pathToSink;

  for (std::size_t i : deps.topoOrder())
    if (deps.occupiesSlot(i)) sr.occOps.push_back(i);

  // Seed the incumbent with a list schedule (upper bound).
  BlockSchedule seed = listSchedule(deps, limits, ListPriority::PathLength);
  sr.bestLen = seed.numSteps;
  sr.bestPlaced.assign(n, -1);
  for (std::size_t i = 0; i < n; ++i)
    if (deps.occupiesSlot(i)) sr.bestPlaced[i] = seed.step[i];

  sr.placed.assign(n, -1);
  // Chained ops with no preds resolve to step 0 up front.
  for (std::size_t i = 0; i < n; ++i)
    if (!deps.occupiesSlot(i) && sr.in[i].empty()) sr.placed[i] = 0;
  // Propagate chains among already-resolved ops (e.g. const -> cast).
  for (std::size_t i : deps.topoOrder()) {
    if (deps.occupiesSlot(i) || sr.placed[i] >= 0) continue;
    int b = 0;
    bool ready = true;
    for (const DepEdge* e : sr.in[i]) {
      if (sr.placed[e->from] < 0) {
        ready = false;
        break;
      }
      b = std::max(b, sr.placed[e->from] + deps.edgeLatency(*e));
    }
    if (ready) sr.placed[i] = b;
  }

  sr.dfs(0, 0);

  BnbResult out;
  out.schedule = finalizeSchedule(deps, sr.bestPlaced);
  out.optimal = !sr.exhausted;
  out.nodesExplored = sr.nodes;
  return out;
}

}  // namespace mphls
