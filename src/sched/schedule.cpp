#include "sched/schedule.h"

#include <algorithm>
#include <sstream>

namespace mphls {

int Schedule::totalSteps() const {
  int total = 0;
  for (const auto& b : blocks) total += b.numSteps;
  return total;
}

long Schedule::stepsForTrace(const std::vector<BlockId>& trace) const {
  long total = 0;
  for (BlockId b : trace) total += blocks.at(b.index()).numSteps;
  return total;
}

FuClass scheduleClassOf(const BlockDeps& deps, std::size_t i) {
  if (!deps.occupiesSlot(i)) return FuClass::None;
  const Op& o = deps.op(i);
  if (o.isSink()) return FuClass::Move;
  return classOf(o.kind);
}

std::string validateBlockSchedule(const BlockDeps& deps,
                                  const BlockSchedule& sched) {
  std::ostringstream err;
  if (sched.step.size() != deps.numOps()) {
    err << "schedule covers " << sched.step.size() << " ops, block has "
        << deps.numOps();
    return err.str();
  }
  for (std::size_t i = 0; i < deps.numOps(); ++i) {
    if (sched.step[i] < 0 || sched.step[i] >= std::max(sched.numSteps, 1)) {
      err << "op " << i << " step " << sched.step[i] << " outside [0, "
          << sched.numSteps << ")";
      return err.str();
    }
  }
  for (const DepEdge& e : deps.edges()) {
    int lat = deps.edgeLatency(e);
    if (sched.step[e.to] - sched.step[e.from] < lat) {
      err << "edge " << e.from << " -> " << e.to << " needs separation "
          << lat << " but steps are " << sched.step[e.from] << " and "
          << sched.step[e.to];
      return err.str();
    }
  }
  return {};
}

std::string validateBlockSchedule(const BlockDeps& deps,
                                  const BlockSchedule& sched,
                                  const ResourceLimits& limits) {
  std::string base = validateBlockSchedule(deps, sched);
  if (!base.empty() || limits.isUnlimited()) return base;

  std::ostringstream err;
  const int steps = std::max(sched.numSteps, 1);
  if (limits.universal) {
    // Moves do not occupy universal operator slots (register transfers);
    // they are checked against an explicit Move limit only. Multicycle
    // operations hold their unit for every step of their span.
    std::vector<int> usage(steps, 0);
    std::vector<int> moves(steps, 0);
    for (std::size_t i = 0; i < deps.numOps(); ++i) {
      FuClass c = scheduleClassOf(deps, i);
      if (c == FuClass::None) continue;
      if (c == FuClass::Move) {
        ++moves[sched.step[i]];
      } else {
        for (int s = sched.step[i];
             s < sched.step[i] + deps.duration(i) && s < steps; ++s)
          ++usage[s];
      }
    }
    for (int s = 0; s < steps; ++s) {
      if (usage[s] > limits.universalCount) {
        err << "step " << s << " uses " << usage[s] << " of "
            << limits.universalCount << " universal units";
        return err.str();
      }
      auto it = limits.perClass.find(FuClass::Move);
      if (it != limits.perClass.end() && moves[s] > it->second) {
        err << "step " << s << " uses " << moves[s] << " moves of "
            << it->second;
        return err.str();
      }
    }
  } else {
    std::map<FuClass, std::vector<int>> usage;
    for (std::size_t i = 0; i < deps.numOps(); ++i) {
      FuClass c = scheduleClassOf(deps, i);
      if (c == FuClass::None) continue;
      auto& vec = usage[c];
      if (vec.empty()) vec.assign(steps, 0);
      int span = c == FuClass::Move ? 1 : deps.duration(i);
      for (int s = sched.step[i]; s < sched.step[i] + span && s < steps; ++s)
        ++vec[s];
    }
    for (const auto& [c, vec] : usage) {
      int limit = limits.limitFor(c);
      for (int s = 0; s < steps; ++s)
        if (vec[s] > limit) {
          err << "step " << s << " uses " << vec[s] << " "
              << fuClassName(c) << " units of " << limit;
          return err.str();
        }
    }
  }
  return {};
}

std::string validateSchedule(const Function& fn, const Schedule& sched,
                             const ResourceLimits& limits,
                             const OpLatencyModel& latencies) {
  if (sched.blocks.size() != fn.numBlocks()) return "block count mismatch";
  for (const auto& blk : fn.blocks()) {
    BlockDeps deps(fn, blk, latencies);
    std::string msg =
        validateBlockSchedule(deps, sched.blocks[blk.id.index()], limits);
    if (!msg.empty()) return "block " + blk.name + ": " + msg;
  }
  return {};
}

std::map<FuClass, int> peakUsage(const BlockDeps& deps,
                                 const BlockSchedule& sched) {
  std::map<FuClass, std::vector<int>> usage;
  const int steps = std::max(sched.numSteps, 1);
  for (std::size_t i = 0; i < deps.numOps(); ++i) {
    FuClass c = scheduleClassOf(deps, i);
    if (c == FuClass::None) continue;
    auto& vec = usage[c];
    if (vec.empty()) vec.assign(steps, 0);
    ++vec[sched.step[i]];
  }
  std::map<FuClass, int> peak;
  for (const auto& [c, vec] : usage)
    peak[c] = *std::max_element(vec.begin(), vec.end());
  return peak;
}

std::map<FuClass, int> peakUsage(const Function& fn, const Schedule& sched) {
  std::map<FuClass, int> peak;
  for (const auto& blk : fn.blocks()) {
    BlockDeps deps(fn, blk);
    for (const auto& [c, n] : peakUsage(deps, sched.blocks[blk.id.index()]))
      peak[c] = std::max(peak[c], n);
  }
  return peak;
}

std::string renderBlockSchedule(const BlockDeps& deps,
                                const BlockSchedule& sched) {
  std::ostringstream oss;
  for (int s = 0; s < sched.numSteps; ++s) {
    oss << "step " << s << ":";
    for (std::size_t i = 0; i < deps.numOps(); ++i) {
      if (sched.step[i] != s) continue;
      const Op& o = deps.op(i);
      if (o.kind == OpKind::Nop) continue;
      oss << "  " << opName(o.kind);
      if (o.kind == OpKind::Const) oss << "(" << o.imm << ")";
      if (o.var.valid()) oss << "[" << deps.fn().var(o.var).name << "]";
      if (o.port.valid()) oss << "[" << deps.fn().port(o.port).name << "]";
      if (!deps.occupiesSlot(i)) oss << "~";  // chained / free
    }
    oss << "\n";
  }
  return oss.str();
}

}  // namespace mphls
