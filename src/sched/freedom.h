// Freedom-based scheduling (MAHA, Section 3.1.2): "the operations on the
// critical path are scheduled first and assigned to functional units. Then
// the other operations are scheduled and assigned one at a time. At each
// step the unscheduled operation with the least freedom, that is, the one
// with the smallest range of control steps into which it can go, is chosen,
// so that operations that might present more difficult scheduling problems
// are taken care of first, before they become blocked."
//
// Like MAHA, this interacts with allocation: units are added only when an
// operation cannot share an existing one ("adding functional units only
// when it cannot share existing ones"); an optional resource cap bounds the
// additions and stretches the schedule instead.
#pragma once

#include "ir/deps.h"
#include "sched/resource.h"
#include "sched/schedule.h"

namespace mphls {

struct FreedomResult {
  BlockSchedule schedule;
  /// Functional units the scheduler ended up allocating per class.
  std::map<FuClass, int> allocated;
};

[[nodiscard]] FreedomResult freedomSchedule(
    const BlockDeps& deps,
    const ResourceLimits& cap = ResourceLimits::unlimited());

}  // namespace mphls
