// Exhaustive / branch-and-bound scheduling (Section 3.1.2): "Barbacci's
// EXPL ... used exhaustive search. That is, it tried all possible
// combinations of serial and parallel transformations and chose the best
// design found. This method has the advantage that it looks through all
// possible designs, but of course it is computationally very expensive ...
// Exhaustive search can be improved somewhat by using branch-and-bound
// techniques, which cut off the search along any path that can be
// recognized to be suboptimal."
//
// Finds a provably minimum-length schedule under resource limits; cost is
// exponential (the paper's point — scheduling with resource limits is
// NP-hard), so a node budget bounds the search and reports whether the
// result is proven optimal.
#pragma once

#include "ir/deps.h"
#include "sched/resource.h"
#include "sched/schedule.h"

namespace mphls {

struct BnbResult {
  BlockSchedule schedule;
  bool optimal = false;       ///< search completed within the node budget
  long nodesExplored = 0;
};

[[nodiscard]] BnbResult branchBoundSchedule(const BlockDeps& deps,
                                            const ResourceLimits& limits,
                                            long nodeBudget = 2'000'000);

}  // namespace mphls
