// Pipeline (modulo) scheduling — the paper's Sehwa domain (Section 3.3:
// "Synthesis of pipelined data paths is a design domain which has now been
// characterized by a foundation of theory [20] and implemented by the
// program Sehwa", after Park & Parker, "Sehwa: A Software Package for
// Synthesis of Pipelines from Behavioral Specifications").
//
// A pipelined datapath accepts a new data sample every II ("initiation
// interval") control steps; operations of successive samples overlap, so a
// functional unit is in conflict with itself modulo II. The scheduler here
// is a modulo list scheduler over one straight-line block: operations are
// placed in priority order such that every resource's usage folded into
// the II frame stays within its limit. Exploring II from 1 to the latency
// produces Sehwa's classic cost/performance curve: small II = high
// throughput = many units.
#pragma once

#include "ir/deps.h"
#include "sched/resource.h"
#include "sched/schedule.h"

namespace mphls {

struct PipelineResult {
  BlockSchedule schedule;   ///< per-sample schedule (latency steps)
  int initiationInterval = 0;
  bool feasible = false;    ///< a valid modulo schedule was found
  /// Peak per-class usage folded modulo II — the units a pipelined
  /// implementation must instantiate.
  std::map<FuClass, int> unitsRequired;

  /// Samples per control step (the pipeline's throughput).
  [[nodiscard]] double throughput() const {
    return feasible ? 1.0 / initiationInterval : 0.0;
  }
};

/// Modulo-schedule one block at the given initiation interval under
/// per-class resource limits (unlimited by default: the result then
/// reports how many units the II demands). Blocks with loops or variable
/// reuse hazards across samples are the caller's responsibility; this
/// operates on a single straight-line dataflow block.
[[nodiscard]] PipelineResult pipelineSchedule(
    const BlockDeps& deps, int initiationInterval,
    const ResourceLimits& limits = ResourceLimits::unlimited());

/// Validate: dependence edges respected and no resource class exceeds its
/// folded (modulo II) usage.
[[nodiscard]] std::string validatePipelineSchedule(const BlockDeps& deps,
                                                   const PipelineResult& pr);

/// Sehwa-style exploration: pipeline schedules for every II from 1 to the
/// unconstrained latency, with the implied unit counts (the
/// cost/performance trade-off curve).
[[nodiscard]] std::vector<PipelineResult> explorePipelines(
    const BlockDeps& deps);

}  // namespace mphls
