// List scheduling (Section 3.1.2, Fig. 4): "For each control step to be
// scheduled, the operations that are available to be scheduled into that
// control step ... are kept in a list, ordered by some priority function.
// Each operation on the list is taken in turn and is scheduled if the
// resources it needs are still free in that step; otherwise it is deferred
// to the next step."
//
// The priority function is pluggable, reproducing the variants the paper
// attributes to different systems:
//   - PathLength: "the length of the path from the operation to the end of
//     the block" (BUD; also Fig. 4's worked example);
//   - Mobility:   least ALAP-ASAP slack first (most critical first);
//   - Urgency:    "the length of the shortest path from that operation to
//     the nearest local constraint" (Elf, ISYN) — here the distance to the
//     block end through the op's successor chain;
//   - ProgramOrder: no priority (degenerates to ASAP's behavior).
#pragma once

#include "ir/deps.h"
#include "sched/resource.h"
#include "sched/schedule.h"

namespace mphls {

enum class ListPriority { PathLength, Mobility, Urgency, ProgramOrder };

[[nodiscard]] std::string_view listPriorityName(ListPriority p);

[[nodiscard]] BlockSchedule listSchedule(
    const BlockDeps& deps, const ResourceLimits& limits,
    ListPriority priority = ListPriority::PathLength);

}  // namespace mphls
