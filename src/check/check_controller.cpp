#include "check/check_controller.h"

#include <algorithm>
#include <deque>
#include <sstream>
#include <vector>

namespace mphls {

namespace {

std::string stateWhere(const Controller& ctrl, std::size_t s) {
  std::ostringstream oss;
  oss << "state S" << s;
  if (s < ctrl.numStates() && !ctrl.states[s].halt)
    oss << " (b" << ctrl.states[s].block.get() << " step "
        << ctrl.states[s].step << ")";
  return oss.str();
}

bool inRange(const Controller& ctrl, StateId s) {
  return s.valid() && s.index() < ctrl.numStates();
}

/// The state a control transfer to `b` lands in, skipping zero-step blocks
/// (mirrors buildController's firstStateOf). Invalid on malformed chains.
StateId firstStateOf(const Function& fn, const Schedule& sched,
                     const Controller& ctrl, BlockId b, int depth) {
  if (depth > (int)fn.numBlocks() + 1) return StateId::invalid();
  if (!b.valid() || b.index() >= fn.numBlocks()) return StateId::invalid();
  const BlockSchedule& bs = sched.of(b);
  if (bs.numSteps > 0) return ctrl.stateAt(b, 0);
  const Terminator& t = fn.block(b).term;
  switch (t.kind) {
    case Terminator::Kind::Return:
      return ctrl.haltState;
    case Terminator::Kind::Jump:
      return firstStateOf(fn, sched, ctrl, t.target, depth + 1);
    case Terminator::Kind::Branch:
      return StateId::invalid();  // branch in an empty block is malformed
  }
  return ctrl.haltState;
}

// Sortable/printable keys for the three action families.

std::string fuActionKey(const FuAction& a) {
  std::ostringstream oss;
  oss << "fu" << a.fu << " " << opName(a.kind) << " sel(" << a.muxSel[0]
      << "," << a.muxSel[1] << "," << a.muxSel[2] << ") width " << a.width
      << " cycles " << a.cycles;
  return oss.str();
}

std::string regActionKey(const RegAction& a) {
  std::ostringstream oss;
  oss << "r" << a.reg << " <= leg " << a.muxSel;
  return oss.str();
}

std::string portActionKey(const PortAction& a) {
  std::ostringstream oss;
  oss << "port " << a.port << " <= leg " << a.muxSel;
  return oss.str();
}

/// Diff two multisets of rendered actions; report one finding per missing
/// and per extra element.
void diffActions(const Controller& ctrl, std::size_t stateIdx,
                 std::vector<std::string> expected,
                 std::vector<std::string> actual, std::string_view what,
                 CheckReport& report) {
  std::sort(expected.begin(), expected.end());
  std::sort(actual.begin(), actual.end());
  std::vector<std::string> missing, extra;
  std::set_difference(expected.begin(), expected.end(), actual.begin(),
                      actual.end(), std::back_inserter(missing));
  std::set_difference(actual.begin(), actual.end(), expected.begin(),
                      expected.end(), std::back_inserter(extra));
  for (const std::string& m : missing) {
    std::ostringstream oss;
    oss << "binding requires " << what << " [" << m
        << "] but the state does not assert it";
    report.error("ctrl.action-missing", stateWhere(ctrl, stateIdx),
                 oss.str());
  }
  for (const std::string& e : extra) {
    std::ostringstream oss;
    oss << "state asserts " << what << " [" << e
        << "] the binding does not require";
    report.error("ctrl.action-extra", stateWhere(ctrl, stateIdx), oss.str());
  }
}

}  // namespace

void checkController(const Function& fn, const Schedule& sched,
                     const Controller& ctrl, const InterconnectResult& ic,
                     const FuBinding& binding,
                     const OpLatencyModel& latencies, CheckReport& report) {
  const std::size_t n = ctrl.numStates();
  if (!inRange(ctrl, ctrl.initial)) {
    report.error("ctrl.transition-range", "controller",
                 "initial state is out of range");
    return;
  }
  if (!inRange(ctrl, ctrl.haltState) ||
      !ctrl.states[ctrl.haltState.index()].halt) {
    report.error("ctrl.transition-range", "controller",
                 "halt state is missing or not marked halting");
    return;
  }

  // --- coverage and transitions ----------------------------------------
  for (const auto& blk : fn.blocks()) {
    const BlockSchedule& bs = sched.of(blk.id);
    for (int s = 0; s < bs.numSteps; ++s) {
      StateId sid = ctrl.stateAt(blk.id, s);
      std::ostringstream where;
      where << "block " << blk.name << " step " << s;
      if (!inRange(ctrl, sid)) {
        report.error("ctrl.step-uncovered", where.str(),
                     "scheduled control step has no FSM state");
        continue;
      }
      const CtrlState& st = ctrl.states[sid.index()];
      if (st.halt || st.block != blk.id || st.step != s) {
        report.error("ctrl.state-binding", stateWhere(ctrl, sid.index()),
                     "state does not belong to " + where.str());
        continue;
      }
      // Expected successor(s).
      if (s + 1 < bs.numSteps) {
        StateId want = ctrl.stateAt(blk.id, s + 1);
        if (st.conditional || !(st.next == want)) {
          report.error("ctrl.transition-target",
                       stateWhere(ctrl, sid.index()),
                       "mid-block state must fall through to the next step");
        }
        continue;
      }
      const Terminator& t = blk.term;
      switch (t.kind) {
        case Terminator::Kind::Return:
          if (st.conditional || !(st.next == ctrl.haltState))
            report.error("ctrl.transition-target",
                         stateWhere(ctrl, sid.index()),
                         "returning block must transition to the halt state");
          break;
        case Terminator::Kind::Jump: {
          StateId want = firstStateOf(fn, sched, ctrl, t.target, 0);
          if (st.conditional || !inRange(ctrl, want) || !(st.next == want))
            report.error("ctrl.transition-target",
                         stateWhere(ctrl, sid.index()),
                         "jump does not land on the target block's first "
                         "state");
          break;
        }
        case Terminator::Kind::Branch: {
          StateId wantTaken = firstStateOf(fn, sched, ctrl, t.target, 0);
          StateId wantNot = firstStateOf(fn, sched, ctrl, t.elseTarget, 0);
          if (!st.conditional || !inRange(ctrl, wantTaken) ||
              !inRange(ctrl, wantNot) || !(st.nextTaken == wantTaken) ||
              !(st.nextNot == wantNot)) {
            report.error("ctrl.transition-target",
                         stateWhere(ctrl, sid.index()),
                         "branch targets do not match the terminator");
          }
          if (st.conditional) {
            if (st.cond.finalWidth() != 1) {
              std::ostringstream oss;
              oss << "branch condition is " << st.cond.finalWidth()
                  << " bits wide";
              report.error("ctrl.cond-width", stateWhere(ctrl, sid.index()),
                           oss.str());
            }
            if (st.cond.kind == Source::Kind::Fu &&
                (st.cond.id < 0 || st.cond.id >= binding.numFus())) {
              report.error("ctrl.cond-source", stateWhere(ctrl, sid.index()),
                           "branch condition names a nonexistent unit");
            }
          }
          break;
        }
      }
    }
  }

  // Successor ranges for every state (including unmapped ones).
  for (std::size_t s = 0; s < n; ++s) {
    const CtrlState& st = ctrl.states[s];
    if (st.halt) continue;
    if (st.conditional) {
      if (!inRange(ctrl, st.nextTaken) || !inRange(ctrl, st.nextNot))
        report.error("ctrl.transition-range", stateWhere(ctrl, s),
                     "conditional successor out of range");
    } else if (!inRange(ctrl, st.next)) {
      report.error("ctrl.transition-range", stateWhere(ctrl, s),
                   "successor out of range");
    }
  }

  // --- reachability ------------------------------------------------------
  auto successors = [&](std::size_t s) {
    std::vector<std::size_t> out;
    const CtrlState& st = ctrl.states[s];
    if (st.halt) return out;
    if (st.conditional) {
      if (inRange(ctrl, st.nextTaken)) out.push_back(st.nextTaken.index());
      if (inRange(ctrl, st.nextNot)) out.push_back(st.nextNot.index());
    } else if (inRange(ctrl, st.next)) {
      out.push_back(st.next.index());
    }
    return out;
  };

  std::vector<char> reach(n, 0);
  std::deque<std::size_t> work{ctrl.initial.index()};
  reach[ctrl.initial.index()] = 1;
  while (!work.empty()) {
    std::size_t s = work.front();
    work.pop_front();
    for (std::size_t t : successors(s))
      if (!reach[t]) {
        reach[t] = 1;
        work.push_back(t);
      }
  }
  for (std::size_t s = 0; s < n; ++s)
    if (!reach[s])
      report.error("ctrl.unreachable-state", stateWhere(ctrl, s),
                   "state is unreachable from the initial state");

  // Reverse reachability to halt.
  std::vector<std::vector<std::size_t>> preds(n);
  for (std::size_t s = 0; s < n; ++s)
    for (std::size_t t : successors(s)) preds[t].push_back(s);
  std::vector<char> live(n, 0);
  work.assign(1, ctrl.haltState.index());
  live[ctrl.haltState.index()] = 1;
  while (!work.empty()) {
    std::size_t s = work.front();
    work.pop_front();
    for (std::size_t p : preds[s])
      if (!live[p]) {
        live[p] = 1;
        work.push_back(p);
      }
  }
  for (std::size_t s = 0; s < n; ++s)
    if (!live[s])
      report.error("ctrl.dead-state", stateWhere(ctrl, s),
                   "state cannot reach the halt state");

  // --- datapath actions --------------------------------------------------
  // Reconstruct the action set each state must assert from the schedule and
  // the interconnect's per-op wiring (the same recipe buildController uses),
  // then require the controller to match it exactly.
  std::vector<std::vector<std::string>> wantFu(n), wantReg(n), wantPort(n);
  bool wiringUsable = ic.opWiring.size() == fn.numBlocks();
  for (const auto& blk : fn.blocks()) {
    if (!wiringUsable) break;
    const BlockSchedule& bs = sched.of(blk.id);
    if (ic.opWiring[blk.id.index()].size() != blk.ops.size() ||
        bs.step.size() != blk.ops.size()) {
      wiringUsable = false;  // other analyzers report the size mismatch
      break;
    }
    for (std::size_t i = 0; i < blk.ops.size(); ++i) {
      const OpWiring& ow = ic.opWiring[blk.id.index()][i];
      if (ow.fu < 0 && ow.destReg < 0 && ow.destPort < 0) continue;
      StateId sid = ctrl.stateAt(blk.id, bs.step[i]);
      if (!inRange(ctrl, sid)) continue;  // reported as step-uncovered
      const Op& o = fn.op(blk.ops[i]);
      int doneStep = bs.step[i];
      if (ow.fu >= 0) {
        FuAction fa;
        fa.fu = ow.fu;
        fa.kind = o.kind;
        fa.width = o.result.valid() ? fn.value(o.result).width : 1;
        fa.cycles = latencies.of(o.kind);
        for (int p = 0; p < 3; ++p) fa.muxSel[p] = ow.fuMuxSel[p];
        wantFu[sid.index()].push_back(fuActionKey(fa));
        doneStep = bs.step[i] + fa.cycles - 1;
      }
      if (ow.destReg >= 0 || ow.destPort >= 0) {
        StateId did = ctrl.stateAt(blk.id, doneStep);
        if (!inRange(ctrl, did)) {
          std::ostringstream where;
          where << "block " << blk.name << " step " << doneStep;
          report.error("ctrl.step-uncovered", where.str(),
                       "operation completes in a step with no FSM state");
          continue;
        }
        if (ow.destReg >= 0)
          wantReg[did.index()].push_back(
              regActionKey({ow.destReg, ow.destRegMuxSel}));
        if (ow.destPort >= 0)
          wantPort[did.index()].push_back(
              portActionKey({ow.destPort, ow.destPortMuxSel}));
      }
    }
  }
  if (wiringUsable) {
    for (std::size_t s = 0; s < n; ++s) {
      const CtrlState& st = ctrl.states[s];
      std::vector<std::string> fuKeys, regKeys, portKeys;
      for (const FuAction& a : st.fuActions) fuKeys.push_back(fuActionKey(a));
      for (const RegAction& a : st.regActions)
        regKeys.push_back(regActionKey(a));
      for (const PortAction& a : st.portActions)
        portKeys.push_back(portActionKey(a));
      diffActions(ctrl, s, wantFu[s], fuKeys, "FU operation", report);
      diffActions(ctrl, s, wantReg[s], regKeys, "register load", report);
      diffActions(ctrl, s, wantPort[s], portKeys, "port write", report);
    }
  }
}

}  // namespace mphls
