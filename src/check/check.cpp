#include "check/check.h"

#include "rtl/verilog.h"

namespace mphls {

CheckReport checkDesign(const RtlDesign& design, const CheckOptions& options) {
  CheckReport report;
  if (options.semantics) checkSemantics(design.fn, report);
  if (options.schedule)
    checkSchedule(design.fn, design.sched, options.resources,
                  options.latencies, report);
  if (options.binding)
    checkBinding(design.fn, design.sched, design.lifetimes, design.regs,
                 design.binding, design.ic, design.lib, options.latencies,
                 report);
  if (options.controller)
    checkController(design.fn, design.sched, design.ctrl, design.ic,
                    design.binding, options.latencies, report);
  if (options.timing) checkTiming(design, options.timingOptions, report);
  if (options.netlist && options.latencies.isUnit())
    lintVerilog(emitVerilog(design), report);
  return report;
}

}  // namespace mphls
