#include "check/report.h"

#include <sstream>

namespace mphls {

std::string_view checkSeverityName(CheckSeverity s) {
  switch (s) {
    case CheckSeverity::Note: return "note";
    case CheckSeverity::Warning: return "warning";
    case CheckSeverity::Error: return "error";
  }
  return "?";
}

std::string CheckDiag::str() const {
  std::ostringstream oss;
  oss << checkSeverityName(severity) << " [" << id << "]";
  if (!where.empty()) oss << " " << where;
  oss << ": " << message;
  return oss.str();
}

std::size_t CheckReport::errorCount() const {
  std::size_t n = 0;
  for (const auto& d : diags_)
    if (d.severity == CheckSeverity::Error) ++n;
  return n;
}

std::size_t CheckReport::warningCount() const {
  std::size_t n = 0;
  for (const auto& d : diags_)
    if (d.severity == CheckSeverity::Warning) ++n;
  return n;
}

bool CheckReport::has(std::string_view id) const {
  for (const auto& d : diags_)
    if (d.id == id) return true;
  return false;
}

std::size_t CheckReport::countOf(std::string_view id) const {
  std::size_t n = 0;
  for (const auto& d : diags_)
    if (d.id == id) ++n;
  return n;
}

std::string CheckReport::firstError() const {
  for (const auto& d : diags_)
    if (d.severity == CheckSeverity::Error) return d.str();
  return {};
}

std::string CheckReport::render() const {
  std::ostringstream oss;
  for (const auto& d : diags_) oss << d.str() << "\n";
  oss << errorCount() << " error(s), " << warningCount() << " warning(s)\n";
  return oss.str();
}

}  // namespace mphls
