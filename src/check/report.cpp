#include "check/report.h"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "obs/trace.h"

namespace mphls {

std::string_view checkSeverityName(CheckSeverity s) {
  switch (s) {
    case CheckSeverity::Note: return "note";
    case CheckSeverity::Warning: return "warning";
    case CheckSeverity::Error: return "error";
  }
  return "?";
}

std::string CheckDiag::str() const {
  std::ostringstream oss;
  oss << checkSeverityName(severity) << " [" << id << "]";
  if (!where.empty()) oss << " " << where;
  oss << ": " << message;
  return oss.str();
}

std::size_t CheckReport::errorCount() const {
  std::size_t n = 0;
  for (const auto& d : diags_)
    if (d.severity == CheckSeverity::Error) ++n;
  return n;
}

std::size_t CheckReport::warningCount() const {
  std::size_t n = 0;
  for (const auto& d : diags_)
    if (d.severity == CheckSeverity::Warning) ++n;
  return n;
}

bool CheckReport::has(std::string_view id) const {
  for (const auto& d : diags_)
    if (d.id == id) return true;
  return false;
}

std::size_t CheckReport::countOf(std::string_view id) const {
  std::size_t n = 0;
  for (const auto& d : diags_)
    if (d.id == id) ++n;
  return n;
}

std::string CheckReport::firstError() const {
  for (const auto& d : diags_)
    if (d.severity == CheckSeverity::Error) return d.str();
  return {};
}

std::vector<CheckDiag> CheckReport::sorted() const {
  std::vector<CheckDiag> out = diags_;
  std::stable_sort(out.begin(), out.end(),
                   [](const CheckDiag& a, const CheckDiag& b) {
                     // Errors first, then warnings, then notes.
                     if (a.severity != b.severity)
                       return (int)a.severity > (int)b.severity;
                     return std::tie(a.id, a.where, a.message) <
                            std::tie(b.id, b.where, b.message);
                   });
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string CheckReport::render() const {
  std::ostringstream oss;
  for (const auto& d : sorted()) oss << d.str() << "\n";
  oss << errorCount() << " error(s), " << warningCount() << " warning(s)\n";
  return oss.str();
}

std::string CheckReport::renderJson() const {
  std::string out = "{\"diagnostics\":[";
  bool first = true;
  for (const auto& d : sorted()) {
    if (!first) out += ",";
    first = false;
    out += "{\"severity\":\"";
    out += checkSeverityName(d.severity);
    out += "\",\"code\":";
    obs::appendJsonString(out, d.id);
    out += ",\"where\":";
    obs::appendJsonString(out, d.where);
    out += ",\"message\":";
    obs::appendJsonString(out, d.message);
    out += "}";
  }
  out += "],\"errors\":" + std::to_string(errorCount()) +
         ",\"warnings\":" + std::to_string(warningCount()) +
         ",\"clean\":" + (clean() ? "true" : "false") + "}";
  return out;
}

}  // namespace mphls
