#include "check/check_semantics.h"

#include <sstream>

#include "analysis/dataflow.h"
#include "common/bitutil.h"

namespace mphls {

namespace {

std::string opWhere(const Function& fn, const Block& blk, std::size_t i) {
  std::ostringstream oss;
  oss << "block " << blk.name << " op " << i << " ("
      << opName(fn.op(blk.ops[i]).kind) << ")";
  return oss.str();
}

bool isDivision(OpKind k) {
  return k == OpKind::Div || k == OpKind::UDiv || k == OpKind::Mod ||
         k == OpKind::UMod;
}

/// The value whose fact the store-truncation lint judges. The frontend
/// lowers `dest = expr` as an explicit Trunc of the expression value down
/// to the destination width, so the store argument itself always fits;
/// walking back through the conversion chain recovers the expression whose
/// bits the assignment discards.
ValueId storedExpression(const Function& fn, ValueId v) {
  while (fn.defOf(v).kind == OpKind::Trunc) v = fn.defOf(v).args[0];
  return v;
}

}  // namespace

void checkSemantics(const Function& fn, CheckReport& report) {
  const AnalysisResult res = analyzeFunction(fn);

  for (const Block& blk : fn.blocks()) {
    if (!res.blockReachable[blk.id.index()]) {
      if (!blk.ops.empty()) {
        std::ostringstream oss;
        oss << "no execution path reaches this block; its " << blk.ops.size()
            << " operation(s) are dead";
        report.warning("analysis.unreachable-block", "block " + blk.name,
                       oss.str());
      }
      continue;
    }

    for (std::size_t i = 0; i < blk.ops.size(); ++i) {
      const Op& o = fn.op(blk.ops[i]);
      if (o.kind == OpKind::StoreVar || o.kind == OpKind::WritePort) {
        const AbsVal& v = res.fact(storedExpression(fn, o.args[0]));
        const int destW = o.kind == OpKind::StoreVar
                              ? fn.var(o.var).width
                              : fn.port(o.port).width;
        if (!v.isBottom && v.ulo > maskBits(destW)) {
          const std::string dest =
              o.kind == OpKind::StoreVar
                  ? "variable '" + fn.var(o.var).name + "'"
                  : "port '" + fn.port(o.port).name + "'";
          std::ostringstream oss;
          oss << "assigned value is provably " << v.str() << ", which never "
              << "fits the " << destW << "-bit " << dest
              << "; high bits are always lost";
          report.warning("analysis.store-truncates", opWhere(fn, blk, i),
                         oss.str());
        }
      }
      if (isDivision(o.kind)) {
        const AbsVal& d = res.fact(o.args[1]);
        if (d.isConstant() && d.constValue() == 0) {
          report.warning("analysis.div-by-zero", opWhere(fn, blk, i),
                         "divisor is always zero; the result is the "
                         "defined division-by-zero value, not a quotient");
        } else if (d.contains(0)) {
          std::ostringstream oss;
          oss << "divisor range " << d.str()
              << " contains zero; guard the division or tighten the range";
          report.warning("analysis.div-by-zero", opWhere(fn, blk, i),
                         oss.str());
        }
      }
    }

    if (blk.term.kind == Terminator::Kind::Branch) {
      for (const auto& db : res.deadBranches) {
        if (db.block != blk.id) continue;
        const BlockId dead = db.condValue ? blk.term.elseTarget
                                          : blk.term.target;
        std::ostringstream oss;
        oss << "branch condition is always "
            << (db.condValue ? "true" : "false") << "; the edge to block '"
            << fn.block(dead).name << "' is never taken";
        report.warning("analysis.dead-branch", "block " + blk.name,
                       oss.str());
      }
    }
  }

  for (OpId oid : res.readsBeforeWrite) {
    const Op& o = fn.op(oid);
    // Locate the op for the diagnostic (ops carry no block backreference).
    for (const Block& blk : fn.blocks()) {
      for (std::size_t i = 0; i < blk.ops.size(); ++i) {
        if (blk.ops[i] != oid) continue;
        std::ostringstream oss;
        oss << "variable '" << fn.var(o.var).name
            << "' is read before any store on every path reaching this "
            << "load; the read yields its initial zero";
        report.warning("analysis.read-before-write", opWhere(fn, blk, i),
                       oss.str());
      }
    }
  }
}

}  // namespace mphls
