#include "check/check_schedule.h"

#include <algorithm>
#include <limits>
#include <map>
#include <sstream>
#include <vector>

#include "ir/deps.h"

namespace mphls {

namespace {

std::string_view depKindName(DepKind k) {
  switch (k) {
    case DepKind::Data: return "data";
    case DepKind::VarRaw: return "var RAW";
    case DepKind::VarWar: return "var WAR";
    case DepKind::VarWaw: return "var WAW";
    case DepKind::PortWaw: return "port WAW";
  }
  return "?";
}

std::string opWhere(const Block& blk, const BlockDeps& deps, std::size_t i) {
  std::ostringstream oss;
  oss << "block " << blk.name << " op " << i << " ("
      << opName(deps.op(i).kind) << ")";
  return oss.str();
}

void checkBlock(const Block& blk, const BlockDeps& deps,
                const BlockSchedule& bs, const ResourceLimits& limits,
                CheckReport& report) {
  if (bs.step.size() != deps.numOps()) {
    std::ostringstream oss;
    oss << "schedule covers " << bs.step.size() << " ops, block has "
        << deps.numOps();
    report.error("sched.op-count", "block " + blk.name, oss.str());
    return;  // per-op indices below would be meaningless
  }

  // Steps in range; multi-cycle spans inside the block.
  bool stepsUsable = true;
  for (std::size_t i = 0; i < deps.numOps(); ++i) {
    if (bs.step[i] < 0 || bs.step[i] >= std::max(bs.numSteps, 1)) {
      std::ostringstream oss;
      oss << "step " << bs.step[i] << " outside [0, " << bs.numSteps << ")";
      report.error("sched.step-range", opWhere(blk, deps, i), oss.str());
      stepsUsable = false;
      continue;
    }
    int dur = deps.occupiesSlot(i) ? deps.duration(i) : 1;
    if (bs.step[i] + dur > std::max(bs.numSteps, 1)) {
      std::ostringstream oss;
      oss << "op issues at step " << bs.step[i] << " for " << dur
          << " cycles but the block has only " << bs.numSteps << " steps";
      report.error("sched.multicycle-span", opWhere(blk, deps, i), oss.str());
    }
  }
  if (!stepsUsable) return;  // dependence/resource math needs valid steps

  // Dependence separations.
  for (const DepEdge& e : deps.edges()) {
    int lat = deps.edgeLatency(e);
    if (bs.step[e.to] - bs.step[e.from] < lat) {
      std::ostringstream oss;
      oss << depKindName(e.kind) << " dependence on op " << e.from << " ("
          << opName(deps.op(e.from).kind) << ") needs separation " << lat
          << " but steps are " << bs.step[e.from] << " -> " << bs.step[e.to];
      report.error("sched.dep-order", opWhere(blk, deps, e.to), oss.str());
    }
  }

  // Resource limits: multi-cycle ops hold their unit for their whole span;
  // stand-alone moves are charged against an explicit Move limit only
  // (matching UsageTracker/validateBlockSchedule accounting).
  if (limits.isUnlimited()) return;
  const int steps = std::max(bs.numSteps, 1);
  std::map<FuClass, std::vector<int>> usage;
  for (std::size_t i = 0; i < deps.numOps(); ++i) {
    FuClass c = scheduleClassOf(deps, i);
    if (c == FuClass::None) continue;
    FuClass bucket =
        (limits.universal && c != FuClass::Move) ? FuClass::None : c;
    auto& vec = usage[bucket];
    if (vec.empty()) vec.assign((std::size_t)steps, 0);
    int span = c == FuClass::Move ? 1 : deps.duration(i);
    for (int s = bs.step[i]; s < bs.step[i] + span && s < steps; ++s)
      ++vec[(std::size_t)s];
  }
  for (const auto& [bucket, vec] : usage) {
    int limit;
    if (limits.universal && bucket == FuClass::None) {
      limit = limits.universalCount;
    } else if (limits.universal && bucket == FuClass::Move) {
      // Universal accounting constrains moves only via an explicit Move
      // entry; absent means register transfers are free.
      auto it = limits.perClass.find(FuClass::Move);
      limit = it == limits.perClass.end() ? std::numeric_limits<int>::max()
                                          : it->second;
    } else {
      limit = limits.limitFor(bucket);
    }
    for (int s = 0; s < steps; ++s) {
      if (vec[(std::size_t)s] <= limit) continue;
      std::ostringstream where, oss;
      where << "block " << blk.name << " step " << s;
      oss << "uses " << vec[(std::size_t)s] << " ";
      if (limits.universal && bucket == FuClass::None)
        oss << "universal units";
      else
        oss << fuClassName(bucket) << " units";
      oss << " of " << limit;
      report.error("sched.resource-limit", where.str(), oss.str());
    }
  }
}

}  // namespace

void checkSchedule(const Function& fn, const Schedule& sched,
                   const ResourceLimits& limits,
                   const OpLatencyModel& latencies, CheckReport& report) {
  if (sched.blocks.size() != fn.numBlocks()) {
    std::ostringstream oss;
    oss << "schedule covers " << sched.blocks.size() << " blocks, function '"
        << fn.name() << "' has " << fn.numBlocks();
    report.error("sched.block-count", "function " + fn.name(), oss.str());
    return;
  }
  for (const auto& blk : fn.blocks()) {
    BlockDeps deps(fn, blk, latencies);
    checkBlock(blk, deps, sched.of(blk.id), limits, report);
  }
}

}  // namespace mphls
