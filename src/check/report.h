// Diagnostics engine for the stage-boundary checkers (src/check/).
//
// Section 4's observation that "each step in the synthesis process preserves
// the behavior of the initial specification" is only useful if a violated
// step fails *locally*: a broken scheduler should be reported as a broken
// schedule, not as a mismatched simulation trace three stages later. Every
// analyzer reports through this engine so a whole run can be rendered as one
// report: each finding carries a severity, a stable dotted check id (e.g.
// "sched.dep-order"), the location of the offending op/net/state, and text.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace mphls {

enum class CheckSeverity { Note, Warning, Error };

[[nodiscard]] std::string_view checkSeverityName(CheckSeverity s);

/// One finding of a stage-boundary analyzer or the netlist linter.
struct CheckDiag {
  CheckSeverity severity = CheckSeverity::Error;
  std::string id;       ///< stable dotted check id, e.g. "bind.reg-overlap"
  std::string where;    ///< source location: op, net, state, register, ...
  std::string message;  ///< human-readable description of the violation

  /// "error [sched.dep-order] block loop op 3 (add): ..." rendering.
  [[nodiscard]] std::string str() const;

  friend bool operator==(const CheckDiag& a, const CheckDiag& b) {
    return a.severity == b.severity && a.id == b.id && a.where == b.where &&
           a.message == b.message;
  }
};

/// Accumulates findings across one or more analyzers. Analyzers never throw:
/// they report everything they can find so a single run surfaces every
/// violation (mirroring DiagEngine for user-facing frontend errors).
class CheckReport {
 public:
  void add(CheckSeverity sev, std::string id, std::string where,
           std::string message) {
    diags_.push_back({sev, std::move(id), std::move(where),
                      std::move(message)});
  }
  void error(std::string id, std::string where, std::string message) {
    add(CheckSeverity::Error, std::move(id), std::move(where),
        std::move(message));
  }
  void warning(std::string id, std::string where, std::string message) {
    add(CheckSeverity::Warning, std::move(id), std::move(where),
        std::move(message));
  }
  void note(std::string id, std::string where, std::string message) {
    add(CheckSeverity::Note, std::move(id), std::move(where),
        std::move(message));
  }

  /// True when no error-severity finding was reported.
  [[nodiscard]] bool clean() const { return errorCount() == 0; }
  [[nodiscard]] std::size_t errorCount() const;
  [[nodiscard]] std::size_t warningCount() const;

  /// True when any finding carries check id `id`.
  [[nodiscard]] bool has(std::string_view id) const;
  [[nodiscard]] std::size_t countOf(std::string_view id) const;

  [[nodiscard]] const std::vector<CheckDiag>& all() const { return diags_; }
  [[nodiscard]] bool empty() const { return diags_.empty(); }

  void merge(const CheckReport& other) {
    diags_.insert(diags_.end(), other.diags_.begin(), other.diags_.end());
  }

  /// Text of the first error finding ("" when clean) — used by the pipeline
  /// to build a throwable message. First in *insertion* order, so a
  /// translation-validation run pinpoints the first guilty pass.
  [[nodiscard]] std::string firstError() const;

  /// Findings in deterministic presentation order — sorted by descending
  /// severity, then id, then where, then message, with exact duplicates
  /// collapsed — so report text is stable across analyzer orderings.
  [[nodiscard]] std::vector<CheckDiag> sorted() const;

  /// Full multi-line report in `sorted()` order, one finding per line,
  /// plus a summary line.
  [[nodiscard]] std::string render() const;

  /// Machine-readable report: {"diagnostics":[{"severity","code","where",
  /// "message"},...],"errors":N,"warnings":N,"clean":bool}, diagnostics in
  /// `sorted()` order.
  [[nodiscard]] std::string renderJson() const;

 private:
  std::vector<CheckDiag> diags_;
};

}  // namespace mphls
