// Semantic lints driven by the abstract-interpretation engine
// (analysis/dataflow.h): findings about the *behavior* itself, as opposed to
// the structural stage contracts the other checkers enforce. All findings
// are warning severity — they describe designs that synthesize and simulate
// fine but almost certainly do not mean what the author wrote.
//
// Check ids:
//   analysis.read-before-write   variable read before any store on every
//                                path (the read sees the implicit zero)
//   analysis.dead-branch         branch condition provably constant
//   analysis.unreachable-block   block no execution can reach
//   analysis.store-truncates     assigned value provably exceeds the
//                                destination width (bits are always lost)
//   analysis.div-by-zero         divisor whose value range contains zero
#pragma once

#include "check/report.h"
#include "ir/cdfg.h"

namespace mphls {

void checkSemantics(const Function& fn, CheckReport& report);

}  // namespace mphls
