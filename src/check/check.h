// Whole-flow static verification: run every stage-boundary analyzer over a
// finished RTL design and collect one report. This is what `mphls lint`
// executes, and what the test suite uses to assert that known-good designs
// are check-clean while hand-corrupted ones fail with precise check ids.
#pragma once

#include "check/check_binding.h"
#include "check/check_controller.h"
#include "check/check_schedule.h"
#include "check/check_semantics.h"
#include "check/check_timing.h"
#include "check/lint_verilog.h"
#include "check/report.h"
#include "rtl/design.h"

namespace mphls {

struct CheckOptions {
  /// Resource limits the schedule was produced under (unlimited to skip the
  /// concurrency check, e.g. for time-constrained schedulers).
  ResourceLimits resources = ResourceLimits::unlimited();
  OpLatencyModel latencies = OpLatencyModel::unit();
  bool schedule = true;
  bool binding = true;
  bool controller = true;
  /// Run the abstract-interpretation semantic lints (check_semantics.h)
  /// over the behavioral IR: read-before-write, dead branches, unreachable
  /// blocks, guaranteed truncation, possible division by zero.
  bool semantics = true;
  /// Emit Verilog and lint the netlist. Skipped automatically for
  /// multicycle latency models (the emitter supports unit latency only).
  bool netlist = true;
  /// Run the timing-closure lint (check_timing.h): negative slack at the
  /// declared clock, STA-vs-estimator cross-validation, chain overruns.
  bool timing = true;
  TimingLintOptions timingOptions;
};

/// Run all enabled analyzers; findings accumulate in one report.
[[nodiscard]] CheckReport checkDesign(const RtlDesign& design,
                                      const CheckOptions& options = {});

}  // namespace mphls
