#include "check/check_binding.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "ir/deps.h"

namespace mphls {

namespace {

std::string itemWhere(const LifetimeInfo& lt, std::size_t i) {
  std::ostringstream oss;
  oss << "item " << i << " (" << lt.items[i].name << ")";
  return oss.str();
}

std::string opWhere(const Function& fn, const Block& blk, std::size_t i) {
  std::ostringstream oss;
  oss << "block " << blk.name << " op " << i << " ("
      << opName(fn.op(blk.ops[i]).kind) << ")";
  return oss.str();
}

void checkRegisters(const LifetimeInfo& lt, const RegAssignment& regs,
                    CheckReport& report) {
  if (regs.regOfItem.size() != lt.items.size()) {
    std::ostringstream oss;
    oss << "assignment covers " << regs.regOfItem.size()
        << " items, lifetime analysis produced " << lt.items.size();
    report.error("bind.reg-count", "register assignment", oss.str());
    return;
  }
  for (std::size_t i = 0; i < lt.items.size(); ++i) {
    if (lt.items[i].live.empty()) continue;
    int r = regs.regOfItem[i];
    if (r < 0 || r >= regs.numRegs) {
      std::ostringstream oss;
      oss << "live item mapped to register " << r << " of " << regs.numRegs;
      report.error("bind.reg-range", itemWhere(lt, i), oss.str());
      continue;
    }
    if (regs.regWidth[(std::size_t)r] < lt.items[i].width) {
      std::ostringstream oss;
      oss << "register r" << r << " is " << regs.regWidth[(std::size_t)r]
          << " bits, item needs " << lt.items[i].width;
      report.error("bind.reg-width", itemWhere(lt, i), oss.str());
    }
    for (std::size_t j = i + 1; j < lt.items.size(); ++j) {
      if (regs.regOfItem[j] != r || lt.items[j].live.empty()) continue;
      if (lt.items[i].live.overlaps(lt.items[j].live)) {
        std::ostringstream oss;
        oss << "shares register r" << r << " with " << itemWhere(lt, j)
            << " but lifetimes [" << lt.items[i].live.birth << ", "
            << lt.items[i].live.death << ") and [" << lt.items[j].live.birth
            << ", " << lt.items[j].live.death << ") overlap";
        report.error("bind.reg-overlap", itemWhere(lt, i), oss.str());
      }
    }
  }
}

void checkUnits(const Function& fn, const Schedule& sched,
                const FuBinding& binding, const HwLibrary& lib,
                const OpLatencyModel& latencies, CheckReport& report) {
  for (const auto& blk : fn.blocks()) {
    if (blk.id.index() >= binding.fuOfOp.size() ||
        binding.fuOfOp[blk.id.index()].size() != blk.ops.size()) {
      report.error("bind.fu-unbound", "block " + blk.name,
                   "binding does not cover every op of the block");
      continue;
    }
    BlockDeps deps(fn, blk, latencies);
    const BlockSchedule& bs = sched.of(blk.id);
    // (fu, step) -> first op index seen executing there.
    std::map<std::pair<int, int>, std::size_t> unitBusy;
    for (std::size_t i = 0; i < blk.ops.size(); ++i) {
      FuClass c = scheduleClassOf(deps, i);
      int f = binding.fuOfOp[blk.id.index()][i];
      if (c == FuClass::None || c == FuClass::Move) {
        if (f >= 0)
          report.error("bind.fu-spurious", opWhere(fn, blk, i),
                       "op needs no functional unit but is bound to fu" +
                           std::to_string(f));
        continue;
      }
      if (f < 0) {
        report.error("bind.fu-unbound", opWhere(fn, blk, i),
                     "slot-occupying op is bound to no functional unit");
        continue;
      }
      if (f >= binding.numFus()) {
        std::ostringstream oss;
        oss << "bound to fu" << f << " but only " << binding.numFus()
            << " units exist";
        report.error("bind.fu-range", opWhere(fn, blk, i), oss.str());
        continue;
      }
      const FuInstance& fu = binding.fus[(std::size_t)f];
      const Op& o = fn.op(blk.ops[i]);
      if (!fu.performs(o.kind)) {
        std::ostringstream oss;
        oss << "fu" << f << " does not perform " << opName(o.kind);
        report.error("bind.fu-op-support", opWhere(fn, blk, i), oss.str());
      } else if (!fu.comp.valid() ||
                 fu.comp.index() >= lib.components().size()) {
        std::ostringstream oss;
        oss << "fu" << f << " is bound to no library component";
        report.error("bind.fu-comp-support", opWhere(fn, blk, i), oss.str());
      } else if (!lib.component(fu.comp).supports(o.kind)) {
        std::ostringstream oss;
        oss << "fu" << f << "'s component " << lib.component(fu.comp).name
            << " cannot execute " << opName(o.kind);
        report.error("bind.fu-comp-support", opWhere(fn, blk, i), oss.str());
      }
      if (o.result.valid() && fu.width < fn.value(o.result).width) {
        std::ostringstream oss;
        oss << "fu" << f << " is " << fu.width << " bits, result needs "
            << fn.value(o.result).width;
        report.error("bind.fu-width", opWhere(fn, blk, i), oss.str());
      }
      if (bs.step.size() != blk.ops.size()) continue;  // sched checker's job
      for (int span = 0; span < latencies.of(o.kind); ++span) {
        auto [it, fresh] = unitBusy.try_emplace({f, bs.step[i] + span}, i);
        if (!fresh && it->second != i) {
          std::ostringstream oss;
          oss << "fu" << f << " also runs op " << it->second << " ("
              << opName(fn.op(blk.ops[it->second]).kind) << ") at step "
              << bs.step[i] + span;
          report.error("bind.fu-conflict", opWhere(fn, blk, i), oss.str());
        }
      }
    }
  }
}

void checkMuxes(const InterconnectResult& ic, CheckReport& report) {
  auto muxOf = [&](const Transfer& t) -> const MuxSpec* {
    switch (t.destKind) {
      case Transfer::DestKind::FuPort:
        if (t.destId < 0 || (std::size_t)t.destId >= ic.fuInput.size() ||
            t.destPort < 0 || t.destPort >= 3)
          return nullptr;
        return &ic.fuInput[(std::size_t)t.destId][(std::size_t)t.destPort];
      case Transfer::DestKind::Reg:
        if (t.destId < 0 || (std::size_t)t.destId >= ic.regInput.size())
          return nullptr;
        return &ic.regInput[(std::size_t)t.destId];
      case Transfer::DestKind::OutPort:
        if (t.destId < 0 || (std::size_t)t.destId >= ic.outPortInput.size())
          return nullptr;
        return &ic.outPortInput[(std::size_t)t.destId];
    }
    return nullptr;
  };
  auto destName = [](const Transfer& t) {
    std::ostringstream oss;
    switch (t.destKind) {
      case Transfer::DestKind::FuPort:
        oss << "fu" << t.destId << " port " << t.destPort;
        break;
      case Transfer::DestKind::Reg: oss << "register r" << t.destId; break;
      case Transfer::DestKind::OutPort: oss << "port " << t.destId; break;
    }
    return oss.str();
  };

  // Exhaustiveness: every transfer's source must be a leg of its dest mux.
  for (const Transfer& t : ic.transfers) {
    const MuxSpec* mux = muxOf(t);
    if (!mux) {
      report.error("bind.mux-missing", destName(t),
                   "transfer destination does not exist");
      continue;
    }
    if (mux->indexOf(t.src) < 0) {
      std::ostringstream oss;
      oss << "source " << t.src.str() << " (step " << t.step
          << ") has no mux leg";
      report.error("bind.mux-missing", destName(t), oss.str());
    }
  }

  // Conflict-freedom: one source per destination mux per control step.
  // Key the destination by (kind, id, port).
  std::map<std::tuple<int, int, int, int>, const Transfer*> seen;
  for (const Transfer& t : ic.transfers) {
    auto key = std::make_tuple((int)t.destKind, t.destId, t.destPort, t.step);
    auto [it, fresh] = seen.try_emplace(key, &t);
    if (!fresh && !(it->second->src == t.src)) {
      std::ostringstream oss;
      oss << "needs both " << it->second->src.str() << " and " << t.src.str()
          << " at step " << t.step;
      report.error("bind.mux-conflict", destName(t), oss.str());
    }
  }
}

}  // namespace

void checkBinding(const Function& fn, const Schedule& sched,
                  const LifetimeInfo& lifetimes, const RegAssignment& regs,
                  const FuBinding& binding, const InterconnectResult& ic,
                  const HwLibrary& lib, const OpLatencyModel& latencies,
                  CheckReport& report) {
  checkRegisters(lifetimes, regs, report);
  checkUnits(fn, sched, binding, lib, latencies, report);
  checkMuxes(ic, report);
}

}  // namespace mphls
