// Timing-closure lint: the stage-boundary analyzer over the finished RTL
// design's timing. Three families of findings:
//
//   timing.negative-slack     error    a named path misses the declared
//                                      clock (state, launch, route,
//                                      capture, arrival vs required)
//   timing.estimate-divergence error   the STA engine (src/sta/) and
//                                      estimateTiming (src/estim/) — two
//                                      independent implementations of the
//                                      same timing model — disagree beyond
//                                      tolerance, i.e. one of them is wrong
//   timing.chain-overrun      warning  wiring overhead (operand/destination
//                                      muxes, setup, chained captures) in
//                                      one control step eats more of the
//                                      clock budget than the scheduler's
//                                      single-FU-delay assumption allows
//   timing.comb-loop          error    the structural timing graph has a
//                                      combinational cycle
//   timing.analysis-error     error    the analysis itself failed (corrupt
//                                      design); analyzers never throw
#pragma once

#include "check/report.h"
#include "rtl/design.h"

namespace mphls {

struct TimingLintOptions {
  /// Declared clock period; 0 uses the design's estimated cycle time
  /// (negative slack then only appears when the models diverge).
  double clockNs = 0;
  /// Absolute tolerance for slack and for STA-vs-estimator agreement.
  double tolerance = 1e-6;
  /// Warn when a state's wiring overhead beyond the scheduler's per-step
  /// FU-delay assumption exceeds this fraction of the clock.
  double chainSlackFraction = 0.5;
  /// Cap on reported negative-slack paths.
  int maxReported = 5;
};

void checkTiming(const RtlDesign& design, const TimingLintOptions& options,
                 CheckReport& report);

}  // namespace mphls
