// Stage-boundary analyzer 3: controller completeness.
//
// The contract controller synthesis must establish (Section 2: "synthesize a
// controller that will drive the data paths as required by the schedule"):
// every scheduled control step of every block is covered by exactly one FSM
// state; transitions follow the schedule within a block and the terminators
// across blocks; every state is reachable from the initial state and can
// reach the halt state; and each state asserts exactly the functional-unit
// operations, register loads and port writes that the datapath binding
// requires in that step — nothing missing, nothing extra.
#pragma once

#include "alloc/interconnect.h"
#include "check/report.h"
#include "ctrl/fsm.h"
#include "ir/latency.h"
#include "sched/schedule.h"

namespace mphls {

// Check ids reported:
//   ctrl.step-uncovered      a scheduled (block, step) has no FSM state
//   ctrl.state-binding       a state's (block, step) disagrees with the map
//   ctrl.transition-range    successor state out of range
//   ctrl.transition-target   successor disagrees with schedule/terminator
//   ctrl.cond-width          branch condition is not 1 bit wide
//   ctrl.cond-source         branch condition names a nonexistent unit
//   ctrl.unreachable-state   state unreachable from the initial state
//   ctrl.dead-state          state cannot reach the halt state
//   ctrl.action-missing      required datapath action not asserted
//   ctrl.action-extra        asserted action the binding does not require
void checkController(const Function& fn, const Schedule& sched,
                     const Controller& ctrl, const InterconnectResult& ic,
                     const FuBinding& binding,
                     const OpLatencyModel& latencies, CheckReport& report);

}  // namespace mphls
