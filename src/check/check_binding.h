// Stage-boundary analyzer 2: binding consistency.
//
// The contract data-path allocation must establish (Section 3.2): storage
// items with overlapping lifetimes never share a register and every register
// is wide enough for the items mapped onto it; every scheduled slot-occupying
// operation is bound to a functional unit whose instance *and* library
// component can execute it at its width, and no unit executes two operations
// in overlapping control steps; and the interconnect's multiplexers are
// exhaustive (every required transfer has a leg at its destination mux) and
// non-conflicting (no mux is asked for two different sources in one step).
#pragma once

#include "alloc/interconnect.h"
#include "alloc/lifetime.h"
#include "alloc/reg_alloc.h"
#include "check/report.h"
#include "ir/latency.h"
#include "lib/library.h"
#include "sched/schedule.h"

namespace mphls {

// Check ids reported:
//   bind.reg-count        assignment does not cover every storage item
//   bind.reg-range        live item mapped to no / an out-of-range register
//   bind.reg-width        register narrower than an item mapped onto it
//   bind.reg-overlap      two overlapping lifetimes share a register
//   bind.fu-unbound       slot-occupying operation with no functional unit
//   bind.fu-spurious      unit bound to an op that needs none (free/move)
//   bind.fu-range         op bound to an out-of-range unit
//   bind.fu-op-support    unit instance does not perform the op kind
//   bind.fu-comp-support  library component cannot execute the op kind
//   bind.fu-width         unit narrower than the op's result
//   bind.fu-conflict      unit runs two ops in overlapping control steps
//   bind.mux-missing      transfer source missing from its destination mux
//   bind.mux-conflict     mux needs two different sources in the same step
void checkBinding(const Function& fn, const Schedule& sched,
                  const LifetimeInfo& lifetimes, const RegAssignment& regs,
                  const FuBinding& binding, const InterconnectResult& ic,
                  const HwLibrary& lib, const OpLatencyModel& latencies,
                  CheckReport& report);

}  // namespace mphls
