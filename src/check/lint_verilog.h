// Stage-boundary analyzer 4: RTL netlist lint.
//
// The last artifact the flow produces is a Verilog netlist; this linter
// re-reads that text and checks the structural properties simulation only
// catches indirectly: every net that is read has exactly one driver, no net
// has several conflicting drivers, declared widths agree across assignments,
// and the combinational part of the net graph is acyclic (checked per
// FSM-state context via strongly-connected components, so a mux leg that
// feeds unit A from unit B in one state and B from A in another is not a
// false loop).
//
// The parser covers the synthesizable-subset Verilog-2001 that
// rtl/verilog.cpp emits — module header with port declarations, reg/wire
// declarations, localparam, assign, and always blocks with begin/end, if,
// and case — which is also the subset the hand-corrupted lint fixtures use.
#pragma once

#include <string>

#include "check/report.h"

namespace mphls {

// Check ids reported:
//   lint.parse           text does not parse as the supported subset
//   lint.undeclared      identifier used but never declared
//   lint.undriven        net read (or output port) with no driver
//   lint.multi-driven    net driven from more than one site
//   lint.width-mismatch  assignment of a provably different width
//   lint.comb-loop       combinational cycle through the net graph
//   lint.unused          declared net neither read nor driven
void lintVerilog(const std::string& source, CheckReport& report);

}  // namespace mphls
