// Stage-boundary analyzer 1: schedule legality.
//
// The contract a scheduler must establish (Section 3.1): every operation is
// assigned a control step inside its block's range; every data/control
// dependence is separated by at least the producing edge's latency (so
// values exist before they are consumed and storage hazards are ordered);
// multi-cycle operations finish inside the block and never overlap their
// successors; and in no control step does the number of concurrently
// executing operations of a class exceed the declared resource limits.
#pragma once

#include "check/report.h"
#include "ir/cdfg.h"
#include "ir/latency.h"
#include "sched/resource.h"
#include "sched/schedule.h"

namespace mphls {

// Check ids reported:
//   sched.block-count       schedule does not cover every block
//   sched.op-count          block schedule does not cover every op
//   sched.step-range        op step outside [0, numSteps)
//   sched.dep-order         dependence edge separation violated
//   sched.multicycle-span   multi-cycle op runs past the end of its block
//   sched.resource-limit    per-step concurrency exceeds a resource limit
void checkSchedule(const Function& fn, const Schedule& sched,
                   const ResourceLimits& limits,
                   const OpLatencyModel& latencies, CheckReport& report);

}  // namespace mphls
