#include "check/check_timing.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "sta/sta.h"

namespace mphls {

namespace {

std::string num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// Per-stage delay the scheduler implicitly budgeted for state `st`: the
/// worst single functional-unit combinational stage among units the state
/// issues or that deliver a multicycle result into it. Everything the STA
/// finds beyond this — operand/destination muxes, register setup, chained
/// captures — is wiring overhead the schedulers do not model.
double schedulerFuAssumption(const RtlDesign& d, const CtrlState& st) {
  double a = 0;
  auto stageOf = [&](int f, int cycles) {
    if (f < 0 || (std::size_t)f >= d.binding.fus.size()) return 0.0;
    const FuInstance& fu = d.binding.fus[(std::size_t)f];
    return d.lib.component(fu.comp).delay(fu.width) / std::max(cycles, 1);
  };
  for (const FuAction& fa : st.fuActions) a = std::max(a, stageOf(fa.fu, fa.cycles));
  // Units delivering a previously issued multicycle result here.
  auto completing = [&](int f) {
    for (const FuAction& fa : st.fuActions)
      if (fa.fu == f) return;  // active, already counted
    for (const CtrlState& is : d.ctrl.states) {
      if (is.block != st.block || is.step >= st.step) continue;
      for (const FuAction& fa : is.fuActions)
        if (fa.fu == f && fa.cycles > 1 && is.step + fa.cycles - 1 == st.step)
          a = std::max(a, stageOf(f, fa.cycles));
    }
  };
  auto scanSource = [&](const Source& s) {
    if (s.kind == Source::Kind::Fu) completing(s.id);
  };
  for (const RegAction& ra : st.regActions) {
    if (ra.reg < 0 || (std::size_t)ra.reg >= d.ic.regInput.size()) continue;
    const MuxSpec& m = d.ic.regInput[(std::size_t)ra.reg];
    if (ra.muxSel >= 0 && ra.muxSel < m.legs())
      scanSource(m.sources[(std::size_t)ra.muxSel]);
  }
  for (const PortAction& pa : st.portActions) {
    if (pa.port < 0 || (std::size_t)pa.port >= d.ic.outPortInput.size())
      continue;
    const MuxSpec& m = d.ic.outPortInput[(std::size_t)pa.port];
    if (pa.muxSel >= 0 && pa.muxSel < m.legs())
      scanSource(m.sources[(std::size_t)pa.muxSel]);
  }
  if (st.conditional) scanSource(st.cond);
  return a;
}

}  // namespace

void checkTiming(const RtlDesign& design, const TimingLintOptions& options,
                 CheckReport& report) {
  sta::StaResult r;
  try {
    sta::StaOptions so;
    so.clockNs = options.clockNs;
    so.maxPaths = options.maxReported;
    r = sta::runSta(design, so);
  } catch (const std::exception& e) {
    report.error("timing.analysis-error", "design",
                 std::string("static timing analysis failed: ") + e.what());
    return;
  }

  // The cross-validation payoff: estimateTiming (recursive, per-action)
  // and the STA engine (explicit graph, longest path) implement the same
  // timing model independently; a gap beyond tolerance means one is wrong.
  if (std::abs(r.cycleTime - r.estimatedCycleTime) > options.tolerance)
    report.error("timing.estimate-divergence", "design",
                 "sta cycle time " + num(r.cycleTime) +
                     " disagrees with estimateTiming " +
                     num(r.estimatedCycleTime) + " (tolerance " +
                     num(options.tolerance) + ")");

  if (r.combLoop)
    report.error("timing.comb-loop", "design",
                 "timing graph contains a combinational cycle");

  int reported = 0;
  for (const sta::TimingPath& p : r.paths) {
    if (p.slack >= -options.tolerance) break;  // slack-ascending order
    if (reported++ >= options.maxReported) break;
    std::string route;
    for (std::size_t i = 0; i < p.points.size(); ++i) {
      if (i) route += " -> ";
      route += p.points[i].node;
    }
    report.error("timing.negative-slack",
                 "state " + std::to_string(p.state) + " (" + p.stateDesc + ")",
                 "path " + route + " arrives at " + num(p.arrival) +
                     " past the clock " + num(p.required) + " (slack " +
                     num(p.slack) + ")");
  }

  for (const auto& [stateIdx, arrival] : r.stateArrivals) {
    if (stateIdx < 0 || (std::size_t)stateIdx >= design.ctrl.states.size())
      continue;
    const CtrlState& st = design.ctrl.states[(std::size_t)stateIdx];
    const double assumed = schedulerFuAssumption(design, st);
    const double overhead = arrival - assumed;
    if (overhead > options.chainSlackFraction * r.clockNs)
      report.warning(
          "timing.chain-overrun",
          "state " + std::to_string(stateIdx),
          "chained interconnect adds " + num(overhead) +
              " beyond the scheduler's " + num(assumed) +
              " functional-unit budget (over " +
              num(options.chainSlackFraction * 100) + "% of the clock " +
              num(r.clockNs) + ")");
  }
}

}  // namespace mphls
