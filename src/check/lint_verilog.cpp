#include "check/lint_verilog.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <vector>

namespace mphls {

namespace {

// --- tokenizer ----------------------------------------------------------

struct Tok {
  enum class Kind { Id, Num, Punct, End };
  Kind kind = Kind::End;
  std::string text;
  int line = 1;
  int width = 0;     ///< sized-literal width (Num with a ' base), else 0
};

std::vector<Tok> tokenize(const std::string& src, CheckReport& report) {
  std::vector<Tok> toks;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  auto isIdStart = [](char c) {
    return std::isalpha((unsigned char)c) || c == '_' || c == '$';
  };
  auto isIdChar = [&](char c) {
    return std::isalnum((unsigned char)c) || c == '_' || c == '$';
  };
  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
    } else if (std::isspace((unsigned char)c)) {
      ++i;
    } else if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') ++i;
    } else if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = std::min(i + 2, n);
    } else if (isIdStart(c)) {
      std::size_t j = i;
      while (j < n && isIdChar(src[j])) ++j;
      toks.push_back({Tok::Kind::Id, src.substr(i, j - i), line, 0});
      i = j;
    } else if (std::isdigit((unsigned char)c)) {
      std::size_t j = i;
      while (j < n && std::isdigit((unsigned char)src[j])) ++j;
      if (j < n && src[j] == '\'') {
        // Sized literal: width ' base digits.
        int width = std::atoi(src.substr(i, j - i).c_str());
        ++j;                       // base marker
        if (j < n) ++j;            // base letter (b/d/h/o)
        std::size_t k = j;
        while (k < n && (std::isalnum((unsigned char)src[k]) ||
                         src[k] == '_' || src[k] == 'x' || src[k] == 'z'))
          ++k;
        toks.push_back({Tok::Kind::Num, src.substr(i, k - i), line, width});
        i = k;
      } else {
        toks.push_back({Tok::Kind::Num, src.substr(i, j - i), line, 0});
        i = j;
      }
    } else {
      // Multi-character operators we must not split: <= >= == != << >> >>>
      // <<< && || === !==
      static const char* kOps[] = {">>>", "<<<", "===", "!==", "<=", ">=",
                                   "==",  "!=",  "<<",  ">>",  "&&", "||"};
      std::string text(1, c);
      for (const char* op : kOps) {
        std::size_t len = std::char_traits<char>::length(op);
        if (src.compare(i, len, op) == 0) {
          text = op;
          break;
        }
      }
      toks.push_back({Tok::Kind::Punct, text, line, 0});
      i += text.size();
    }
  }
  if (toks.empty())
    report.error("lint.parse", "netlist", "empty Verilog source");
  toks.push_back({Tok::Kind::End, "", line, 0});
  return toks;
}

// --- net table ----------------------------------------------------------

struct DriverSite {
  enum class Kind { InputPort, Param, Assign, CombAlways, SeqAlways };
  Kind kind = Kind::Assign;
  int line = 0;
};

std::string_view driverName(DriverSite::Kind k) {
  switch (k) {
    case DriverSite::Kind::InputPort: return "input port";
    case DriverSite::Kind::Param: return "parameter";
    case DriverSite::Kind::Assign: return "assign";
    case DriverSite::Kind::CombAlways: return "combinational always";
    case DriverSite::Kind::SeqAlways: return "sequential always";
  }
  return "?";
}

struct Net {
  int width = 1;
  int declLine = 0;
  bool declared = false;
  bool isInput = false;
  bool isOutput = false;
  bool isParam = false;
  bool read = false;
  std::vector<DriverSite> drivers;
};

struct CombEdge {
  std::string from;
  std::string to;
  std::string ctx;  ///< case-arm label ("" = unconditional)
  int line = 0;
};

// --- parser -------------------------------------------------------------

class Linter {
 public:
  Linter(std::vector<Tok> toks, CheckReport& report)
      : toks_(std::move(toks)), report_(report) {}

  void run() {
    parseModule();
    finish();
  }

 private:
  std::vector<Tok> toks_;
  CheckReport& report_;
  std::size_t pos_ = 0;
  std::map<std::string, Net> nets_;
  std::vector<CombEdge> edges_;

  const Tok& peek(std::size_t ahead = 0) const {
    return toks_[std::min(pos_ + ahead, toks_.size() - 1)];
  }
  const Tok& get() {
    const Tok& t = toks_[std::min(pos_, toks_.size() - 1)];
    if (pos_ < toks_.size() - 1) ++pos_;
    return t;
  }
  bool at(std::string_view text) const { return peek().text == text; }
  bool accept(std::string_view text) {
    if (!at(text)) return false;
    get();
    return true;
  }
  void expect(std::string_view text) {
    if (!accept(text)) {
      std::ostringstream oss;
      oss << "expected '" << text << "', found '" << peek().text << "'";
      report_.error("lint.parse", lineWhere(peek().line), oss.str());
      get();  // make progress
    }
  }
  static std::string lineWhere(int line) {
    return "line " + std::to_string(line);
  }
  bool atEnd() const { return peek().kind == Tok::Kind::End; }

  void skipPast(std::string_view text) {
    while (!atEnd() && !accept(text)) get();
  }

  Net& declare(const std::string& name, int width, int line) {
    Net& net = nets_[name];
    if (net.declared) {
      report_.error("lint.multi-driven", "net " + name,
                    "declared again at " + lineWhere(line));
    }
    net.declared = true;
    net.width = width;
    net.declLine = line;
    return net;
  }

  void markRead(const std::string& name, int line) {
    if (name.empty() || name[0] == '$') return;  // system function
    Net& net = nets_[name];
    net.read = true;
    if (!net.declLine) net.declLine = line;
  }

  void addDriver(const std::string& name, DriverSite::Kind kind, int line) {
    Net& net = nets_[name];
    if (!net.declLine) net.declLine = line;
    net.drivers.push_back({kind, line});
  }

  /// Parse an optional `[msb:lsb]` range; returns the width (1 if absent).
  int parseRange() {
    if (!accept("[")) return 1;
    int msb = std::atoi(peek().text.c_str());
    skipToClose("[", "]");
    return msb + 1;  // emitted ranges are always [msb:0]
  }

  void skipToClose(std::string_view open, std::string_view close) {
    int depth = 1;
    while (!atEnd() && depth > 0) {
      const Tok& t = get();
      if (t.text == open) ++depth;
      if (t.text == close) --depth;
    }
  }

  // --- expressions ------------------------------------------------------

  /// Collect an expression's tokens until a top-level stop punctuation,
  /// marking every identifier as read. Does not consume the stop token.
  std::vector<Tok> collectExpr(const std::set<std::string>& stops) {
    std::vector<Tok> out;
    int depth = 0;
    while (!atEnd()) {
      const Tok& t = peek();
      if (depth == 0 && t.kind == Tok::Kind::Punct && stops.count(t.text))
        break;
      if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
      if (t.text == ")" || t.text == "]" || t.text == "}") {
        if (depth == 0) break;
        --depth;
      }
      if (t.kind == Tok::Kind::Id) markRead(t.text, t.line);
      out.push_back(get());
    }
    return out;
  }

  /// Width of a "provably sized" expression: a lone identifier, a sized
  /// literal, a concatenation/replication of such, or parens around one.
  /// Returns 0 when the width cannot be proven statically.
  int provenWidth(const std::vector<Tok>& e, std::size_t lo,
                  std::size_t hi) const {
    // Strip enclosing parens.
    while (hi - lo >= 2 && e[lo].text == "(" && e[hi - 1].text == ")") {
      int depth = 0;
      bool wraps = true;
      for (std::size_t i = lo; i + 1 < hi; ++i) {
        if (e[i].text == "(" || e[i].text == "{") ++depth;
        if (e[i].text == ")" || e[i].text == "}") --depth;
        if (depth == 0 && i + 1 < hi) {
          wraps = i + 1 == hi - 1;
          break;
        }
      }
      if (!wraps) break;
      ++lo;
      --hi;
    }
    if (hi <= lo) return 0;
    if (hi - lo == 1) {
      const Tok& t = e[lo];
      if (t.kind == Tok::Kind::Num) return t.width;  // 0 when unsized
      if (t.kind == Tok::Kind::Id) {
        auto it = nets_.find(t.text);
        if (it != nets_.end() && it->second.declared && !it->second.isParam)
          return it->second.width;
      }
      return 0;
    }
    // Concatenation {a, b, ...} or replication {n{a}}.
    if (e[lo].text == "{" && e[hi - 1].text == "}") {
      // Replication: { Num { expr } }
      if (hi - lo >= 5 && e[lo + 1].kind == Tok::Kind::Num &&
          e[lo + 2].text == "{" && e[hi - 2].text == "}") {
        int reps = std::atoi(e[lo + 1].text.c_str());
        int inner = provenWidth(e, lo + 3, hi - 2);
        return inner > 0 ? reps * inner : 0;
      }
      int total = 0;
      std::size_t start = lo + 1;
      int depth = 0;
      for (std::size_t i = lo + 1; i < hi - 1; ++i) {
        if (e[i].text == "(" || e[i].text == "{") ++depth;
        if (e[i].text == ")" || e[i].text == "}") --depth;
        if (depth == 0 && e[i].text == ",") {
          int w = provenWidth(e, start, i);
          if (w <= 0) return 0;
          total += w;
          start = i + 1;
        }
      }
      int w = provenWidth(e, start, hi - 1);
      if (w <= 0) return 0;
      return total + w;
    }
    return 0;
  }

  /// Every distinct identifier read inside an expression token list.
  static std::set<std::string> idsOf(const std::vector<Tok>& e) {
    std::set<std::string> ids;
    for (const Tok& t : e)
      if (t.kind == Tok::Kind::Id && t.text[0] != '$') ids.insert(t.text);
    return ids;
  }

  // --- module structure -------------------------------------------------

  void parseModule() {
    skipPast("module");
    if (peek().kind == Tok::Kind::Id) get();  // module name
    if (accept("(")) parsePortList();
    expect(";");
    while (!atEnd() && !at("endmodule")) parseItem();
  }

  void parsePortList() {
    while (!atEnd() && !accept(")")) {
      bool isInput = false, isOutput = false;
      if (accept("input")) isInput = true;
      else if (accept("output")) isOutput = true;
      accept("wire");
      accept("reg");
      accept("signed");
      int width = parseRange();
      if (peek().kind == Tok::Kind::Id) {
        const Tok& t = get();
        Net& net = declare(t.text, width, t.line);
        net.isInput = isInput;
        net.isOutput = isOutput;
        if (isInput) addDriver(t.text, DriverSite::Kind::InputPort, t.line);
      }
      accept(",");
    }
  }

  void parseItem() {
    if (at("reg") || at("wire")) {
      bool isWire = at("wire");
      get();
      accept("signed");
      int width = parseRange();
      while (peek().kind == Tok::Kind::Id) {
        const Tok& t = get();
        declare(t.text, width, t.line);
        if (isWire && accept("=")) {
          // wire-with-initializer doubles as a continuous assignment
          auto rhs = collectExpr({";", ","});
          recordAssign(t.text, t.line, rhs, DriverSite::Kind::Assign, "");
        }
        if (!accept(",")) break;
      }
      expect(";");
    } else if (at("localparam") || at("parameter")) {
      get();
      int width = parseRange();
      while (peek().kind == Tok::Kind::Id) {
        const Tok& t = get();
        Net& net = declare(t.text, width, t.line);
        net.isParam = true;
        addDriver(t.text, DriverSite::Kind::Param, t.line);
        if (accept("=")) (void)collectExpr({";", ","});
        if (!accept(",")) break;
      }
      expect(";");
    } else if (accept("assign")) {
      if (peek().kind != Tok::Kind::Id) {
        report_.error("lint.parse", lineWhere(peek().line),
                      "assign without a target net");
        skipPast(";");
        return;
      }
      const Tok& t = get();
      int lhsWidth = lhsSelectWidth(t.text);
      expect("=");
      auto rhs = collectExpr({";"});
      expect(";");
      recordAssign(t.text, t.line, rhs, DriverSite::Kind::Assign, "",
                   lhsWidth);
    } else if (accept("always")) {
      parseAlways();
    } else {
      // Unknown construct (initial, task, ...): skip one statement.
      skipPast(";");
    }
  }

  /// Width of the target taking a bit/part select into account; 0 when the
  /// net is unknown (reported separately as lint.undeclared).
  int lhsSelectWidth(const std::string& name) {
    int w = 0;
    auto it = nets_.find(name);
    if (it != nets_.end() && it->second.declared) w = it->second.width;
    if (at("[")) {
      get();
      auto sel = collectExpr({";"});
      // Part select [m:l] has width m-l+1; bit select [i] has width 1.
      int colon = -1;
      for (std::size_t i = 0; i < sel.size(); ++i)
        if (sel[i].text == ":" && colon < 0) colon = (int)i;
      if (colon >= 0 && colon > 0 && colon + 1 < (int)sel.size() &&
          sel[0].kind == Tok::Kind::Num &&
          sel[(std::size_t)colon + 1].kind == Tok::Kind::Num) {
        w = std::atoi(sel[0].text.c_str()) -
            std::atoi(sel[(std::size_t)colon + 1].text.c_str()) + 1;
      } else {
        w = 1;
      }
      expect("]");
    }
    return w;
  }

  void recordAssign(const std::string& lhs, int line,
                    const std::vector<Tok>& rhs, DriverSite::Kind kind,
                    const std::string& ctx, int lhsWidthOverride = -1) {
    addDriver(lhs, kind, line);
    int lhsWidth = lhsWidthOverride;
    if (lhsWidth < 0) {
      auto it = nets_.find(lhs);
      lhsWidth =
          (it != nets_.end() && it->second.declared) ? it->second.width : 0;
    }
    int rhsWidth = provenWidth(rhs, 0, rhs.size());
    if (lhsWidth > 0 && rhsWidth > 0 && lhsWidth != rhsWidth) {
      std::ostringstream oss;
      oss << lhsWidth << "-bit net " << lhs << " assigned a " << rhsWidth
          << "-bit expression";
      report_.warning("lint.width-mismatch", lineWhere(line), oss.str());
    }
    if (kind == DriverSite::Kind::Assign ||
        kind == DriverSite::Kind::CombAlways) {
      for (const std::string& id : idsOf(rhs)) {
        auto it = nets_.find(id);
        if (it != nets_.end() && it->second.isParam) continue;
        edges_.push_back({id, lhs, ctx, line});
      }
    }
  }

  // --- always blocks ----------------------------------------------------

  void parseAlways() {
    bool sequential = false;
    if (accept("@")) {
      if (accept("(")) {
        int depth = 1;
        while (!atEnd() && depth > 0) {
          const Tok& t = get();
          if (t.text == "(") ++depth;
          else if (t.text == ")") --depth;
          else if (t.text == "posedge" || t.text == "negedge")
            sequential = true;
          else if (t.kind == Tok::Kind::Id) markRead(t.text, t.line);
        }
      } else {
        accept("*");
      }
    }
    // One driver site per target per block.
    std::map<std::string, int> targets;
    parseStmt(sequential, "", targets);
    for (const auto& [name, line] : targets)
      addDriver(name,
                sequential ? DriverSite::Kind::SeqAlways
                           : DriverSite::Kind::CombAlways,
                line);
  }

  void parseStmt(bool sequential, const std::string& ctx,
                 std::map<std::string, int>& targets) {
    if (accept("begin")) {
      while (!atEnd() && !accept("end")) parseStmt(sequential, ctx, targets);
      return;
    }
    if (accept("if")) {
      expect("(");
      (void)collectExpr({")"});
      expect(")");
      parseStmt(sequential, ctx, targets);
      if (accept("else")) parseStmt(sequential, ctx, targets);
      return;
    }
    if (at("case") || at("casez") || at("casex")) {
      get();
      expect("(");
      (void)collectExpr({")"});
      expect(")");
      while (!atEnd() && !accept("endcase")) {
        // Arm: label[, label]: stmt  — or default: stmt.
        std::string label;
        if (accept("default")) {
          label = "default";
        } else {
          auto labels = collectExpr({":"});
          for (const Tok& t : labels)
            if (t.kind != Tok::Kind::Punct) {
              label = t.text;
              break;
            }
        }
        expect(":");
        // Extend the enclosing context so nested cases stay distinct.
        std::string armCtx = ctx.empty() ? label : ctx + "/" + label;
        parseStmt(sequential, armCtx, targets);
      }
      return;
    }
    if (accept(";")) return;
    if (peek().kind == Tok::Kind::Id) {
      const Tok& t = get();
      int lhsWidth = lhsSelectWidth(t.text);
      bool assignment = at("=") || at("<=");
      if (!assignment) {
        report_.error("lint.parse", lineWhere(t.line),
                      "unsupported statement at '" + t.text + "'");
        skipPast(";");
        return;
      }
      get();  // = or <=
      auto rhs = collectExpr({";"});
      expect(";");
      targets.try_emplace(t.text, t.line);
      recordAssign(t.text, t.line, rhs,
                   sequential ? DriverSite::Kind::SeqAlways
                              : DriverSite::Kind::CombAlways,
                   sequential ? "" : ctx, lhsWidth);
      // recordAssign adds a per-statement driver; always blocks are one
      // driver site per target, so drop the per-statement entry again.
      nets_[t.text].drivers.pop_back();
      return;
    }
    report_.error("lint.parse", lineWhere(peek().line),
                  "unsupported statement at '" + peek().text + "'");
    get();
  }

  // --- final checks -----------------------------------------------------

  void finish() {
    for (const auto& [name, net] : nets_) {
      std::string where = "net " + name;
      if (!net.declared) {
        report_.error("lint.undeclared", where,
                      "used at " + lineWhere(net.declLine) +
                          " but never declared");
        continue;
      }
      if (net.drivers.empty() && (net.read || net.isOutput)) {
        report_.error("lint.undriven", where,
                      std::string(net.isOutput ? "output port" : "net") +
                          " declared at " + lineWhere(net.declLine) +
                          " is never driven");
      } else if (net.drivers.size() > 1) {
        std::ostringstream oss;
        oss << "driven from " << net.drivers.size() << " sites:";
        for (const DriverSite& d : net.drivers)
          oss << " " << driverName(d.kind) << " at " << lineWhere(d.line);
        report_.error("lint.multi-driven", where, oss.str());
      }
      if (!net.read && net.drivers.empty()) {
        report_.warning("lint.unused", where,
                        "declared at " + lineWhere(net.declLine) +
                            " but neither read nor driven");
      }
    }
    findCombLoops();
  }

  /// Combinational-loop detection: Tarjan SCC over the comb net graph,
  /// once per case-arm context (unconditional edges join every context).
  void findCombLoops() {
    std::set<std::string> contexts{""};
    for (const CombEdge& e : edges_) contexts.insert(e.ctx);
    std::set<std::vector<std::string>> reported;
    for (const std::string& ctx : contexts) {
      // Adjacency restricted to this context.
      std::map<std::string, std::vector<std::string>> adj;
      std::set<std::pair<std::string, std::string>> selfOk;
      for (const CombEdge& e : edges_) {
        if (!e.ctx.empty() && e.ctx != ctx) continue;
        adj[e.from].push_back(e.to);
        if (e.from == e.to) selfOk.insert({e.from, e.to});
      }
      // Iterative Tarjan.
      std::map<std::string, int> index, low;
      std::map<std::string, bool> onStack;
      std::vector<std::string> stack;
      int counter = 0;
      struct Frame {
        std::string node;
        std::size_t child = 0;
      };
      for (const auto& [start, unused] : adj) {
        (void)unused;
        if (index.count(start)) continue;
        std::vector<Frame> call{{start, 0}};
        index[start] = low[start] = counter++;
        stack.push_back(start);
        onStack[start] = true;
        while (!call.empty()) {
          Frame& f = call.back();
          auto& succ = adj[f.node];
          if (f.child < succ.size()) {
            const std::string& next = succ[f.child++];
            if (!index.count(next)) {
              index[next] = low[next] = counter++;
              stack.push_back(next);
              onStack[next] = true;
              call.push_back({next, 0});
            } else if (onStack[next]) {
              low[f.node] = std::min(low[f.node], index[next]);
            }
          } else {
            if (low[f.node] == index[f.node]) {
              std::vector<std::string> scc;
              while (true) {
                std::string v = stack.back();
                stack.pop_back();
                onStack[v] = false;
                scc.push_back(v);
                if (v == f.node) break;
              }
              bool loop = scc.size() > 1 ||
                          selfOk.count({scc.front(), scc.front()}) > 0;
              if (loop) {
                std::sort(scc.begin(), scc.end());
                if (reported.insert(scc).second) {
                  std::ostringstream oss;
                  oss << "combinational cycle through";
                  for (const std::string& v : scc) oss << " " << v;
                  if (!ctx.empty()) oss << " (case arm " << ctx << ")";
                  report_.error("lint.comb-loop", "net " + scc.front(),
                                oss.str());
                }
              }
            }
            std::string done = f.node;
            call.pop_back();
            if (!call.empty())
              low[call.back().node] =
                  std::min(low[call.back().node], low[done]);
          }
        }
      }
    }
  }
};

}  // namespace

void lintVerilog(const std::string& source, CheckReport& report) {
  Linter(tokenize(source, report), report).run();
}

}  // namespace mphls
