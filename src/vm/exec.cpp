// Bytecode execution: computed-goto dispatch (GNU extension) with a plain
// switch fallback. Both variants share the opcode handlers through the
// VM_CASE/VM_NEXT macros so their semantics cannot drift.
//
// Every handler is the compiled form of one case in Interpreter::evalPure
// or one phase of RtlSimulator::run; the edge-case semantics (division by
// zero, INT64_MIN / -1, shift amounts >= the word width) are reproduced
// exactly so the interpreters stay bit-identical oracles.

#include <algorithm>
#include <cstring>

#include "common/bitutil.h"
#include "vm/vm.h"

#if defined(__GNUC__) && !defined(MPHLS_VM_FORCE_SWITCH)
#define MPHLS_VM_CGOTO 1
#else
#define MPHLS_VM_CGOTO 0
#endif

namespace mphls::vm {

namespace {

inline std::int64_t sx(std::uint64_t v, int w) { return signExtend(v, w); }

}  // namespace

#if MPHLS_VM_CGOTO
#define VM_LABEL_ENTRY(name) &&lbl_##name,
#define VM_DISPATCH()                      \
  do {                                     \
    in = &code[pc++];                      \
    goto* kLabels[(std::size_t)in->op];    \
  } while (0)
#define VM_LOOP_BEGIN() VM_DISPATCH();
#define VM_CASE(name) lbl_##name:
#define VM_NEXT() VM_DISPATCH()
#define VM_LOOP_END()
#define VM_UNREACHABLE_OPS()
#else
#define VM_DISPATCH()
#define VM_LOOP_BEGIN()              \
  for (;;) {                         \
    in = &code[pc++];                \
    switch (in->op) {
#define VM_CASE(name) case BOp::name:
#define VM_NEXT() continue
#define VM_LOOP_END()                                      \
    default:                                               \
      MPHLS_CHECK(false, "vm: bad opcode");                \
    }                                                      \
  }
#endif

ExecResult runBehavProgram(const BehavProgram& p, BehavScratch& s,
                           const std::map<std::string, std::uint64_t>& inputs,
                           long maxBlockExecs) {
  ExecResult res;
  s.frame.assign((std::size_t)p.numSlots, 0);
  s.portWritten.assign(p.ports.size(), 0);
  res.blockTrace.reserve(s.lastTraceLen);
  std::uint64_t* f = s.frame.data();
  // One merge pass: inOrder and the inputs map are both name-ordered.
  auto it = inputs.begin();
  for (std::int32_t i : p.inOrder) {
    const PortInfo& pm = p.ports[(std::size_t)i];
    while (it != inputs.end() && it->first < pm.name) ++it;
    MPHLS_CHECK(it != inputs.end() && it->first == pm.name,
                "missing input '" << pm.name << "'");
    f[(std::size_t)(p.portBase + i)] = truncBits(it->second, pm.width);
    ++it;
  }

  const Insn* code = p.code.data();
  const Insn* in = nullptr;
  std::int32_t pc = p.entryPc;
  long execs = 0;

#if MPHLS_VM_CGOTO
  static const void* const kLabels[] = {MPHLS_VM_OPS(VM_LABEL_ENTRY)};
  static_assert(sizeof(kLabels) / sizeof(kLabels[0]) ==
                (std::size_t)BOp::Count);
#endif

  VM_LOOP_BEGIN()
  VM_CASE(Nop) VM_NEXT();
  VM_CASE(ConstK) f[in->dst] = (std::uint64_t)in->imm; VM_NEXT();
  VM_CASE(Move) f[in->dst] = f[in->a] & in->mask; VM_NEXT();
  VM_CASE(SExtN)
    f[in->dst] = (std::uint64_t)sx(f[in->a], in->aw) & in->mask;
    VM_NEXT();
  VM_CASE(NotN) f[in->dst] = ~f[in->a] & in->mask; VM_NEXT();
  VM_CASE(NegN) f[in->dst] = (~f[in->a] + 1) & in->mask; VM_NEXT();
  VM_CASE(IncN) f[in->dst] = (f[in->a] + 1) & in->mask; VM_NEXT();
  VM_CASE(DecN) f[in->dst] = (f[in->a] - 1) & in->mask; VM_NEXT();
  VM_CASE(ShlC) f[in->dst] = (f[in->a] << in->imm) & in->mask; VM_NEXT();
  VM_CASE(ShrC) f[in->dst] = (f[in->a] >> in->imm) & in->mask; VM_NEXT();
  VM_CASE(SarC)
    f[in->dst] = (std::uint64_t)(sx(f[in->a], in->aw) >> in->imm) & in->mask;
    VM_NEXT();
  VM_CASE(AddN) f[in->dst] = (f[in->a] + f[in->b]) & in->mask; VM_NEXT();
  VM_CASE(SubN) f[in->dst] = (f[in->a] - f[in->b]) & in->mask; VM_NEXT();
  VM_CASE(MulN) f[in->dst] = (f[in->a] * f[in->b]) & in->mask; VM_NEXT();
  VM_CASE(DivS) {
    std::int64_t d = sx(f[in->b], in->bw);
    // Division by zero yields all-ones; INT64_MIN / -1 is defined as the
    // two's-complement negation (see Interpreter::evalPure).
    f[in->dst] = d == 0   ? in->mask
                 : d == -1 ? (0 - (std::uint64_t)sx(f[in->a], in->aw)) & in->mask
                           : (std::uint64_t)(sx(f[in->a], in->aw) / d) &
                                 in->mask;
    VM_NEXT();
  }
  VM_CASE(DivU)
    f[in->dst] = f[in->b] == 0 ? in->mask : (f[in->a] / f[in->b]) & in->mask;
    VM_NEXT();
  VM_CASE(ModS) {
    std::int64_t d = sx(f[in->b], in->bw);
    f[in->dst] = (d == 0 || d == -1)
                     ? 0
                     : (std::uint64_t)(sx(f[in->a], in->aw) % d) & in->mask;
    VM_NEXT();
  }
  VM_CASE(ModU)
    f[in->dst] = f[in->b] == 0 ? 0 : (f[in->a] % f[in->b]) & in->mask;
    VM_NEXT();
  VM_CASE(AndN) f[in->dst] = (f[in->a] & f[in->b]) & in->mask; VM_NEXT();
  VM_CASE(OrN) f[in->dst] = (f[in->a] | f[in->b]) & in->mask; VM_NEXT();
  VM_CASE(XorN) f[in->dst] = (f[in->a] ^ f[in->b]) & in->mask; VM_NEXT();
  VM_CASE(ShlV)
    f[in->dst] =
        f[in->b] >= 64 ? 0 : (f[in->a] << f[in->b]) & in->mask;
    VM_NEXT();
  VM_CASE(ShrV)
    f[in->dst] =
        f[in->b] >= 64 ? 0 : (f[in->a] >> f[in->b]) & in->mask;
    VM_NEXT();
  VM_CASE(SarV) {
    std::uint64_t sh = f[in->b] >= 63 ? 63 : f[in->b];
    f[in->dst] = (std::uint64_t)(sx(f[in->a], in->aw) >> sh) & in->mask;
    VM_NEXT();
  }
  VM_CASE(EqN) f[in->dst] = f[in->a] == f[in->b] ? 1 : 0; VM_NEXT();
  VM_CASE(NeN) f[in->dst] = f[in->a] != f[in->b] ? 1 : 0; VM_NEXT();
  VM_CASE(LtS)
    f[in->dst] = sx(f[in->a], in->aw) < sx(f[in->b], in->bw) ? 1 : 0;
    VM_NEXT();
  VM_CASE(LeS)
    f[in->dst] = sx(f[in->a], in->aw) <= sx(f[in->b], in->bw) ? 1 : 0;
    VM_NEXT();
  VM_CASE(GtS)
    f[in->dst] = sx(f[in->a], in->aw) > sx(f[in->b], in->bw) ? 1 : 0;
    VM_NEXT();
  VM_CASE(GeS)
    f[in->dst] = sx(f[in->a], in->aw) >= sx(f[in->b], in->bw) ? 1 : 0;
    VM_NEXT();
  VM_CASE(LtU) f[in->dst] = f[in->a] < f[in->b] ? 1 : 0; VM_NEXT();
  VM_CASE(LeU) f[in->dst] = f[in->a] <= f[in->b] ? 1 : 0; VM_NEXT();
  VM_CASE(GtU) f[in->dst] = f[in->a] > f[in->b] ? 1 : 0; VM_NEXT();
  VM_CASE(GeU) f[in->dst] = f[in->a] >= f[in->b] ? 1 : 0; VM_NEXT();
  VM_CASE(Sel)
    f[in->dst] = f[in->a] ? f[in->b] & in->mask : f[in->c] & in->mask;
    VM_NEXT();
  VM_CASE(OutW)
    f[in->dst] = f[in->a] & in->mask;
    s.portWritten[(std::size_t)in->b] = 1;
    VM_NEXT();
  VM_CASE(Enter)
    if (++execs > maxBlockExecs) {  // finished stays false
      s.lastTraceLen = res.blockTrace.size();
      return res;
    }
    res.blockTrace.push_back(BlockId((std::uint32_t)in->a));
    res.opsExecuted += in->imm;
    VM_NEXT();
  VM_CASE(Jmp) pc = in->a; VM_NEXT();
  VM_CASE(Br) pc = f[in->a] ? in->b : in->c; VM_NEXT();
  VM_CASE(Ret) goto done;
  // RTL-only opcodes can never appear in a behavioral program.
  VM_CASE(FuRd)
  VM_CASE(FuAct)
  VM_CASE(FuIss)
  VM_CASE(CycEnd)
  VM_CASE(CycBr)
  VM_CASE(CycHalt)
    MPHLS_CHECK(false, "vm: RTL opcode in behavioral program");
    VM_NEXT();
  VM_LOOP_END()

done:
  s.lastTraceLen = res.blockTrace.size();
  for (std::size_t i = 0; i < p.ports.size(); ++i)
    if (!p.ports[i].isInput && s.portWritten[i])
      res.outputs[p.ports[i].name] = f[(std::size_t)p.portBase + i];
  res.finished = true;
  return res;
}

RtlExecResult runRtlProgram(const RtlProgram& p, RtlScratch& s,
                            const std::map<std::string, std::uint64_t>& inputs,
                            long maxCycles, const SimObserver& observe) {
  RtlExecResult res;
  // The pool region [numSlots - pool.size(), numSlots) is written only at
  // priming; execution never stores there, so repeat runs on the same
  // program just re-zero the mutable prefix.
  const std::size_t poolBase = (std::size_t)p.numSlots - p.pool.size();
  if (s.primedFor != &p) {
    s.frame.assign((std::size_t)p.numSlots, 0);
    s.fuActive.assign((std::size_t)p.numFus, 0);
    s.outWritten.assign(p.ports.size(), 0);
    s.pendingDone.assign((std::size_t)p.numFus, -1);
    s.pendingVal.assign((std::size_t)p.numFus, 0);
    for (const auto& [slot, v] : p.pool) s.frame[(std::size_t)slot] = v;
    s.primedFor = &p;
  } else {
    std::memset(s.frame.data(), 0, poolBase * sizeof(std::uint64_t));
    if (p.numFus > 0) {
      std::memset(s.fuActive.data(), 0, (std::size_t)p.numFus);
      // pendingVal needs no reset: it is read only after FuIss stores it.
      // pendingDone stays all -1 when the program never issues (FuIss is
      // the only writer and the delivery sweep restores -1 on completion
      // ... except when a run ends with an issue still in flight).
      if (p.hasMulticycle)
        std::fill(s.pendingDone.begin(), s.pendingDone.end(), -1L);
    }
    if (!p.ports.empty())
      std::memset(s.outWritten.data(), 0, p.ports.size());
  }
  std::uint64_t* f = s.frame.data();
  // One merge pass: inOrder and the inputs map are both name-ordered.
  auto it = inputs.begin();
  for (std::int32_t i : p.inOrder) {
    const PortInfo& pm = p.ports[(std::size_t)i];
    while (it != inputs.end() && it->first < pm.name) ++it;
    MPHLS_CHECK(it != inputs.end() && it->first == pm.name,
                "missing input '" << pm.name << "'");
    f[(std::size_t)(p.inBase + i)] = truncBits(it->second, pm.width);
    ++it;
  }

  const Insn* code = p.code.data();
  const Insn* in = nullptr;
  std::int32_t pc = 0;
  std::int32_t cur = p.initialState;
  std::int32_t next = 0;

#if MPHLS_VM_CGOTO
  static const void* const kLabels[] = {MPHLS_VM_OPS(VM_LABEL_ENTRY)};
  static_assert(sizeof(kLabels) / sizeof(kLabels[0]) ==
                (std::size_t)BOp::Count);
#endif

  for (long cycle = 0; cycle < maxCycles; ++cycle) {
    if (code[p.stateStart[(std::size_t)cur]].op == BOp::CycHalt) {
      res.finished = true;
      break;
    }
    ++res.cycles;

    // Combinational prologue: fresh unit activity, multicycle completions
    // deliver first.
    if (p.numFus > 0)
      std::memset(s.fuActive.data(), 0, (std::size_t)p.numFus);
    if (p.hasMulticycle) {
      for (std::size_t u = 0; u < s.pendingDone.size(); ++u) {
        if (s.pendingDone[u] == cycle) {
          f[(std::size_t)p.fuBase + u] = s.pendingVal[u];
          s.fuActive[u] = 1;
          s.pendingDone[u] = -1;
        }
      }
    }

    pc = p.stateStart[(std::size_t)cur];

    VM_LOOP_BEGIN()
    VM_CASE(Nop) VM_NEXT();
    VM_CASE(ConstK) f[in->dst] = (std::uint64_t)in->imm; VM_NEXT();
    VM_CASE(Move) f[in->dst] = f[in->a] & in->mask; VM_NEXT();
    VM_CASE(SExtN)
      f[in->dst] = (std::uint64_t)sx(f[in->a], in->aw) & in->mask;
      VM_NEXT();
    VM_CASE(NotN) f[in->dst] = ~f[in->a] & in->mask; VM_NEXT();
    VM_CASE(NegN) f[in->dst] = (~f[in->a] + 1) & in->mask; VM_NEXT();
    VM_CASE(IncN) f[in->dst] = (f[in->a] + 1) & in->mask; VM_NEXT();
    VM_CASE(DecN) f[in->dst] = (f[in->a] - 1) & in->mask; VM_NEXT();
    VM_CASE(ShlC) f[in->dst] = (f[in->a] << in->imm) & in->mask; VM_NEXT();
    VM_CASE(ShrC) f[in->dst] = (f[in->a] >> in->imm) & in->mask; VM_NEXT();
    VM_CASE(SarC)
      f[in->dst] =
          (std::uint64_t)(sx(f[in->a], in->aw) >> in->imm) & in->mask;
      VM_NEXT();
    VM_CASE(AddN) f[in->dst] = (f[in->a] + f[in->b]) & in->mask; VM_NEXT();
    VM_CASE(SubN) f[in->dst] = (f[in->a] - f[in->b]) & in->mask; VM_NEXT();
    VM_CASE(MulN) f[in->dst] = (f[in->a] * f[in->b]) & in->mask; VM_NEXT();
    VM_CASE(DivS) {
      std::int64_t d = sx(f[in->b], in->bw);
      f[in->dst] =
          d == 0    ? in->mask
          : d == -1 ? (0 - (std::uint64_t)sx(f[in->a], in->aw)) & in->mask
                    : (std::uint64_t)(sx(f[in->a], in->aw) / d) & in->mask;
      VM_NEXT();
    }
    VM_CASE(DivU)
      f[in->dst] =
          f[in->b] == 0 ? in->mask : (f[in->a] / f[in->b]) & in->mask;
      VM_NEXT();
    VM_CASE(ModS) {
      std::int64_t d = sx(f[in->b], in->bw);
      f[in->dst] = (d == 0 || d == -1)
                       ? 0
                       : (std::uint64_t)(sx(f[in->a], in->aw) % d) & in->mask;
      VM_NEXT();
    }
    VM_CASE(ModU)
      f[in->dst] = f[in->b] == 0 ? 0 : (f[in->a] % f[in->b]) & in->mask;
      VM_NEXT();
    VM_CASE(AndN) f[in->dst] = (f[in->a] & f[in->b]) & in->mask; VM_NEXT();
    VM_CASE(OrN) f[in->dst] = (f[in->a] | f[in->b]) & in->mask; VM_NEXT();
    VM_CASE(XorN) f[in->dst] = (f[in->a] ^ f[in->b]) & in->mask; VM_NEXT();
    VM_CASE(ShlV)
      f[in->dst] = f[in->b] >= 64 ? 0 : (f[in->a] << f[in->b]) & in->mask;
      VM_NEXT();
    VM_CASE(ShrV)
      f[in->dst] = f[in->b] >= 64 ? 0 : (f[in->a] >> f[in->b]) & in->mask;
      VM_NEXT();
    VM_CASE(SarV) {
      std::uint64_t sh = f[in->b] >= 63 ? 63 : f[in->b];
      f[in->dst] = (std::uint64_t)(sx(f[in->a], in->aw) >> sh) & in->mask;
      VM_NEXT();
    }
    VM_CASE(EqN) f[in->dst] = f[in->a] == f[in->b] ? 1 : 0; VM_NEXT();
    VM_CASE(NeN) f[in->dst] = f[in->a] != f[in->b] ? 1 : 0; VM_NEXT();
    VM_CASE(LtS)
      f[in->dst] = sx(f[in->a], in->aw) < sx(f[in->b], in->bw) ? 1 : 0;
      VM_NEXT();
    VM_CASE(LeS)
      f[in->dst] = sx(f[in->a], in->aw) <= sx(f[in->b], in->bw) ? 1 : 0;
      VM_NEXT();
    VM_CASE(GtS)
      f[in->dst] = sx(f[in->a], in->aw) > sx(f[in->b], in->bw) ? 1 : 0;
      VM_NEXT();
    VM_CASE(GeS)
      f[in->dst] = sx(f[in->a], in->aw) >= sx(f[in->b], in->bw) ? 1 : 0;
      VM_NEXT();
    VM_CASE(LtU) f[in->dst] = f[in->a] < f[in->b] ? 1 : 0; VM_NEXT();
    VM_CASE(LeU) f[in->dst] = f[in->a] <= f[in->b] ? 1 : 0; VM_NEXT();
    VM_CASE(GtU) f[in->dst] = f[in->a] > f[in->b] ? 1 : 0; VM_NEXT();
    VM_CASE(GeU) f[in->dst] = f[in->a] >= f[in->b] ? 1 : 0; VM_NEXT();
    VM_CASE(Sel)
      f[in->dst] = f[in->a] ? f[in->b] & in->mask : f[in->c] & in->mask;
      VM_NEXT();
    VM_CASE(OutW)
      f[in->dst] = f[in->a] & in->mask;
      s.outWritten[(std::size_t)in->b] = 1;
      VM_NEXT();
    VM_CASE(FuRd)
      MPHLS_CHECK(s.fuActive[(std::size_t)in->b],
                  "read of inactive unit output");
      f[in->dst] = f[in->a];
      VM_NEXT();
    VM_CASE(FuAct) s.fuActive[(std::size_t)in->a] = 1; VM_NEXT();
    VM_CASE(FuIss)
      MPHLS_CHECK(s.pendingDone[(std::size_t)in->a] < 0,
                  "unit issued while busy");
      s.pendingDone[(std::size_t)in->a] = cycle + in->imm;
      s.pendingVal[(std::size_t)in->a] = f[in->b];
      VM_NEXT();
    VM_CASE(CycEnd) next = in->a; goto cycleDone;
    VM_CASE(CycBr)
      next = (f[in->a] & 1) ? in->b : in->c;
      goto cycleDone;
    // Behavioral-only opcodes and CycHalt (peeked before dispatch) can
    // never be reached here.
    VM_CASE(Enter)
    VM_CASE(Jmp)
    VM_CASE(Br)
    VM_CASE(Ret)
    VM_CASE(CycHalt)
      MPHLS_CHECK(false, "vm: bad opcode in RTL cycle trace");
      VM_NEXT();
    VM_LOOP_END()

  cycleDone:
    if (observe) {
      s.obsRegs.assign(f + p.regBase, f + p.regBase + p.numRegs);
      s.obsOuts.assign(f + p.outBase,
                       f + p.outBase + (std::int32_t)p.ports.size());
      s.obsFuActive.assign(s.fuActive.begin(), s.fuActive.end());
      SimCycle sc;
      sc.cycle = cycle;
      sc.state = (std::uint64_t)cur;
      sc.nextState = (std::uint64_t)next;
      sc.regs = &s.obsRegs;
      sc.outs = &s.obsOuts;
      sc.fuActive = &s.obsFuActive;
      observe(sc);
    }
    cur = next;
  }

  for (std::size_t i = 0; i < p.ports.size(); ++i)
    if (!p.ports[i].isInput && s.outWritten[i])
      res.outputs[p.ports[i].name] = f[(std::size_t)p.outBase + i];
  return res;
}

}  // namespace mphls::vm
