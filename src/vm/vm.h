// Compiled simulation: a register-based bytecode VM for both simulation
// levels.
//
// The tree-walking interpreters (ir/interp.cpp, rtl/rtlsim.cpp) resolve
// operand locations, widths and mux selections on every executed op or
// cycle. The VM moves all of that to compile time: a Function or RtlDesign
// is lowered once into a flat instruction buffer whose operands are
// pre-resolved frame slots and whose width masks are baked into each
// instruction, so execution is a computed-goto dispatch over straight-line
// code. The interpreters remain the semantic oracle — see sim_engine.h for
// the cross-checking engine façade — and every instruction below is defined
// as "exactly what Interpreter::evalPure / RtlSimulator::run computes".
//
//   - Behavioral programs lower each basic block to an EnterBlock header
//     (budget check + trace/ops bookkeeping) followed by one instruction
//     per op, with terminators as patched Jmp/Br/Ret.
//   - RTL programs lower each controller state to a straight-line trace:
//     FU source gathering and evaluation, register/port source reads into
//     temporaries, raw register commits, masked port commits, and a
//     CycEnd/CycBr/CycHalt trailer carrying the transition — a simulated
//     cycle is one indirect jump into the state's trace plus a linear
//     sweep.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/interp.h"
#include "rtl/design.h"
#include "rtl/rtlsim.h"

namespace mphls::vm {

// One X-macro is the single source of truth for opcode identity: the enum,
// the computed-goto label table and the switch fallback are all generated
// from it, so they can never disagree on dispatch order.
//
// Arithmetic opcodes are width-specialized at compile time: `mask` is the
// result-width mask, `aw`/`bw` the operand widths (consulted only by the
// sign-extending forms). Suffix S/U = signed/unsigned, C = constant
// amount, V = variable amount, N = plain ("no variant").
#define MPHLS_VM_OPS(X)                                                   \
  X(Nop)     /* no effect */                                              \
  X(ConstK)  /* dst = imm (pre-truncated) */                              \
  X(Move)    /* dst = f[a] & mask */                                      \
  X(SExtN)   /* dst = sext(f[a], aw) & mask */                            \
  X(NotN) X(NegN) X(IncN) X(DecN)                                         \
  X(ShlC) X(ShrC) X(SarC)   /* shift by imm (pre-validated range) */      \
  X(AddN) X(SubN) X(MulN)                                                 \
  X(DivS) X(DivU) X(ModS) X(ModU)                                         \
  X(AndN) X(OrN) X(XorN)                                                  \
  X(ShlV) X(ShrV) X(SarV)   /* shift by f[b] */                           \
  X(EqN) X(NeN)                                                           \
  X(LtS) X(LeS) X(GtS) X(GeS)                                             \
  X(LtU) X(LeU) X(GtU) X(GeU)                                             \
  X(Sel)     /* dst = f[a] ? f[b] & mask : f[c] & mask */                 \
  X(OutW)    /* dst = f[a] & mask; portWritten[b] = 1 */                  \
  X(Enter)   /* block header: budget, trace, ops += imm (a = block) */    \
  X(Jmp)     /* pc = a */                                                 \
  X(Br)      /* pc = f[a] ? b : c */                                      \
  X(Ret)     /* behavioral return */                                      \
  X(FuRd)    /* dst = f[a], checking fuActive[b] */                       \
  X(FuAct)   /* fuActive[a] = 1 (single-cycle result just computed) */    \
  X(FuIss)   /* issue multicycle: pending[a] = f[b], done in imm cycles */\
  X(CycEnd)  /* end of cycle trace; next state = a */                     \
  X(CycBr)   /* end of cycle trace; next = (f[a] & 1) ? b : c */          \
  X(CycHalt) /* state is the halt state */

enum class BOp : std::uint8_t {
#define MPHLS_VM_ENUM(name) name,
  MPHLS_VM_OPS(MPHLS_VM_ENUM)
#undef MPHLS_VM_ENUM
      Count,
};

/// One fixed-width instruction. Slot indices are frame offsets resolved at
/// compile time; `mask` is the result-width mask (all-ones when the write
/// is raw), `aw`/`bw` the operand widths for the sign-extending opcodes.
struct Insn {
  BOp op = BOp::Nop;
  std::uint8_t aw = 64;
  std::uint8_t bw = 64;
  std::int32_t dst = 0;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t c = 0;
  std::int64_t imm = 0;
  std::uint64_t mask = ~0ull;
};

/// Port metadata shared by both program kinds (indexed by PortId).
struct PortInfo {
  std::string name;
  int width = 0;
  bool isInput = false;
};

/// A compiled behavioral Function. Frame layout:
/// [values | variables | ports], all zero-initialized per run.
struct BehavProgram {
  std::vector<Insn> code;
  std::int32_t entryPc = 0;
  std::int32_t numSlots = 0;
  std::int32_t varBase = 0;
  std::int32_t portBase = 0;
  std::vector<PortInfo> ports;
  /// Input-port indices sorted by port name: input loading is a single
  /// merge pass against the (ordered) inputs map instead of a lookup per
  /// port.
  std::vector<std::int32_t> inOrder;
};

/// A compiled RTL design. Frame layout:
/// [registers | input ports | output ports | FU outputs | temps | pool],
/// where the pool holds constant-folded datapath sources (Const roots with
/// their wiring transforms pre-applied).
struct RtlProgram {
  std::vector<Insn> code;
  /// Per controller state: offset of its cycle trace in `code`.
  std::vector<std::int32_t> stateStart;
  std::int32_t initialState = 0;
  std::int32_t numSlots = 0;
  std::int32_t regBase = 0;
  std::int32_t inBase = 0;
  std::int32_t outBase = 0;
  std::int32_t fuBase = 0;
  std::int32_t numRegs = 0;
  std::int32_t numFus = 0;
  std::vector<std::pair<std::int32_t, std::uint64_t>> pool;
  std::vector<PortInfo> ports;
  /// Input-port indices sorted by port name (see BehavProgram::inOrder).
  std::vector<std::int32_t> inOrder;
  /// Whether any state issues a multicycle unit (FuIss); when false the
  /// per-cycle completion-delivery sweep is skipped entirely.
  bool hasMulticycle = false;
};

/// Reusable run state. Keeping it outside the program lets a caller (the
/// SimEngine cache, the fuzzer's per-point loop, the benchmark) re-run a
/// compiled program without reallocating; none of this is thread-safe to
/// share, which matches the one-simulator-per-worker fuzz architecture.
struct BehavScratch {
  std::vector<std::uint64_t> frame;
  std::vector<std::uint8_t> portWritten;
  /// Block-trace length of the previous run, used as the reserve hint for
  /// the next one (trial inputs on the same program usually trace within
  /// the same order of magnitude, so repeated growth reallocations stop
  /// after the first run).
  std::size_t lastTraceLen = 0;
};

struct RtlScratch {
  std::vector<std::uint64_t> frame;
  std::vector<std::uint8_t> fuActive;
  std::vector<std::uint8_t> outWritten;
  std::vector<long> pendingDone;
  std::vector<std::uint64_t> pendingVal;
  // Observer staging, filled only when a SimObserver is attached.
  std::vector<std::uint64_t> obsRegs;
  std::vector<std::uint64_t> obsOuts;
  std::vector<bool> obsFuActive;
  /// Program this scratch was last sized and pool-primed for. While it
  /// stays the same, runs skip re-sizing every vector and re-writing the
  /// constant pool (the pool region of the frame is never clobbered by
  /// execution, so priming once per program is sound).
  const void* primedFor = nullptr;
};

/// Lower a behavioral function to bytecode. Pure metadata transformation:
/// never executes the design.
[[nodiscard]] BehavProgram compileBehavioral(const Function& fn);

/// Lower a synthesized design's controller + datapath to per-state traces.
/// Mux selections are validated here ("bad mux select" becomes a compile
/// error instead of a runtime one).
[[nodiscard]] RtlProgram compileRtl(const RtlDesign& d);

/// Execute a compiled behavioral program. Bit-identical to
/// Interpreter::run on every field of ExecResult (outputs, blockTrace,
/// opsExecuted, finished).
[[nodiscard]] ExecResult runBehavProgram(
    const BehavProgram& p, BehavScratch& scratch,
    const std::map<std::string, std::uint64_t>& inputs,
    long maxBlockExecs = 100000);

/// Execute a compiled RTL program. Bit-identical to RtlSimulator::run
/// (outputs, cycles, finished), including the per-cycle SimCycle snapshots
/// handed to `observe` — the VCD/coverage path runs on the VM natively.
[[nodiscard]] RtlExecResult runRtlProgram(
    const RtlProgram& p, RtlScratch& scratch,
    const std::map<std::string, std::uint64_t>& inputs,
    long maxCycles = 1000000, const SimObserver& observe = {});

}  // namespace mphls::vm
