// SimEngine: the common simulation interface the fuzzer, the synthesizer's
// verify path and the CLI route through.
//
// An engine wraps one design at one level (behavioral Function or
// synthesized RtlDesign) and owns its compiled program plus reusable run
// state — constructing the engine once per (design, matrix point) is
// exactly the compile cache the fuzz matrix needs. Three modes:
//
//   - Interp: the original tree-walking interpreter, unchanged.
//   - Vm:     the bytecode VM, with a configurable sampling rate that
//             re-runs a fraction of executions on the interpreter and
//             hard-fails (DivergenceError) if any observable differs.
//   - Both:   every execution runs on both and is compared.
//
// The cross-check sampler is deterministic (splitmix64 over the seed and a
// per-engine draw counter), so a campaign checks the same runs at any job
// count. Engines are not thread-safe; use one per worker.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "vm/vm.h"

namespace mphls::vm {

enum class EngineKind { Interp, Vm, Both };

[[nodiscard]] std::string_view engineKindName(EngineKind k);

/// Parse "interp" | "vm" | "both"; returns false on anything else.
bool parseEngineKind(const std::string& name, EngineKind& out);

struct EngineOptions {
  EngineKind kind = EngineKind::Vm;
  /// Fraction of VM executions re-run on the interpreter oracle (Vm mode
  /// only; Both always checks, Interp never). Clamped to [0, 1].
  double crossCheck = 0.02;
  /// Stream seed for the cross-check sampler.
  std::uint64_t seed = 0;
};

/// A VM result disagreed with the interpreter oracle on the same inputs.
/// This is always a VM bug (the interpreters are the spec) and is reported
/// as its own failure kind, never folded into a co-sim mismatch.
class DivergenceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Behavioral engine: Interpreter-compatible execution of one Function.
class BehavSim {
 public:
  explicit BehavSim(const Function& fn, const EngineOptions& opts = {});

  /// Same contract as Interpreter::run (without the value observer).
  /// Throws DivergenceError when a cross-checked run disagrees.
  [[nodiscard]] ExecResult run(
      const std::map<std::string, std::uint64_t>& inputs,
      long maxBlockExecs = 100000) const;

 private:
  const Function& fn_;
  EngineOptions opts_;
  BehavProgram prog_;
  mutable BehavScratch scratch_;
  mutable std::uint64_t draws_ = 0;
  obs::Counter* runs_ = nullptr;    ///< cached handle (stable for life)
  obs::Counter* checks_ = nullptr;
};

/// RTL engine: RtlSimulator-compatible execution of one RtlDesign.
class RtlSim {
 public:
  explicit RtlSim(const RtlDesign& design, const EngineOptions& opts = {});

  /// Same contract as RtlSimulator::run. The observer (VCD, coverage) is
  /// fed by the primary engine's per-cycle snapshots — natively by the
  /// RTL VM in Vm/Both modes; cross-check re-runs are unobserved.
  [[nodiscard]] RtlExecResult run(
      const std::map<std::string, std::uint64_t>& inputs,
      long maxCycles = 1000000, const SimObserver& observe = {}) const;

 private:
  const RtlDesign& d_;
  EngineOptions opts_;
  RtlProgram prog_;
  mutable RtlScratch scratch_;
  mutable std::uint64_t draws_ = 0;
  obs::Counter* runs_ = nullptr;    ///< cached handle (stable for life)
  obs::Counter* checks_ = nullptr;
};

}  // namespace mphls::vm
