// Bytecode compilers: Function -> BehavProgram, RtlDesign -> RtlProgram.
//
// Lowering is where all the per-execution work of the interpreters is paid
// once: operand slots, operand widths, result masks, constant folding of
// wired-constant sources, shift-range validation and mux-select validation
// all happen here, so the dispatch loop in exec.cpp touches nothing but
// the frame.

#include <algorithm>
#include <map>

#include "common/bitutil.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rtl/source_eval.h"
#include "vm/vm.h"

namespace mphls::vm {

namespace {

/// Lower one pure op (shared semantics with Interpreter::evalPure) into a
/// single instruction. `slots`/`widths` list the operands in evalPure
/// argument order; `width` is the result width, `imm` the constant-shift
/// amount. Out-of-range constant shifts fold to 0 and SarConst clamps its
/// amount, exactly as evalPure defines them.
Insn pureInsn(OpKind kind, int width, std::int64_t imm,
              const std::vector<std::int32_t>& slots,
              const std::vector<int>& widths, std::int32_t dst) {
  Insn in;
  in.dst = dst;
  in.mask = maskBits(width);
  if (!slots.empty()) {
    in.a = slots[0];
    in.aw = (std::uint8_t)widths[0];
  }
  if (slots.size() > 1) {
    in.b = slots[1];
    in.bw = (std::uint8_t)widths[1];
  }
  if (slots.size() > 2) in.c = slots[2];
  switch (kind) {
    case OpKind::Not: in.op = BOp::NotN; break;
    case OpKind::Neg: in.op = BOp::NegN; break;
    case OpKind::Inc: in.op = BOp::IncN; break;
    case OpKind::Dec: in.op = BOp::DecN; break;
    case OpKind::ShlConst:
    case OpKind::ShrConst:
      if (imm < 0 || imm >= 64) {
        in.op = BOp::ConstK;
        in.imm = 0;
      } else {
        in.op = kind == OpKind::ShlConst ? BOp::ShlC : BOp::ShrC;
        in.imm = imm;
      }
      break;
    case OpKind::SarConst:
      in.op = BOp::SarC;
      in.imm = imm < 0 ? 0 : imm > 63 ? 63 : imm;
      break;
    case OpKind::Trunc:
    case OpKind::ZExt:
      in.op = BOp::Move;
      break;
    case OpKind::SExt: in.op = BOp::SExtN; break;
    case OpKind::Add: in.op = BOp::AddN; break;
    case OpKind::Sub: in.op = BOp::SubN; break;
    case OpKind::Mul: in.op = BOp::MulN; break;
    case OpKind::Div: in.op = BOp::DivS; break;
    case OpKind::UDiv: in.op = BOp::DivU; break;
    case OpKind::Mod: in.op = BOp::ModS; break;
    case OpKind::UMod: in.op = BOp::ModU; break;
    case OpKind::And: in.op = BOp::AndN; break;
    case OpKind::Or: in.op = BOp::OrN; break;
    case OpKind::Xor: in.op = BOp::XorN; break;
    case OpKind::Shl: in.op = BOp::ShlV; break;
    case OpKind::Shr: in.op = BOp::ShrV; break;
    case OpKind::Sar: in.op = BOp::SarV; break;
    case OpKind::Eq: in.op = BOp::EqN; break;
    case OpKind::Ne: in.op = BOp::NeN; break;
    case OpKind::Lt: in.op = BOp::LtS; break;
    case OpKind::Le: in.op = BOp::LeS; break;
    case OpKind::Gt: in.op = BOp::GtS; break;
    case OpKind::Ge: in.op = BOp::GeS; break;
    case OpKind::ULt: in.op = BOp::LtU; break;
    case OpKind::ULe: in.op = BOp::LeU; break;
    case OpKind::UGt: in.op = BOp::GtU; break;
    case OpKind::UGe: in.op = BOp::GeU; break;
    case OpKind::Select: in.op = BOp::Sel; break;
    default:
      MPHLS_CHECK(false, "vm: cannot lower op " << opName(kind));
  }
  return in;
}

std::vector<PortInfo> portTable(const Function& fn) {
  std::vector<PortInfo> ports;
  ports.reserve(fn.ports().size());
  for (const Port& p : fn.ports()) ports.push_back({p.name, p.width, p.isInput});
  return ports;
}

std::vector<std::int32_t> inputOrder(const std::vector<PortInfo>& ports) {
  std::vector<std::int32_t> order;
  for (std::size_t i = 0; i < ports.size(); ++i)
    if (ports[i].isInput) order.push_back((std::int32_t)i);
  std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
    return ports[(std::size_t)a].name < ports[(std::size_t)b].name;
  });
  return order;
}

}  // namespace

BehavProgram compileBehavioral(const Function& fn) {
  obs::TraceSpan span("vm.compile", fn.name());
  obs::MetricsRegistry::global().counter("vm.compiles").add(1);

  BehavProgram p;
  const std::int32_t numVals = (std::int32_t)fn.numValues();
  p.varBase = numVals;
  p.portBase = p.varBase + (std::int32_t)fn.vars().size();
  p.numSlots = p.portBase + (std::int32_t)fn.ports().size();
  p.ports = portTable(fn);
  p.inOrder = inputOrder(p.ports);

  auto valSlot = [&](ValueId v) { return (std::int32_t)v.index(); };
  auto varSlot = [&](VarId v) { return p.varBase + (std::int32_t)v.index(); };
  auto portSlot = [&](PortId q) {
    return p.portBase + (std::int32_t)q.index();
  };

  std::vector<std::int32_t> blockPc(fn.numBlocks(), 0);
  // (instruction index, operand selector, target block) patched once all
  // block offsets are known. Selector: 0 = a, 1 = b, 2 = c.
  std::vector<std::tuple<std::size_t, int, BlockId>> fixups;

  for (const Block& blk : fn.blocks()) {
    blockPc[blk.id.index()] = (std::int32_t)p.code.size();

    Insn enter;
    enter.op = BOp::Enter;
    enter.a = (std::int32_t)blk.id.index();
    for (OpId oid : blk.ops)
      if (!fn.op(oid).isFree()) ++enter.imm;
    p.code.push_back(enter);

    for (OpId oid : blk.ops) {
      const Op& o = fn.op(oid);
      Insn in;
      switch (o.kind) {
        case OpKind::Nop:
          continue;
        case OpKind::Const:
          in.op = BOp::ConstK;
          in.dst = valSlot(o.result);
          in.imm = (std::int64_t)truncBits((std::uint64_t)o.imm,
                                           fn.value(o.result).width);
          break;
        case OpKind::ReadPort:
          // The interpreter copies the port value raw (ports only ever
          // hold width-truncated values).
          in.op = BOp::Move;
          in.dst = valSlot(o.result);
          in.a = portSlot(o.port);
          break;
        case OpKind::LoadVar:
          in.op = BOp::Move;
          in.dst = valSlot(o.result);
          in.a = varSlot(o.var);
          in.mask = maskBits(fn.value(o.result).width);
          break;
        case OpKind::StoreVar:
          in.op = BOp::Move;
          in.dst = varSlot(o.var);
          in.a = valSlot(o.args[0]);
          in.mask = maskBits(fn.var(o.var).width);
          break;
        case OpKind::WritePort:
          in.op = BOp::OutW;
          in.dst = portSlot(o.port);
          in.a = valSlot(o.args[0]);
          in.b = (std::int32_t)o.port.index();
          in.mask = maskBits(fn.port(o.port).width);
          break;
        default: {
          std::vector<std::int32_t> slots;
          std::vector<int> widths;
          slots.reserve(o.args.size());
          for (ValueId v : o.args) {
            slots.push_back(valSlot(v));
            widths.push_back(fn.value(v).width);
          }
          in = pureInsn(o.kind, fn.value(o.result).width, o.imm, slots,
                        widths, valSlot(o.result));
          break;
        }
      }
      p.code.push_back(in);
    }

    const Terminator& t = blk.term;
    Insn term;
    switch (t.kind) {
      case Terminator::Kind::Return:
        term.op = BOp::Ret;
        break;
      case Terminator::Kind::Jump:
        term.op = BOp::Jmp;
        fixups.emplace_back(p.code.size(), 0, t.target);
        break;
      case Terminator::Kind::Branch:
        term.op = BOp::Br;
        term.a = valSlot(t.cond);
        fixups.emplace_back(p.code.size(), 1, t.target);
        fixups.emplace_back(p.code.size(), 2, t.elseTarget);
        break;
    }
    p.code.push_back(term);
  }

  for (const auto& [idx, sel, target] : fixups) {
    std::int32_t pc = blockPc[target.index()];
    if (sel == 0) p.code[idx].a = pc;
    else if (sel == 1) p.code[idx].b = pc;
    else p.code[idx].c = pc;
  }
  p.entryPc = blockPc[fn.entry().index()];
  return p;
}

namespace {

/// Per-state lowering context for RTL sources: emits the read of a Source
/// into a frame slot, folding Const roots (with their transform chains)
/// into the shared constant pool.
class RtlLowerer {
 public:
  RtlLowerer(const RtlDesign& d, RtlProgram& p) : d_(d), p_(p) {}

  void beginState() { nextTemp_ = tempBase_; }

  /// Slot holding the value of `s` this cycle (evaluation order matters:
  /// emitted instructions read FU outputs and registers as of "now").
  /// `deferred` marks a read whose consumer executes after commits have
  /// begun (a commit operand or the next-state condition); such a read may
  /// not alias the register file directly, because a commit this cycle
  /// could overwrite the root before the consumer runs.
  std::int32_t lowerSource(const Source& s, bool deferred = false) {
    switch (s.kind) {
      case Source::Kind::Const: {
        std::uint64_t v = truncBits((std::uint64_t)s.imm, s.rootWidth);
        int w = s.rootWidth;
        for (const WireXform& x : s.xform) {
          v = Interpreter::evalPure(x.kind, x.width, x.imm, {v}, {w});
          w = x.width;
        }
        return poolSlot(v);
      }
      case Source::Kind::Reg: {
        // Registers commit raw, so the root read truncates.
        std::int32_t root = p_.regBase + s.id;
        if (s.rootWidth >= kMaxWidth && s.xform.empty() && !deferred)
          return root;
        std::int32_t t = temp();
        Insn in;
        in.op = BOp::Move;
        in.dst = t;
        in.a = root;
        in.mask = maskBits(s.rootWidth);
        p_.code.push_back(in);
        return xformChain(t, s);
      }
      case Source::Kind::Port: {
        std::int32_t root = p_.inBase + s.id;
        int pw = d_.fn.ports()[(std::size_t)s.id].width;
        if (s.rootWidth >= pw && s.xform.empty()) return root;
        std::int32_t t = temp();
        Insn in;
        in.op = BOp::Move;
        in.dst = t;
        in.a = root;
        in.mask = maskBits(s.rootWidth);
        p_.code.push_back(in);
        return xformChain(t, s);
      }
      case Source::Kind::Fu: {
        MPHLS_CHECK(s.id >= 0 && s.id < p_.numFus,
                    "vm: source reads out-of-range unit " << s.id);
        std::int32_t t = temp();
        Insn in;
        in.op = BOp::FuRd;
        in.dst = t;
        in.a = p_.fuBase + s.id;
        in.b = s.id;
        p_.code.push_back(in);
        return xformChain(t, s);
      }
    }
    MPHLS_CHECK(false, "vm: unknown source kind");
    return 0;
  }

  std::int32_t temp() { return nextTemp_++; }

  void setTempBase(std::int32_t base) {
    tempBase_ = base;
    nextTemp_ = base;
  }
  [[nodiscard]] std::int32_t maxTempsUsed() const { return maxTemps_; }
  void endState() {
    if (nextTemp_ - tempBase_ > maxTemps_) maxTemps_ = nextTemp_ - tempBase_;
  }

 private:
  /// Apply a wiring-transform chain in place on the temp holding the root.
  std::int32_t xformChain(std::int32_t slot, const Source& s) {
    int w = s.rootWidth;
    for (const WireXform& x : s.xform) {
      p_.code.push_back(pureInsn(x.kind, x.width, x.imm, {slot}, {w}, slot));
      w = x.width;
    }
    return slot;
  }

  std::int32_t poolSlot(std::uint64_t v) {
    auto it = pool_.find(v);
    if (it != pool_.end()) return it->second;
    std::int32_t slot = -(std::int32_t)pool_.size() - 1;  // patched later
    pool_.emplace(v, slot);
    return slot;
  }

 public:
  /// Pool slots are assigned after temps (their count is only known at the
  /// end); until then they are negative placeholders patched here.
  void finalizePool(std::int32_t poolBase) {
    for (auto& [v, slot] : pool_) {
      std::int32_t real = poolBase + (-slot - 1);
      p_.pool.emplace_back(real, v);
      slot = real;
    }
    for (Insn& in : p_.code) {
      if (in.a < 0) in.a = poolBase + (-in.a - 1);
      if (in.b < 0 && in.op != BOp::CycEnd && in.op != BOp::CycBr)
        in.b = poolBase + (-in.b - 1);
      if (in.c < 0 && in.op != BOp::CycBr) in.c = poolBase + (-in.c - 1);
    }
  }

  [[nodiscard]] std::size_t poolSize() const { return pool_.size(); }

 private:
  const RtlDesign& d_;
  RtlProgram& p_;
  std::map<std::uint64_t, std::int32_t> pool_;
  std::int32_t tempBase_ = 0;
  std::int32_t nextTemp_ = 0;
  std::int32_t maxTemps_ = 0;
};

}  // namespace

RtlProgram compileRtl(const RtlDesign& d) {
  obs::TraceSpan span("vm.compile", d.fn.name());
  obs::MetricsRegistry::global().counter("vm.compiles").add(1);

  RtlProgram p;
  const std::int32_t numPorts = (std::int32_t)d.fn.ports().size();
  p.numRegs = d.regs.numRegs;
  p.numFus = d.binding.numFus();
  p.regBase = 0;
  p.inBase = p.regBase + p.numRegs;
  p.outBase = p.inBase + numPorts;
  p.fuBase = p.outBase + numPorts;
  const std::int32_t tempBase = p.fuBase + p.numFus;
  p.ports = portTable(d.fn);
  p.inOrder = inputOrder(p.ports);
  p.initialState = (std::int32_t)d.ctrl.initial.index();

  RtlLowerer lower(d, p);
  lower.setTempBase(tempBase);

  p.stateStart.reserve(d.ctrl.numStates());
  for (const CtrlState& st : d.ctrl.states) {
    p.stateStart.push_back((std::int32_t)p.code.size());
    if (st.halt) {
      Insn halt;
      halt.op = BOp::CycHalt;
      p.code.push_back(halt);
      continue;
    }
    lower.beginState();

    // Functional units, in action order: an earlier unit's output is
    // readable by a later unit in the same state.
    for (const FuAction& fa : st.fuActions) {
      std::vector<std::int32_t> slots;
      std::vector<int> widths;
      auto pushPort = [&](int port) {
        const MuxSpec& mux =
            d.ic.fuInput[(std::size_t)fa.fu][(std::size_t)port];
        MPHLS_CHECK(fa.muxSel[port] >= 0 && fa.muxSel[port] < mux.legs(),
                    "bad mux select");
        const Source& s = mux.sources[(std::size_t)fa.muxSel[port]];
        slots.push_back(lower.lowerSource(s));
        widths.push_back(s.finalWidth());
      };
      if (fa.kind == OpKind::Select) {
        pushPort(2);  // condition
        pushPort(0);  // taken value
        pushPort(1);  // not-taken value
      } else {
        int arity = opArity(fa.kind);
        for (int port = 0; port < arity; ++port) pushPort(port);
      }
      if (fa.cycles <= 1) {
        p.code.push_back(
            pureInsn(fa.kind, fa.width, 0, slots, widths, p.fuBase + fa.fu));
        Insn act;
        act.op = BOp::FuAct;
        act.a = fa.fu;
        p.code.push_back(act);
      } else {
        std::int32_t t = lower.temp();
        p.code.push_back(pureInsn(fa.kind, fa.width, 0, slots, widths, t));
        Insn iss;
        iss.op = BOp::FuIss;
        iss.a = fa.fu;
        iss.b = t;
        iss.imm = fa.cycles - 1;
        p.code.push_back(iss);
        p.hasMulticycle = true;
      }
    }

    // Sequential phase. RtlSimulator reads every latched source and the
    // next-state condition before committing anything, so a deferred read
    // (one consumed by a commit or the trailer) may only alias frame
    // slots that no commit this cycle overwrites. Slots that qualify —
    // pool constants, input ports, FU outputs, and registers not
    // themselves committed this state — skip the stage-through-temp copy:
    // the commit instruction reads the root directly and applies the
    // source's truncation mask itself. Everything else (transform chains,
    // committed registers, FU reads feeding ports or the condition, which
    // need a FuRd for the liveness check) stages through a temp emitted
    // before the first commit, exactly as the simulator's read phase.
    std::vector<std::int32_t> clobbered;
    for (const RegAction& ra : st.regActions)
      clobbered.push_back(p.regBase + ra.reg);
    // Resolve `s` to a slot a deferred consumer may read directly, with
    // the truncation mask that read must apply. `allowFu` lets register
    // commits absorb the FU read (a FuRd targeting the register keeps the
    // liveness check); other consumers cannot.
    auto directSlot = [&](const Source& s, bool allowFu, std::int32_t& slot,
                          std::uint64_t& mask) -> bool {
      if (s.kind == Source::Kind::Const) {
        slot = lower.lowerSource(s);  // pool: pre-folded, pre-truncated
        mask = ~0ull;
        return true;
      }
      if (!s.xform.empty()) return false;
      switch (s.kind) {
        case Source::Kind::Port:
          slot = p.inBase + s.id;
          mask = maskBits(s.rootWidth);
          return true;
        case Source::Kind::Reg:
          slot = p.regBase + s.id;
          mask = maskBits(s.rootWidth);
          return std::find(clobbered.begin(), clobbered.end(), slot) ==
                 clobbered.end();
        case Source::Kind::Fu:
          slot = p.fuBase + s.id;
          mask = ~0ull;  // FU outputs are computed pre-truncated
          return allowFu;
        default:
          return false;
      }
    };

    struct RegCommit {
      std::int32_t reg;
      std::int32_t src;
      std::uint64_t mask;
      std::int32_t fu;  ///< >= 0: src is a live FU output, commit via FuRd
    };
    std::vector<RegCommit> regCommits;
    for (const RegAction& ra : st.regActions) {
      const MuxSpec& mux = d.ic.regInput[(std::size_t)ra.reg];
      MPHLS_CHECK(ra.muxSel >= 0 && ra.muxSel < mux.legs(), "bad mux select");
      const Source& s = mux.sources[(std::size_t)ra.muxSel];
      RegCommit rc{p.regBase + ra.reg, 0, ~0ull, -1};
      if (directSlot(s, /*allowFu=*/true, rc.src, rc.mask)) {
        if (s.kind == Source::Kind::Fu) rc.fu = s.id;
      } else {
        rc.src = lower.lowerSource(s, /*deferred=*/true);
        rc.mask = ~0ull;  // temp already holds the final source value
      }
      regCommits.push_back(rc);
    }
    struct PortCommit {
      std::int32_t port;
      std::int32_t src;
      std::uint64_t mask;
    };
    std::vector<PortCommit> portCommits;
    for (const PortAction& pa : st.portActions) {
      const MuxSpec& mux = d.ic.outPortInput[(std::size_t)pa.port];
      MPHLS_CHECK(pa.muxSel >= 0 && pa.muxSel < mux.legs(), "bad mux select");
      const Source& s = mux.sources[(std::size_t)pa.muxSel];
      const std::uint64_t pw =
          maskBits(d.fn.ports()[(std::size_t)pa.port].width);
      std::int32_t slot;
      std::uint64_t m;
      if (directSlot(s, /*allowFu=*/false, slot, m))
        portCommits.push_back({pa.port, slot, m & pw});
      else
        portCommits.push_back(
            {pa.port, lower.lowerSource(s, /*deferred=*/true), pw});
    }
    std::int32_t condSlot = -1;
    if (st.conditional) {
      std::int32_t slot;
      std::uint64_t m;
      // CycBr consumes only bit 0, which any truncation (rootWidth >= 1)
      // preserves, so a direct slot needs no masking copy.
      if (directSlot(st.cond, /*allowFu=*/false, slot, m))
        condSlot = slot;
      else
        condSlot = lower.lowerSource(st.cond, /*deferred=*/true);
    }

    for (const RegCommit& rc : regCommits) {
      Insn in;
      if (rc.fu >= 0) {
        in.op = BOp::FuRd;
        in.b = rc.fu;
      } else {
        in.op = BOp::Move;  // registers commit raw: mask only truncates
        in.mask = rc.mask;  // the source read folded into the commit
      }
      in.dst = rc.reg;
      in.a = rc.src;
      p.code.push_back(in);
    }
    for (const PortCommit& pc : portCommits) {
      Insn in;
      in.op = BOp::OutW;
      in.dst = p.outBase + pc.port;
      in.a = pc.src;
      in.b = pc.port;
      in.mask = pc.mask;
      p.code.push_back(in);
    }

    Insn trail;
    if (st.conditional) {
      trail.op = BOp::CycBr;
      trail.a = condSlot;
      trail.b = (std::int32_t)st.nextTaken.index();
      trail.c = (std::int32_t)st.nextNot.index();
    } else {
      MPHLS_CHECK(st.next.valid(),
                  "vm: non-halt state " << st.id.index() << " has no next");
      trail.op = BOp::CycEnd;
      trail.a = (std::int32_t)st.next.index();
    }
    p.code.push_back(trail);
    lower.endState();
  }

  const std::int32_t poolBase = tempBase + lower.maxTempsUsed();
  lower.finalizePool(poolBase);
  p.numSlots = poolBase + (std::int32_t)p.pool.size();
  return p;
}

}  // namespace mphls::vm
