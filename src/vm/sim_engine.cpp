#include "vm/sim_engine.h"

#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mphls::vm {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Deterministic Bernoulli draw: true with probability `rate`.
bool sampleDraw(const EngineOptions& opts, std::uint64_t& draws) {
  if (opts.crossCheck >= 1.0) return true;
  if (opts.crossCheck <= 0.0) return false;
  std::uint64_t r = splitmix64(opts.seed ^ ++draws);
  // Compare the top 53 bits against the rate at double precision.
  return (double)(r >> 11) < opts.crossCheck * 9007199254740992.0;
}

bool wantCheck(const EngineOptions& opts, std::uint64_t& draws) {
  if (opts.kind == EngineKind::Both) return true;
  if (opts.kind != EngineKind::Vm) return false;
  return sampleDraw(opts, draws);
}

void describeInputs(std::ostringstream& oss,
                    const std::map<std::string, std::uint64_t>& inputs) {
  oss << " inputs:";
  for (const auto& [k, v] : inputs) oss << " " << k << "=" << v;
}

void describeOutputs(std::ostringstream& oss, const char* tag,
                     const std::map<std::string, std::uint64_t>& outs) {
  oss << " " << tag << ":";
  if (outs.empty()) oss << " (none)";
  for (const auto& [k, v] : outs) oss << " " << k << "=" << v;
}

}  // namespace

std::string_view engineKindName(EngineKind k) {
  switch (k) {
    case EngineKind::Interp: return "interp";
    case EngineKind::Vm: return "vm";
    case EngineKind::Both: return "both";
  }
  return "?";
}

bool parseEngineKind(const std::string& name, EngineKind& out) {
  if (name == "interp") out = EngineKind::Interp;
  else if (name == "vm") out = EngineKind::Vm;
  else if (name == "both") out = EngineKind::Both;
  else return false;
  return true;
}

BehavSim::BehavSim(const Function& fn, const EngineOptions& opts)
    : fn_(fn), opts_(opts) {
  if (opts_.kind != EngineKind::Interp) prog_ = compileBehavioral(fn_);
  // Counter handles are stable for the registry's lifetime; resolving them
  // here keeps the per-run path free of locked name lookups.
  runs_ = &obs::MetricsRegistry::global().counter("vm.behav_runs");
  checks_ = &obs::MetricsRegistry::global().counter("vm.cross_checks");
}

ExecResult BehavSim::run(const std::map<std::string, std::uint64_t>& inputs,
                         long maxBlockExecs) const {
  if (opts_.kind == EngineKind::Interp)
    return Interpreter(fn_).run(inputs, maxBlockExecs);

  runs_->add(1);
  ExecResult got;
  if (obs::Tracer::global().enabled()) {
    obs::TraceSpan span("vm.exec", fn_.name());
    got = runBehavProgram(prog_, scratch_, inputs, maxBlockExecs);
  } else {
    got = runBehavProgram(prog_, scratch_, inputs, maxBlockExecs);
  }
  if (wantCheck(opts_, draws_)) {
    checks_->add(1);
    ExecResult want = Interpreter(fn_).run(inputs, maxBlockExecs);
    if (got.outputs != want.outputs || got.finished != want.finished ||
        got.opsExecuted != want.opsExecuted ||
        got.blockTrace != want.blockTrace) {
      std::ostringstream oss;
      oss << "behavioral VM diverged from the interpreter on '" << fn_.name()
          << "':";
      describeInputs(oss, inputs);
      describeOutputs(oss, "interp", want.outputs);
      describeOutputs(oss, "vm", got.outputs);
      if (got.finished != want.finished)
        oss << " finished: interp=" << want.finished << " vm="
            << got.finished;
      if (got.opsExecuted != want.opsExecuted)
        oss << " opsExecuted: interp=" << want.opsExecuted << " vm="
            << got.opsExecuted;
      if (got.blockTrace != want.blockTrace)
        oss << " block traces differ (interp " << want.blockTrace.size()
            << " blocks, vm " << got.blockTrace.size() << ")";
      throw DivergenceError(oss.str());
    }
  }
  return got;
}

RtlSim::RtlSim(const RtlDesign& design, const EngineOptions& opts)
    : d_(design), opts_(opts) {
  if (opts_.kind != EngineKind::Interp) prog_ = compileRtl(d_);
  runs_ = &obs::MetricsRegistry::global().counter("vm.rtl_runs");
  checks_ = &obs::MetricsRegistry::global().counter("vm.cross_checks");
}

RtlExecResult RtlSim::run(const std::map<std::string, std::uint64_t>& inputs,
                          long maxCycles, const SimObserver& observe) const {
  if (opts_.kind == EngineKind::Interp)
    return RtlSimulator(d_).run(inputs, maxCycles, observe);

  runs_->add(1);
  RtlExecResult got;
  if (obs::Tracer::global().enabled()) {
    obs::TraceSpan span("vm.exec", d_.fn.name());
    got = runRtlProgram(prog_, scratch_, inputs, maxCycles, observe);
  } else {
    got = runRtlProgram(prog_, scratch_, inputs, maxCycles, observe);
  }
  if (wantCheck(opts_, draws_)) {
    checks_->add(1);
    RtlExecResult want = RtlSimulator(d_).run(inputs, maxCycles);
    if (got.outputs != want.outputs || got.cycles != want.cycles ||
        got.finished != want.finished) {
      std::ostringstream oss;
      oss << "RTL VM diverged from the simulator on '" << d_.fn.name()
          << "':";
      describeInputs(oss, inputs);
      describeOutputs(oss, "interp", want.outputs);
      describeOutputs(oss, "vm", got.outputs);
      if (got.cycles != want.cycles)
        oss << " cycles: interp=" << want.cycles << " vm=" << got.cycles;
      if (got.finished != want.finished)
        oss << " finished: interp=" << want.finished << " vm="
            << got.finished;
      throw DivergenceError(oss.str());
    }
  }
  return got;
}

}  // namespace mphls::vm
