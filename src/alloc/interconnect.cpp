#include "alloc/interconnect.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "ir/deps.h"

namespace mphls {

int MuxSpec::indexOf(const Source& s) const {
  for (std::size_t i = 0; i < sources.size(); ++i)
    if (sources[i] == s) return (int)i;
  return -1;
}

namespace {

void addSource(MuxSpec& mux, const Source& s, int width) {
  mux.width = std::max(mux.width, width);
  if (mux.indexOf(s) < 0) mux.sources.push_back(s);
}

/// Resolve a Fu source with unresolved id (-1): find the producing op in
/// the block and substitute its bound unit index.
Source resolveFuSource(const Function& fn, const FuBinding& binding,
                       BlockId block, Source s) {
  if (!(s.kind == Source::Kind::Fu && s.id < 0)) return s;
  ValueId root((std::uint32_t)s.imm);
  const Op& def = fn.defOf(root);
  const Block& blk = fn.block(block);
  for (std::size_t i = 0; i < blk.ops.size(); ++i) {
    if (blk.ops[i] == def.id) {
      int f = binding.fuOfOp[block.index()][i];
      MPHLS_CHECK(f >= 0, "value chained to unbound op");
      s.id = f;
      s.imm = 0;
      return s;
    }
  }
  MPHLS_CHECK(false, "chained producer not found in block");
  return s;
}

/// Source of a stored/written value. When the producing operation runs in
/// the sink's own step, the sink latches the functional unit's output
/// directly (chaining); when the producer ran in an earlier step, the value
/// lives in its temporary register and the sink reads that instead.
Source sinkSource(const Function& fn, const LifetimeInfo& lt,
                  const RegAssignment& regs, const FuBinding& binding,
                  const Block& blk, const BlockSchedule& bs, int sinkStep,
                  ValueId stored, const OpLatencyModel& latencies) {
  Source s = buildSource(fn, lt, regs, stored);
  ValueId root = rootValue(fn, stored);
  const Op& rdef = fn.defOf(root);
  if (!kindFlowsFree(rdef.kind)) {
    // FU-produced root: find its op in this block and compare the sink's
    // step with the producer's completion step.
    for (std::size_t i = 0; i < blk.ops.size(); ++i) {
      if (blk.ops[i] != rdef.id) continue;
      if (bs.step[i] + latencies.of(rdef.kind) - 1 == sinkStep) {
        int f = binding.fuOfOp[blk.id.index()][i];
        MPHLS_CHECK(f >= 0, "same-step sink producer unbound");
        Source fu = s;
        fu.kind = Source::Kind::Fu;
        fu.id = f;
        fu.imm = 0;
        return fu;
      }
      // Producer ran earlier: the value must be registered.
      MPHLS_CHECK(s.kind == Source::Kind::Reg,
                  "cross-step sink source not registered");
      return s;
    }
    MPHLS_CHECK(false, "sink producer not found in block");
  }
  return resolveFuSource(fn, binding, blk.id, s);
}

}  // namespace

InterconnectResult buildInterconnect(const Function& fn, const Schedule& sched,
                                     const LifetimeInfo& lt,
                                     const RegAssignment& regs,
                                     const FuBinding& binding,
                                     const HwLibrary& lib,
                                     const OpLatencyModel& latencies) {
  InterconnectResult ic;
  ic.fuInput.resize(binding.fus.size());
  ic.regInput.resize((std::size_t)regs.numRegs);
  ic.outPortInput.resize(fn.ports().size());
  ic.opWiring.resize(fn.numBlocks());

  for (const auto& blk : fn.blocks()) {
    const BlockSchedule& bs = sched.of(blk.id);
    const int base = lt.blockBase[blk.id.index()];
    ic.opWiring[blk.id.index()].resize(blk.ops.size());

    for (std::size_t i = 0; i < blk.ops.size(); ++i) {
      const Op& o = fn.op(blk.ops[i]);
      const int gstep = base + bs.step[i];
      int f = binding.fuOfOp[blk.id.index()][i];
      OpWiring& ow = ic.opWiring[blk.id.index()][i];
      ow.fu = f;

      if (f >= 0) {
        // Functional-unit operands.
        const bool swapped = binding.swappedOfOp[blk.id.index()][i];
        std::size_t argBase = 0;
        std::size_t nData = o.args.size();
        int condExtra = -1;
        if (o.kind == OpKind::Select) {
          // Port 2 carries the select condition.
          argBase = 1;
          nData = 2;
          condExtra = 0;
        }
        for (std::size_t p = 0; p < nData && p < 2; ++p) {
          std::size_t arg = argBase + ((swapped && nData == 2) ? 1 - p : p);
          Source s = operandSource(fn, lt, regs, blk.id, i, arg);
          if (s.kind == Source::Kind::Fu && s.id < 0) continue;  // chained
          int w = fn.value(o.args[arg]).width;
          addSource(ic.fuInput[(std::size_t)f][p], s, w);
          ow.fuMuxSel[p] = ic.fuInput[(std::size_t)f][p].indexOf(s);
          ic.transfers.push_back({s, Transfer::DestKind::FuPort, f, (int)p,
                                  gstep, w});
        }
        if (condExtra >= 0) {
          Source s = operandSource(fn, lt, regs, blk.id, i, 0);
          if (!(s.kind == Source::Kind::Fu && s.id < 0)) {
            addSource(ic.fuInput[(std::size_t)f][2], s, 1);
            ow.fuMuxSel[2] = ic.fuInput[(std::size_t)f][2].indexOf(s);
            ic.transfers.push_back(
                {s, Transfer::DestKind::FuPort, f, 2, gstep, 1});
          }
        }
        // Result into its register (when the value is registered); the
        // latch happens at the producer's completion step.
        if (o.result.valid()) {
          int item = lt.itemOfValue[o.result.index()];
          if (item >= 0 && regs.regOfItem[(std::size_t)item] >= 0) {
            int r = regs.regOfItem[(std::size_t)item];
            Source s{Source::Kind::Fu, f, 0, {}, fn.value(o.result).width};
            int w = fn.value(o.result).width;
            int done = gstep + latencies.of(o.kind) - 1;
            addSource(ic.regInput[(std::size_t)r], s, w);
            ow.destReg = r;
            ow.destRegMuxSel = ic.regInput[(std::size_t)r].indexOf(s);
            ic.transfers.push_back(
                {s, Transfer::DestKind::Reg, r, 0, done, w});
          }
        }
        continue;
      }

      // Sinks: register writes and output-port writes.
      if (o.kind == OpKind::StoreVar) {
        int item = lt.itemOfVar[o.var.index()];
        if (item < 0) continue;  // dead store to never-loaded var
        int r = regs.regOfItem[(std::size_t)item];
        Source s = sinkSource(fn, lt, regs, binding, blk, bs, bs.step[i],
                              o.args[0], latencies);
        int w = fn.var(o.var).width;
        addSource(ic.regInput[(std::size_t)r], s, w);
        ow.destReg = r;
        ow.destRegMuxSel = ic.regInput[(std::size_t)r].indexOf(s);
        ic.transfers.push_back({s, Transfer::DestKind::Reg, r, 0, gstep, w});
      } else if (o.kind == OpKind::WritePort) {
        Source s = sinkSource(fn, lt, regs, binding, blk, bs, bs.step[i],
                              o.args[0], latencies);
        int w = fn.port(o.port).width;
        addSource(ic.outPortInput[o.port.index()], s, w);
        ow.destPort = (int)o.port.get();
        ow.destPortMuxSel = ic.outPortInput[o.port.index()].indexOf(s);
        ic.transfers.push_back({s, Transfer::DestKind::OutPort,
                                (int)o.port.get(), 0, gstep, w});
      }
    }
  }

  // Mux-based cost.
  auto addMuxCost = [&](const MuxSpec& m) {
    if (m.legs() > 1) {
      ic.muxArea += lib.muxArea(m.legs(), m.width);
      ic.mux2to1Count += m.legs() - 1;
    }
  };
  for (const auto& fu : ic.fuInput)
    for (const auto& m : fu) addMuxCost(m);
  for (const auto& m : ic.regInput) addMuxCost(m);
  for (const auto& m : ic.outPortInput) addMuxCost(m);

  // Bus-based alternative: greedy coloring of the transfer conflict graph.
  // Conflict: same step, different source (a bus carries one value per
  // step; identical sources may broadcast).
  const std::size_t nt = ic.transfers.size();
  ic.busOfTransfer.assign(nt, -1);
  std::vector<std::vector<std::size_t>> busMembers;
  for (std::size_t t = 0; t < nt; ++t) {
    int chosen = -1;
    for (std::size_t b = 0; b < busMembers.size() && chosen < 0; ++b) {
      bool ok = true;
      for (std::size_t m : busMembers[b]) {
        if (ic.transfers[m].step == ic.transfers[t].step &&
            !(ic.transfers[m].src == ic.transfers[t].src)) {
          ok = false;
          break;
        }
      }
      if (ok) chosen = (int)b;
    }
    if (chosen < 0) {
      chosen = (int)busMembers.size();
      busMembers.emplace_back();
    }
    busMembers[(std::size_t)chosen].push_back(t);
    ic.busOfTransfer[t] = chosen;
  }
  ic.numBuses = (int)busMembers.size();
  for (const auto& members : busMembers) {
    std::vector<Source> srcs;
    int width = 0;
    for (std::size_t m : members) {
      width = std::max(width, ic.transfers[m].width);
      if (std::find(srcs.begin(), srcs.end(), ic.transfers[m].src) ==
          srcs.end())
        srcs.push_back(ic.transfers[m].src);
    }
    ic.busArea += lib.busArea((int)srcs.size(), width);
  }
  return ic;
}

std::string validateInterconnect(const InterconnectResult& ic) {
  std::ostringstream err;
  for (std::size_t i = 0; i < ic.transfers.size(); ++i) {
    const Transfer& t = ic.transfers[i];
    const MuxSpec* mux = nullptr;
    switch (t.destKind) {
      case Transfer::DestKind::FuPort:
        mux = &ic.fuInput[(std::size_t)t.destId][(std::size_t)t.destPort];
        break;
      case Transfer::DestKind::Reg:
        mux = &ic.regInput[(std::size_t)t.destId];
        break;
      case Transfer::DestKind::OutPort:
        // Port ids index outPortInput directly.
        mux = &ic.outPortInput[(std::size_t)t.destId];
        break;
    }
    if (!mux || mux->indexOf(t.src) < 0) {
      err << "transfer " << i << " source " << t.src.str()
          << " missing from destination mux";
      return err.str();
    }
    if (ic.busOfTransfer[i] < 0 || ic.busOfTransfer[i] >= ic.numBuses) {
      err << "transfer " << i << " has no bus";
      return err.str();
    }
    for (std::size_t j = i + 1; j < ic.transfers.size(); ++j) {
      if (ic.busOfTransfer[i] == ic.busOfTransfer[j] &&
          ic.transfers[j].step == t.step &&
          !(ic.transfers[j].src == t.src)) {
        err << "bus " << ic.busOfTransfer[i]
            << " carries two values at step " << t.step;
        return err.str();
      }
    }
  }
  return {};
}

}  // namespace mphls
