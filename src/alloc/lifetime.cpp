#include "alloc/lifetime.h"

#include <algorithm>
#include <map>

#include "ir/analysis.h"
#include "ir/deps.h"

namespace mphls {

int LifetimeInfo::maxOverlap() const {
  // Sweep event counts over global steps.
  std::vector<int> delta(static_cast<std::size_t>(totalSteps) + 2, 0);
  for (const auto& it : items) {
    if (it.live.empty()) continue;
    delta[static_cast<std::size_t>(std::max(it.live.birth, 0))] += 1;
    delta[static_cast<std::size_t>(
        std::min(it.live.death, totalSteps + 1))] -= 1;
  }
  int cur = 0, best = 0;
  for (int d : delta) {
    cur += d;
    best = std::max(best, cur);
  }
  return best;
}

LifetimeInfo computeLifetimes(const Function& fn, const Schedule& sched,
                              const OpLatencyModel& latencies) {
  LifetimeInfo info;
  info.itemOfValue.assign(fn.numValues(), -1);
  info.itemOfVar.assign(fn.vars().size(), -1);
  info.blockBase.assign(fn.numBlocks(), 0);

  // Lay blocks out in reverse post-order.
  auto rpo = reversePostOrder(fn);
  int base = 0;
  for (BlockId b : rpo) {
    info.blockBase[b.index()] = base;
    base += std::max(sched.of(b).numSteps, 0);
  }
  info.totalSteps = base;

  // ---- temporaries -------------------------------------------------------
  for (const auto& blk : fn.blocks()) {
    const BlockSchedule& bs = sched.of(blk.id);
    const int blockBase = info.blockBase[blk.id.index()];

    // Step of each op in this block (by op index).
    // Def step and last-use step per root value.
    std::vector<int> opStep(blk.ops.size());
    for (std::size_t i = 0; i < blk.ops.size(); ++i) opStep[i] = bs.step[i];

    // Map value -> defining op index within the block.
    std::vector<int> defIndexOfValue(fn.numValues(), -1);
    for (std::size_t i = 0; i < blk.ops.size(); ++i) {
      const Op& o = fn.op(blk.ops[i]);
      if (o.result.valid()) defIndexOfValue[o.result.index()] = (int)i;
    }

    struct RootUse {
      int defStep = 0;
      int lastUse = -1;
    };
    std::map<std::uint32_t, RootUse> roots;

    for (std::size_t i = 0; i < blk.ops.size(); ++i) {
      const Op& o = fn.op(blk.ops[i]);
      for (ValueId a : o.args) {
        ValueId r = rootValue(fn, a);
        const Op& rdef = fn.defOf(r);
        // Const and port reads are wiring; variable loads use the
        // variable's own register.
        if (rdef.kind == OpKind::Const || rdef.kind == OpKind::ReadPort ||
            rdef.kind == OpKind::LoadVar)
          continue;
        int defIdx = defIndexOfValue[r.index()];
        MPHLS_CHECK(defIdx >= 0, "root value not defined in block");
        auto& ru = roots[r.get()];
        // The value is latched at the producer's completion step.
        ru.defStep = opStep[static_cast<std::size_t>(defIdx)] +
                     latencies.of(fn.defOf(r).kind) - 1;
        ru.lastUse = std::max(ru.lastUse, opStep[i]);
      }
    }
    if (blk.term.kind == Terminator::Kind::Branch) {
      ValueId r = rootValue(fn, blk.term.cond);
      const Op& rdef = fn.defOf(r);
      if (rdef.kind != OpKind::Const && rdef.kind != OpKind::ReadPort &&
          rdef.kind != OpKind::LoadVar) {
        int defIdx = defIndexOfValue[r.index()];
        MPHLS_CHECK(defIdx >= 0, "branch cond root not in block");
        auto& ru = roots[r.get()];
        ru.defStep = opStep[static_cast<std::size_t>(defIdx)] +
                     latencies.of(rdef.kind) - 1;
        // The condition is consumed in the block's final step.
        ru.lastUse = std::max(ru.lastUse,
                              std::max(bs.numSteps - 1, ru.defStep));
      }
    }

    for (const auto& [vid, ru] : roots) {
      if (ru.lastUse <= ru.defStep) continue;  // same-step: combinational
      StorageItem item;
      item.kind = StorageItem::Kind::Temp;
      item.value = ValueId(vid);
      item.width = fn.value(ValueId(vid)).width;
      item.live = {blockBase + ru.defStep, blockBase + ru.lastUse};
      // Sequential append: GCC 12's -Wrestrict misfires on the temporary
      // chain `"t" + std::to_string(...)` at -O3 (same story as obs/vcd.cpp).
      item.name = "t";
      item.name += std::to_string(vid);
      info.itemOfValue[item.value.index()] = (int)info.items.size();
      info.items.push_back(std::move(item));
    }
  }

  // ---- variables ----------------------------------------------------------
  VarLiveness lv = computeVarLiveness(fn);
  for (const auto& var : fn.vars()) {
    int lo = INT32_MAX, hi = INT32_MIN;
    bool stored = false;
    for (const auto& blk : fn.blocks()) {
      const int bb = info.blockBase[blk.id.index()];
      const BlockSchedule& bs = sched.of(blk.id);
      if (lv.liveIn[blk.id.index()][var.id.index()]) {
        lo = std::min(lo, bb);
        hi = std::max(hi, bb + 1);
      }
      if (lv.liveOut[blk.id.index()][var.id.index()]) {
        lo = std::min(lo, bb);  // conservative: written somewhere within
        hi = std::max(hi, bb + std::max(bs.numSteps, 1));
      }
      for (std::size_t i = 0; i < blk.ops.size(); ++i) {
        const Op& o = fn.op(blk.ops[i]);
        if (o.kind == OpKind::StoreVar && o.var == var.id) {
          stored = true;
          lo = std::min(lo, bb + bs.step[i]);
          hi = std::max(hi, bb + bs.step[i] + 1);
        } else if (o.kind == OpKind::LoadVar && o.var == var.id) {
          lo = std::min(lo, bb + bs.step[i]);
          hi = std::max(hi, bb + bs.step[i] + 1);
        }
        // Loads are transparent wiring: the variable's register is actually
        // read when a *consumer* of a load-rooted value executes, which may
        // be later than the load's own position. Extend the lifetime to
        // every such consumer.
        for (ValueId a : o.args) {
          ValueId r = rootValue(fn, a);
          const Op& rdef = fn.defOf(r);
          if (rdef.kind == OpKind::LoadVar && rdef.var == var.id) {
            lo = std::min(lo, bb + bs.step[i]);
            hi = std::max(hi, bb + bs.step[i] + 1);
          }
        }
      }
      // A branch condition rooted at a load of this variable is consumed
      // in the block's final step.
      if (blk.term.kind == Terminator::Kind::Branch) {
        ValueId r = rootValue(fn, blk.term.cond);
        const Op& rdef = fn.defOf(r);
        if (rdef.kind == OpKind::LoadVar && rdef.var == var.id) {
          lo = std::min(lo, bb);
          hi = std::max(hi, bb + std::max(bs.numSteps, 1));
        }
      }
    }
    if (!stored || lo >= hi) continue;  // never written: no register
    StorageItem item;
    item.kind = StorageItem::Kind::Variable;
    item.var = var.id;
    item.width = var.width;
    item.live = {lo, hi};
    item.name = var.name;
    info.itemOfVar[var.id.index()] = (int)info.items.size();
    info.items.push_back(std::move(item));
  }

  return info;
}

}  // namespace mphls
