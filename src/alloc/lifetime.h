// Storage lifetime analysis (Section 3.2): "In memory allocation, values
// that are generated in one control step and used in another must be
// assigned to storage. Values may be assigned to the same register when
// their lifetimes do not overlap."
//
// Lifetimes are computed over a *global* control-step space: blocks are
// laid out consecutively in reverse post-order, so step `s` of block `b`
// becomes global step base(b) + s. Two storage item families exist:
//   - temporaries: values produced by an operation in one step and consumed
//     in a later step of the same block;
//   - variables: named storage live within and across blocks (loop-carried
//     variables stay live across their whole loop span).
// Free ops (casts, constant shifts) alias their root producer: wiring is
// applied at the consumer, so only the root value occupies a register.
#pragma once

#include <string>
#include <vector>

#include "common/interval.h"
#include "ir/cdfg.h"
#include "sched/schedule.h"

namespace mphls {

struct StorageItem {
  enum class Kind { Temp, Variable };
  Kind kind = Kind::Temp;
  ValueId value;  ///< root value (Temp)
  VarId var;      ///< variable (Variable)
  int width = 0;
  LiveInterval live;  ///< half-open [birth, death) in global steps
  std::string name;
};

struct LifetimeInfo {
  std::vector<StorageItem> items;
  std::vector<int> blockBase;  ///< global base step per block (by BlockId)
  int totalSteps = 0;
  /// Item index for each value id; -1 when the value needs no register
  /// (const/port wiring, same-step consumption, or alias of another item).
  std::vector<int> itemOfValue;
  /// Item index for each variable id; -1 when the variable is never stored.
  std::vector<int> itemOfVar;

  /// Maximum number of simultaneously live items — the lower bound on
  /// register count any allocation can achieve.
  [[nodiscard]] int maxOverlap() const;
};

/// With a multicycle `latencies` model, a temporary's birth is its
/// producer's completion step (issue + cycles - 1), where the value is
/// first latched.
[[nodiscard]] LifetimeInfo computeLifetimes(
    const Function& fn, const Schedule& sched,
    const OpLatencyModel& latencies = OpLatencyModel::unit());

}  // namespace mphls
