// Register allocation (Section 3.2).
//
// Three methods, matching the paper:
//   - LeftEdge: REAL (Kurdahi & Parker) — "REAL is constructive, and
//     selects the earliest value to assign at each step, sharing registers
//     among values whenever possible." The left-edge algorithm is optimal
//     for interval lifetimes: it uses exactly max-overlap registers.
//   - Clique: compatibility-graph clique partitioning (Tseng–Siewiorek).
//   - Naive: one register per storage item (the do-nothing baseline the
//     others are measured against).
#pragma once

#include <vector>

#include "alloc/lifetime.h"

namespace mphls {

enum class RegAllocMethod { LeftEdge, Clique, Naive };

struct RegAssignment {
  /// Register index per storage item (parallel to LifetimeInfo::items).
  std::vector<int> regOfItem;
  int numRegs = 0;
  /// Width of each register: max width of the items sharing it.
  std::vector<int> regWidth;
};

[[nodiscard]] RegAssignment allocateRegisters(
    const LifetimeInfo& lifetimes,
    RegAllocMethod method = RegAllocMethod::LeftEdge);

/// Validate: no two items with overlapping lifetimes share a register and
/// register widths cover their items.
[[nodiscard]] std::string validateRegAssignment(const LifetimeInfo& lifetimes,
                                                const RegAssignment& regs);

}  // namespace mphls
