#include "alloc/fu_alloc.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <sstream>

#include "alloc/clique.h"
#include "ir/deps.h"

namespace mphls {

std::string Source::str() const {
  std::ostringstream oss;
  switch (kind) {
    case Kind::Reg: oss << "r" << id; break;
    case Kind::Port: oss << "p" << id; break;
    case Kind::Const: oss << "#" << imm; break;
    case Kind::Fu: oss << "fu" << id; break;
  }
  for (const WireXform& x : xform) {
    oss << ":" << opName(x.kind);
    if (x.kind == OpKind::ShlConst || x.kind == OpKind::ShrConst ||
        x.kind == OpKind::SarConst)
      oss << x.imm;
    oss << "w" << x.width;
  }
  return oss.str();
}

Source buildSource(const Function& fn, const LifetimeInfo& lifetimes,
                   const RegAssignment& regs, ValueId v) {
  // Collect the free wiring chain consumer-to-root, then reverse it.
  std::vector<WireXform> chain;
  ValueId cur = v;
  const Op* def = &fn.defOf(cur);
  while (kindFlowsFree(def->kind) && !def->args.empty()) {
    chain.push_back({def->kind, def->imm, fn.value(cur).width});
    cur = def->args[0];
    def = &fn.defOf(cur);
  }
  std::reverse(chain.begin(), chain.end());

  Source s;
  s.xform = std::move(chain);
  s.rootWidth = fn.value(cur).width;
  switch (def->kind) {
    case OpKind::Const:
      s.kind = Source::Kind::Const;
      s.imm = def->imm;
      break;
    case OpKind::ReadPort:
      s.kind = Source::Kind::Port;
      s.id = (int)def->port.get();
      break;
    case OpKind::LoadVar: {
      int item = lifetimes.itemOfVar[def->var.index()];
      MPHLS_CHECK(item >= 0, "load of never-stored variable "
                                 << fn.var(def->var).name);
      s.kind = Source::Kind::Reg;
      s.id = regs.regOfItem[(std::size_t)item];
      break;
    }
    default: {
      int item = lifetimes.itemOfValue[cur.index()];
      if (item >= 0 && regs.regOfItem[(std::size_t)item] >= 0) {
        s.kind = Source::Kind::Reg;
        s.id = regs.regOfItem[(std::size_t)item];
      } else {
        // Same-step chained FU output; id resolved by the caller via the
        // binding (the root value id is parked in imm meanwhile).
        s.kind = Source::Kind::Fu;
        s.id = -1;
        s.imm = (std::int64_t)cur.get();
      }
      break;
    }
  }
  return s;
}

std::string_view fuAllocMethodName(FuAllocMethod m) {
  switch (m) {
    case FuAllocMethod::GreedyLocal: return "greedy-local";
    case FuAllocMethod::GreedyGlobal: return "greedy-global";
    case FuAllocMethod::InterconnectBlind: return "interconnect-blind";
    case FuAllocMethod::Clique: return "clique";
  }
  return "?";
}

Source operandSource(const Function& fn, const LifetimeInfo& lifetimes,
                     const RegAssignment& regs, BlockId block,
                     std::size_t opIndex, std::size_t argIndex) {
  const Block& blk = fn.block(block);
  const Op& o = fn.op(blk.ops[opIndex]);
  return buildSource(fn, lifetimes, regs, o.args[argIndex]);
}

namespace {

/// One occupying operation that needs a functional unit.
struct FuOp {
  BlockId block;
  std::size_t index;   ///< index in Block::ops
  OpKind kind;
  int width;
  int globalStep;
  int cycles;          ///< execution span in steps
  Source src[2];
  int numArgs;
  int destReg;  ///< register receiving the result, or -1
};

/// Collect every op that needs a real FU (moves excluded: they need a path,
/// not an operator).
std::vector<FuOp> collectFuOps(const Function& fn, const Schedule& sched,
                               const LifetimeInfo& lt,
                               const RegAssignment& regs,
                               const OpLatencyModel& latencies) {
  std::vector<FuOp> out;
  for (const auto& blk : fn.blocks()) {
    BlockDeps deps(fn, blk);
    const BlockSchedule& bs = sched.of(blk.id);
    for (std::size_t i = 0; i < blk.ops.size(); ++i) {
      FuClass c = scheduleClassOf(deps, i);
      if (c == FuClass::None || c == FuClass::Move) continue;
      const Op& o = fn.op(blk.ops[i]);
      FuOp fo;
      fo.block = blk.id;
      fo.index = i;
      fo.kind = o.kind;
      fo.width = o.result.valid() ? fn.value(o.result).width : 1;
      for (ValueId a : o.args)
        fo.width = std::max(fo.width, fn.value(a).width);
      fo.globalStep = lt.blockBase[blk.id.index()] + bs.step[i];
      fo.cycles = latencies.of(o.kind);
      fo.numArgs = std::min<int>((int)o.args.size(), 2);
      for (int p = 0; p < fo.numArgs; ++p)
        fo.src[p] = operandSource(fn, lt, regs, blk.id, i, (std::size_t)p);
      // Select ops have 3 args; treat (cond, a, b) with cond on port 0 and
      // the data legs muxed on ports 0/1 is not representable with 2 ports,
      // so widen: use src[0]=cond-ignored, src[0]=a, src[1]=b for muxing
      // purposes (the condition is a 1-bit control-like input).
      if (o.kind == OpKind::Select && o.args.size() == 3) {
        fo.src[0] = operandSource(fn, lt, regs, blk.id, i, 1);
        fo.src[1] = operandSource(fn, lt, regs, blk.id, i, 2);
        fo.numArgs = 2;
      }
      int item = o.result.valid() ? lt.itemOfValue[o.result.index()] : -1;
      fo.destReg = item >= 0 ? regs.regOfItem[(std::size_t)item] : -1;
      out.push_back(fo);
    }
  }
  // Control-step order ("from earliest time step to latest", Fig. 6).
  std::stable_sort(out.begin(), out.end(),
                   [](const FuOp& a, const FuOp& b) {
                     return a.globalStep < b.globalStep;
                   });
  return out;
}

/// Mutable allocation state for the greedy methods.
struct GreedyState {
  const HwLibrary& lib;
  std::vector<FuInstance> fus;
  std::vector<std::set<int>> busySteps;          // per fu
  std::vector<std::array<std::set<Source>, 2>> portSources;  // per fu
  std::map<int, std::set<int>> regSourceFus;     // reg -> feeding fus

  explicit GreedyState(const HwLibrary& l) : lib(l) {}

  /// Mux-leg cost of adding one more distinct source to a port.
  [[nodiscard]] double legCost(int width) const {
    return lib.muxArea(2, width) ;  // one extra 2:1 leg
  }

  /// Cost of putting `op` on existing unit `f` (swapped or not); returns
  /// +inf when incompatible or busy.
  [[nodiscard]] double costOn(const FuOp& op, std::size_t f,
                              bool swapped) const {
    const FuInstance& fu = fus[f];
    for (int s = op.globalStep; s < op.globalStep + op.cycles; ++s)
      if (busySteps[f].count(s))
        return std::numeric_limits<double>::infinity();
    std::vector<OpKind> kinds = fu.kinds;
    if (!fu.performs(op.kind)) kinds.push_back(op.kind);
    int width = std::max(fu.width, op.width);
    CompId comp = lib.cheapestForAll(kinds, width);
    if (!comp.valid()) return std::numeric_limits<double>::infinity();

    double cost =
        lib.component(comp).area(width) - lib.component(fu.comp).area(fu.width);
    for (int p = 0; p < op.numArgs; ++p) {
      const Source& s = op.src[(swapped && op.numArgs == 2) ? 1 - p : p];
      if (s.kind == Source::Kind::Fu) continue;  // chained wire, not muxed
      if (!portSources[f][(std::size_t)p].count(s)) cost += legCost(op.width);
    }
    if (op.destReg >= 0) {
      auto it = regSourceFus.find(op.destReg);
      if (it == regSourceFus.end() || !it->second.count((int)f))
        cost += legCost(op.width);
    }
    return cost;
  }

  [[nodiscard]] double costNew(const FuOp& op) const {
    CompId comp = lib.cheapestFor(op.kind, op.width);
    if (!comp.valid()) return std::numeric_limits<double>::infinity();
    // New unit: full component area + one mux-free connection per port.
    return lib.component(comp).area(op.width);
  }

  void place(const FuOp& op, int f, bool swapped) {
    if (f < 0) {
      FuInstance fu;
      fu.kinds = {op.kind};
      fu.width = op.width;
      fu.comp = lib.cheapestFor(op.kind, op.width);
      MPHLS_CHECK(fu.comp.valid(), "no component for " << opName(op.kind));
      fus.push_back(fu);
      busySteps.emplace_back();
      portSources.emplace_back();
      f = (int)fus.size() - 1;
    } else {
      FuInstance& fu = fus[(std::size_t)f];
      if (!fu.performs(op.kind)) fu.kinds.push_back(op.kind);
      fu.width = std::max(fu.width, op.width);
      fu.comp = lib.cheapestForAll(fu.kinds, fu.width);
      MPHLS_CHECK(fu.comp.valid(), "no component covers unit kinds");
    }
    for (int s = op.globalStep; s < op.globalStep + op.cycles; ++s)
      busySteps[(std::size_t)f].insert(s);
    for (int p = 0; p < op.numArgs; ++p) {
      const Source& s = op.src[(swapped && op.numArgs == 2) ? 1 - p : p];
      if (s.kind != Source::Kind::Fu)
        portSources[(std::size_t)f][(std::size_t)p].insert(s);
    }
    if (op.destReg >= 0) regSourceFus[op.destReg].insert(f);
  }
};

FuBinding finishBinding(const Function& fn, const std::vector<FuOp>& ops,
                        const std::vector<int>& fuOf,
                        const std::vector<bool>& swapped,
                        std::vector<FuInstance> fus) {
  FuBinding out;
  out.fus = std::move(fus);
  out.fuOfOp.resize(fn.numBlocks());
  out.swappedOfOp.resize(fn.numBlocks());
  for (const auto& blk : fn.blocks()) {
    out.fuOfOp[blk.id.index()].assign(blk.ops.size(), -1);
    out.swappedOfOp[blk.id.index()].assign(blk.ops.size(), false);
  }
  for (std::size_t k = 0; k < ops.size(); ++k) {
    out.fuOfOp[ops[k].block.index()][ops[k].index] = fuOf[k];
    out.swappedOfOp[ops[k].block.index()][ops[k].index] = swapped[k];
  }
  return out;
}

FuBinding greedy(const Function& fn, const Schedule& sched,
                 const LifetimeInfo& lt, const RegAssignment& regs,
                 const HwLibrary& lib, FuAllocMethod method,
                 const OpLatencyModel& latencies) {
  auto ops = collectFuOps(fn, sched, lt, regs, latencies);
  GreedyState st(lib);
  std::vector<int> fuOf(ops.size(), -1);
  std::vector<bool> swapped(ops.size(), false);

  auto bestPlacement = [&](std::size_t k, double& bestCost, int& bestFu,
                           bool& bestSwap) {
    const FuOp& op = ops[k];
    bestCost = st.costNew(op);
    bestFu = -1;
    bestSwap = false;
    for (std::size_t f = 0; f < st.fus.size(); ++f) {
      for (int sw = 0; sw < (opIsCommutative(op.kind) ? 2 : 1); ++sw) {
        double c = st.costOn(op, f, sw != 0);
        if (c < bestCost) {
          bestCost = c;
          bestFu = (int)f;
          bestSwap = sw != 0;
        }
      }
    }
  };

  if (method == FuAllocMethod::GreedyGlobal) {
    std::vector<bool> done(ops.size(), false);
    for (std::size_t n = 0; n < ops.size(); ++n) {
      double globalBest = std::numeric_limits<double>::infinity();
      std::size_t pick = 0;
      int pickFu = -1;
      bool pickSwap = false;
      for (std::size_t k = 0; k < ops.size(); ++k) {
        if (done[k]) continue;
        double c;
        int f;
        bool sw;
        bestPlacement(k, c, f, sw);
        if (c < globalBest) {
          globalBest = c;
          pick = k;
          pickFu = f;
          pickSwap = sw;
        }
      }
      st.place(ops[pick], pickFu, pickSwap);
      fuOf[pick] = pickFu < 0 ? (int)st.fus.size() - 1 : pickFu;
      swapped[pick] = pickSwap;
      done[pick] = true;
    }
  } else {
    for (std::size_t k = 0; k < ops.size(); ++k) {
      const FuOp& op = ops[k];
      int chosen = -1;
      bool sw = false;
      if (method == FuAllocMethod::InterconnectBlind) {
        // First idle compatible unit, no cost comparison.
        for (std::size_t f = 0; f < st.fus.size(); ++f) {
          if (st.costOn(op, f, false) <
              std::numeric_limits<double>::infinity()) {
            chosen = (int)f;
            break;
          }
        }
      } else {
        double c;
        bestPlacement(k, c, chosen, sw);
      }
      st.place(op, chosen, sw);
      fuOf[k] = chosen < 0 ? (int)st.fus.size() - 1 : chosen;
      swapped[k] = sw;
    }
  }
  return finishBinding(fn, ops, fuOf, swapped, std::move(st.fus));
}

FuBinding byClique(const Function& fn, const Schedule& sched,
                   const LifetimeInfo& lt, const RegAssignment& regs,
                   const HwLibrary& lib, const OpLatencyModel& latencies) {
  auto ops = collectFuOps(fn, sched, lt, regs, latencies);
  CompatGraph g(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    for (std::size_t j = i + 1; j < ops.size(); ++j) {
      // Overlapping execution spans cannot share a unit.
      bool overlap = ops[i].globalStep < ops[j].globalStep + ops[j].cycles &&
                     ops[j].globalStep < ops[i].globalStep + ops[i].cycles;
      if (overlap) continue;
      int w = std::max(ops[i].width, ops[j].width);
      if (lib.cheapestForAll({ops[i].kind, ops[j].kind}, w).valid())
        g.addEdge(i, j);
    }
  }
  CliqueCover cover = cliquePartition(g);

  std::vector<FuInstance> fus(cover.count);
  std::vector<int> fuOf(ops.size(), -1);
  std::vector<bool> swapped(ops.size(), false);
  for (std::size_t k = 0; k < ops.size(); ++k) {
    std::size_t c = cover.group[k];
    FuInstance& fu = fus[c];
    if (!fu.performs(ops[k].kind)) fu.kinds.push_back(ops[k].kind);
    fu.width = std::max(fu.width, ops[k].width);
    fuOf[k] = (int)c;
  }
  for (auto& fu : fus) {
    fu.comp = lib.cheapestForAll(fu.kinds, fu.width);
    MPHLS_CHECK(fu.comp.valid(), "clique merged incompatible kinds");
  }
  return finishBinding(fn, ops, fuOf, swapped, std::move(fus));
}

}  // namespace

FuBinding allocateFus(const Function& fn, const Schedule& sched,
                      const LifetimeInfo& lt, const RegAssignment& regs,
                      const HwLibrary& lib, FuAllocMethod method,
                      const OpLatencyModel& latencies) {
  if (method == FuAllocMethod::Clique)
    return byClique(fn, sched, lt, regs, lib, latencies);
  return greedy(fn, sched, lt, regs, lib, method, latencies);
}

std::string validateFuBinding(const Function& fn, const Schedule& sched,
                              const FuBinding& binding, const HwLibrary& lib,
                              const OpLatencyModel& latencies) {
  std::ostringstream err;
  for (const auto& blk : fn.blocks()) {
    BlockDeps deps(fn, blk);
    const BlockSchedule& bs = sched.of(blk.id);
    std::map<std::pair<int, int>, int> unitBusy;  // (fu, step) -> op count
    for (std::size_t i = 0; i < blk.ops.size(); ++i) {
      FuClass c = scheduleClassOf(deps, i);
      int f = binding.fuOfOp[blk.id.index()][i];
      if (c == FuClass::None || c == FuClass::Move) {
        if (f >= 0) {
          err << "non-FU op bound to a unit in " << blk.name;
          return err.str();
        }
        continue;
      }
      if (f < 0 || f >= binding.numFus()) {
        err << "op " << i << " in " << blk.name << " has no unit";
        return err.str();
      }
      const FuInstance& fu = binding.fus[(std::size_t)f];
      const Op& o = fn.op(blk.ops[i]);
      if (!fu.performs(o.kind)) {
        err << "unit " << f << " does not perform " << opName(o.kind);
        return err.str();
      }
      if (!lib.component(fu.comp).supports(o.kind)) {
        err << "component of unit " << f << " does not support "
            << opName(o.kind);
        return err.str();
      }
      for (int span = 0; span < latencies.of(o.kind); ++span) {
        if (++unitBusy[{f, bs.step[i] + span}] > 1) {
          err << "unit " << f << " double-booked at step "
              << bs.step[i] + span << " of " << blk.name;
          return err.str();
        }
      }
    }
  }
  return {};
}

}  // namespace mphls
