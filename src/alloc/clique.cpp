#include "alloc/clique.h"

#include <algorithm>
#include <numeric>

#include "common/diag.h"

namespace mphls {

std::size_t CompatGraph::edgeCount() const {
  std::size_t e = 0;
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t j = i + 1; j < n_; ++j)
      if (adj_[i][j]) ++e;
  return e;
}

std::vector<std::vector<std::size_t>> CliqueCover::cliques() const {
  std::vector<std::vector<std::size_t>> out(count);
  for (std::size_t i = 0; i < group.size(); ++i) out[group[i]].push_back(i);
  return out;
}

bool coverIsValid(const CompatGraph& g, const CliqueCover& c) {
  if (c.group.size() != g.size()) return false;
  for (std::size_t i = 0; i < g.size(); ++i)
    for (std::size_t j = i + 1; j < g.size(); ++j)
      if (c.group[i] == c.group[j] && !g.compatible(i, j)) return false;
  return true;
}

CliqueCover cliquePartition(const CompatGraph& g) {
  const std::size_t n = g.size();
  // Work on super-nodes: each starts as one node; merging a super-node
  // pair requires pairwise compatibility of all members (kept implicitly:
  // super-nodes stay connected to x only when all members connect to x).
  std::vector<std::vector<std::size_t>> members(n);
  std::vector<std::vector<bool>> adj(n, std::vector<bool>(n));
  std::vector<bool> alive(n, true);
  for (std::size_t i = 0; i < n; ++i) members[i] = {i};
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (i != j) adj[i][j] = g.compatible(i, j);

  for (;;) {
    // Pick the compatible pair with the most common neighbors
    // (Tseng–Siewiorek selection rule).
    std::size_t bestA = n, bestB = n;
    int bestCommon = -1;
    for (std::size_t a = 0; a < n; ++a) {
      if (!alive[a]) continue;
      for (std::size_t b = a + 1; b < n; ++b) {
        if (!alive[b] || !adj[a][b]) continue;
        int common = 0;
        for (std::size_t x = 0; x < n; ++x)
          if (alive[x] && x != a && x != b && adj[a][x] && adj[b][x])
            ++common;
        if (common > bestCommon) {
          bestCommon = common;
          bestA = a;
          bestB = b;
        }
      }
    }
    if (bestA == n) break;  // no compatible pair remains

    // Merge b into a: the merged super-node is adjacent to x only when
    // both were (so its members remain a clique after future merges).
    for (std::size_t x = 0; x < n; ++x) {
      adj[bestA][x] = adj[bestA][x] && adj[bestB][x];
      adj[x][bestA] = adj[bestA][x];
    }
    members[bestA].insert(members[bestA].end(), members[bestB].begin(),
                          members[bestB].end());
    alive[bestB] = false;
  }

  CliqueCover cover;
  cover.group.assign(n, 0);
  for (std::size_t a = 0; a < n; ++a) {
    if (!alive[a]) continue;
    for (std::size_t m : members[a]) cover.group[m] = cover.count;
    ++cover.count;
  }
  MPHLS_CHECK(coverIsValid(g, cover), "greedy clique cover invalid");
  return cover;
}

namespace {

struct ExactSearcher {
  const CompatGraph& g;
  long budget;
  long nodes = 0;
  bool exhausted = false;

  std::vector<std::size_t> assign;       // clique per node (partial)
  std::vector<std::size_t> best;
  std::size_t bestCount;

  explicit ExactSearcher(const CompatGraph& graph, long b, std::size_t ub)
      : g(graph), budget(b), bestCount(ub) {
    assign.assign(g.size(), 0);
    best.assign(g.size(), 0);
  }

  void dfs(std::size_t idx, std::size_t used) {
    if (exhausted || ++nodes > budget) {
      exhausted = true;
      return;
    }
    if (used >= bestCount) return;  // bound
    if (idx == g.size()) {
      bestCount = used;
      best = assign;
      return;
    }
    // Try existing cliques.
    for (std::size_t c = 0; c < used; ++c) {
      bool ok = true;
      for (std::size_t j = 0; j < idx; ++j) {
        if (assign[j] == c && !g.compatible(idx, j)) {
          ok = false;
          break;
        }
      }
      if (ok) {
        assign[idx] = c;
        dfs(idx + 1, used);
      }
    }
    // Open a new clique.
    assign[idx] = used;
    dfs(idx + 1, used + 1);
  }
};

}  // namespace

CliqueCover cliquePartitionExact(const CompatGraph& g, long nodeBudget) {
  CliqueCover greedy = cliquePartition(g);
  if (g.size() == 0) return greedy;

  ExactSearcher sr(g, nodeBudget, greedy.count + 1);
  // Seed with the greedy solution as the incumbent.
  sr.best = greedy.group;
  sr.bestCount = greedy.count;
  sr.dfs(0, 0);

  CliqueCover cover;
  cover.group = sr.best;
  cover.count = sr.bestCount;
  MPHLS_CHECK(coverIsValid(g, cover), "exact clique cover invalid");
  return cover;
}

}  // namespace mphls
