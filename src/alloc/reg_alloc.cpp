#include "alloc/reg_alloc.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "alloc/clique.h"

namespace mphls {

namespace {

RegAssignment leftEdge(const LifetimeInfo& lt) {
  const std::size_t n = lt.items.size();
  RegAssignment out;
  out.regOfItem.assign(n, -1);

  // Sort by birth (the "left edge"), then by death for determinism.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto& la = lt.items[a].live;
    const auto& lb = lt.items[b].live;
    if (la.birth != lb.birth) return la.birth < lb.birth;
    if (la.death != lb.death) return la.death < lb.death;
    return a < b;
  });

  std::vector<int> regFreeAt;  // death of the last interval in each register
  for (std::size_t i : order) {
    const LiveInterval& li = lt.items[i].live;
    if (li.empty()) continue;
    int chosen = -1;
    for (std::size_t r = 0; r < regFreeAt.size(); ++r) {
      if (regFreeAt[r] <= li.birth) {
        chosen = (int)r;
        break;
      }
    }
    if (chosen < 0) {
      chosen = (int)regFreeAt.size();
      regFreeAt.push_back(0);
    }
    regFreeAt[static_cast<std::size_t>(chosen)] = li.death;
    out.regOfItem[i] = chosen;
  }
  out.numRegs = (int)regFreeAt.size();
  return out;
}

RegAssignment byClique(const LifetimeInfo& lt) {
  const std::size_t n = lt.items.size();
  CompatGraph g(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (!lt.items[i].live.overlaps(lt.items[j].live)) g.addEdge(i, j);
  CliqueCover cover = cliquePartition(g);
  RegAssignment out;
  out.regOfItem.assign(n, -1);
  for (std::size_t i = 0; i < n; ++i)
    if (!lt.items[i].live.empty())
      out.regOfItem[i] = (int)cover.group[i];
  // Compact register numbering over used groups.
  std::vector<int> remap(cover.count, -1);
  int next = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (out.regOfItem[i] < 0) continue;
    int& m = remap[static_cast<std::size_t>(out.regOfItem[i])];
    if (m < 0) m = next++;
    out.regOfItem[i] = m;
  }
  out.numRegs = next;
  return out;
}

RegAssignment naive(const LifetimeInfo& lt) {
  RegAssignment out;
  out.regOfItem.assign(lt.items.size(), -1);
  int next = 0;
  for (std::size_t i = 0; i < lt.items.size(); ++i)
    if (!lt.items[i].live.empty()) out.regOfItem[i] = next++;
  out.numRegs = next;
  return out;
}

}  // namespace

RegAssignment allocateRegisters(const LifetimeInfo& lt,
                                RegAllocMethod method) {
  RegAssignment out;
  switch (method) {
    case RegAllocMethod::LeftEdge: out = leftEdge(lt); break;
    case RegAllocMethod::Clique: out = byClique(lt); break;
    case RegAllocMethod::Naive: out = naive(lt); break;
  }
  out.regWidth.assign(static_cast<std::size_t>(out.numRegs), 0);
  for (std::size_t i = 0; i < lt.items.size(); ++i) {
    int r = out.regOfItem[i];
    if (r >= 0)
      out.regWidth[static_cast<std::size_t>(r)] = std::max(
          out.regWidth[static_cast<std::size_t>(r)], lt.items[i].width);
  }
  return out;
}

std::string validateRegAssignment(const LifetimeInfo& lt,
                                  const RegAssignment& regs) {
  std::ostringstream err;
  if (regs.regOfItem.size() != lt.items.size()) return "item count mismatch";
  for (std::size_t i = 0; i < lt.items.size(); ++i) {
    if (lt.items[i].live.empty()) continue;
    if (regs.regOfItem[i] < 0 || regs.regOfItem[i] >= regs.numRegs) {
      err << "item " << i << " has no register";
      return err.str();
    }
    if (regs.regWidth[static_cast<std::size_t>(regs.regOfItem[i])] <
        lt.items[i].width) {
      err << "register too narrow for item " << i;
      return err.str();
    }
    for (std::size_t j = i + 1; j < lt.items.size(); ++j) {
      if (regs.regOfItem[i] == regs.regOfItem[j] &&
          lt.items[i].live.overlaps(lt.items[j].live)) {
        err << "items " << i << " (" << lt.items[i].name << ") and " << j
            << " (" << lt.items[j].name << ") share register "
            << regs.regOfItem[i] << " with overlapping lifetimes";
        return err.str();
      }
    }
  }
  return {};
}

}  // namespace mphls
