// Functional-unit allocation (Section 3.2, Figs. 6 and 7).
//
// Iterative/constructive methods: "select an operation ... make the
// assignment, and then iterate. The rules which determine the next
// operation ... can vary from global rules, which examine many or all
// items before selecting one, to local selection rules, which select the
// items in a fixed order, usually as they occur in the data flow graph
// from inputs to outputs."
//
//   - GreedyLocal (Fig. 6): ops in control-step order; each goes to the
//     compatible idle unit that adds the least interconnect (mux) cost.
//   - InterconnectBlind: Fig. 6's cautionary variant ("if we had assigned
//     a2 to adder1 and a4 to adder1 without checking for interconnection
//     costs, then the final multiplexing would have been more expensive").
//   - GreedyGlobal (EMUCS-like): repeatedly assign the (op, unit) pair with
//     the minimum cost increase over all unassigned ops.
//   - Clique (Fig. 7, Tseng–Siewiorek): compatibility-graph clique cover;
//     "mutually exclusive operations, e.g. operations in different control
//     steps, clearly can share functional units".
#pragma once

#include "alloc/datapath.h"
#include "alloc/lifetime.h"
#include "alloc/reg_alloc.h"
#include "sched/schedule.h"

namespace mphls {

enum class FuAllocMethod { GreedyLocal, GreedyGlobal, InterconnectBlind, Clique };

[[nodiscard]] std::string_view fuAllocMethodName(FuAllocMethod m);

[[nodiscard]] FuBinding allocateFus(
    const Function& fn, const Schedule& sched, const LifetimeInfo& lifetimes,
    const RegAssignment& regs, const HwLibrary& lib, FuAllocMethod method,
    const OpLatencyModel& latencies = OpLatencyModel::unit());

/// The datapath source feeding operand `argIndex` of op `opIndex` in
/// `block` (resolving free-op chains, registers, ports and constants).
[[nodiscard]] Source operandSource(const Function& fn,
                                   const LifetimeInfo& lifetimes,
                                   const RegAssignment& regs, BlockId block,
                                   std::size_t opIndex, std::size_t argIndex);

/// Datapath source of an arbitrary value: its root (register / input port /
/// constant / same-step FU output) plus the free wiring transforms applied
/// between root and consumer. Same-step FU roots come back with id == -1
/// and the root ValueId parked in `imm`; resolve via the FU binding.
[[nodiscard]] Source buildSource(const Function& fn,
                                 const LifetimeInfo& lifetimes,
                                 const RegAssignment& regs, ValueId v);

/// Validate a binding: every slot-occupying non-move op has a unit that
/// supports its kind, and no unit runs two ops in the same control step.
[[nodiscard]] std::string validateFuBinding(
    const Function& fn, const Schedule& sched, const FuBinding& binding,
    const HwLibrary& lib,
    const OpLatencyModel& latencies = OpLatencyModel::unit());

}  // namespace mphls
