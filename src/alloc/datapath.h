// Shared data-path allocation types: operand sources, functional-unit
// instances and the op->FU binding.
#pragma once

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "common/ids.h"
#include "ir/cdfg.h"
#include "lib/library.h"

namespace mphls {

/// One free wiring operation applied between a datapath source and its
/// consumer: a width cast or a constant shift. In hardware this is pure
/// wiring (bit selection / padding), but distinct transforms of the same
/// root are distinct multiplexer legs.
struct WireXform {
  OpKind kind = OpKind::ZExt;
  std::int64_t imm = 0;  ///< constant shift amount
  int width = 0;         ///< result width of this stage

  friend bool operator==(const WireXform& a, const WireXform& b) {
    return a.kind == b.kind && a.imm == b.imm && a.width == b.width;
  }
  friend bool operator<(const WireXform& a, const WireXform& b) {
    return std::tie(a.kind, a.imm, a.width) < std::tie(b.kind, b.imm, b.width);
  }
};

/// Where an operand (or a register/port input) comes from in the datapath.
struct Source {
  enum class Kind { Reg, Port, Const, Fu };
  Kind kind = Kind::Const;
  int id = 0;            ///< register index / port id / fu index
  std::int64_t imm = 0;  ///< constant payload
  /// Wiring applied root-to-consumer, in application order.
  std::vector<WireXform> xform;
  /// Width of the root (before transforms).
  int rootWidth = 0;

  // rootWidth participates in identity: two reads of the same (shared)
  // register at different widths are different wire slices and must be
  // separate multiplexer legs.
  friend bool operator==(const Source& a, const Source& b) {
    return a.kind == b.kind && a.id == b.id && a.imm == b.imm &&
           a.rootWidth == b.rootWidth && a.xform == b.xform;
  }
  friend bool operator<(const Source& a, const Source& b) {
    return std::tie(a.kind, a.id, a.imm, a.rootWidth, a.xform) <
           std::tie(b.kind, b.id, b.imm, b.rootWidth, b.xform);
  }
  [[nodiscard]] std::string str() const;
  /// Width after all transforms (rootWidth when none).
  [[nodiscard]] int finalWidth() const {
    return xform.empty() ? rootWidth : xform.back().width;
  }
};

/// One allocated functional-unit instance.
struct FuInstance {
  std::vector<OpKind> kinds;  ///< operation kinds mapped onto it
  int width = 0;              ///< widest operation it executes
  CompId comp;                ///< bound library component

  [[nodiscard]] bool performs(OpKind k) const {
    for (OpKind x : kinds)
      if (x == k) return true;
    return false;
  }
};

/// Result of functional-unit allocation for a whole function.
struct FuBinding {
  std::vector<FuInstance> fus;
  /// Per block (by BlockId), per op index: FU index or -1 (no FU needed).
  std::vector<std::vector<int>> fuOfOp;
  /// Per block, per op index: operands presented in swapped order (chosen
  /// by the allocator for commutative ops to reduce multiplexing).
  std::vector<std::vector<bool>> swappedOfOp;

  [[nodiscard]] int numFus() const { return (int)fus.size(); }
};

}  // namespace mphls
