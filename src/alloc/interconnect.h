// Interconnect allocation (Section 2 / 3.2): "Communications paths,
// including buses and multiplexers, must be chosen so that the functional
// units and registers are connected as necessary to support the data
// transfers required by the specification and the schedule. The most
// simple type of communication path allocation is based only on
// multiplexers. Buses, which can be seen as distributed multiplexers,
// offer the advantage of requiring less wiring, but they may be slower
// than multiplexers. Depending on the application, a combination of both
// may be the best solution."
//
// Two structures are produced from the same transfer set:
//   - mux-based: one multiplexer per functional-unit input port and per
//     register input, with a leg per distinct source;
//   - bus-based: transfers colored onto shared buses (two transfers may
//     share a bus unless they happen in the same control step with
//     different sources).
#pragma once

#include <array>
#include <vector>

#include "alloc/datapath.h"
#include "alloc/fu_alloc.h"
#include "alloc/lifetime.h"
#include "alloc/reg_alloc.h"
#include "sched/schedule.h"

namespace mphls {

/// One data movement in the datapath at a specific global control step.
struct Transfer {
  Source src;
  enum class DestKind { FuPort, Reg, OutPort } destKind = DestKind::Reg;
  int destId = 0;    ///< fu index / register index / port id
  int destPort = 0;  ///< operand position for FuPort dests
  int step = 0;      ///< global control step
  int width = 0;
};

struct MuxSpec {
  std::vector<Source> sources;  ///< distinct, in first-seen order
  int width = 0;

  [[nodiscard]] int legs() const { return (int)sources.size(); }
  /// Index of `s` in sources, -1 if absent.
  [[nodiscard]] int indexOf(const Source& s) const;
};

/// Per-operation control view of the wiring: which unit executes it and
/// which mux legs route its operands and result. This is exactly the
/// information a controller state must assert (Section 2: "synthesize a
/// controller that will drive the data paths as required by the schedule").
struct OpWiring {
  int fu = -1;                      ///< executing unit (-1: none)
  int fuMuxSel[3] = {-1, -1, -1};   ///< leg index per FU input port
  int destReg = -1;                 ///< register written (result or store)
  int destRegMuxSel = -1;
  int destPort = -1;                ///< output port written
  int destPortMuxSel = -1;
};

struct InterconnectResult {
  /// Mux per functional-unit input port: [fu][port 0..2].
  std::vector<std::array<MuxSpec, 3>> fuInput;
  /// Mux per register input.
  std::vector<MuxSpec> regInput;
  /// Mux per output port (by PortId index; unused entries have 0 legs).
  std::vector<MuxSpec> outPortInput;

  std::vector<Transfer> transfers;

  double muxArea = 0;      ///< total multiplexer area (mux-based style)
  int mux2to1Count = 0;    ///< total 2-to-1 equivalent multiplexers

  /// Bus-based alternative built from the same transfers.
  int numBuses = 0;
  double busArea = 0;
  std::vector<int> busOfTransfer;

  /// Control view: [block][op index] -> wiring.
  std::vector<std::vector<OpWiring>> opWiring;
};

[[nodiscard]] InterconnectResult buildInterconnect(
    const Function& fn, const Schedule& sched, const LifetimeInfo& lifetimes,
    const RegAssignment& regs, const FuBinding& binding, const HwLibrary& lib,
    const OpLatencyModel& latencies = OpLatencyModel::unit());

/// Validate: every transfer's bus assignment is conflict-free and every
/// FU operand/register write is covered by a mux source.
[[nodiscard]] std::string validateInterconnect(const InterconnectResult& ic);

}  // namespace mphls
