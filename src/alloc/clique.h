// Clique partitioning (Section 3.2.2, Fig. 7, after Tseng & Siewiorek):
// "creating graphs in which the elements to be assigned to hardware ...
// are represented by nodes, and there is an arc between two nodes if and
// only if the corresponding elements can share the same hardware. The
// problem then becomes one of finding those sets of nodes in the graph all
// of whose members are connected to one another ... If the objective is to
// minimize the number of hardware units, then we would want to find the
// minimal number of cliques that cover the graph."
//
// Finding maximal cliques is NP-hard, "so in practice, greedy heuristics
// are employed" — the heuristic here merges the edge whose endpoints share
// the most common neighbors (Tseng–Siewiorek); an exact branch-and-bound
// cover is provided for small graphs so the heuristic can be audited.
#pragma once

#include <cstddef>
#include <vector>

namespace mphls {

/// Undirected compatibility graph over n nodes.
class CompatGraph {
 public:
  explicit CompatGraph(std::size_t n) : n_(n), adj_(n, std::vector<bool>(n)) {}

  void addEdge(std::size_t a, std::size_t b) {
    if (a == b) return;
    adj_[a][b] = adj_[b][a] = true;
  }
  [[nodiscard]] bool compatible(std::size_t a, std::size_t b) const {
    return adj_[a][b];
  }
  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] std::size_t edgeCount() const;

 private:
  std::size_t n_;
  std::vector<std::vector<bool>> adj_;
};

/// A clique cover: `group[i]` is the clique index of node i; `count` the
/// number of cliques.
struct CliqueCover {
  std::vector<std::size_t> group;
  std::size_t count = 0;

  [[nodiscard]] std::vector<std::vector<std::size_t>> cliques() const;
};

/// Tseng–Siewiorek greedy clique partitioning.
[[nodiscard]] CliqueCover cliquePartition(const CompatGraph& g);

/// Exact minimum clique cover by branch and bound (practical to ~20 nodes;
/// node budget guards larger inputs, falling back to the heuristic).
[[nodiscard]] CliqueCover cliquePartitionExact(const CompatGraph& g,
                                               long nodeBudget = 1'000'000);

/// Check that every group of `cover` is a clique of `g`.
[[nodiscard]] bool coverIsValid(const CompatGraph& g, const CliqueCover& c);

}  // namespace mphls
