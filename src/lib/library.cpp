#include "lib/library.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/diag.h"

namespace mphls {

FuClass classOf(OpKind k) {
  switch (k) {
    case OpKind::Add:
    case OpKind::Sub:
    case OpKind::Inc:
    case OpKind::Dec:
    case OpKind::Neg:
      return FuClass::Adder;
    case OpKind::And:
    case OpKind::Or:
    case OpKind::Xor:
    case OpKind::Not:
      return FuClass::Logic;
    case OpKind::Mul:
      return FuClass::Multiplier;
    case OpKind::Div:
    case OpKind::UDiv:
    case OpKind::Mod:
    case OpKind::UMod:
      return FuClass::Divider;
    case OpKind::Shl:
    case OpKind::Shr:
    case OpKind::Sar:
      return FuClass::Shifter;
    case OpKind::Eq:
    case OpKind::Ne:
    case OpKind::Lt:
    case OpKind::Le:
    case OpKind::Gt:
    case OpKind::Ge:
    case OpKind::ULt:
    case OpKind::ULe:
    case OpKind::UGt:
    case OpKind::UGe:
      return FuClass::Comparator;
    case OpKind::Select:
      return FuClass::Selector;
    case OpKind::StoreVar:
    case OpKind::WritePort:
      return FuClass::Move;  // only when structurally a stand-alone move
    default:
      return FuClass::None;
  }
}

std::string_view fuClassName(FuClass c) {
  switch (c) {
    case FuClass::None: return "none";
    case FuClass::Adder: return "adder";
    case FuClass::Logic: return "logic";
    case FuClass::Multiplier: return "mult";
    case FuClass::Divider: return "div";
    case FuClass::Shifter: return "shift";
    case FuClass::Comparator: return "cmp";
    case FuClass::Selector: return "sel";
    case FuClass::Move: return "move";
    case FuClass::Alu: return "alu";
  }
  return "?";
}

bool Component::supports(OpKind k) const {
  return std::find(ops.begin(), ops.end(), k) != ops.end();
}

CompId HwLibrary::addComponent(Component c) {
  c.id = CompId(comps_.size());
  comps_.push_back(std::move(c));
  return comps_.back().id;
}

CompId HwLibrary::findByName(const std::string& name) const {
  for (const auto& c : comps_)
    if (c.name == name) return c.id;
  return CompId::invalid();
}

std::vector<CompId> HwLibrary::candidatesFor(OpKind k) const {
  std::vector<CompId> out;
  for (const auto& c : comps_)
    if (c.supports(k)) out.push_back(c.id);
  return out;
}

CompId HwLibrary::cheapestFor(OpKind k, int width) const {
  CompId best;
  double bestArea = std::numeric_limits<double>::max();
  for (const auto& c : comps_) {
    if (c.supports(k) && c.area(width) < bestArea) {
      bestArea = c.area(width);
      best = c.id;
    }
  }
  return best;
}

CompId HwLibrary::cheapestForAll(const std::vector<OpKind>& ks,
                                 int width) const {
  CompId best;
  double bestArea = std::numeric_limits<double>::max();
  for (const auto& c : comps_) {
    bool all = true;
    for (OpKind k : ks)
      if (!c.supports(k)) {
        all = false;
        break;
      }
    if (all && c.area(width) < bestArea) {
      bestArea = c.area(width);
      best = c.id;
    }
  }
  return best;
}

double HwLibrary::muxDelay(int inputs) const {
  if (inputs <= 1) return 0.0;
  // Tree of 2-to-1 muxes: ~0.8 units per level.
  return 0.8 * std::ceil(std::log2(static_cast<double>(inputs)));
}

HwLibrary HwLibrary::defaultLibrary() {
  HwLibrary lib;
  const std::vector<OpKind> adderOps = {OpKind::Add, OpKind::Sub, OpKind::Inc,
                                        OpKind::Dec, OpKind::Neg};
  const std::vector<OpKind> logicOps = {OpKind::And, OpKind::Or, OpKind::Xor,
                                        OpKind::Not};
  const std::vector<OpKind> cmpOps = {
      OpKind::Eq,  OpKind::Ne,  OpKind::Lt,  OpKind::Le,  OpKind::Gt,
      OpKind::Ge,  OpKind::ULt, OpKind::ULe, OpKind::UGt, OpKind::UGe};

  {
    Component c;
    c.name = "adder";
    c.ops = adderOps;
    c.areaBase = 2.0;
    c.areaPerBit = 1.0;
    c.delayBase = 1.0;
    c.delayPerBit = 0.35;  // ripple carry
    lib.addComponent(std::move(c));
  }
  {
    Component c;
    c.name = "logic_unit";
    c.ops = logicOps;
    c.areaBase = 1.0;
    c.areaPerBit = 0.5;
    c.delayBase = 0.8;
    c.delayPerBit = 0.0;
    lib.addComponent(std::move(c));
  }
  {
    Component c;
    c.name = "comparator";
    c.ops = cmpOps;
    c.areaBase = 1.5;
    c.areaPerBit = 0.6;
    c.delayBase = 1.0;
    c.delayPerBit = 0.3;
    lib.addComponent(std::move(c));
  }
  {
    // Multi-function ALU: bigger than any single-function unit it replaces,
    // cheaper than three of them.
    Component c;
    c.name = "alu";
    c.ops = adderOps;
    c.ops.insert(c.ops.end(), logicOps.begin(), logicOps.end());
    c.ops.insert(c.ops.end(), cmpOps.begin(), cmpOps.end());
    c.areaBase = 4.0;
    c.areaPerBit = 1.6;
    c.delayBase = 1.4;
    c.delayPerBit = 0.35;
    lib.addComponent(std::move(c));
  }
  {
    Component c;
    c.name = "multiplier";
    c.ops = {OpKind::Mul};
    c.areaBase = 8.0;
    c.areaPerBit = 9.0;  // ~array multiplier, dominated by width^1 rows here
    c.delayBase = 3.0;
    c.delayPerBit = 0.6;
    lib.addComponent(std::move(c));
  }
  {
    Component c;
    c.name = "divider";
    c.ops = {OpKind::Div, OpKind::UDiv, OpKind::Mod, OpKind::UMod};
    c.areaBase = 10.0;
    c.areaPerBit = 11.0;
    c.delayBase = 4.0;
    c.delayPerBit = 1.2;
    lib.addComponent(std::move(c));
  }
  {
    Component c;
    c.name = "barrel_shifter";
    c.ops = {OpKind::Shl, OpKind::Shr, OpKind::Sar};
    c.areaBase = 2.0;
    c.areaPerBit = 1.2;
    c.delayBase = 1.2;
    c.delayPerBit = 0.05;
    lib.addComponent(std::move(c));
  }
  {
    Component c;
    c.name = "selector";
    c.ops = {OpKind::Select};
    c.areaBase = 0.5;
    c.areaPerBit = 0.3;
    c.delayBase = 0.8;
    c.delayPerBit = 0.0;
    lib.addComponent(std::move(c));
  }
  return lib;
}

}  // namespace mphls
