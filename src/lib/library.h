// Hardware module library (Section 2, "module binding"): parameterized
// RT-level components with normalized area/delay models.
//
// "For the binding of functional units, known components such as adders can
// be taken from a hardware library. Libraries facilitate the synthesis
// process and the size/timing estimation." The numbers here are normalized
// units chosen to preserve the tutorial-era relative costs: a multiplier is
// an order of magnitude larger than an adder, a divider larger and slower
// still, wiring (mux) cost is non-trivial, and constant shifts are free.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "ir/opcode.h"

namespace mphls {

/// Functional-unit classes used by the resource-constrained schedulers.
enum class FuClass {
  None,        ///< op needs no functional unit (free / transparent)
  Adder,       ///< add, sub, inc, dec, neg
  Logic,       ///< and, or, xor, not
  Multiplier,  ///< mul
  Divider,     ///< div, mod
  Shifter,     ///< variable-amount shifts
  Comparator,  ///< compares
  Selector,    ///< select (2-to-1 data mux as an operation)
  Move,        ///< stand-alone register/port transfer (e.g. "0 -> I")
  Alu,         ///< multi-function unit: Adder + Logic + Comparator
};

/// FU class of an operation kind (Move is decided structurally, not here).
[[nodiscard]] FuClass classOf(OpKind k);
[[nodiscard]] std::string_view fuClassName(FuClass c);

/// One library component: a hardware module that can execute a set of
/// operation kinds at a given width.
struct Component {
  CompId id;
  std::string name;
  std::vector<OpKind> ops;   ///< operation kinds this module performs
  double areaBase = 0;       ///< fixed area (normalized units)
  double areaPerBit = 0;     ///< area per operand bit
  double delayBase = 0;      ///< fixed delay (normalized ns)
  double delayPerBit = 0;    ///< delay per operand bit (ripple-style)
  int cycles = 1;            ///< execution latency in control steps

  [[nodiscard]] bool supports(OpKind k) const;
  [[nodiscard]] double area(int width) const {
    return areaBase + areaPerBit * width;
  }
  [[nodiscard]] double delay(int width) const {
    return delayBase + delayPerBit * width;
  }
};

/// The component library plus technology cost parameters for storage and
/// interconnect, used by allocation and estimation.
class HwLibrary {
 public:
  /// The default normalized technology.
  [[nodiscard]] static HwLibrary defaultLibrary();

  CompId addComponent(Component c);
  [[nodiscard]] const Component& component(CompId id) const {
    return comps_.at(id.index());
  }
  [[nodiscard]] const std::vector<Component>& components() const {
    return comps_;
  }
  [[nodiscard]] CompId findByName(const std::string& name) const;

  /// All components able to execute `k`.
  [[nodiscard]] std::vector<CompId> candidatesFor(OpKind k) const;

  /// Cheapest (by area at `width`) component executing `k`; invalid id if
  /// none exists.
  [[nodiscard]] CompId cheapestFor(OpKind k, int width) const;

  /// Smallest component (by area at `width`) covering every kind in `ks`.
  [[nodiscard]] CompId cheapestForAll(const std::vector<OpKind>& ks,
                                      int width) const;

  // --- storage & interconnect cost model --------------------------------
  [[nodiscard]] double registerArea(int width) const {
    return kRegAreaPerBit * width;
  }
  /// Area of an n-input multiplexer ((n-1) 2-to-1 muxes per bit).
  [[nodiscard]] double muxArea(int inputs, int width) const {
    return inputs <= 1 ? 0.0 : kMuxAreaPerBit * (inputs - 1) * width;
  }
  [[nodiscard]] double muxDelay(int inputs) const;
  /// Area of one bus: per-bit wire cost plus a tristate driver per source.
  [[nodiscard]] double busArea(int sources, int width) const {
    return kBusWirePerBit * width + kBusDriverPerBit * sources * width;
  }
  [[nodiscard]] double busDelay(int sources) const {
    return kBusBaseDelay + kBusDelayPerSource * sources;
  }
  [[nodiscard]] double registerSetupDelay() const { return kRegSetup; }

 private:
  std::vector<Component> comps_;

  static constexpr double kRegAreaPerBit = 0.6;
  static constexpr double kMuxAreaPerBit = 0.3;
  static constexpr double kBusWirePerBit = 0.15;
  static constexpr double kBusDriverPerBit = 0.12;
  static constexpr double kBusBaseDelay = 1.5;
  static constexpr double kBusDelayPerSource = 0.25;
  static constexpr double kRegSetup = 0.5;
};

}  // namespace mphls
