#include "ctrl/encode.h"

#include <algorithm>

#include "common/bitutil.h"

namespace mphls {

std::string_view stateEncodingName(StateEncoding e) {
  switch (e) {
    case StateEncoding::Binary: return "binary";
    case StateEncoding::Gray: return "gray";
    case StateEncoding::OneHot: return "one-hot";
  }
  return "?";
}

namespace {

std::uint64_t grayCode(std::uint64_t n) { return n ^ (n >> 1); }

/// Description of one control-signal group so states can set values.
struct SignalLayout {
  // Base column index (within the signal section) and width for:
  std::vector<int> regEn, regSel, regSelW;
  std::vector<int> portEn, portSel, portSelW;
  std::vector<int> fuOp, fuOpW;
  std::vector<std::array<int, 3>> fuMux;
  std::vector<std::array<int, 3>> fuMuxW;
  int total = 0;
};

SignalLayout layoutSignals(const InterconnectResult& ic,
                           const FuBinding& binding,
                           std::vector<std::string>& names) {
  SignalLayout L;
  auto alloc = [&](const std::string& base, int bits) {
    int at = L.total;
    for (int b = 0; b < bits; ++b)
      names.push_back(bits == 1 ? base : base + "[" + std::to_string(b) + "]");
    L.total += bits;
    return at;
  };
  // Sequential appends: GCC 12's -Wrestrict misfires on the temporary chain
  // `"r" + std::to_string(i) + "_en"` at -O3 (same story as obs/vcd.cpp).
  auto sig = [](const char* prefix, std::size_t i, const char* suffix) {
    std::string s = prefix;
    s += std::to_string(i);
    s += suffix;
    return s;
  };

  for (std::size_t r = 0; r < ic.regInput.size(); ++r) {
    L.regEn.push_back(alloc(sig("r", r, "_en"), 1));
    int legs = ic.regInput[r].legs();
    int w = legs > 1 ? bitsForStates((std::uint64_t)legs) : 0;
    L.regSel.push_back(w > 0 ? alloc(sig("r", r, "_sel"), w) : -1);
    L.regSelW.push_back(w);
  }
  for (std::size_t p = 0; p < ic.outPortInput.size(); ++p) {
    if (ic.outPortInput[p].legs() == 0) {
      L.portEn.push_back(-1);
      L.portSel.push_back(-1);
      L.portSelW.push_back(0);
      continue;
    }
    L.portEn.push_back(alloc(sig("p", p, "_en"), 1));
    int legs = ic.outPortInput[p].legs();
    int w = legs > 1 ? bitsForStates((std::uint64_t)legs) : 0;
    L.portSel.push_back(w > 0 ? alloc(sig("p", p, "_sel"), w) : -1);
    L.portSelW.push_back(w);
  }
  for (std::size_t f = 0; f < binding.fus.size(); ++f) {
    int nk = (int)binding.fus[f].kinds.size();
    int w = nk > 1 ? bitsForStates((std::uint64_t)nk) : 0;
    L.fuOp.push_back(w > 0 ? alloc(sig("fu", f, "_op"), w) : -1);
    L.fuOpW.push_back(w);
    std::array<int, 3> mux{-1, -1, -1};
    std::array<int, 3> muxw{0, 0, 0};
    for (int q = 0; q < 3; ++q) {
      int legs = ic.fuInput[f][(std::size_t)q].legs();
      if (legs > 1) {
        muxw[(std::size_t)q] = bitsForStates((std::uint64_t)legs);
        std::string m = sig("fu", f, "_m");
        m += std::to_string(q);
        mux[(std::size_t)q] = alloc(m, muxw[(std::size_t)q]);
      }
    }
    L.fuMux.push_back(mux);
    L.fuMuxW.push_back(muxw);
  }
  return L;
}

/// Signal bit values asserted by one state.
std::vector<bool> signalValues(const CtrlState& st, const SignalLayout& L,
                               const FuBinding& binding) {
  std::vector<bool> v((std::size_t)L.total, false);
  auto setBits = [&](int base, int width, std::uint64_t value) {
    for (int b = 0; b < width; ++b)
      if ((value >> b) & 1) v[(std::size_t)(base + b)] = true;
  };
  for (const RegAction& ra : st.regActions) {
    v[(std::size_t)L.regEn[(std::size_t)ra.reg]] = true;
    if (L.regSelW[(std::size_t)ra.reg] > 0)
      setBits(L.regSel[(std::size_t)ra.reg], L.regSelW[(std::size_t)ra.reg],
              (std::uint64_t)ra.muxSel);
  }
  for (const PortAction& pa : st.portActions) {
    v[(std::size_t)L.portEn[(std::size_t)pa.port]] = true;
    if (L.portSelW[(std::size_t)pa.port] > 0)
      setBits(L.portSel[(std::size_t)pa.port],
              L.portSelW[(std::size_t)pa.port], (std::uint64_t)pa.muxSel);
  }
  for (const FuAction& fa : st.fuActions) {
    const FuInstance& fu = binding.fus[(std::size_t)fa.fu];
    if (L.fuOpW[(std::size_t)fa.fu] > 0) {
      auto it = std::find(fu.kinds.begin(), fu.kinds.end(), fa.kind);
      setBits(L.fuOp[(std::size_t)fa.fu], L.fuOpW[(std::size_t)fa.fu],
              (std::uint64_t)(it - fu.kinds.begin()));
    }
    for (int q = 0; q < 3; ++q) {
      if (fa.muxSel[q] >= 0 && L.fuMuxW[(std::size_t)fa.fu][(std::size_t)q] > 0)
        setBits(L.fuMux[(std::size_t)fa.fu][(std::size_t)q],
                L.fuMuxW[(std::size_t)fa.fu][(std::size_t)q],
                (std::uint64_t)fa.muxSel[q]);
    }
  }
  return v;
}

}  // namespace

EncodedFsm encodeController(const Controller& ctrl,
                            const InterconnectResult& ic,
                            const FuBinding& binding,
                            StateEncoding encoding) {
  EncodedFsm out;
  out.encoding = encoding;

  const std::size_t n = ctrl.numStates();
  out.codeOf.resize(n);
  switch (encoding) {
    case StateEncoding::Binary:
      out.stateBits = bitsForStates(n);
      for (std::size_t s = 0; s < n; ++s) out.codeOf[s] = s;
      break;
    case StateEncoding::Gray:
      out.stateBits = bitsForStates(n);
      for (std::size_t s = 0; s < n; ++s) out.codeOf[s] = grayCode(s);
      break;
    case StateEncoding::OneHot:
      if (n > 64) {
        // One-hot codes live in a 64-bit word; a controller with more
        // states than that cannot be one-hot encoded here (and a >64-input
        // SOP cover would be useless anyway), so fall back to binary.
        out.encoding = StateEncoding::Binary;
        out.stateBits = bitsForStates(n);
        for (std::size_t s = 0; s < n; ++s) out.codeOf[s] = s;
        break;
      }
      out.stateBits = (int)n;
      for (std::size_t s = 0; s < n; ++s) out.codeOf[s] = 1ULL << s;
      break;
  }

  SignalLayout L = layoutSignals(ic, binding, out.signalNames);

  SopCover cover;
  cover.numInputs = out.stateBits + 1;  // + branch condition
  cover.numOutputs = out.stateBits + L.total;
  const int condIndex = out.stateBits;

  auto inputCube = [&](std::size_t state) {
    std::vector<std::uint8_t> in((std::size_t)cover.numInputs, 2);
    // out.encoding, not the requested one: one-hot may have fallen back
    // to binary above.
    if (out.encoding == StateEncoding::OneHot) {
      in[state] = 1;  // single-literal one-hot decode
    } else {
      for (int b = 0; b < out.stateBits; ++b)
        in[(std::size_t)b] = (out.codeOf[state] >> b) & 1 ? 1 : 0;
    }
    return in;
  };
  auto outputBits = [&](StateId next, const std::vector<bool>& sig) {
    std::vector<std::uint8_t> o((std::size_t)cover.numOutputs, 0);
    std::uint64_t code = out.codeOf[next.index()];
    for (int b = 0; b < out.stateBits; ++b)
      if ((code >> b) & 1) o[(std::size_t)b] = 1;
    for (std::size_t k = 0; k < sig.size(); ++k)
      if (sig[k]) o[(std::size_t)out.stateBits + k] = 1;
    return o;
  };

  for (std::size_t s = 0; s < n; ++s) {
    const CtrlState& st = ctrl.states[s];
    std::vector<bool> sig = signalValues(st, L, binding);
    if (st.conditional) {
      Cube c1;
      c1.in = inputCube(s);
      c1.in[(std::size_t)condIndex] = 1;
      c1.out = outputBits(st.nextTaken, sig);
      cover.cubes.push_back(std::move(c1));
      Cube c0;
      c0.in = inputCube(s);
      c0.in[(std::size_t)condIndex] = 0;
      c0.out = outputBits(st.nextNot, sig);
      cover.cubes.push_back(std::move(c0));
    } else {
      StateId next = st.halt ? st.id : st.next;
      Cube c;
      c.in = inputCube(s);
      c.out = outputBits(next, sig);
      cover.cubes.push_back(std::move(c));
    }
  }

  out.logic = cover;
  out.minimizedLogic = minimizeCover(cover);
  return out;
}

}  // namespace mphls
