// Microcoded control (Section 2): "If microcoded control is chosen instead,
// a control step corresponds to a microprogram step and the microprogram
// can be optimized using encoding techniques for the microcontrol word."
//
// Two microword organizations are produced from the same controller:
//   - Horizontal: one bit per enable, one-hot mux-select and function
//     fields — fastest decode, widest words;
//   - Encoded (vertical-ish): log2-packed select/function fields — the
//     paper's "encoding techniques for the microcontrol word".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ctrl/fsm.h"

namespace mphls {

enum class MicrocodeStyle { Horizontal, Encoded };

[[nodiscard]] std::string_view microcodeStyleName(MicrocodeStyle s);

struct MicroField {
  std::string name;
  int width = 0;
  int offset = 0;  ///< bit offset in the word
};

struct Microprogram {
  MicrocodeStyle style = MicrocodeStyle::Encoded;
  std::vector<MicroField> fields;
  int wordWidth = 0;
  int addrBits = 0;
  /// One word per controller state, as field values in field order.
  std::vector<std::vector<std::uint64_t>> words;
  /// Distinct branch-condition sources; the useq_condsel field indexes
  /// this table (a real microsequencer's condition-select mux).
  std::vector<Source> condTable;
  std::uint64_t entryAddress = 0;
  std::uint64_t haltAddress = 0;

  /// Microstore area: words x word width (bit count).
  [[nodiscard]] double storeBits() const {
    return static_cast<double>(words.size()) * wordWidth;
  }
  [[nodiscard]] const MicroField* field(const std::string& name) const;
  [[nodiscard]] std::string dump() const;
};

[[nodiscard]] Microprogram buildMicrocode(const Controller& ctrl,
                                          const InterconnectResult& ic,
                                          const FuBinding& binding,
                                          MicrocodeStyle style);

}  // namespace mphls
