#include "ctrl/fsm.h"

#include <functional>
#include <sstream>

#include "ir/deps.h"

namespace mphls {

StateId Controller::stateAt(BlockId b, int step) const {
  if (b.index() >= stateOf_.size()) return StateId::invalid();
  const auto& v = stateOf_[b.index()];
  if (step < 0 || step >= (int)v.size()) return StateId::invalid();
  return StateId((std::uint32_t)v[(std::size_t)step]);
}

std::string Controller::describe() const {
  std::ostringstream oss;
  for (const CtrlState& s : states) {
    oss << "S" << s.id.get();
    if (s.halt) {
      oss << " [halt]\n";
      continue;
    }
    oss << " (b" << s.block.get() << " step " << s.step << "):";
    for (const auto& fa : s.fuActions) oss << " fu" << fa.fu << "=" << opName(fa.kind);
    for (const auto& ra : s.regActions) oss << " r" << ra.reg << "<=";
    for (const auto& pa : s.portActions) oss << " p" << pa.port << "<=";
    if (s.conditional) {
      oss << " -> " << s.cond.str() << " ? S" << s.nextTaken.get() << " : S"
          << s.nextNot.get();
    } else if (s.next.valid()) {
      oss << " -> S" << s.next.get();
    }
    oss << "\n";
  }
  return oss.str();
}

Controller buildController(const Function& fn, const Schedule& sched,
                           const LifetimeInfo& lt, const RegAssignment& regs,
                           const FuBinding& binding,
                           const InterconnectResult& ic,
                           const OpLatencyModel& latencies) {
  Controller ctrl;
  ctrl.stateOf_.resize(fn.numBlocks());

  // Create states for every (block, step).
  for (const auto& blk : fn.blocks()) {
    const BlockSchedule& bs = sched.of(blk.id);
    auto& map = ctrl.stateOf_[blk.id.index()];
    map.assign((std::size_t)std::max(bs.numSteps, 0), -1);
    for (int s = 0; s < bs.numSteps; ++s) {
      CtrlState st;
      st.id = StateId(ctrl.states.size());
      st.block = blk.id;
      st.step = s;
      map[(std::size_t)s] = (int)st.id.get();
      ctrl.states.push_back(std::move(st));
    }
  }
  // Halt state.
  {
    CtrlState st;
    st.id = StateId(ctrl.states.size());
    st.halt = true;
    st.next = st.id;  // self-loop
    ctrl.haltState = st.id;
    ctrl.states.push_back(std::move(st));
  }

  // Populate datapath actions from the per-op wiring.
  for (const auto& blk : fn.blocks()) {
    const BlockSchedule& bs = sched.of(blk.id);
    for (std::size_t i = 0; i < blk.ops.size(); ++i) {
      const OpWiring& ow = ic.opWiring[blk.id.index()][i];
      if (ow.fu < 0 && ow.destReg < 0 && ow.destPort < 0) continue;
      StateId sid = ctrl.stateAt(blk.id, bs.step[i]);
      MPHLS_CHECK(sid.valid(), "op scheduled outside state range");
      CtrlState& st = ctrl.states[sid.index()];
      const Op& o = fn.op(blk.ops[i]);
      int doneStep = bs.step[i];
      if (ow.fu >= 0) {
        FuAction fa;
        fa.fu = ow.fu;
        fa.kind = o.kind;
        fa.width = o.result.valid() ? fn.value(o.result).width : 1;
        fa.cycles = latencies.of(o.kind);
        for (int p = 0; p < 3; ++p) fa.muxSel[p] = ow.fuMuxSel[p];
        st.fuActions.push_back(fa);
        doneStep = bs.step[i] + fa.cycles - 1;
      }
      // Register/port latches happen at the operation's completion step.
      if (ow.destReg >= 0 || ow.destPort >= 0) {
        StateId did = ctrl.stateAt(blk.id, doneStep);
        MPHLS_CHECK(did.valid(), "completion outside state range");
        CtrlState& dst = ctrl.states[did.index()];
        if (ow.destReg >= 0)
          dst.regActions.push_back({ow.destReg, ow.destRegMuxSel});
        if (ow.destPort >= 0)
          dst.portActions.push_back({ow.destPort, ow.destPortMuxSel});
      }
    }
  }

  // Resolve the first state a control transfer to `b` lands in, skipping
  // blocks that schedule zero steps (e.g. empty join/exit blocks).
  std::function<StateId(BlockId, int)> firstStateOf = [&](BlockId b,
                                                          int depth) {
    MPHLS_CHECK(depth < (int)fn.numBlocks() + 2,
                "empty-block cycle in control flow");
    const BlockSchedule& bs = sched.of(b);
    if (bs.numSteps > 0) return ctrl.stateAt(b, 0);
    const Terminator& t = fn.block(b).term;
    switch (t.kind) {
      case Terminator::Kind::Return:
        return ctrl.haltState;
      case Terminator::Kind::Jump:
        return firstStateOf(t.target, depth + 1);
      case Terminator::Kind::Branch:
        MPHLS_CHECK(false, "branch in empty block");
        return ctrl.haltState;
    }
    return ctrl.haltState;
  };

  // Transitions.
  for (const auto& blk : fn.blocks()) {
    const BlockSchedule& bs = sched.of(blk.id);
    for (int s = 0; s < bs.numSteps; ++s) {
      CtrlState& st = ctrl.states[ctrl.stateAt(blk.id, s).index()];
      if (s + 1 < bs.numSteps) {
        st.next = ctrl.stateAt(blk.id, s + 1);
        continue;
      }
      const Terminator& t = blk.term;
      switch (t.kind) {
        case Terminator::Kind::Return:
          st.next = ctrl.haltState;
          break;
        case Terminator::Kind::Jump:
          st.next = firstStateOf(t.target, 0);
          break;
        case Terminator::Kind::Branch: {
          st.conditional = true;
          Source c = buildSource(fn, lt, regs, t.cond);
          if (c.kind == Source::Kind::Fu && c.id < 0) {
            // Condition computed by an FU in this block: find its unit.
            ValueId root((std::uint32_t)c.imm);
            const Op& def = fn.defOf(root);
            for (std::size_t i = 0; i < blk.ops.size(); ++i) {
              if (blk.ops[i] == def.id) {
                c.id = binding.fuOfOp[blk.id.index()][i];
                c.imm = 0;
                break;
              }
            }
            MPHLS_CHECK(c.id >= 0, "branch condition unit not found");
          }
          st.cond = c;
          st.nextTaken = firstStateOf(t.target, 0);
          st.nextNot = firstStateOf(t.elseTarget, 0);
          break;
        }
      }
    }
  }

  ctrl.initial = firstStateOf(fn.entry(), 0);
  return ctrl;
}

std::string validateController(const Controller& ctrl,
                               const InterconnectResult& ic,
                               const FuBinding& binding) {
  std::ostringstream err;
  auto inRange = [&](StateId s) {
    return s.valid() && s.index() < ctrl.numStates();
  };
  if (!inRange(ctrl.initial)) return "initial state out of range";
  for (const CtrlState& st : ctrl.states) {
    if (st.halt) continue;
    if (st.conditional) {
      if (!inRange(st.nextTaken) || !inRange(st.nextNot)) {
        err << "state " << st.id << " conditional targets out of range";
        return err.str();
      }
      if (st.cond.kind == Source::Kind::Fu &&
          (st.cond.id < 0 || st.cond.id >= binding.numFus())) {
        err << "state " << st.id << " condition unit out of range";
        return err.str();
      }
    } else if (!inRange(st.next)) {
      err << "state " << st.id << " has no successor";
      return err.str();
    }
    for (const FuAction& fa : st.fuActions) {
      if (fa.fu < 0 || fa.fu >= binding.numFus()) {
        err << "state " << st.id << " uses unit out of range";
        return err.str();
      }
      for (int p = 0; p < 3; ++p) {
        if (fa.muxSel[p] >= 0 &&
            fa.muxSel[p] >=
                ic.fuInput[(std::size_t)fa.fu][(std::size_t)p].legs()) {
          err << "state " << st.id << " mux select out of range";
          return err.str();
        }
      }
    }
    for (const RegAction& ra : st.regActions) {
      if (ra.reg < 0 || ra.reg >= (int)ic.regInput.size() ||
          ra.muxSel < 0 ||
          ra.muxSel >= ic.regInput[(std::size_t)ra.reg].legs()) {
        err << "state " << st.id << " register action out of range";
        return err.str();
      }
    }
    for (const PortAction& pa : st.portActions) {
      if (pa.port < 0 || pa.port >= (int)ic.outPortInput.size() ||
          pa.muxSel < 0 ||
          pa.muxSel >= ic.outPortInput[(std::size_t)pa.port].legs()) {
        err << "state " << st.id << " port action out of range";
        return err.str();
      }
    }
  }
  return {};
}

}  // namespace mphls
