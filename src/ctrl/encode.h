// State encoding and hardwired control-logic synthesis (Section 2):
// "the FSM can be synthesized using known methods, including state encoding
// and optimization of the combinational logic."
//
// Three encodings are provided (binary, Gray, one-hot); the control logic
// (next-state function + every datapath control signal) is emitted as a
// two-level cover over {state bits, branch condition} and minimized, so the
// area effect of the encoding choice is measurable (bench E12).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ctrl/fsm.h"
#include "ctrl/sop.h"

namespace mphls {

enum class StateEncoding { Binary, Gray, OneHot };

[[nodiscard]] std::string_view stateEncodingName(StateEncoding e);

struct EncodedFsm {
  StateEncoding encoding = StateEncoding::Binary;
  int stateBits = 0;
  std::vector<std::uint64_t> codeOf;  ///< code per state id

  /// Names of control outputs, in the cover's output column order.
  std::vector<std::string> signalNames;

  /// Inputs: [state bits][cond]; outputs: [next-state bits][signals].
  SopCover logic;          ///< raw (one or two cubes per state)
  SopCover minimizedLogic;

  [[nodiscard]] int numInputs() const { return logic.numInputs; }
  [[nodiscard]] int numSignals() const { return (int)signalNames.size(); }
};

/// Encode the controller and synthesize its control logic. The signal set
/// comprises: per-register load enables and mux-select bits, per-FU
/// function-select and mux-select bits, and per-port write enables and
/// selects — everything the datapath needs each cycle.
[[nodiscard]] EncodedFsm encodeController(const Controller& ctrl,
                                          const InterconnectResult& ic,
                                          const FuBinding& binding,
                                          StateEncoding encoding);

}  // namespace mphls
