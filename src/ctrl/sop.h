// Two-level (sum-of-products) logic representation and minimization, used
// to synthesize the hardwired controller's next-state and output logic
// (Section 2: "the FSM can be synthesized using known methods, including
// state encoding and optimization of the combinational logic").
//
// The minimizer is a cube-merging pass (adjacent cubes differing in one
// input literal with identical outputs combine; covered cubes are
// absorbed) — a light Quine–McCluskey adequate for controller-sized
// functions, with an exhaustive equivalence checker for auditing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mphls {

/// One product term over `n` inputs with `m` outputs. Input literal values:
/// 0, 1, or 2 (don't care). An input vector matches the cube when every
/// non-don't-care literal agrees; then every output with a 1 is asserted.
struct Cube {
  std::vector<std::uint8_t> in;
  std::vector<std::uint8_t> out;

  [[nodiscard]] bool matches(std::uint64_t inputBits) const;
  [[nodiscard]] int literalCount() const;
  /// True when this cube's input space contains `o`'s entirely.
  [[nodiscard]] bool covers(const Cube& o) const;
};

struct SopCover {
  int numInputs = 0;
  int numOutputs = 0;
  std::vector<Cube> cubes;

  /// Evaluate: OR of all matching cubes' outputs.
  [[nodiscard]] std::vector<bool> eval(std::uint64_t inputBits) const;

  [[nodiscard]] int termCount() const { return (int)cubes.size(); }
  [[nodiscard]] int literalCount() const;
  /// Classic PLA area model: (2*inputs + outputs) * terms.
  [[nodiscard]] double plaArea() const {
    return static_cast<double>(2 * numInputs + numOutputs) * termCount();
  }
  [[nodiscard]] std::string str() const;
};

/// Merge/absorb minimization; result computes the same function.
[[nodiscard]] SopCover minimizeCover(const SopCover& cover);

/// Exhaustive functional equivalence (numInputs <= 20).
[[nodiscard]] bool coversEquivalent(const SopCover& a, const SopCover& b);

}  // namespace mphls
