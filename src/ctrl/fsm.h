// Controller construction (Section 2): "Once the schedule and the data
// paths have been chosen, it is necessary to synthesize a controller that
// will drive the data paths as required by the schedule. ... If hardwired
// control is chosen, a control step corresponds to a state in the
// controlling finite state machine."
//
// The controller is built directly from the schedule and the interconnect's
// per-op wiring: each (block, control step) becomes a state asserting the
// register-load enables, mux selects and FU function codes of the
// operations scheduled there; block terminators become (possibly
// conditional) state transitions.
#pragma once

#include <string>
#include <vector>

#include "alloc/interconnect.h"

namespace mphls {

/// Functional-unit activity in one state. For a multicycle operation the
/// action appears in the ISSUE state with `cycles` > 1: the unit latches
/// its operands there and delivers its result `cycles - 1` states later
/// (consumers and the result-register load are placed at completion).
struct FuAction {
  int fu = -1;
  OpKind kind = OpKind::Nop;       ///< function code the unit performs
  int muxSel[3] = {-1, -1, -1};    ///< selected leg per input port
  int width = 0;                   ///< result width of the operation
  int cycles = 1;                  ///< execution time in control steps
};

/// A register load in one state.
struct RegAction {
  int reg = -1;
  int muxSel = -1;
};

/// An output-port write in one state.
struct PortAction {
  int port = -1;
  int muxSel = -1;
};

struct CtrlState {
  StateId id;
  BlockId block;
  int step = 0;

  std::vector<FuAction> fuActions;
  std::vector<RegAction> regActions;
  std::vector<PortAction> portActions;

  /// Transition. When `conditional`, `cond` names the 1-bit datapath value
  /// steering it (a register bit or an FU output in this very state).
  bool conditional = false;
  Source cond;
  StateId nextTaken;   ///< conditional: condition true
  StateId nextNot;     ///< conditional: condition false
  StateId next;        ///< unconditional (invalid + !conditional => halt)
  bool halt = false;
};

class Controller {
 public:
  std::vector<CtrlState> states;
  StateId initial;
  StateId haltState;

  [[nodiscard]] const CtrlState& state(StateId s) const {
    return states.at(s.index());
  }
  [[nodiscard]] std::size_t numStates() const { return states.size(); }
  /// State for (block, step); invalid when the block has no steps.
  [[nodiscard]] StateId stateAt(BlockId b, int step) const;

  [[nodiscard]] std::string describe() const;

 private:
  friend Controller buildController(const Function&, const Schedule&,
                                    const LifetimeInfo&, const RegAssignment&,
                                    const FuBinding&,
                                    const InterconnectResult&,
                                    const OpLatencyModel&);
  std::vector<std::vector<int>> stateOf_;  ///< [block][step] -> state index
};

[[nodiscard]] Controller buildController(
    const Function& fn, const Schedule& sched, const LifetimeInfo& lifetimes,
    const RegAssignment& regs, const FuBinding& binding,
    const InterconnectResult& ic,
    const OpLatencyModel& latencies = OpLatencyModel::unit());

/// Validate: transitions stay in range, conditional states have 1-bit
/// conditions, all referenced fus/regs/muxes exist.
[[nodiscard]] std::string validateController(const Controller& ctrl,
                                             const InterconnectResult& ic,
                                             const FuBinding& binding);

}  // namespace mphls
