#include "ctrl/sop.h"

#include <algorithm>
#include <sstream>

#include "common/diag.h"

namespace mphls {

bool Cube::matches(std::uint64_t inputBits) const {
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] == 2) continue;
    bool bit = (inputBits >> i) & 1;
    if (bit != (in[i] == 1)) return false;
  }
  return true;
}

int Cube::literalCount() const {
  int n = 0;
  for (std::uint8_t v : in)
    if (v != 2) ++n;
  return n;
}

bool Cube::covers(const Cube& o) const {
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] == 2) continue;
    if (o.in[i] != in[i]) return false;
  }
  return true;
}

std::vector<bool> SopCover::eval(std::uint64_t inputBits) const {
  std::vector<bool> out(static_cast<std::size_t>(numOutputs), false);
  for (const Cube& c : cubes) {
    if (!c.matches(inputBits)) continue;
    for (std::size_t o = 0; o < out.size(); ++o)
      if (c.out[o]) out[o] = true;
  }
  return out;
}

int SopCover::literalCount() const {
  int n = 0;
  for (const Cube& c : cubes) n += c.literalCount();
  return n;
}

std::string SopCover::str() const {
  std::ostringstream oss;
  for (const Cube& c : cubes) {
    for (std::uint8_t v : c.in) oss << (v == 2 ? '-' : char('0' + v));
    oss << " | ";
    for (std::uint8_t v : c.out) oss << char('0' + v);
    oss << "\n";
  }
  return oss.str();
}

SopCover minimizeCover(const SopCover& cover) {
  SopCover out = cover;
  bool changed = true;
  while (changed) {
    changed = false;

    // Merge: two cubes with identical outputs differing in exactly one
    // non-don't-care input literal combine into one with that literal
    // freed (the distance-1 Quine–McCluskey step).
    for (std::size_t i = 0; i < out.cubes.size() && !changed; ++i) {
      for (std::size_t j = i + 1; j < out.cubes.size() && !changed; ++j) {
        Cube& a = out.cubes[i];
        Cube& b = out.cubes[j];
        if (a.out != b.out) continue;
        int diffAt = -1;
        bool mergeable = true;
        for (std::size_t k = 0; k < a.in.size(); ++k) {
          if (a.in[k] == b.in[k]) continue;
          if (a.in[k] == 2 || b.in[k] == 2) {
            mergeable = false;  // unequal don't-care structure
            break;
          }
          if (diffAt >= 0) {
            mergeable = false;
            break;
          }
          diffAt = (int)k;
        }
        if (!mergeable || diffAt < 0) continue;
        a.in[static_cast<std::size_t>(diffAt)] = 2;
        out.cubes.erase(out.cubes.begin() + (std::ptrdiff_t)j);
        changed = true;
      }
    }
    if (changed) continue;

    // Absorb: drop any cube whose inputs are covered by another cube with
    // an output superset.
    for (std::size_t i = 0; i < out.cubes.size() && !changed; ++i) {
      for (std::size_t j = 0; j < out.cubes.size() && !changed; ++j) {
        if (i == j) continue;
        const Cube& big = out.cubes[i];
        const Cube& small = out.cubes[j];
        if (!big.covers(small)) continue;
        bool outSuperset = true;
        for (std::size_t o = 0; o < big.out.size(); ++o)
          if (small.out[o] && !big.out[o]) {
            outSuperset = false;
            break;
          }
        if (!outSuperset) continue;
        out.cubes.erase(out.cubes.begin() + (std::ptrdiff_t)j);
        changed = true;
      }
    }
  }
  return out;
}

bool coversEquivalent(const SopCover& a, const SopCover& b) {
  MPHLS_CHECK(a.numInputs == b.numInputs && a.numOutputs == b.numOutputs,
              "cover shape mismatch");
  MPHLS_CHECK(a.numInputs <= 20, "exhaustive check too large");
  const std::uint64_t limit = 1ULL << a.numInputs;
  for (std::uint64_t v = 0; v < limit; ++v)
    if (a.eval(v) != b.eval(v)) return false;
  return true;
}

}  // namespace mphls
