#include "ctrl/microcode.h"

#include <algorithm>
#include <sstream>

#include "common/bitutil.h"

namespace mphls {

std::string_view microcodeStyleName(MicrocodeStyle s) {
  return s == MicrocodeStyle::Horizontal ? "horizontal" : "encoded";
}

const MicroField* Microprogram::field(const std::string& name) const {
  for (const auto& f : fields)
    if (f.name == name) return &f;
  return nullptr;
}

std::string Microprogram::dump() const {
  std::ostringstream oss;
  oss << microcodeStyleName(style) << " microprogram: " << words.size()
      << " words x " << wordWidth << " bits\n";
  for (const auto& f : fields)
    oss << "  field " << f.name << " @" << f.offset << " w" << f.width
        << "\n";
  return oss.str();
}

Microprogram buildMicrocode(const Controller& ctrl,
                            const InterconnectResult& ic,
                            const FuBinding& binding, MicrocodeStyle style) {
  Microprogram mp;
  mp.style = style;
  mp.addrBits = bitsForStates(ctrl.numStates());
  const bool horizontal = style == MicrocodeStyle::Horizontal;

  auto selWidth = [&](int legs) {
    if (legs <= 1) return 0;
    return horizontal ? legs : bitsForStates((std::uint64_t)legs);
  };
  auto addField = [&](const std::string& name, int width) {
    int idx = (int)mp.fields.size();
    mp.fields.push_back({name, width, mp.wordWidth});
    mp.wordWidth += width;
    return idx;
  };

  // Sequential appends: GCC 12's -Wrestrict misfires on the temporary chain
  // `"r" + std::to_string(i) + "_en"` at -O3 (same story as obs/vcd.cpp).
  auto sig = [](const char* prefix, std::size_t i, const char* suffix) {
    std::string s = prefix;
    s += std::to_string(i);
    s += suffix;
    return s;
  };

  // Datapath fields.
  std::vector<int> regEnF, regSelF, portEnF, portSelF, fuOpF;
  std::vector<std::array<int, 3>> fuMuxF;
  for (std::size_t r = 0; r < ic.regInput.size(); ++r) {
    regEnF.push_back(addField(sig("r", r, "_en"), 1));
    int w = selWidth(ic.regInput[r].legs());
    regSelF.push_back(w > 0 ? addField(sig("r", r, "_sel"), w) : -1);
  }
  for (std::size_t p = 0; p < ic.outPortInput.size(); ++p) {
    if (ic.outPortInput[p].legs() == 0) {
      portEnF.push_back(-1);
      portSelF.push_back(-1);
      continue;
    }
    portEnF.push_back(addField(sig("p", p, "_en"), 1));
    int w = selWidth(ic.outPortInput[p].legs());
    portSelF.push_back(w > 0 ? addField(sig("p", p, "_sel"), w) : -1);
  }
  for (std::size_t f = 0; f < binding.fus.size(); ++f) {
    int nk = (int)binding.fus[f].kinds.size();
    int w = nk <= 1 ? 0 : (horizontal ? nk : bitsForStates((std::uint64_t)nk));
    fuOpF.push_back(w > 0 ? addField(sig("fu", f, "_op"), w) : -1);
    std::array<int, 3> mf{-1, -1, -1};
    for (int q = 0; q < 3; ++q) {
      int wq = selWidth(ic.fuInput[f][(std::size_t)q].legs());
      if (wq > 0) {
        std::string m = sig("fu", f, "_m");
        m += std::to_string(q);
        mf[(std::size_t)q] = addField(m, wq);
      }
    }
    fuMuxF.push_back(mf);
  }
  // Condition-select table: one entry per distinct branch condition wire.
  for (const CtrlState& st : ctrl.states) {
    if (!st.conditional) continue;
    if (std::find(mp.condTable.begin(), mp.condTable.end(), st.cond) ==
        mp.condTable.end())
      mp.condTable.push_back(st.cond);
  }

  // Sequencing fields: branch flag, condition select, both target addresses.
  int condF = addField("useq_cond", 1);
  int condSelF =
      mp.condTable.size() > 1
          ? addField("useq_condsel",
                     bitsForStates((std::uint64_t)mp.condTable.size()))
          : -1;
  int addrTF = addField("useq_taken", mp.addrBits);
  int addrFF = addField("useq_fallthrough", mp.addrBits);

  auto encodeSel = [&](int sel, int legs) -> std::uint64_t {
    if (legs <= 1) return 0;
    return horizontal ? (1ULL << sel) : (std::uint64_t)sel;
  };

  for (const CtrlState& st : ctrl.states) {
    std::vector<std::uint64_t> w((std::size_t)mp.fields.size(), 0);
    for (const RegAction& ra : st.regActions) {
      w[(std::size_t)regEnF[(std::size_t)ra.reg]] = 1;
      if (regSelF[(std::size_t)ra.reg] >= 0)
        w[(std::size_t)regSelF[(std::size_t)ra.reg]] =
            encodeSel(ra.muxSel, ic.regInput[(std::size_t)ra.reg].legs());
    }
    for (const PortAction& pa : st.portActions) {
      w[(std::size_t)portEnF[(std::size_t)pa.port]] = 1;
      if (portSelF[(std::size_t)pa.port] >= 0)
        w[(std::size_t)portSelF[(std::size_t)pa.port]] = encodeSel(
            pa.muxSel, ic.outPortInput[(std::size_t)pa.port].legs());
    }
    for (const FuAction& fa : st.fuActions) {
      const FuInstance& fu = binding.fus[(std::size_t)fa.fu];
      if (fuOpF[(std::size_t)fa.fu] >= 0) {
        auto it = std::find(fu.kinds.begin(), fu.kinds.end(), fa.kind);
        w[(std::size_t)fuOpF[(std::size_t)fa.fu]] =
            encodeSel((int)(it - fu.kinds.begin()), (int)fu.kinds.size());
      }
      for (int q = 0; q < 3; ++q)
        if (fa.muxSel[q] >= 0 && fuMuxF[(std::size_t)fa.fu][(std::size_t)q] >= 0)
          w[(std::size_t)fuMuxF[(std::size_t)fa.fu][(std::size_t)q]] =
              encodeSel(fa.muxSel[q],
                        ic.fuInput[(std::size_t)fa.fu][(std::size_t)q].legs());
    }
    if (st.conditional) {
      w[(std::size_t)condF] = 1;
      if (condSelF >= 0) {
        auto it =
            std::find(mp.condTable.begin(), mp.condTable.end(), st.cond);
        w[(std::size_t)condSelF] =
            (std::uint64_t)(it - mp.condTable.begin());
      }
      w[(std::size_t)addrTF] = st.nextTaken.get();
      w[(std::size_t)addrFF] = st.nextNot.get();
    } else {
      StateId next = st.halt ? st.id : st.next;
      w[(std::size_t)addrTF] = next.get();
      w[(std::size_t)addrFF] = next.get();
    }
    mp.words.push_back(std::move(w));
  }
  mp.entryAddress = ctrl.initial.get();
  mp.haltAddress = ctrl.haltState.get();
  return mp;
}

}  // namespace mphls
