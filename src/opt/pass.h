// Transformation pass framework.
//
// Section 2: "it is desirable to do some initial optimization of the
// internal representation. These high-level transformations include such
// compiler-like optimizations as dead code elimination, constant
// propagation, common subexpression elimination, inline expansion of
// procedures and loop unrolling. Local transformations, including those
// that are more specific to hardware, are also used."
//
// Each pass is a small rewriting of a Function that must preserve behavior
// (verified by the equivalence tests in tests/test_opt.cpp). The manager
// runs passes to a fixpoint and re-verifies IR invariants after each run —
// Section 4's observation that "each step in the synthesis process
// preserves the behavior of the initial specification" is checkable.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir/cdfg.h"

namespace mphls {

class Pass {
 public:
  virtual ~Pass() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Apply the pass; returns the number of rewrites performed.
  virtual int run(Function& fn) = 0;
};

// Factories for every pass (defined in their own translation units).
[[nodiscard]] std::unique_ptr<Pass> createDcePass();
[[nodiscard]] std::unique_ptr<Pass> createConstFoldPass();
[[nodiscard]] std::unique_ptr<Pass> createForwardingPass();  // store->load
[[nodiscard]] std::unique_ptr<Pass> createCsePass();
[[nodiscard]] std::unique_ptr<Pass> createStrengthPass();
[[nodiscard]] std::unique_ptr<Pass> createAlgebraicPass();
[[nodiscard]] std::unique_ptr<Pass> createUnrollPass(int maxTrip = 64);
[[nodiscard]] std::unique_ptr<Pass> createTreeHeightPass();
/// Analysis-driven width narrowing (narrow.cpp). Not part of the standard
/// pipelines: enabled by SynthesisOptions::narrow / `mphls --narrow`.
[[nodiscard]] std::unique_ptr<Pass> createNarrowWidthsPass();

/// Per-pass outcome of a manager run.
struct PassStats {
  std::string pass;
  int changes = 0;
  int iterations = 0;
};

class PassManager {
 public:
  /// Called after each pass application with the pass name, the function
  /// before and after, and the reported change count. Installed by the
  /// translation validator (src/sec/) to prove per-pass equivalence; the
  /// pre-pass snapshot is only cloned while an observer is set.
  using PassObserver = std::function<void(
      std::string_view pass, const Function& before, const Function& after,
      int changes)>;

  PassManager& add(std::unique_ptr<Pass> p) {
    passes_.push_back(std::move(p));
    return *this;
  }

  void setObserver(PassObserver obs) { observer_ = std::move(obs); }

  /// Run all passes round-robin until a full round changes nothing (or
  /// `maxRounds` is hit). Verifies the IR after every pass. Returns stats.
  std::vector<PassStats> run(Function& fn, int maxRounds = 8);

  /// The tutorial's standard cleanup pipeline: forwarding, constant
  /// folding, strength reduction, algebraic simplification, CSE, DCE.
  [[nodiscard]] static PassManager standardPipeline();

  /// Standard pipeline plus loop unrolling and tree-height reduction.
  [[nodiscard]] static PassManager aggressivePipeline(int maxTrip = 64);

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
  PassObserver observer_;
};

/// Convenience: run the standard pipeline in place.
void optimize(Function& fn);

/// True when turning a value into free wiring over `v` could let a consumer
/// outlive `v`'s backing register: the free-wiring chain under `v` roots at
/// a LoadVar whose variable is stored again later in `blk`. Any pass that
/// aliases an occupying op's result to wiring over an operand (forwarding,
/// algebraic identities, strength reduction) must refuse the rewrite when
/// this holds — otherwise the use-before-overwrite dependence (deps.cpp)
/// contradicts the store-order chain and the block becomes unschedulable.
[[nodiscard]] bool wiringWouldOutliveStore(const Function& fn,
                                           const Block& blk, ValueId v);

}  // namespace mphls
