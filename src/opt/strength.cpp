// Strength reduction — the hardware-specific local transformations the
// paper applies to the square-root example (Section 2): "The multiplication
// times 0.5 can be replaced by a right shift by one. The addition of 1 to I
// can be replaced by an increment operation."
//
// Rewrites:
//   x * 2^k  -> x << k          x * 1 -> x           x * 0 -> 0
//   x u/ 2^k -> x >> k          x / 1 -> x
//   x u% 2^k -> x & (2^k - 1)
//   x + 1    -> inc x           x - 1 -> dec x
//   x << c, x >> c (variable shift by constant) -> free constant shift
#include "common/bitutil.h"
#include "ir/deps.h"
#include "opt/pass.h"

namespace mphls {

namespace {

class StrengthPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "strength"; }

  int run(Function& fn) override {
    int changes = 0;
    for (const auto& blk : fn.blocks()) {
      for (OpId oid : std::vector<OpId>(blk.ops)) {
        changes += rewrite(fn, blk, oid);
      }
    }
    return changes;
  }

 private:
  /// Constant payload of a value when its def is a Const; -1 otherwise
  /// (note: safe because we only look for small non-negative constants).
  static std::int64_t constOf(const Function& fn, ValueId v) {
    const Op& def = fn.defOf(v);
    if (def.kind != OpKind::Const) return -1;
    std::uint64_t raw = static_cast<std::uint64_t>(def.imm);
    int w = fn.value(v).width;
    raw = truncBits(raw, w);
    return raw > (1ULL << 62) ? -1 : static_cast<std::int64_t>(raw);
  }

  static int rewrite(Function& fn, const Block& blk, OpId oid) {
    Op& o = fn.op(oid);
    // Rewriting an occupying op into free wiring (casts, constant shifts)
    // chains its consumers to the operand's root register; refuse when that
    // register is overwritten later in the block (same guard as forwarding
    // and the algebraic identities).
    auto toUnary = [&](OpKind k, ValueId arg, std::int64_t imm = 0) {
      if (kindFlowsFree(k) && wiringWouldOutliveStore(fn, blk, arg)) return 0;
      o.kind = k;
      o.args = {arg};
      o.imm = imm;
      return 1;
    };
    auto toConstZero = [&]() {
      o.kind = OpKind::Const;
      o.args.clear();
      o.imm = 0;
      return 1;
    };

    switch (o.kind) {
      case OpKind::Mul: {
        for (int side = 0; side < 2; ++side) {
          std::int64_t c = constOf(fn, o.args[static_cast<std::size_t>(side)]);
          ValueId other = o.args[static_cast<std::size_t>(1 - side)];
          if (c == 0) return toConstZero();
          if (c == 1) return toUnary(OpKind::ZExt, other);
          if (c > 1 && isPowerOfTwo(static_cast<std::uint64_t>(c)))
            return toUnary(OpKind::ShlConst, other,
                           log2Floor(static_cast<std::uint64_t>(c)));
        }
        return 0;
      }
      case OpKind::UDiv: {
        std::int64_t c = constOf(fn, o.args[1]);
        if (c == 1) return toUnary(OpKind::ZExt, o.args[0]);
        if (c > 1 && isPowerOfTwo(static_cast<std::uint64_t>(c)))
          return toUnary(OpKind::ShrConst, o.args[0],
                         log2Floor(static_cast<std::uint64_t>(c)));
        return 0;
      }
      case OpKind::UMod: {
        std::int64_t c = constOf(fn, o.args[1]);
        if (c == 1) return toConstZero();
        if (c > 1 && isPowerOfTwo(static_cast<std::uint64_t>(c))) {
          // x % 2^k == x & (2^k - 1): needs a mask constant. Reuse the
          // divisor's block by appending a const before this op is not
          // possible in-place, so rewrite as trunc+zext when the mask is
          // the full width of a narrower type; otherwise leave it.
          int k = log2Floor(static_cast<std::uint64_t>(c));
          if (k < fn.value(o.result).width) {
            // (x & (2^k-1)) == zext(trunc_k(x))
            // Express as a Trunc to k bits then ZExt; both are free.
            // In-place we can only become one op, so use Trunc to k bits
            // only when the result width equals k; else skip.
            if (fn.value(o.result).width == k)
              return toUnary(OpKind::Trunc, o.args[0]);
          }
          return 0;
        }
        return 0;
      }
      case OpKind::Add: {
        for (int side = 0; side < 2; ++side) {
          std::int64_t c = constOf(fn, o.args[static_cast<std::size_t>(side)]);
          ValueId other = o.args[static_cast<std::size_t>(1 - side)];
          if (c == 1 &&
              fn.value(other).width == fn.value(o.result).width)
            return toUnary(OpKind::Inc, other);
        }
        return 0;
      }
      case OpKind::Sub: {
        std::int64_t c = constOf(fn, o.args[1]);
        if (c == 1 && fn.value(o.args[0]).width == fn.value(o.result).width)
          return toUnary(OpKind::Dec, o.args[0]);
        return 0;
      }
      case OpKind::Shl:
      case OpKind::Shr:
      case OpKind::Sar: {
        std::int64_t c = constOf(fn, o.args[1]);
        if (c >= 0 && c < fn.value(o.args[0]).width) {
          OpKind k = o.kind == OpKind::Shl   ? OpKind::ShlConst
                     : o.kind == OpKind::Shr ? OpKind::ShrConst
                                             : OpKind::SarConst;
          return toUnary(k, o.args[0], c);
        }
        return 0;
      }
      default:
        return 0;
    }
  }
};

}  // namespace

std::unique_ptr<Pass> createStrengthPass() {
  return std::make_unique<StrengthPass>();
}

}  // namespace mphls
