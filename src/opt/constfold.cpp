// Constant folding: pure operations whose operands are all constants are
// evaluated at compile time (using the same arithmetic as the interpreter
// and the RTL, so folding can never change behavior).
#include "common/bitutil.h"
#include "ir/interp.h"
#include "opt/pass.h"

namespace mphls {

namespace {

class ConstFoldPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "constfold"; }

  int run(Function& fn) override {
    int changes = 0;
    for (const auto& blk : fn.blocks()) {
      // Iterate over a copy: folding mutates op kinds in place.
      std::vector<OpId> ops = blk.ops;
      for (OpId oid : ops) {
        Op& o = fn.op(oid);
        if (!opIsPure(o.kind) || o.kind == OpKind::Const) continue;
        bool allConst = true;
        std::vector<std::uint64_t> args;
        std::vector<int> widths;
        for (ValueId a : o.args) {
          const Op& def = fn.defOf(a);
          if (def.kind != OpKind::Const) {
            allConst = false;
            break;
          }
          args.push_back(
              truncBits(static_cast<std::uint64_t>(def.imm),
                        fn.value(a).width));
          widths.push_back(fn.value(a).width);
        }
        if (!allConst) continue;
        std::uint64_t folded = Interpreter::evalPure(
            o.kind, fn.value(o.result).width, o.imm, args, widths);
        // Rewrite the op into a constant in place (keeps the result id).
        o.kind = OpKind::Const;
        o.args.clear();
        o.imm = static_cast<std::int64_t>(folded);
        ++changes;
      }
    }
    return changes;
  }
};

}  // namespace

std::unique_ptr<Pass> createConstFoldPass() {
  return std::make_unique<ConstFoldPass>();
}

}  // namespace mphls
