// Algebraic simplification: identity/annihilator rewrites and redundant
// width-cast removal (lowering inserts conservative casts; most collapse).
//
//   x + 0 -> x        x - 0 -> x        x - x -> 0
//   x & 0 -> 0        x & x -> x        x | 0 -> x       x | x -> x
//   x ^ 0 -> x        x ^ x -> 0
//   x << 0 / >> 0 (const) -> x
//   zext/sext/trunc to the same width -> copy
//   cast(cast(x)) -> cast(x) when the outer cast re-extends the same way
//   select(c, x, x) -> x
#include "opt/pass.h"

namespace mphls {

namespace {

class AlgebraicPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "algebraic"; }

  int run(Function& fn) override {
    int changes = 0;
    for (const auto& blk : fn.blocks()) {
      for (OpId oid : std::vector<OpId>(blk.ops)) {
        changes += rewrite(fn, blk, oid);
      }
    }
    return changes;
  }

 private:
  static bool isZero(const Function& fn, ValueId v) {
    const Op& def = fn.defOf(v);
    if (def.kind != OpKind::Const) return false;
    int w = fn.value(v).width;
    std::uint64_t raw = static_cast<std::uint64_t>(def.imm);
    return (w == 64 ? raw : (raw & ((1ULL << w) - 1))) == 0;
  }

  static int rewrite(Function& fn, const Block& blk, OpId oid) {
    Op& o = fn.op(oid);
    const int rw = o.result.valid() ? fn.value(o.result).width : 0;

    // Replace this op with a plain copy of `v` (free width adjustment).
    // Refuse when the alias would root consumers at a register that is
    // overwritten later in the block (same guard as forwarding).
    auto toCopy = [&](ValueId v) {
      if (wiringWouldOutliveStore(fn, blk, v)) return 0;
      if (fn.value(v).width == rw) {
        fn.replaceAllUses(o.result, v);
        fn.removeOp(oid);
      } else {
        o.kind = fn.value(v).width > rw ? OpKind::Trunc : OpKind::ZExt;
        o.args = {v};
        o.imm = 0;
      }
      return 1;
    };
    auto toConstZero = [&]() {
      o.kind = OpKind::Const;
      o.args.clear();
      o.imm = 0;
      return 1;
    };

    switch (o.kind) {
      case OpKind::Add:
        if (isZero(fn, o.args[0])) return toCopy(o.args[1]);
        if (isZero(fn, o.args[1])) return toCopy(o.args[0]);
        return 0;
      case OpKind::Sub:
        if (isZero(fn, o.args[1])) return toCopy(o.args[0]);
        if (o.args[0] == o.args[1]) return toConstZero();
        return 0;
      case OpKind::And:
        if (isZero(fn, o.args[0]) || isZero(fn, o.args[1]))
          return toConstZero();
        if (o.args[0] == o.args[1]) return toCopy(o.args[0]);
        return 0;
      case OpKind::Or:
        if (isZero(fn, o.args[0])) return toCopy(o.args[1]);
        if (isZero(fn, o.args[1])) return toCopy(o.args[0]);
        if (o.args[0] == o.args[1]) return toCopy(o.args[0]);
        return 0;
      case OpKind::Xor:
        if (isZero(fn, o.args[0])) return toCopy(o.args[1]);
        if (isZero(fn, o.args[1])) return toCopy(o.args[0]);
        if (o.args[0] == o.args[1]) return toConstZero();
        return 0;
      case OpKind::ShlConst:
      case OpKind::ShrConst:
      case OpKind::SarConst:
        if (o.imm == 0 && fn.value(o.args[0]).width == rw)
          return toCopy(o.args[0]);
        return 0;
      case OpKind::Trunc:
      case OpKind::ZExt:
      case OpKind::SExt: {
        if (fn.value(o.args[0]).width == rw) return toCopy(o.args[0]);
        // Collapse zext(zext(x)) and sext(sext(x)).
        const Op& inner = fn.defOf(o.args[0]);
        if (inner.kind == o.kind && !inner.args.empty() &&
            o.kind != OpKind::Trunc) {
          o.args[0] = inner.args[0];
          return 1;
        }
        return 0;
      }
      case OpKind::Select:
        if (o.args[1] == o.args[2]) return toCopy(o.args[1]);
        return 0;
      default:
        return 0;
    }
  }
};

}  // namespace

std::unique_ptr<Pass> createAlgebraicPass() {
  return std::make_unique<AlgebraicPass>();
}

}  // namespace mphls
