// Tree-height reduction: rebalances linear chains of a commutative,
// associative operation (add, mul, and, or, xor) into a balanced tree,
// shortening the critical path and exposing parallelism to the scheduler —
// one of the behavioral transformations the paper classes as "high level
// transformations on the behavior" (Section 4).
//
//   ((a + b) + c) + d   (3 steps, 1 adder)
//   =>  (a + b) + (c + d)   (2 steps, 2 adders)
#include <algorithm>
#include <vector>

#include "opt/pass.h"

namespace mphls {

namespace {

bool isAssociative(OpKind k) {
  switch (k) {
    case OpKind::Add:
    case OpKind::Mul:
    case OpKind::And:
    case OpKind::Or:
    case OpKind::Xor:
      return true;
    default:
      return false;
  }
}

class TreeHeightPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "treeheight"; }

  int run(Function& fn) override {
    int changes = 0;
    for (std::size_t bi = 0; bi < fn.numBlocks(); ++bi)
      changes += rewriteBlock(fn, fn.block(BlockId(bi)));
    return changes;
  }

 private:
  static int rewriteBlock(Function& fn, Block& blk) {
    // Count value uses across the whole function (roots must be the sole
    // consumers of their chain's intermediates).
    std::vector<int> uses(fn.numValues(), 0);
    for (const auto& b2 : fn.blocks()) {
      for (OpId oid : b2.ops)
        for (ValueId a : fn.op(oid).args) ++uses[a.index()];
      if (b2.term.kind == Terminator::Kind::Branch)
        ++uses[b2.term.cond.index()];
    }

    int changes = 0;
    // Find chain roots: an associative op whose result is NOT consumed by
    // another op of the same kind (otherwise the consumer is the root).
    for (OpId rootId : std::vector<OpId>(blk.ops)) {
      const Op& root = fn.op(rootId);
      if (root.dead || !isAssociative(root.kind)) continue;

      // Collect the chain's leaves by walking same-kind producers with a
      // single use and equal width.
      const OpKind kind = root.kind;
      const int width = fn.value(root.result).width;
      std::vector<ValueId> leaves;
      std::vector<OpId> chainOps;
      bool abort = false;

      std::vector<ValueId> work(root.args.begin(), root.args.end());
      chainOps.push_back(rootId);
      while (!work.empty() && !abort) {
        ValueId v = work.back();
        work.pop_back();
        const Op& def = fn.defOf(v);
        bool inBlock =
            std::find(blk.ops.begin(), blk.ops.end(), def.id) != blk.ops.end();
        if (inBlock && def.kind == kind && uses[v.index()] == 1 &&
            fn.value(v).width == width) {
          chainOps.push_back(def.id);
          for (ValueId a : def.args) work.push_back(a);
        } else {
          if (fn.value(v).width != width) abort = true;
          leaves.push_back(v);
        }
      }
      if (abort || leaves.size() < 4) continue;  // depth <=2 already balanced
      // Only rebalance genuine linear chains (anything deeper than log2).
      std::size_t nOps = chainOps.size();
      if (nOps + 1 != leaves.size()) continue;  // malformed (shared nodes)

      // Safety: rebalancing moves leaf consumption later in the block. If
      // any store/write sits between the earliest chain op and the root,
      // a load-rooted leaf could end up read after its register is
      // overwritten — skip such chains.
      {
        std::size_t loPos = blk.ops.size(), hiPos = 0;
        for (std::size_t pos = 0; pos < blk.ops.size(); ++pos) {
          for (OpId cid : chainOps) {
            if (blk.ops[pos] == cid) {
              loPos = std::min(loPos, pos);
              hiPos = std::max(hiPos, pos);
            }
          }
        }
        bool hasSink = false;
        for (std::size_t pos = loPos; pos <= hiPos && pos < blk.ops.size();
             ++pos)
          if (fn.op(blk.ops[pos]).isSink()) hasSink = true;
        if (hasSink) continue;
      }

      // Build a balanced tree over the leaves, reusing the chain's op slots
      // is complex; instead emit fresh ops before the root and retarget it.
      // Ops must appear before the root in block order and after every
      // leaf's definition; inserting just before the root satisfies both.
      auto rootPos = std::find(blk.ops.begin(), blk.ops.end(), rootId);
      MPHLS_CHECK(rootPos != blk.ops.end(), "root not in block");
      std::size_t insertAt = static_cast<std::size_t>(rootPos - blk.ops.begin());

      // Pair up leaves level by level.
      std::vector<ValueId> level = leaves;
      std::vector<OpId> fresh;
      while (level.size() > 2) {
        std::vector<ValueId> next;
        for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
          OpId nid = fn.makeOp(blk.id, kind, {level[i], level[i + 1]}, width);
          fresh.push_back(nid);
          next.push_back(fn.op(nid).result);
        }
        if (level.size() % 2) next.push_back(level.back());
        level = std::move(next);
      }
      // makeOp appended to the block; move the fresh ops before the root.
      for (std::size_t k = 0; k < fresh.size(); ++k) {
        auto it = std::find(blk.ops.begin(), blk.ops.end(), fresh[k]);
        blk.ops.erase(it);
        blk.ops.insert(blk.ops.begin() +
                           static_cast<std::ptrdiff_t>(insertAt + k),
                       fresh[k]);
      }
      // Retarget the root to combine the final two values.
      Op& rootOp = fn.op(rootId);
      MPHLS_CHECK(level.size() == 2, "balanced tree must end with 2 inputs");
      rootOp.args = {level[0], level[1]};
      // The old intermediates become dead; DCE sweeps them.
      ++changes;
      break;  // block op list changed; conservative one rewrite per visit
    }
    return changes;
  }
};

}  // namespace

std::unique_ptr<Pass> createTreeHeightPass() {
  return std::make_unique<TreeHeightPass>();
}

}  // namespace mphls
