#include "opt/pass.h"

#include "ir/deps.h"
#include "ir/verify.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mphls {

bool wiringWouldOutliveStore(const Function& fn, const Block& blk,
                             ValueId v) {
  const Op& rdef = fn.defOf(rootValue(fn, v));
  if (rdef.kind != OpKind::LoadVar) return false;
  bool afterLoad = false;
  for (OpId oid : blk.ops) {
    if (oid == rdef.id) {
      afterLoad = true;
      continue;
    }
    const Op& o = fn.op(oid);
    if (afterLoad && o.kind == OpKind::StoreVar && o.var == rdef.var)
      return true;
  }
  return false;
}

std::vector<PassStats> PassManager::run(Function& fn, int maxRounds) {
  obs::TraceSpan pipelineSpan("opt.pipeline", fn.name());
  std::vector<PassStats> stats(passes_.size());
  std::vector<double> seconds(passes_.size(), 0.0);
  for (std::size_t i = 0; i < passes_.size(); ++i)
    stats[i].pass = passes_[i]->name();

  for (int round = 0; round < maxRounds; ++round) {
    int total = 0;
    for (std::size_t i = 0; i < passes_.size(); ++i) {
      Function before("");
      if (observer_) before = fn.clone();
      int c;
      {
        obs::TraceSpan span("pass." + stats[i].pass, &seconds[i]);
        c = passes_[i]->run(fn);
      }
      verifyOrThrow(fn);
      if (observer_) observer_(stats[i].pass, before, fn, c);
      stats[i].changes += c;
      if (c > 0) ++stats[i].iterations;
      total += c;
    }
    if (total == 0) break;
  }
  fn.compact();
  verifyOrThrow(fn);

  auto& mr = obs::MetricsRegistry::global();
  for (std::size_t i = 0; i < passes_.size(); ++i) {
    mr.counter("pass." + stats[i].pass + ".changes")
        .add((std::uint64_t)stats[i].changes);
    mr.histogram("pass." + stats[i].pass + ".seconds").observe(seconds[i]);
  }
  return stats;
}

PassManager PassManager::standardPipeline() {
  PassManager pm;
  pm.add(createForwardingPass())
      .add(createConstFoldPass())
      .add(createStrengthPass())
      .add(createAlgebraicPass())
      .add(createCsePass())
      .add(createDcePass());
  return pm;
}

PassManager PassManager::aggressivePipeline(int maxTrip) {
  PassManager pm;
  pm.add(createUnrollPass(maxTrip))
      .add(createForwardingPass())
      .add(createConstFoldPass())
      .add(createStrengthPass())
      .add(createAlgebraicPass())
      .add(createCsePass())
      .add(createTreeHeightPass())
      .add(createDcePass());
  return pm;
}

void optimize(Function& fn) {
  auto pm = PassManager::standardPipeline();
  pm.run(fn);
}

}  // namespace mphls
