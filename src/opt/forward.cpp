// Store-to-load forwarding and local constant propagation.
//
// Within a block, a load that follows a store to the same variable can use
// the stored value directly ("the data-flow graph can also be used to
// remove the dependence on the way internal variables are used in the
// specification", Section 2) — this both shortens dependence chains and
// lets later passes (const folding, DCE) fire.
#include <unordered_map>

#include "ir/deps.h"
#include "opt/pass.h"

namespace mphls {

namespace {

class ForwardingPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "forward"; }

  int run(Function& fn) override {
    int changes = 0;
    for (auto& blk : fn.blocks()) {
      // Last in-block stored value per variable (+ position of the store).
      std::unordered_map<std::uint32_t, std::pair<ValueId, std::size_t>>
          lastStore;
      for (std::size_t pos = 0; pos < blk.ops.size(); ++pos) {
        OpId oid = blk.ops[pos];
        Op& o = fn.op(oid);
        if (o.kind == OpKind::StoreVar) {
          lastStore[o.var.get()] = {o.args[0], pos};
        } else if (o.kind == OpKind::LoadVar) {
          auto it = lastStore.find(o.var.get());
          if (it == lastStore.end()) continue;
          ValueId v = it->second.first;
          // Widths match by construction (stores resize to the var width),
          // but guard anyway: forwarding must not change the value.
          if (fn.value(v).width != fn.value(o.result).width) continue;
          // Safety: if v is rooted at a load of variable w and w is stored
          // again later in the block, the forwarded uses would read w's
          // register after the overwrite — keep the explicit copy instead.
          if (wiringWouldOutliveStore(fn, blk, v)) continue;
          fn.replaceAllUses(o.result, v);
          ++changes;
          // The dead load is swept by DCE.
        }
      }
    }
    return changes;
  }
};

}  // namespace

std::unique_ptr<Pass> createForwardingPass() {
  return std::make_unique<ForwardingPass>();
}

}  // namespace mphls
