// Dead-code elimination: removes pure operations whose results are unused
// and stores to variables that are never loaded anywhere in the design.
#include <unordered_set>
#include <vector>

#include "opt/pass.h"

namespace mphls {

namespace {

class DcePass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "dce"; }

  int run(Function& fn) override {
    int changes = 0;
    for (;;) {
      int round = sweep(fn);
      changes += round;
      if (round == 0) break;
    }
    return changes;
  }

 private:
  static int sweep(Function& fn) {
    // Count uses of every value (op args + branch conditions).
    std::vector<int> uses(fn.numValues(), 0);
    std::unordered_set<std::uint32_t> loadedVars;
    for (const auto& blk : fn.blocks()) {
      for (OpId oid : blk.ops) {
        const Op& o = fn.op(oid);
        for (ValueId a : o.args) ++uses[a.index()];
        if (o.kind == OpKind::LoadVar) loadedVars.insert(o.var.get());
      }
      if (blk.term.kind == Terminator::Kind::Branch)
        ++uses[blk.term.cond.index()];
    }

    std::vector<OpId> dead;
    for (const auto& blk : fn.blocks()) {
      for (OpId oid : blk.ops) {
        const Op& o = fn.op(oid);
        if (o.result.valid() && uses[o.result.index()] == 0 &&
            opIsPure(o.kind)) {
          dead.push_back(oid);
        } else if ((o.kind == OpKind::LoadVar || o.kind == OpKind::ReadPort) &&
                   uses[o.result.index()] == 0) {
          // Loads/reads have no side effects either; only their ordering
          // role matters, and unused ones constrain nothing we must keep.
          dead.push_back(oid);
        } else if (o.kind == OpKind::StoreVar &&
                   !loadedVars.count(o.var.get())) {
          dead.push_back(oid);
        } else if (o.kind == OpKind::Nop) {
          dead.push_back(oid);
        }
      }
    }
    for (OpId oid : dead) fn.removeOp(oid);
    return static_cast<int>(dead.size());
  }
};

}  // namespace

std::unique_ptr<Pass> createDcePass() { return std::make_unique<DcePass>(); }

}  // namespace mphls
