// Loop unrolling (Section 2): "Loop unrolling can also be done in this case
// since the number of iterations is fixed and small."
//
// Handles single-block do-until loops (header == latch). The trip count is
// discovered by abstract interpretation: variables with constant values at
// loop entry are simulated through the loop body; when the exit condition
// is decidable every iteration and the loop exits within `maxTrip`
// iterations, the body is replicated trip-count times with the back edge
// replaced by straight-line control flow.
#include <map>
#include <optional>
#include <unordered_map>

#include "ir/analysis.h"
#include "ir/interp.h"
#include "opt/pass.h"

namespace mphls {

namespace {

using VarState = std::map<std::uint32_t, std::optional<std::uint64_t>>;

/// Simulate one execution of `blk` over the known-variable state. Returns
/// the branch condition value if decidable.
std::optional<bool> simulateBlock(const Function& fn, const Block& blk,
                                  VarState& vars) {
  std::unordered_map<std::uint32_t, std::optional<std::uint64_t>> vals;
  for (OpId oid : blk.ops) {
    const Op& o = fn.op(oid);
    switch (o.kind) {
      case OpKind::Const:
        vals[o.result.get()] = Interpreter::evalPure(
            OpKind::Const, fn.value(o.result).width, o.imm, {}, {});
        break;
      case OpKind::LoadVar: {
        auto it = vars.find(o.var.get());
        vals[o.result.get()] =
            it == vars.end() ? std::nullopt : it->second;
        break;
      }
      case OpKind::ReadPort:
        vals[o.result.get()] = std::nullopt;
        break;
      case OpKind::StoreVar: {
        auto it = vals.find(o.args[0].get());
        vars[o.var.get()] =
            it == vals.end() ? std::nullopt : it->second;
        break;
      }
      case OpKind::WritePort:
      case OpKind::Nop:
        break;
      default: {
        std::vector<std::uint64_t> args;
        std::vector<int> widths;
        bool known = true;
        for (ValueId a : o.args) {
          auto it = vals.find(a.get());
          if (it == vals.end() || !it->second) {
            known = false;
            break;
          }
          args.push_back(*it->second);
          widths.push_back(fn.value(a).width);
        }
        vals[o.result.get()] =
            known ? std::optional<std::uint64_t>(Interpreter::evalPure(
                        o.kind, fn.value(o.result).width, o.imm, args, widths))
                  : std::nullopt;
        break;
      }
    }
  }
  if (blk.term.kind != Terminator::Kind::Branch) return std::nullopt;
  auto it = vals.find(blk.term.cond.get());
  if (it == vals.end() || !it->second) return std::nullopt;
  return *it->second != 0;
}

/// Constant values of variables at loop entry: every non-loop predecessor
/// block is symbolically executed (from an all-unknown state) and the
/// resulting constants are intersected across predecessors.
VarState entryState(const Function& fn, BlockId header) {
  VarState state;
  bool first = true;
  for (const auto& blk : fn.blocks()) {
    bool isPred = false;
    const Terminator& t = blk.term;
    if (t.kind == Terminator::Kind::Jump && t.target == header) isPred = true;
    if (t.kind == Terminator::Kind::Branch &&
        (t.target == header || t.elseTarget == header))
      isPred = true;
    if (blk.id == header) isPred = false;  // the back edge itself
    if (!isPred) continue;

    VarState predState;
    (void)simulateBlock(fn, blk, predState);
    if (first) {
      state = std::move(predState);
      first = false;
    } else {
      // Intersect: keep only agreeing constants.
      for (auto& [var, val] : state) {
        auto it = predState.find(var);
        if (it == predState.end() || it->second != val) val = std::nullopt;
      }
      for (auto& [var, val] : predState)
        if (!state.count(var)) state[var] = std::nullopt;
    }
  }
  return state;
}

class UnrollPass final : public Pass {
 public:
  explicit UnrollPass(int maxTrip) : maxTrip_(maxTrip) {}
  [[nodiscard]] std::string_view name() const override { return "unroll"; }

  int run(Function& fn) override {
    int changes = 0;
    // One loop per run; the pass manager re-runs to a fixpoint.
    for (const LoopInfo& loop : findLoops(fn)) {
      if (loop.blocks.size() != 1 || loop.header != loop.latch) continue;
      const Block& body = fn.block(loop.header);
      if (body.term.kind != Terminator::Kind::Branch) continue;

      // Trip count by simulation.
      VarState vars = entryState(fn, loop.header);
      long trip = -1;
      VarState sim = vars;
      for (int iter = 1; iter <= maxTrip_; ++iter) {
        auto cond = simulateBlock(fn, body, sim);
        if (!cond) break;
        BlockId next = *cond ? body.term.target : body.term.elseTarget;
        if (next != loop.header) {
          trip = iter;
          break;
        }
      }
      if (trip <= 1) continue;  // unknown, too long, or nothing to unroll

      unroll(fn, loop.header, trip);
      ++changes;
      break;  // ids changed; rediscover loops next round
    }
    return changes;
  }

 private:
  int maxTrip_;

  static void unroll(Function& fn, BlockId header, long trip) {
    const Terminator origTerm = fn.block(header).term;
    // Exit target is whichever branch arm leaves the loop.
    BlockId exit = origTerm.target == header ? origTerm.elseTarget
                                             : origTerm.target;

    // Create trip-1 copies; the original block is iteration 1.
    std::vector<OpId> templateOps = fn.block(header).ops;
    BlockId prev = header;
    for (long k = 2; k <= trip; ++k) {
      BlockId copy = fn.addBlock(fn.block(header).name + ".it" +
                                 std::to_string(k));
      std::unordered_map<std::uint32_t, ValueId> valMap;
      for (OpId oid : templateOps) {
        const Op o = fn.op(oid);  // copy: makeOp may reallocate ops_
        std::vector<ValueId> args;
        for (ValueId a : o.args) args.push_back(valMap.at(a.get()));
        int width = o.result.valid() ? fn.value(o.result).width : 0;
        OpId nid = fn.makeOp(copy, o.kind, std::move(args), width, o.imm,
                             o.var, o.port, o.loc);
        if (o.result.valid()) valMap[o.result.get()] = fn.op(nid).result;
      }
      fn.setJump(prev, copy);
      prev = copy;
    }
    fn.setJump(prev, exit);
  }
};

}  // namespace

std::unique_ptr<Pass> createUnrollPass(int maxTrip) {
  return std::make_unique<UnrollPass>(maxTrip);
}

}  // namespace mphls
