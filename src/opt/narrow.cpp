// Analysis-driven width narrowing: shrink every value and variable to the
// bitwidth the dataflow engine (analysis/dataflow.h) proves sufficient.
//
// Soundness rests on the facts being sound over-approximations of the raw
// patterns: when a fact shows every pattern of a W-bit value fits W' < W
// bits, truncating the producing operation to W' is the identity on every
// execution, so nothing downstream can observe the change. Two caveats make
// the rule slightly conservative:
//   - consumers that sign-extend the operand (signed div/mod/compares,
//     arithmetic shifts, SExt) need the sign bit clear at the new width,
//     so such values keep one slack bit;
//   - ReadPort results keep the port width (the interface is fixed and the
//     interpreter hands port patterns through untruncated).
// Every narrowed bit propagates through allocation: functional-unit widths
// are the max over bound op widths, register widths follow the stored
// value/variable widths, and mux leg costs scale with operand width — which
// is precisely why the estimator reports smaller designs (see
// tests/test_analysis.cpp NarrowShrinksBuiltinDesigns).
#include "opt/pass.h"

#include "analysis/dataflow.h"

namespace mphls {

namespace {

class NarrowWidthsPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "narrow-widths";
  }

  int run(Function& fn) override {
    const AnalysisResult res = analyzeFunction(fn);

    // Values consumed with sign extension somewhere keep a slack bit.
    std::vector<bool> signUse(fn.numValues(), false);
    for (const Block& blk : fn.blocks()) {
      for (OpId oid : blk.ops) {
        const Op& o = fn.op(oid);
        switch (o.kind) {
          case OpKind::Div:
          case OpKind::Mod:
          case OpKind::Lt:
          case OpKind::Le:
          case OpKind::Gt:
          case OpKind::Ge:
            signUse[o.args[0].index()] = true;
            signUse[o.args[1].index()] = true;
            break;
          case OpKind::Sar:
          case OpKind::SarConst:
          case OpKind::SExt:
            signUse[o.args[0].index()] = true;
            break;
          default:
            break;
        }
      }
    }

    int changes = 0;
    for (const Value& v : fn.values()) {
      const AbsVal& f = res.valueFacts[v.id.index()];
      if (f.isBottom) continue;  // unreachable or detached producer
      if (fn.defOf(v.id).kind == OpKind::ReadPort) continue;
      const int need = f.requiredUnsignedBits() +
                       (signUse[v.id.index()] ? 1 : 0);
      if (need < v.width) {
        fn.value(v.id).width = need;
        ++changes;
      }
    }
    for (const Variable& vr : fn.vars()) {
      const AbsVal& f = res.varFacts[vr.id.index()];
      if (f.isBottom) continue;  // variable of an unreachable region
      const int need = f.requiredUnsignedBits();
      if (need < vr.width) {
        fn.var(vr.id).width = need;
        ++changes;
      }
    }
    return changes;
  }
};

}  // namespace

std::unique_ptr<Pass> createNarrowWidthsPass() {
  return std::make_unique<NarrowWidthsPass>();
}

}  // namespace mphls
