// Common-subexpression elimination (local): within a block, pure ops with
// identical opcode, immediate and operands reuse the first computation.
// Commutative operands are canonicalized so a*b and b*a unify. Repeated
// loads of a variable with no intervening store also merge.
#include <map>
#include <tuple>
#include <vector>

#include "opt/pass.h"

namespace mphls {

namespace {

class CsePass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "cse"; }

  int run(Function& fn) override {
    int changes = 0;
    for (auto& blk : fn.blocks()) {
      using Key = std::tuple<OpKind, std::int64_t, std::vector<std::uint32_t>,
                             int>;
      std::map<Key, ValueId> seen;
      // Loads: (var, generation) so stores invalidate.
      std::map<std::uint32_t, int> varGen;
      std::map<std::pair<std::uint32_t, int>, ValueId> loadSeen;

      // Input-port reads are stable within an execution: dedup per block.
      std::map<std::uint32_t, ValueId> readSeen;

      std::vector<OpId> toRemove;
      for (OpId oid : blk.ops) {
        const Op& o = fn.op(oid);
        if (o.kind == OpKind::StoreVar) {
          ++varGen[o.var.get()];
          continue;
        }
        if (o.kind == OpKind::ReadPort) {
          auto [it, inserted] = readSeen.emplace(o.port.get(), o.result);
          if (!inserted) {
            fn.replaceAllUses(o.result, it->second);
            toRemove.push_back(oid);
            ++changes;
          }
          continue;
        }
        if (o.kind == OpKind::LoadVar) {
          auto key = std::make_pair(o.var.get(), varGen[o.var.get()]);
          auto [it, inserted] = loadSeen.emplace(key, o.result);
          if (!inserted) {
            fn.replaceAllUses(o.result, it->second);
            toRemove.push_back(oid);
            ++changes;
          }
          continue;
        }
        if (!opIsPure(o.kind)) continue;

        std::vector<std::uint32_t> args;
        for (ValueId a : o.args) args.push_back(a.get());
        if (opIsCommutative(o.kind) && args.size() == 2 && args[0] > args[1])
          std::swap(args[0], args[1]);
        Key key{o.kind, o.imm, std::move(args), fn.value(o.result).width};
        auto [it, inserted] = seen.emplace(std::move(key), o.result);
        if (!inserted) {
          fn.replaceAllUses(o.result, it->second);
          toRemove.push_back(oid);
          ++changes;
        }
      }
      for (OpId oid : toRemove) fn.removeOp(oid);
    }
    return changes;
  }
};

}  // namespace

std::unique_ptr<Pass> createCsePass() { return std::make_unique<CsePass>(); }

}  // namespace mphls
