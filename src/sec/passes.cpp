#include "sec/passes.h"

#include <algorithm>
#include <set>
#include <tuple>

#include "analysis/dataflow.h"
#include "common/bitutil.h"
#include "common/diag.h"
#include "ir/analysis.h"
#include "obs/trace.h"
#include "sec/prove.h"
#include "sec/symexec.h"

namespace mphls::sec {

namespace {

bool sameCfgShape(const Function& a, const Function& b) {
  if (a.numBlocks() != b.numBlocks()) return false;
  if (a.entry().index() != b.entry().index()) return false;
  if (a.vars().size() != b.vars().size()) return false;
  if (a.ports().size() != b.ports().size()) return false;
  for (std::size_t i = 0; i < a.numBlocks(); ++i) {
    const Terminator& ta = a.blocks()[i].term;
    const Terminator& tb = b.blocks()[i].term;
    if (ta.kind != tb.kind) return false;
    switch (ta.kind) {
      case Terminator::Kind::Return:
        break;
      case Terminator::Kind::Jump:
        if (ta.target.index() != tb.target.index()) return false;
        break;
      case Terminator::Kind::Branch:
        if (ta.target.index() != tb.target.index() ||
            ta.elseTarget.index() != tb.elseTarget.index())
          return false;
        break;
    }
  }
  return true;
}

/// Encode an abstract-value fact about `n` (whose width == f.width) as
/// 1-bit assumption nodes.
void appendFactAssumptions(ExprContext& ctx, const AbsVal& f, int n,
                           std::vector<int>& out) {
  if (f.isBottom || f.isTop()) return;
  int w = f.width;
  MPHLS_CHECK(ctx.node(n).width == w, "fact width mismatch");
  if (f.ulo != 0)
    out.push_back(
        ctx.mkOp(OpKind::UGe, 1, 0, {n, ctx.mkConst(f.ulo, w)}));
  if (f.uhi != maskBits(w))
    out.push_back(
        ctx.mkOp(OpKind::ULe, 1, 0, {n, ctx.mkConst(f.uhi, w)}));
  std::int64_t smin = w == 64 ? INT64_MIN : -(std::int64_t(1) << (w - 1));
  std::int64_t smax =
      w == 64 ? INT64_MAX : (std::int64_t(1) << (w - 1)) - 1;
  if (f.slo != smin)
    out.push_back(ctx.mkOp(
        OpKind::Ge, 1, 0, {n, ctx.mkConst((std::uint64_t)f.slo, w)}));
  if (f.shi != smax)
    out.push_back(ctx.mkOp(
        OpKind::Le, 1, 0, {n, ctx.mkConst((std::uint64_t)f.shi, w)}));
  std::uint64_t z = f.zeros & maskBits(w);
  if (z != 0)
    out.push_back(ctx.mkOp(
        OpKind::Eq, 1, 0,
        {ctx.mkOp(OpKind::And, w, 0, {n, ctx.mkConst(z, w)}),
         ctx.mkConst(0, w)}));
  if (f.ones != 0)
    out.push_back(ctx.mkOp(
        OpKind::Eq, 1, 0,
        {ctx.mkOp(OpKind::And, w, 0, {n, ctx.mkConst(f.ones, w)}),
         ctx.mkConst(f.ones, w)}));
}

/// 1-bit node asserting that `n` (width wide) has no bits at/above `keep`.
int fitAssumption(ExprContext& ctx, int n, int keep) {
  int wide = ctx.node(n).width;
  int roundTrip = ctx.resize(ctx.resize(n, keep), wide);
  return ctx.mkOp(OpKind::Eq, 1, 0, {n, roundTrip});
}

/// True when `after` is `before` with some value/variable widths reduced
/// and everything else — blocks, ops, operands, immediates, terminators,
/// ports — byte-identical. This is exactly the footprint of a pure width-
/// narrowing pass, and it unlocks a far cheaper validation strategy than a
/// general two-sided miter (see proveNarrowing).
bool widthOnlyChange(const Function& a, const Function& b) {
  if (a.numBlocks() != b.numBlocks()) return false;
  if (a.entry().index() != b.entry().index()) return false;
  if (a.vars().size() != b.vars().size()) return false;
  if (a.ports().size() != b.ports().size()) return false;
  if (a.numValues() != b.numValues()) return false;
  for (std::size_t i = 0; i < a.ports().size(); ++i) {
    const Port& pa = a.ports()[i];
    const Port& pb = b.ports()[i];
    if (pa.width != pb.width || pa.isInput != pb.isInput) return false;
  }
  for (std::size_t i = 0; i < a.values().size(); ++i)
    if (b.values()[i].width > a.values()[i].width) return false;
  for (std::size_t i = 0; i < a.vars().size(); ++i)
    if (b.vars()[i].width > a.vars()[i].width) return false;
  for (std::size_t i = 0; i < a.numBlocks(); ++i) {
    const Block& ba = a.blocks()[i];
    const Block& bb = b.blocks()[i];
    if (ba.ops.size() != bb.ops.size()) return false;
    const Terminator& ta = ba.term;
    const Terminator& tb = bb.term;
    if (ta.kind != tb.kind) return false;
    if (ta.kind != Terminator::Kind::Return &&
        ta.target.index() != tb.target.index())
      return false;
    if (ta.kind == Terminator::Kind::Branch &&
        (ta.elseTarget.index() != tb.elseTarget.index() ||
         ta.cond.index() != tb.cond.index()))
      return false;
    for (std::size_t j = 0; j < ba.ops.size(); ++j) {
      const Op& oa = a.op(ba.ops[j]);
      const Op& ob = b.op(bb.ops[j]);
      if (oa.kind != ob.kind || oa.imm != ob.imm) return false;
      if (oa.result.valid() != ob.result.valid()) return false;
      if (oa.result.valid() && oa.result.index() != ob.result.index())
        return false;
      if (oa.var.valid() != ob.var.valid()) return false;
      if (oa.var.valid() && oa.var.index() != ob.var.index()) return false;
      if (oa.port.valid() != ob.port.valid()) return false;
      if (oa.port.valid() && oa.port.index() != ob.port.index())
        return false;
      if (oa.args.size() != ob.args.size()) return false;
      for (std::size_t k = 0; k < oa.args.size(); ++k)
        if (oa.args[k].index() != ob.args[k].index()) return false;
    }
  }
  return true;
}

/// Operand positions evalPure consumes via s() — sign-extended from the
/// operand's own width. Everything else reads the raw zero-extended
/// pattern.
bool argIsSigned(OpKind k, std::size_t i) {
  switch (k) {
    case OpKind::Div:
    case OpKind::Mod:
    case OpKind::Lt:
    case OpKind::Le:
    case OpKind::Gt:
    case OpKind::Ge:
      return i == 0 || i == 1;
    case OpKind::Sar:
    case OpKind::SarConst:
    case OpKind::SExt:
      return i == 0;
    default:
      return false;
  }
}

/// Validate a width-only pass (narrow-widths) without ever building a
/// wide-vs-narrow miter. Cross-width equivalence of a multiplier or
/// divider is intractable for bit-level SAT, so instead of symbolically
/// executing both sides we execute only the *wide* function and discharge
/// per-use-site fit obligations:
///
///   - an operand evalPure reads via u() (raw pattern) must zext-roundtrip
///     through its narrowed width — truncation loses nothing;
///   - an operand evalPure reads via s() (signed div/mod/compares,
///     arithmetic shifts, SExt) must sext-roundtrip — the sign bit at the
///     narrowed width equals the wide sign;
///   - a load from a narrowed variable whose result is wider than the new
///     variable width must fit the variable's narrowed width.
///
/// Resize-semantics consumers (Trunc/ZExt results, stores, port writes)
/// only need the fit up to the bits they can observe, so narrower
/// observation windows skip the obligation. Given every fit holds, a
/// per-op-kind induction over evalPure shows each narrow value is the
/// truncation of its wide counterpart and every observable (port write,
/// stored variable, branch bit) is preserved — that induction is the
/// meta-theorem this validator trusts, in the same way every obligation
/// trusts evalPure as the semantic ground truth.
///
/// The obligations themselves are single-sided (wide expressions only) and
/// are discharged under the dataflow facts of the wide function — this is
/// translation validation *modulo the analysis*, as documented in
/// PassTvOptions::assumeFacts.
bool proveNarrowing(const Function& before, const Function& after,
                    const std::string& label, CheckReport& rep,
                    const PassTvOptions& opts) {
  bool clean = true;
  AnalysisResult facts = analyzeFunction(before);

  for (std::size_t bi = 0; bi < before.numBlocks(); ++bi) {
    const Block& blk = before.blocks()[bi];
    std::string where = "pass " + label + " block " + blk.name;
    if (!facts.blockReachable[bi]) {
      rep.note("sec.tv.unreachable", where,
               "block proved unreachable by analysis; skipping");
      continue;
    }

    ExprContext ctx;
    std::vector<int> portIn(before.ports().size(), -1);
    for (const Port& p : before.ports())
      if (p.isInput) portIn[p.id.index()] = ctx.mkVar(p.name, p.width);

    SymState entry;
    entry.portIn = portIn;
    entry.var.resize(before.vars().size());
    std::vector<int> assumptions;
    for (const Variable& v : before.vars()) {
      int sym = ctx.mkVar(v.name, v.width);
      entry.var[v.id.index()] = sym;
      appendFactAssumptions(ctx, facts.varFacts[v.id.index()], sym,
                            assumptions);
    }

    SymBlockOut beh = evalBlock(ctx, before, blk.id, entry);
    if (!beh.ok) {
      rep.warning("sec.pass.unsupported", where, beh.why);
      continue;
    }
    for (const Value& val : before.values()) {
      int n = beh.valNode[val.id.index()];
      if (n < 0) continue;
      appendFactAssumptions(ctx, facts.fact(val.id), n, assumptions);
    }

    // One obligation per distinct (node, narrowed width, signedness).
    std::set<std::tuple<int, int, bool>> done;
    auto discharge = [&](int n, int keep, bool sgn, const std::string& what) {
      if (!done.insert({n, keep, sgn}).second) return;
      int wide = ctx.node(n).width;
      int rhs = sgn ? ctx.mkOp(OpKind::SExt, wide, 0, {ctx.resize(n, keep)})
                    : ctx.resize(ctx.resize(n, keep), wide);
      if (!dischargeEqual(ctx, n, rhs, assumptions, opts.conflictBudget,
                          "sec.tv.narrow-overflow", where, what, rep))
        clean = false;
    };

    for (OpId oid : blk.ops) {
      const Op& o = before.op(oid);
      if (o.kind == OpKind::LoadVar) {
        int wVn = after.vars()[o.var.index()].width;
        int wRn = after.values()[o.result.index()].width;
        if (wVn < wRn)
          discharge(beh.valNode[o.result.index()], wVn, false,
                    "variable '" + before.vars()[o.var.index()].name +
                        "' fits its narrowed " + std::to_string(wVn) +
                        " bits at a " + std::to_string(wRn) + "-bit load");
        continue;
      }
      for (std::size_t i = 0; i < o.args.size(); ++i) {
        std::size_t vi = o.args[i].index();
        int wA = after.values()[vi].width;
        int wB = before.values()[vi].width;
        if (wA >= wB) continue;
        bool sgn = argIsSigned(o.kind, i);
        // Consumers with resize semantics only observe `obs` low bits.
        int obs = 64;
        if (o.kind == OpKind::Trunc || o.kind == OpKind::ZExt)
          obs = after.values()[o.result.index()].width;
        else if (o.kind == OpKind::StoreVar)
          obs = after.vars()[o.var.index()].width;
        else if (o.kind == OpKind::WritePort)
          obs = after.ports()[o.port.index()].width;
        if (!sgn && obs <= wA) continue;
        discharge(beh.valNode[vi], wA, sgn,
                  std::string(opName(o.kind)) + " operand " +
                      std::to_string(i) + " fits its narrowed " +
                      std::to_string(wA) + " of " + std::to_string(wB) +
                      " bits" + (sgn ? " (sign-extended use)" : ""));
      }
    }
  }
  return clean;
}

bool provePerBlock(const Function& before, const Function& after,
                   const std::string& label, CheckReport& rep,
                   const PassTvOptions& opts) {
  bool clean = true;
  VarLiveness lvB = computeVarLiveness(before);
  VarLiveness lvA = computeVarLiveness(after);
  AnalysisResult facts;
  if (opts.assumeFacts) facts = analyzeFunction(before);

  for (std::size_t bi = 0; bi < before.numBlocks(); ++bi) {
    const Block& blk = before.blocks()[bi];
    BlockId b = blk.id;
    std::string where = "pass " + label + " block " + blk.name;
    if (opts.assumeFacts && !facts.blockReachable[bi]) {
      rep.note("sec.tv.unreachable", where,
               "block proved unreachable by analysis; skipping");
      continue;
    }

    ExprContext ctx;
    std::vector<int> portIn(before.ports().size(), -1);
    for (const Port& p : before.ports())
      if (p.isInput) portIn[p.id.index()] = ctx.mkVar(p.name, p.width);

    SymState entryB, entryA;
    entryB.portIn = portIn;
    entryA.portIn = portIn;
    entryB.var.resize(before.vars().size());
    entryA.var.resize(after.vars().size());
    std::vector<int> assumptions;
    for (const Variable& v : before.vars()) {
      int wB = v.width;
      int wA = after.vars()[v.id.index()].width;
      int sym = ctx.mkVar(v.name, wB);
      entryB.var[v.id.index()] = sym;
      entryA.var[v.id.index()] = ctx.resize(sym, wA);
      // Inductive half of the narrowing invariant: live-in values already
      // fit their narrowed storage (re-established below for live-outs).
      if (wA < wB && lvB.liveIn[bi][v.id.index()])
        assumptions.push_back(fitAssumption(ctx, sym, wA));
    }

    SymBlockOut behB = evalBlock(ctx, before, b, entryB);
    SymBlockOut behA = evalBlock(ctx, after, b, entryA);
    if (!behB.ok || !behA.ok) {
      rep.warning("sec.pass.unsupported", where,
                  !behB.ok ? behB.why : behA.why);
      continue;
    }

    if (opts.assumeFacts) {
      for (const Value& val : before.values()) {
        int n = behB.valNode[val.id.index()];
        if (n < 0) continue;
        appendFactAssumptions(ctx, facts.fact(val.id), n, assumptions);
      }
    }

    for (const Variable& v : before.vars()) {
      std::size_t vi = v.id.index();
      bool liveOut = lvB.liveOut[bi][vi] || lvA.liveOut[bi][vi];
      if (!liveOut) continue;
      int wA = after.vars()[vi].width;
      if (!dischargeEqual(ctx, ctx.resize(behB.varOut[vi], wA),
                          behA.varOut[vi], assumptions,
                          opts.conflictBudget, "sec.tv.mismatch", where,
                          "variable '" + v.name + "'", rep))
        clean = false;
      if (wA < v.width &&
          !dischargeEqual(ctx, behB.varOut[vi],
                          ctx.resize(ctx.resize(behB.varOut[vi], wA),
                                     v.width),
                          assumptions, opts.conflictBudget,
                          "sec.tv.narrow-overflow", where,
                          "variable '" + v.name +
                              "' overflows its narrowed width",
                          rep))
        clean = false;
    }

    if (behB.portWrites.size() != behA.portWrites.size()) {
      rep.error("sec.tv.mismatch", where,
                "output-port write sets differ across the pass");
      clean = false;
    } else {
      for (std::size_t i = 0; i < behB.portWrites.size(); ++i) {
        if (behB.portWrites[i].first != behA.portWrites[i].first) {
          rep.error("sec.tv.mismatch", where,
                    "output-port write sets differ across the pass");
          clean = false;
          break;
        }
        const Port& p =
            before.ports()[(std::size_t)behB.portWrites[i].first];
        if (!dischargeEqual(ctx, behB.portWrites[i].second,
                            behA.portWrites[i].second, assumptions,
                            opts.conflictBudget, "sec.tv.mismatch", where,
                            "output port '" + p.name + "'", rep))
          clean = false;
      }
    }

    if (blk.term.kind == Terminator::Kind::Branch) {
      if (!dischargeEqual(ctx, behB.branchCond, behA.branchCond,
                          assumptions, opts.conflictBudget,
                          "sec.tv.mismatch", where, "branch condition",
                          rep))
        clean = false;
    }
  }
  return clean;
}

bool proveWholeFunction(const Function& before, const Function& after,
                        const std::string& label, CheckReport& rep,
                        const PassTvOptions& opts) {
  std::string where = "pass " + label;
  ExprContext ctx;
  MPHLS_CHECK(before.ports().size() == after.ports().size(),
              "pass changed the port interface");
  std::vector<int> portIn(before.ports().size(), -1);
  for (const Port& p : before.ports())
    if (p.isInput) portIn[p.id.index()] = ctx.mkVar(p.name, p.width);

  SymFnOut outB = evalFunction(ctx, before, portIn, opts.maxBlockExecs);
  SymFnOut outA = evalFunction(ctx, after, portIn, opts.maxBlockExecs);
  if (!outB.ok || !outA.ok) {
    rep.warning("sec.pass.unsupported", where,
                "CFG changed and " +
                    (!outB.ok ? outB.why : outA.why) +
                    "; pass not validated");
    return true;
  }

  bool clean = true;
  if (outB.portFinal.size() != outA.portFinal.size()) {
    rep.error("sec.tv.mismatch", where,
              "final output-port sets differ across the pass");
    return false;
  }
  for (std::size_t i = 0; i < outB.portFinal.size(); ++i) {
    if (outB.portFinal[i].first != outA.portFinal[i].first) {
      rep.error("sec.tv.mismatch", where,
                "final output-port sets differ across the pass");
      return false;
    }
    const Port& p = before.ports()[(std::size_t)outB.portFinal[i].first];
    if (!dischargeEqual(ctx, outB.portFinal[i].second,
                        outA.portFinal[i].second, {}, opts.conflictBudget,
                        "sec.tv.mismatch", where,
                        "final value of output port '" + p.name + "'",
                        rep))
      clean = false;
  }
  return clean;
}

}  // namespace

bool proveFunctionEquivalence(const Function& before, const Function& after,
                              const std::string& label, CheckReport& rep,
                              const PassTvOptions& opts) {
  obs::TraceSpan span("sec.tv", label);
  // A pure width-narrowing change gets the dedicated single-sided
  // validator: a general two-sided proof would miter a wide multiplier or
  // divider against its narrowed twin, which bit-level SAT cannot decide
  // in reasonable time. Only taken when facts may be assumed — the fit
  // obligations are exactly the analysis results the pass consumed.
  if (opts.assumeFacts && widthOnlyChange(before, after))
    return proveNarrowing(before, after, label, rep, opts);
  if (sameCfgShape(before, after))
    return provePerBlock(before, after, label, rep, opts);
  return proveWholeFunction(before, after, label, rep, opts);
}

std::vector<PassStats> runPipelineValidated(PassManager& pm, Function& fn,
                                            CheckReport& rep,
                                            const PassTvOptions& opts) {
  pm.setObserver([&rep, opts](std::string_view pass, const Function& before,
                              const Function& after, int changes) {
    if (changes == 0) return;
    PassTvOptions o = opts;
    o.assumeFacts = pass == "narrow-widths";
    proveFunctionEquivalence(before, after, std::string(pass), rep, o);
  });
  std::vector<PassStats> stats = pm.run(fn);
  pm.setObserver({});
  return stats;
}

}  // namespace mphls::sec
