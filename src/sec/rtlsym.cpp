#include "sec/rtlsym.h"

#include <algorithm>

#include "common/bitutil.h"
#include "common/diag.h"

namespace mphls::sec {

RtlSymOut evalRtlBlock(ExprContext& ctx, const RtlDesign& d, BlockId b,
                       const std::vector<int>& regIn,
                       const std::vector<int>& portIn) {
  RtlSymOut out;
  out.regOut = regIn;
  MPHLS_CHECK((int)regIn.size() == d.regs.numRegs, "register file size");

  int numSteps = d.sched.of(b).numSteps;
  std::size_t numFus = (std::size_t)d.binding.numFus();
  std::vector<int> pendingDone(numFus, -1);
  std::vector<int> pendingVal(numFus, -1);

  auto fail = [&](std::string why) {
    out.ok = false;
    if (out.why.empty()) out.why = std::move(why);
  };

  auto setPortWrite = [&](int port, int node) {
    for (auto& [p, n] : out.portWrites) {
      if (p == port) {
        n = node;
        return;
      }
    }
    out.portWrites.emplace_back(port, node);
  };

  for (int s = 0; s < numSteps && out.ok; ++s) {
    StateId sid = d.ctrl.stateAt(b, s);
    if (!sid.valid()) {
      fail("missing controller state");
      break;
    }
    const CtrlState& st = d.ctrl.state(sid);

    // Combinational phase: completions first, then this step's issues.
    std::vector<int> fuOut(numFus, -1);
    std::vector<bool> fuActive(numFus, false);
    for (std::size_t f = 0; f < numFus; ++f) {
      if (pendingDone[f] == s) {
        fuOut[f] = pendingVal[f];
        fuActive[f] = true;
        pendingDone[f] = -1;
      }
    }

    auto srcSym = [&](const Source& src) -> int {
      int v = -1;
      switch (src.kind) {
        case Source::Kind::Reg:
          v = ctx.resize(out.regOut[(std::size_t)src.id], src.rootWidth);
          break;
        case Source::Kind::Port:
          v = ctx.resize(portIn[(std::size_t)src.id], src.rootWidth);
          break;
        case Source::Kind::Const:
          v = ctx.mkConst((std::uint64_t)src.imm, src.rootWidth);
          break;
        case Source::Kind::Fu:
          if (src.id < 0 || !fuActive[(std::size_t)src.id]) {
            fail("read of inactive unit output");
            return ctx.mkConst(0, src.rootWidth > 0 ? src.rootWidth : 1);
          }
          v = ctx.resize(fuOut[(std::size_t)src.id], src.rootWidth);
          break;
      }
      for (const WireXform& x : src.xform)
        v = ctx.mkOp(x.kind, x.width, x.imm, {v});
      return v;
    };

    for (const FuAction& fa : st.fuActions) {
      std::vector<int> args;
      auto pushPort = [&](int p) {
        const MuxSpec& mux = d.ic.fuInput[(std::size_t)fa.fu][(std::size_t)p];
        MPHLS_CHECK(fa.muxSel[p] >= 0 && fa.muxSel[p] < mux.legs(),
                    "bad mux select");
        args.push_back(srcSym(mux.sources[(std::size_t)fa.muxSel[p]]));
      };
      if (fa.kind == OpKind::Select) {
        pushPort(2);
        pushPort(0);
        pushPort(1);
      } else {
        int arity = opArity(fa.kind);
        for (int p = 0; p < arity; ++p) pushPort(p);
      }
      if (!out.ok) break;
      int value = ctx.mkOp(fa.kind, fa.width, 0, std::move(args));
      if (fa.cycles <= 1) {
        fuOut[(std::size_t)fa.fu] = value;
        fuActive[(std::size_t)fa.fu] = true;
      } else {
        if (pendingDone[(std::size_t)fa.fu] >= 0) {
          fail("unit issued while busy");
          break;
        }
        pendingDone[(std::size_t)fa.fu] = s + fa.cycles - 1;
        pendingVal[(std::size_t)fa.fu] = value;
      }
    }
    if (!out.ok) break;

    // Sequential phase: compute every latched value against the
    // pre-commit register file, then commit.
    std::vector<std::pair<int, int>> regWrites;
    for (const RegAction& ra : st.regActions) {
      const MuxSpec& mux = d.ic.regInput[(std::size_t)ra.reg];
      regWrites.emplace_back(ra.reg,
                             srcSym(mux.sources[(std::size_t)ra.muxSel]));
    }
    std::vector<std::pair<int, int>> portCommits;
    for (const PortAction& pa : st.portActions) {
      const MuxSpec& mux = d.ic.outPortInput[(std::size_t)pa.port];
      portCommits.emplace_back(pa.port,
                               srcSym(mux.sources[(std::size_t)pa.muxSel]));
    }
    if (st.conditional) out.branchCond = ctx.resize(srcSym(st.cond), 1);
    if (!out.ok) break;

    for (auto& [r, v] : regWrites) out.regOut[(std::size_t)r] = v;
    for (auto& [p, v] : portCommits)
      setPortWrite(p, ctx.resize(v, d.fn.ports()[(std::size_t)p].width));
  }

  for (std::size_t f = 0; f < numFus && out.ok; ++f)
    if (pendingDone[f] >= 0)
      fail("multicycle operation does not complete within its block");

  std::sort(out.portWrites.begin(), out.portWrites.end());
  return out;
}

}  // namespace mphls::sec
