// Symbolic evaluation of behavioral CDFG functions into expression DAGs.
//
// Two granularities:
//  - evalBlock: one basic block under symbolic entry state. This is the
//    workhorse of both the per-pass translation validator and the
//    behavioral side of the sequential (behavioral-vs-RTL) prover, which
//    decomposes whole-run equivalence into per-block obligations.
//  - evalFunction: whole function under concrete control flow (branch
//    conditions must constant-fold). Fallback for CFG-reshaping passes
//    such as loop unrolling.
#pragma once

#include <string>
#include <vector>

#include "ir/cdfg.h"
#include "sec/expr.h"

namespace mphls::sec {

/// Symbolic machine state at a block boundary.
struct SymState {
  /// Per VarId: node at the variable's declared width.
  std::vector<int> var;
  /// Per PortId: node at the port's width for inputs, -1 for outputs.
  std::vector<int> portIn;
};

struct SymBlockOut {
  std::vector<int> varOut;  ///< per VarId, at the variable's width
  /// Last value written per output port this block touched (port index,
  /// node at the port's width), in port-index order.
  std::vector<std::pair<int, int>> portWrites;
  /// Per ValueId computed in this block (-1 elsewhere); lets callers
  /// attach analysis facts to specific op results.
  std::vector<int> valNode;
  int branchCond = -1;  ///< width-1 node when the terminator is a Branch
  bool ok = true;
  std::string why;
};

[[nodiscard]] SymBlockOut evalBlock(ExprContext& ctx, const Function& fn,
                                    BlockId b, const SymState& entry);

struct SymFnOut {
  /// Final value per written output port (port index, node), port order.
  std::vector<std::pair<int, int>> portFinal;
  bool ok = false;
  std::string why;
};

/// Execute the whole function symbolically: variables start at 0 (the
/// interpreter's initial store), ports are the given symbols, and control
/// flow must resolve concretely (every branch condition a Const node).
[[nodiscard]] SymFnOut evalFunction(ExprContext& ctx, const Function& fn,
                                    const std::vector<int>& portIn,
                                    long maxBlockExecs = 100000);

}  // namespace mphls::sec
