#include "sec/prove.h"

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>

#include "common/diag.h"
#include "ir/analysis.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sec/rtlsym.h"
#include "sec/symexec.h"
#include "vm/sim_engine.h"

namespace mphls::sec {

namespace {

/// Mirror of the controller builder's firstStateOf: where a control
/// transfer into `b` lands, skipping zero-step blocks.
StateId entryStateOf(const RtlDesign& d, BlockId b, int depth, bool& ok) {
  if (depth >= (int)d.fn.numBlocks() + 2) {
    ok = false;
    return d.ctrl.haltState;
  }
  if (d.sched.of(b).numSteps > 0) return d.ctrl.stateAt(b, 0);
  const Terminator& t = d.fn.block(b).term;
  switch (t.kind) {
    case Terminator::Kind::Return:
      return d.ctrl.haltState;
    case Terminator::Kind::Jump:
      return entryStateOf(d, t.target, depth + 1, ok);
    case Terminator::Kind::Branch:
      ok = false;
      return d.ctrl.haltState;
  }
  return d.ctrl.haltState;
}

void checkControlStructure(const RtlDesign& d, CheckReport& rep) {
  auto entryOf = [&](BlockId b) {
    bool ok = true;
    StateId s = entryStateOf(d, b, 0, ok);
    if (!ok)
      rep.error("sec.rtl.control", "block " + d.fn.block(b).name,
                "cannot resolve entry state (empty-block cycle or branch "
                "in zero-step block)");
    return s;
  };

  if (d.ctrl.initial != entryOf(d.fn.entry()))
    rep.error("sec.rtl.control", "initial state",
              "controller does not start at the entry block's first state");

  for (const Block& blk : d.fn.blocks()) {
    int numSteps = d.sched.of(blk.id).numSteps;
    for (int s = 0; s < numSteps; ++s) {
      const CtrlState& st = d.ctrl.state(d.ctrl.stateAt(blk.id, s));
      std::string where =
          "block " + blk.name + " step " + std::to_string(s);
      if (s + 1 < numSteps) {
        if (st.conditional || st.next != d.ctrl.stateAt(blk.id, s + 1))
          rep.error("sec.rtl.control", where,
                    "intermediate state does not fall through to the next "
                    "step");
        continue;
      }
      switch (blk.term.kind) {
        case Terminator::Kind::Return:
          if (st.conditional || st.next != d.ctrl.haltState)
            rep.error("sec.rtl.control", where,
                      "Return block does not transition to halt");
          break;
        case Terminator::Kind::Jump:
          if (st.conditional || st.next != entryOf(blk.term.target))
            rep.error("sec.rtl.control", where,
                      "Jump does not transition to the target block's "
                      "first state");
          break;
        case Terminator::Kind::Branch:
          if (!st.conditional || st.nextTaken != entryOf(blk.term.target) ||
              st.nextNot != entryOf(blk.term.elseTarget))
            rep.error("sec.rtl.control", where,
                      "Branch transition targets do not match the CFG");
          break;
      }
    }
  }
}

std::string renderCounterexample(const ProveResult& res) {
  std::ostringstream oss;
  oss << "counterexample:";
  std::size_t shown = 0;
  for (const auto& [name, val] : res.counterexample) {
    if (shown++ == 8) {
      oss << " ...";
      break;
    }
    oss << " " << name << "=" << val;
  }
  return oss.str();
}

void proveBlock(const RtlDesign& d, const Block& blk, const VarLiveness& lv,
                const ProveOptions& opts, CheckReport& rep,
                std::vector<std::pair<std::string, std::uint64_t>>* cex) {
  obs::TraceSpan span("sec.prove.block", blk.name);
  const Function& fn = d.fn;
  std::size_t bi = blk.id.index();
  std::string where = "block " + blk.name;

  ExprContext ctx;
  std::vector<int> portIn(fn.ports().size(), -1);
  for (const Port& p : fn.ports())
    if (p.isInput) portIn[p.id.index()] = ctx.mkVar(p.name, p.width);
  std::vector<int> regIn((std::size_t)d.regs.numRegs);
  for (int r = 0; r < d.regs.numRegs; ++r) {
    // Sequential append: GCC 12 -Wrestrict -O3 false positive on the
    // temporary chain (same story as obs/vcd.cpp).
    std::string name = "r";
    name += std::to_string(r);
    regIn[(std::size_t)r] = ctx.mkVar(name, 64);
  }

  // Behavioral entry state under the correspondence invariant.
  SymState entry;
  entry.portIn = portIn;
  entry.var.resize(fn.vars().size());
  for (const Variable& v : fn.vars()) {
    int item = d.lifetimes.itemOfVar[v.id.index()];
    if (item >= 0 && lv.liveIn[bi][v.id.index()]) {
      int r = d.regs.regOfItem[(std::size_t)item];
      entry.var[v.id.index()] = ctx.resize(regIn[(std::size_t)r], v.width);
    } else {
      entry.var[v.id.index()] = ctx.mkVar(v.name, v.width);
    }
  }

  SymBlockOut beh = evalBlock(ctx, fn, blk.id, entry);
  if (!beh.ok) {
    rep.error("sec.unsupported", where, beh.why);
    return;
  }
  RtlSymOut rtl = evalRtlBlock(ctx, d, blk.id, regIn, portIn);
  if (!rtl.ok) {
    rep.error("sec.rtl.unsupported", where, rtl.why);
    return;
  }

  // 1. Live-out variables agree with their registers.
  for (const Variable& v : fn.vars()) {
    if (!lv.liveOut[bi][v.id.index()]) continue;
    int item = d.lifetimes.itemOfVar[v.id.index()];
    if (item < 0) continue;  // never stored: interpreter value is always 0
    int r = d.regs.regOfItem[(std::size_t)item];
    int lhs = ctx.resize(rtl.regOut[(std::size_t)r], v.width);
    dischargeEqual(ctx, lhs, beh.varOut[v.id.index()], {},
                   opts.conflictBudget, "sec.rtl.mismatch", where,
                   "live-out variable '" + v.name + "' vs register r" +
                       std::to_string(r),
                   rep, cex);
  }

  // 2. Output-port writes agree (same ports, same last values).
  if (beh.portWrites.size() != rtl.portWrites.size()) {
    rep.error("sec.rtl.mismatch", where,
              "output-port write sets differ between behavior and RTL");
  } else {
    for (std::size_t i = 0; i < beh.portWrites.size(); ++i) {
      if (beh.portWrites[i].first != rtl.portWrites[i].first) {
        rep.error("sec.rtl.mismatch", where,
                  "output-port write sets differ between behavior and RTL");
        break;
      }
      const Port& p =
          fn.ports()[(std::size_t)beh.portWrites[i].first];
      dischargeEqual(ctx, rtl.portWrites[i].second,
                     beh.portWrites[i].second, {}, opts.conflictBudget,
                     "sec.rtl.mismatch", where,
                     "output port '" + p.name + "'", rep, cex);
    }
  }

  // 3. Branch steering agrees.
  if (blk.term.kind == Terminator::Kind::Branch) {
    if (rtl.branchCond < 0) {
      rep.error("sec.rtl.mismatch", where,
                "RTL block has no branch condition");
    } else {
      dischargeEqual(ctx, rtl.branchCond, beh.branchCond, {},
                     opts.conflictBudget, "sec.rtl.mismatch", where,
                     "branch condition", rep, cex);
    }
  }
}

}  // namespace

bool dischargeEqual(ExprContext& ctx, int a, int b,
                    const std::vector<int>& assumptions, long conflictBudget,
                    const std::string& id, const std::string& where,
                    const std::string& what, CheckReport& rep,
                    std::vector<std::pair<std::string, std::uint64_t>>*
                        cexOut) {
  auto& metrics = obs::MetricsRegistry::global();
  metrics.counter("sec.obligations").add(1);
  const bool dbg = std::getenv("MPHLS_SEC_DEBUG") != nullptr;
  if (dbg)
    std::cerr << "[sec] begin " << where << ": " << what << "\n";
  auto t0 = std::chrono::steady_clock::now();
  ProveResult res = proveEqual(ctx, a, b, assumptions, conflictBudget);
  auto t1 = std::chrono::steady_clock::now();
  if (dbg)
    std::cerr << "[sec] end   " << where << ": " << what << " t="
              << std::chrono::duration<double>(t1 - t0).count()
              << "s structural=" << res.structural
              << " conflicts=" << res.conflicts << "\n";
  metrics.histogram("sec.obligation_seconds")
      .observe(std::chrono::duration<double>(t1 - t0).count());
  if (res.structural) {
    metrics.counter("sec.structural").add(1);
  } else {
    metrics.counter("sec.sat.calls").add(1);
    metrics.histogram("sec.sat.conflicts").observe((double)res.conflicts);
  }
  switch (res.verdict) {
    case ProveResult::Verdict::Equal:
      return true;
    case ProveResult::Verdict::NotEqual:
      if (cexOut && cexOut->empty()) *cexOut = res.counterexample;
      rep.error(id, where, what + " differ; " + renderCounterexample(res));
      return false;
    case ProveResult::Verdict::Unknown:
      rep.error("sec.budget-exhausted", where,
                what + ": SAT conflict budget exhausted after " +
                    std::to_string(res.conflicts) +
                    " conflicts (obligation undecided)");
      return false;
  }
  return false;
}

CheckReport proveEquivalence(const RtlDesign& d, const ProveOptions& opts) {
  CheckReport rep;
  obs::TraceSpan span("sec.prove", d.fn.name());
  obs::MetricsRegistry::global().counter("sec.proofs").add(1);

  checkControlStructure(d, rep);

  VarLiveness lv = computeVarLiveness(d.fn);
  std::vector<std::pair<std::string, std::uint64_t>> cex;
  for (const Block& blk : d.fn.blocks()) {
    if (d.sched.of(blk.id).numSteps == 0) {
      // Zero-step blocks are skipped by the controller; they must have no
      // observable effects.
      for (OpId oid : blk.ops)
        if (d.fn.op(oid).isSink())
          rep.error("sec.rtl.unsupported", "block " + blk.name,
                    "zero-step block contains a store/write");
      continue;
    }
    proveBlock(d, blk, lv, opts, rep, &cex);
  }

  // Decode the first SAT witness concretely: replay its input-port
  // assignment end-to-end on the bytecode co-sim. Witness symbols that are
  // not design inputs (the arbitrary register file, free variables)
  // default to zero, so the note distinguishes a counterexample that
  // reproduces from whole-design inputs from one that needs the block's
  // particular register state.
  if (!cex.empty()) {
    std::map<std::string, std::uint64_t> inputs;
    for (const Port& p : d.fn.ports())
      if (p.isInput) inputs[p.name] = 0;
    // Raw witness patterns are fine here: the VM truncates every input to
    // its port width at load.
    for (const auto& [name, val] : cex) {
      auto it = inputs.find(name);
      if (it != inputs.end()) it->second = val;
    }
    std::ostringstream oss;
    oss << "replayed witness on vm co-sim:";
    for (const auto& [name, val] : inputs) oss << " " << name << "=" << val;
    try {
      vm::BehavSim behav(d.fn);
      ExecResult want = behav.run(inputs);
      vm::RtlSim sim(d);
      RtlExecResult got = sim.run(inputs);
      if (!want.finished || !got.finished) {
        oss << " -> execution did not finish";
      } else if (want.outputs != got.outputs) {
        oss << " -> behavioral and RTL outputs differ end-to-end";
        for (const auto& [name, val] : want.outputs)
          oss << "; " << name << ": behav=" << val
              << " rtl=" << got.outputs[name];
      } else {
        oss << " -> outputs agree end-to-end (divergence requires the "
               "witness register state, not reachable from these inputs "
               "alone)";
      }
    } catch (const std::exception& e) {
      oss << " -> replay failed: " << e.what();
    }
    rep.note("sec.cex.replay", "design " + d.fn.name(), oss.str());
  }
  return rep;
}

}  // namespace mphls::sec
