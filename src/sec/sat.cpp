#include "sec/sat.h"

#include <algorithm>

#include "common/diag.h"

namespace mphls::sec {

namespace {

// Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
long luby(long i) {
  long k = 1;
  while ((1L << k) - 1 < i + 1) ++k;
  while ((1L << k) - 1 != i + 1) {
    --k;
    i -= (1L << k) - 1;
  }
  return 1L << (k - 1);
}

constexpr long kRestartUnit = 128;
constexpr double kActivityDecay = 1.0 / 0.95;
constexpr double kActivityRescale = 1e100;

}  // namespace

int SatSolver::newVar() {
  int v = (int)assign_.size();
  assign_.push_back(-1);
  level_.push_back(0);
  reason_.push_back(-1);
  activity_.push_back(0.0);
  phase_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  return v;
}

void SatSolver::addClause(std::vector<int> lits) {
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  for (std::size_t i = 0; i + 1 < lits.size(); ++i)
    if (lits[i + 1] == neg(lits[i])) return;  // tautology
  for (int l : lits)
    MPHLS_CHECK(varOf(l) >= 0 && varOf(l) < numVars(),
                "clause references unknown variable");
  if (lits.empty()) {
    ok_ = false;
    return;
  }
  if (lits.size() == 1) {
    units_.push_back(lits[0]);
    return;
  }
  clauses_.push_back(Clause{std::move(lits)});
  attach((int)clauses_.size() - 1);
}

void SatSolver::attach(int ci) {
  const Clause& c = clauses_[(std::size_t)ci];
  watches_[(std::size_t)c.lits[0]].push_back(ci);
  watches_[(std::size_t)c.lits[1]].push_back(ci);
}

bool SatSolver::enqueue(int l, int reasonClause) {
  int val = valueLit(l);
  if (val == 0) return false;  // already false: conflict at caller
  if (val == 1) return true;
  int v = varOf(l);
  assign_[(std::size_t)v] = (l & 1) ? 0 : 1;
  level_[(std::size_t)v] = decisionLevel();
  reason_[(std::size_t)v] = reasonClause;
  trail_.push_back(l);
  return true;
}

int SatSolver::propagate() {
  while (qhead_ < trail_.size()) {
    int p = trail_[qhead_++];
    int falsified = neg(p);
    std::vector<int>& ws = watches_[(std::size_t)falsified];
    std::size_t keep = 0;
    for (std::size_t wi = 0; wi < ws.size(); ++wi) {
      int ci = ws[wi];
      Clause& c = clauses_[(std::size_t)ci];
      // Ensure the falsified literal sits at lits[1].
      if (c.lits[0] == falsified) std::swap(c.lits[0], c.lits[1]);
      if (valueLit(c.lits[0]) == 1) {
        ws[keep++] = ci;  // satisfied: keep watching
        continue;
      }
      // Look for a replacement watch.
      bool moved = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        if (valueLit(c.lits[k]) != 0) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[(std::size_t)c.lits[1]].push_back(ci);
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflicting.
      ws[keep++] = ci;
      if (!enqueue(c.lits[0], ci)) {
        // Conflict: keep the remaining watchers and report.
        for (std::size_t k = wi + 1; k < ws.size(); ++k) ws[keep++] = ws[k];
        ws.resize(keep);
        return ci;
      }
    }
    ws.resize(keep);
  }
  return -1;
}

void SatSolver::bumpVar(int v) {
  activity_[(std::size_t)v] += varInc_;
  if (activity_[(std::size_t)v] > kActivityRescale) {
    for (double& a : activity_) a /= kActivityRescale;
    varInc_ /= kActivityRescale;
  }
}

void SatSolver::analyze(int conflClause, std::vector<int>& learnt,
                        int& btLevel) {
  learnt.clear();
  learnt.push_back(0);  // slot for the asserting literal
  std::vector<signed char> seen((std::size_t)numVars(), 0);
  int counter = 0;
  int p = -1;
  std::size_t idx = trail_.size();
  int ci = conflClause;
  do {
    const Clause& c = clauses_[(std::size_t)ci];
    // When `c` is the reason of `p`, lits[0] is `p` itself; skip it.
    for (std::size_t k = (p == -1 ? 0 : 1); k < c.lits.size(); ++k) {
      int q = c.lits[k];
      int v = varOf(q);
      if (seen[(std::size_t)v] || level_[(std::size_t)v] == 0) continue;
      seen[(std::size_t)v] = 1;
      bumpVar(v);
      if (level_[(std::size_t)v] == decisionLevel())
        ++counter;
      else
        learnt.push_back(q);
    }
    while (!seen[(std::size_t)varOf(trail_[idx - 1])]) --idx;
    p = trail_[idx - 1];
    --idx;
    ci = reason_[(std::size_t)varOf(p)];
    seen[(std::size_t)varOf(p)] = 0;
    --counter;
  } while (counter > 0);
  learnt[0] = neg(p);

  btLevel = 0;
  if (learnt.size() > 1) {
    // Second literal must carry the highest level below the current one.
    std::size_t maxI = 1;
    for (std::size_t k = 2; k < learnt.size(); ++k)
      if (level_[(std::size_t)varOf(learnt[k])] >
          level_[(std::size_t)varOf(learnt[maxI])])
        maxI = k;
    std::swap(learnt[1], learnt[maxI]);
    btLevel = level_[(std::size_t)varOf(learnt[1])];
  }
}

void SatSolver::backtrackTo(int lvl) {
  if (decisionLevel() <= lvl) return;
  std::size_t bound = (std::size_t)trailLim_[(std::size_t)lvl];
  for (std::size_t i = trail_.size(); i > bound; --i) {
    int v = varOf(trail_[i - 1]);
    phase_[(std::size_t)v] = assign_[(std::size_t)v];
    assign_[(std::size_t)v] = -1;
    reason_[(std::size_t)v] = -1;
  }
  trail_.resize(bound);
  trailLim_.resize((std::size_t)lvl);
  qhead_ = trail_.size();
}

int SatSolver::pickBranchVar() {
  int best = -1;
  double bestAct = -1.0;
  for (int v = 0; v < numVars(); ++v) {
    if (assign_[(std::size_t)v] >= 0) continue;
    if (activity_[(std::size_t)v] > bestAct) {
      bestAct = activity_[(std::size_t)v];
      best = v;
    }
  }
  return best;
}

SatSolver::Result SatSolver::solve(long conflictBudget) {
  if (!ok_) return Result::Unsat;
  for (int l : units_)
    if (!enqueue(l, -1)) return Result::Unsat;

  long restartNum = 0;
  long restartLimit = luby(restartNum) * kRestartUnit;
  long conflictsSinceRestart = 0;
  std::vector<int> learnt;

  for (;;) {
    int confl = propagate();
    if (confl >= 0) {
      ++conflicts_;
      ++conflictsSinceRestart;
      if (decisionLevel() == 0) return Result::Unsat;
      if (conflictBudget >= 0 && conflicts_ > conflictBudget)
        return Result::Unknown;
      int btLevel = 0;
      analyze(confl, learnt, btLevel);
      backtrackTo(btLevel);
      if (learnt.size() == 1) {
        if (!enqueue(learnt[0], -1)) return Result::Unsat;
      } else {
        clauses_.push_back(Clause{learnt});
        attach((int)clauses_.size() - 1);
        bool okEnq = enqueue(learnt[0], (int)clauses_.size() - 1);
        MPHLS_CHECK(okEnq, "learnt clause not asserting");
      }
      varInc_ *= kActivityDecay;
    } else {
      if (conflictsSinceRestart >= restartLimit) {
        conflictsSinceRestart = 0;
        restartLimit = luby(++restartNum) * kRestartUnit;
        backtrackTo(0);
        continue;
      }
      int v = pickBranchVar();
      if (v < 0) return Result::Sat;
      trailLim_.push_back((int)trail_.size());
      bool okEnq = enqueue(lit(v, phase_[(std::size_t)v] != 1), -1);
      MPHLS_CHECK(okEnq, "decision on assigned variable");
    }
  }
}

}  // namespace mphls::sec
