// Per-pass translation validation: prove each optimization pass preserved
// the function's observable behavior (final output-port values, and — for
// the per-block protocol — per-block variable/port/branch effects).
//
// Two proof modes, chosen by CFG shape:
//  - shape-preserving passes (everything except unroll): per-block proof
//    under shared symbolic entry state, which handles loops and data-
//    dependent control for free;
//  - CFG-reshaping passes: whole-function symbolic execution with concrete
//    control (branch conditions must constant-fold, which is exactly the
//    situation after unrolling a constant-trip loop). When control cannot
//    be resolved the validator reports a warning (sec.pass.unsupported)
//    rather than a bogus verdict — the co-sim fuzzer still covers the pass.
//
// Width-narrowing gets a third, dedicated mode: when the pass changed
// nothing but value/variable widths, the validator symbolically executes
// only the *wide* function and discharges per-use-site fit obligations
// (zext-roundtrip for raw-pattern uses, sext-roundtrip for sign-extended
// uses) under the dataflow facts — a wide-vs-narrow multiplier or divider
// miter would be intractable for bit-level SAT. This is translation
// validation *modulo the analysis*; see DESIGN.md §11 for the soundness
// caveat.
#pragma once

#include <string>
#include <vector>

#include "check/report.h"
#include "opt/pass.h"
#include "sec/bitblast.h"

namespace mphls::sec {

struct PassTvOptions {
  long conflictBudget = kDefaultConflictBudget;
  /// Assume the abstract-interpretation facts of the *before* function
  /// when discharging obligations (and, for width-only changes, use the
  /// dedicated fit-obligation validator). Set for the narrow-widths pass,
  /// whose correctness is exactly "the analysis facts justify every width".
  bool assumeFacts = false;
  /// Block-execution budget for the whole-function fallback.
  long maxBlockExecs = 100000;
};

/// Prove `after` observation-equivalent to `before`. `label` names the
/// transformation in diagnostics (e.g. the pass name, or an injection
/// site), so a failed proof pinpoints the guilty stage. Returns true when
/// no error finding was appended.
bool proveFunctionEquivalence(const Function& before, const Function& after,
                              const std::string& label, CheckReport& rep,
                              const PassTvOptions& opts = {});

/// Run `pm` on `fn` with a translation-validation observer installed:
/// every pass application that reports changes is proved equivalence-
/// preserving, findings accumulate in `rep`. Narrowing passes are detected
/// by name and validated with assumeFacts.
std::vector<PassStats> runPipelineValidated(PassManager& pm, Function& fn,
                                            CheckReport& rep,
                                            const PassTvOptions& opts = {});

}  // namespace mphls::sec
