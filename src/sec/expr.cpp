#include "sec/expr.h"

#include <algorithm>

#include "common/bitutil.h"
#include "common/diag.h"
#include "ir/interp.h"

namespace mphls::sec {

namespace {

bool isResizeKind(OpKind k) { return k == OpKind::Trunc || k == OpKind::ZExt; }

/// Associative-commutative kinds canonicalized by chain flattening. All are
/// AC over raw patterns at a fixed width (add/mul mod 2^w, bitwise for the
/// logic kinds), so any re-association or re-ordering of the same leaf
/// multiset denotes the same value.
bool isAcKind(OpKind k) {
  switch (k) {
    case OpKind::Add:
    case OpKind::Mul:
    case OpKind::And:
    case OpKind::Or:
    case OpKind::Xor:
      return true;
    default:
      return false;
  }
}

}  // namespace

int ExprContext::mkVar(std::string name, int width) {
  MPHLS_CHECK(width >= 1 && width <= kMaxWidth, "bad var width " << width);
  Expr e;
  e.kind = Expr::Kind::Var;
  e.width = width;
  e.name = std::move(name);
  nodes_.push_back(std::move(e));
  return (int)nodes_.size() - 1;
}

int ExprContext::mkConst(std::uint64_t value, int width) {
  MPHLS_CHECK(width >= 1 && width <= kMaxWidth, "bad const width " << width);
  Expr e;
  e.kind = Expr::Kind::Const;
  e.width = width;
  e.imm = (std::int64_t)truncBits(value, width);
  return intern(std::move(e));
}

bool ExprContext::constValue(int id, std::uint64_t& value) const {
  const Expr& e = node(id);
  if (e.kind != Expr::Kind::Const) return false;
  value = (std::uint64_t)e.imm;
  return true;
}

int ExprContext::resize(int n, int width) {
  int w = node(n).width;
  if (w == width) return n;
  if (width < w) return mkOp(OpKind::Trunc, width, 0, {n});
  return mkOp(OpKind::ZExt, width, 0, {n});
}

int ExprContext::intern(Expr e) {
  auto key = std::make_tuple((int)e.kind, (int)e.op, e.width, e.imm, e.args);
  auto it = consed_.find(key);
  if (it != consed_.end()) return it->second;
  nodes_.push_back(std::move(e));
  int id = (int)nodes_.size() - 1;
  consed_.emplace(std::move(key), id);
  return id;
}

int ExprContext::mkOp(OpKind op, int width, std::int64_t imm,
                      std::vector<int> args) {
  MPHLS_CHECK(width >= 1 && width <= kMaxWidth, "bad op width " << width);
  MPHLS_CHECK((int)args.size() == opArity(op),
              "arity mismatch for " << opName(op));

  // Constant folding: all-const operands evaluate through the interpreter's
  // evalPure, the single definition of mphls arithmetic.
  {
    bool allConst = true;
    std::vector<std::uint64_t> vals(args.size());
    std::vector<int> widths(args.size());
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (!constValue(args[i], vals[i])) {
        allConst = false;
        break;
      }
      widths[i] = node(args[i]).width;
    }
    if (allConst)
      return mkConst(Interpreter::evalPure(op, width, imm, vals, widths),
                     width);
  }

  // Canonicalize op families so equivalent spellings share one shape.
  std::uint64_t c = 0;
  switch (op) {
    case OpKind::Inc:
      return mkOp(OpKind::Add, width, 0,
                  {args[0], mkConst(1, node(args[0]).width)});
    case OpKind::Dec:
      return mkOp(OpKind::Sub, width, 0,
                  {args[0], mkConst(1, node(args[0]).width)});
    case OpKind::Neg:
      return mkOp(OpKind::Sub, width, 0,
                  {mkConst(0, node(args[0]).width), args[0]});
    case OpKind::Shl:
      if (constValue(args[1], c))
        return c >= 64 ? mkConst(0, width)
                       : mkOp(OpKind::ShlConst, width, (std::int64_t)c,
                              {args[0]});
      break;
    case OpKind::Shr:
      if (constValue(args[1], c))
        return c >= 64 ? mkConst(0, width)
                       : mkOp(OpKind::ShrConst, width, (std::int64_t)c,
                              {args[0]});
      break;
    case OpKind::Sar:
      // evalPure clamps variable arithmetic shifts to 63; SarConst clamps
      // its imm the same way, so no explicit min() is needed here.
      if (constValue(args[1], c))
        return mkOp(OpKind::SarConst, width,
                    (std::int64_t)(c > 63 ? 63 : c), {args[0]});
      break;
    case OpKind::Mul:
      for (int i = 0; i < 2; ++i)
        if (constValue(args[i], c) && isPowerOfTwo(c))
          return mkOp(OpKind::ShlConst, width, log2Floor(c), {args[1 - i]});
      break;
    case OpKind::UDiv:
      if (constValue(args[1], c) && isPowerOfTwo(c))
        return mkOp(OpKind::ShrConst, width, log2Floor(c), {args[0]});
      break;
    case OpKind::UMod:
      if (constValue(args[1], c) && isPowerOfTwo(c))
        return mkOp(OpKind::And, width, 0,
                    {args[0], mkConst(c - 1, node(args[0]).width)});
      break;
    default:
      break;
  }

  // Canonicalize associative-commutative chains: flatten same-kind
  // same-width subtrees into their leaf multiset, fold the constant
  // leaves, dedupe (And/Or) or cancel (Xor) repeated leaves, and rebuild a
  // deterministic chain over the id-sorted leaves. Any re-association or
  // commutation of the same computation — e.g. the tree-height pass
  // rebalancing a linear FIR sum into a balanced adder tree — then lands
  // on the identical node, keeping the obligation structural instead of
  // handing the SAT core a reassociated-multiplier/adder miter.
  if (isAcKind(op)) {
    std::vector<int> leaves;
    std::vector<int> work{args[0], args[1]};
    while (!work.empty()) {
      int n = work.back();
      work.pop_back();
      const Expr& en = node(n);
      if (en.kind == Expr::Kind::Op && en.op == op && en.width == width) {
        work.push_back(en.args[0]);
        work.push_back(en.args[1]);
      } else {
        leaves.push_back(n);
      }
    }
    // Fold every constant leaf into one pattern (operands are consumed as
    // raw zero-extended patterns, and the result is truncated to `width`,
    // so folding mod 2^width is exact for all five kinds).
    bool haveConst = false;
    std::uint64_t acc = 0;
    std::vector<int> rest;
    for (int n : leaves) {
      std::uint64_t v = 0;
      if (constValue(n, v)) {
        acc = haveConst
                  ? Interpreter::evalPure(op, width, 0, {acc, v}, {64, 64})
                  : truncBits(v, width);
        haveConst = true;
      } else {
        rest.push_back(n);
      }
    }
    std::sort(rest.begin(), rest.end());
    if (op == OpKind::And || op == OpKind::Or) {
      rest.erase(std::unique(rest.begin(), rest.end()), rest.end());
    } else if (op == OpKind::Xor) {
      // x ^ x == 0: drop leaves that appear an even number of times.
      std::vector<int> kept;
      for (std::size_t i = 0; i < rest.size();) {
        std::size_t j = i;
        while (j < rest.size() && rest[j] == rest[i]) ++j;
        if ((j - i) % 2) kept.push_back(rest[i]);
        i = j;
      }
      rest = std::move(kept);
    }
    if (haveConst) {
      // Absorbing and identity constants.
      if (op == OpKind::Mul && acc == 0) return mkConst(0, width);
      if (op == OpKind::And && acc == 0) return mkConst(0, width);
      if (op == OpKind::Or && acc == maskBits(width))
        return mkConst(maskBits(width), width);
      bool identity = (op == OpKind::Mul && acc == 1) ||
                      (op == OpKind::And && acc == maskBits(width)) ||
                      (op != OpKind::Mul && op != OpKind::And && acc == 0);
      if (!identity) {
        int cn = mkConst(acc, width);
        rest.insert(std::lower_bound(rest.begin(), rest.end(), cn), cn);
      }
    }
    if (rest.empty())
      return mkConst(op == OpKind::And   ? maskBits(width)
                     : op == OpKind::Mul ? 1
                                         : 0,
                     width);
    if (rest.size() == 1) return resize(rest[0], width);
    int accN = rest[0];
    for (std::size_t i = 1; i < rest.size(); ++i) {
      Expr link;
      link.kind = Expr::Kind::Op;
      link.op = op;
      link.width = width;
      link.args = {std::min(accN, rest[i]), std::max(accN, rest[i])};
      accN = intern(std::move(link));
    }
    return accN;
  }

  // Commutative operands in node-id order.
  if (opIsCommutative(op) && args.size() == 2 && args[0] > args[1])
    std::swap(args[0], args[1]);

  // Local identities. `a0`/`a1` below are operand node ids.
  int a0 = args.empty() ? -1 : args[0];
  int a1 = args.size() > 1 ? args[1] : -1;
  auto isConstEq = [&](int n, std::uint64_t want) {
    std::uint64_t v = 0;
    return n >= 0 && constValue(n, v) && v == want;
  };
  switch (op) {
    case OpKind::Add:
    case OpKind::Or:
    case OpKind::Xor:
      if (isConstEq(a0, 0)) return resize(a1, width);
      if (isConstEq(a1, 0)) return resize(a0, width);
      if (op == OpKind::Xor && a0 == a1) return mkConst(0, width);
      if (op == OpKind::Or && a0 == a1) return resize(a0, width);
      if (op == OpKind::Or &&
          ((isConstEq(a0, maskBits(width)) && node(a1).width <= width) ||
           (isConstEq(a1, maskBits(width)) && node(a0).width <= width)))
        return mkConst(maskBits(width), width);
      break;
    case OpKind::Sub:
      if (isConstEq(a1, 0)) return resize(a0, width);
      if (a0 == a1) return mkConst(0, width);
      break;
    case OpKind::Mul:
      if (isConstEq(a0, 0) || isConstEq(a1, 0)) return mkConst(0, width);
      if (isConstEq(a0, 1)) return resize(a1, width);
      if (isConstEq(a1, 1)) return resize(a0, width);
      break;
    case OpKind::And:
      if (isConstEq(a0, 0) || isConstEq(a1, 0)) return mkConst(0, width);
      if (a0 == a1) return resize(a0, width);
      if (isConstEq(a0, maskBits(width)) && node(a1).width <= width)
        return resize(a1, width);
      if (isConstEq(a1, maskBits(width)) && node(a0).width <= width)
        return resize(a0, width);
      break;
    case OpKind::Eq:
    case OpKind::ULe:
    case OpKind::UGe:
    case OpKind::Le:
    case OpKind::Ge:
      if (a0 == a1) return mkConst(1, width);
      break;
    case OpKind::Ne:
    case OpKind::ULt:
    case OpKind::UGt:
    case OpKind::Lt:
    case OpKind::Gt:
      if (a0 == a1) return mkConst(0, width);
      break;
    case OpKind::Select: {
      std::uint64_t cv = 0;
      if (constValue(args[0], cv))
        return resize(cv != 0 ? args[1] : args[2], width);
      if (args[1] == args[2]) return resize(args[1], width);
      break;
    }
    case OpKind::ShlConst:
    case OpKind::ShrConst:
      if (imm < 0 || imm >= 64) return mkConst(0, width);
      if (imm == 0) return resize(a0, width);
      break;
    case OpKind::SarConst:
      if (imm == 0) return mkOp(OpKind::SExt, width, 0, {a0});
      break;
    case OpKind::Trunc:
    case OpKind::ZExt: {
      if (node(a0).width == width) return a0;
      // Collapse a resize-of-resize when the inner hop loses nothing the
      // outer hop keeps: trunc/zext_w(trunc/zext_w1(x)) == resize(x, w)
      // whenever w1 >= w or w1 >= width(x).
      const Expr& inner = node(a0);
      if (inner.kind == Expr::Kind::Op && isResizeKind(inner.op)) {
        int base = inner.args[0];
        if (inner.width >= width || inner.width >= node(base).width)
          return resize(base, width);
      }
      break;
    }
    case OpKind::SExt:
      if (node(a0).width == width) return a0;
      break;
    default:
      break;
  }

  Expr e;
  e.kind = Expr::Kind::Op;
  e.op = op;
  e.width = width;
  e.imm = imm;
  e.args = std::move(args);
  return intern(std::move(e));
}

}  // namespace mphls::sec
