#include "sec/symexec.h"

#include <algorithm>

#include "common/diag.h"

namespace mphls::sec {

namespace {

/// Run one block's op list over (vars, portCur); mirrors Interpreter::run.
/// Returns false (with `why`) on constructs outside the symbolic fragment.
bool runOps(ExprContext& ctx, const Function& fn, const Block& blk,
            std::vector<int>& vars, const std::vector<int>& portIn,
            std::vector<std::pair<int, int>>& portWrites,
            std::vector<int>& valNode, std::string& why) {
  auto setPortWrite = [&](int port, int node) {
    for (auto& [p, n] : portWrites) {
      if (p == port) {
        n = node;
        return;
      }
    }
    portWrites.emplace_back(port, node);
  };

  for (OpId oid : blk.ops) {
    const Op& o = fn.op(oid);
    switch (o.kind) {
      case OpKind::Nop:
        break;
      case OpKind::ReadPort: {
        if (!fn.port(o.port).isInput) {
          why = "read of an output port";
          return false;
        }
        valNode[o.result.index()] = portIn[o.port.index()];
        break;
      }
      case OpKind::LoadVar: {
        // The interpreter truncates the stored pattern to the result width.
        valNode[o.result.index()] =
            ctx.resize(vars[o.var.index()], fn.value(o.result).width);
        break;
      }
      case OpKind::StoreVar:
        vars[o.var.index()] = ctx.resize(valNode[o.args[0].index()],
                                         fn.var(o.var).width);
        break;
      case OpKind::WritePort:
        setPortWrite((int)o.port.index(),
                     ctx.resize(valNode[o.args[0].index()],
                                fn.port(o.port).width));
        break;
      default: {
        MPHLS_CHECK(opIsPure(o.kind), "unexpected op kind in symexec");
        std::vector<int> args(o.args.size());
        for (std::size_t i = 0; i < o.args.size(); ++i) {
          args[i] = valNode[o.args[i].index()];
          MPHLS_CHECK(args[i] >= 0, "use of value before definition");
        }
        valNode[o.result.index()] =
            ctx.mkOp(o.kind, fn.value(o.result).width, o.imm,
                     std::move(args));
        break;
      }
    }
  }
  // Sort port writes for deterministic comparison.
  std::sort(portWrites.begin(), portWrites.end());
  return true;
}

}  // namespace

SymBlockOut evalBlock(ExprContext& ctx, const Function& fn, BlockId b,
                      const SymState& entry) {
  SymBlockOut out;
  out.varOut = entry.var;
  out.valNode.assign(fn.numValues(), -1);
  const Block& blk = fn.block(b);
  out.ok = runOps(ctx, fn, blk, out.varOut, entry.portIn, out.portWrites,
                  out.valNode, out.why);
  if (!out.ok) return out;
  if (blk.term.kind == Terminator::Kind::Branch)
    out.branchCond = ctx.resize(out.valNode[blk.term.cond.index()], 1);
  return out;
}

SymFnOut evalFunction(ExprContext& ctx, const Function& fn,
                      const std::vector<int>& portIn, long maxBlockExecs) {
  SymFnOut out;
  std::vector<int> vars(fn.vars().size());
  for (const Variable& v : fn.vars())
    vars[v.id.index()] = ctx.mkConst(0, v.width);

  std::vector<std::pair<int, int>> portWrites;
  std::vector<int> valNode;
  BlockId cur = fn.entry();
  for (long execs = 0;; ++execs) {
    if (execs >= maxBlockExecs) {
      out.why = "block-execution budget exhausted";
      return out;
    }
    const Block& blk = fn.block(cur);
    valNode.assign(fn.numValues(), -1);
    std::vector<std::pair<int, int>> blockWrites;
    if (!runOps(ctx, fn, blk, vars, portIn, blockWrites, valNode, out.why))
      return out;
    for (auto& [p, n] : blockWrites) {
      bool found = false;
      for (auto& [fp, fnNode] : portWrites) {
        if (fp == p) {
          fnNode = n;
          found = true;
        }
      }
      if (!found) portWrites.emplace_back(p, n);
    }
    if (blk.term.kind == Terminator::Kind::Return) break;
    if (blk.term.kind == Terminator::Kind::Jump) {
      cur = blk.term.target;
      continue;
    }
    std::uint64_t cv = 0;
    int cond = ctx.resize(valNode[blk.term.cond.index()], 1);
    if (!ctx.constValue(cond, cv)) {
      out.why = "branch condition does not constant-fold";
      return out;
    }
    cur = cv != 0 ? blk.term.target : blk.term.elseTarget;
  }
  std::sort(portWrites.begin(), portWrites.end());
  out.portFinal = std::move(portWrites);
  out.ok = true;
  return out;
}

}  // namespace mphls::sec
