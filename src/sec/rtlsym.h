// Symbolic execution of the synthesized FSM + datapath, one basic block at
// a time. Mirrors rtl/rtlsim.cpp state-for-state: multicycle completions,
// FU issue, mux-leg source resolution with wiring transforms, and the
// compute-then-commit register/port semantics — but over expression DAGs
// instead of concrete values.
#pragma once

#include <string>
#include <vector>

#include "rtl/design.h"
#include "sec/expr.h"

namespace mphls::sec {

struct RtlSymOut {
  /// Per register index: node after the block's last commit (entry node
  /// when the block never writes the register).
  std::vector<int> regOut;
  /// Last value driven per output port (port index, node at the port's
  /// width), sorted by port index.
  std::vector<std::pair<int, int>> portWrites;
  int branchCond = -1;  ///< width-1 node steering the conditional exit
  bool ok = true;
  std::string why;  ///< first unsupported construct when !ok
};

/// Execute the controller states of block `b` (steps 0..numSteps-1) with
/// symbolic register file `regIn` (one node per register) and stable input
/// ports `portIn` (one node per PortId, -1 for outputs).
[[nodiscard]] RtlSymOut evalRtlBlock(ExprContext& ctx, const RtlDesign& d,
                                     BlockId b,
                                     const std::vector<int>& regIn,
                                     const std::vector<int>& portIn);

}  // namespace mphls::sec
