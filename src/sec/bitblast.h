// Bit-blasting: lower expression DAGs to an AND-inverter graph, Tseitin-
// encode into CNF, and decide miter equivalence with the CDCL solver.
//
// The lowering mirrors Interpreter::evalPure bit-for-bit (same truncation,
// sign-extension, shift-clamp and divide-by-zero conventions), so a SAT
// "Equal" verdict really is equivalence under mphls arithmetic.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sec/expr.h"
#include "sec/sat.h"

namespace mphls::sec {

/// Conflict budget applied to each obligation; exhausting it yields
/// Verdict::Unknown, which every caller treats as a failed proof.
inline constexpr long kDefaultConflictBudget = 200000;

struct ProveResult {
  enum class Verdict { Equal, NotEqual, Unknown };
  Verdict verdict = Verdict::Unknown;
  /// For NotEqual: witness assignment, one entry per Var node reachable
  /// from the miter (name -> raw pattern).
  std::vector<std::pair<std::string, std::uint64_t>> counterexample;
  long conflicts = 0;
  bool structural = false;  ///< discharged by node identity, no SAT call
  [[nodiscard]] bool equal() const { return verdict == Verdict::Equal; }
};

/// Decide whether nodes `a` and `b` (same width) agree on every input
/// satisfying all `assumptions` (1-bit nodes required to be 1).
[[nodiscard]] ProveResult proveEqual(
    const ExprContext& ctx, int a, int b,
    const std::vector<int>& assumptions = {},
    long conflictBudget = kDefaultConflictBudget);

/// Hash-consed AND-inverter layer over a SAT solver. Literals are solver
/// literals; inversion is the low bit, constants fold structurally.
class Aig {
 public:
  explicit Aig(SatSolver& s);

  [[nodiscard]] int falseLit() const { return false_; }
  [[nodiscard]] int trueLit() const { return SatSolver::neg(false_); }
  static int neg(int l) { return SatSolver::neg(l); }

  int input();  ///< fresh unconstrained literal
  int andL(int a, int b);
  int orL(int a, int b) { return neg(andL(neg(a), neg(b))); }
  int xorL(int a, int b);
  int muxL(int c, int t, int f) { return orL(andL(c, t), andL(neg(c), f)); }
  void assertTrue(int l);

  [[nodiscard]] SatSolver& solver() { return s_; }

 private:
  SatSolver& s_;
  int false_ = 0;
  std::map<std::pair<int, int>, int> andCache_;
  std::map<std::pair<int, int>, int> xorCache_;
};

/// Expression-DAG to AIG lowering with per-node memoization. Exposed for
/// unit tests; proveEqual is the normal entry point.
class BitBlaster {
 public:
  BitBlaster(const ExprContext& ctx, Aig& aig) : ctx_(ctx), aig_(aig) {}

  /// LSB-first literal vector for `node`, length == node width.
  const std::vector<int>& bits(int node);

  /// Var nodes encountered so far with their input literals (model
  /// extraction for counterexamples).
  [[nodiscard]] const std::vector<std::pair<int, std::vector<int>>>& inputs()
      const {
    return inputs_;
  }

 private:
  std::vector<int> lower(const Expr& e);

  const ExprContext& ctx_;
  Aig& aig_;
  std::map<int, std::vector<int>> memo_;
  std::vector<std::pair<int, std::vector<int>>> inputs_;
};

}  // namespace mphls::sec
