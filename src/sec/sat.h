// Minimal CDCL SAT solver for miter equivalence queries.
//
// Standard architecture: two-watched-literal propagation, first-UIP conflict
// analysis with clause learning, VSIDS-style variable activity, and Luby
// restarts. Deliberately small (no clause deletion, no preprocessing): the
// CNFs bit-blasted from per-block proof obligations are tiny by SAT
// standards, and a conflict budget turns pathological instances into an
// explicit Unknown rather than a hang.
#pragma once

#include <cstdint>
#include <vector>

namespace mphls::sec {

/// Literal encoding: 2*var for the positive literal, 2*var+1 for the
/// negation. Variables are dense indices from newVar().
class SatSolver {
 public:
  enum class Result { Sat, Unsat, Unknown };

  static int lit(int var, bool negated) { return 2 * var + (negated ? 1 : 0); }
  static int neg(int l) { return l ^ 1; }
  static int varOf(int l) { return l >> 1; }

  int newVar();
  [[nodiscard]] int numVars() const { return (int)assign_.size(); }

  /// Add a clause (disjunction of literals). An empty clause makes the
  /// instance trivially unsatisfiable. Must be called before solve().
  void addClause(std::vector<int> lits);

  /// Decide satisfiability. `conflictBudget` < 0 means unlimited; when the
  /// budget is exhausted the result is Unknown (callers treat that as a
  /// failed proof, never as success).
  Result solve(long conflictBudget = -1);

  /// Model value of a variable after solve() returned Sat.
  [[nodiscard]] bool modelValue(int var) const {
    return assign_[(std::size_t)var] == 1;
  }

  [[nodiscard]] long conflicts() const { return conflicts_; }

 private:
  struct Clause {
    std::vector<int> lits;  ///< lits[0] is the asserting literal for reasons
  };

  // -1 unassigned, 0 false, 1 true (value of the *variable*).
  [[nodiscard]] int valueLit(int l) const {
    int v = assign_[(std::size_t)varOf(l)];
    if (v < 0) return -1;
    return (l & 1) ? 1 - v : v;
  }

  bool enqueue(int l, int reasonClause);
  int propagate();  ///< returns conflicting clause index or -1
  void analyze(int conflClause, std::vector<int>& learnt, int& btLevel);
  void backtrackTo(int level);
  int pickBranchVar();
  void bumpVar(int var);
  void attach(int clauseIdx);
  [[nodiscard]] int decisionLevel() const { return (int)trailLim_.size(); }

  std::vector<Clause> clauses_;
  std::vector<int> units_;
  std::vector<std::vector<int>> watches_;  ///< per literal: clause indices
  std::vector<signed char> assign_;
  std::vector<int> level_;
  std::vector<int> reason_;
  std::vector<double> activity_;
  std::vector<signed char> phase_;  ///< saved polarity per variable
  std::vector<int> trail_;
  std::vector<int> trailLim_;
  std::size_t qhead_ = 0;
  double varInc_ = 1.0;
  long conflicts_ = 0;
  bool ok_ = true;
};

}  // namespace mphls::sec
