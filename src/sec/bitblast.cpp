#include "sec/bitblast.h"

#include <algorithm>

#include "common/bitutil.h"
#include "common/diag.h"

namespace mphls::sec {

// ---------------------------------------------------------------- Aig ----

Aig::Aig(SatSolver& s) : s_(s) {
  int v = s_.newVar();
  false_ = SatSolver::lit(v, false);
  s_.addClause({SatSolver::neg(false_)});
}

int Aig::input() { return SatSolver::lit(s_.newVar(), false); }

void Aig::assertTrue(int l) {
  if (l == trueLit()) return;
  if (l == falseLit()) {
    s_.addClause({});
    return;
  }
  s_.addClause({l});
}

int Aig::andL(int a, int b) {
  if (a == falseLit() || b == falseLit()) return falseLit();
  if (a == trueLit()) return b;
  if (b == trueLit()) return a;
  if (a == b) return a;
  if (a == neg(b)) return falseLit();
  auto key = std::minmax(a, b);
  auto it = andCache_.find(key);
  if (it != andCache_.end()) return it->second;
  int o = input();
  s_.addClause({neg(o), a});
  s_.addClause({neg(o), b});
  s_.addClause({o, neg(a), neg(b)});
  andCache_.emplace(key, o);
  return o;
}

int Aig::xorL(int a, int b) {
  if (a == falseLit()) return b;
  if (b == falseLit()) return a;
  if (a == trueLit()) return neg(b);
  if (b == trueLit()) return neg(a);
  if (a == b) return falseLit();
  if (a == neg(b)) return trueLit();
  auto key = std::minmax(a, b);
  auto it = xorCache_.find(key);
  if (it != xorCache_.end()) return it->second;
  int o = input();
  s_.addClause({neg(o), a, b});
  s_.addClause({neg(o), neg(a), neg(b)});
  s_.addClause({o, neg(a), b});
  s_.addClause({o, a, neg(b)});
  xorCache_.emplace(key, o);
  return o;
}

// ---------------------------------------------------------- vector ops ----

namespace {

using Vec = std::vector<int>;

Vec zeros(Aig& g, std::size_t n) { return Vec(n, g.falseLit()); }
Vec ones(Aig& g, std::size_t n) { return Vec(n, g.trueLit()); }

Vec truncTo(const Vec& a, std::size_t n) { return Vec(a.begin(), a.begin() + (long)n); }

Vec zextTo(Aig& g, Vec a, std::size_t n) {
  a.resize(n, g.falseLit());
  return a;
}

Vec zextOrTrunc(Aig& g, const Vec& a, std::size_t n) {
  return a.size() >= n ? truncTo(a, n) : zextTo(g, a, n);
}

Vec sextTo(Vec a, std::size_t n) {
  int sign = a.back();
  a.resize(n, sign);
  return a;
}

Vec sextOrTrunc(const Vec& a, std::size_t n) {
  return a.size() >= n ? truncTo(a, n) : sextTo(a, n);
}

Vec notVec(const Vec& a) {
  Vec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = Aig::neg(a[i]);
  return r;
}

/// Ripple-carry a + b + cin; optional carry-out.
Vec adder(Aig& g, const Vec& a, const Vec& b, int cin, int* cout = nullptr) {
  MPHLS_CHECK(a.size() == b.size(), "adder width mismatch");
  Vec s(a.size());
  int c = cin;
  for (std::size_t i = 0; i < a.size(); ++i) {
    int axb = g.xorL(a[i], b[i]);
    s[i] = g.xorL(axb, c);
    c = g.orL(g.andL(a[i], b[i]), g.andL(c, axb));
  }
  if (cout != nullptr) *cout = c;
  return s;
}

Vec negVec(Aig& g, const Vec& a) {
  return adder(g, notVec(a), zeros(g, a.size()), g.trueLit());
}

Vec muxVec(Aig& g, int c, const Vec& t, const Vec& f) {
  MPHLS_CHECK(t.size() == f.size(), "mux width mismatch");
  Vec r(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) r[i] = g.muxL(c, t[i], f[i]);
  return r;
}

int orReduce(Aig& g, const Vec& a) {
  int r = g.falseLit();
  for (int l : a) r = g.orL(r, l);
  return r;
}

int andReduce(Aig& g, const Vec& a) {
  int r = g.trueLit();
  for (int l : a) r = g.andL(r, l);
  return r;
}

int eqVec(Aig& g, const Vec& a, const Vec& b) {
  MPHLS_CHECK(a.size() == b.size(), "eq width mismatch");
  int r = g.trueLit();
  for (std::size_t i = 0; i < a.size(); ++i)
    r = g.andL(r, Aig::neg(g.xorL(a[i], b[i])));
  return r;
}

/// Unsigned a < b, MSB-first compare chain.
int ultVec(Aig& g, const Vec& a, const Vec& b) {
  MPHLS_CHECK(a.size() == b.size(), "ult width mismatch");
  int lt = g.falseLit();
  int eq = g.trueLit();
  for (std::size_t i = a.size(); i > 0; --i) {
    int ai = a[i - 1];
    int bi = b[i - 1];
    lt = g.orL(lt, g.andL(eq, g.andL(Aig::neg(ai), bi)));
    eq = g.andL(eq, Aig::neg(g.xorL(ai, bi)));
  }
  return lt;
}

/// Signed a < b on equal-width vectors: flip MSBs, compare unsigned.
int sltVec(Aig& g, Vec a, Vec b) {
  a.back() = Aig::neg(a.back());
  b.back() = Aig::neg(b.back());
  return ultVec(g, a, b);
}

Vec mulVec(Aig& g, const Vec& a, const Vec& b, std::size_t w) {
  Vec A = zextOrTrunc(g, a, w);
  Vec B = zextOrTrunc(g, b, w);
  Vec acc = zeros(g, w);
  for (std::size_t i = 0; i < w; ++i) {
    Vec addend(w, g.falseLit());
    for (std::size_t j = i; j < w; ++j) addend[j] = g.andL(A[j - i], B[i]);
    acc = adder(g, acc, addend, g.falseLit());
  }
  return acc;
}

/// Restoring division of the unsigned values of `a` by `b`. Quotient has
/// a.size() bits, remainder max(a.size(), b.size()) bits. b == 0 gives
/// quotient all-ones, remainder == a (callers gate that case).
std::pair<Vec, Vec> udivmod(Aig& g, const Vec& a, const Vec& b) {
  std::size_t W = std::max(a.size(), b.size());
  Vec d = zextTo(g, b, W + 1);
  Vec r = zeros(g, W + 1);
  Vec q(a.size(), g.falseLit());
  for (std::size_t i = a.size(); i > 0; --i) {
    Vec r2(W + 1);
    r2[0] = a[i - 1];
    for (std::size_t j = 1; j <= W; ++j) r2[j] = r[j - 1];
    int noBorrow = 0;
    Vec diff = adder(g, r2, notVec(d), g.trueLit(), &noBorrow);
    r = muxVec(g, noBorrow, diff, r2);
    q[i - 1] = noBorrow;
  }
  r.resize(W);
  return {std::move(q), std::move(r)};
}

Vec shlConstVec(Aig& g, const Vec& a, std::size_t sh) {
  Vec r(a.size(), g.falseLit());
  for (std::size_t i = sh; i < a.size(); ++i) r[i] = a[i - sh];
  return r;
}

Vec shrConstVec(Aig& g, const Vec& a, std::size_t sh) {
  Vec r(a.size(), g.falseLit());
  for (std::size_t i = 0; i + sh < a.size(); ++i) r[i] = a[i + sh];
  return r;
}

Vec sarConstVec(const Vec& a, std::size_t sh) {
  Vec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    r[i] = i + sh < a.size() ? a[i + sh] : a.back();
  return r;
}

}  // namespace

// ---------------------------------------------------------- BitBlaster ----

const std::vector<int>& BitBlaster::bits(int node) {
  auto it = memo_.find(node);
  if (it != memo_.end()) return it->second;
  const Expr& e = ctx_.node(node);
  Vec v = lower(e);
  MPHLS_CHECK((int)v.size() == e.width, "blasted width mismatch");
  const std::vector<int>& slot = memo_.emplace(node, std::move(v)).first->second;
  if (e.kind == Expr::Kind::Var) inputs_.emplace_back(node, slot);
  return slot;
}

std::vector<int> BitBlaster::lower(const Expr& e) {
  Aig& g = aig_;
  std::size_t w = (std::size_t)e.width;

  if (e.kind == Expr::Kind::Var) {
    Vec v(w);
    for (std::size_t i = 0; i < w; ++i) v[i] = g.input();
    return v;
  }
  if (e.kind == Expr::Kind::Const) {
    Vec v(w);
    for (std::size_t i = 0; i < w; ++i)
      v[i] = (((std::uint64_t)e.imm >> i) & 1) != 0 ? g.trueLit()
                                                    : g.falseLit();
    return v;
  }

  // Operation nodes. Operand vectors first.
  std::vector<Vec> as(e.args.size());
  for (std::size_t i = 0; i < e.args.size(); ++i) as[i] = bits(e.args[i]);

  switch (e.op) {
    case OpKind::Trunc:
    case OpKind::ZExt:
      return zextOrTrunc(g, as[0], w);
    case OpKind::SExt:
      return sextOrTrunc(as[0], w);
    case OpKind::Not: {
      Vec r(w, g.trueLit());
      for (std::size_t i = 0; i < w && i < as[0].size(); ++i)
        r[i] = Aig::neg(as[0][i]);
      return r;
    }
    case OpKind::ShlConst: {
      if (e.imm < 0 || e.imm >= 64) return zeros(g, w);
      Vec x = zextOrTrunc(g, as[0], w);
      return shlConstVec(g, x, (std::size_t)e.imm);
    }
    case OpKind::ShrConst: {
      if (e.imm < 0 || e.imm >= 64) return zeros(g, w);
      Vec r(w, g.falseLit());
      for (std::size_t i = 0; i + (std::size_t)e.imm < as[0].size() && i < w;
           ++i)
        r[i] = as[0][i + (std::size_t)e.imm];
      return r;
    }
    case OpKind::SarConst: {
      std::size_t sh =
          e.imm < 0 ? 0 : (e.imm > 63 ? 63 : (std::size_t)e.imm);
      Vec r(w);
      for (std::size_t i = 0; i < w; ++i)
        r[i] = i + sh < as[0].size() ? as[0][i + sh] : as[0].back();
      return r;
    }
    case OpKind::Add:
      return adder(g, zextOrTrunc(g, as[0], w), zextOrTrunc(g, as[1], w),
                   g.falseLit());
    case OpKind::Sub:
      return adder(g, zextOrTrunc(g, as[0], w),
                   notVec(zextOrTrunc(g, as[1], w)), g.trueLit());
    case OpKind::Mul:
      return mulVec(g, as[0], as[1], w);
    case OpKind::And:
    case OpKind::Or:
    case OpKind::Xor: {
      Vec a = zextOrTrunc(g, as[0], w);
      Vec b = zextOrTrunc(g, as[1], w);
      Vec r(w);
      for (std::size_t i = 0; i < w; ++i)
        r[i] = e.op == OpKind::And  ? g.andL(a[i], b[i])
               : e.op == OpKind::Or ? g.orL(a[i], b[i])
                                    : g.xorL(a[i], b[i]);
      return r;
    }
    case OpKind::Shl: {
      Vec x = zextOrTrunc(g, as[0], w);
      const Vec& amt = as[1];
      for (std::size_t k = 0; k < amt.size(); ++k) {
        if (k <= 5 && ((std::size_t)1 << k) < w)
          x = muxVec(g, amt[k], shlConstVec(g, x, (std::size_t)1 << k), x);
        else
          x = muxVec(g, amt[k], zeros(g, w), x);
      }
      return x;
    }
    case OpKind::Shr: {
      Vec x = as[0];
      const Vec& amt = as[1];
      for (std::size_t k = 0; k < amt.size(); ++k) {
        if (k <= 5 && ((std::size_t)1 << k) < x.size())
          x = muxVec(g, amt[k], shrConstVec(g, x, (std::size_t)1 << k), x);
        else
          x = muxVec(g, amt[k], zeros(g, x.size()), x);
      }
      return zextOrTrunc(g, x, w);
    }
    case OpKind::Sar: {
      // Work wide enough that every result bit exists pre-truncation; the
      // barrel saturates at shift 63, matching evalPure's clamp.
      std::size_t W = std::max(w, as[0].size());
      Vec x = sextTo(as[0], W);
      const Vec& amt = as[1];
      for (std::size_t k = 0; k < amt.size(); ++k) {
        std::size_t sh = k <= 5 ? ((std::size_t)1 << k) : 63;
        x = muxVec(g, amt[k], sarConstVec(x, sh), x);
      }
      return truncTo(x, w);
    }
    case OpKind::UDiv:
    case OpKind::UMod: {
      auto [q, r] = udivmod(g, as[0], as[1]);
      int bz = Aig::neg(orReduce(g, as[1]));
      if (e.op == OpKind::UDiv)
        return muxVec(g, bz, ones(g, w), zextOrTrunc(g, q, w));
      return muxVec(g, bz, zeros(g, w), zextOrTrunc(g, r, w));
    }
    case OpKind::Div:
    case OpKind::Mod: {
      std::size_t W = std::max(as[0].size(), as[1].size());
      int sa = as[0].back();
      int sb = as[1].back();
      int bz = Aig::neg(orReduce(g, as[1]));   // divisor == 0
      int bm1 = andReduce(g, as[1]);           // divisor == -1
      Vec sA = sextTo(as[0], W);
      Vec sB = sextTo(as[1], W);
      Vec absA = muxVec(g, sa, negVec(g, sA), sA);
      Vec absB = muxVec(g, sb, negVec(g, sB), sB);
      auto [q, r] = udivmod(g, absA, absB);
      if (e.op == OpKind::Div) {
        Vec qv = zextOrTrunc(g, q, w);
        Vec qs = muxVec(g, g.xorL(sa, sb), negVec(g, qv), qv);
        Vec negCase = negVec(g, sextOrTrunc(as[0], w));
        return muxVec(g, bz, ones(g, w), muxVec(g, bm1, negCase, qs));
      }
      Vec rv = zextOrTrunc(g, r, w);
      Vec rs = muxVec(g, sa, negVec(g, rv), rv);
      return muxVec(g, g.orL(bz, bm1), zeros(g, w), rs);
    }
    case OpKind::Eq:
    case OpKind::Ne: {
      std::size_t wc = std::max(as[0].size(), as[1].size());
      int eq = eqVec(g, zextTo(g, as[0], wc), zextTo(g, as[1], wc));
      Vec r = zeros(g, w);
      r[0] = e.op == OpKind::Eq ? eq : Aig::neg(eq);
      return r;
    }
    case OpKind::ULt:
    case OpKind::ULe:
    case OpKind::UGt:
    case OpKind::UGe:
    case OpKind::Lt:
    case OpKind::Le:
    case OpKind::Gt:
    case OpKind::Ge: {
      std::size_t wc = std::max(as[0].size(), as[1].size());
      bool isSigned = e.op == OpKind::Lt || e.op == OpKind::Le ||
                      e.op == OpKind::Gt || e.op == OpKind::Ge;
      Vec a = isSigned ? sextTo(as[0], wc) : zextTo(g, as[0], wc);
      Vec b = isSigned ? sextTo(as[1], wc) : zextTo(g, as[1], wc);
      int bit = 0;
      switch (e.op) {
        case OpKind::ULt: bit = ultVec(g, a, b); break;
        case OpKind::UGt: bit = ultVec(g, b, a); break;
        case OpKind::ULe: bit = Aig::neg(ultVec(g, b, a)); break;
        case OpKind::UGe: bit = Aig::neg(ultVec(g, a, b)); break;
        case OpKind::Lt: bit = sltVec(g, a, b); break;
        case OpKind::Gt: bit = sltVec(g, b, a); break;
        case OpKind::Le: bit = Aig::neg(sltVec(g, b, a)); break;
        case OpKind::Ge: bit = Aig::neg(sltVec(g, a, b)); break;
        default: break;
      }
      Vec r = zeros(g, w);
      r[0] = bit;
      return r;
    }
    case OpKind::Select: {
      int c = orReduce(g, as[0]);
      return muxVec(g, c, zextOrTrunc(g, as[1], w),
                    zextOrTrunc(g, as[2], w));
    }
    default:
      MPHLS_CHECK(false, "unexpected op in bit-blaster: " << opName(e.op));
      return {};
  }
}

// ----------------------------------------------------------- proveEqual ----

ProveResult proveEqual(const ExprContext& ctx, int a, int b,
                       const std::vector<int>& assumptions,
                       long conflictBudget) {
  MPHLS_CHECK(ctx.node(a).width == ctx.node(b).width,
              "proveEqual width mismatch: " << ctx.node(a).width << " vs "
                                            << ctx.node(b).width);
  ProveResult res;
  if (a == b) {
    res.verdict = ProveResult::Verdict::Equal;
    res.structural = true;
    return res;
  }

  SatSolver solver;
  Aig aig(solver);
  BitBlaster bl(ctx, aig);

  // Record Var-node input literals for counterexamples: walk all nodes the
  // blaster touches by blasting the roots (the memoized bits() calls hit
  // every reachable node).
  for (int n : assumptions) {
    const std::vector<int>& v = bl.bits(n);
    MPHLS_CHECK(v.size() == 1, "assumption must be 1-bit");
    aig.assertTrue(v[0]);
  }
  const std::vector<int> va = bl.bits(a);
  const std::vector<int> vb = bl.bits(b);
  int miter = aig.falseLit();
  for (std::size_t i = 0; i < va.size(); ++i)
    miter = aig.orL(miter, aig.xorL(va[i], vb[i]));
  aig.assertTrue(miter);

  SatSolver::Result sr = solver.solve(conflictBudget);
  res.conflicts = solver.conflicts();
  switch (sr) {
    case SatSolver::Result::Unsat:
      res.verdict = ProveResult::Verdict::Equal;
      break;
    case SatSolver::Result::Unknown:
      res.verdict = ProveResult::Verdict::Unknown;
      break;
    case SatSolver::Result::Sat: {
      res.verdict = ProveResult::Verdict::NotEqual;
      for (const auto& [nodeId, lits] : bl.inputs()) {
        std::uint64_t v = 0;
        for (std::size_t i = 0; i < lits.size(); ++i) {
          bool bitVal = solver.modelValue(SatSolver::varOf(lits[i]));
          if ((lits[i] & 1) != 0) bitVal = !bitVal;
          if (bitVal) v |= (std::uint64_t)1 << i;
        }
        res.counterexample.emplace_back(ctx.node(nodeId).name, v);
      }
      break;
    }
  }
  return res;
}

}  // namespace mphls::sec
