// Sequential behavioral-vs-RTL equivalence proof.
//
// Decomposition: the controller executes one basic block as a fixed run of
// states, so whole-run equivalence follows inductively from three per-block
// facts, each decidable on expression DAGs:
//   1. control structure: the state graph mirrors the CFG (first state of
//      each transfer target, fall-through chains, halt on Return);
//   2. data: starting from an arbitrary register file constrained only by
//      the correspondence invariant "for every live-in variable v stored in
//      register r: varVal == trunc(regVal[r], width(v))", the block's RTL
//      execution re-establishes the invariant for every live-out variable
//      and drives identical values on every written output port;
//   3. steering: the RTL branch condition equals the behavioral one.
// Loops need no extra induction: their bodies are blocks, and the entry
// symbols quantify over every iteration's register file at once.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "check/report.h"
#include "rtl/design.h"
#include "sec/bitblast.h"
#include "sec/expr.h"

namespace mphls::sec {

struct ProveOptions {
  long conflictBudget = kDefaultConflictBudget;
};

/// Prove the design's datapath+controller equivalent to its behavioral
/// function. Error findings (ids sec.rtl.*, sec.budget-exhausted) mean the
/// proof failed; an empty/clean report is a proof.
[[nodiscard]] CheckReport proveEquivalence(const RtlDesign& d,
                                           const ProveOptions& opts = {});

/// Discharge one obligation `a == b` (under optional 1-bit assumptions):
/// structural identity first, SAT miter second. On failure appends an
/// error finding (`id`, `where`, message built from `what` plus the
/// counterexample). Updates the sec.* metrics. Returns true on success.
/// When `cexOut` is given and still empty, a NotEqual verdict stores its
/// witness assignment there (used by proveEquivalence to replay the first
/// counterexample on the bytecode co-sim).
bool dischargeEqual(ExprContext& ctx, int a, int b,
                    const std::vector<int>& assumptions, long conflictBudget,
                    const std::string& id, const std::string& where,
                    const std::string& what, CheckReport& rep,
                    std::vector<std::pair<std::string, std::uint64_t>>*
                        cexOut = nullptr);

}  // namespace mphls::sec
