// Hash-consed, width-typed expression DAGs for symbolic equivalence.
//
// Both the behavioral CDFG evaluator and the symbolic RTL executor lower
// into this representation; structural equality of node ids then discharges
// most proof obligations without touching the SAT solver. Nodes are
// normalized on construction (constant folding through Interpreter::evalPure,
// commutative-operand ordering, identity and strength rewrites), so two
// different but locally-equivalent computations tend to share one node.
//
// Width discipline mirrors the interpreter: every node denotes a value in
// [0, 2^width), i.e. the raw bit pattern the hardware would hold. Where the
// interpreter truncates (evalPure's `t()`), node construction truncates.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "ir/opcode.h"

namespace mphls::sec {

/// One DAG node. `Var` is a free symbolic input, `Const` a literal bit
/// pattern (stored in `imm`), `Op` an application of a pure OpKind.
struct Expr {
  enum class Kind { Var, Const, Op };
  Kind kind = Kind::Const;
  OpKind op = OpKind::Const;    ///< meaningful for Kind::Op
  int width = 1;                ///< result width in bits, [1, 64]
  std::int64_t imm = 0;         ///< const value, or *Const shift amount
  std::vector<int> args;        ///< operand node ids
  std::string name;             ///< meaningful for Kind::Var
};

/// Arena + hash-consing context. Node ids are indices into the arena and
/// are only meaningful relative to one context.
class ExprContext {
 public:
  /// Fresh symbolic input (never hash-consed: each call is a new symbol).
  int mkVar(std::string name, int width);

  /// Constant node; `value` is truncated to `width` bits.
  int mkConst(std::uint64_t value, int width);

  /// Operation node, normalized. `imm` matches the OpKind's use of Op::imm
  /// (shift amounts for *Const). Arguments must be valid node ids.
  int mkOp(OpKind op, int width, std::int64_t imm, std::vector<int> args);

  /// Reinterpret `node` at `width`: identity, Trunc, or ZExt. Matches
  /// truncBits() on raw patterns, which is how every narrowing/widening in
  /// the interpreter and the datapath behaves.
  int resize(int node, int width);

  [[nodiscard]] const Expr& node(int id) const { return nodes_[(std::size_t)id]; }
  [[nodiscard]] int numNodes() const { return (int)nodes_.size(); }

  /// True when `id` is a Const node; `value` receives its pattern.
  [[nodiscard]] bool constValue(int id, std::uint64_t& value) const;

 private:
  int intern(Expr e);

  std::vector<Expr> nodes_;
  // Structural key -> node id. std::map keeps this std-only and simple;
  // obligation DAGs are small.
  std::map<std::tuple<int, int, int, std::int64_t, std::vector<int>>, int>
      consed_;
};

}  // namespace mphls::sec
