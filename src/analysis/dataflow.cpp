#include "analysis/dataflow.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <optional>

#include "common/bitutil.h"
#include "ir/analysis.h"

namespace mphls {

InitState joinInit(InitState a, InitState b) {
  return a == b ? a : InitState::Maybe;
}

namespace {

/// After this many entries of one block, its state is forced to top — a
/// safety valve guaranteeing termination independent of widening details.
constexpr int kForceTopAfter = 200;

using VarState = std::vector<VarFact>;

/// A branch-condition operand traced back to the variable whose stored
/// pattern it equals. `signedExact` additionally means the operand's signed
/// interpretation equals the variable content's (no widening cast between).
struct TracedVar {
  VarId var;
  bool signedExact = true;
};

std::optional<TracedVar> traceToVar(const Function& fn, ValueId v) {
  TracedVar t;
  const Op* def = &fn.defOf(v);
  while (def->kind == OpKind::ZExt || def->kind == OpKind::Trunc) {
    // Only value-preserving casts: a cast to a narrower width truncates.
    if (fn.value(def->result).width < fn.value(def->args[0]).width)
      return std::nullopt;
    t.signedExact = false;
    def = &fn.defOf(def->args[0]);
  }
  if (def->kind != OpKind::LoadVar) return std::nullopt;
  const int loadW = fn.value(def->result).width;
  const int varW = fn.var(def->var).width;
  if (loadW < varW) return std::nullopt;  // the load truncates the content
  if (loadW != varW) t.signedExact = false;
  t.var = def->var;
  return t;
}

OpKind negatedCompare(OpKind k) {
  switch (k) {
    case OpKind::Eq: return OpKind::Ne;
    case OpKind::Ne: return OpKind::Eq;
    case OpKind::Lt: return OpKind::Ge;
    case OpKind::Le: return OpKind::Gt;
    case OpKind::Gt: return OpKind::Le;
    case OpKind::Ge: return OpKind::Lt;
    case OpKind::ULt: return OpKind::UGe;
    case OpKind::ULe: return OpKind::UGt;
    case OpKind::UGt: return OpKind::ULe;
    case OpKind::UGe: return OpKind::ULt;
    default: return k;
  }
}

OpKind reversedCompare(OpKind k) {
  switch (k) {
    case OpKind::Lt: return OpKind::Gt;
    case OpKind::Le: return OpKind::Ge;
    case OpKind::Gt: return OpKind::Lt;
    case OpKind::Ge: return OpKind::Le;
    case OpKind::ULt: return OpKind::UGt;
    case OpKind::ULe: return OpKind::UGe;
    case OpKind::UGt: return OpKind::ULt;
    case OpKind::UGe: return OpKind::ULe;
    default: return k;  // Eq / Ne are symmetric
  }
}

/// Tighten `fact` with "pattern <k> other" where `other` is the fact of the
/// comparison's opposite operand. Unsigned relations constrain the raw
/// pattern (valid through value-preserving casts); signed relations are
/// applied only when `signedExact`.
AbsVal constrain(AbsVal fact, OpKind k, const AbsVal& other,
                 bool signedExact) {
  switch (k) {
    case OpKind::Eq: {
      fact = fact.meetU(other.ulo, other.uhi);
      if (fact.isBottom) return fact;
      fact.zeros |= other.zeros;
      fact.ones |= other.ones & maskBits(fact.width);
      fact.normalize();
      // Equality is raw-pattern equality, so `other`'s signed bounds carry
      // over only when both sides sign-extend from the same width. After
      // width narrowing the operands of a compare can differ (e.g. a w12
      // zext against a w24 load): pattern 4095 is -1 at w12 but +4095 at
      // w24, and meeting the w12 signed range into the w24 fact would
      // wrongly cap it at 2047.
      if (signedExact && fact.width == other.width && !fact.isBottom)
        fact = fact.meetS(other.slo, other.shi);
      return fact;
    }
    case OpKind::Ne:
      if (!other.isConstant()) return fact;
      if (fact.isConstant() && fact.constValue() == other.constValue())
        return AbsVal::bottom(fact.width);
      if (fact.ulo == other.constValue() && fact.ulo < fact.uhi)
        return fact.meetU(fact.ulo + 1, fact.uhi);
      if (fact.uhi == other.constValue() && fact.ulo < fact.uhi)
        return fact.meetU(fact.ulo, fact.uhi - 1);
      return fact;
    case OpKind::ULt:
      return other.uhi == 0 ? AbsVal::bottom(fact.width)
                            : fact.meetU(0, other.uhi - 1);
    case OpKind::ULe:
      return fact.meetU(0, other.uhi);
    case OpKind::UGt:
      return other.ulo == ~0ULL ? AbsVal::bottom(fact.width)
                                : fact.meetU(other.ulo + 1, ~0ULL);
    case OpKind::UGe:
      return fact.meetU(other.ulo, ~0ULL);
    case OpKind::Lt:
      if (!signedExact) return fact;
      return other.shi == std::numeric_limits<std::int64_t>::min()
                 ? AbsVal::bottom(fact.width)
                 : fact.meetS(std::numeric_limits<std::int64_t>::min(),
                              other.shi - 1);
    case OpKind::Le:
      if (!signedExact) return fact;
      return fact.meetS(std::numeric_limits<std::int64_t>::min(), other.shi);
    case OpKind::Gt:
      if (!signedExact) return fact;
      return other.slo == std::numeric_limits<std::int64_t>::max()
                 ? AbsVal::bottom(fact.width)
                 : fact.meetS(other.slo + 1,
                              std::numeric_limits<std::int64_t>::max());
    case OpKind::Ge:
      if (!signedExact) return fact;
      return fact.meetS(other.slo,
                        std::numeric_limits<std::int64_t>::max());
    default:
      return fact;
  }
}

class Engine {
 public:
  explicit Engine(const Function& fn) : fn_(fn) {
    const auto rpo = reversePostOrder(fn);
    rpoIndex_.assign(fn.numBlocks(), (int)fn.numBlocks());
    for (std::size_t i = 0; i < rpo.size(); ++i)
      rpoIndex_[rpo[i].index()] = (int)i;
    entry_.resize(fn.numBlocks());
    enters_.assign(fn.numBlocks(), 0);
    inQueue_.assign(fn.numBlocks(), false);
  }

  AnalysisResult run() {
    // The entry block starts with every variable holding zero, not yet
    // written (the interpreter zero-initializes variable storage).
    VarState init(fn_.vars().size());
    for (const Variable& v : fn_.vars())
      init[v.id.index()] = {AbsVal::constant(0, v.width), InitState::No};
    entry_[fn_.entry().index()] = std::move(init);
    push(fn_.entry());

    AnalysisResult res;
    while (!queue_.empty()) {
      // Pull the queued block earliest in reverse post-order: predecessors
      // tend to settle before successors, which minimizes re-evaluation.
      auto it = std::min_element(queue_.begin(), queue_.end(),
                                 [&](BlockId a, BlockId b) {
                                   return rpoIndex_[a.index()] <
                                          rpoIndex_[b.index()];
                                 });
      BlockId id = *it;
      queue_.erase(it);
      inQueue_[id.index()] = false;
      ++res.iterations;
      evalBlock(id, /*record=*/nullptr);
    }

    // Fixpoint reached: one recording pass computes the published facts.
    res.valueFacts.reserve(fn_.numValues());
    for (const Value& v : fn_.values())
      res.valueFacts.push_back(AbsVal::bottom(v.width));
    res.varFacts.reserve(fn_.vars().size());
    for (const Variable& v : fn_.vars())
      res.varFacts.push_back(AbsVal::bottom(v.width));
    res.blockReachable.assign(fn_.numBlocks(), false);
    for (const Block& blk : fn_.blocks()) {
      if (!entry_[blk.id.index()]) continue;
      res.blockReachable[blk.id.index()] = true;
      evalBlock(blk.id, &res);
    }
    return res;
  }

 private:
  void push(BlockId id) {
    if (inQueue_[id.index()]) return;
    inQueue_[id.index()] = true;
    queue_.push_back(id);
  }

  /// Evaluate one block from its current entry state. Without `record`,
  /// propagates exit states to successors (fixpoint iteration); with it,
  /// stores value facts, variable joins, and lint evidence instead.
  void evalBlock(BlockId id, AnalysisResult* record) {
    const Block& blk = fn_.block(id);
    VarState vars = *entry_[id.index()];
    std::vector<AbsVal> facts(fn_.numValues(), AbsVal::bottom(1));

    if (record)
      for (std::size_t v = 0; v < vars.size(); ++v)
        record->varFacts[v] = AbsVal::join(record->varFacts[v], vars[v].val);

    for (OpId oid : blk.ops) {
      const Op& o = fn_.op(oid);
      switch (o.kind) {
        case OpKind::ReadPort:
          facts[o.result.index()] = AbsVal::top(fn_.value(o.result).width);
          break;
        case OpKind::LoadVar: {
          const VarFact& vf = vars[o.var.index()];
          facts[o.result.index()] =
              adaptFact(fn_.value(o.result).width, vf.val);
          if (record && vf.init == InitState::No)
            record->readsBeforeWrite.push_back(oid);
          break;
        }
        case OpKind::StoreVar: {
          VarFact& vf = vars[o.var.index()];
          vf.val = adaptFact(fn_.var(o.var).width, facts[o.args[0].index()]);
          vf.init = InitState::Yes;
          if (record)
            record->varFacts[o.var.index()] =
                AbsVal::join(record->varFacts[o.var.index()], vf.val);
          break;
        }
        case OpKind::WritePort:
        case OpKind::Nop:
          break;
        default: {
          std::vector<AbsVal> a;
          a.reserve(o.args.size());
          for (ValueId arg : o.args) a.push_back(facts[arg.index()]);
          facts[o.result.index()] =
              evalAbsOp(o.kind, fn_.value(o.result).width, o.imm, a);
          break;
        }
      }
      if (record && o.result.valid())
        record->valueFacts[o.result.index()] = facts[o.result.index()];
    }

    const Terminator& t = blk.term;
    switch (t.kind) {
      case Terminator::Kind::Return:
        break;
      case Terminator::Kind::Jump:
        if (!record) propagate(id, t.target, vars);
        break;
      case Terminator::Kind::Branch: {
        const AbsVal& c = facts[t.cond.index()];
        if (record) {
          if (c.isConstant())
            record->deadBranches.push_back({id, c.constValue() != 0});
          break;
        }
        for (bool taken : {true, false}) {
          if (c.isConstant() && (c.constValue() != 0) != taken) continue;
          VarState refined = vars;
          if (refineEdge(facts, t.cond, taken, refined))
            propagate(id, taken ? t.target : t.elseTarget,
                      std::move(refined));
        }
        break;
      }
    }
  }

  /// t_w(content) fact of a load / store adapting between value width and
  /// variable width (equal in frontend-produced IR; narrowing may skew).
  static AbsVal adaptFact(int w, const AbsVal& a) {
    return evalAbsOp(OpKind::Trunc, w, 0, {a});
  }

  /// Tighten `vars` with the constraint "cond == taken". Returns false when
  /// the constraint is unsatisfiable (the edge cannot execute).
  bool refineEdge(const std::vector<AbsVal>& facts, ValueId cond, bool taken,
                  VarState& vars) {
    const Op& def = fn_.defOf(cond);
    if (opIsCompare(def.kind)) {
      OpKind k = taken ? def.kind : negatedCompare(def.kind);
      const AbsVal& lf = facts[def.args[0].index()];
      const AbsVal& rf = facts[def.args[1].index()];
      if (auto lv = traceToVar(fn_, def.args[0])) {
        AbsVal& v = vars[lv->var.index()].val;
        v = constrain(v, k, rf, lv->signedExact);
        if (v.isBottom) return false;
      }
      if (auto rv = traceToVar(fn_, def.args[1])) {
        AbsVal& v = vars[rv->var.index()].val;
        v = constrain(v, reversedCompare(k), lf, rv->signedExact);
        if (v.isBottom) return false;
      }
      return true;
    }
    // A bare width-1 condition: on the taken edge the pattern is 1, else 0.
    if (auto cv = traceToVar(fn_, cond)) {
      AbsVal& v = vars[cv->var.index()].val;
      v = v.meetU(taken ? 1 : 0, taken ? 1 : 0);
      if (v.isBottom) return false;
    }
    return true;
  }

  void propagate(BlockId from, BlockId to, VarState vars) {
    auto& slot = entry_[to.index()];
    if (!slot) {
      slot = std::move(vars);
      ++enters_[to.index()];
      push(to);
      return;
    }
    // Back edge (by reverse post-order) => `to` is a loop header: widen so
    // ascending chains terminate. Plain joins elsewhere.
    const bool widenHere =
        rpoIndex_[to.index()] <= rpoIndex_[from.index()] &&
        enters_[to.index()] >= 2;
    const bool forceTop = enters_[to.index()] >= kForceTopAfter;
    bool changed = false;
    VarState& cur = *slot;
    for (std::size_t v = 0; v < cur.size(); ++v) {
      AbsVal next = AbsVal::join(cur[v].val, vars[v].val);
      if (widenHere) next = AbsVal::widen(cur[v].val, next);
      if (forceTop) next = AbsVal::top(next.width);
      const InitState ni = joinInit(cur[v].init, vars[v].init);
      if (!(next == cur[v].val) || ni != cur[v].init) {
        cur[v].val = next;
        cur[v].init = ni;
        changed = true;
      }
    }
    if (changed) {
      ++enters_[to.index()];
      push(to);
    }
  }

  const Function& fn_;
  std::vector<int> rpoIndex_;
  std::vector<std::optional<VarState>> entry_;
  std::vector<int> enters_;
  std::vector<bool> inQueue_;
  std::deque<BlockId> queue_;
};

}  // namespace

AnalysisResult analyzeFunction(const Function& fn) {
  return Engine(fn).run();
}

std::map<ValueId, std::string> factAnnotations(const Function& fn,
                                               const AnalysisResult& result) {
  std::map<ValueId, std::string> notes;
  for (const Value& v : fn.values()) {
    if (v.id.index() >= result.valueFacts.size()) continue;
    const AbsVal& f = result.valueFacts[v.id.index()];
    if (f.isBottom || f.isTop()) continue;
    notes.emplace(v.id, f.str());
  }
  return notes;
}

}  // namespace mphls
