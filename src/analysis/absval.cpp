#include "analysis/absval.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <sstream>

#include "common/bitutil.h"
#include "common/diag.h"

namespace mphls {

namespace {

using u64 = std::uint64_t;
using i64 = std::int64_t;
using i128 = __int128;

i64 sMinOf(int w) {
  return w == 64 ? std::numeric_limits<std::int64_t>::min()
                 : -(i64)(1ULL << (w - 1));
}

i64 sMaxOf(int w) { return (i64)(maskBits(w) >> 1); }

/// Abstract truncation to `w` bits of a pre-truncation integer range
/// [lo, hi] (the mathematical result before the mod-2^w wrap evalPure
/// applies). When the whole range lies inside one 2^w-aligned page the wrap
/// is a constant offset and the truncated range stays an interval; when it
/// spans a page boundary the truncated set wraps around and we give up.
AbsVal truncTo(int w, i128 lo, i128 hi) {
  if (lo > hi) return AbsVal::bottom(w);
  if ((lo >> w) != (hi >> w)) return AbsVal::top(w);
  const unsigned __int128 pageMask = (((unsigned __int128)1) << w) - 1;
  u64 l = (u64)((unsigned __int128)lo & pageMask);
  u64 h = (u64)((unsigned __int128)hi & pageMask);
  return AbsVal::fromUnsignedRange(w, l, h);
}

/// The fact for t_w(v) where `v` is described by `a` at its own width:
/// range through truncTo plus the low-bit known-bits, which truncation
/// preserves.
AbsVal adaptTo(int w, const AbsVal& a) {
  if (a.isBottom) return AbsVal::bottom(w);
  AbsVal r = truncTo(w, a.ulo, a.uhi);
  r.zeros |= a.zeros;  // normalize() re-adds the above-width zeros
  r.ones |= a.ones & maskBits(w);
  r.normalize();
  return r;
}

/// 0 / 1 / -1 (unknown) result of a comparison over facts.
int triCompare(OpKind k, const AbsVal& a, const AbsVal& b) {
  switch (k) {
    case OpKind::Eq:
    case OpKind::Ne: {
      int eq = -1;
      if ((a.ones & b.zeros) || (a.zeros & b.ones) || a.uhi < b.ulo ||
          b.uhi < a.ulo)
        eq = 0;
      else if (a.isConstant() && b.isConstant() &&
               a.constValue() == b.constValue())
        eq = 1;
      if (eq < 0) return -1;
      return k == OpKind::Eq ? eq : 1 - eq;
    }
    case OpKind::ULt:
      return a.uhi < b.ulo ? 1 : (a.ulo >= b.uhi ? 0 : -1);
    case OpKind::ULe:
      return a.uhi <= b.ulo ? 1 : (a.ulo > b.uhi ? 0 : -1);
    case OpKind::UGt:
      return b.uhi < a.ulo ? 1 : (b.ulo >= a.uhi ? 0 : -1);
    case OpKind::UGe:
      return b.uhi <= a.ulo ? 1 : (b.ulo > a.uhi ? 0 : -1);
    case OpKind::Lt:
      return a.shi < b.slo ? 1 : (a.slo >= b.shi ? 0 : -1);
    case OpKind::Le:
      return a.shi <= b.slo ? 1 : (a.slo > b.shi ? 0 : -1);
    case OpKind::Gt:
      return b.shi < a.slo ? 1 : (b.slo >= a.shi ? 0 : -1);
    case OpKind::Ge:
      return b.shi <= a.slo ? 1 : (b.slo > a.shi ? 0 : -1);
    default:
      MPHLS_CHECK(false, "triCompare on non-compare " << opName(k));
      return -1;
  }
}

/// Quotient range of [a] / [d] for a divisor interval of one sign
/// (0 excluded), truncation-toward-zero division, evaluated in 128 bits so
/// INT64_MIN / -1 cannot overflow.
AbsVal signedDivRange(int w, const AbsVal& a, i128 dl, i128 dh) {
  i128 lo = 0, hi = 0;
  bool first = true;
  for (i128 n : {(i128)a.slo, (i128)a.shi}) {
    for (i128 d : {dl, dh}) {
      i128 q = n / d;
      if (first || q < lo) lo = q;
      if (first || q > hi) hi = q;
      first = false;
    }
  }
  return truncTo(w, lo, hi);
}

}  // namespace

AbsVal AbsVal::top(int width) {
  AbsVal v;
  v.width = width;
  v.ulo = 0;
  v.uhi = maskBits(width);
  v.slo = sMinOf(width);
  v.shi = sMaxOf(width);
  v.zeros = ~maskBits(width);
  v.ones = 0;
  v.normalize();
  return v;
}

AbsVal AbsVal::bottom(int width) {
  AbsVal v;
  v.width = width;
  v.isBottom = true;
  v.ulo = 1;
  v.uhi = 0;
  v.slo = 1;
  v.shi = 0;
  v.zeros = ~0ULL;
  v.ones = ~0ULL;
  return v;
}

AbsVal AbsVal::constant(std::uint64_t v, int width) {
  const u64 t = truncBits(v, width);
  return fromUnsignedRange(width, t, t);
}

AbsVal AbsVal::fromUnsignedRange(int width, std::uint64_t lo,
                                 std::uint64_t hi) {
  AbsVal v;
  v.width = width;
  v.ulo = lo;
  v.uhi = hi;
  v.slo = sMinOf(width);
  v.shi = sMaxOf(width);
  v.zeros = 0;
  v.ones = 0;
  v.normalize();
  return v;
}

bool AbsVal::contains(std::uint64_t v) const {
  if (isBottom) return false;
  if (v < ulo || v > uhi) return false;
  const i64 s = signExtend(v, width);
  if (s < slo || s > shi) return false;
  return (v & zeros) == 0 && (v & ones) == ones;
}

bool AbsVal::isTop() const { return *this == top(width); }

int AbsVal::requiredUnsignedBits() const {
  const int b = std::bit_width(uhi);
  return std::clamp(b, 1, width);
}

void AbsVal::normalize() {
  const int w = width;
  const u64 m = maskBits(w);
  auto toBottom = [&] { *this = bottom(w); };
  if (isBottom) return toBottom();
  zeros |= ~m;
  if (zeros & ones) return toBottom();
  if (ulo > uhi || slo > shi) return toBottom();
  slo = std::max(slo, sMinOf(w));
  shi = std::min(shi, sMaxOf(w));
  uhi = std::min(uhi, m);
  if (slo > shi) return toBottom();

  const u64 sign = 1ULL << (w - 1);
  // Two rounds let a fact introduced by one reduction feed the others.
  for (int round = 0; round < 2; ++round) {
    // Known bits -> unsigned bounds.
    ulo = std::max(ulo, ones);
    uhi = std::min(uhi, m & ~zeros);
    if (ulo > uhi) return toBottom();
    // Unsigned bounds -> known bits: the leading bits shared by both
    // bounds are fixed for every pattern in between.
    const u64 diff = ulo ^ uhi;
    const int h = std::bit_width(diff);
    const u64 fixedMask = h >= 64 ? 0 : (~0ULL << h);
    const u64 newOnes = ulo & fixedMask;
    const u64 newZeros = ~ulo & fixedMask;
    if ((newOnes & zeros) || (newZeros & ones)) return toBottom();
    ones |= newOnes;
    zeros |= newZeros;
    // Unsigned -> signed (only when the range does not straddle the sign
    // boundary, where sign extension is monotone).
    if (uhi < sign) {
      slo = std::max(slo, (i64)ulo);
      shi = std::min(shi, (i64)uhi);
    } else if (ulo >= sign) {
      slo = std::max(slo, signExtend(ulo, w));
      shi = std::min(shi, signExtend(uhi, w));
    }
    if (slo > shi) return toBottom();
    // Signed -> unsigned.
    if (slo >= 0) {
      ulo = std::max(ulo, (u64)slo);
      uhi = std::min(uhi, (u64)shi);
    } else if (shi < 0) {
      ulo = std::max(ulo, (u64)slo & m);
      uhi = std::min(uhi, (u64)shi & m);
    }
    if (ulo > uhi) return toBottom();
  }
}

AbsVal AbsVal::join(const AbsVal& a, const AbsVal& b) {
  MPHLS_CHECK(a.width == b.width, "join of mismatched widths");
  if (a.isBottom) return b;
  if (b.isBottom) return a;
  AbsVal r;
  r.width = a.width;
  r.ulo = std::min(a.ulo, b.ulo);
  r.uhi = std::max(a.uhi, b.uhi);
  r.slo = std::min(a.slo, b.slo);
  r.shi = std::max(a.shi, b.shi);
  r.zeros = a.zeros & b.zeros;
  r.ones = a.ones & b.ones;
  r.normalize();
  return r;
}

AbsVal AbsVal::widen(const AbsVal& a, const AbsVal& b) {
  AbsVal j = join(a, b);
  if (a.isBottom || j.isBottom) return j;
  if (j.ulo < a.ulo) j.ulo = 0;
  if (j.uhi > a.uhi) {
    const int h = std::bit_width(j.uhi);
    j.uhi = h >= 64 ? ~0ULL : ((1ULL << h) - 1);
  }
  if (j.slo < a.slo) {
    if (j.slo >= 0) {
      j.slo = 0;
    } else if (j.slo != std::numeric_limits<std::int64_t>::min()) {
      const u64 c = std::bit_ceil((u64)(-j.slo));
      j.slo = c >= (1ULL << 63) ? std::numeric_limits<std::int64_t>::min()
                                : -(i64)c;
    }
  }
  if (j.shi > a.shi) {
    if (j.shi < 0) {
      j.shi = -1;
    } else {
      const int h = std::bit_width((u64)j.shi);
      j.shi = h >= 63 ? std::numeric_limits<std::int64_t>::max()
                      : (i64)((1ULL << h) - 1);
    }
  }
  j.normalize();
  return j;
}

AbsVal AbsVal::meet(const AbsVal& a, const AbsVal& b) {
  MPHLS_CHECK(a.width == b.width, "meet of mismatched widths");
  if (a.isBottom) return a;
  if (b.isBottom) return b;
  AbsVal r;
  r.width = a.width;
  r.ulo = std::max(a.ulo, b.ulo);
  r.uhi = std::min(a.uhi, b.uhi);
  r.slo = std::max(a.slo, b.slo);
  r.shi = std::min(a.shi, b.shi);
  r.zeros = a.zeros | b.zeros;
  r.ones = a.ones | b.ones;
  r.normalize();
  return r;
}

AbsVal AbsVal::meetU(std::uint64_t lo, std::uint64_t hi) const {
  AbsVal r = *this;
  if (r.isBottom) return r;
  r.ulo = std::max(r.ulo, lo);
  r.uhi = std::min(r.uhi, hi);
  r.normalize();
  return r;
}

AbsVal AbsVal::meetS(std::int64_t lo, std::int64_t hi) const {
  AbsVal r = *this;
  if (r.isBottom) return r;
  r.slo = std::max(r.slo, lo);
  r.shi = std::min(r.shi, hi);
  r.normalize();
  return r;
}

std::string AbsVal::str() const {
  if (isBottom) return "bot";
  std::ostringstream oss;
  if (isConstant()) {
    oss << "const " << ulo;
    if (slo < 0) oss << " (s " << slo << ")";
    return oss.str();
  }
  oss << "u[" << ulo << "," << uhi << "]";
  oss << " s[" << slo << "," << shi << "]";
  const u64 m = maskBits(width);
  if (((zeros | ones) & m) != 0) {
    oss << " b";
    for (int i = width - 1; i >= 0; --i) {
      const u64 bit = 1ULL << i;
      oss << ((zeros & bit) ? '0' : (ones & bit) ? '1' : 'x');
    }
  }
  return oss.str();
}

AbsVal evalAbsOp(OpKind kind, int width, std::int64_t imm,
                 const std::vector<AbsVal>& args) {
  const int w = width;
  const u64 m = maskBits(w);
  if (kind == OpKind::Const) return AbsVal::constant((u64)imm, w);
  MPHLS_CHECK(args.size() == (std::size_t)opArity(kind),
              "evalAbsOp arity mismatch for " << opName(kind));
  for (const AbsVal& a : args)
    if (a.isBottom) return AbsVal::bottom(w);
  const AbsVal& A = args[0];

  switch (kind) {
    case OpKind::Not: {
      AbsVal r = AbsVal::top(w);
      if (A.uhi <= m) {
        r.ulo = m - A.uhi;
        r.uhi = m - A.ulo;
      }
      r.zeros |= A.ones & m;
      r.ones |= A.zeros & m;
      r.normalize();
      return r;
    }
    case OpKind::Neg:
      return truncTo(w, -(i128)A.uhi, -(i128)A.ulo);
    case OpKind::Inc:
      return truncTo(w, (i128)A.ulo + 1, (i128)A.uhi + 1);
    case OpKind::Dec:
      return truncTo(w, (i128)A.ulo - 1, (i128)A.uhi - 1);

    case OpKind::ShlConst: {
      if (imm >= 64 || imm < 0) return AbsVal::constant(0, w);
      const int sh = (int)imm;
      AbsVal r = ((i128)std::bit_width(A.uhi) + sh <= 126)
                     ? truncTo(w, (i128)A.ulo << sh, (i128)A.uhi << sh)
                     : AbsVal::top(w);
      r.zeros |= (A.zeros << sh) | (sh ? maskBits(sh) : 0);
      r.ones |= (A.ones << sh) & m;
      r.normalize();
      return r;
    }
    case OpKind::ShrConst: {
      if (imm >= 64 || imm < 0) return AbsVal::constant(0, w);
      const int sh = (int)imm;
      AbsVal r = truncTo(w, (i128)(A.ulo >> sh), (i128)(A.uhi >> sh));
      r.zeros |= (A.zeros >> sh) | (sh ? ~(~0ULL >> sh) : 0);
      r.ones |= (A.ones >> sh) & m;
      r.normalize();
      return r;
    }
    case OpKind::SarConst: {
      const int sh = (int)std::clamp<std::int64_t>(imm, 0, 63);
      return truncTo(w, (i128)A.slo >> sh, (i128)A.shi >> sh);
    }

    case OpKind::Trunc:
    case OpKind::ZExt:
      return adaptTo(w, A);
    case OpKind::SExt:
      return truncTo(w, (i128)A.slo, (i128)A.shi);

    case OpKind::Add:
    case OpKind::Sub:
    case OpKind::Mul: {
      const AbsVal& B = args[1];
      AbsVal ur = AbsVal::top(w);
      AbsVal sr = AbsVal::top(w);
      // The raw pattern of arg i agrees with its signed view mod 2^width_i,
      // so the signed-range result is only valid at `w` when both operand
      // widths reach `w`.
      const bool sOk = A.width >= w && B.width >= w;
      if (kind == OpKind::Add) {
        ur = truncTo(w, (i128)A.ulo + B.ulo, (i128)A.uhi + B.uhi);
        if (sOk) sr = truncTo(w, (i128)A.slo + B.slo, (i128)A.shi + B.shi);
      } else if (kind == OpKind::Sub) {
        ur = truncTo(w, (i128)A.ulo - B.uhi, (i128)A.uhi - B.ulo);
        if (sOk) sr = truncTo(w, (i128)A.slo - B.shi, (i128)A.shi - B.slo);
      } else {
        // Guard the 128-bit product against overflow: safe when both
        // unsigned bounds fit 63 bits (product < 2^126). The signed
        // candidates always fit (|s| <= 2^63).
        if ((A.uhi >> 63) == 0 && (B.uhi >> 63) == 0)
          ur = truncTo(w, (i128)A.ulo * B.ulo, (i128)A.uhi * B.uhi);
        if (sOk) {
          i128 lo = 0, hi = 0;
          bool first = true;
          for (i128 x : {(i128)A.slo, (i128)A.shi})
            for (i128 y : {(i128)B.slo, (i128)B.shi}) {
              const i128 p = x * y;
              if (first || p < lo) lo = p;
              if (first || p > hi) hi = p;
              first = false;
            }
          sr = truncTo(w, lo, hi);
        }
      }
      return AbsVal::meet(ur, sr);
    }

    case OpKind::Div: {
      const AbsVal& B = args[1];
      AbsVal acc = AbsVal::bottom(w);
      if (B.contains(0))
        acc = AbsVal::join(acc, AbsVal::constant(maskBits(w), w));
      if (B.shi >= 1)
        acc = AbsVal::join(
            acc, signedDivRange(w, A, std::max<i128>(B.slo, 1), B.shi));
      if (B.slo <= -1)
        acc = AbsVal::join(
            acc, signedDivRange(w, A, B.slo, std::min<i128>(B.shi, -1)));
      return acc.isBottom ? AbsVal::top(w) : acc;
    }
    case OpKind::UDiv: {
      const AbsVal& B = args[1];
      AbsVal acc = AbsVal::bottom(w);
      if (B.ulo == 0)
        acc = AbsVal::join(acc, AbsVal::constant(maskBits(w), w));
      if (B.uhi >= 1) {
        const u64 dl = std::max<u64>(B.ulo, 1);
        acc = AbsVal::join(acc,
                           truncTo(w, (i128)(A.ulo / B.uhi), (i128)(A.uhi / dl)));
      }
      return acc.isBottom ? AbsVal::top(w) : acc;
    }
    case OpKind::Mod: {
      const AbsVal& B = args[1];
      AbsVal acc = AbsVal::bottom(w);
      if (B.contains(0)) acc = AbsVal::join(acc, AbsVal::constant(0, w));
      // Largest divisor magnitude over the nonzero part of B.
      i128 dmax = 0;
      if (B.shi >= 1) dmax = std::max(dmax, (i128)B.shi);
      if (B.slo <= -1) dmax = std::max(dmax, -(i128)B.slo);
      if (dmax > 0) {
        // |s0 % d| < |d| and the remainder keeps the numerator's sign; it
        // is also no larger in magnitude than the numerator itself.
        i128 lo = A.slo >= 0 ? 0 : std::max((i128)A.slo, -(dmax - 1));
        i128 hi = A.shi <= 0 ? 0 : std::min((i128)A.shi, dmax - 1);
        acc = AbsVal::join(acc, truncTo(w, lo, hi));
      }
      return acc.isBottom ? AbsVal::top(w) : acc;
    }
    case OpKind::UMod: {
      const AbsVal& B = args[1];
      AbsVal acc = AbsVal::bottom(w);
      if (B.ulo == 0) acc = AbsVal::join(acc, AbsVal::constant(0, w));
      if (B.uhi >= 1) {
        AbsVal part = (B.ulo > 0 && A.uhi < B.ulo)
                          ? truncTo(w, (i128)A.ulo, (i128)A.uhi)
                          : truncTo(w, 0, (i128)std::min(A.uhi, B.uhi - 1));
        acc = AbsVal::join(acc, part);
      }
      return acc.isBottom ? AbsVal::top(w) : acc;
    }

    case OpKind::And: {
      const AbsVal& B = args[1];
      AbsVal r = AbsVal::top(w);
      r.uhi = std::min({r.uhi, A.uhi, B.uhi});
      r.zeros |= A.zeros | B.zeros;
      r.ones |= A.ones & B.ones & m;
      r.normalize();
      return r;
    }
    case OpKind::Or: {
      const AbsVal& B = args[1];
      AbsVal r = AbsVal::top(w);
      if (std::max(A.width, B.width) <= w) r.ulo = std::max(A.ulo, B.ulo);
      r.zeros |= A.zeros & B.zeros;
      r.ones |= (A.ones | B.ones) & m;
      r.normalize();
      return r;
    }
    case OpKind::Xor: {
      const AbsVal& B = args[1];
      AbsVal r = AbsVal::top(w);
      r.zeros |= (A.zeros & B.zeros) | (A.ones & B.ones);
      r.ones |= ((A.zeros & B.ones) | (A.ones & B.zeros)) & m;
      r.normalize();
      return r;
    }

    case OpKind::Shl: {
      const AbsVal& B = args[1];
      if (B.ulo >= 64) return AbsVal::constant(0, w);
      const int shLo = (int)B.ulo;
      const int shHi = (int)std::min<u64>(B.uhi, 63);
      AbsVal r = ((i128)std::bit_width(A.uhi) + shHi <= 126)
                     ? truncTo(w, (i128)A.ulo << shLo, (i128)A.uhi << shHi)
                     : AbsVal::top(w);
      if (B.uhi >= 64) r = AbsVal::join(r, AbsVal::constant(0, w));
      if (shLo > 0) {
        r.zeros |= maskBits(shLo);
        r.normalize();
      }
      return r;
    }
    case OpKind::Shr: {
      const AbsVal& B = args[1];
      if (B.ulo >= 64) return AbsVal::constant(0, w);
      const int shLo = (int)B.ulo;
      const int shHi = (int)std::min<u64>(B.uhi, 63);
      AbsVal r = truncTo(w, (i128)(A.ulo >> shHi), (i128)(A.uhi >> shLo));
      if (B.uhi >= 64) r = AbsVal::join(r, AbsVal::constant(0, w));
      return r;
    }
    case OpKind::Sar: {
      const AbsVal& B = args[1];
      const int shLo = (int)std::min<u64>(B.ulo, 63);
      const int shHi = (int)std::min<u64>(B.uhi, 63);
      i128 lo = 0, hi = 0;
      bool first = true;
      for (i128 n : {(i128)A.slo, (i128)A.shi})
        for (int sh : {shLo, shHi}) {
          const i128 q = n >> sh;
          if (first || q < lo) lo = q;
          if (first || q > hi) hi = q;
          first = false;
        }
      return truncTo(w, lo, hi);
    }

    case OpKind::Eq:
    case OpKind::Ne:
    case OpKind::Lt:
    case OpKind::Le:
    case OpKind::Gt:
    case OpKind::Ge:
    case OpKind::ULt:
    case OpKind::ULe:
    case OpKind::UGt:
    case OpKind::UGe: {
      const int t = triCompare(kind, A, args[1]);
      return t < 0 ? AbsVal::fromUnsignedRange(w, 0, 1)
                   : AbsVal::constant((u64)t, w);
    }

    case OpKind::Select: {
      const AbsVal& C = args[0];
      const AbsVal& T = args[1];
      const AbsVal& F = args[2];
      if (C.isConstant())
        return adaptTo(w, C.constValue() ? T : F);
      return AbsVal::join(adaptTo(w, T), adaptTo(w, F));
    }

    default:
      MPHLS_CHECK(false, "evalAbsOp on non-pure op " << opName(kind));
      return AbsVal::top(w);
  }
}

}  // namespace mphls
