// Worklist abstract interpretation over the CDFG.
//
// The engine runs the AbsVal transfer functions (absval.h) over every block,
// propagating per-variable facts along control-flow edges to a fixpoint:
// block entry states only grow (joins), back-edge targets widen so loops
// terminate, and branch edges are refined with the facts implied by the
// branch condition. The result is a fact store queryable per SSA value and
// per variable, plus the reachability / initialization evidence the
// semantic lints (check/check_semantics.h) and the width-narrowing pass
// (opt/narrow.cpp) consume.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/absval.h"
#include "ir/cdfg.h"

namespace mphls {

/// Has a variable been stored to on the paths reaching a program point?
enum class InitState : unsigned char { No, Maybe, Yes };

[[nodiscard]] InitState joinInit(InitState a, InitState b);

/// Per-variable abstract state at one program point.
struct VarFact {
  AbsVal val;
  InitState init = InitState::No;
};

struct AnalysisResult {
  /// Fact per SSA value at the fixpoint; bottom for values in unreachable
  /// blocks. Indexed by ValueId.
  std::vector<AbsVal> valueFacts;
  /// Join of every value a variable ever contains (including the initial
  /// zero). Indexed by VarId. This is the bound the narrowing pass uses for
  /// register widths.
  std::vector<AbsVal> varFacts;
  /// Indexed by BlockId.
  std::vector<bool> blockReachable;
  /// LoadVar ops that read a variable no path has stored to (the read sees
  /// the implicit initial zero).
  std::vector<OpId> readsBeforeWrite;
  /// Branches whose condition is provably constant: the edge not matching
  /// `condValue` is never taken.
  struct DeadBranch {
    BlockId block;
    bool condValue = false;
  };
  std::vector<DeadBranch> deadBranches;
  /// Worklist block evaluations until the fixpoint (a convergence metric).
  int iterations = 0;

  [[nodiscard]] const AbsVal& fact(ValueId v) const {
    return valueFacts.at(v.index());
  }
};

/// Run the analysis to a fixpoint. The function must pass verifyOrThrow.
[[nodiscard]] AnalysisResult analyzeFunction(const Function& fn);

/// Short per-value annotations ("u[0,58250]" etc.) for DOT dumps and the
/// `mphls analyze` listing; values whose fact is top (nothing proven) are
/// omitted.
[[nodiscard]] std::map<ValueId, std::string> factAnnotations(
    const Function& fn, const AnalysisResult& result);

}  // namespace mphls
