// Abstract values for the dataflow engine: the reduced product of an
// unsigned interval, a signed interval, and a known-bits mask over W-bit
// two's-complement patterns.
//
// The concrete semantics being abstracted is Interpreter::evalPure: every
// value is a 64-bit pattern truncated to its declared width, unsigned ops
// read the raw pattern, signed ops read signExtend(pattern, argWidth), and
// every result is truncated to the result width. An AbsVal describes the
// set of patterns a value may take; soundness (checked by the fuzz tests in
// tests/test_analysis.cpp) means every concrete pattern the interpreter
// produces is contained in the AbsVal the transfer functions compute.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/opcode.h"

namespace mphls {

struct AbsVal {
  int width = 1;
  bool isBottom = false;  ///< empty set (unreachable / contradictory facts)

  /// Unsigned view: raw pattern as u64, ulo <= v <= uhi.
  std::uint64_t ulo = 0;
  std::uint64_t uhi = 0;
  /// Signed view: signExtend(v, width), slo <= s <= shi.
  std::int64_t slo = 0;
  std::int64_t shi = 0;
  /// Known bits over the full 64-bit pattern. Bit i of `zeros` set: bit i of
  /// the pattern is provably 0; bit i of `ones`: provably 1. Bits at and
  /// above `width` are always in `zeros` (patterns are truncated).
  std::uint64_t zeros = 0;
  std::uint64_t ones = 0;

  // --- constructors -----------------------------------------------------
  [[nodiscard]] static AbsVal top(int width);
  [[nodiscard]] static AbsVal bottom(int width);
  [[nodiscard]] static AbsVal constant(std::uint64_t v, int width);
  /// [lo, hi] over raw patterns; signed view and known bits are derived.
  [[nodiscard]] static AbsVal fromUnsignedRange(int width, std::uint64_t lo,
                                                std::uint64_t hi);

  // --- queries ----------------------------------------------------------
  [[nodiscard]] bool isConstant() const { return !isBottom && ulo == uhi; }
  [[nodiscard]] std::uint64_t constValue() const { return ulo; }
  /// Containment of a raw pattern (caller truncates to `width` first).
  [[nodiscard]] bool contains(std::uint64_t v) const;
  [[nodiscard]] bool isTop() const;
  /// Smallest W' such that every contained pattern fits unsigned in W' bits
  /// (i.e. uhi < 2^W'). At least 1; `width` when bottom is impossible here
  /// because bottom values are never narrowed.
  [[nodiscard]] int requiredUnsignedBits() const;

  // --- lattice ----------------------------------------------------------
  /// Least upper bound (set union, over-approximated).
  [[nodiscard]] static AbsVal join(const AbsVal& a, const AbsVal& b);
  /// Widening: like join, but bounds that grew jump to the next power-of-two
  /// threshold so ascending chains stabilise in O(width) steps. Known bits
  /// come from the plain join (that lattice is finite). `a` is the previous
  /// state, `b` the new one.
  [[nodiscard]] static AbsVal widen(const AbsVal& a, const AbsVal& b);
  /// Greatest lower bound (set intersection, over-approximated).
  [[nodiscard]] static AbsVal meet(const AbsVal& a, const AbsVal& b);

  /// Refine with an unsigned / signed interval constraint (used by
  /// branch-condition refinement). Returns the tightened value.
  [[nodiscard]] AbsVal meetU(std::uint64_t lo, std::uint64_t hi) const;
  [[nodiscard]] AbsVal meetS(std::int64_t lo, std::int64_t hi) const;

  /// Inter-domain reduction: propagate facts between the three views until
  /// they agree; collapses to bottom on contradiction. Every constructor
  /// and lattice operation returns normalized values.
  void normalize();

  /// Compact rendering, e.g. "u[3,17] s[3,17] b000…1xxx" or "const 5".
  [[nodiscard]] std::string str() const;

  friend bool operator==(const AbsVal& a, const AbsVal& b) {
    if (a.width != b.width) return false;
    if (a.isBottom || b.isBottom) return a.isBottom == b.isBottom;
    return a.ulo == b.ulo && a.uhi == b.uhi && a.slo == b.slo &&
           a.shi == b.shi && a.zeros == b.zeros && a.ones == b.ones;
  }
};

/// Transfer function of one pure operation: the abstract counterpart of
/// Interpreter::evalPure with identical width/signedness/division/shift
/// semantics. `args` carry the operand facts (their widths are the operand
/// widths evalPure sign-extends from).
[[nodiscard]] AbsVal evalAbsOp(OpKind kind, int width, std::int64_t imm,
                               const std::vector<AbsVal>& args);

}  // namespace mphls
