#include "lang/parser.h"

#include <sstream>

namespace mphls {

using namespace ast;

std::string Type::str() const {
  std::ostringstream oss;
  if (width == 1 && !isSigned) return "bool";
  oss << (isSigned ? "int" : "uint") << "<" << width << ">";
  return oss.str();
}

const Token& Parser::peek(int ahead) const {
  std::size_t p = pos_ + static_cast<std::size_t>(ahead);
  return p < toks_.size() ? toks_[p] : toks_.back();
}

const Token& Parser::advance() {
  const Token& t = toks_[pos_];
  if (pos_ + 1 < toks_.size()) ++pos_;
  return t;
}

bool Parser::accept(Tok k) {
  if (at(k)) {
    advance();
    return true;
  }
  return false;
}

bool Parser::expect(Tok k, const char* where) {
  if (accept(k)) return true;
  std::ostringstream oss;
  oss << "expected " << tokName(k) << " " << where << ", found "
      << tokName(cur().kind);
  diags_.error(cur().loc, oss.str());
  return false;
}

void Parser::syncToStmt() {
  while (!at(Tok::End) && !at(Tok::Semi) && !at(Tok::RBrace)) advance();
  accept(Tok::Semi);
}

Design Parser::parseDesign() {
  Design d;
  while (!at(Tok::End)) {
    if (at(Tok::KwProc)) {
      d.procs.push_back(parseProc());
    } else {
      diags_.error(cur().loc, "expected 'proc' at top level");
      advance();
    }
  }
  return d;
}

Proc Parser::parseProc() {
  Proc p;
  p.loc = cur().loc;
  expect(Tok::KwProc, "to begin procedure");
  if (at(Tok::Ident)) {
    p.name = cur().text;
    advance();
  } else {
    diags_.error(cur().loc, "expected procedure name");
  }
  expect(Tok::LParen, "after procedure name");
  if (!at(Tok::RParen)) {
    p.params.push_back(parseParam());
    while (accept(Tok::Comma)) p.params.push_back(parseParam());
  }
  expect(Tok::RParen, "after parameters");
  p.body = parseBlock();
  return p;
}

Param Parser::parseParam() {
  Param prm;
  prm.loc = cur().loc;
  if (accept(Tok::KwIn)) {
    prm.isInput = true;
  } else if (accept(Tok::KwOut)) {
    prm.isInput = false;
  } else {
    diags_.error(cur().loc, "parameter must start with 'in' or 'out'");
  }
  if (at(Tok::Ident)) {
    prm.name = cur().text;
    advance();
  } else {
    diags_.error(cur().loc, "expected parameter name");
  }
  expect(Tok::Colon, "after parameter name");
  prm.type = parseType();
  return prm;
}

Type Parser::parseType() {
  Type t;
  if (accept(Tok::KwBool)) {
    t.width = 1;
    t.isSigned = false;
    return t;
  }
  if (accept(Tok::KwInt)) {
    t.isSigned = true;
  } else if (accept(Tok::KwUint)) {
    t.isSigned = false;
  } else {
    diags_.error(cur().loc, "expected a type");
    return t;
  }
  t.width = 32;
  if (accept(Tok::Lt)) {
    if (at(Tok::Number)) {
      t.width = static_cast<int>(cur().number);
      advance();
      if (t.width < 1 || t.width > 64) {
        diags_.error(cur().loc, "type width must be in [1, 64]");
        t.width = 32;
      }
    } else {
      diags_.error(cur().loc, "expected width after '<'");
    }
    expect(Tok::Gt, "to close type width");
  }
  return t;
}

std::vector<StmtPtr> Parser::parseBlock() {
  std::vector<StmtPtr> stmts;
  expect(Tok::LBrace, "to open block");
  while (!at(Tok::RBrace) && !at(Tok::End)) {
    auto s = parseStmt();
    if (s) stmts.push_back(std::move(s));
  }
  expect(Tok::RBrace, "to close block");
  return stmts;
}

StmtPtr Parser::parseStmt() {
  auto stmt = std::make_unique<Stmt>();
  stmt->loc = cur().loc;

  if (accept(Tok::KwVar)) {
    stmt->kind = Stmt::Kind::VarDecl;
    if (at(Tok::Ident)) {
      stmt->name = cur().text;
      advance();
    } else {
      diags_.error(cur().loc, "expected variable name after 'var'");
      syncToStmt();
      return nullptr;
    }
    expect(Tok::Colon, "after variable name");
    stmt->declType = parseType();
    if (accept(Tok::Assign)) stmt->init = parseExpr();
    expect(Tok::Semi, "after variable declaration");
    return stmt;
  }

  if (accept(Tok::KwIf)) {
    stmt->kind = Stmt::Kind::If;
    expect(Tok::LParen, "after 'if'");
    stmt->cond = parseExpr();
    expect(Tok::RParen, "after if condition");
    stmt->body = parseBlock();
    if (accept(Tok::KwElse)) {
      if (at(Tok::KwIf)) {
        auto nested = parseStmt();
        if (nested) stmt->elseBody.push_back(std::move(nested));
      } else {
        stmt->elseBody = parseBlock();
      }
    }
    return stmt;
  }

  if (accept(Tok::KwWhile)) {
    stmt->kind = Stmt::Kind::While;
    expect(Tok::LParen, "after 'while'");
    stmt->cond = parseExpr();
    expect(Tok::RParen, "after while condition");
    stmt->body = parseBlock();
    return stmt;
  }

  if (accept(Tok::KwDo)) {
    stmt->kind = Stmt::Kind::DoUntil;
    stmt->body = parseBlock();
    expect(Tok::KwUntil, "after do-body");
    expect(Tok::LParen, "after 'until'");
    stmt->cond = parseExpr();
    expect(Tok::RParen, "after until condition");
    expect(Tok::Semi, "after do-until");
    return stmt;
  }

  if (at(Tok::Ident)) {
    // Either assignment `name = expr ;` or a call `name(args) ;`.
    if (peek().kind == Tok::LParen) {
      stmt->kind = Stmt::Kind::Call;
      stmt->callee = cur().text;
      advance();
      advance();  // '('
      if (!at(Tok::RParen)) {
        stmt->callArgs.push_back(parseExpr());
        while (accept(Tok::Comma)) stmt->callArgs.push_back(parseExpr());
      }
      expect(Tok::RParen, "after call arguments");
      expect(Tok::Semi, "after call");
      return stmt;
    }
    stmt->kind = Stmt::Kind::Assign;
    stmt->name = cur().text;
    advance();
    if (!expect(Tok::Assign, "in assignment")) {
      syncToStmt();
      return nullptr;
    }
    stmt->rhs = parseExpr();
    expect(Tok::Semi, "after assignment");
    return stmt;
  }

  diags_.error(cur().loc, "expected a statement");
  syncToStmt();
  return nullptr;
}

// --------------------------------------------------------------- expressions

namespace {

ExprPtr makeBinary(BinOp op, ExprPtr a, ExprPtr b, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Binary;
  e->binOp = op;
  e->loc = loc;
  e->children.push_back(std::move(a));
  e->children.push_back(std::move(b));
  return e;
}

}  // namespace

ExprPtr Parser::parseExpr() { return parseTernary(); }

ExprPtr Parser::parseTernary() {
  auto c = parseLogicalOr();
  if (accept(Tok::Question)) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::Ternary;
    e->loc = c ? c->loc : cur().loc;
    auto t = parseTernary();
    expect(Tok::Colon, "in ternary expression");
    auto f = parseTernary();
    e->children.push_back(std::move(c));
    e->children.push_back(std::move(t));
    e->children.push_back(std::move(f));
    return e;
  }
  return c;
}

ExprPtr Parser::parseLogicalOr() {
  auto lhs = parseLogicalAnd();
  while (at(Tok::PipePipe)) {
    SourceLoc loc = cur().loc;
    advance();
    lhs = makeBinary(BinOp::LogicalOr, std::move(lhs), parseLogicalAnd(), loc);
  }
  return lhs;
}

ExprPtr Parser::parseLogicalAnd() {
  auto lhs = parseBitOr();
  while (at(Tok::AmpAmp)) {
    SourceLoc loc = cur().loc;
    advance();
    lhs = makeBinary(BinOp::LogicalAnd, std::move(lhs), parseBitOr(), loc);
  }
  return lhs;
}

ExprPtr Parser::parseBitOr() {
  auto lhs = parseBitXor();
  while (at(Tok::Pipe)) {
    SourceLoc loc = cur().loc;
    advance();
    lhs = makeBinary(BinOp::Or, std::move(lhs), parseBitXor(), loc);
  }
  return lhs;
}

ExprPtr Parser::parseBitXor() {
  auto lhs = parseBitAnd();
  while (at(Tok::Caret)) {
    SourceLoc loc = cur().loc;
    advance();
    lhs = makeBinary(BinOp::Xor, std::move(lhs), parseBitAnd(), loc);
  }
  return lhs;
}

ExprPtr Parser::parseBitAnd() {
  auto lhs = parseEquality();
  while (at(Tok::Amp)) {
    SourceLoc loc = cur().loc;
    advance();
    lhs = makeBinary(BinOp::And, std::move(lhs), parseEquality(), loc);
  }
  return lhs;
}

ExprPtr Parser::parseEquality() {
  auto lhs = parseRelational();
  for (;;) {
    if (at(Tok::Eq)) {
      SourceLoc loc = cur().loc;
      advance();
      lhs = makeBinary(BinOp::Eq, std::move(lhs), parseRelational(), loc);
    } else if (at(Tok::Ne)) {
      SourceLoc loc = cur().loc;
      advance();
      lhs = makeBinary(BinOp::Ne, std::move(lhs), parseRelational(), loc);
    } else {
      return lhs;
    }
  }
}

ExprPtr Parser::parseRelational() {
  auto lhs = parseShift();
  for (;;) {
    BinOp op;
    if (at(Tok::Lt)) {
      op = BinOp::Lt;
    } else if (at(Tok::Le)) {
      op = BinOp::Le;
    } else if (at(Tok::Gt)) {
      op = BinOp::Gt;
    } else if (at(Tok::Ge)) {
      op = BinOp::Ge;
    } else {
      return lhs;
    }
    SourceLoc loc = cur().loc;
    advance();
    lhs = makeBinary(op, std::move(lhs), parseShift(), loc);
  }
}

ExprPtr Parser::parseShift() {
  auto lhs = parseAdditive();
  for (;;) {
    if (at(Tok::Shl)) {
      SourceLoc loc = cur().loc;
      advance();
      lhs = makeBinary(BinOp::Shl, std::move(lhs), parseAdditive(), loc);
    } else if (at(Tok::Shr)) {
      SourceLoc loc = cur().loc;
      advance();
      lhs = makeBinary(BinOp::Shr, std::move(lhs), parseAdditive(), loc);
    } else {
      return lhs;
    }
  }
}

ExprPtr Parser::parseAdditive() {
  auto lhs = parseMultiplicative();
  for (;;) {
    if (at(Tok::Plus)) {
      SourceLoc loc = cur().loc;
      advance();
      lhs = makeBinary(BinOp::Add, std::move(lhs), parseMultiplicative(), loc);
    } else if (at(Tok::Minus)) {
      SourceLoc loc = cur().loc;
      advance();
      lhs = makeBinary(BinOp::Sub, std::move(lhs), parseMultiplicative(), loc);
    } else {
      return lhs;
    }
  }
}

ExprPtr Parser::parseMultiplicative() {
  auto lhs = parseUnary();
  for (;;) {
    BinOp op;
    if (at(Tok::Star)) {
      op = BinOp::Mul;
    } else if (at(Tok::Slash)) {
      op = BinOp::Div;
    } else if (at(Tok::Percent)) {
      op = BinOp::Mod;
    } else {
      return lhs;
    }
    SourceLoc loc = cur().loc;
    advance();
    lhs = makeBinary(op, std::move(lhs), parseUnary(), loc);
  }
}

ExprPtr Parser::parseUnary() {
  auto e = std::make_unique<Expr>();
  e->loc = cur().loc;
  if (accept(Tok::Minus)) {
    e->kind = Expr::Kind::Unary;
    e->unOp = UnOp::Neg;
    e->children.push_back(parseUnary());
    return e;
  }
  if (accept(Tok::Tilde)) {
    e->kind = Expr::Kind::Unary;
    e->unOp = UnOp::Not;
    e->children.push_back(parseUnary());
    return e;
  }
  if (accept(Tok::Bang)) {
    e->kind = Expr::Kind::Unary;
    e->unOp = UnOp::LogicalNot;
    e->children.push_back(parseUnary());
    return e;
  }
  return parsePrimary();
}

ExprPtr Parser::parsePrimary() {
  auto e = std::make_unique<Expr>();
  e->loc = cur().loc;

  if (at(Tok::Number)) {
    e->kind = Expr::Kind::Number;
    e->number = cur().number;
    advance();
    return e;
  }
  if (at(Tok::KwTrue) || at(Tok::KwFalse)) {
    e->kind = Expr::Kind::Bool;
    e->number = at(Tok::KwTrue) ? 1 : 0;
    advance();
    return e;
  }
  if (at(Tok::KwTrunc) || at(Tok::KwZext) || at(Tok::KwSext)) {
    e->kind = Expr::Kind::Cast;
    e->castKind = at(Tok::KwTrunc)  ? CastKind::Trunc
                  : at(Tok::KwZext) ? CastKind::ZExt
                                    : CastKind::SExt;
    advance();
    expect(Tok::Lt, "after cast keyword");
    if (at(Tok::Number)) {
      e->castWidth = static_cast<int>(cur().number);
      advance();
      if (e->castWidth < 1 || e->castWidth > 64) {
        diags_.error(e->loc, "cast width must be in [1, 64]");
        e->castWidth = 32;
      }
    } else {
      diags_.error(cur().loc, "expected cast width");
      e->castWidth = 32;
    }
    expect(Tok::Gt, "to close cast width");
    expect(Tok::LParen, "after cast");
    e->children.push_back(parseExpr());
    expect(Tok::RParen, "to close cast");
    return e;
  }
  if (at(Tok::Ident)) {
    e->kind = Expr::Kind::VarRef;
    e->name = cur().text;
    advance();
    return e;
  }
  if (accept(Tok::LParen)) {
    auto inner = parseExpr();
    expect(Tok::RParen, "to close parenthesized expression");
    return inner;
  }
  diags_.error(cur().loc, "expected an expression");
  advance();
  e->kind = Expr::Kind::Number;
  e->number = 0;
  return e;
}

}  // namespace mphls
