#include "lang/frontend.h"

#include "lang/lexer.h"
#include "lang/lower.h"
#include "lang/parser.h"

namespace mphls {

std::optional<Function> compileBdl(const std::string& source,
                                   DiagEngine& diags,
                                   const std::string& top) {
  Lexer lexer(source, diags);
  auto tokens = lexer.tokenize();
  if (!diags.ok()) return std::nullopt;

  Parser parser(std::move(tokens), diags);
  ast::Design design = parser.parseDesign();
  if (!diags.ok()) return std::nullopt;
  if (design.procs.empty()) {
    diags.error({}, "no procedures in design");
    return std::nullopt;
  }

  std::string topName = top.empty() ? design.procs.back().name : top;
  return lowerDesign(design, topName, diags);
}

Function compileBdlOrThrow(const std::string& source, const std::string& top) {
  DiagEngine diags;
  auto fn = compileBdl(source, diags, top);
  MPHLS_CHECK(fn.has_value(), "BDL compilation failed:\n" << diags.summary());
  return std::move(*fn);
}

}  // namespace mphls
