// Recursive-descent parser for BDL.
#pragma once

#include <vector>

#include "common/diag.h"
#include "lang/ast.h"
#include "lang/token.h"

namespace mphls {

class Parser {
 public:
  Parser(std::vector<Token> tokens, DiagEngine& diags)
      : toks_(std::move(tokens)), diags_(diags) {}

  /// Parse a whole design. On syntax errors the result is partial; check
  /// `diags.ok()` before using it.
  [[nodiscard]] ast::Design parseDesign();

 private:
  std::vector<Token> toks_;
  DiagEngine& diags_;
  std::size_t pos_ = 0;

  [[nodiscard]] const Token& cur() const { return toks_[pos_]; }
  [[nodiscard]] const Token& peek(int ahead = 1) const;
  const Token& advance();
  [[nodiscard]] bool at(Tok k) const { return cur().kind == k; }
  bool accept(Tok k);
  bool expect(Tok k, const char* where);
  void syncToStmt();

  ast::Proc parseProc();
  ast::Param parseParam();
  ast::Type parseType();
  ast::StmtPtr parseStmt();
  std::vector<ast::StmtPtr> parseBlock();

  ast::ExprPtr parseExpr();
  ast::ExprPtr parseTernary();
  ast::ExprPtr parseLogicalOr();
  ast::ExprPtr parseLogicalAnd();
  ast::ExprPtr parseBitOr();
  ast::ExprPtr parseBitXor();
  ast::ExprPtr parseBitAnd();
  ast::ExprPtr parseEquality();
  ast::ExprPtr parseRelational();
  ast::ExprPtr parseShift();
  ast::ExprPtr parseAdditive();
  ast::ExprPtr parseMultiplicative();
  ast::ExprPtr parseUnary();
  ast::ExprPtr parsePrimary();
};

}  // namespace mphls
