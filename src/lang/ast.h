// Abstract syntax tree for BDL.
//
// The parse tree is the first of the two internal-representation families
// the tutorial mentions ("parse trees and graphs"); lowering turns it into
// the CDFG of src/ir.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/diag.h"

namespace mphls::ast {

/// A declared type: signedness + bit width. `bool` is uint<1>.
struct Type {
  int width = 32;
  bool isSigned = true;

  [[nodiscard]] std::string str() const;
};

// ---------------------------------------------------------------- expressions

enum class UnOp { Neg, Not, LogicalNot };
enum class BinOp {
  Add, Sub, Mul, Div, Mod,
  And, Or, Xor,
  Shl, Shr,
  LogicalAnd, LogicalOr,
  Eq, Ne, Lt, Le, Gt, Ge,
};
enum class CastKind { Trunc, ZExt, SExt };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind { Number, Bool, VarRef, Unary, Binary, Cast, Ternary };
  Kind kind;
  SourceLoc loc;

  // Number / Bool
  std::uint64_t number = 0;
  // VarRef
  std::string name;
  // Unary / Cast
  UnOp unOp = UnOp::Neg;
  CastKind castKind = CastKind::Trunc;
  int castWidth = 0;
  // Binary
  BinOp binOp = BinOp::Add;
  // children: Unary/Cast use [0]; Binary uses [0],[1]; Ternary [0..2]
  std::vector<ExprPtr> children;
};

// ----------------------------------------------------------------- statements

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind { VarDecl, Assign, If, While, DoUntil, Call, Block };
  Kind kind;
  SourceLoc loc;

  // VarDecl
  std::string name;
  Type declType;
  ExprPtr init;  ///< optional initializer
  // Assign: name = expr
  ExprPtr rhs;
  // If / While / DoUntil
  ExprPtr cond;
  std::vector<StmtPtr> body;      ///< If-then / loop body / Block body
  std::vector<StmtPtr> elseBody;  ///< If-else
  // Call
  std::string callee;
  std::vector<ExprPtr> callArgs;  ///< out args must be plain VarRefs
};

// ----------------------------------------------------------------- procedures

struct Param {
  std::string name;
  Type type;
  bool isInput = true;
  SourceLoc loc;
};

struct Proc {
  std::string name;
  std::vector<Param> params;
  std::vector<StmtPtr> body;
  SourceLoc loc;
};

/// A whole BDL compilation unit.
struct Design {
  std::vector<Proc> procs;

  [[nodiscard]] const Proc* findProc(const std::string& name) const {
    for (const auto& p : procs)
      if (p.name == name) return &p;
    return nullptr;
  }
};

}  // namespace mphls::ast
