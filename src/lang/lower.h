// Lowering: AST -> CDFG.
//
// This is the tutorial's "compilation of the formal language into an
// internal representation" (Section 2). Type checking happens on the fly:
// widths are computed bottom-up, operands are equalized with explicit
// (free) extension ops, and procedure calls are inline-expanded — one of
// the high-level transformations the paper lists ("inline expansion of
// procedures") done here where the call structure is still visible.
#pragma once

#include <optional>
#include <string>

#include "common/diag.h"
#include "ir/cdfg.h"
#include "lang/ast.h"

namespace mphls {

/// Lower procedure `top` of `design` into a Function. All procedure calls
/// are inlined. Returns nullopt (with diagnostics) on semantic errors.
[[nodiscard]] std::optional<Function> lowerDesign(const ast::Design& design,
                                                  const std::string& top,
                                                  DiagEngine& diags);

}  // namespace mphls
