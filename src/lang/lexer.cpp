#include "lang/lexer.h"

#include <cctype>
#include <unordered_map>

namespace mphls {

std::string_view tokName(Tok t) {
  switch (t) {
    case Tok::End: return "<eof>";
    case Tok::Ident: return "identifier";
    case Tok::Number: return "number";
    case Tok::KwProc: return "'proc'";
    case Tok::KwIn: return "'in'";
    case Tok::KwOut: return "'out'";
    case Tok::KwVar: return "'var'";
    case Tok::KwIf: return "'if'";
    case Tok::KwElse: return "'else'";
    case Tok::KwWhile: return "'while'";
    case Tok::KwDo: return "'do'";
    case Tok::KwUntil: return "'until'";
    case Tok::KwInt: return "'int'";
    case Tok::KwUint: return "'uint'";
    case Tok::KwBool: return "'bool'";
    case Tok::KwTrue: return "'true'";
    case Tok::KwFalse: return "'false'";
    case Tok::KwTrunc: return "'trunc'";
    case Tok::KwZext: return "'zext'";
    case Tok::KwSext: return "'sext'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::Comma: return "','";
    case Tok::Semi: return "';'";
    case Tok::Colon: return "':'";
    case Tok::Question: return "'?'";
    case Tok::Assign: return "'='";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::Percent: return "'%'";
    case Tok::Amp: return "'&'";
    case Tok::Pipe: return "'|'";
    case Tok::Caret: return "'^'";
    case Tok::Tilde: return "'~'";
    case Tok::Bang: return "'!'";
    case Tok::AmpAmp: return "'&&'";
    case Tok::PipePipe: return "'||'";
    case Tok::Shl: return "'<<'";
    case Tok::Shr: return "'>>'";
    case Tok::Eq: return "'=='";
    case Tok::Ne: return "'!='";
    case Tok::Lt: return "'<'";
    case Tok::Le: return "'<='";
    case Tok::Gt: return "'>'";
    case Tok::Ge: return "'>='";
  }
  return "?";
}

char Lexer::peek(int ahead) const {
  std::size_t p = pos_ + static_cast<std::size_t>(ahead);
  return p < src_.size() ? src_[p] : '\0';
}

char Lexer::advance() {
  char c = src_[pos_++];
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

void Lexer::skipTrivia() {
  while (!atEnd()) {
    char c = peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
    } else if (c == '#') {
      while (!atEnd() && peek() != '\n') advance();
    } else if (c == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n') advance();
    } else if (c == '/' && peek(1) == '*') {
      SourceLoc start = here();
      advance();
      advance();
      while (!atEnd() && !(peek() == '*' && peek(1) == '/')) advance();
      if (atEnd()) {
        diags_.error(start, "unterminated block comment");
        return;
      }
      advance();
      advance();
    } else {
      return;
    }
  }
}

Token Lexer::lexNumber() {
  Token t;
  t.kind = Tok::Number;
  t.loc = here();
  std::uint64_t v = 0;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    advance();
    advance();
    bool any = false;
    while (std::isxdigit(static_cast<unsigned char>(peek()))) {
      char c = advance();
      int d = std::isdigit(static_cast<unsigned char>(c))
                  ? c - '0'
                  : 10 + (std::tolower(c) - 'a');
      v = v * 16 + static_cast<std::uint64_t>(d);
      any = true;
    }
    if (!any) diags_.error(t.loc, "hex literal needs digits");
  } else if (peek() == '0' && (peek(1) == 'b' || peek(1) == 'B')) {
    advance();
    advance();
    bool any = false;
    while (peek() == '0' || peek() == '1') {
      v = v * 2 + static_cast<std::uint64_t>(advance() - '0');
      any = true;
    }
    if (!any) diags_.error(t.loc, "binary literal needs digits");
  } else {
    while (std::isdigit(static_cast<unsigned char>(peek())))
      v = v * 10 + static_cast<std::uint64_t>(advance() - '0');
  }
  t.number = v;
  return t;
}

Token Lexer::lexIdent() {
  static const std::unordered_map<std::string, Tok> kKeywords = {
      {"proc", Tok::KwProc},   {"in", Tok::KwIn},       {"out", Tok::KwOut},
      {"var", Tok::KwVar},     {"if", Tok::KwIf},       {"else", Tok::KwElse},
      {"while", Tok::KwWhile}, {"do", Tok::KwDo},       {"until", Tok::KwUntil},
      {"int", Tok::KwInt},     {"uint", Tok::KwUint},   {"bool", Tok::KwBool},
      {"true", Tok::KwTrue},   {"false", Tok::KwFalse},
      {"trunc", Tok::KwTrunc}, {"zext", Tok::KwZext},   {"sext", Tok::KwSext},
  };
  Token t;
  t.loc = here();
  std::string s;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    s += advance();
  auto it = kKeywords.find(s);
  if (it != kKeywords.end()) {
    t.kind = it->second;
  } else {
    t.kind = Tok::Ident;
    t.text = std::move(s);
  }
  return t;
}

std::vector<Token> Lexer::tokenize() {
  std::vector<Token> out;
  for (;;) {
    skipTrivia();
    if (atEnd()) break;
    SourceLoc loc = here();
    char c = peek();
    if (std::isdigit(static_cast<unsigned char>(c))) {
      out.push_back(lexNumber());
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      out.push_back(lexIdent());
      continue;
    }
    advance();
    Token t;
    t.loc = loc;
    auto two = [&](char second, Tok ifTwo, Tok ifOne) {
      if (peek() == second) {
        advance();
        t.kind = ifTwo;
      } else {
        t.kind = ifOne;
      }
    };
    switch (c) {
      case '(': t.kind = Tok::LParen; break;
      case ')': t.kind = Tok::RParen; break;
      case '{': t.kind = Tok::LBrace; break;
      case '}': t.kind = Tok::RBrace; break;
      case ',': t.kind = Tok::Comma; break;
      case ';': t.kind = Tok::Semi; break;
      case ':': t.kind = Tok::Colon; break;
      case '?': t.kind = Tok::Question; break;
      case '+': t.kind = Tok::Plus; break;
      case '-': t.kind = Tok::Minus; break;
      case '*': t.kind = Tok::Star; break;
      case '/': t.kind = Tok::Slash; break;
      case '%': t.kind = Tok::Percent; break;
      case '^': t.kind = Tok::Caret; break;
      case '~': t.kind = Tok::Tilde; break;
      case '&': two('&', Tok::AmpAmp, Tok::Amp); break;
      case '|': two('|', Tok::PipePipe, Tok::Pipe); break;
      case '=': two('=', Tok::Eq, Tok::Assign); break;
      case '!': two('=', Tok::Ne, Tok::Bang); break;
      case '<':
        if (peek() == '<') {
          advance();
          t.kind = Tok::Shl;
        } else {
          two('=', Tok::Le, Tok::Lt);
        }
        break;
      case '>':
        if (peek() == '>') {
          advance();
          t.kind = Tok::Shr;
        } else {
          two('=', Tok::Ge, Tok::Gt);
        }
        break;
      default:
        diags_.error(loc, std::string("unexpected character '") + c + "'");
        continue;
    }
    out.push_back(t);
  }
  Token end;
  end.kind = Tok::End;
  end.loc = here();
  out.push_back(end);
  return out;
}

}  // namespace mphls
