// One-call frontend: BDL source text -> verified CDFG Function.
#pragma once

#include <optional>
#include <string>

#include "common/diag.h"
#include "ir/cdfg.h"

namespace mphls {

/// Compile `source`. `top` selects the top-level procedure; when empty the
/// last procedure in the file is used. Diagnostics accumulate in `diags`;
/// the result is nullopt whenever an error was reported.
[[nodiscard]] std::optional<Function> compileBdl(const std::string& source,
                                                 DiagEngine& diags,
                                                 const std::string& top = "");

/// Convenience for tests and examples: compile or throw InternalError with
/// the diagnostic summary.
[[nodiscard]] Function compileBdlOrThrow(const std::string& source,
                                         const std::string& top = "");

}  // namespace mphls
