// Hand-written lexer for BDL. Supports decimal / hex (0x) / binary (0b)
// literals, '#' line comments, and '/* */' block comments.
#pragma once

#include <string>
#include <vector>

#include "common/diag.h"
#include "lang/token.h"

namespace mphls {

class Lexer {
 public:
  Lexer(std::string source, DiagEngine& diags)
      : src_(std::move(source)), diags_(diags) {}

  /// Tokenize the whole input; always ends with a Tok::End token.
  [[nodiscard]] std::vector<Token> tokenize();

 private:
  std::string src_;
  DiagEngine& diags_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;

  [[nodiscard]] char peek(int ahead = 0) const;
  char advance();
  [[nodiscard]] bool atEnd() const { return pos_ >= src_.size(); }
  [[nodiscard]] SourceLoc here() const { return {line_, col_}; }

  void skipTrivia();
  Token lexNumber();
  Token lexIdent();
};

}  // namespace mphls
