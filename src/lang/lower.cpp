#include "lang/lower.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bitutil.h"
#include "ir/verify.h"

namespace mphls {

namespace {

using ast::BinOp;
using ast::CastKind;
using ast::Expr;
using ast::Stmt;
using ast::Type;
using ast::UnOp;

/// What a name refers to in the current scope.
struct Symbol {
  enum class Kind { InPort, OutPort, Var };
  Kind kind = Kind::Var;
  PortId port;   ///< for ports
  VarId var;     ///< storage (OutPort symbols use a shadow variable)
  Type type;
};

/// A typed value during expression lowering.
struct TypedValue {
  ValueId value;
  Type type;
};

class Lowerer {
 public:
  Lowerer(const ast::Design& design, DiagEngine& diags)
      : design_(design), diags_(diags) {}

  std::optional<Function> lower(const std::string& topName) {
    const ast::Proc* top = design_.findProc(topName);
    if (!top) {
      diags_.error({}, "top procedure '" + topName + "' not found");
      return std::nullopt;
    }
    fn_.emplace(top->name);
    cur_ = fn_->addBlock("entry");

    pushScope();
    for (const auto& prm : top->params) {
      if (lookupLocal(prm.name)) {
        diags_.error(prm.loc, "duplicate parameter '" + prm.name + "'");
        continue;
      }
      Symbol sym;
      sym.type = prm.type;
      if (prm.isInput) {
        sym.kind = Symbol::Kind::InPort;
        sym.port = fn_->addInput(prm.name, prm.type.width, prm.type.isSigned);
      } else {
        sym.kind = Symbol::Kind::OutPort;
        sym.port = fn_->addOutput(prm.name, prm.type.width, prm.type.isSigned);
        // Out ports are readable in BDL; back them with a shadow variable.
        sym.var =
            fn_->addVar(prm.name, prm.type.width, prm.type.isSigned);
      }
      scopes_.back().emplace(prm.name, sym);
    }
    callStack_.insert(top->name);
    lowerStmts(top->body);
    callStack_.erase(top->name);
    popScope();

    fn_->setReturn(cur_);
    if (!diags_.ok()) return std::nullopt;
    verifyOrThrow(*fn_);
    return std::move(*fn_);
  }

 private:
  const ast::Design& design_;
  DiagEngine& diags_;
  std::optional<Function> fn_;
  BlockId cur_;
  std::vector<std::unordered_map<std::string, Symbol>> scopes_;
  std::unordered_set<std::string> callStack_;
  int blockCounter_ = 0;
  int tempCounter_ = 0;

  // ------------------------------------------------------------- scoping
  void pushScope() { scopes_.emplace_back(); }
  void popScope() { scopes_.pop_back(); }

  const Symbol* lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto f = it->find(name);
      if (f != it->end()) return &f->second;
    }
    return nullptr;
  }
  const Symbol* lookupLocal(const std::string& name) const {
    auto f = scopes_.back().find(name);
    return f == scopes_.back().end() ? nullptr : &f->second;
  }

  BlockId newBlock(const std::string& hint) {
    return fn_->addBlock(hint + "_" + std::to_string(blockCounter_++));
  }

  // ----------------------------------------------------------- type rules

  /// Width/signedness of an arithmetic combination (max width; signed only
  /// when both operands are signed).
  static Type arithType(Type a, Type b) {
    return {std::max(a.width, b.width), a.isSigned && b.isSigned};
  }

  /// Adjust `v` to exactly `width` bits, extending by its own signedness.
  ValueId resize(TypedValue v, int width) {
    if (fn_->value(v.value).width == width) return v.value;
    if (fn_->value(v.value).width > width)
      return fn_->emitUnary(cur_, OpKind::Trunc, v.value, width);
    return fn_->emitUnary(cur_,
                          v.type.isSigned ? OpKind::SExt : OpKind::ZExt,
                          v.value, width);
  }

  /// Coerce to a bool (width-1) condition; non-bool values compare != 0.
  ValueId toBool(TypedValue v) {
    if (v.type.width == 1 && !v.type.isSigned) return v.value;
    ValueId zero = fn_->emitConst(cur_, 0, fn_->value(v.value).width);
    return fn_->emitBinary(cur_, OpKind::Ne, v.value, zero);
  }

  // ----------------------------------------------------------- expressions

  /// Compile-time evaluation of literal-only subexpressions, done before
  /// widths are assigned so `3 * 4 + 2` is 14, not a 3-bit wraparound.
  /// Only non-negative results are folded; anything else falls through to
  /// normal lowering.
  static std::optional<std::uint64_t> tryConstEval(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::Number:
      case Expr::Kind::Bool:
        return e.number;
      case Expr::Kind::Unary: {
        auto a = tryConstEval(*e.children[0]);
        if (!a) return std::nullopt;
        if (e.unOp == UnOp::LogicalNot) return *a == 0 ? 1 : 0;
        return std::nullopt;  // ~ and - are width-dependent
      }
      case Expr::Kind::Binary: {
        auto a = tryConstEval(*e.children[0]);
        auto b = tryConstEval(*e.children[1]);
        if (!a || !b) return std::nullopt;
        switch (e.binOp) {
          case BinOp::Add: {
            std::uint64_t r = *a + *b;
            return r >= *a ? std::optional(r) : std::nullopt;  // overflow
          }
          case BinOp::Sub:
            return *a >= *b ? std::optional(*a - *b) : std::nullopt;
          case BinOp::Mul: {
            if (*a != 0 && *b > ~0ULL / *a) return std::nullopt;
            return *a * *b;
          }
          case BinOp::Div:
            return *b != 0 ? std::optional(*a / *b) : std::nullopt;
          case BinOp::Mod:
            return *b != 0 ? std::optional(*a % *b) : std::nullopt;
          case BinOp::And: return *a & *b;
          case BinOp::Or: return *a | *b;
          case BinOp::Xor: return *a ^ *b;
          case BinOp::Shl:
            return *b < 64 && (*a << *b) >> *b == *a
                       ? std::optional(*a << *b)
                       : std::nullopt;
          case BinOp::Shr:
            return *b < 64 ? std::optional(*a >> *b) : std::nullopt;
          case BinOp::LogicalAnd: return (*a && *b) ? 1 : 0;
          case BinOp::LogicalOr: return (*a || *b) ? 1 : 0;
          case BinOp::Eq: return *a == *b ? 1 : 0;
          case BinOp::Ne: return *a != *b ? 1 : 0;
          case BinOp::Lt: return *a < *b ? 1 : 0;
          case BinOp::Le: return *a <= *b ? 1 : 0;
          case BinOp::Gt: return *a > *b ? 1 : 0;
          case BinOp::Ge: return *a >= *b ? 1 : 0;
        }
        return std::nullopt;
      }
      case Expr::Kind::Ternary: {
        auto c = tryConstEval(*e.children[0]);
        if (!c) return std::nullopt;
        return tryConstEval(*e.children[*c ? 1 : 2]);
      }
      default:
        return std::nullopt;
    }
  }

  TypedValue lowerExpr(const Expr& e) {
    if (e.kind == Expr::Kind::Binary || e.kind == Expr::Kind::Ternary) {
      if (auto folded = tryConstEval(e)) {
        int width = std::max(bitsForStates(*folded + 1), 1);
        ValueId v =
            fn_->emitConst(cur_, static_cast<std::int64_t>(*folded), width);
        return {v, Type{width, /*isSigned=*/false}};
      }
    }
    switch (e.kind) {
      case Expr::Kind::Number: {
        int width = bitsForStates(e.number + 1);
        ValueId v = fn_->emitConst(cur_, static_cast<std::int64_t>(e.number),
                                   std::max(width, 1));
        return {v, Type{std::max(width, 1), /*isSigned=*/false}};
      }
      case Expr::Kind::Bool: {
        ValueId v =
            fn_->emitConst(cur_, static_cast<std::int64_t>(e.number), 1);
        return {v, Type{1, false}};
      }
      case Expr::Kind::VarRef:
        return lowerVarRef(e);
      case Expr::Kind::Unary:
        return lowerUnary(e);
      case Expr::Kind::Binary:
        return lowerBinary(e);
      case Expr::Kind::Cast:
        return lowerCast(e);
      case Expr::Kind::Ternary:
        return lowerTernary(e);
    }
    MPHLS_CHECK(false, "unhandled expr kind");
    return {};
  }

  TypedValue lowerVarRef(const Expr& e) {
    const Symbol* sym = lookup(e.name);
    if (!sym) {
      diags_.error(e.loc, "use of undeclared name '" + e.name + "'");
      return {fn_->emitConst(cur_, 0, 1), Type{1, false}};
    }
    switch (sym->kind) {
      case Symbol::Kind::InPort:
        return {fn_->emitRead(cur_, sym->port), sym->type};
      case Symbol::Kind::OutPort:
      case Symbol::Kind::Var:
        return {fn_->emitLoad(cur_, sym->var), sym->type};
    }
    return {};
  }

  TypedValue lowerUnary(const Expr& e) {
    TypedValue a = lowerExpr(*e.children[0]);
    switch (e.unOp) {
      case UnOp::Neg: {
        // Negation yields a signed value one bit wider (so -literal fits).
        Type rt{std::min(a.type.width + 1, kMaxWidth), true};
        ValueId widened = resize(a, rt.width);
        return {fn_->emitUnary(cur_, OpKind::Neg, widened, rt.width), rt};
      }
      case UnOp::Not:
        return {fn_->emitUnary(cur_, OpKind::Not, a.value, a.type.width),
                a.type};
      case UnOp::LogicalNot: {
        ValueId b = toBool(a);
        ValueId one = fn_->emitConst(cur_, 1, 1);
        return {fn_->emitBinary(cur_, OpKind::Xor, b, one), Type{1, false}};
      }
    }
    return {};
  }

  TypedValue lowerBinary(const Expr& e) {
    // Logical connectives operate on bools.
    if (e.binOp == BinOp::LogicalAnd || e.binOp == BinOp::LogicalOr) {
      ValueId a = toBool(lowerExpr(*e.children[0]));
      ValueId b = toBool(lowerExpr(*e.children[1]));
      OpKind k = e.binOp == BinOp::LogicalAnd ? OpKind::And : OpKind::Or;
      return {fn_->emitBinary(cur_, k, a, b), Type{1, false}};
    }

    TypedValue a = lowerExpr(*e.children[0]);

    // Shifts: a constant amount lowers to the free constant-shift ops —
    // the compiler-visible half of the paper's "multiplication times 0.5
    // can be replaced by a right shift" family of local transformations.
    if (e.binOp == BinOp::Shl || e.binOp == BinOp::Shr) {
      const Expr& amt = *e.children[1];
      if (amt.kind == Expr::Kind::Number) {
        auto sh = static_cast<std::int64_t>(amt.number);
        if (sh < 0 || sh >= a.type.width) {
          diags_.error(e.loc, "shift amount out of range");
          sh = 0;
        }
        OpKind k = e.binOp == BinOp::Shl ? OpKind::ShlConst
                   : a.type.isSigned     ? OpKind::SarConst
                                         : OpKind::ShrConst;
        return {fn_->emitUnary(cur_, k, a.value, a.type.width, sh), a.type};
      }
      TypedValue b = lowerExpr(amt);
      OpKind k = e.binOp == BinOp::Shl ? OpKind::Shl
                 : a.type.isSigned     ? OpKind::Sar
                                       : OpKind::Shr;
      OpId op = fn_->makeOp(cur_, k, {a.value, b.value}, a.type.width);
      return {fn_->op(op).result, a.type};
    }

    TypedValue b = lowerExpr(*e.children[1]);
    Type common = arithType(a.type, b.type);
    ValueId av = resize(a, common.width);
    ValueId bv = resize(b, common.width);

    auto cmp = [&](OpKind sk, OpKind uk) -> TypedValue {
      OpKind k = common.isSigned ? sk : uk;
      return {fn_->emitBinary(cur_, k, av, bv), Type{1, false}};
    };

    switch (e.binOp) {
      case BinOp::Add:
        return {fn_->emitBinary(cur_, OpKind::Add, av, bv, common.width),
                common};
      case BinOp::Sub: {
        Type rt{common.width, true};  // subtraction can go negative
        return {fn_->emitBinary(cur_, OpKind::Sub, av, bv, common.width), rt};
      }
      case BinOp::Mul:
        return {fn_->emitBinary(cur_, OpKind::Mul, av, bv, common.width),
                common};
      case BinOp::Div:
        return {fn_->emitBinary(cur_,
                                common.isSigned ? OpKind::Div : OpKind::UDiv,
                                av, bv, common.width),
                common};
      case BinOp::Mod:
        return {fn_->emitBinary(cur_,
                                common.isSigned ? OpKind::Mod : OpKind::UMod,
                                av, bv, common.width),
                common};
      case BinOp::And:
        return {fn_->emitBinary(cur_, OpKind::And, av, bv, common.width),
                common};
      case BinOp::Or:
        return {fn_->emitBinary(cur_, OpKind::Or, av, bv, common.width),
                common};
      case BinOp::Xor:
        return {fn_->emitBinary(cur_, OpKind::Xor, av, bv, common.width),
                common};
      case BinOp::Eq: return cmp(OpKind::Eq, OpKind::Eq);
      case BinOp::Ne: return cmp(OpKind::Ne, OpKind::Ne);
      case BinOp::Lt: return cmp(OpKind::Lt, OpKind::ULt);
      case BinOp::Le: return cmp(OpKind::Le, OpKind::ULe);
      case BinOp::Gt: return cmp(OpKind::Gt, OpKind::UGt);
      case BinOp::Ge: return cmp(OpKind::Ge, OpKind::UGe);
      default:
        MPHLS_CHECK(false, "unhandled binop");
        return {};
    }
  }

  TypedValue lowerCast(const Expr& e) {
    TypedValue a = lowerExpr(*e.children[0]);
    int w = e.castWidth;
    switch (e.castKind) {
      case CastKind::Trunc: {
        ValueId v = fn_->value(a.value).width == w
                        ? a.value
                        : fn_->emitUnary(cur_, OpKind::Trunc, a.value,
                                         std::min(w, fn_->value(a.value).width));
        // Truncating to a wider width is an extension by original sign.
        if (fn_->value(v).width < w) v = resize({v, a.type}, w);
        return {v, Type{w, a.type.isSigned}};
      }
      case CastKind::ZExt: {
        if (w < a.type.width) {
          diags_.error(e.loc, "zext target narrower than operand");
          w = a.type.width;
        }
        ValueId v = w == fn_->value(a.value).width
                        ? a.value
                        : fn_->emitUnary(cur_, OpKind::ZExt, a.value, w);
        return {v, Type{w, false}};
      }
      case CastKind::SExt: {
        if (w < a.type.width) {
          diags_.error(e.loc, "sext target narrower than operand");
          w = a.type.width;
        }
        ValueId v = w == fn_->value(a.value).width
                        ? a.value
                        : fn_->emitUnary(cur_, OpKind::SExt, a.value, w);
        return {v, Type{w, true}};
      }
    }
    return {};
  }

  TypedValue lowerTernary(const Expr& e) {
    ValueId cond = toBool(lowerExpr(*e.children[0]));
    TypedValue t = lowerExpr(*e.children[1]);
    TypedValue f = lowerExpr(*e.children[2]);
    Type common = arithType(t.type, f.type);
    ValueId tv = resize(t, common.width);
    ValueId fv = resize(f, common.width);
    return {fn_->emitSelect(cur_, cond, tv, fv), common};
  }

  // ------------------------------------------------------------ statements

  void lowerStmts(const std::vector<ast::StmtPtr>& stmts) {
    for (const auto& s : stmts)
      if (s) lowerStmt(*s);
  }

  void lowerStmt(const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::VarDecl: return lowerVarDecl(s);
      case Stmt::Kind::Assign: return lowerAssign(s);
      case Stmt::Kind::If: return lowerIf(s);
      case Stmt::Kind::While: return lowerWhile(s);
      case Stmt::Kind::DoUntil: return lowerDoUntil(s);
      case Stmt::Kind::Call: return lowerCall(s);
      case Stmt::Kind::Block:
        pushScope();
        lowerStmts(s.body);
        popScope();
        return;
    }
  }

  void lowerVarDecl(const Stmt& s) {
    if (lookupLocal(s.name)) {
      diags_.error(s.loc, "redeclaration of '" + s.name + "'");
      return;
    }
    Symbol sym;
    sym.kind = Symbol::Kind::Var;
    sym.type = s.declType;
    sym.var = fn_->addVar(uniqueVarName(s.name), s.declType.width,
                          s.declType.isSigned);
    scopes_.back().emplace(s.name, sym);
    if (s.init) {
      TypedValue v = lowerExpr(*s.init);
      fn_->emitStore(cur_, sym.var, resize(v, s.declType.width));
    }
  }

  void lowerAssign(const Stmt& s) {
    const Symbol* sym = lookup(s.name);
    if (!sym) {
      diags_.error(s.loc, "assignment to undeclared name '" + s.name + "'");
      return;
    }
    if (sym->kind == Symbol::Kind::InPort) {
      diags_.error(s.loc, "cannot assign to input '" + s.name + "'");
      return;
    }
    TypedValue v = lowerExpr(*s.rhs);
    ValueId rv = resize(v, sym->type.width);
    fn_->emitStore(cur_, sym->var, rv);
    if (sym->kind == Symbol::Kind::OutPort) fn_->emitWrite(cur_, sym->port, rv);
  }

  void lowerIf(const Stmt& s) {
    ValueId cond = toBool(lowerExpr(*s.cond));
    BlockId thenB = newBlock("then");
    BlockId joinB = newBlock("join");
    BlockId elseB = s.elseBody.empty() ? joinB : newBlock("else");
    fn_->setBranch(cur_, cond, thenB, elseB);

    cur_ = thenB;
    pushScope();
    lowerStmts(s.body);
    popScope();
    fn_->setJump(cur_, joinB);

    if (!s.elseBody.empty()) {
      cur_ = elseB;
      pushScope();
      lowerStmts(s.elseBody);
      popScope();
      fn_->setJump(cur_, joinB);
    }
    cur_ = joinB;
  }

  void lowerWhile(const Stmt& s) {
    BlockId header = newBlock("while_head");
    BlockId body = newBlock("while_body");
    BlockId exit = newBlock("while_exit");
    fn_->setJump(cur_, header);

    cur_ = header;
    ValueId cond = toBool(lowerExpr(*s.cond));
    fn_->setBranch(cur_, cond, body, exit);

    cur_ = body;
    pushScope();
    lowerStmts(s.body);
    popScope();
    fn_->setJump(cur_, header);

    cur_ = exit;
  }

  void lowerDoUntil(const Stmt& s) {
    BlockId body = newBlock("do_body");
    BlockId exit = newBlock("do_exit");
    fn_->setJump(cur_, body);

    cur_ = body;
    pushScope();
    lowerStmts(s.body);
    // The until-condition is evaluated in the loop body's final block.
    ValueId cond = toBool(lowerExpr(*s.cond));
    popScope();
    fn_->setBranch(cur_, cond, exit, body);

    cur_ = exit;
  }

  void lowerCall(const Stmt& s) {
    const ast::Proc* callee = design_.findProc(s.callee);
    if (!callee) {
      diags_.error(s.loc, "call to undeclared procedure '" + s.callee + "'");
      return;
    }
    if (callStack_.count(s.callee)) {
      diags_.error(s.loc, "recursive call to '" + s.callee +
                              "' cannot be synthesized");
      return;
    }
    if (s.callArgs.size() != callee->params.size()) {
      diags_.error(s.loc, "call to '" + s.callee + "' has " +
                              std::to_string(s.callArgs.size()) +
                              " arguments, expected " +
                              std::to_string(callee->params.size()));
      return;
    }

    // Inline expansion: bind each in-param to a fresh variable initialized
    // with the argument; each out-param to a fresh variable copied back to
    // the caller's target after the body.
    struct OutBinding {
      VarId calleeVar;
      Symbol target;
      SourceLoc loc;
      Type paramType;
    };
    std::vector<OutBinding> outs;
    std::unordered_map<std::string, Symbol> bound;

    for (std::size_t i = 0; i < callee->params.size(); ++i) {
      const ast::Param& prm = callee->params[i];
      const Expr& arg = *s.callArgs[i];
      Symbol sym;
      sym.kind = Symbol::Kind::Var;
      sym.type = prm.type;
      sym.var = fn_->addVar(uniqueVarName(s.callee + "." + prm.name),
                            prm.type.width, prm.type.isSigned);
      if (prm.isInput) {
        TypedValue v = lowerExpr(arg);
        fn_->emitStore(cur_, sym.var, resize(v, prm.type.width));
      } else {
        if (arg.kind != Expr::Kind::VarRef) {
          diags_.error(arg.loc, "out argument must be a variable name");
          continue;
        }
        const Symbol* target = lookup(arg.name);
        if (!target || target->kind == Symbol::Kind::InPort) {
          diags_.error(arg.loc, "out argument '" + arg.name +
                                    "' is not an assignable variable");
          continue;
        }
        outs.push_back({sym.var, *target, arg.loc, prm.type});
      }
      bound.emplace(prm.name, sym);
    }
    if (!diags_.ok()) return;

    // Callee body sees only its own parameters (fresh scope stack).
    std::vector<std::unordered_map<std::string, Symbol>> savedScopes;
    savedScopes.swap(scopes_);
    pushScope();
    scopes_.back() = std::move(bound);
    pushScope();
    callStack_.insert(s.callee);
    lowerStmts(callee->body);
    callStack_.erase(s.callee);
    popScope();
    popScope();
    scopes_.swap(savedScopes);

    // Copy back out-params.
    for (const auto& ob : outs) {
      ValueId v = fn_->emitLoad(cur_, ob.calleeVar);
      ValueId rv = resize({v, ob.paramType}, ob.target.type.width);
      fn_->emitStore(cur_, ob.target.var, rv);
      if (ob.target.kind == Symbol::Kind::OutPort)
        fn_->emitWrite(cur_, ob.target.port, rv);
    }
  }

  std::string uniqueVarName(const std::string& base) {
    if (!fn_->findVar(base).valid()) return base;
    return base + "." + std::to_string(tempCounter_++);
  }
};

}  // namespace

std::optional<Function> lowerDesign(const ast::Design& design,
                                    const std::string& top,
                                    DiagEngine& diags) {
  Lowerer lw(design, diags);
  return lw.lower(top);
}

}  // namespace mphls
