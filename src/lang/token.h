// Token definitions for BDL, the behavioral description language.
//
// BDL plays the role the tutorial assigns to "a programming language such
// as Pascal or Ada, or a hardware description language ... such as ISPS":
// a small procedural language with typed integer variables, assignments,
// structured control flow and procedures.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/diag.h"

namespace mphls {

enum class Tok {
  End,
  Ident,
  Number,
  // keywords
  KwProc, KwIn, KwOut, KwVar, KwIf, KwElse, KwWhile, KwDo, KwUntil,
  KwInt, KwUint, KwBool, KwTrue, KwFalse,
  KwTrunc, KwZext, KwSext,
  // punctuation
  LParen, RParen, LBrace, RBrace, Comma, Semi, Colon, Question,
  Assign,     // =
  // operators
  Plus, Minus, Star, Slash, Percent,
  Amp, Pipe, Caret, Tilde, Bang,
  AmpAmp, PipePipe,
  Shl, Shr,
  Eq, Ne, Lt, Le, Gt, Ge,
};

[[nodiscard]] std::string_view tokName(Tok t);

struct Token {
  Tok kind = Tok::End;
  std::string text;        ///< identifier spelling
  std::uint64_t number = 0;  ///< numeric literal payload
  SourceLoc loc;
};

}  // namespace mphls
