#include "rtl/rtlsim.h"

#include <vector>

#include "common/bitutil.h"
#include "rtl/source_eval.h"

namespace mphls {

RtlExecResult RtlSimulator::run(
    const std::map<std::string, std::uint64_t>& inputs, long maxCycles,
    const SimObserver& observe) const {
  RtlExecResult res;

  // Stable input port values.
  std::vector<std::uint64_t> inPort(d_.fn.ports().size(), 0);
  for (const auto& p : d_.fn.ports()) {
    if (!p.isInput) continue;
    auto it = inputs.find(p.name);
    MPHLS_CHECK(it != inputs.end(), "missing input '" << p.name << "'");
    inPort[p.id.index()] = truncBits(it->second, p.width);
  }

  std::vector<std::uint64_t> regVal((std::size_t)d_.regs.numRegs, 0);
  std::vector<std::uint64_t> outVal(d_.fn.ports().size(), 0);
  std::vector<bool> outWritten(d_.fn.ports().size(), false);

  StateId cur = d_.ctrl.initial;

  // In-flight multicycle operations: the unit latched its operands at
  // issue; the result becomes visible at the recorded completion cycle.
  std::vector<long> pendingDone((std::size_t)d_.binding.numFus(), -1);
  std::vector<std::uint64_t> pendingVal((std::size_t)d_.binding.numFus(), 0);

  for (long cycle = 0; cycle < maxCycles; ++cycle) {
    const CtrlState& st = d_.ctrl.state(cur);
    if (st.halt) {
      res.finished = true;
      break;
    }
    ++res.cycles;

    // --- combinational phase: functional-unit outputs ---------------------
    std::vector<std::uint64_t> fuOut((std::size_t)d_.binding.numFus(), 0);
    std::vector<bool> fuActive((std::size_t)d_.binding.numFus(), false);
    // Multicycle completions deliver first.
    for (std::size_t f = 0; f < pendingDone.size(); ++f) {
      if (pendingDone[f] == cycle) {
        fuOut[f] = pendingVal[f];
        fuActive[f] = true;
        pendingDone[f] = -1;
      }
    }
    auto srcVal = [&](const Source& s) {
      return rtl::sourceValue(s, regVal, inPort, fuOut, fuActive);
    };

    for (const FuAction& fa : st.fuActions) {
      std::vector<std::uint64_t> args;
      std::vector<int> widths;
      auto pushPort = [&](int p) {
        const MuxSpec& mux = d_.ic.fuInput[(std::size_t)fa.fu][(std::size_t)p];
        MPHLS_CHECK(fa.muxSel[p] >= 0 && fa.muxSel[p] < mux.legs(),
                    "bad mux select");
        const Source& s = mux.sources[(std::size_t)fa.muxSel[p]];
        args.push_back(srcVal(s));
        widths.push_back(s.finalWidth());
      };
      if (fa.kind == OpKind::Select) {
        pushPort(2);  // condition
        pushPort(0);  // taken value
        pushPort(1);  // not-taken value
      } else {
        int arity = opArity(fa.kind);
        for (int p = 0; p < arity; ++p) pushPort(p);
      }
      std::uint64_t value =
          Interpreter::evalPure(fa.kind, fa.width, 0, args, widths);
      if (fa.cycles <= 1) {
        fuOut[(std::size_t)fa.fu] = value;
        fuActive[(std::size_t)fa.fu] = true;
      } else {
        // The unit latches its operands now and delivers later.
        MPHLS_CHECK(pendingDone[(std::size_t)fa.fu] < 0,
                    "unit issued while busy");
        pendingDone[(std::size_t)fa.fu] = cycle + fa.cycles - 1;
        pendingVal[(std::size_t)fa.fu] = value;
      }
    }

    // --- sequential phase: compute all latched values, then commit --------
    std::vector<std::pair<int, std::uint64_t>> regWrites;
    for (const RegAction& ra : st.regActions) {
      const MuxSpec& mux = d_.ic.regInput[(std::size_t)ra.reg];
      const Source& s = mux.sources[(std::size_t)ra.muxSel];
      regWrites.push_back({ra.reg, srcVal(s)});
    }
    std::vector<std::pair<int, std::uint64_t>> portWrites;
    for (const PortAction& pa : st.portActions) {
      const MuxSpec& mux = d_.ic.outPortInput[(std::size_t)pa.port];
      const Source& s = mux.sources[(std::size_t)pa.muxSel];
      portWrites.push_back({pa.port, srcVal(s)});
    }

    // Next state resolves combinationally before the clock edge.
    StateId next;
    if (st.conditional) {
      std::uint64_t c = srcVal(st.cond) & 1;
      next = c ? st.nextTaken : st.nextNot;
    } else {
      next = st.next;
    }

    for (auto& [r, v] : regWrites) regVal[(std::size_t)r] = v;
    for (auto& [p, v] : portWrites) {
      outVal[(std::size_t)p] =
          truncBits(v, d_.fn.ports()[(std::size_t)p].width);
      outWritten[(std::size_t)p] = true;
    }
    if (observe) {
      SimCycle sc;
      sc.cycle = cycle;
      sc.state = (std::uint64_t)cur.index();
      sc.nextState = (std::uint64_t)next.index();
      sc.regs = &regVal;
      sc.outs = &outVal;
      sc.fuActive = &fuActive;
      observe(sc);
    }
    cur = next;
  }

  for (const auto& p : d_.fn.ports())
    if (!p.isInput && outWritten[p.id.index()])
      res.outputs[p.name] = outVal[p.id.index()];
  return res;
}

}  // namespace mphls
