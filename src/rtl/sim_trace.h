// Waveform + coverage recording for RTL simulation runs.
//
// SimTraceRecorder adapts the RtlSimulator observer hook into three
// artifacts computed from one pass over the cycles:
//   - a VCD waveform (clock, FSM state, registers, ports, per-FU busy
//     bits) viewable in GTKWave,
//   - FSM state/transition coverage against the controller's full state
//     graph,
//   - per-functional-unit utilization (busy cycles / total cycles).
//
// VCD time mapping: cycle i occupies ticks [2i, 2i+2) of the 1ns
// timescale. clk rises at 2i and falls at 2i+1; registers, output ports
// and the FSM state latch their cycle-i results at 2(i+1) — the next
// rising edge — matching the posedge semantics of the emitted Verilog.
// The final VCD values therefore equal the simulator's end state.
//
// State numbering follows the FSM controller (CtrlState indices), so the
// recorder pairs with RtlSimulator; MicrocodeSimulator reports microcode
// addresses through the same observer type but needs no coverage model.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/vcd.h"
#include "rtl/design.h"
#include "rtl/rtlsim.h"

namespace mphls {

/// FSM coverage achieved by one or more recorded runs.
struct FsmCoverage {
  std::size_t totalStates = 0;
  std::size_t visitedStates = 0;
  /// Distinct (from, to) edges in the controller graph: 0 for halt
  /// states, up to 2 for conditional states (1 when both arms agree).
  std::size_t totalTransitions = 0;
  std::size_t visitedTransitions = 0;

  [[nodiscard]] double stateCoverage() const {
    return totalStates ? (double)visitedStates / (double)totalStates : 1.0;
  }
  [[nodiscard]] double transitionCoverage() const {
    return totalTransitions
               ? (double)visitedTransitions / (double)totalTransitions
               : 1.0;
  }
};

class SimTraceRecorder {
 public:
  explicit SimTraceRecorder(const RtlDesign& design);

  /// Dump the reset state at t=0 (clk high, initial FSM state, registers
  /// zero, the given input-port values). Call once, before run().
  void begin(const std::map<std::string, std::uint64_t>& inputs);

  /// The hook to pass as RtlSimulator::run's observer.
  [[nodiscard]] SimObserver observer();

  /// Close the waveform with the final clock edge pair. Call after run().
  void finish();

  [[nodiscard]] const obs::VcdWriter& vcd() const { return vcd_; }
  bool writeVcd(const std::string& path) const { return vcd_.writeFile(path); }

  [[nodiscard]] FsmCoverage coverage() const;
  /// Busy fraction per functional unit (empty before any cycle ran).
  [[nodiscard]] std::vector<double> fuUtilization() const;
  /// Register values after the last recorded cycle.
  [[nodiscard]] const std::vector<std::uint64_t>& finalRegs() const {
    return finalRegs_;
  }
  [[nodiscard]] long cycles() const { return cycles_; }

 private:
  void onCycle(const SimCycle& sc);

  const RtlDesign& d_;
  obs::VcdWriter vcd_;
  int clkW_ = -1;
  int stateW_ = -1;
  std::vector<int> regW_;
  std::vector<int> fuW_;
  std::vector<int> portW_;  ///< by port id; -1 for ports with no wire

  long cycles_ = 0;
  std::vector<std::uint64_t> finalRegs_;
  std::vector<long> fuBusy_;
  std::set<std::uint64_t> visitedStates_;
  std::set<std::pair<std::uint64_t, std::uint64_t>> visitedTransitions_;
};

}  // namespace mphls
