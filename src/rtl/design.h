// The complete register-transfer-level design: the output of high-level
// synthesis as the paper defines it (Section 1): "a data path, that is, a
// network of registers, functional units, multiplexers and buses, as well
// as hardware to control the data transfers in that network ... the
// specification of a finite state machine that drives the datapaths".
#pragma once

#include "alloc/fu_alloc.h"
#include "alloc/interconnect.h"
#include "alloc/lifetime.h"
#include "alloc/reg_alloc.h"
#include "ctrl/fsm.h"
#include "ir/cdfg.h"
#include "lib/library.h"
#include "sched/schedule.h"

namespace mphls {

struct RtlDesign {
  Function fn;  ///< the (optimized) behavioral source, kept for reference
  Schedule sched;
  LifetimeInfo lifetimes;
  RegAssignment regs;
  FuBinding binding;
  InterconnectResult ic;
  Controller ctrl;
  HwLibrary lib;

  /// Per-op result width lookup used by the simulator/emitter.
  [[nodiscard]] int opResultWidth(BlockId b, std::size_t opIdx) const {
    const Op& o = fn.op(fn.block(b).ops[opIdx]);
    return o.result.valid() ? fn.value(o.result).width : 1;
  }
};

}  // namespace mphls
