#include "rtl/sim_trace.h"

#include "common/bitutil.h"

namespace mphls {

SimTraceRecorder::SimTraceRecorder(const RtlDesign& design)
    : d_(design), vcd_(design.fn.name().empty() ? "top" : design.fn.name()) {
  clkW_ = vcd_.addWire("clk", 1);
  const int stateBits =
      std::max(1, bitsForStates((std::uint64_t)d_.ctrl.numStates()));
  stateW_ = vcd_.addWire("fsm_state", stateBits);
  regW_.reserve((std::size_t)d_.regs.numRegs);
  for (int r = 0; r < d_.regs.numRegs; ++r) {
    // Sequential append: GCC 12 -Wrestrict -O3 false positive (see below).
    std::string w = "r";
    w += std::to_string(r);
    regW_.push_back(
        vcd_.addWire(w, std::max(1, d_.regs.regWidth[(std::size_t)r])));
  }
  fuW_.reserve((std::size_t)d_.binding.numFus());
  for (int f = 0; f < d_.binding.numFus(); ++f) {
    // Sequential append: GCC 12's -Wrestrict misfires on the temporary
    // chain `"fu" + std::to_string(f) + "_busy"` at -O3 (see obs/vcd.cpp).
    std::string w = "fu";
    w += std::to_string(f);
    w += "_busy";
    fuW_.push_back(vcd_.addWire(w, 1));
  }
  portW_.assign(d_.fn.ports().size(), -1);
  for (const auto& p : d_.fn.ports())
    portW_[p.id.index()] =
        vcd_.addWire("port_" + p.name, std::max(1, p.width));

  finalRegs_.assign((std::size_t)d_.regs.numRegs, 0);
  fuBusy_.assign((std::size_t)d_.binding.numFus(), 0);
}

void SimTraceRecorder::begin(
    const std::map<std::string, std::uint64_t>& inputs) {
  vcd_.change(clkW_, 0, 1);
  vcd_.change(stateW_, 0, (std::uint64_t)d_.ctrl.initial.index());
  visitedStates_.insert((std::uint64_t)d_.ctrl.initial.index());
  for (int r = 0; r < d_.regs.numRegs; ++r)
    vcd_.change(regW_[(std::size_t)r], 0, 0);
  for (int f = 0; f < d_.binding.numFus(); ++f)
    vcd_.change(fuW_[(std::size_t)f], 0, 0);
  for (const auto& p : d_.fn.ports()) {
    std::uint64_t v = 0;
    if (p.isInput) {
      auto it = inputs.find(p.name);
      if (it != inputs.end()) v = truncBits(it->second, p.width);
    }
    vcd_.change(portW_[p.id.index()], 0, v);
  }
}

SimObserver SimTraceRecorder::observer() {
  return [this](const SimCycle& sc) { onCycle(sc); };
}

void SimTraceRecorder::onCycle(const SimCycle& sc) {
  const std::uint64_t t = 2 * (std::uint64_t)sc.cycle;

  vcd_.change(clkW_, t, 1);
  for (std::size_t f = 0; f < fuW_.size(); ++f) {
    const bool busy = sc.fuActive != nullptr && (*sc.fuActive)[f];
    vcd_.change(fuW_[f], t, busy ? 1 : 0);
    if (busy) ++fuBusy_[f];
  }
  vcd_.change(clkW_, t + 1, 0);

  // The clock edge closing this cycle: latched registers / ports and the
  // state the sequencer steps into.
  if (sc.regs != nullptr)
    for (std::size_t r = 0; r < regW_.size(); ++r)
      vcd_.change(regW_[r], t + 2, (*sc.regs)[r]);
  if (sc.outs != nullptr)
    for (const auto& p : d_.fn.ports())
      if (!p.isInput)
        vcd_.change(portW_[p.id.index()], t + 2, (*sc.outs)[p.id.index()]);
  vcd_.change(stateW_, t + 2, sc.nextState);

  visitedStates_.insert(sc.state);
  visitedStates_.insert(sc.nextState);
  visitedTransitions_.insert({sc.state, sc.nextState});
  if (sc.regs != nullptr) finalRegs_ = *sc.regs;
  cycles_ = sc.cycle + 1;
}

void SimTraceRecorder::finish() {
  const std::uint64_t t = 2 * (std::uint64_t)cycles_;
  vcd_.change(clkW_, t, 1);
  vcd_.change(clkW_, t + 1, 0);
}

FsmCoverage SimTraceRecorder::coverage() const {
  FsmCoverage cov;
  cov.totalStates = d_.ctrl.numStates();
  cov.visitedStates = visitedStates_.size();
  std::set<std::pair<std::uint64_t, std::uint64_t>> edges;
  for (const CtrlState& st : d_.ctrl.states) {
    const auto from = (std::uint64_t)st.id.index();
    if (st.halt) continue;
    if (st.conditional) {
      edges.insert({from, (std::uint64_t)st.nextTaken.index()});
      edges.insert({from, (std::uint64_t)st.nextNot.index()});
    } else {
      edges.insert({from, (std::uint64_t)st.next.index()});
    }
  }
  cov.totalTransitions = edges.size();
  cov.visitedTransitions = visitedTransitions_.size();
  return cov;
}

std::vector<double> SimTraceRecorder::fuUtilization() const {
  std::vector<double> util(fuBusy_.size(), 0.0);
  if (cycles_ == 0) return util;
  for (std::size_t f = 0; f < fuBusy_.size(); ++f)
    util[f] = (double)fuBusy_[f] / (double)cycles_;
  return util;
}

}  // namespace mphls
