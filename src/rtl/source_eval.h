// Shared datapath-source evaluation for the FSM-driven and the
// microprogram-driven simulators: resolve a Source against the current
// register file / input ports / per-cycle FU outputs and apply its wiring
// transforms.
#pragma once

#include <cstdint>
#include <vector>

#include "alloc/datapath.h"
#include "common/bitutil.h"
#include "ir/interp.h"

namespace mphls::rtl {

/// Apply a wiring-transform chain to a raw value of width `width`.
inline std::uint64_t applyXform(std::uint64_t v, int width,
                                const std::vector<WireXform>& xform) {
  for (const WireXform& x : xform) {
    v = Interpreter::evalPure(x.kind, x.width, x.imm, {v}, {width});
    width = x.width;
  }
  return v;
}

/// Value of `s` in the current cycle. `fuOut`/`fuActive` describe this
/// cycle's combinational functional-unit outputs.
inline std::uint64_t sourceValue(const Source& s,
                                 const std::vector<std::uint64_t>& regVal,
                                 const std::vector<std::uint64_t>& inPort,
                                 const std::vector<std::uint64_t>& fuOut,
                                 const std::vector<bool>& fuActive) {
  std::uint64_t raw = 0;
  switch (s.kind) {
    case Source::Kind::Reg:
      raw = truncBits(regVal[(std::size_t)s.id], s.rootWidth);
      break;
    case Source::Kind::Port:
      raw = truncBits(inPort[(std::size_t)s.id], s.rootWidth);
      break;
    case Source::Kind::Const:
      raw = truncBits((std::uint64_t)s.imm, s.rootWidth);
      break;
    case Source::Kind::Fu:
      MPHLS_CHECK(s.id >= 0 && fuActive[(std::size_t)s.id],
                  "read of inactive unit output");
      raw = fuOut[(std::size_t)s.id];
      break;
  }
  return applyXform(raw, s.rootWidth, s.xform);
}

}  // namespace mphls::rtl
