// Cycle-accurate simulation of the synthesized RTL structure.
//
// Simulates exactly what the generated hardware does each clock: the FSM
// state selects mux legs, function codes and register enables; functional
// units compute combinationally from the mux outputs; registers and output
// ports latch on the clock edge; the next state follows the (possibly
// condition-steered) transition. Comparing this against the behavioral
// Interpreter is the paper's "design verification" (Section 4): the RT
// structure provably computes the specified behavior on the tested inputs.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "rtl/design.h"

namespace mphls {

struct RtlExecResult {
  std::map<std::string, std::uint64_t> outputs;  ///< written output ports
  long cycles = 0;
  bool finished = false;  ///< reached the halt state
};

class RtlSimulator {
 public:
  explicit RtlSimulator(const RtlDesign& design) : d_(design) {}

  /// Run from reset with the given stable input-port values.
  [[nodiscard]] RtlExecResult run(
      const std::map<std::string, std::uint64_t>& inputs,
      long maxCycles = 1000000) const;

 private:
  const RtlDesign& d_;
};

}  // namespace mphls
