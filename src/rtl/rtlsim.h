// Cycle-accurate simulation of the synthesized RTL structure.
//
// Simulates exactly what the generated hardware does each clock: the FSM
// state selects mux legs, function codes and register enables; functional
// units compute combinationally from the mux outputs; registers and output
// ports latch on the clock edge; the next state follows the (possibly
// condition-steered) transition. Comparing this against the behavioral
// Interpreter is the paper's "design verification" (Section 4): the RT
// structure provably computes the specified behavior on the tested inputs.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "rtl/design.h"

namespace mphls {

struct RtlExecResult {
  std::map<std::string, std::uint64_t> outputs;  ///< written output ports
  long cycles = 0;
  bool finished = false;  ///< reached the halt state
};

/// Post-edge snapshot of one executed cycle, handed to a SimObserver
/// after registers and output ports have committed their cycle results.
/// `state` is the FSM state index (RtlSimulator) or microcode address
/// (MicrocodeSimulator) that drove the cycle; `nextState` is where the
/// sequencer goes on the clock edge. The pointed-to vectors are owned by
/// the simulator and valid only for the duration of the callback.
struct SimCycle {
  long cycle = 0;
  std::uint64_t state = 0;
  std::uint64_t nextState = 0;
  const std::vector<std::uint64_t>* regs = nullptr;
  const std::vector<std::uint64_t>* outs = nullptr;  ///< by port id, all ports
  const std::vector<bool>* fuActive = nullptr;  ///< by fu, busy this cycle
};

/// Per-cycle hook (waveform recording, coverage). Mirrors
/// Interpreter::ValueObserver: an empty function means "not observed" and
/// costs one bool check per cycle.
using SimObserver = std::function<void(const SimCycle&)>;

class RtlSimulator {
 public:
  explicit RtlSimulator(const RtlDesign& design) : d_(design) {}

  /// Run from reset with the given stable input-port values.
  [[nodiscard]] RtlExecResult run(
      const std::map<std::string, std::uint64_t>& inputs,
      long maxCycles = 1000000, const SimObserver& observe = {}) const;

 private:
  const RtlDesign& d_;
};

}  // namespace mphls
