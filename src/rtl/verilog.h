// Verilog emission of the synthesized RTL structure: the register-transfer
// netlist (registers, functional units, multiplexers) plus the hardwired
// FSM controller, as one synthesizable-subset Verilog-2001 module.
#pragma once

#include <string>

#include "rtl/design.h"

namespace mphls {

/// Emit the whole design as a Verilog module named after the function.
/// Interface: clk, rst (synchronous, active high), every BDL input/output
/// port, and `done` (high in the halt state).
[[nodiscard]] std::string emitVerilog(const RtlDesign& design);

}  // namespace mphls
