// Microprogram-driven simulation.
//
// Executes the design the way a microcoded controller would (Section 2:
// "a control step corresponds to a microprogram step"): each cycle the
// microsequencer fetches the word at the current address, the decoded
// fields drive the datapath (register enables, mux selects, function
// codes), and the next address comes from the word's sequencing fields —
// through the condition-select mux for conditional microinstructions.
//
// Agreement between this simulator, the FSM-driven RtlSimulator and the
// behavioral Interpreter demonstrates that both controller implementation
// styles realize the specified behavior.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "ctrl/microcode.h"
#include "rtl/design.h"
#include "rtl/rtlsim.h"

namespace mphls {

class MicrocodeSimulator {
 public:
  MicrocodeSimulator(const RtlDesign& design, const Microprogram& program)
      : d_(design), mp_(program) {}

  /// As RtlSimulator::run; the observer's state/nextState are microcode
  /// addresses rather than FSM state indices.
  [[nodiscard]] RtlExecResult run(
      const std::map<std::string, std::uint64_t>& inputs,
      long maxCycles = 1000000, const SimObserver& observe = {}) const;

 private:
  const RtlDesign& d_;
  const Microprogram& mp_;
};

}  // namespace mphls
