#include "rtl/microsim.h"

#include <array>
#include <functional>
#include <vector>

#include "common/bitutil.h"
#include "rtl/source_eval.h"

namespace mphls {

namespace {

/// Decode a select-field value back to a mux leg index.
int decodeSel(std::uint64_t value, bool horizontal) {
  if (!horizontal) return (int)value;
  // One-hot: position of the set bit (0 when no bit set).
  for (int b = 0; b < 64; ++b)
    if ((value >> b) & 1) return b;
  return 0;
}

}  // namespace

RtlExecResult MicrocodeSimulator::run(
    const std::map<std::string, std::uint64_t>& inputs, long maxCycles,
    const SimObserver& observe) const {
  for (const CtrlState& st : d_.ctrl.states)
    for (const FuAction& fa : st.fuActions)
      MPHLS_CHECK(fa.cycles <= 1,
                  "microcode simulation supports unit-latency designs only");
  RtlExecResult res;
  const bool horizontal = mp_.style == MicrocodeStyle::Horizontal;

  // Field lookup tables by name, resolved once.
  auto fieldIndex = [&](const std::string& name) -> int {
    for (std::size_t i = 0; i < mp_.fields.size(); ++i)
      if (mp_.fields[i].name == name) return (int)i;
    return -1;
  };
  // Sequential appends: GCC 12's -Wrestrict misfires on the temporary chain
  // `"r" + std::to_string(i) + "_en"` at -O3 (same story as obs/vcd.cpp).
  auto sig = [](const char* prefix, int i, const char* suffix) {
    std::string s = prefix;
    s += std::to_string(i);
    s += suffix;
    return s;
  };
  const int nRegs = d_.regs.numRegs;
  const int nFus = d_.binding.numFus();
  std::vector<int> regEnF((std::size_t)nRegs), regSelF((std::size_t)nRegs);
  for (int r = 0; r < nRegs; ++r) {
    regEnF[(std::size_t)r] = fieldIndex(sig("r", r, "_en"));
    regSelF[(std::size_t)r] = fieldIndex(sig("r", r, "_sel"));
  }
  std::vector<int> portEnF(d_.fn.ports().size(), -1),
      portSelF(d_.fn.ports().size(), -1);
  for (std::size_t p = 0; p < d_.fn.ports().size(); ++p) {
    portEnF[p] = fieldIndex(sig("p", (int)p, "_en"));
    portSelF[p] = fieldIndex(sig("p", (int)p, "_sel"));
  }
  std::vector<int> fuOpF((std::size_t)nFus);
  std::vector<std::array<int, 3>> fuMuxF((std::size_t)nFus);
  for (int f = 0; f < nFus; ++f) {
    fuOpF[(std::size_t)f] = fieldIndex(sig("fu", f, "_op"));
    for (int q = 0; q < 3; ++q) {
      std::string m = sig("fu", f, "_m");
      m += std::to_string(q);
      fuMuxF[(std::size_t)f][(std::size_t)q] = fieldIndex(m);
    }
  }
  const int condF = fieldIndex("useq_cond");
  const int condSelF = fieldIndex("useq_condsel");
  const int addrTF = fieldIndex("useq_taken");
  const int addrFF = fieldIndex("useq_fallthrough");
  MPHLS_CHECK(condF >= 0 && addrTF >= 0 && addrFF >= 0,
              "microprogram lacks sequencing fields");

  // Port/register state.
  std::vector<std::uint64_t> inPort(d_.fn.ports().size(), 0);
  for (const auto& p : d_.fn.ports()) {
    if (!p.isInput) continue;
    auto it = inputs.find(p.name);
    MPHLS_CHECK(it != inputs.end(), "missing input '" << p.name << "'");
    inPort[p.id.index()] = truncBits(it->second, p.width);
  }
  std::vector<std::uint64_t> regVal((std::size_t)nRegs, 0);
  std::vector<std::uint64_t> outVal(d_.fn.ports().size(), 0);
  std::vector<bool> outWritten(d_.fn.ports().size(), false);

  std::uint64_t addr = mp_.entryAddress;
  for (long cycle = 0; cycle < maxCycles; ++cycle) {
    if (addr == mp_.haltAddress) {
      res.finished = true;
      break;
    }
    MPHLS_CHECK(addr < mp_.words.size(), "microsequencer address "
                                             << addr << " out of range");
    const auto& w = mp_.words[addr];
    ++res.cycles;

    // --- functional units: execute every unit whose datapath result is
    // captured this cycle. A unit's activity is implied by some register
    // or port selecting it; compute lazily with memoization so chained
    // Fu sources resolve.
    std::vector<std::uint64_t> fuOut((std::size_t)nFus, 0);
    std::vector<bool> fuActive((std::size_t)nFus, false);

    std::function<void(int)> computeFu = [&](int f) {
      if (fuActive[(std::size_t)f]) return;
      fuActive[(std::size_t)f] = true;  // set first: model has no Fu cycles
      const FuInstance& fu = d_.binding.fus[(std::size_t)f];
      int opIdx = fuOpF[(std::size_t)f] >= 0
                      ? decodeSel(w[(std::size_t)fuOpF[(std::size_t)f]],
                                  horizontal)
                      : 0;
      MPHLS_CHECK(opIdx >= 0 && opIdx < (int)fu.kinds.size(),
                  "bad function code");
      OpKind kind = fu.kinds[(std::size_t)opIdx];

      std::vector<std::uint64_t> args;
      std::vector<int> widths;
      auto pushPort = [&](int q) {
        const MuxSpec& mux = d_.ic.fuInput[(std::size_t)f][(std::size_t)q];
        MPHLS_CHECK(mux.legs() > 0, "operand port has no sources");
        int sel = fuMuxF[(std::size_t)f][(std::size_t)q] >= 0
                      ? decodeSel(
                            w[(std::size_t)fuMuxF[(std::size_t)f]
                                  [(std::size_t)q]],
                            horizontal)
                      : 0;
        MPHLS_CHECK(sel >= 0 && sel < mux.legs(), "bad mux select");
        const Source& s = mux.sources[(std::size_t)sel];
        if (s.kind == Source::Kind::Fu) computeFu(s.id);
        args.push_back(rtl::sourceValue(s, regVal, inPort, fuOut, fuActive));
        widths.push_back(s.finalWidth());
      };
      if (kind == OpKind::Select) {
        pushPort(2);
        pushPort(0);
        pushPort(1);
      } else {
        for (int q = 0; q < opArity(kind); ++q) pushPort(q);
      }
      // Executing at the unit's full width is bit-exact after the capture
      // truncation (operands carry their own widths for signed semantics).
      fuOut[(std::size_t)f] = Interpreter::evalPure(
          kind, std::max(fu.width, 1), 0, args, widths);
    };

    auto resolveSource = [&](const Source& s) -> std::uint64_t {
      if (s.kind == Source::Kind::Fu) computeFu(s.id);
      return rtl::sourceValue(s, regVal, inPort, fuOut, fuActive);
    };

    // --- latched writes ---------------------------------------------------
    std::vector<std::pair<int, std::uint64_t>> regWrites;
    for (int r = 0; r < nRegs; ++r) {
      if (regEnF[(std::size_t)r] < 0 ||
          w[(std::size_t)regEnF[(std::size_t)r]] == 0)
        continue;
      const MuxSpec& mux = d_.ic.regInput[(std::size_t)r];
      int sel = regSelF[(std::size_t)r] >= 0
                    ? decodeSel(w[(std::size_t)regSelF[(std::size_t)r]],
                                horizontal)
                    : 0;
      MPHLS_CHECK(sel >= 0 && sel < mux.legs(), "bad register select");
      regWrites.push_back(
          {r, resolveSource(mux.sources[(std::size_t)sel])});
    }
    std::vector<std::pair<std::size_t, std::uint64_t>> portWrites;
    for (std::size_t p = 0; p < d_.fn.ports().size(); ++p) {
      if (portEnF[p] < 0 || w[(std::size_t)portEnF[p]] == 0) continue;
      const MuxSpec& mux = d_.ic.outPortInput[p];
      int sel = portSelF[p] >= 0
                    ? decodeSel(w[(std::size_t)portSelF[p]], horizontal)
                    : 0;
      MPHLS_CHECK(sel >= 0 && sel < mux.legs(), "bad port select");
      portWrites.push_back(
          {p, resolveSource(mux.sources[(std::size_t)sel])});
    }

    // --- microsequencer ----------------------------------------------------
    std::uint64_t nextAddr;
    if (w[(std::size_t)condF]) {
      std::size_t csel =
          condSelF >= 0 ? (std::size_t)w[(std::size_t)condSelF] : 0;
      MPHLS_CHECK(csel < mp_.condTable.size(), "bad condition select");
      std::uint64_t c = resolveSource(mp_.condTable[csel]) & 1;
      nextAddr = c ? w[(std::size_t)addrTF] : w[(std::size_t)addrFF];
    } else {
      nextAddr = w[(std::size_t)addrTF];
    }

    for (auto& [r, v] : regWrites) regVal[(std::size_t)r] = v;
    for (auto& [p, v] : portWrites) {
      outVal[p] = truncBits(v, d_.fn.ports()[p].width);
      outWritten[p] = true;
    }
    if (observe) {
      SimCycle sc;
      sc.cycle = cycle;
      sc.state = addr;
      sc.nextState = nextAddr;
      sc.regs = &regVal;
      sc.outs = &outVal;
      sc.fuActive = &fuActive;
      observe(sc);
    }
    addr = nextAddr;
  }

  for (const auto& p : d_.fn.ports())
    if (!p.isInput && outWritten[p.id.index()])
      res.outputs[p.name] = outVal[p.id.index()];
  return res;
}

}  // namespace mphls
