// Thread-safe leveled structured logger emitting JSONL records.
//
// Each record is one line of JSON: {"ts": "...", "level": "info",
// "component": "serve", "msg": "...", <fields>} — machine-parseable by
// any log pipeline while staying greppable. Long-running components
// (serve daemon, fuzz campaigns, DSE sweeps) log through the process
// global; short CLI runs leave it disabled.
//
// Cost model mirrors the tracer (trace.h): instrumentation is compiled
// in everywhere and must be near-free when logging is off. A call below
// the active threshold performs exactly one relaxed atomic load — no
// clock read, no allocation, no lock (the null-sink fast path). The
// threshold combines the sink level with the flight recorder's level,
// so a single load gates both destinations.
//
// Rate limiting: a token bucket (per process, not per site) bounds
// sustained sink throughput; dropped records are counted and announced
// by a synthetic "rate limited" notice when capacity returns. The
// flight recorder is NOT rate limited — its ring overwrites itself, so
// the most recent events always survive for post-mortem dumps.
//
// Zero-dependency (std + POSIX only) — see trace.h for layering.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>

namespace mphls::obs {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

[[nodiscard]] const char* logLevelName(LogLevel level);
/// Parses "debug"/"info"/"warn"/"error"/"off"; returns Off on unknown.
[[nodiscard]] LogLevel parseLogLevel(std::string_view name);

/// One key=value pair in a structured record. Exact-type constructor
/// overloads keep integer literals from funneling into bool/double.
struct LogField {
  enum class Kind { Str, I64, U64, F64, Bool };

  LogField(std::string_view key, std::string_view value)
      : key(key), kind(Kind::Str), str(value) {}
  LogField(std::string_view key, const char* value)
      : key(key), kind(Kind::Str), str(value == nullptr ? "" : value) {}
  LogField(std::string_view key, const std::string& value)
      : key(key), kind(Kind::Str), str(value) {}
  LogField(std::string_view key, int value)
      : key(key), kind(Kind::I64), i64(value) {}
  LogField(std::string_view key, long value)
      : key(key), kind(Kind::I64), i64(value) {}
  LogField(std::string_view key, long long value)
      : key(key), kind(Kind::I64), i64(value) {}
  LogField(std::string_view key, unsigned value)
      : key(key), kind(Kind::U64), u64(value) {}
  LogField(std::string_view key, unsigned long value)
      : key(key), kind(Kind::U64), u64(value) {}
  LogField(std::string_view key, unsigned long long value)
      : key(key), kind(Kind::U64), u64(value) {}
  LogField(std::string_view key, double value)
      : key(key), kind(Kind::F64), f64(value) {}
  LogField(std::string_view key, bool value)
      : key(key), kind(Kind::Bool), b(value) {}

  std::string_view key;
  Kind kind;
  std::string_view str;
  std::int64_t i64 = 0;
  std::uint64_t u64 = 0;
  double f64 = 0;
  bool b = false;
};

/// Process-wide structured logger. Sink configuration (file/stderr,
/// level, rate limit) is mutex-guarded and expected to happen once at
/// startup; the hot path checks a single combined-threshold atomic.
class Logger {
 public:
  [[nodiscard]] static Logger& global();

  /// True when `level` would reach the sink or the flight recorder —
  /// the null-sink fast path (one relaxed atomic load). Call sites may
  /// use it to skip building expensive field values.
  [[nodiscard]] bool enabled(LogLevel level) const {
    return static_cast<int>(level) >=
           threshold_.load(std::memory_order_relaxed);
  }

  /// Emit one record. No-op below the active threshold.
  void log(LogLevel level, std::string_view component, std::string_view msg,
           std::initializer_list<LogField> fields = {});

  void debug(std::string_view component, std::string_view msg,
             std::initializer_list<LogField> fields = {}) {
    log(LogLevel::Debug, component, msg, fields);
  }
  void info(std::string_view component, std::string_view msg,
            std::initializer_list<LogField> fields = {}) {
    log(LogLevel::Info, component, msg, fields);
  }
  void warn(std::string_view component, std::string_view msg,
            std::initializer_list<LogField> fields = {}) {
    log(LogLevel::Warn, component, msg, fields);
  }
  void error(std::string_view component, std::string_view msg,
             std::initializer_list<LogField> fields = {}) {
    log(LogLevel::Error, component, msg, fields);
  }

  /// Open `path` in append mode as the sink. Returns false (sink
  /// unchanged) if the file cannot be opened.
  bool openFile(const std::string& path);
  /// Route records to stderr (the default sink once a level is set).
  void logToStderr();
  /// Minimum level that reaches the sink. Off (the default) disables
  /// the sink entirely.
  void setLevel(LogLevel level);
  [[nodiscard]] LogLevel level() const;

  /// Token-bucket rate limit on sink writes: sustained `ratePerSec`
  /// records with bursts up to `burst`. 0 = unlimited (default).
  /// Flight-recorder forwarding is never rate limited.
  void setRateLimit(double ratePerSec, double burst);
  /// Records dropped by the rate limiter since startup/reset.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Recompute the combined threshold after the flight recorder's
  /// enable state changes (called by FlightRecorder::enable).
  void refresh();

  /// Test hook: close the sink, restore defaults, zero drop counts.
  void resetForTest();

  Logger();
  ~Logger();
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

 private:
  struct Impl;
  Impl* impl_;
  std::atomic<int> threshold_{static_cast<int>(LogLevel::Off)};
};

}  // namespace mphls::obs
