// Hierarchical span tracer with Chrome trace_event JSON export.
//
// The tutorial presents synthesis as a pipeline of inspectable subtasks
// (compile -> transform -> schedule -> allocate -> bind -> control
// synthesis); the tracer makes that pipeline visible as nested spans on a
// timeline, loadable in Perfetto / chrome://tracing. Every thread gets its
// own event track (ThreadPool workers register stable names), so parallel
// DSE fan-out shows up as side-by-side per-worker lanes.
//
// Cost model: instrumentation is compiled in everywhere and must be
// near-free when tracing is off. A TraceSpan with no accumulator performs
// exactly one relaxed atomic load when the tracer is disabled — no clock
// read, no allocation, no lock (the null-sink fast path). Spans that also
// feed a StageTimes field (accum != nullptr) always read the clock, which
// is what the pre-existing stage timers did; the span is then the single
// source of truth for both the trace event and the accumulated seconds.
//
// This layer is deliberately zero-dependency (std only): common/ links
// against it, so it cannot use anything above obs/.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mphls::obs {

/// One recorded event. `phase` follows the Chrome trace_event format:
/// 'B' span begin, 'E' span end, 'i' instant.
struct TraceEvent {
  std::string name;
  std::string arg;  ///< optional detail payload; empty = omitted
  char phase = 'i';
  double tsMicros = 0;  ///< microseconds since the tracer epoch
};

/// Thread-safe process-wide span collector. Threads register lazily on
/// first use and keep a stable integer track id (`tid`) for life; event
/// appends touch only the calling thread's buffer (one uncontended mutex).
class Tracer {
 public:
  struct ThreadBuf;  // one event track; defined in trace.cpp

  /// The process-wide tracer used by all instrumentation sites. Tests
  /// should use this instance (clear() between cases) — per-thread track
  /// caching assumes one long-lived tracer.
  [[nodiscard]] static Tracer& global();

  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Stable track id of the calling thread (registers it on first use).
  int currentTid();
  /// Track name of the calling thread ("thread-N" unless named).
  [[nodiscard]] std::string currentThreadName();
  /// Name the calling thread's track (shown in Perfetto); returns its tid.
  int setThreadName(const std::string& name);

  /// Microseconds since the tracer epoch (process start, monotonic).
  [[nodiscard]] double nowMicros() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  // Raw event appends. Events land in the calling thread's track; the
  // RAII TraceSpan below is the intended interface.
  void beginSpanAt(std::string name, double tsMicros, std::string arg = {});
  void endSpanAt(std::string name, double tsMicros);
  void instant(std::string name, std::string arg = {});

  /// Copy of one thread's track, for tests and custom exporters.
  struct TrackSnapshot {
    int tid = 0;
    std::string name;
    std::vector<TraceEvent> events;
  };
  [[nodiscard]] std::vector<TrackSnapshot> snapshot() const;

  /// Total recorded events across all tracks.
  [[nodiscard]] std::size_t eventCount() const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}), with one metadata
  /// event naming each track. Loadable in Perfetto / chrome://tracing.
  [[nodiscard]] std::string chromeTraceJson() const;
  bool writeChromeTrace(const std::string& path) const;

  /// Drop all recorded events. Registered tracks (tids, names) persist so
  /// cached thread-local track pointers stay valid.
  void clear();

  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

 private:
  ThreadBuf& localBuf();

  mutable std::mutex m_;  ///< guards threads_ (track registry)
  std::vector<std::shared_ptr<ThreadBuf>> threads_;
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII scope: emits a B/E event pair on the calling thread's track while
/// the tracer is enabled, and optionally accumulates its elapsed seconds
/// into `*accumSeconds` (always, enabled or not) — both derived from the
/// same two clock reads, so a trace and a StageTimes field reporting the
/// same stage can never disagree.
class TraceSpan {
 public:
  explicit TraceSpan(std::string name, double* accumSeconds = nullptr)
      : TraceSpan(std::move(name), std::string(), accumSeconds) {}

  TraceSpan(std::string name, std::string arg,
            double* accumSeconds = nullptr)
      : accum_(accumSeconds), emit_(Tracer::global().enabled()) {
    if (!emit_ && accum_ == nullptr) return;  // null-sink fast path
    startMicros_ = Tracer::global().nowMicros();
    if (emit_) {
      name_ = std::move(name);
      Tracer::global().beginSpanAt(name_, startMicros_, std::move(arg));
    }
  }

  ~TraceSpan() {
    if (!emit_ && accum_ == nullptr) return;
    const double end = Tracer::global().nowMicros();
    if (accum_ != nullptr) *accum_ += (end - startMicros_) / 1e6;
    if (emit_) Tracer::global().endSpanAt(std::move(name_), end);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  std::string name_;  ///< kept for the E event (only when emitting)
  double* accum_ = nullptr;
  bool emit_ = false;
  double startMicros_ = 0;
};

/// Append a JSON string literal (quotes included), escaping control
/// characters and validating UTF-8: every byte of an invalid sequence
/// is replaced by U+FFFD so the output is always valid JSON/UTF-8.
/// Shared by the trace, metrics, and log exporters.
void appendJsonString(std::string& out, std::string_view s);

}  // namespace mphls::obs
