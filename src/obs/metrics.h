// Process-wide metrics registry: counters, gauges, histograms.
//
// Pipeline stages publish here (pass change counts, stage seconds, cache
// hit/miss, DSE point timings, fuzz campaign progress, simulation
// coverage); the CLI exports a snapshot as JSON via --stats and `mphls
// profile`, and `mphls bench` embeds the same snapshot in its report so
// there is one source of numeric truth.
//
// Handles returned by counter()/gauge()/histogram() are stable for the
// registry's lifetime: reset() zeroes values but never invalidates them,
// so instrumentation sites may cache handles across test cases.
//
// Zero-dependency (std only) — see trace.h for the layering rationale.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace mphls::obs {

/// Monotonic event count (thread-safe).
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written value (thread-safe).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

/// Running distribution summary: count/sum/min/max plus fixed latency
/// buckets. Lock-free: every observe() is a handful of relaxed atomic
/// RMWs (sum/min/max via compare-exchange on the double's bit pattern),
/// so the serve daemon's hot per-request histograms never serialize
/// worker threads on a mutex. A concurrent snapshot can see a torn
/// view (count ahead of sum by in-flight observations); exporters that
/// need internal consistency (Prometheus `_count` vs `+Inf`) derive
/// both from the same bucket array.
class Histogram {
 public:
  /// Upper bounds (seconds) of the fixed buckets, shared by every
  /// histogram; the implicit final bucket is +Inf. Chosen for
  /// request/stage latencies: 0.5 ms .. 10 s, roughly 2-2.5x apart.
  static constexpr std::array<double, 14> kBucketBounds = {
      0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
      0.1,    0.25,  0.5,    1.0,   2.5,  5.0,   10.0};
  static constexpr std::size_t kNumBuckets = kBucketBounds.size() + 1;

  void observe(double v);
  struct Stats {
    std::uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    /// Per-bucket counts (NOT cumulative); last entry is the +Inf
    /// overflow bucket.
    std::array<std::uint64_t, kNumBuckets> buckets{};
    [[nodiscard]] double mean() const { return count ? sum / count : 0; }
    /// Sum of the bucket array — the count Prometheus exposition uses
    /// so `_count` always equals the cumulative `+Inf` bucket.
    [[nodiscard]] std::uint64_t bucketTotal() const {
      std::uint64_t t = 0;
      for (std::uint64_t b : buckets) t += b;
      return t;
    }
  };
  [[nodiscard]] Stats stats() const;
  void reset();

 private:
  static constexpr std::uint64_t kPosInfBits =
      std::bit_cast<std::uint64_t>(std::numeric_limits<double>::infinity());
  static constexpr std::uint64_t kNegInfBits =
      std::bit_cast<std::uint64_t>(-std::numeric_limits<double>::infinity());

  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sumBits_{0};  ///< double 0.0 is all-zero bits
  std::atomic<std::uint64_t> minBits_{kPosInfBits};
  std::atomic<std::uint64_t> maxBits_{kNegInfBits};
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
};

/// Name -> instrument registry. Lookups intern the name on first use and
/// return a stable reference; values snapshot/export as JSON.
class MetricsRegistry {
 public:
  [[nodiscard]] static MetricsRegistry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Point-in-time copy of every instrument, sorted by name.
  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram::Stats>> histograms;
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
  /// sum, min, max, mean}, ...}}
  [[nodiscard]] std::string toJson() const;
  bool writeJson(const std::string& path) const;

  /// Prometheus text exposition format (v0): names sanitized to
  /// [a-zA-Z0-9_] under an `mphls_` prefix, counters suffixed
  /// `_total`, histograms as cumulative `_bucket{le="..."}` series
  /// plus `_sum`/`_count` (`_count` derived from the `+Inf` bucket so
  /// a concurrent scrape is internally consistent).
  [[nodiscard]] std::string toPrometheus() const;

  /// Zero every instrument. Handles stay valid (names persist).
  void reset();

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace mphls::obs
