// Process-wide metrics registry: counters, gauges, histograms.
//
// Pipeline stages publish here (pass change counts, stage seconds, cache
// hit/miss, DSE point timings, fuzz campaign progress, simulation
// coverage); the CLI exports a snapshot as JSON via --stats and `mphls
// profile`, and `mphls bench` embeds the same snapshot in its report so
// there is one source of numeric truth.
//
// Handles returned by counter()/gauge()/histogram() are stable for the
// registry's lifetime: reset() zeroes values but never invalidates them,
// so instrumentation sites may cache handles across test cases.
//
// Zero-dependency (std only) — see trace.h for the layering rationale.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace mphls::obs {

/// Monotonic event count (thread-safe).
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written value (thread-safe).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

/// Running distribution summary: count/sum/min/max (thread-safe; one
/// mutex per histogram — observation sites are not hot enough to need
/// sharding, and exact min/max beat lossy atomics).
class Histogram {
 public:
  void observe(double v);
  struct Stats {
    std::uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    [[nodiscard]] double mean() const { return count ? sum / count : 0; }
  };
  [[nodiscard]] Stats stats() const;
  void reset();

 private:
  mutable std::mutex m_;
  Stats s_;
};

/// Name -> instrument registry. Lookups intern the name on first use and
/// return a stable reference; values snapshot/export as JSON.
class MetricsRegistry {
 public:
  [[nodiscard]] static MetricsRegistry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Point-in-time copy of every instrument, sorted by name.
  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram::Stats>> histograms;
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
  /// sum, min, max, mean}, ...}}
  [[nodiscard]] std::string toJson() const;
  bool writeJson(const std::string& path) const;

  /// Zero every instrument. Handles stay valid (names persist).
  void reset();

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace mphls::obs
