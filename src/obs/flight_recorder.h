// Flight recorder: fixed-size lock-free per-thread rings of recent
// log/span events, dumpable from a signal handler for post-mortems.
//
// Memory layout: a static pool of kMaxThreads rings, each a fixed
// array of POD FlightEvent slots (inline char buffers, no pointers)
// plus an atomic head counter. A thread claims a ring on first record
// and keeps it for life; only the owner writes, so recording is one
// slot memcpy plus a release store of head — no locks, no allocation,
// wait-free. Writers overwrite the oldest slot when the ring is full;
// the most recent events always survive.
//
// Signal-safety argument for dumpTo(): the dumper reads POD slots and
// atomic counters, formats into stack buffers with hand-rolled
// integer/float printers (no snprintf, no locale), and calls only
// async-signal-safe syscalls (open/write/close). It never takes a
// lock and never allocates. A slot being overwritten concurrently can
// yield one torn event (mixed old/new bytes) — tolerable in a crash
// dump, and impossible in the single-threaded post-SIGSEGV case. The
// global() instance is materialized by enable()/installCrashHandlers()
// at startup so the handler never runs a static initializer.
//
// Zero-dependency (std + POSIX only) — see trace.h for layering.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "obs/log.h"

namespace mphls::obs {

/// One recorded event. POD with inline storage: safe to read from a
/// signal handler, torn reads yield garbage text but never a fault.
/// `kind`: 'L' log, 'B' span begin, 'E' span end, 'i' instant.
struct FlightEvent {
  double tsMicros = 0;   ///< tracer-epoch timestamp (Tracer::nowMicros)
  std::uint64_t seq = 0; ///< global order (rings are per-thread)
  std::uint32_t thread = 0;  ///< tracer track id of the recording thread
  char kind = 'L';
  char level = 'I';  ///< 'D','I','W','E' (logs); 'I' for span events
  char component[18] = {};  ///< NUL-padded, truncated
  char message[96] = {};    ///< NUL-padded, truncated
};

/// Process-wide recorder. enable() is idempotent (first capacity wins);
/// recording before enable() is a near-free no-op (one relaxed load).
class FlightRecorder {
 public:
  static constexpr std::size_t kMaxThreads = 64;
  static constexpr std::size_t kDefaultEventsPerThread = 256;

  [[nodiscard]] static FlightRecorder& global();

  /// Allocate the rings and start recording. Idempotent; the first
  /// call's capacity sticks. Refreshes the Logger threshold so log
  /// records start forwarding here.
  void enable(std::size_t eventsPerThread = kDefaultEventsPerThread);
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t capacityPerThread() const;
  /// Total events ever recorded (monotonic, includes overwritten ones).
  [[nodiscard]] std::uint64_t totalRecorded() const;

  /// Record one event on the calling thread's ring. No-op when
  /// disabled. `component`/`message` are truncated to the inline
  /// capacity; bytes unsafe for the dump format are sanitized there,
  /// not here.
  void record(char kind, LogLevel level, std::string_view component,
              std::string_view message);

  /// Async-signal-safe dump of every ring to `fd` as JSONL: one
  /// {"flight_recorder": {...}} meta line, then one event object per
  /// line. Events are NOT globally sorted (per-thread rings); decoders
  /// sort by "seq".
  void dumpTo(int fd) const;
  /// open(path, O_CREAT|O_WRONLY|O_TRUNC) + dumpTo + close. Returns
  /// false if the open fails. Async-signal-safe.
  bool dumpToFile(const char* path) const;

  /// Normal-path decode for `GET /debug/flight`: same records as
  /// dumpTo but sorted by seq, as {"flight_recorder": {...},
  /// "events": [...]}.
  [[nodiscard]] std::string toJson() const;

  /// Install SIGSEGV/SIGABRT/SIGQUIT handlers that dump to `path`.
  /// On SIGQUIT the process continues (poll loops see EINTR); on fatal
  /// signals the default disposition is restored and the signal
  /// re-raised so the exit status is preserved. `path` is copied into
  /// static storage. Also calls enable() with the default capacity.
  static void installCrashHandlers(const char* path);
  /// Path registered by installCrashHandlers (empty if none).
  [[nodiscard]] static const char* crashDumpPath();

  /// Test hook: drop all recorded events (keeps rings + enable state).
  void clearForTest();

  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

 private:
  struct Ring {
    std::atomic<std::uint64_t> head{0};  ///< slots written (monotonic)
    /// capacity_ events as raw 64-bit words. Slot bytes are copied in
    /// and out with relaxed word-size atomics so a concurrent reader
    /// (dump/toJson) sees at worst a torn *event*, never a data race.
    std::uint64_t* slots = nullptr;
    std::atomic<bool> claimed{false};
  };

  Ring* claimRing();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> seq_{0};
  std::size_t capacity_ = 0;     ///< events per ring; set once by enable()
  Ring rings_[kMaxThreads];
  std::atomic<std::size_t> ringsClaimed_{0};
};

}  // namespace mphls::obs
