#include "obs/trace.h"

#include <cstdio>
#include <fstream>

namespace mphls::obs {

namespace {

// Per-thread track cache. Keyed by owner so a thread touching a second
// Tracer instance re-registers there; the registry keeps every track alive
// (shared_ptr), so the raw cached pointer never dangles.
thread_local const Tracer* tlsOwner = nullptr;
thread_local Tracer::ThreadBuf* tlsBuf = nullptr;

}  // namespace

struct Tracer::ThreadBuf {
  int tid = 0;
  std::mutex m;  ///< guards name + events (owner appends, exporter reads)
  std::string name;
  std::vector<TraceEvent> events;
};

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}
Tracer::~Tracer() = default;

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

Tracer::ThreadBuf& Tracer::localBuf() {
  if (tlsOwner == this && tlsBuf != nullptr) return *tlsBuf;
  std::lock_guard<std::mutex> lk(m_);
  auto buf = std::make_shared<ThreadBuf>();
  buf->tid = static_cast<int>(threads_.size());
  buf->name = "thread-" + std::to_string(buf->tid);
  threads_.push_back(buf);
  tlsOwner = this;
  tlsBuf = buf.get();
  return *buf;
}

int Tracer::currentTid() { return localBuf().tid; }

std::string Tracer::currentThreadName() {
  ThreadBuf& b = localBuf();
  std::lock_guard<std::mutex> lk(b.m);
  return b.name;
}

int Tracer::setThreadName(const std::string& name) {
  ThreadBuf& b = localBuf();
  std::lock_guard<std::mutex> lk(b.m);
  b.name = name;
  return b.tid;
}

void Tracer::beginSpanAt(std::string name, double tsMicros,
                         std::string arg) {
  ThreadBuf& b = localBuf();
  std::lock_guard<std::mutex> lk(b.m);
  b.events.push_back({std::move(name), std::move(arg), 'B', tsMicros});
}

void Tracer::endSpanAt(std::string name, double tsMicros) {
  ThreadBuf& b = localBuf();
  std::lock_guard<std::mutex> lk(b.m);
  b.events.push_back({std::move(name), std::string(), 'E', tsMicros});
}

void Tracer::instant(std::string name, std::string arg) {
  if (!enabled()) return;
  ThreadBuf& b = localBuf();
  const double ts = nowMicros();
  std::lock_guard<std::mutex> lk(b.m);
  b.events.push_back({std::move(name), std::move(arg), 'i', ts});
}

std::vector<Tracer::TrackSnapshot> Tracer::snapshot() const {
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  {
    std::lock_guard<std::mutex> lk(m_);
    bufs = threads_;
  }
  std::vector<TrackSnapshot> out;
  out.reserve(bufs.size());
  for (const auto& b : bufs) {
    std::lock_guard<std::mutex> lk(b->m);
    out.push_back({b->tid, b->name, b->events});
  }
  return out;
}

std::size_t Tracer::eventCount() const {
  std::size_t n = 0;
  for (const auto& t : snapshot()) n += t.events.size();
  return n;
}

void Tracer::clear() {
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  {
    std::lock_guard<std::mutex> lk(m_);
    bufs = threads_;
  }
  for (const auto& b : bufs) {
    std::lock_guard<std::mutex> lk(b->m);
    b->events.clear();
  }
}

void appendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string Tracer::chromeTraceJson() const {
  const auto tracks = snapshot();
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",";
    out += "\n  ";
    first = false;
  };
  for (const auto& t : tracks) {
    sep();
    out += "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": " +
           std::to_string(t.tid) + ", \"args\": {\"name\": ";
    appendJsonString(out, t.name);
    out += "}}";
  }
  char ts[40];
  for (const auto& t : tracks) {
    for (const TraceEvent& e : t.events) {
      sep();
      out += "{\"name\": ";
      appendJsonString(out, e.name);
      out += ", \"cat\": \"mphls\", \"ph\": \"";
      out += e.phase;
      out += "\", \"pid\": 1, \"tid\": " + std::to_string(t.tid);
      std::snprintf(ts, sizeof ts, ", \"ts\": %.3f", e.tsMicros);
      out += ts;
      if (e.phase == 'i') out += ", \"s\": \"t\"";
      if (!e.arg.empty()) {
        out += ", \"args\": {\"detail\": ";
        appendJsonString(out, e.arg);
        out += "}";
      }
      out += "}";
    }
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

bool Tracer::writeChromeTrace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << chromeTraceJson();
  return static_cast<bool>(out);
}

}  // namespace mphls::obs
