#include "obs/trace.h"

#include <cstdint>
#include <cstdio>
#include <fstream>

#include "obs/flight_recorder.h"

namespace mphls::obs {

namespace {

// Per-thread track cache. Keyed by owner so a thread touching a second
// Tracer instance re-registers there; the registry keeps every track alive
// (shared_ptr), so the raw cached pointer never dangles.
thread_local const Tracer* tlsOwner = nullptr;
thread_local Tracer::ThreadBuf* tlsBuf = nullptr;

}  // namespace

struct Tracer::ThreadBuf {
  int tid = 0;
  std::mutex m;  ///< guards name + events (owner appends, exporter reads)
  std::string name;
  std::vector<TraceEvent> events;
};

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}
Tracer::~Tracer() = default;

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

Tracer::ThreadBuf& Tracer::localBuf() {
  if (tlsOwner == this && tlsBuf != nullptr) return *tlsBuf;
  std::lock_guard<std::mutex> lk(m_);
  auto buf = std::make_shared<ThreadBuf>();
  buf->tid = static_cast<int>(threads_.size());
  buf->name = "thread-" + std::to_string(buf->tid);
  threads_.push_back(buf);
  tlsOwner = this;
  tlsBuf = buf.get();
  return *buf;
}

int Tracer::currentTid() { return localBuf().tid; }

std::string Tracer::currentThreadName() {
  ThreadBuf& b = localBuf();
  std::lock_guard<std::mutex> lk(b.m);
  return b.name;
}

int Tracer::setThreadName(const std::string& name) {
  ThreadBuf& b = localBuf();
  std::lock_guard<std::mutex> lk(b.m);
  b.name = name;
  return b.tid;
}

void Tracer::beginSpanAt(std::string name, double tsMicros,
                         std::string arg) {
  FlightRecorder& fr = FlightRecorder::global();
  if (fr.enabled()) fr.record('B', LogLevel::Info, "trace", name);
  ThreadBuf& b = localBuf();
  std::lock_guard<std::mutex> lk(b.m);
  b.events.push_back({std::move(name), std::move(arg), 'B', tsMicros});
}

void Tracer::endSpanAt(std::string name, double tsMicros) {
  FlightRecorder& fr = FlightRecorder::global();
  if (fr.enabled()) fr.record('E', LogLevel::Info, "trace", name);
  ThreadBuf& b = localBuf();
  std::lock_guard<std::mutex> lk(b.m);
  b.events.push_back({std::move(name), std::string(), 'E', tsMicros});
}

void Tracer::instant(std::string name, std::string arg) {
  if (!enabled()) return;
  FlightRecorder& fr = FlightRecorder::global();
  if (fr.enabled()) fr.record('i', LogLevel::Info, "trace", name);
  ThreadBuf& b = localBuf();
  const double ts = nowMicros();
  std::lock_guard<std::mutex> lk(b.m);
  b.events.push_back({std::move(name), std::move(arg), 'i', ts});
}

std::vector<Tracer::TrackSnapshot> Tracer::snapshot() const {
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  {
    std::lock_guard<std::mutex> lk(m_);
    bufs = threads_;
  }
  std::vector<TrackSnapshot> out;
  out.reserve(bufs.size());
  for (const auto& b : bufs) {
    std::lock_guard<std::mutex> lk(b->m);
    out.push_back({b->tid, b->name, b->events});
  }
  return out;
}

std::size_t Tracer::eventCount() const {
  std::size_t n = 0;
  for (const auto& t : snapshot()) n += t.events.size();
  return n;
}

void Tracer::clear() {
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  {
    std::lock_guard<std::mutex> lk(m_);
    bufs = threads_;
  }
  for (const auto& b : bufs) {
    std::lock_guard<std::mutex> lk(b->m);
    b->events.clear();
  }
}

namespace {

/// Length of the valid UTF-8 sequence starting at s[i], or 0 if the
/// bytes there are not well-formed (overlong forms, surrogates, and
/// code points above U+10FFFF all count as invalid).
std::size_t utf8SequenceLength(std::string_view s, std::size_t i) {
  const auto b0 = static_cast<unsigned char>(s[i]);
  if (b0 < 0x80) return 1;
  std::size_t len = 0;
  if ((b0 & 0xe0) == 0xc0) len = 2;
  else if ((b0 & 0xf0) == 0xe0) len = 3;
  else if ((b0 & 0xf8) == 0xf0) len = 4;
  else return 0;
  if (i + len > s.size()) return 0;
  std::uint32_t cp = b0 & (0x7f >> len);
  for (std::size_t k = 1; k < len; ++k) {
    const auto b = static_cast<unsigned char>(s[i + k]);
    if ((b & 0xc0) != 0x80) return 0;
    cp = (cp << 6) | (b & 0x3f);
  }
  static constexpr std::uint32_t kMinForLen[5] = {0, 0, 0x80, 0x800,
                                                  0x10000};
  if (cp < kMinForLen[len]) return 0;                // overlong encoding
  if (cp >= 0xd800 && cp <= 0xdfff) return 0;       // UTF-16 surrogate
  if (cp > 0x10ffff) return 0;                      // beyond Unicode
  return len;
}

}  // namespace

void appendJsonString(std::string& out, std::string_view s) {
  out += '"';
  for (std::size_t i = 0; i < s.size();) {
    const char c = s[i];
    const auto u = static_cast<unsigned char>(c);
    if (u < 0x80) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
          if (u < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
      ++i;
      continue;
    }
    const std::size_t len = utf8SequenceLength(s, i);
    if (len == 0) {
      out += "\xef\xbf\xbd";  // U+FFFD per invalid byte
      ++i;
    } else {
      out.append(s.data() + i, len);
      i += len;
    }
  }
  out += '"';
}

std::string Tracer::chromeTraceJson() const {
  const auto tracks = snapshot();
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",";
    out += "\n  ";
    first = false;
  };
  for (const auto& t : tracks) {
    sep();
    out += "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": " +
           std::to_string(t.tid) + ", \"args\": {\"name\": ";
    appendJsonString(out, t.name);
    out += "}}";
  }
  char ts[40];
  for (const auto& t : tracks) {
    for (const TraceEvent& e : t.events) {
      sep();
      out += "{\"name\": ";
      appendJsonString(out, e.name);
      out += ", \"cat\": \"mphls\", \"ph\": \"";
      out += e.phase;
      out += "\", \"pid\": 1, \"tid\": " + std::to_string(t.tid);
      std::snprintf(ts, sizeof ts, ", \"ts\": %.3f", e.tsMicros);
      out += ts;
      if (e.phase == 'i') out += ", \"s\": \"t\"";
      if (!e.arg.empty()) {
        out += ", \"args\": {\"detail\": ";
        appendJsonString(out, e.arg);
        out += "}";
      }
      out += "}";
    }
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

bool Tracer::writeChromeTrace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << chromeTraceJson();
  return static_cast<bool>(out);
}

}  // namespace mphls::obs
