#include "obs/metrics.h"

#include <cstdio>
#include <fstream>

#include "obs/trace.h"

namespace mphls::obs {

void Histogram::observe(double v) {
  std::lock_guard<std::mutex> lk(m_);
  if (s_.count == 0) {
    s_.min = s_.max = v;
  } else {
    if (v < s_.min) s_.min = v;
    if (v > s_.max) s_.max = v;
  }
  ++s_.count;
  s_.sum += v;
}

Histogram::Stats Histogram::stats() const {
  std::lock_guard<std::mutex> lk(m_);
  return s_;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lk(m_);
  s_ = Stats{};
}

struct MetricsRegistry::Impl {
  mutable std::mutex m;  ///< guards the maps, not instrument values
  // std::map: pointer-stable nodes (handles live as long as the registry)
  // and name-sorted iteration for deterministic export.
  std::map<std::string, Counter> counters;
  std::map<std::string, Gauge> gauges;
  std::map<std::string, Histogram> histograms;
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}
MetricsRegistry::~MetricsRegistry() { delete impl_; }

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(impl_->m);
  return impl_->counters[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(impl_->m);
  return impl_->gauges[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(impl_->m);
  return impl_->histograms[name];
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk(impl_->m);
  Snapshot s;
  s.counters.reserve(impl_->counters.size());
  for (const auto& [name, c] : impl_->counters)
    s.counters.emplace_back(name, c.value());
  s.gauges.reserve(impl_->gauges.size());
  for (const auto& [name, g] : impl_->gauges)
    s.gauges.emplace_back(name, g.value());
  s.histograms.reserve(impl_->histograms.size());
  for (const auto& [name, h] : impl_->histograms)
    s.histograms.emplace_back(name, h.stats());
  return s;
}

namespace {

void appendNumber(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

}  // namespace

std::string MetricsRegistry::toJson() const {
  const Snapshot s = snapshot();
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : s.counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    appendJsonString(out, name);
    out += ": " + std::to_string(v);
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : s.gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    appendJsonString(out, name);
    out += ": ";
    appendNumber(out, v);
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : s.histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    appendJsonString(out, name);
    out += ": {\"count\": " + std::to_string(h.count) + ", \"sum\": ";
    appendNumber(out, h.sum);
    out += ", \"min\": ";
    appendNumber(out, h.min);
    out += ", \"max\": ";
    appendNumber(out, h.max);
    out += ", \"mean\": ";
    appendNumber(out, h.mean());
    out += "}";
  }
  out += first ? "}" : "\n  }";
  out += "\n}\n";
  return out;
}

bool MetricsRegistry::writeJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << toJson();
  return static_cast<bool>(out);
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lk(impl_->m);
  for (auto& [name, c] : impl_->counters) c.reset();
  for (auto& [name, g] : impl_->gauges) g.reset();
  for (auto& [name, h] : impl_->histograms) h.reset();
}

}  // namespace mphls::obs
