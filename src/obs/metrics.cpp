#include "obs/metrics.h"

#include <cstdio>
#include <fstream>

#include "obs/trace.h"

namespace mphls::obs {

namespace {

// CAS loops on the double's bit pattern: lock-free accumulation with
// exact (not lossy) min/max. Relaxed ordering — metric values are
// independent statistics, not synchronization edges.

void atomicAddDouble(std::atomic<std::uint64_t>& bits, double v) {
  std::uint64_t cur = bits.load(std::memory_order_relaxed);
  while (!bits.compare_exchange_weak(
      cur, std::bit_cast<std::uint64_t>(std::bit_cast<double>(cur) + v),
      std::memory_order_relaxed)) {
  }
}

void atomicMinDouble(std::atomic<std::uint64_t>& bits, double v) {
  std::uint64_t cur = bits.load(std::memory_order_relaxed);
  while (v < std::bit_cast<double>(cur) &&
         !bits.compare_exchange_weak(cur, std::bit_cast<std::uint64_t>(v),
                                     std::memory_order_relaxed)) {
  }
}

void atomicMaxDouble(std::atomic<std::uint64_t>& bits, double v) {
  std::uint64_t cur = bits.load(std::memory_order_relaxed);
  while (v > std::bit_cast<double>(cur) &&
         !bits.compare_exchange_weak(cur, std::bit_cast<std::uint64_t>(v),
                                     std::memory_order_relaxed)) {
  }
}

std::size_t bucketIndex(double v) {
  for (std::size_t i = 0; i < Histogram::kBucketBounds.size(); ++i)
    if (v <= Histogram::kBucketBounds[i]) return i;
  return Histogram::kNumBuckets - 1;  // +Inf overflow bucket
}

}  // namespace

void Histogram::observe(double v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  atomicAddDouble(sumBits_, v);
  atomicMinDouble(minBits_, v);
  atomicMaxDouble(maxBits_, v);
  buckets_[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
}

Histogram::Stats Histogram::stats() const {
  Stats s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = std::bit_cast<double>(sumBits_.load(std::memory_order_relaxed));
  const double mn =
      std::bit_cast<double>(minBits_.load(std::memory_order_relaxed));
  const double mx =
      std::bit_cast<double>(maxBits_.load(std::memory_order_relaxed));
  // No (complete) observation yet: report 0, never +-Inf, so JSON
  // exports stay parseable.
  s.min = mn == std::numeric_limits<double>::infinity() ? 0 : mn;
  s.max = mx == -std::numeric_limits<double>::infinity() ? 0 : mx;
  for (std::size_t i = 0; i < kNumBuckets; ++i)
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sumBits_.store(0, std::memory_order_relaxed);
  minBits_.store(kPosInfBits, std::memory_order_relaxed);
  maxBits_.store(kNegInfBits, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

struct MetricsRegistry::Impl {
  mutable std::mutex m;  ///< guards the maps, not instrument values
  // std::map: pointer-stable nodes (handles live as long as the registry)
  // and name-sorted iteration for deterministic export.
  std::map<std::string, Counter> counters;
  std::map<std::string, Gauge> gauges;
  std::map<std::string, Histogram> histograms;
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}
MetricsRegistry::~MetricsRegistry() { delete impl_; }

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(impl_->m);
  return impl_->counters[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(impl_->m);
  return impl_->gauges[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(impl_->m);
  return impl_->histograms[name];
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk(impl_->m);
  Snapshot s;
  s.counters.reserve(impl_->counters.size());
  for (const auto& [name, c] : impl_->counters)
    s.counters.emplace_back(name, c.value());
  s.gauges.reserve(impl_->gauges.size());
  for (const auto& [name, g] : impl_->gauges)
    s.gauges.emplace_back(name, g.value());
  s.histograms.reserve(impl_->histograms.size());
  for (const auto& [name, h] : impl_->histograms)
    s.histograms.emplace_back(name, h.stats());
  return s;
}

namespace {

void appendNumber(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

}  // namespace

std::string MetricsRegistry::toJson() const {
  const Snapshot s = snapshot();
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : s.counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    appendJsonString(out, name);
    out += ": " + std::to_string(v);
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : s.gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    appendJsonString(out, name);
    out += ": ";
    appendNumber(out, v);
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : s.histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    appendJsonString(out, name);
    out += ": {\"count\": " + std::to_string(h.count) + ", \"sum\": ";
    appendNumber(out, h.sum);
    out += ", \"min\": ";
    appendNumber(out, h.min);
    out += ", \"max\": ";
    appendNumber(out, h.max);
    out += ", \"mean\": ";
    appendNumber(out, h.mean());
    out += "}";
  }
  out += first ? "}" : "\n  }";
  out += "\n}\n";
  return out;
}

namespace {

/// Sanitize a registry name for Prometheus: `mphls_` prefix, every
/// byte outside [a-zA-Z0-9_] becomes '_', runs collapsed, trailing
/// '_' trimmed ("serve./synth.seconds" -> "mphls_serve_synth_seconds").
std::string promName(const std::string& name) {
  std::string out = "mphls_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    const char mapped = ok ? c : '_';
    if (mapped == '_' && !out.empty() && out.back() == '_') continue;
    out += mapped;
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

}  // namespace

std::string MetricsRegistry::toPrometheus() const {
  const Snapshot s = snapshot();
  std::string out;
  char buf[40];
  for (const auto& [name, v] : s.counters) {
    const std::string n = promName(name) + "_total";
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, v] : s.gauges) {
    const std::string n = promName(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " ";
    appendNumber(out, v);
    out += "\n";
  }
  for (const auto& [name, h] : s.histograms) {
    const std::string n = promName(name);
    out += "# TYPE " + n + " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < Histogram::kBucketBounds.size(); ++i) {
      cum += h.buckets[i];
      std::snprintf(buf, sizeof buf, "%g", Histogram::kBucketBounds[i]);
      out += n + "_bucket{le=\"";
      out += buf;
      out += "\"} " + std::to_string(cum) + "\n";
    }
    cum += h.buckets[Histogram::kNumBuckets - 1];
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(cum) + "\n";
    out += n + "_sum ";
    appendNumber(out, h.sum);
    out += "\n";
    // Derived from the bucket array, not count_, so it matches +Inf
    // even when observations race the scrape.
    out += n + "_count " + std::to_string(cum) + "\n";
  }
  return out;
}

bool MetricsRegistry::writeJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << toJson();
  return static_cast<bool>(out);
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lk(impl_->m);
  for (auto& [name, c] : impl_->counters) c.reset();
  for (auto& [name, g] : impl_->gauges) g.reset();
  for (auto& [name, h] : impl_->histograms) h.reset();
}

}  // namespace mphls::obs
