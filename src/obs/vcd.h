// Value Change Dump (IEEE 1364 §18) writer, GTKWave-compatible.
//
// The simulator-facing recorder (rtl/sim_trace.*) maps cycles onto VCD
// time so edges are visible: cycle i occupies ticks [2i, 2i+2); clk
// rises at 2i and falls at 2i+1; registers, FSM state, and output ports
// latch their cycle-i results at 2(i+1) (the next rising edge), matching
// the posedge semantics of the generated Verilog.
//
// This writer is simulator-agnostic: declare wires, then report value
// changes at monotonically non-decreasing times. Repeated writes of an
// unchanged value are deduplicated (VCD records *changes*). Signals never
// written before the first timestamp dump as 'x' in $dumpvars.
//
// Zero-dependency (std only) — see trace.h for the layering rationale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mphls::obs {

class VcdWriter {
 public:
  /// Declare a wire inside `scope` (top-level module name, set once via
  /// the constructor). Returns a handle for change(). Widths 1..64.
  explicit VcdWriter(std::string scopeName = "top");

  int addWire(const std::string& name, int width);

  /// Record `value` for wire `id` at time `t` (ticks of the declared
  /// 1ns timescale). Times must be non-decreasing overall; changes at
  /// the same time coalesce into one #t block. Value is truncated to
  /// the wire's width. No-op if the value is unchanged.
  void change(int id, std::uint64_t t, std::uint64_t value);

  /// Number of change records emitted so far (post-dedup), for tests.
  [[nodiscard]] std::size_t changeCount() const { return changes_.size(); }

  /// Full VCD document: header, $var defs, $dumpvars at the earliest
  /// time (signals never written dump as x), then #t change blocks.
  [[nodiscard]] std::string render() const;
  bool writeFile(const std::string& path) const;

 private:
  struct Wire {
    std::string name;
    int width = 1;
    std::string code;  ///< short id, base-94 printable from '!'
    bool written = false;
    std::uint64_t last = 0;
  };
  struct Change {
    std::uint64_t t = 0;
    int wire = 0;
    std::uint64_t value = 0;
  };

  std::string scope_;
  std::vector<Wire> wires_;
  std::vector<Change> changes_;  ///< in emission order (non-decreasing t)
};

}  // namespace mphls::obs
