#include "obs/log.h"

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <mutex>

#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace mphls::obs {

const char* logLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "off";
}

LogLevel parseLogLevel(std::string_view name) {
  if (name == "debug") return LogLevel::Debug;
  if (name == "info") return LogLevel::Info;
  if (name == "warn" || name == "warning") return LogLevel::Warn;
  if (name == "error") return LogLevel::Error;
  return LogLevel::Off;
}

namespace {

/// Wall-clock timestamp as ISO-8601 UTC with milliseconds:
/// "2026-08-08T12:34:56.789Z".
void appendTimestamp(std::string& out) {
  std::timespec ts{};
  std::timespec_get(&ts, TIME_UTC);
  std::tm tm{};
  gmtime_r(&ts.tv_sec, &tm);
  char buf[96];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec,
                static_cast<int>(ts.tv_nsec / 1000000));
  out += buf;
}

void appendFieldValue(std::string& out, const LogField& f) {
  char buf[40];
  switch (f.kind) {
    case LogField::Kind::Str:
      appendJsonString(out, f.str);
      break;
    case LogField::Kind::I64:
      out += std::to_string(f.i64);
      break;
    case LogField::Kind::U64:
      out += std::to_string(f.u64);
      break;
    case LogField::Kind::F64:
      std::snprintf(buf, sizeof buf, "%.9g", f.f64);
      out += buf;
      break;
    case LogField::Kind::Bool:
      out += f.b ? "true" : "false";
      break;
  }
}

/// Compact single-line rendering for the flight recorder ring:
/// "msg key=value key=value". Values are truncated by the ring's
/// inline capacity; sanitization happens in the dump path.
void appendCompact(std::string& out, std::string_view msg,
                   std::initializer_list<LogField> fields) {
  out += msg;
  char buf[40];
  for (const LogField& f : fields) {
    out += ' ';
    out += f.key;
    out += '=';
    switch (f.kind) {
      case LogField::Kind::Str: out += f.str; break;
      case LogField::Kind::I64: out += std::to_string(f.i64); break;
      case LogField::Kind::U64: out += std::to_string(f.u64); break;
      case LogField::Kind::F64:
        std::snprintf(buf, sizeof buf, "%.4g", f.f64);
        out += buf;
        break;
      case LogField::Kind::Bool: out += f.b ? "true" : "false"; break;
    }
  }
}

}  // namespace

struct Logger::Impl {
  std::mutex m;  ///< guards everything below (sink config + bucket)
  std::FILE* file = nullptr;  ///< owned sink file (nullptr = stderr)
  LogLevel sinkLevel = LogLevel::Off;
  // Token bucket. rate == 0 disables limiting.
  double rate = 0;
  double burst = 0;
  double tokens = 0;
  double lastRefillMicros = 0;
  std::uint64_t dropped = 0;
  std::uint64_t droppedNotified = 0;  ///< drops already announced

  ~Impl() {
    if (file != nullptr) std::fclose(file);
  }
};

Logger::Logger() : impl_(new Impl) {}
Logger::~Logger() { delete impl_; }

Logger& Logger::global() {
  static Logger logger;
  return logger;
}

void Logger::refresh() {
  std::lock_guard<std::mutex> lk(impl_->m);
  int t = static_cast<int>(impl_->sinkLevel);
  if (FlightRecorder::global().enabled())
    t = std::min(t, static_cast<int>(LogLevel::Debug));
  threshold_.store(t, std::memory_order_relaxed);
}

bool Logger::openFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return false;
  {
    std::lock_guard<std::mutex> lk(impl_->m);
    if (impl_->file != nullptr) std::fclose(impl_->file);
    impl_->file = f;
  }
  return true;
}

void Logger::logToStderr() {
  std::lock_guard<std::mutex> lk(impl_->m);
  if (impl_->file != nullptr) std::fclose(impl_->file);
  impl_->file = nullptr;
}

void Logger::setLevel(LogLevel level) {
  {
    std::lock_guard<std::mutex> lk(impl_->m);
    impl_->sinkLevel = level;
  }
  refresh();
}

LogLevel Logger::level() const {
  std::lock_guard<std::mutex> lk(impl_->m);
  return impl_->sinkLevel;
}

void Logger::setRateLimit(double ratePerSec, double burst) {
  std::lock_guard<std::mutex> lk(impl_->m);
  impl_->rate = ratePerSec > 0 ? ratePerSec : 0;
  impl_->burst = burst > 0 ? burst : 1;
  impl_->tokens = impl_->burst;
  impl_->lastRefillMicros = Tracer::global().nowMicros();
}

std::uint64_t Logger::dropped() const {
  std::lock_guard<std::mutex> lk(impl_->m);
  return impl_->dropped;
}

void Logger::resetForTest() {
  {
    std::lock_guard<std::mutex> lk(impl_->m);
    if (impl_->file != nullptr) std::fclose(impl_->file);
    impl_->file = nullptr;
    impl_->sinkLevel = LogLevel::Off;
    impl_->rate = 0;
    impl_->burst = 0;
    impl_->tokens = 0;
    impl_->dropped = 0;
    impl_->droppedNotified = 0;
  }
  refresh();
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view msg,
                 std::initializer_list<LogField> fields) {
  if (!enabled(level) || level == LogLevel::Off) return;

  // Flight recorder first: never rate limited, so the ring always holds
  // the true recent history even when the sink is shedding load.
  FlightRecorder& fr = FlightRecorder::global();
  if (fr.enabled()) {
    std::string compact;
    compact.reserve(msg.size() + 32);
    appendCompact(compact, msg, fields);
    fr.record('L', level, component, compact);
  }

  std::FILE* sink = nullptr;
  std::uint64_t announceDrops = 0;
  {
    std::lock_guard<std::mutex> lk(impl_->m);
    if (static_cast<int>(level) < static_cast<int>(impl_->sinkLevel))
      return;
    if (impl_->rate > 0) {
      const double now = Tracer::global().nowMicros();
      impl_->tokens =
          std::min(impl_->burst, impl_->tokens + (now - impl_->lastRefillMicros)
                                                     / 1e6 * impl_->rate);
      impl_->lastRefillMicros = now;
      if (impl_->tokens < 1) {
        ++impl_->dropped;
        return;
      }
      impl_->tokens -= 1;
      if (impl_->dropped > impl_->droppedNotified) {
        announceDrops = impl_->dropped - impl_->droppedNotified;
        impl_->droppedNotified = impl_->dropped;
      }
    }
    sink = impl_->file;
  }

  std::string line;
  line.reserve(128 + msg.size());
  if (announceDrops > 0) {
    line += "{\"ts\": \"";
    appendTimestamp(line);
    line += "\", \"level\": \"warn\", \"component\": \"log\", ";
    line += "\"msg\": \"rate limited\", \"dropped\": ";
    line += std::to_string(announceDrops);
    line += "}\n";
  }
  line += "{\"ts\": \"";
  appendTimestamp(line);
  line += "\", \"level\": \"";
  line += logLevelName(level);
  line += "\", \"component\": ";
  appendJsonString(line, component);
  line += ", \"msg\": ";
  appendJsonString(line, msg);
  for (const LogField& f : fields) {
    line += ", ";
    appendJsonString(line, f.key);
    line += ": ";
    appendFieldValue(line, f);
  }
  line += "}\n";

  // One fwrite per record (lines stay intact across threads: fwrite on
  // the same FILE* is atomic per POSIX) + flush so tails see it live.
  std::FILE* out = sink != nullptr ? sink : stderr;
  std::fwrite(line.data(), 1, line.size(), out);
  std::fflush(out);
}

}  // namespace mphls::obs
