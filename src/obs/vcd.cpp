#include "obs/vcd.h"

#include <cassert>
#include <fstream>

namespace mphls::obs {

namespace {

/// Short identifier codes: base-94 over the printable ASCII range
/// '!'..'~', least-significant digit first ("!", "\"", ..., "~", "!!").
std::string idCode(int index) {
  std::string code;
  int n = index;
  do {
    code += static_cast<char>('!' + n % 94);
    n /= 94;
  } while (n > 0);
  return code;
}

std::uint64_t maskTo(std::uint64_t value, int width) {
  if (width >= 64) return value;
  return value & ((std::uint64_t{1} << width) - 1);
}

/// One value-change line: "0!" / "1!" for scalars, "b1010 !" for vectors.
void appendChange(std::string& out, const std::string& code, int width,
                  std::uint64_t value) {
  if (width == 1) {
    out += value ? '1' : '0';
    out += code;
  } else {
    out += 'b';
    bool seen = false;
    for (int bit = width - 1; bit >= 0; --bit) {
      const bool set = (value >> bit) & 1;
      if (set) seen = true;
      if (seen || bit == 0) out += set ? '1' : '0';
    }
    out += ' ';
    out += code;
  }
  out += '\n';
}

}  // namespace

VcdWriter::VcdWriter(std::string scopeName) : scope_(std::move(scopeName)) {}

int VcdWriter::addWire(const std::string& name, int width) {
  assert(width >= 1 && width <= 64);
  const int id = static_cast<int>(wires_.size());
  wires_.push_back({name, width, idCode(id), false, 0});
  return id;
}

void VcdWriter::change(int id, std::uint64_t t, std::uint64_t value) {
  Wire& w = wires_.at(static_cast<std::size_t>(id));
  value = maskTo(value, w.width);
  if (w.written && w.last == value) return;
  assert(changes_.empty() || t >= changes_.back().t);
  w.written = true;
  w.last = value;
  changes_.push_back({t, id, value});
}

std::string VcdWriter::render() const {
  std::string out;
  out += "$date\n  mphls simulation\n$end\n";
  out += "$version\n  mphls VcdWriter\n$end\n";
  out += "$timescale 1ns $end\n";
  out += "$scope module " + scope_ + " $end\n";
  for (const Wire& w : wires_) {
    out += "$var wire " + std::to_string(w.width) + " " + w.code + " " +
           w.name;
    if (w.width > 1)
      out += " [" + std::to_string(w.width - 1) + ":0]";
    out += " $end\n";
  }
  out += "$upscope $end\n";
  out += "$enddefinitions $end\n";

  // $dumpvars: initial value of every wire at the earliest time. Wires
  // with a change exactly at t0 take that value; wires first written
  // later (or never) start as x.
  const std::uint64_t t0 = changes_.empty() ? 0 : changes_.front().t;
  std::size_t i = 0;
  std::vector<bool> inDump(wires_.size(), false);
  // Sequential appends: `"#" + std::to_string(...)` trips a GCC 12
  // -Wrestrict false positive at -O3 (the operator+ insert path).
  out += '#';
  out += std::to_string(t0);
  out += "\n$dumpvars\n";
  while (i < changes_.size() && changes_[i].t == t0) {
    const Change& c = changes_[i];
    const Wire& w = wires_[static_cast<std::size_t>(c.wire)];
    appendChange(out, w.code, w.width, c.value);
    inDump[static_cast<std::size_t>(c.wire)] = true;
    ++i;
  }
  for (const Wire& w : wires_) {
    if (inDump[static_cast<std::size_t>(&w - wires_.data())]) continue;
    if (w.width == 1) {
      out += "x" + w.code + "\n";
    } else {
      out += "bx " + w.code + "\n";
    }
  }
  out += "$end\n";

  std::uint64_t cur = t0;
  for (; i < changes_.size(); ++i) {
    const Change& c = changes_[i];
    if (c.t != cur) {
      cur = c.t;
      out += '#';
      out += std::to_string(cur);
      out += '\n';
    }
    const Wire& w = wires_[static_cast<std::size_t>(c.wire)];
    appendChange(out, w.code, w.width, c.value);
  }
  return out;
}

bool VcdWriter::writeFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << render();
  return static_cast<bool>(out);
}

}  // namespace mphls::obs
