#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <type_traits>
#include <vector>

#include "obs/trace.h"

namespace mphls::obs {

namespace {

/// Crash-dump path for the signal handler. Written once by
/// installCrashHandlers before any handler can fire.
char g_crashPath[512] = {};

void copyTruncated(char* dst, std::size_t cap, std::string_view src) {
  std::memset(dst, 0, cap);
  const std::size_t n = std::min(src.size(), cap - 1);
  std::memcpy(dst, src.data(), n);
}

// ---- word-atomic slot transfer ----
//
// Ring slots are shared between the owning writer and concurrent
// readers (toJson, the SIGQUIT dump) without a lock. Copying the
// event bytes through relaxed word-size atomics makes a concurrent
// overwrite yield at worst a *torn event* (mixed old/new words) —
// already tolerated by the sanitizing formatters — instead of a data
// race. Relaxed 64-bit loads compile to plain loads, so the dump path
// stays async-signal-safe.

constexpr std::size_t kEventWords = sizeof(FlightEvent) / sizeof(std::uint64_t);
static_assert(sizeof(FlightEvent) % sizeof(std::uint64_t) == 0,
              "FlightEvent must be a whole number of 64-bit words");
static_assert(alignof(FlightEvent) <= alignof(std::uint64_t),
              "word array must be aligned enough for FlightEvent bytes");
static_assert(std::is_trivially_copyable_v<FlightEvent>);

void storeSlot(std::uint64_t* dst, const FlightEvent& e) {
  std::uint64_t words[kEventWords];
  std::memcpy(words, &e, sizeof e);
  for (std::size_t i = 0; i < kEventWords; ++i)
    std::atomic_ref<std::uint64_t>(dst[i]).store(words[i],
                                                 std::memory_order_relaxed);
}

FlightEvent loadSlot(const std::uint64_t* src) {
  std::uint64_t words[kEventWords];
  for (std::size_t i = 0; i < kEventWords; ++i)
    words[i] = std::atomic_ref<std::uint64_t>(const_cast<std::uint64_t&>(src[i]))
                   .load(std::memory_order_relaxed);
  FlightEvent e;
  std::memcpy(&e, words, sizeof e);
  return e;
}

// ---- async-signal-safe formatters (no snprintf, no locale, no
// allocation); each returns the number of bytes written ----

std::size_t fmtU64(char* dst, std::uint64_t v) {
  char tmp[24];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (std::size_t i = 0; i < n; ++i) dst[i] = tmp[n - 1 - i];
  return n;
}

/// Microsecond timestamp with 3 decimals ("12345.678"). Timestamps are
/// tracer-epoch relative, so always non-negative and well within u64.
std::size_t fmtMicros(char* dst, double micros) {
  if (micros < 0) micros = 0;
  const auto whole = static_cast<std::uint64_t>(micros);
  auto frac = static_cast<std::uint64_t>((micros - static_cast<double>(whole))
                                         * 1000.0);
  if (frac > 999) frac = 999;
  std::size_t n = fmtU64(dst, whole);
  dst[n++] = '.';
  dst[n++] = static_cast<char>('0' + frac / 100);
  dst[n++] = static_cast<char>('0' + frac / 10 % 10);
  dst[n++] = static_cast<char>('0' + frac % 10);
  return n;
}

/// Copy a NUL-terminated inline buffer, replacing every byte that
/// would need JSON escaping (or is non-ASCII) with '?'. Keeps the
/// dump parser-safe without any escaping logic in the handler.
std::size_t fmtSanitized(char* dst, const char* src, std::size_t cap) {
  std::size_t n = 0;
  for (; n < cap && src[n] != '\0'; ++n) {
    const auto c = static_cast<unsigned char>(src[n]);
    dst[n] = (c < 0x20 || c >= 0x7f || c == '"' || c == '\\')
                 ? '?'
                 : static_cast<char>(c);
  }
  return n;
}

std::size_t fmtLit(char* dst, const char* lit) {
  std::size_t n = 0;
  for (; lit[n] != '\0'; ++n) dst[n] = lit[n];
  return n;
}

const char* kindName(char kind) {
  switch (kind) {
    case 'L': return "log";
    case 'B': return "span-begin";
    case 'E': return "span-end";
    case 'i': return "instant";
  }
  return "?";
}

const char* levelName(char level) {
  switch (level) {
    case 'D': return "debug";
    case 'I': return "info";
    case 'W': return "warn";
    case 'E': return "error";
  }
  return "?";
}

char levelChar(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return 'D';
    case LogLevel::Info: return 'I';
    case LogLevel::Warn: return 'W';
    case LogLevel::Error: return 'E';
    case LogLevel::Off: return '?';
  }
  return '?';
}

/// Format one event as a JSONL line. `dst` must hold >= 320 bytes
/// (fixed fields ~120 + component 18 + message 96, sanitized 1:1).
std::size_t fmtEvent(char* dst, const FlightEvent& e) {
  std::size_t n = 0;
  n += fmtLit(dst + n, "{\"seq\": ");
  n += fmtU64(dst + n, e.seq);
  n += fmtLit(dst + n, ", \"t_us\": ");
  n += fmtMicros(dst + n, e.tsMicros);
  n += fmtLit(dst + n, ", \"thread\": ");
  n += fmtU64(dst + n, e.thread);
  n += fmtLit(dst + n, ", \"kind\": \"");
  n += fmtLit(dst + n, kindName(e.kind));
  n += fmtLit(dst + n, "\", \"level\": \"");
  n += fmtLit(dst + n, levelName(e.level));
  n += fmtLit(dst + n, "\", \"component\": \"");
  n += fmtSanitized(dst + n, e.component, sizeof e.component);
  n += fmtLit(dst + n, "\", \"msg\": \"");
  n += fmtSanitized(dst + n, e.message, sizeof e.message);
  n += fmtLit(dst + n, "\"}\n");
  return n;
}

/// Buffered signal-safe writer: coalesces small appends into one page
/// per write() call. Short writes retry; errors abandon the dump.
struct FdBuf {
  int fd;
  char buf[4096];
  std::size_t len = 0;
  bool failed = false;

  explicit FdBuf(int fd) : fd(fd) {}
  void flush() {
    std::size_t off = 0;
    while (off < len && !failed) {
      const ssize_t w = ::write(fd, buf + off, len - off);
      if (w < 0) {
        if (errno == EINTR) continue;
        failed = true;
        break;
      }
      off += static_cast<std::size_t>(w);
    }
    len = 0;
  }
  void need(std::size_t n) {
    if (len + n > sizeof buf) flush();
  }
};

void flightSignalHandler(int sig) {
  if (g_crashPath[0] != '\0')
    FlightRecorder::global().dumpToFile(g_crashPath);
  if (sig == SIGQUIT) return;  // daemon keeps running (EINTR in poll)
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::enable(std::size_t eventsPerThread) {
  static std::mutex m;
  std::lock_guard<std::mutex> lk(m);
  if (capacity_ != 0) return;  // idempotent: first capacity wins
  if (eventsPerThread == 0) eventsPerThread = 1;
  for (Ring& r : rings_)
    r.slots = new std::uint64_t[eventsPerThread * kEventWords]();
  capacity_ = eventsPerThread;
  enabled_.store(true, std::memory_order_release);
  Logger::global().refresh();
}

std::size_t FlightRecorder::capacityPerThread() const { return capacity_; }

std::uint64_t FlightRecorder::totalRecorded() const {
  return seq_.load(std::memory_order_relaxed);
}

FlightRecorder::Ring* FlightRecorder::claimRing() {
  static thread_local FlightRecorder* owner = nullptr;
  static thread_local Ring* ring = nullptr;
  if (owner == this) return ring;  // nullptr once the pool is exhausted
  const std::size_t idx = ringsClaimed_.fetch_add(1,
                                                  std::memory_order_relaxed);
  owner = this;
  ring = idx < kMaxThreads ? &rings_[idx] : nullptr;
  if (ring != nullptr) ring->claimed.store(true, std::memory_order_release);
  return ring;
}

void FlightRecorder::record(char kind, LogLevel level,
                            std::string_view component,
                            std::string_view message) {
  if (!enabled()) return;
  Ring* r = claimRing();
  if (r == nullptr) return;
  const std::uint64_t h = r->head.load(std::memory_order_relaxed);
  FlightEvent e;
  e.tsMicros = Tracer::global().nowMicros();
  e.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  e.thread = static_cast<std::uint32_t>(Tracer::global().currentTid());
  e.kind = kind;
  e.level = levelChar(level);
  copyTruncated(e.component, sizeof e.component, component);
  copyTruncated(e.message, sizeof e.message, message);
  storeSlot(r->slots + (h % capacity_) * kEventWords, e);
  r->head.store(h + 1, std::memory_order_release);
}

void FlightRecorder::dumpTo(int fd) const {
  FdBuf out(fd);
  char line[512];
  std::size_t n = 0;
  n += fmtLit(line + n, "{\"flight_recorder\": {\"threads\": ");
  const std::size_t claimed =
      std::min(ringsClaimed_.load(std::memory_order_acquire), kMaxThreads);
  n += fmtU64(line + n, claimed);
  n += fmtLit(line + n, ", \"capacity_per_thread\": ");
  n += fmtU64(line + n, capacity_);
  n += fmtLit(line + n, ", \"total_recorded\": ");
  n += fmtU64(line + n, seq_.load(std::memory_order_relaxed));
  n += fmtLit(line + n, "}}\n");
  out.need(n);
  std::memcpy(out.buf + out.len, line, n);
  out.len += n;

  for (std::size_t i = 0; i < claimed && !out.failed; ++i) {
    const Ring& r = rings_[i];
    if (r.slots == nullptr) continue;
    const std::uint64_t head = r.head.load(std::memory_order_acquire);
    const std::uint64_t count =
        std::min<std::uint64_t>(head, capacity_);
    for (std::uint64_t j = head - count; j < head; ++j) {
      // A concurrent overwrite can tear this one event's words; the
      // sanitizing formatters render that harmless.
      const FlightEvent e = loadSlot(r.slots + (j % capacity_) * kEventWords);
      const std::size_t len = fmtEvent(line, e);
      out.need(len);
      std::memcpy(out.buf + out.len, line, len);
      out.len += len;
    }
  }
  out.flush();
}

bool FlightRecorder::dumpToFile(const char* path) const {
  const int fd = ::open(path, O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) return false;
  dumpTo(fd);
  ::close(fd);
  return true;
}

std::string FlightRecorder::toJson() const {
  const std::size_t claimed =
      std::min(ringsClaimed_.load(std::memory_order_acquire), kMaxThreads);
  std::vector<FlightEvent> events;
  for (std::size_t i = 0; i < claimed; ++i) {
    const Ring& r = rings_[i];
    if (r.slots == nullptr) continue;
    const std::uint64_t head = r.head.load(std::memory_order_acquire);
    const std::uint64_t count = std::min<std::uint64_t>(head, capacity_);
    for (std::uint64_t j = head - count; j < head; ++j)
      events.push_back(loadSlot(r.slots + (j % capacity_) * kEventWords));
  }
  std::sort(events.begin(), events.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.seq < b.seq;
            });

  std::string out = "{\"flight_recorder\": {\"threads\": ";
  out += std::to_string(claimed);
  out += ", \"capacity_per_thread\": " + std::to_string(capacity_);
  out += ", \"total_recorded\": ";
  out += std::to_string(seq_.load(std::memory_order_relaxed));
  out += ", \"events_retained\": " + std::to_string(events.size());
  out += "},\n \"events\": [";
  char buf[48];
  bool first = true;
  for (const FlightEvent& e : events) {
    out += first ? "\n  " : ",\n  ";
    first = false;
    out += "{\"seq\": " + std::to_string(e.seq);
    out += ", \"t_us\": ";
    const std::size_t n = fmtMicros(buf, e.tsMicros);
    out.append(buf, n);
    out += ", \"thread\": " + std::to_string(e.thread);
    out += ", \"kind\": \"";
    out += kindName(e.kind);
    out += "\", \"level\": \"";
    out += levelName(e.level);
    out += "\", \"component\": ";
    const std::size_t compLen =
        ::strnlen(e.component, sizeof e.component);
    appendJsonString(out, std::string_view(e.component, compLen));
    out += ", \"msg\": ";
    const std::size_t msgLen = ::strnlen(e.message, sizeof e.message);
    appendJsonString(out, std::string_view(e.message, msgLen));
    out += "}";
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

void FlightRecorder::installCrashHandlers(const char* path) {
  copyTruncated(g_crashPath, sizeof g_crashPath, path);
  FlightRecorder::global().enable();
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = flightSignalHandler;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGSEGV, &sa, nullptr);
  ::sigaction(SIGABRT, &sa, nullptr);
  ::sigaction(SIGQUIT, &sa, nullptr);
}

const char* FlightRecorder::crashDumpPath() { return g_crashPath; }

void FlightRecorder::clearForTest() {
  const std::size_t claimed =
      std::min(ringsClaimed_.load(std::memory_order_acquire), kMaxThreads);
  for (std::size_t i = 0; i < claimed; ++i) {
    Ring& r = rings_[i];
    if (r.slots == nullptr) continue;
    r.head.store(0, std::memory_order_release);
  }
}

}  // namespace mphls::obs
