// Minimal blocking HTTP/1.1 client for the load generator and the serve
// test battery. Persistent (keep-alive) connection with one transparent
// reconnect when the server closed it between requests; Content-Length
// framing only — the counterpart of the daemon's parser scope.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mphls::serve {

struct ClientResponse {
  bool ok = false;      ///< transport-level success (any status counts)
  int status = 0;
  std::string body;
  std::vector<std::pair<std::string, std::string>> headers;  ///< lowercased
  std::string error;    ///< transport failure description when !ok

  [[nodiscard]] const std::string* header(std::string_view nameLower) const;
};

class HttpClient {
 public:
  HttpClient(std::string host, int port);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// One request over the persistent connection. GET sends no body.
  [[nodiscard]] ClientResponse get(const std::string& target);
  [[nodiscard]] ClientResponse post(const std::string& target,
                                    const std::string& body);

  /// Send raw bytes and read one response — for protocol tests that need
  /// malformed or hand-fragmented requests. Closes the connection after.
  [[nodiscard]] ClientResponse raw(const std::string& bytes);

  /// Drop the persistent connection (next request reconnects).
  void disconnect();

  /// True while the persistent connection is up (keep-alive observable).
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

 private:
  [[nodiscard]] bool connectFd(std::string& error);
  [[nodiscard]] ClientResponse roundTrip(const std::string& wire,
                                         bool retryOnce);
  [[nodiscard]] ClientResponse readResponse();

  std::string host_;
  int port_;
  int fd_ = -1;
};

}  // namespace mphls::serve
