#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mphls::serve {

namespace {

[[nodiscard]] std::string toLower(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  return out;
}

bool sendAll(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += (std::size_t)n;
  }
  return true;
}

}  // namespace

const std::string* ClientResponse::header(std::string_view nameLower) const {
  for (const auto& [k, v] : headers)
    if (k == nameLower) return &v;
  return nullptr;
}

HttpClient::HttpClient(std::string host, int port)
    : host_(std::move(host)), port_(port) {}

HttpClient::~HttpClient() { disconnect(); }

void HttpClient::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool HttpClient::connectFd(std::string& error) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port_));
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    error = "bad host: " + host_;
    disconnect();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    error = std::string("connect: ") + std::strerror(errno);
    disconnect();
    return false;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return true;
}

ClientResponse HttpClient::readResponse() {
  ClientResponse r;
  std::string buf;
  // Head: read until the blank line.
  std::size_t headEnd = std::string::npos;
  while (headEnd == std::string::npos) {
    char chunk[8192];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      r.error = n == 0 ? "connection closed mid-response"
                       : std::string("recv: ") + std::strerror(errno);
      disconnect();
      return r;
    }
    buf.append(chunk, (std::size_t)n);
    headEnd = buf.find("\r\n\r\n");
    if (buf.size() > 1024 * 1024 && headEnd == std::string::npos) {
      r.error = "response header section too large";
      disconnect();
      return r;
    }
  }
  const std::string_view head = std::string_view(buf).substr(0, headEnd);

  // Status line: HTTP/1.1 NNN reason.
  const std::size_t eol = head.find("\r\n");
  const std::string_view statusLine = head.substr(0, eol);
  const std::size_t sp = statusLine.find(' ');
  if (sp == std::string_view::npos || statusLine.size() < sp + 4) {
    r.error = "malformed status line";
    disconnect();
    return r;
  }
  r.status = 0;
  for (std::size_t i = sp + 1; i < sp + 4 && i < statusLine.size(); ++i) {
    const char c = statusLine[i];
    if (c < '0' || c > '9') {
      r.error = "malformed status code";
      disconnect();
      return r;
    }
    r.status = r.status * 10 + (c - '0');
  }

  // Headers.
  std::size_t contentLength = 0;
  bool closeAfter = false;
  std::size_t cursor = eol == std::string_view::npos ? head.size() : eol + 2;
  while (cursor < head.size()) {
    std::size_t end = head.find("\r\n", cursor);
    if (end == std::string_view::npos) end = head.size();
    const std::string_view h = head.substr(cursor, end - cursor);
    cursor = end + 2;
    const std::size_t colon = h.find(':');
    if (colon == std::string_view::npos) continue;
    std::string name = toLower(h.substr(0, colon));
    std::string_view val = h.substr(colon + 1);
    while (!val.empty() && (val.front() == ' ' || val.front() == '\t'))
      val.remove_prefix(1);
    if (name == "content-length") contentLength = (std::size_t)std::stoul(std::string(val));
    if (name == "connection" && toLower(val) == "close") closeAfter = true;
    r.headers.emplace_back(std::move(name), std::string(val));
  }

  // Body: Content-Length bytes past the blank line.
  std::string body = buf.substr(headEnd + 4);
  while (body.size() < contentLength) {
    char chunk[16 * 1024];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      r.error = "connection closed mid-body";
      disconnect();
      return r;
    }
    body.append(chunk, (std::size_t)n);
  }
  r.body = body.substr(0, contentLength);
  r.ok = true;
  if (closeAfter) disconnect();
  return r;
}

ClientResponse HttpClient::roundTrip(const std::string& wire, bool retryOnce) {
  ClientResponse r;
  const bool hadConnection = fd_ >= 0;
  if (fd_ < 0 && !connectFd(r.error)) return r;
  if (!sendAll(fd_, wire)) {
    disconnect();
    if (retryOnce && hadConnection) return roundTrip(wire, false);
    r.error = "send failed";
    return r;
  }
  ClientResponse resp = readResponse();
  // A reused keep-alive connection may have been closed by the server
  // between requests; one clean retry on a fresh connection.
  if (!resp.ok && retryOnce && hadConnection) return roundTrip(wire, false);
  return resp;
}

ClientResponse HttpClient::get(const std::string& target) {
  return roundTrip("GET " + target + " HTTP/1.1\r\nHost: " + host_ +
                       "\r\n\r\n",
                   true);
}

ClientResponse HttpClient::post(const std::string& target,
                                const std::string& body) {
  return roundTrip("POST " + target + " HTTP/1.1\r\nHost: " + host_ +
                       "\r\nContent-Type: application/json\r\nContent-Length: " +
                       std::to_string(body.size()) + "\r\n\r\n" + body,
                   true);
}

ClientResponse HttpClient::raw(const std::string& bytes) {
  disconnect();
  ClientResponse r;
  if (!connectFd(r.error)) return r;
  if (!sendAll(fd_, bytes)) {
    disconnect();
    r.error = "send failed";
    return r;
  }
  // Half-close so a server waiting for more bytes (e.g. a lying
  // Content-Length) sees EOF instead of deadlocking the test.
  ::shutdown(fd_, SHUT_WR);
  ClientResponse resp = readResponse();
  disconnect();
  return resp;
}

}  // namespace mphls::serve
