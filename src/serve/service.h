// Endpoint layer of the synthesis daemon: maps parsed HTTP requests onto
// the shared command layer (core/commands.h), independent of any socket.
// Keeping dispatch socket-free means the protocol battery can drive it
// in-process, and the golden differential test can assert byte equality
// against the offline CLI without a network in the loop.
//
// Routes:
//   POST /synth    synthesis summary report        cmd::synthJson
//   POST /lint     static verification report      cmd::lintJson
//   POST /analyze  semantic lint report            cmd::analyzeJson
//   POST /sta      static timing analysis report   cmd::staJson
//   POST /prove    formal equivalence report       cmd::proveJson
//   POST /sim      RTL simulation result           cmd::simJson
//   GET  /healthz  liveness probe
//   GET  /metrics  obs registry snapshot (JSON; ?format=prometheus for
//                  text exposition)
//   GET  /designs  built-in designs with sources
//   GET  /debug/flight  flight-recorder ring decode (post-mortem aid)
//
// POST bodies are JSON: {"name": str?, "source": str | "design": builtin,
// "top": str?, "options": {...}} plus per-route extras ("clock"/"paths"
// for /sta, "prove_passes" for /prove, "inputs" for /sim, "post_pipeline"
// for /analyze). Unknown option keys are rejected with 400 — a mistyped
// option must never silently fall back to a default.
#pragma once

#include <cstdint>
#include <string>

#include "core/synthesizer.h"
#include "serve/http.h"

namespace mphls::serve {

struct ServiceOptions {
  /// Base option vector; request "options" members override per request.
  SynthesisOptions defaults;
};

struct ServiceResponse {
  int status = 200;
  std::string body;
  std::string contentType = "application/json";
};

class Service {
 public:
  explicit Service(ServiceOptions opts = {});

  /// Dispatch one request. `sessionId` is the connection's stable id; it
  /// labels the serve.* trace span so concurrent sessions separate in the
  /// trace viewer. Thread-safe: handlers share only the FrontendCache and
  /// the metrics registry, both already concurrent.
  [[nodiscard]] ServiceResponse handle(const HttpRequest& req,
                                       std::uint64_t sessionId) const;

  /// Requests dispatched so far (all sessions).
  [[nodiscard]] std::uint64_t requestCount() const;

 private:
  ServiceOptions opts_;
};

}  // namespace mphls::serve
