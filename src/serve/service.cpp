#include "serve/service.h"

#include "common/json_reader.h"
#include "core/commands.h"
#include "core/designs.h"
#include "core/frontend_cache.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mphls::serve {

namespace {

/// Decode the "options" object into a SynthesisOptions vector, mirroring
/// the CLI flag grammar exactly. Returns "" on success, else the error.
std::string parseOptions(const json::Node& o, SynthesisOptions& opts) {
  for (const auto& [key, val] : o.members()) {
    const json::Node& v = *val;
    if (key == "scheduler") {
      const std::string s = v.str();
      if (s == "serial") opts.scheduler = SchedulerKind::Serial;
      else if (s == "asap") opts.scheduler = SchedulerKind::Asap;
      else if (s == "list") opts.scheduler = SchedulerKind::List;
      else if (s == "force") opts.scheduler = SchedulerKind::ForceDirected;
      else if (s == "freedom") opts.scheduler = SchedulerKind::Freedom;
      else if (s == "bnb") opts.scheduler = SchedulerKind::BranchBound;
      else if (s == "transform") opts.scheduler = SchedulerKind::Transform;
      else return "bad scheduler: " + s;
    } else if (key == "fus") {
      if (!v.isNumber() || v.number() < 1) return "bad fus";
      opts.resources = ResourceLimits::universalSet((int)v.number());
    } else if (key == "priority") {
      const std::string s = v.str();
      if (s == "path") opts.listPriority = ListPriority::PathLength;
      else if (s == "mobility") opts.listPriority = ListPriority::Mobility;
      else if (s == "urgency") opts.listPriority = ListPriority::Urgency;
      else if (s == "program") opts.listPriority = ListPriority::ProgramOrder;
      else return "bad priority: " + s;
    } else if (key == "opt") {
      const std::string s = v.str();
      if (s == "none") opts.opt = OptLevel::None;
      else if (s == "standard") opts.opt = OptLevel::Standard;
      else if (s == "aggressive") opts.opt = OptLevel::Aggressive;
      else return "bad opt level: " + s;
    } else if (key == "fu_alloc") {
      const std::string s = v.str();
      if (s == "greedy") opts.fuMethod = FuAllocMethod::GreedyLocal;
      else if (s == "global") opts.fuMethod = FuAllocMethod::GreedyGlobal;
      else if (s == "blind") opts.fuMethod = FuAllocMethod::InterconnectBlind;
      else if (s == "clique") opts.fuMethod = FuAllocMethod::Clique;
      else return "bad fu_alloc: " + s;
    } else if (key == "reg_alloc") {
      const std::string s = v.str();
      if (s == "leftedge") opts.regMethod = RegAllocMethod::LeftEdge;
      else if (s == "clique") opts.regMethod = RegAllocMethod::Clique;
      else if (s == "naive") opts.regMethod = RegAllocMethod::Naive;
      else return "bad reg_alloc: " + s;
    } else if (key == "encoding") {
      const std::string s = v.str();
      if (s == "binary") opts.encoding = StateEncoding::Binary;
      else if (s == "gray") opts.encoding = StateEncoding::Gray;
      else if (s == "onehot") opts.encoding = StateEncoding::OneHot;
      else return "bad encoding: " + s;
    } else if (key == "time_constraint") {
      if (!v.isNumber()) return "bad time_constraint";
      opts.timeConstraint = (int)v.number();
    } else if (key == "narrow") {
      if (!v.isBool()) return "bad narrow";
      opts.narrow = v.boolean();
    } else if (key == "multicycle") {
      if (!v.isBool()) return "bad multicycle";
      opts.latencies =
          v.boolean() ? OpLatencyModel::multiCycle() : OpLatencyModel::unit();
    } else if (key == "check") {
      if (!v.isBool()) return "bad check";
      opts.check = v.boolean();
    } else {
      return "unknown option: " + key;
    }
  }
  return "";
}

/// Shared POST-body decode: name/source/design/top/options.
struct DecodedBody {
  std::unique_ptr<json::Node> doc;  ///< keeps route-extra nodes alive
  cmd::Request req;
  std::string error;  ///< non-empty: reject with 400
};

DecodedBody decodeBody(const HttpRequest& http, const SynthesisOptions& base) {
  DecodedBody d;
  d.req.opts = base;
  json::ParseError perr;
  d.doc = json::parseOrError(http.body, perr);
  if (!d.doc) {
    d.error = "invalid JSON body: " + perr.message + " at offset " +
              std::to_string(perr.offset);
    return d;
  }
  if (!d.doc->isObject()) {
    d.error = "request body must be a JSON object";
    return d;
  }
  const json::Node& o = *d.doc;
  d.req.top = o.getString("top");
  if (const json::Node* design = o.get("design")) {
    if (!design->isString()) {
      d.error = "\"design\" must be a string";
      return d;
    }
    for (const auto& b : designs::all())
      if (design->str() == b.name) d.req.source = b.source;
    if (d.req.source.empty()) {
      d.error = "unknown builtin design: " + design->str();
      return d;
    }
    d.req.name = o.getString("name", design->str());
  } else if (const json::Node* source = o.get("source")) {
    if (!source->isString()) {
      d.error = "\"source\" must be a string";
      return d;
    }
    d.req.source = source->str();
    d.req.name = o.getString("name", "request");
  } else {
    d.error = "request needs \"source\" or \"design\"";
    return d;
  }
  if (const json::Node* opts = o.get("options")) {
    if (!opts->isObject()) {
      d.error = "\"options\" must be an object";
      return d;
    }
    d.error = parseOptions(*opts, d.req.opts);
  }
  return d;
}

ServiceResponse fromResult(cmd::Result r) {
  return {r.inputError ? 422 : 200, std::move(r.body)};
}

ServiceResponse errorResponse(int status, const std::string& reason) {
  std::string body = "{\"error\":";
  obs::appendJsonString(body, reason);
  body += "}\n";
  return {status, std::move(body)};
}

/// Value of `key` in an application/x-www-form-urlencoded query string
/// ("a=1&b=2"). No %-decoding — our parameter values never need it.
std::string queryParam(const std::string& query, std::string_view key) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        std::string_view(query).substr(pos, eq - pos) == key)
      return query.substr(eq + 1, amp - eq - 1);
    pos = amp + 1;
  }
  return "";
}

ServiceResponse handleMetrics(const std::string& query) {
  // Surface the frontend cache through the snapshot: the loadgen reads
  // its hit rate from here, and `serve.cache.*` keeps the naming parallel
  // with the serve.* request instruments.
  auto& mr = obs::MetricsRegistry::global();
  const FrontendCache& cache = FrontendCache::global();
  const double hits = (double)cache.hits();
  const double misses = (double)cache.misses();
  mr.gauge("serve.cache.hits").set(hits);
  mr.gauge("serve.cache.misses").set(misses);
  mr.gauge("serve.cache.entries").set((double)cache.size());
  mr.gauge("serve.cache.hit_rate")
      .set(hits + misses > 0 ? hits / (hits + misses) : 0.0);
  const std::string format = queryParam(query, "format");
  if (format == "prometheus")
    return {200, mr.toPrometheus(),
            "text/plain; version=0.0.4; charset=utf-8"};
  if (!format.empty() && format != "json")
    return errorResponse(400, "unknown metrics format: " + format);
  return {200, mr.toJson()};
}

ServiceResponse handleDesigns() {
  JsonValue arr = JsonValue::array();
  for (const auto& d : designs::all()) {
    JsonValue o = JsonValue::object();
    o["name"] = std::string(d.name);
    o["source"] = std::string(d.source);
    JsonValue in = JsonValue::object();
    for (const auto& [k, v] : d.sampleInputs) in[k] = (double)v;
    o["sample_inputs"] = std::move(in);
    arr.push(std::move(o));
  }
  return {200, arr.dump()};
}

}  // namespace

Service::Service(ServiceOptions opts) : opts_(std::move(opts)) {}

std::uint64_t Service::requestCount() const {
  return obs::MetricsRegistry::global().counter("serve.requests").value();
}

ServiceResponse Service::handle(const HttpRequest& req,
                                std::uint64_t sessionId) const {
  auto& mr = obs::MetricsRegistry::global();
  mr.counter("serve.requests").add();
  WallTimer wallTimer;
  FrontendCache::clearThreadStats();

  // The route is the target's path; the query string selects variants
  // of an endpoint (e.g. /metrics?format=prometheus) and must not leak
  // into route matching or per-endpoint metric names.
  const std::size_t qpos = req.target.find('?');
  const std::string path =
      qpos == std::string::npos ? req.target : req.target.substr(0, qpos);
  const std::string query =
      qpos == std::string::npos ? "" : req.target.substr(qpos + 1);

  // Route match before method match: a POST to /healthz must say 405, not
  // 404. The route name keys the per-endpoint latency histogram.
  static constexpr std::string_view kGetRoutes[] = {
      "/healthz", "/metrics", "/designs", "/debug/flight"};
  static constexpr std::string_view kPostRoutes[] = {
      "/synth", "/lint", "/analyze", "/sta", "/prove", "/sim"};
  bool isGet = false, isPost = false;
  for (std::string_view r : kGetRoutes) isGet |= path == r;
  for (std::string_view r : kPostRoutes) isPost |= path == r;

  ServiceResponse resp;
  if (!isGet && !isPost) {
    resp = errorResponse(404, "no such endpoint: " + path);
  } else if ((isGet && req.method != "GET") ||
             (isPost && req.method != "POST")) {
    resp = errorResponse(405, req.method + " not allowed on " + path);
  } else {
    WallTimer timer;
    obs::TraceSpan span("serve" + path,
                        "session " + std::to_string(sessionId));
    try {
      if (path == "/healthz") {
        resp = {200, "{\"status\":\"ok\"}\n"};
      } else if (path == "/metrics") {
        resp = handleMetrics(query);
      } else if (path == "/designs") {
        resp = handleDesigns();
      } else if (path == "/debug/flight") {
        resp = {200, obs::FlightRecorder::global().toJson()};
      } else {
        DecodedBody d = decodeBody(req, opts_.defaults);
        if (!d.error.empty()) {
          resp = errorResponse(400, d.error);
        } else if (path == "/synth") {
          resp = fromResult(cmd::synthJson(d.req));
        } else if (path == "/lint") {
          resp = fromResult(cmd::lintJson(d.req));
        } else if (path == "/analyze") {
          const bool post = d.doc->getBool(
              "post_pipeline", d.doc->get("options") != nullptr &&
                                   d.doc->get("options")->has("opt"));
          resp = fromResult(cmd::analyzeJson(d.req, post));
        } else if (path == "/sta") {
          const double clock = d.doc->getNumber("clock", 0);
          const int paths = (int)d.doc->getNumber("paths", 5);
          if (paths < 0) {
            resp = errorResponse(400, "\"paths\" must be >= 0");
          } else if (clock < 0) {
            resp = errorResponse(400, "\"clock\" must be > 0");
          } else {
            resp = fromResult(cmd::staJson(d.req, clock, paths));
          }
        } else if (path == "/prove") {
          resp = fromResult(
              cmd::proveJson(d.req, d.doc->getBool("prove_passes")));
        } else {  // "/sim"
          std::map<std::string, std::uint64_t> inputs;
          bool badInputs = false;
          if (const json::Node* in = d.doc->get("inputs")) {
            if (!in->isObject()) {
              badInputs = true;
            } else {
              for (const auto& [k, v] : in->members()) {
                if (!v->isNumber() || v->number() < 0) {
                  badInputs = true;
                  break;
                }
                inputs[k] = (std::uint64_t)v->number();
              }
            }
          }
          resp = badInputs ? errorResponse(
                                 400, "\"inputs\" must map ports to numbers")
                           : fromResult(cmd::simJson(d.req, inputs));
        }
      }
    } catch (const std::exception& e) {
      resp = errorResponse(500, e.what());
    } catch (...) {
      resp = errorResponse(500, "unknown internal error");
    }
    // One latency histogram per endpoint ("serve./synth.seconds").
    mr.histogram("serve." + path + ".seconds").observe(timer.seconds());
  }

  if (resp.status >= 400) mr.counter("serve.errors").add();
  mr.counter("serve.status." + std::to_string(resp.status)).add();

  // Access log: one structured record per request, every status
  // included, so the flight recorder's last events name the request
  // that preceded a crash.
  auto& lg = obs::Logger::global();
  if (lg.enabled(obs::LogLevel::Info)) {
    lg.info("serve", "request",
            {{"session", sessionId},
             {"method", req.method},
             {"endpoint", path},
             {"status", resp.status},
             {"ms", wallTimer.seconds() * 1e3},
             {"cache_hit", FrontendCache::threadSawHit() &&
                               !FrontendCache::threadSawMiss()}});
  }
  return resp;
}

}  // namespace mphls::serve
