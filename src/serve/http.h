// Hand-rolled HTTP/1.1 message layer for the synthesis daemon — house
// style: zero dependencies beyond std and POSIX sockets, incremental
// parsing (bytes arrive in arbitrary fragments), hard limits on every
// dimension an untrusted peer controls, and precise 4xx classification so
// the protocol test battery can assert exact status codes.
//
// Scope (all the daemon needs, nothing more): request line + headers +
// Content-Length-delimited bodies, keep-alive accounting, and response
// rendering. No chunked transfer encoding (501), no multipart, no TLS.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mphls::serve {

/// Parser limits: every dimension a client controls is capped so a
/// hostile or broken peer cannot make the daemon allocate unboundedly.
struct HttpLimits {
  std::size_t maxRequestLine = 8 * 1024;
  std::size_t maxHeaderBytes = 32 * 1024;
  /// Request body cap; oversized requests are rejected with 413 before
  /// any body byte is buffered.
  std::size_t maxBodyBytes = 4 * 1024 * 1024;
};

/// One parsed request. Header names are lower-cased at parse time.
struct HttpRequest {
  std::string method;
  std::string target;
  std::string version;  ///< "HTTP/1.0" or "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keepAlive = true;  ///< per Connection header + version default

  /// First header named `nameLower`, or nullptr.
  [[nodiscard]] const std::string* header(std::string_view nameLower) const;
};

/// Incremental request parser for one connection. Feed raw bytes as they
/// arrive; poll next() for complete requests. After an Error the parser
/// is poisoned (a framing error leaves the byte stream unsynchronized) —
/// the connection must send the error response and close.
class HttpParser {
 public:
  explicit HttpParser(HttpLimits limits = {}) : limits_(limits) {}

  /// Append received bytes to the parse buffer.
  void feed(std::string_view data);

  enum class Status {
    NeedMore,  ///< no complete request buffered yet
    Ready,     ///< `out` holds the next request
    Error,     ///< protocol violation; see errorCode()/errorReason()
  };

  /// Extract the next complete request (keep-alive connections carry many
  /// in sequence). Consumes the request's bytes on Ready.
  [[nodiscard]] Status next(HttpRequest& out);

  /// HTTP status for the violation: 400 malformed, 411 length required,
  /// 413 body too large, 431 request line/headers too large, 501
  /// transfer-encoding not implemented. 0 while no error.
  [[nodiscard]] int errorCode() const { return errorCode_; }
  [[nodiscard]] const std::string& errorReason() const { return errorReason_; }

  /// Bytes buffered but not yet consumed (tests).
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  [[nodiscard]] Status failWith(int code, std::string reason);
  [[nodiscard]] Status parseHead(std::string_view head, HttpRequest& out,
                                 std::size_t& contentLength);

  HttpLimits limits_;
  std::string buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_
  int errorCode_ = 0;
  std::string errorReason_;
};

/// Reason phrase for the handful of codes the daemon emits.
[[nodiscard]] std::string_view statusText(int code);

/// Render a complete response with Content-Length framing. No Date header:
/// responses stay byte-deterministic for the golden differential tests.
[[nodiscard]] std::string renderResponse(
    int code, std::string_view body, bool keepAlive,
    std::string_view contentType = "application/json");

/// {"error": reason} body + renderResponse, the daemon's error shape.
[[nodiscard]] std::string renderErrorResponse(int code,
                                              const std::string& reason,
                                              bool keepAlive);

}  // namespace mphls::serve
