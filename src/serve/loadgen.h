// Deterministic load generator for the serve daemon. Replays a seeded
// request mix from N concurrent clients over keep-alive connections and
// writes BENCH_serve.json (p50/p99 latency, throughput, error counts,
// frontend-cache hit rate). The same seed always produces the same
// request schedule — the soak test and the CI smoke depend on that.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mphls::serve {

struct LoadgenOptions {
  std::string url = "http://127.0.0.1:8080";
  int clients = 4;
  /// Total requests across all clients (split round-robin).
  int requests = 100;
  /// Colon-separated endpoint names; repeats weight the draw
  /// ("synth:lint:sim", "synth:synth:lint").
  std::string mix = "synth:lint:sim";
  std::uint64_t seed = 1;
  /// Report path; empty skips the write (in-process tests).
  std::string reportPath = "BENCH_serve.json";
};

struct LoadgenReport {
  int requestsSent = 0;
  int transportErrors = 0;  ///< connect/send/recv failures
  int httpErrors = 0;       ///< responses with status >= 400
  int invalidJson = 0;      ///< 2xx bodies that fail to parse as JSON
  double wallSeconds = 0;
  double requestsPerSecond = 0;
  double p50Ms = 0;
  double p99Ms = 0;
  double cacheHitRate = 0;  ///< from the daemon's /metrics snapshot
  std::string error;        ///< non-empty: the run could not start

  [[nodiscard]] bool clean() const {
    return error.empty() && transportErrors == 0 && httpErrors == 0 &&
           invalidJson == 0;
  }
};

/// Split "http://host:port" (the only accepted scheme). Returns false on
/// anything else.
[[nodiscard]] bool parseUrl(const std::string& url, std::string& host,
                            int& port);

/// Run the campaign. Returns the report; report.error is set when the
/// options are invalid or the daemon is unreachable.
[[nodiscard]] LoadgenReport runLoadgen(const LoadgenOptions& opts);

}  // namespace mphls::serve
