// The daemon's socket layer: a poll()-based event loop that owns every
// file descriptor, with request handling fanned out onto the shared
// work-stealing ThreadPool.
//
// Threading model (see DESIGN.md §14):
//   - The loop thread (the caller of run()) does ALL socket I/O: accept,
//     read, write, close. It also owns each connection's HttpParser.
//   - A complete request flips the connection to `busy` and is submitted
//     to the pool. The worker runs Service::handle, renders the wire
//     bytes, appends them to the connection's output buffer under its
//     mutex, clears `busy`, and wakes the loop through the self-pipe.
//   - The loop never parses past a busy connection (no concurrent
//     handling of pipelined requests on one session) and never closes a
//     busy connection, so a worker's connection pointer stays valid for
//     the task's whole life.
//
// Backpressure: at most `maxConnections` sessions; excess accepts get an
// immediate 503 and close. Request bodies are capped by HttpLimits (413).
//
// Shutdown: requestStop() is async-signal-safe (one byte down the
// self-pipe) — SIGTERM handlers call it directly. The loop then stops
// accepting, lets in-flight requests finish and their responses drain,
// closes idle sessions, and returns from run().
#pragma once

#include <cstdint>
#include <string>

#include "serve/http.h"
#include "serve/service.h"

namespace mphls::serve {

struct ServerOptions {
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  int port = 0;
  /// Worker threads; <= 0 means one per hardware thread.
  int jobs = 0;
  /// Accept cap; sessions beyond it are answered 503 and closed.
  int maxConnections = 256;
  HttpLimits limits;
  ServiceOptions service;
};

class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen on 127.0.0.1. Returns false with `error` filled on
  /// failure. Must be called (successfully) before run().
  [[nodiscard]] bool start(std::string& error);

  /// The bound port (after start()); resolves port 0 to the real one.
  [[nodiscard]] int port() const { return port_; }

  /// Serve until requestStop(). Runs the event loop on the calling
  /// thread; returns once every in-flight request has drained.
  void run();

  /// Ask the loop to shut down gracefully. Async-signal-safe and
  /// thread-safe: only writes one byte to the self-pipe.
  void requestStop();

  /// Sessions accepted so far (includes 503-rejected ones).
  [[nodiscard]] std::uint64_t sessionsOpened() const { return nextSession_; }

 private:
  struct Impl;

  ServerOptions opts_;
  int port_ = 0;
  int listenFd_ = -1;
  int wakeRead_ = -1;   ///< self-pipe read end (loop polls it)
  int wakeWrite_ = -1;  ///< self-pipe write end (workers + signals)
  std::uint64_t nextSession_ = 0;

  Impl* impl_ = nullptr;
};

}  // namespace mphls::serve
