#include "serve/loadgen.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <random>
#include <thread>

#include "common/bench_report.h"
#include "common/json_reader.h"
#include "serve/client.h"

namespace mphls::serve {

namespace {

constexpr const char* kEndpoints[] = {"synth", "lint", "analyze",
                                      "sta",   "prove", "sim"};

[[nodiscard]] bool isEndpoint(const std::string& name) {
  for (const char* e : kEndpoints)
    if (name == e) return true;
  return false;
}

/// One scheduled request: a target plus a fully rendered body.
struct PlannedRequest {
  std::string target;
  std::string body;
};

[[nodiscard]] double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const std::size_t idx = std::min(
      sorted.size() - 1, (std::size_t)((double)sorted.size() * q));
  return sorted[idx];
}

}  // namespace

bool parseUrl(const std::string& url, std::string& host, int& port) {
  const std::string scheme = "http://";
  if (url.rfind(scheme, 0) != 0) return false;
  const std::string rest = url.substr(scheme.size());
  const std::size_t colon = rest.find(':');
  if (colon == std::string::npos || colon == 0) return false;
  host = rest.substr(0, colon);
  std::string portStr = rest.substr(colon + 1);
  if (const std::size_t slash = portStr.find('/');
      slash != std::string::npos) {
    if (slash + 1 != portStr.size()) return false;  // only a bare trailing /
    portStr = portStr.substr(0, slash);
  }
  if (portStr.empty() || portStr.size() > 5) return false;
  port = 0;
  for (char c : portStr) {
    if (c < '0' || c > '9') return false;
    port = port * 10 + (c - '0');
  }
  return port > 0 && port <= 65535;
}

LoadgenReport runLoadgen(const LoadgenOptions& opts) {
  LoadgenReport rep;
  std::string host;
  int port = 0;
  if (!parseUrl(opts.url, host, port)) {
    rep.error = "bad --url (expected http://host:port): " + opts.url;
    return rep;
  }
  if (opts.clients < 1 || opts.requests < 1) {
    rep.error = "--clients and --requests must be >= 1";
    return rep;
  }

  // Parse the mix: colon-separated endpoint names; repeats add weight.
  std::vector<std::string> mix;
  {
    std::string cur;
    for (char c : opts.mix + ":") {
      if (c == ':') {
        if (!cur.empty()) {
          if (!isEndpoint(cur)) {
            rep.error = "unknown endpoint in --mix: " + cur;
            return rep;
          }
          mix.push_back(cur);
          cur.clear();
        }
      } else {
        cur += c;
      }
    }
    if (mix.empty()) {
      rep.error = "--mix is empty";
      return rep;
    }
  }

  // Discover the builtin designs (and their stimulus) from the daemon so
  // /sim requests run with meaningful inputs.
  struct DesignInfo {
    std::string name;
    std::string inputsJson;  ///< rendered {"port": value, ...}
  };
  std::vector<DesignInfo> designs;
  {
    HttpClient probe(host, port);
    const ClientResponse r = probe.get("/designs");
    if (!r.ok) {
      rep.error = "daemon unreachable at " + opts.url + ": " + r.error;
      return rep;
    }
    const auto doc = json::parse(r.body);
    if (!doc || !doc->isArray() || doc->size() == 0) {
      rep.error = "bad /designs response";
      return rep;
    }
    for (const auto& d : doc->items()) {
      DesignInfo info;
      info.name = d->getString("name");
      std::string in = "{";
      if (const json::Node* si = d->get("sample_inputs")) {
        bool first = true;
        for (const auto& [k, v] : si->members()) {
          if (!first) in += ",";
          first = false;
          in += "\"" + k + "\":" + std::to_string((std::uint64_t)v->number());
        }
      }
      in += "}";
      info.inputsJson = in;
      designs.push_back(std::move(info));
    }
  }

  // Deterministic schedule: one seeded stream decides every request's
  // endpoint and design up front; clients take rounds round-robin, so the
  // set of requests sent is identical across runs (arrival order is not,
  // and need not be — responses are order-independent).
  std::mt19937_64 rng(opts.seed);
  std::vector<PlannedRequest> plan;
  plan.reserve((std::size_t)opts.requests);
  for (int i = 0; i < opts.requests; ++i) {
    const std::string& ep = mix[rng() % mix.size()];
    const DesignInfo& d = designs[rng() % designs.size()];
    PlannedRequest pr;
    pr.target = "/" + ep;
    if (ep == "sta")
      pr.body = "{\"design\":\"" + d.name + "\",\"clock\":10}";
    else if (ep == "sim")
      pr.body =
          "{\"design\":\"" + d.name + "\",\"inputs\":" + d.inputsJson + "}";
    else if (ep == "prove")
      pr.body = "{\"design\":\"" + d.name +
                "\",\"options\":{\"opt\":\"standard\"}}";
    else
      pr.body = "{\"design\":\"" + d.name + "\"}";
    plan.push_back(std::move(pr));
  }

  // Fire: each client owns one keep-alive connection and its round-robin
  // slice of the plan.
  struct ClientStats {
    std::vector<double> latenciesMs;
    int transportErrors = 0;
    int httpErrors = 0;
    int invalidJson = 0;
  };
  std::vector<ClientStats> stats((std::size_t)opts.clients);
  std::map<std::string, std::vector<double>> byEndpoint;
  std::mutex byEndpointM;

  WallTimer wall;
  std::vector<std::thread> threads;
  threads.reserve((std::size_t)opts.clients);
  for (int ci = 0; ci < opts.clients; ++ci) {
    threads.emplace_back([&, ci] {
      ClientStats& s = stats[(std::size_t)ci];
      HttpClient client(host, port);
      for (std::size_t i = (std::size_t)ci; i < plan.size();
           i += (std::size_t)opts.clients) {
        const PlannedRequest& pr = plan[i];
        WallTimer t;
        const ClientResponse r = client.post(pr.target, pr.body);
        const double ms = t.seconds() * 1000.0;
        if (!r.ok) {
          ++s.transportErrors;
          continue;
        }
        s.latenciesMs.push_back(ms);
        if (r.status >= 400) ++s.httpErrors;
        else if (!json::valid(r.body)) ++s.invalidJson;
        std::lock_guard<std::mutex> lk(byEndpointM);
        byEndpoint[pr.target].push_back(ms);
      }
    });
  }
  for (auto& t : threads) t.join();
  rep.wallSeconds = wall.seconds();

  std::vector<double> all;
  for (const auto& s : stats) {
    all.insert(all.end(), s.latenciesMs.begin(), s.latenciesMs.end());
    rep.transportErrors += s.transportErrors;
    rep.httpErrors += s.httpErrors;
    rep.invalidJson += s.invalidJson;
  }
  rep.requestsSent = opts.requests;
  std::sort(all.begin(), all.end());
  rep.p50Ms = percentile(all, 0.50);
  rep.p99Ms = percentile(all, 0.99);
  rep.requestsPerSecond =
      rep.wallSeconds > 0 ? (double)all.size() / rep.wallSeconds : 0;

  // Cache hit rate straight from the daemon's metrics snapshot.
  double cacheHits = 0, cacheMisses = 0;
  {
    HttpClient probe(host, port);
    const ClientResponse r = probe.get("/metrics");
    if (r.ok) {
      if (const auto doc = json::parse(r.body)) {
        if (const json::Node* g = doc->get("gauges")) {
          rep.cacheHitRate = g->getNumber("serve.cache.hit_rate");
          cacheHits = g->getNumber("serve.cache.hits");
          cacheMisses = g->getNumber("serve.cache.misses");
        }
      }
    }
  }

  if (!opts.reportPath.empty()) {
    BenchReporter out("serve_loadgen");
    JsonValue& root = out.root();
    root["url"] = opts.url;
    root["clients"] = opts.clients;
    root["requests"] = opts.requests;
    root["mix"] = opts.mix;
    root["seed"] = (std::size_t)opts.seed;
    root["wall_seconds"] = rep.wallSeconds;
    root["requests_per_second"] = rep.requestsPerSecond;
    JsonValue lat = JsonValue::object();
    lat["p50_ms"] = rep.p50Ms;
    lat["p90_ms"] = percentile(all, 0.90);
    lat["p99_ms"] = rep.p99Ms;
    lat["max_ms"] = all.empty() ? 0.0 : all.back();
    double sum = 0;
    for (double v : all) sum += v;
    lat["mean_ms"] = all.empty() ? 0.0 : sum / (double)all.size();
    root["latency"] = std::move(lat);
    JsonValue errs = JsonValue::object();
    errs["transport"] = rep.transportErrors;
    errs["http"] = rep.httpErrors;
    errs["invalid_json"] = rep.invalidJson;
    root["errors"] = std::move(errs);
    JsonValue cache = JsonValue::object();
    cache["hit_rate"] = rep.cacheHitRate;
    cache["hits"] = cacheHits;
    cache["misses"] = cacheMisses;
    root["cache"] = std::move(cache);
    JsonValue eps = JsonValue::object();
    for (auto& [target, lats] : byEndpoint) {
      std::sort(lats.begin(), lats.end());
      JsonValue e = JsonValue::object();
      e["count"] = lats.size();
      e["p50_ms"] = percentile(lats, 0.50);
      e["p99_ms"] = percentile(lats, 0.99);
      eps[target] = std::move(e);
    }
    root["endpoints"] = std::move(eps);
    if (!out.writeFile(opts.reportPath))
      rep.error = "cannot write " + opts.reportPath;
  }
  return rep;
}

}  // namespace mphls::serve
