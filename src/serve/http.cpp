#include "serve/http.h"

#include "obs/trace.h"

namespace mphls::serve {

namespace {

[[nodiscard]] std::string toLower(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  return out;
}

[[nodiscard]] std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
    s.remove_suffix(1);
  return s;
}

/// HTTP token characters (RFC 9110 tchar), the legal method alphabet.
[[nodiscard]] bool isTchar(char c) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
      (c >= '0' && c <= '9'))
    return true;
  return std::string_view("!#$%&'*+-.^_`|~").find(c) != std::string_view::npos;
}

}  // namespace

const std::string* HttpRequest::header(std::string_view nameLower) const {
  for (const auto& [k, v] : headers)
    if (k == nameLower) return &v;
  return nullptr;
}

void HttpParser::feed(std::string_view data) {
  if (errorCode_ != 0) return;  // poisoned: drop everything
  buf_.append(data.data(), data.size());
  // Compact once the consumed prefix dominates the buffer.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
}

HttpParser::Status HttpParser::failWith(int code, std::string reason) {
  errorCode_ = code;
  errorReason_ = std::move(reason);
  return Status::Error;
}

HttpParser::Status HttpParser::parseHead(std::string_view head,
                                         HttpRequest& out,
                                         std::size_t& contentLength) {
  out = HttpRequest{};
  contentLength = 0;

  // Request line: METHOD SP target SP HTTP/x.y  (CR already stripped).
  std::size_t eol = head.find('\n');
  std::string_view line = head.substr(0, eol);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  if (line.size() > limits_.maxRequestLine)
    return failWith(431, "request line too long");
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos)
    return failWith(400, "malformed request line");
  out.method = std::string(line.substr(0, sp1));
  out.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  out.version = std::string(line.substr(sp2 + 1));
  if (out.method.empty() || out.method.size() > 16)
    return failWith(400, "malformed method");
  for (char c : out.method)
    if (!isTchar(c)) return failWith(400, "malformed method");
  if (out.target.empty() || out.target.front() != '/')
    return failWith(400, "malformed request target");
  if (out.version != "HTTP/1.1" && out.version != "HTTP/1.0")
    return failWith(400, "unsupported HTTP version");

  // Header fields.
  bool haveLength = false;
  std::size_t cursor = eol == std::string_view::npos ? head.size() : eol + 1;
  while (cursor < head.size()) {
    std::size_t end = head.find('\n', cursor);
    if (end == std::string_view::npos) end = head.size();
    std::string_view h = head.substr(cursor, end - cursor);
    cursor = end + 1;
    if (!h.empty() && h.back() == '\r') h.remove_suffix(1);
    if (h.empty()) continue;
    const std::size_t colon = h.find(':');
    if (colon == std::string_view::npos || colon == 0)
      return failWith(400, "malformed header field");
    std::string_view name = h.substr(0, colon);
    for (char c : name)
      if (!isTchar(c)) return failWith(400, "malformed header name");
    out.headers.emplace_back(toLower(name),
                             std::string(trim(h.substr(colon + 1))));
  }

  if (const std::string* te = out.header("transfer-encoding");
      te != nullptr && toLower(*te) != "identity")
    return failWith(501, "transfer-encoding not supported");

  if (const std::string* cl = out.header("content-length")) {
    if (cl->empty()) return failWith(400, "malformed Content-Length");
    std::size_t parsed = 0;
    for (char c : *cl) {
      if (c < '0' || c > '9') return failWith(400, "malformed Content-Length");
      const std::size_t digit = static_cast<std::size_t>(c - '0');
      if (parsed > (limits_.maxBodyBytes - digit) / 10 + 1)
        return failWith(413, "request body too large");
      parsed = parsed * 10 + digit;
    }
    if (parsed > limits_.maxBodyBytes)
      return failWith(413, "request body too large");
    contentLength = parsed;
    haveLength = true;
  }
  if (!haveLength && (out.method == "POST" || out.method == "PUT"))
    return failWith(411, "Content-Length required");

  // Keep-alive: 1.1 defaults on, 1.0 defaults off.
  const std::string* conn = out.header("connection");
  const std::string connLower = conn ? toLower(*conn) : "";
  out.keepAlive = out.version == "HTTP/1.1" ? connLower != "close"
                                            : connLower == "keep-alive";
  return Status::Ready;
}

HttpParser::Status HttpParser::next(HttpRequest& out) {
  if (errorCode_ != 0) return Status::Error;
  const std::string_view avail = std::string_view(buf_).substr(pos_);

  // Find the end of the header section: CRLFCRLF (bare-LF tolerated).
  std::size_t headEnd = std::string_view::npos;
  std::size_t bodyStart = 0;
  if (const std::size_t crlf = avail.find("\r\n\r\n");
      crlf != std::string_view::npos) {
    headEnd = crlf;
    bodyStart = crlf + 4;
  }
  if (const std::size_t lf = avail.find("\n\n");
      lf != std::string_view::npos && lf < headEnd) {
    headEnd = lf;
    bodyStart = lf + 2;
  }
  if (headEnd == std::string_view::npos) {
    if (avail.size() > limits_.maxRequestLine + limits_.maxHeaderBytes)
      return failWith(431, "request headers too large");
    return Status::NeedMore;
  }
  if (headEnd > limits_.maxRequestLine + limits_.maxHeaderBytes)
    return failWith(431, "request headers too large");

  std::size_t contentLength = 0;
  const Status head = parseHead(avail.substr(0, headEnd), out, contentLength);
  if (head != Status::Ready) return head;

  if (avail.size() - bodyStart < contentLength) {
    out = HttpRequest{};
    return Status::NeedMore;  // body still arriving
  }
  // Re-parse is avoided: parseHead already filled `out`; just attach the
  // body and consume the request's bytes.
  out.body = std::string(avail.substr(bodyStart, contentLength));
  pos_ += bodyStart + contentLength;
  return Status::Ready;
}

std::string_view statusText(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 422: return "Unprocessable Entity";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string renderResponse(int code, std::string_view body, bool keepAlive,
                           std::string_view contentType) {
  std::string out;
  out.reserve(body.size() + 128);
  out += "HTTP/1.1 ";
  out += std::to_string(code);
  out += ' ';
  out += statusText(code);
  out += "\r\nServer: mphls\r\nContent-Type: ";
  out += contentType;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: ";
  out += keepAlive ? "keep-alive" : "close";
  out += "\r\n\r\n";
  out += body;
  return out;
}

std::string renderErrorResponse(int code, const std::string& reason,
                                bool keepAlive) {
  std::string body = "{\"error\":";
  obs::appendJsonString(body, reason);
  body += "}\n";
  return renderResponse(code, body, keepAlive);
}

}  // namespace mphls::serve
