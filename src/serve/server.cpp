#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace mphls::serve {

namespace {

void setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// One client session. The loop thread owns fd/parser/readClosed; outbuf,
/// busy and closeAfter are the worker handoff surface, guarded by `m`.
struct Conn {
  int fd = -1;
  std::uint64_t id = 0;
  HttpParser parser;
  bool readClosed = false;  ///< peer half-closed; drain then close

  std::mutex m;
  std::string outbuf;       ///< wire bytes awaiting write (guarded by m)
  bool busy = false;        ///< a worker holds this session (guarded by m)
  bool closeAfter = false;  ///< close once outbuf drains (guarded by m)

  explicit Conn(HttpLimits limits) : parser(limits) {}
};

}  // namespace

struct Server::Impl {
  std::vector<std::shared_ptr<Conn>> conns;
  std::unique_ptr<ThreadPool> pool;
  std::atomic<bool> stopping{false};
};

Server::Server(ServerOptions opts) : opts_(std::move(opts)) {
  impl_ = new Impl();
}

Server::~Server() {
  // Joining the pool first guarantees no worker touches a Conn after the
  // connection list is torn down.
  impl_->pool.reset();
  for (auto& c : impl_->conns)
    if (c->fd >= 0) ::close(c->fd);
  if (listenFd_ >= 0) ::close(listenFd_);
  if (wakeRead_ >= 0) ::close(wakeRead_);
  if (wakeWrite_ >= 0) ::close(wakeWrite_);
  delete impl_;
}

bool Server::start(std::string& error) {
  listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listenFd_ < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int one = 1;
  ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
  if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    error = std::string("bind: ") + std::strerror(errno);
    return false;
  }
  if (::listen(listenFd_, 128) < 0) {
    error = std::string("listen: ") + std::strerror(errno);
    return false;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    error = std::string("getsockname: ") + std::strerror(errno);
    return false;
  }
  port_ = ntohs(addr.sin_port);
  setNonBlocking(listenFd_);

  int pipeFds[2];
  if (::pipe(pipeFds) < 0) {
    error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  wakeRead_ = pipeFds[0];
  wakeWrite_ = pipeFds[1];
  setNonBlocking(wakeRead_);
  setNonBlocking(wakeWrite_);

  impl_->pool = std::make_unique<ThreadPool>(resolveJobs(opts_.jobs), "serve");
  return true;
}

void Server::requestStop() {
  // Async-signal-safe: write(2) only. 's' = stop.
  const char b = 's';
  [[maybe_unused]] ssize_t n = ::write(wakeWrite_, &b, 1);
}

void Server::run() {
  auto& mr = obs::MetricsRegistry::global();
  Service service(opts_.service);
  auto& conns = impl_->conns;

  // Pull parsed requests out of a connection and hand them to the pool.
  // Loop thread only. Stops at the first incomplete request, protocol
  // error, or while a worker holds the session.
  auto pump = [&](const std::shared_ptr<Conn>& c) {
    for (;;) {
      {
        std::lock_guard<std::mutex> lk(c->m);
        if (c->busy || c->closeAfter) return;
      }
      HttpRequest req;
      const HttpParser::Status st = c->parser.next(req);
      if (st == HttpParser::Status::NeedMore) return;
      if (st == HttpParser::Status::Error) {
        // The byte stream is unsynchronized: answer and close.
        std::lock_guard<std::mutex> lk(c->m);
        c->outbuf += renderErrorResponse(c->parser.errorCode(),
                                         c->parser.errorReason(), false);
        c->closeAfter = true;
        mr.counter("serve.protocol_errors").add();
        return;
      }
      {
        std::lock_guard<std::mutex> lk(c->m);
        c->busy = true;
      }
      impl_->pool->submit([this, &service, c, req = std::move(req)] {
        const ServiceResponse resp = service.handle(req, c->id);
        const bool keep = req.keepAlive && !impl_->stopping.load();
        std::string wire =
            renderResponse(resp.status, resp.body, keep, resp.contentType);
        {
          std::lock_guard<std::mutex> lk(c->m);
          c->outbuf += wire;
          c->busy = false;
          if (!keep) c->closeAfter = true;
        }
        const char b = 'w';  // wake: response ready to flush
        [[maybe_unused]] ssize_t n = ::write(wakeWrite_, &b, 1);
      });
    }
  };

  std::vector<pollfd> fds;
  while (true) {
    // Rebuild the poll set each pass (session counts are small).
    fds.clear();
    fds.push_back({wakeRead_, POLLIN, 0});
    const bool accepting =
        !impl_->stopping.load() &&
        (int)conns.size() < opts_.maxConnections;
    if (listenFd_ >= 0 && accepting) fds.push_back({listenFd_, POLLIN, 0});
    for (auto& c : conns) {
      short ev = 0;
      bool wantWrite = false;
      bool busy = false;
      {
        std::lock_guard<std::mutex> lk(c->m);
        wantWrite = !c->outbuf.empty();
        busy = c->busy;
      }
      if (!c->readClosed && !busy) ev |= POLLIN;
      if (wantWrite) ev |= POLLOUT;
      // poll() skips negative fds: a busy session with nothing to write
      // is parked so a peer hangup cannot spin the loop mid-synthesis.
      fds.push_back({ev == 0 ? -1 : c->fd, ev, 0});
    }

    if (::poll(fds.data(), (nfds_t)fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }

    // Drain the self-pipe; a stop byte flips the drain mode.
    if (fds[0].revents & POLLIN) {
      char buf[64];
      ssize_t n;
      while ((n = ::read(wakeRead_, buf, sizeof buf)) > 0)
        for (ssize_t i = 0; i < n; ++i)
          if (buf[i] == 's' && !impl_->stopping.exchange(true))
            mr.counter("serve.stop_requests").add();
    }

    // New sessions.
    const std::size_t listenSlot = accepting ? 1 : 0;
    if (listenSlot && (fds[listenSlot].revents & POLLIN)) {
      for (;;) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) break;
        setNonBlocking(fd);
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        auto c = std::make_shared<Conn>(opts_.limits);
        c->fd = fd;
        c->id = ++nextSession_;
        mr.counter("serve.sessions").add();
        if ((int)conns.size() >= opts_.maxConnections) {
          // Backpressure: reject instead of queueing unboundedly.
          c->outbuf = renderErrorResponse(503, "server at capacity", false);
          c->closeAfter = true;
          mr.counter("serve.rejected_sessions").add();
        }
        conns.push_back(std::move(c));
      }
    }

    // Per-session I/O. Slots after the self-pipe (+ listen) are conns, in
    // order; but conns may have been appended above, so map by index.
    const std::size_t firstConn = 1 + (listenSlot ? 1 : 0);
    for (std::size_t i = 0; firstConn + i < fds.size(); ++i) {
      auto& c = conns[i];
      const short re = fds[firstConn + i].revents;
      if (re & POLLIN) {
        char buf[16 * 1024];
        for (;;) {
          const ssize_t n = ::recv(c->fd, buf, sizeof buf, 0);
          if (n > 0) {
            c->parser.feed(std::string_view(buf, (std::size_t)n));
            if ((ssize_t)sizeof buf != n) break;
          } else if (n == 0) {
            c->readClosed = true;
            break;
          } else {
            if (errno != EAGAIN && errno != EWOULDBLOCK) c->readClosed = true;
            break;
          }
        }
      }
      if (re & (POLLERR | POLLHUP)) c->readClosed = true;
    }

    // Dispatch, flush, reap. Every conn is visited every pass: a worker
    // wake must flush sessions regardless of which fd had events.
    for (auto& c : conns) {
      pump(c);
      std::lock_guard<std::mutex> lk(c->m);
      while (!c->outbuf.empty()) {
        const ssize_t n = ::send(c->fd, c->outbuf.data(), c->outbuf.size(),
                                 MSG_NOSIGNAL);
        if (n > 0) {
          c->outbuf.erase(0, (std::size_t)n);
        } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          break;
        } else {
          c->outbuf.clear();  // peer gone; nothing left to deliver
          c->closeAfter = true;
          break;
        }
      }
    }
    for (std::size_t i = 0; i < conns.size();) {
      auto& c = conns[i];
      bool close = false;
      {
        std::lock_guard<std::mutex> lk(c->m);
        const bool drained = c->outbuf.empty() && !c->busy;
        close = drained && (c->closeAfter || c->readClosed ||
                            impl_->stopping.load());
      }
      if (close) {
        ::close(c->fd);
        conns.erase(conns.begin() + (std::ptrdiff_t)i);
      } else {
        ++i;
      }
    }

    if (impl_->stopping.load() && conns.empty()) break;
  }

  // Drain complete: join the workers before returning so the caller can
  // destroy the Server immediately.
  impl_->pool.reset();
  if (listenFd_ >= 0) {
    ::close(listenFd_);
    listenFd_ = -1;
  }
}

}  // namespace mphls::serve
