// mphls — command-line driver for the high-level synthesis system.
//
// Usage:
//   mphls [options] design.bdl
//   mphls lint [--format text|json] [options] design.bdl
//   mphls analyze [--dot-facts FILE] design.bdl
//   mphls analyze --builtins
//   mphls prove [--prove-passes] [--inject mul|sched|bind]
//               [--format text|json] [options] design.bdl | --builtins
//   mphls sta [--clock NS] [--paths K] [--format text|json]
//             [options] design.bdl | --builtins
//   mphls profile [options] design.bdl
//   mphls bench [--jobs N] [--points N] [--repeats N] [--sched-ops N]
//               [--out DIR] [--trace FILE] [--stats FILE] [--quiet]
//   mphls fuzz [--seeds N] [--seed-base S] [--jobs N]
//              [--matrix quick|standard|full] [--trials N] [--reduce]
//              [--corpus DIR] [--no-save] [--replay DIR] [--inject mul]
//              [--no-check] [--trace FILE] [--stats FILE] [--out FILE]
//              [--quiet]
//
// The `lint` subcommand synthesizes the design and prints the full static
// verification report (schedule legality, binding consistency, controller
// completeness, Verilog netlist lint) instead of the synthesis summary;
// it exits 1 if any error-severity finding is reported. `--format json`
// switches the report to one machine-readable JSON object
// ({"file","diagnostics":[{"severity","code","where","message"}],...}).
//
// The `prove` subcommand runs the symbolic equivalence engine (src/sec/,
// DESIGN.md §11): the synthesized FSM/datapath is proved equivalent to the
// behavioral CDFG block by block, with every obligation discharged by
// bit-blasting to the built-in CDCL SAT solver. `--prove-passes`
// additionally validates each optimization pass application (translation
// validation), pinpointing the first non-equivalence-preserving pass.
// `--inject mul|sched|bind` flips the gate into its self-test: a known
// miscompile is injected and the command exits 0 only when the proof
// *fails* on every design it applies to. `--builtins` proves every
// built-in design (the CI gate). The plain synthesis path accepts
// `--prove` to run the same proof as a pipeline stage.
//
// The `sta` subcommand runs the path-level static timing analysis engine
// (src/sta/, DESIGN.md §13) on the synthesized design: per-state timing
// graphs with arrival/required/slack against a target clock (--clock,
// default: the estimated cycle time), the K worst named paths (--paths),
// state-aware false-path pruning versus the structural analysis, and the
// timing-closure lint (timing.* check ids). Exits 1 on any error-severity
// finding — negative slack, STA-vs-estimator divergence, comb loops.
// `--builtins` analyzes every built-in design (the CI gate); `--format
// json` emits the machine-readable report.
//
// The `analyze` subcommand runs the abstract-interpretation dataflow engine
// (value ranges + known bits) on the compiled behavior and prints the
// per-value facts plus the semantic lint report (analysis.* check ids); it
// exits 1 if any error-severity finding is reported. `--dot-facts FILE`
// additionally writes the CFG and per-block DFGs with each node annotated
// by its fact; `--builtins` analyzes every built-in design instead of a
// file (the CI gate). With an explicit `--opt` (and optionally `--narrow`)
// the analysis runs on the post-pipeline IR instead of the frontend
// output — the facts the width-narrowing pass actually consumes.
//
// The `bench` subcommand runs the synthesis-throughput suite on built-in
// designs and writes BENCH_dse.json / BENCH_sched.json (see
// core/bench_runner.h); it needs no input file.
//
// The `profile` subcommand synthesizes the design, simulates it under the
// waveform/coverage recorder, and prints a stage/pass time + counter +
// FSM-coverage table. `--trace FILE` (Chrome trace_event JSON for
// Perfetto), `--vcd FILE` (GTKWave waveform) and `--stats FILE` (metrics
// registry JSON) work on the synth, profile, bench and fuzz paths; see
// DESIGN.md §10.
//
// The `fuzz` subcommand runs the differential co-simulation fuzzer
// (src/fuzz/): deterministic random BDL programs are synthesized across a
// scheduler × allocator × encoding × narrow matrix, every point is gated
// through checkDesign, and the RTL is co-simulated against the behavioral
// interpreter. Failures are saved (raw + delta-debug-minimized with
// --reduce) under the corpus directory; --replay DIR re-runs saved corpus
// entries as a regression gate. Exits 1 on any failure.
//
// Options:
//   --top NAME             top procedure (default: last in file)
//   --scheduler KIND       serial|asap|list|force|freedom|bnb|transform
//   --fus N                universal functional-unit limit (default 2)
//   --priority P           list priority: path|mobility|urgency|program
//   --opt LEVEL            none|standard|aggressive (default standard)
//   --fu-alloc M           greedy|global|blind|clique (default greedy)
//   --reg-alloc M          leftedge|clique|naive (default leftedge)
//   --encoding E           binary|gray|onehot (default binary)
//   --time-constraint N    steps for force-directed scheduling
//   --verilog FILE         write generated Verilog
//   --dot FILE             write the CFG (and per-block DFGs) as DOT
//   --verify a=1,b=2       simulate RTL vs behavior on given inputs
//                          (repeatable)
//   --sweep N              print an area/latency sweep over 1..N FUs
//   --jobs N               DSE worker threads (default: hardware
//                          concurrency; 1 bypasses the thread pool)
//   --multicycle           2-step multipliers / 4-step dividers
//   --check / --no-check   enable/disable stage-boundary checkers (default on)
//   --quiet                suppress the report
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <vector>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string_view>

#include "common/thread_pool.h"
#include "core/commands.h"
#include "opt/pass.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "analysis/dataflow.h"
#include "check/check.h"
#include "common/bench_report.h"
#include "common/json_reader.h"
#include "core/bench_check.h"
#include "core/bench_runner.h"
#include "fuzz/campaign.h"
#include "fuzz/sim_bench.h"
#include "core/designs.h"
#include "core/dse.h"
#include "core/synthesizer.h"
#include "fuzz/diff_runner.h"
#include "sec/passes.h"
#include "sec/prove.h"
#include "sta/sta.h"
#include "ir/dot.h"
#include "lang/frontend.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rtl/rtlsim.h"
#include "rtl/sim_trace.h"
#include "rtl/verilog.h"
#include "sched/schedule.h"
#include "vm/sim_engine.h"

using namespace mphls;

namespace {

struct CliArgs {
  std::string file;
  std::string top;
  std::string verilogOut;
  std::string dotOut;
  std::vector<std::map<std::string, std::uint64_t>> verifyRuns;
  std::string dotFactsOut;
  std::string traceOut;  ///< --trace: Chrome trace_event JSON
  std::string vcdOut;    ///< --vcd: simulation waveform
  std::string statsOut;  ///< --stats: metrics registry JSON
  std::string logFile;   ///< --log-file: JSONL structured log sink
  std::string logLevel;  ///< --log-level: debug|info|warn|error
  std::string flightIn;  ///< profile --flight: decode a flight dump
  int sweep = 0;
  bool quiet = false;
  bool lint = false;
  bool analyze = false;
  bool profile = false;
  bool prove = false;        ///< `prove` subcommand
  bool sta = false;          ///< `sta` subcommand
  bool synthCmd = false;     ///< explicit `synth` subcommand token
  double staClock = 0;       ///< --clock: target period (0 = estimated)
  int staPaths = 5;          ///< --paths: K worst paths to report
  bool provePasses = false;  ///< --prove-passes: per-pass validation
  bool jsonFormat = false;   ///< --format json (lint and prove)
  fuzz::InjectedBug inject = fuzz::InjectedBug::None;
  bool builtins = false;
  bool optExplicit = false;  ///< --opt given: analyze post-pipeline IR
  SynthesisOptions opts;
};

void usage() {
  std::cerr <<
      "usage: mphls [options] design.bdl\n"
      "       mphls synth [--format text|json] [options] design.bdl\n"
      "       mphls lint [--format text|json] [options] design.bdl\n"
      "       mphls analyze [--dot-facts FILE] design.bdl | --builtins\n"
      "       mphls prove [--prove-passes] [--inject mul|sched|bind]\n"
      "                   [--format text|json] [options] design.bdl |"
      " --builtins\n"
      "       mphls sta [--clock NS] [--paths K] [--format text|json]\n"
      "                 [options] design.bdl | --builtins\n"
      "       mphls profile [options] design.bdl | --flight DUMP\n"
      "  --top NAME  --scheduler serial|asap|list|force|freedom|bnb|transform\n"
      "  --fus N  --priority path|mobility|urgency|program\n"
      "  --opt none|standard|aggressive  --fu-alloc greedy|global|blind|clique\n"
      "  --reg-alloc leftedge|clique|naive  --encoding binary|gray|onehot\n"
      "  --time-constraint N  --verilog FILE  --dot FILE\n"
      "  --verify a=1,b=2  --sweep N  --jobs N  --multicycle  --narrow\n"
      "  --trace FILE  --vcd FILE  --stats FILE\n"
      "  --log-file FILE  --log-level debug|info|warn|error\n"
      "  --check|--no-check  --prove  --quiet\n"
      "       mphls bench [--sim] [--sta] [--jobs N] [--points N]"
      " [--repeats N]\n"
      "                   [--sched-ops N] [--out DIR] [--trace FILE]\n"
      "                   [--stats FILE] [--quiet]\n"
      "       mphls bench --check [--baseline-dir DIR] [--in DIR ...]\n"
      "                   [--out FILE] [--quiet]\n"
      "       mphls fuzz [--seeds N] [--seed-base S] [--jobs N]\n"
      "                  [--matrix quick|standard|full] [--trials N]\n"
      "                  [--engine interp|vm|both] [--cross-check RATE]\n"
      "                  [--reduce] [--corpus DIR] [--no-save]\n"
      "                  [--replay DIR] [--inject mul|sched|bind]\n"
      "                  [--no-check]\n"
      "                  [--trace FILE] [--stats FILE]\n"
      "                  [--out FILE] [--quiet]\n"
      "       mphls serve [--port P] [--jobs N] [--max-connections N]\n"
      "                   [--log-file FILE] [--log-level LEVEL]\n"
      "                   [--flight-dump PATH] [--quiet]\n"
      "       mphls loadgen [--url http://host:port] [--clients N]\n"
      "                     [--requests M] [--mix synth:lint:sim]"
      " [--seed S]\n"
      "                     [--out FILE] [--quiet]\n";
}

bool parseInputs(const std::string& spec,
                 std::map<std::string, std::uint64_t>& out) {
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    auto eq = item.find('=');
    if (eq == std::string::npos) return false;
    out[item.substr(0, eq)] =
        std::strtoull(item.c_str() + eq + 1, nullptr, 0);
  }
  return true;
}

int fail(const std::string& msg) {
  std::cerr << "mphls: " << msg << "\n";
  return 1;
}

/// Turn the tracer on (with a named main-thread track) when --trace was
/// given; instrumentation stays on the null-sink fast path otherwise.
void enableTracing(const std::string& traceOut) {
  if (traceOut.empty()) return;
  obs::Tracer::global().setThreadName("main");
  obs::Tracer::global().enable();
}

/// Configure the structured logger from --log-file/--log-level. A file
/// with no explicit level defaults to info; no file routes to stderr.
/// Returns false (after reporting) when the file cannot be opened or
/// the level is unknown. With neither flag the logger stays on its
/// null-sink fast path.
bool applyLogging(const std::string& logFile, const std::string& logLevel) {
  if (logFile.empty() && logLevel.empty()) return true;
  auto& lg = obs::Logger::global();
  if (!logFile.empty() && !lg.openFile(logFile)) {
    fail("cannot open log file " + logFile);
    return false;
  }
  obs::LogLevel level = obs::LogLevel::Info;
  if (!logLevel.empty()) {
    level = obs::parseLogLevel(logLevel);
    if (level == obs::LogLevel::Off) {
      fail("bad --log-level " + logLevel +
           " (want debug|info|warn|error)");
      return false;
    }
  }
  lg.setLevel(level);
  return true;
}

/// Write the --trace / --stats artifacts at command exit.
int writeObsOutputs(const std::string& traceOut, const std::string& statsOut,
                    bool quiet) {
  if (!traceOut.empty()) {
    if (!obs::Tracer::global().writeChromeTrace(traceOut))
      return fail("cannot write " + traceOut);
    if (!quiet) std::cout << "wrote trace to " << traceOut << "\n";
  }
  if (!statsOut.empty()) {
    if (!obs::MetricsRegistry::global().writeJson(statsOut))
      return fail("cannot write " + statsOut);
    if (!quiet) std::cout << "wrote metrics to " << statsOut << "\n";
  }
  return 0;
}

/// One recorded RTL simulation: waveform (written to `vcdOut` when
/// non-empty), FSM coverage and FU utilization, published as sim.* gauges.
struct RecordedSim {
  RtlExecResult res;
  FsmCoverage cov;
  std::vector<double> util;
  long cycles = 0;
};

std::optional<RecordedSim> recordSimulation(
    const RtlDesign& d, const std::map<std::string, std::uint64_t>& inputs,
    const std::string& vcdOut, bool quiet) {
  SimTraceRecorder rec(d);
  rec.begin(inputs);
  vm::RtlSim sim(d);  // bytecode VM with default interpreter cross-checking
  RecordedSim out;
  WallTimer simTimer;
  {
    obs::TraceSpan span("sim.rtl", d.fn.name());
    out.res = sim.run(inputs, 1000000, rec.observer());
  }
  const double simSeconds = simTimer.seconds();
  rec.finish();
  out.cov = rec.coverage();
  out.util = rec.fuUtilization();
  out.cycles = rec.cycles();

  double utilMean = 0;
  for (double u : out.util) utilMean += u;
  if (!out.util.empty()) utilMean /= (double)out.util.size();
  auto& mr = obs::MetricsRegistry::global();
  mr.gauge("sim.cycles").set((double)out.res.cycles);
  mr.gauge("sim.cycles_per_sec")
      .set(simSeconds > 0 ? (double)out.res.cycles / simSeconds : 0.0);
  mr.gauge("sim.finished").set(out.res.finished ? 1.0 : 0.0);
  mr.gauge("sim.fsm_state_coverage").set(100.0 * out.cov.stateCoverage());
  mr.gauge("sim.fsm_transition_coverage")
      .set(100.0 * out.cov.transitionCoverage());
  mr.gauge("sim.fu_utilization_mean").set(utilMean);

  if (!vcdOut.empty()) {
    if (!rec.writeVcd(vcdOut)) {
      fail("cannot write " + vcdOut);
      return std::nullopt;
    }
    if (!quiet)
      std::cout << "wrote VCD to " << vcdOut << " (" << out.cycles
                << " cycles)\n";
  }
  return out;
}

/// Inputs for a recorded simulation: the first --verify run, topped up
/// with zeros for any input port it leaves unset.
std::map<std::string, std::uint64_t> simInputs(const CliArgs& a,
                                               const RtlDesign& d) {
  std::map<std::string, std::uint64_t> inputs;
  if (!a.verifyRuns.empty()) inputs = a.verifyRuns.front();
  for (const auto& p : d.fn.ports())
    if (p.isInput && inputs.find(p.name) == inputs.end()) inputs[p.name] = 0;
  return inputs;
}

/// `mphls profile --flight DUMP`: decode a flight-recorder dump (the
/// JSONL file a crashed/SIGQUIT'd daemon wrote) into a human-readable
/// timeline. Events are recorded per thread, so the dump is unordered;
/// the decoder sorts by the global sequence number.
int runProfileFlight(const std::string& path) {
  std::ifstream in(path);
  if (!in) return fail("cannot open " + path);

  struct Row {
    std::uint64_t seq = 0;
    double tUs = 0;
    std::uint64_t thread = 0;
    std::string kind, level, component, msg;
  };
  std::vector<Row> rows;
  std::string meta;
  std::string line;
  std::size_t badLines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto doc = json::parse(line);
    if (!doc || !doc->isObject()) {
      ++badLines;  // torn event from a mid-write crash: skip, keep rest
      continue;
    }
    if (const json::Node* fr = doc->get("flight_recorder")) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "threads %d, capacity/thread %d, total recorded %.0f",
                    (int)fr->getNumber("threads"),
                    (int)fr->getNumber("capacity_per_thread"),
                    fr->getNumber("total_recorded"));
      meta = buf;
      continue;
    }
    Row r;
    r.seq = (std::uint64_t)doc->getNumber("seq");
    r.tUs = doc->getNumber("t_us");
    r.thread = (std::uint64_t)doc->getNumber("thread");
    r.kind = doc->getString("kind");
    r.level = doc->getString("level");
    r.component = doc->getString("component");
    r.msg = doc->getString("msg");
    rows.push_back(std::move(r));
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.seq < b.seq; });

  std::printf("flight recorder dump '%s'\n", path.c_str());
  if (!meta.empty()) std::printf("  %s\n", meta.c_str());
  std::printf("  %zu event(s) retained", rows.size());
  if (badLines > 0) std::printf(", %zu unparseable line(s)", badLines);
  std::printf("\n\n%8s %14s %6s %-10s %-5s %-16s %s\n", "seq", "t(ms)",
              "thr", "kind", "lvl", "component", "message");
  for (const Row& r : rows)
    std::printf("%8llu %14.3f %6llu %-10s %-5s %-16s %s\n",
                (unsigned long long)r.seq, r.tUs / 1e3,
                (unsigned long long)r.thread, r.kind.c_str(),
                r.level.c_str(), r.component.c_str(), r.msg.c_str());
  return 0;
}

/// `mphls profile design.bdl`: run the flow once, simulate it with the
/// recorder, and print a stage/pass time + counter table. The sim.*
/// gauges (FSM coverage, FU utilization) land in --stats output.
int runProfile(const CliArgs& a, const SynthesisResult& result) {
  const RtlDesign& d = result.design;
  const auto inputs = simInputs(a, d);
  const auto sim = recordSimulation(d, inputs, a.vcdOut, a.quiet);
  if (!sim) return 1;

  std::printf("profile of '%s'\n", d.fn.name().c_str());
  const StageTimes& st = result.stages;
  std::printf("\n%-20s %12s\n", "stage", "seconds");
  std::printf("  %-18s %12.6f\n", "optimize", st.optimize);
  std::printf("  %-18s %12.6f\n", "schedule", st.schedule);
  std::printf("  %-18s %12.6f\n", "allocate", st.allocate);
  std::printf("  %-18s %12.6f\n", "control", st.control);
  std::printf("  %-18s %12.6f\n", "estimate", st.estimate);
  std::printf("  %-18s %12.6f\n", "check", st.check);
  std::printf("  %-18s %12.6f\n", "prove", st.prove);
  std::printf("  %-18s %12.6f\n", "total", st.total());

  const auto snap = obs::MetricsRegistry::global().snapshot();
  std::printf("\n%-20s %12s %10s\n", "pass", "seconds", "changes");
  for (const auto& [name, h] : snap.histograms) {
    constexpr std::string_view kPre = "pass.", kSuf = ".seconds";
    if (name.size() <= kPre.size() + kSuf.size() ||
        name.compare(0, kPre.size(), kPre) != 0 ||
        name.compare(name.size() - kSuf.size(), kSuf.size(), kSuf) != 0)
      continue;
    const std::string pass =
        name.substr(kPre.size(), name.size() - kPre.size() - kSuf.size());
    std::uint64_t changes = 0;
    for (const auto& [cname, v] : snap.counters)
      if (cname == "pass." + pass + ".changes") changes = v;
    std::printf("  %-18s %12.6f %10llu\n", pass.c_str(), h.sum,
                (unsigned long long)changes);
  }

  // Timing closure at the estimated clock (DESIGN.md §13).
  const sta::StaResult staRes = sta::runSta(d);
  std::printf("\n%-20s %12s\n", "timing", "value");
  std::printf("  %-18s %12.3f\n", "clock (estimated)", staRes.clockNs);
  std::printf("  %-18s %12.3f\n", "cycle time", staRes.cycleTime);
  std::printf("  %-18s %+12.3f\n", "worst slack", staRes.worstSlack);
  std::printf("  %-18s %12.3f\n", "structural cycle", staRes.structuralCycleTime);
  std::printf("  %-18s %12zu\n", "false-path endpts", staRes.falsePathEndpoints);
  if (!staRes.paths.empty())
    std::printf("  critical: %s\n", staRes.paths.front().describe().c_str());

  std::printf("\nsimulation: %ld cycles (%s)\n", sim->res.cycles,
              sim->res.finished ? "halted" : "did not halt");
  std::printf("  %-18s %zu/%zu visited (%.1f%%)\n", "fsm states",
              sim->cov.visitedStates, sim->cov.totalStates,
              100.0 * sim->cov.stateCoverage());
  std::printf("  %-18s %zu/%zu covered (%.1f%%)\n", "fsm transitions",
              sim->cov.visitedTransitions, sim->cov.totalTransitions,
              100.0 * sim->cov.transitionCoverage());
  for (std::size_t f = 0; f < sim->util.size(); ++f)
    std::printf("  fu%zu (%s) busy %.1f%% of cycles\n", f,
                d.lib.component(d.binding.fus[f].comp).name.c_str(),
                100.0 * sim->util[f]);

  std::printf("\n%-32s %10s\n", "counter", "value");
  for (const auto& [name, v] : snap.counters)
    std::printf("  %-30s %10llu\n", name.c_str(), (unsigned long long)v);

  return writeObsOutputs(a.traceOut, a.statsOut, a.quiet);
}

std::optional<CliArgs> parseArgs(int argc, char** argv) {
  CliArgs a;
  a.opts.resources = ResourceLimits::universalSet(2);
  int fus = 2;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--top") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.top = v;
    } else if (arg == "--scheduler") {
      const char* v = next();
      if (!v) return std::nullopt;
      std::string s = v;
      if (s == "serial") a.opts.scheduler = SchedulerKind::Serial;
      else if (s == "asap") a.opts.scheduler = SchedulerKind::Asap;
      else if (s == "list") a.opts.scheduler = SchedulerKind::List;
      else if (s == "force") a.opts.scheduler = SchedulerKind::ForceDirected;
      else if (s == "freedom") a.opts.scheduler = SchedulerKind::Freedom;
      else if (s == "bnb") a.opts.scheduler = SchedulerKind::BranchBound;
      else if (s == "transform") a.opts.scheduler = SchedulerKind::Transform;
      else return std::nullopt;
    } else if (arg == "--fus") {
      const char* v = next();
      if (!v) return std::nullopt;
      fus = std::atoi(v);
      if (fus < 1) return std::nullopt;
    } else if (arg == "--priority") {
      const char* v = next();
      if (!v) return std::nullopt;
      std::string s = v;
      if (s == "path") a.opts.listPriority = ListPriority::PathLength;
      else if (s == "mobility") a.opts.listPriority = ListPriority::Mobility;
      else if (s == "urgency") a.opts.listPriority = ListPriority::Urgency;
      else if (s == "program") a.opts.listPriority = ListPriority::ProgramOrder;
      else return std::nullopt;
    } else if (arg == "--opt") {
      const char* v = next();
      if (!v) return std::nullopt;
      std::string s = v;
      if (s == "none") a.opts.opt = OptLevel::None;
      else if (s == "standard") a.opts.opt = OptLevel::Standard;
      else if (s == "aggressive") a.opts.opt = OptLevel::Aggressive;
      else return std::nullopt;
      a.optExplicit = true;
    } else if (arg == "--fu-alloc") {
      const char* v = next();
      if (!v) return std::nullopt;
      std::string s = v;
      if (s == "greedy") a.opts.fuMethod = FuAllocMethod::GreedyLocal;
      else if (s == "global") a.opts.fuMethod = FuAllocMethod::GreedyGlobal;
      else if (s == "blind") a.opts.fuMethod = FuAllocMethod::InterconnectBlind;
      else if (s == "clique") a.opts.fuMethod = FuAllocMethod::Clique;
      else return std::nullopt;
    } else if (arg == "--reg-alloc") {
      const char* v = next();
      if (!v) return std::nullopt;
      std::string s = v;
      if (s == "leftedge") a.opts.regMethod = RegAllocMethod::LeftEdge;
      else if (s == "clique") a.opts.regMethod = RegAllocMethod::Clique;
      else if (s == "naive") a.opts.regMethod = RegAllocMethod::Naive;
      else return std::nullopt;
    } else if (arg == "--encoding") {
      const char* v = next();
      if (!v) return std::nullopt;
      std::string s = v;
      if (s == "binary") a.opts.encoding = StateEncoding::Binary;
      else if (s == "gray") a.opts.encoding = StateEncoding::Gray;
      else if (s == "onehot") a.opts.encoding = StateEncoding::OneHot;
      else return std::nullopt;
    } else if (arg == "--time-constraint") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.opts.timeConstraint = std::atoi(v);
    } else if (arg == "--verilog") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.verilogOut = v;
    } else if (arg == "--dot") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.dotOut = v;
    } else if (arg == "--verify") {
      const char* v = next();
      if (!v) return std::nullopt;
      std::map<std::string, std::uint64_t> in;
      if (!parseInputs(v, in)) return std::nullopt;
      a.verifyRuns.push_back(std::move(in));
    } else if (arg == "--sweep") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.sweep = std::atoi(v);
    } else if (arg == "--jobs") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.opts.jobs = std::atoi(v);
      if (a.opts.jobs < 1) return std::nullopt;
    } else if (arg == "--multicycle") {
      a.opts.latencies = OpLatencyModel::multiCycle();
    } else if (arg == "--narrow") {
      a.opts.narrow = true;
    } else if (arg == "--dot-facts") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.dotFactsOut = v;
    } else if (arg == "--trace") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.traceOut = v;
    } else if (arg == "--vcd") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.vcdOut = v;
    } else if (arg == "--stats") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.statsOut = v;
    } else if (arg == "--log-file") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.logFile = v;
    } else if (arg == "--log-level") {
      const char* v = next();
      if (!v || obs::parseLogLevel(v) == obs::LogLevel::Off)
        return std::nullopt;
      a.logLevel = v;
    } else if (arg == "--flight") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.flightIn = v;
    } else if (arg == "--clock") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.staClock = std::atof(v);
      if (a.staClock <= 0) return std::nullopt;
    } else if (arg == "--paths") {
      const char* v = next();
      if (!v) return std::nullopt;
      a.staPaths = std::atoi(v);
      if (a.staPaths < 0) return std::nullopt;
    } else if (arg == "--builtins") {
      a.builtins = true;
    } else if (arg == "--check") {
      a.opts.check = true;
    } else if (arg == "--no-check") {
      a.opts.check = false;
    } else if (arg == "--prove") {
      a.opts.prove = true;
    } else if (arg == "--prove-passes") {
      a.provePasses = true;
    } else if (arg == "--format") {
      const char* v = next();
      if (!v) return std::nullopt;
      std::string s = v;
      if (s == "json") a.jsonFormat = true;
      else if (s != "text") return std::nullopt;
    } else if (arg == "--inject") {
      const char* v = next();
      if (!v || !fuzz::parseInjectedBug(v, a.inject)) return std::nullopt;
    } else if (arg == "--quiet") {
      a.quiet = true;
    } else if (arg == "synth" && a.file.empty() && !a.synthCmd) {
      a.synthCmd = true;
    } else if (arg == "lint" && a.file.empty() && !a.lint) {
      a.lint = true;
    } else if (arg == "analyze" && a.file.empty() && !a.analyze) {
      a.analyze = true;
    } else if (arg == "prove" && a.file.empty() && !a.prove) {
      a.prove = true;
    } else if (arg == "sta" && a.file.empty() && !a.sta) {
      a.sta = true;
    } else if (arg == "profile" && a.file.empty() && !a.profile) {
      a.profile = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return std::nullopt;
    } else {
      a.file = arg;
    }
  }
  a.opts.resources = ResourceLimits::universalSet(fus);
  if (a.builtins && !a.analyze && !a.prove && !a.sta) return std::nullopt;
  if (!a.flightIn.empty() && !a.profile) return std::nullopt;
  // `profile --flight DUMP` decodes a recorder file; no design needed.
  const bool flightDecode = a.profile && !a.flightIn.empty();
  if (a.file.empty() && !a.builtins && !flightDecode) return std::nullopt;
  if (a.inject != fuzz::InjectedBug::None && !a.prove) return std::nullopt;
  return a;
}

/// `mphls analyze design.bdl`: facts listing + semantic lint report.
int runAnalyze(const Function& fn, const std::string& label,
               const std::string& dotFactsOut, bool quiet) {
  const AnalysisResult res = analyzeFunction(fn);
  if (!quiet) {
    std::cout << "analysis of '" << fn.name() << "' (" << res.iterations
              << " block visits):\n";
    for (const Block& blk : fn.blocks()) {
      std::cout << "  block " << blk.name;
      if (!res.blockReachable[blk.id.index()]) std::cout << " (unreachable)";
      std::cout << ":\n";
      for (OpId oid : blk.ops) {
        const Op& o = fn.op(oid);
        if (!o.result.valid()) continue;
        std::cout << "    v" << o.result.get() << " = " << opName(o.kind)
                  << " [w" << fn.value(o.result).width
                  << "]: " << res.fact(o.result).str() << "\n";
      }
    }
    for (const Variable& vr : fn.vars())
      std::cout << "  var " << vr.name << " [w" << vr.width
                << "]: " << res.varFacts[vr.id.index()].str() << "\n";
  }

  CheckReport report;
  checkSemantics(fn, report);
  if (report.empty()) {
    std::cout << label << ": clean (0 findings)\n";
  } else {
    std::cout << report.render();
  }

  if (!dotFactsOut.empty()) {
    std::ofstream out(dotFactsOut);
    if (!out) return fail("cannot write " + dotFactsOut);
    const auto notes = factAnnotations(fn, res);
    out << controlFlowDot(fn);
    for (const Block& blk : fn.blocks())
      if (!blk.ops.empty()) out << dataFlowDot(fn, blk.id, notes);
    if (!quiet) std::cout << "wrote DOT to " << dotFactsOut << "\n";
  }
  return report.clean() ? 0 : 1;
}

/// `mphls analyze --builtins`: the CI gate — semantic lints over every
/// built-in design, failing on any error-severity finding.
int runAnalyzeBuiltins(bool quiet) {
  int failures = 0;
  for (const auto& d : designs::all()) {
    DiagEngine diags;
    auto fn = compileBdl(d.source, diags);
    if (!fn) return fail(std::string("builtin '") + d.name +
                         "' failed to compile");
    CheckReport report;
    checkSemantics(*fn, report);
    std::cout << d.name << ": " << report.errorCount() << " error(s), "
              << report.warningCount() << " warning(s)\n";
    if (!quiet)
      for (const auto& diag : report.all())
        std::cout << "  " << diag.str() << "\n";
    if (!report.clean()) ++failures;
  }
  return failures == 0 ? 0 : 1;
}

/// Prove one already-compiled function: run the (optionally validated)
/// optimization pipeline, synthesize, apply the requested injection, and
/// prove behavioral/RTL equivalence. `applicable` comes back false when an
/// injection found no site in this design.
CheckReport proveOne(const CliArgs& a, Function& fn, bool& applicable) {
  CheckReport rep;
  applicable = true;

  auto runPipe = [&](PassManager& pm) {
    if (a.provePasses)
      sec::runPipelineValidated(pm, fn, rep);
    else
      pm.run(fn);
  };
  switch (a.opts.opt) {
    case OptLevel::None:
      break;
    case OptLevel::Standard: {
      auto pm = PassManager::standardPipeline();
      runPipe(pm);
      break;
    }
    case OptLevel::Aggressive: {
      auto pm = PassManager::aggressivePipeline();
      runPipe(pm);
      break;
    }
  }
  if (a.opts.narrow) {
    PassManager pm;
    pm.add(createNarrowWidthsPass());
    runPipe(pm);
  }

  if (a.inject == fuzz::InjectedBug::MulToAdd) {
    // MulToAdd corrupts the IR before the backend, so the whole design —
    // controller included — is consistently wrong; it can only be caught
    // by proving the mutated function against the trusted one.
    Function mutated = fn.clone();
    if (fuzz::injectMulToAdd(mutated) == 0) {
      applicable = false;
      rep.note("sec.inject.inapplicable", fn.name(),
               "design has no multiply to inject into");
      return rep;
    }
    sec::proveFunctionEquivalence(fn, mutated, "inject:mul-to-add", rep);
    return rep;
  }

  SynthesisOptions so = a.opts;
  so.prove = false;  // the proof runs below, reporting instead of throwing
  so.narrow = false;
  so.opt = OptLevel::None;  // pipeline already applied above
  Synthesizer synth(so);
  SynthesisResult r = synth.synthesizeOptimized(fn);
  if (a.inject == fuzz::InjectedBug::ScheduleShift &&
      fuzz::injectScheduleShift(r.design, a.opts.latencies) == 0)
    applicable = false;
  if (a.inject == fuzz::InjectedBug::SwappedBinding &&
      fuzz::injectSwappedBinding(r.design, a.opts.latencies) == 0)
    applicable = false;
  if (!applicable) {
    rep.note("sec.inject.inapplicable", fn.name(),
             "no eligible mutation site in this design");
    return rep;
  }
  rep.merge(sec::proveEquivalence(r.design));
  return rep;
}

/// `mphls prove`: the formal equivalence gate over one file or every
/// built-in design. Without --inject, exits 0 iff every proof is clean;
/// with --inject, exits 0 iff the injected bug was caught (proof NOT
/// clean) on every design it applies to — the gate's self-test.
int runProve(const CliArgs& a, std::optional<Function> fileFn) {
  struct Target {
    std::string name;
    std::string source;
  };
  std::vector<Target> targets;
  if (a.builtins) {
    for (const auto& d : designs::all()) targets.push_back({d.name, d.source});
  } else {
    targets.push_back({a.file, ""});
  }

  const bool injecting = a.inject != fuzz::InjectedBug::None;
  int applicableCount = 0, cleanCount = 0, caughtCount = 0;
  std::string json = "[";
  bool ok = true;
  for (std::size_t t = 0; t < targets.size(); ++t) {
    std::optional<Function> compiled;
    if (!a.builtins) {
      compiled = std::move(fileFn);
    } else {
      DiagEngine diags;
      auto fn = compileBdl(targets[t].source, diags);
      if (!fn)
        return fail("builtin '" + targets[t].name + "' failed to compile");
      compiled = std::move(*fn);
    }
    bool applicable = true;
    CheckReport rep = proveOne(a, *compiled, applicable);
    if (applicable) {
      ++applicableCount;
      if (rep.clean()) ++cleanCount;
      else ++caughtCount;
    }

    if (a.jsonFormat) {
      if (t > 0) json += ",";
      json += cmd::reportJson(a.builtins ? "design" : "file", targets[t].name,
                              rep);
      continue;
    }
    std::string verdict;
    if (!applicable)
      verdict = "injection not applicable (skipped)";
    else if (injecting)
      verdict = rep.clean() ? "injected bug NOT caught"
                            : "injected bug caught (proof failed as it"
                              " should)";
    else
      verdict = rep.clean() ? "proved equivalent" : "NOT proved";
    std::cout << targets[t].name << ": " << verdict << "\n";
    const bool bad = injecting ? (applicable && rep.clean()) : !rep.clean();
    if (!a.quiet || bad)
      if (!rep.empty()) std::cout << rep.render();
  }

  if (injecting)
    ok = applicableCount > 0 && cleanCount == 0;
  else
    ok = cleanCount == applicableCount;
  if (a.jsonFormat) {
    json += "]";
    std::cout << json << "\n";
  } else if (injecting) {
    std::cout << "prove --inject: " << caughtCount << "/" << applicableCount
              << " applicable design(s) caught\n";
  }
  int rc = writeObsOutputs(a.traceOut, a.statsOut, a.quiet);
  return ok ? rc : 1;
}

/// `mphls sta`: path-level static timing analysis over one file or every
/// built-in design. Prints the summary, the K worst named paths and the
/// timing lint's findings; exits 1 on any error-severity finding.
int runStaCmd(const CliArgs& a, std::optional<Function> fileFn) {
  struct Target {
    std::string name;
    std::string source;
  };
  std::vector<Target> targets;
  if (a.builtins) {
    for (const auto& d : designs::all()) targets.push_back({d.name, d.source});
  } else {
    targets.push_back({a.file, ""});
  }

  // Like lint: the stage-exit throwing checks are disabled so the timing
  // report below collects every finding instead of dying mid-pipeline.
  SynthesisOptions so = a.opts;
  so.check = false;
  bool ok = true;
  std::vector<JsonValue> reports;
  for (std::size_t t = 0; t < targets.size(); ++t) {
    std::optional<Function> compiled;
    if (!a.builtins) {
      compiled = std::move(fileFn);
    } else {
      DiagEngine diags;
      auto fn = compileBdl(targets[t].source, diags);
      if (!fn)
        return fail("builtin '" + targets[t].name + "' failed to compile");
      compiled = std::move(*fn);
    }
    Synthesizer synth(so);
    std::optional<SynthesisResult> result;
    try {
      result = synth.synthesize(std::move(*compiled));
    } catch (const InternalError& e) {
      return fail("synthesis of '" + targets[t].name +
                  "' failed before timing analysis: " + e.what());
    }

    sta::StaOptions sopt;
    sopt.clockNs = a.staClock;
    sopt.maxPaths = a.staPaths;
    const sta::StaResult r = sta::runSta(result->design, sopt);
    CheckReport rep;
    TimingLintOptions topt;
    topt.clockNs = a.staClock;
    topt.maxReported = std::max(a.staPaths, 1);
    checkTiming(result->design, topt, rep);
    ok = ok && rep.clean();

    if (a.jsonFormat) {
      reports.push_back(cmd::staJsonValue(a.builtins ? "design" : "file",
                                          targets[t].name, r, rep));
      continue;
    }
    std::printf("%s: clock %.3f%s, cycle time %.3f, worst slack %+.3f,"
                " critical state %d\n",
                targets[t].name.c_str(), r.clockNs,
                r.clockWasEstimated ? " (estimated)" : "", r.cycleTime,
                r.worstSlack, r.criticalState);
    std::printf("  %zu/%zu state(s) reachable, %zu endpoint(s); structural"
                " cycle time %.3f, %zu false-path endpoint(s) pruned\n",
                r.reachableStates, r.totalStates, r.endpointCount,
                r.structuralCycleTime, r.falsePathEndpoints);
    if (!a.quiet)
      for (const sta::TimingPath& p : r.paths)
        std::cout << "  " << p.describe() << "\n";
    if (!rep.empty() && (!a.quiet || !rep.clean())) std::cout << rep.render();
  }

  if (a.jsonFormat) {
    // One object for a file, an array for --builtins (prove convention).
    if (a.builtins) {
      JsonValue arr = JsonValue::array();
      for (JsonValue& j : reports) arr.push(std::move(j));
      std::cout << arr.dump();
    } else {
      std::cout << reports.front().dump();
    }
  }
  const int rc = writeObsOutputs(a.traceOut, a.statsOut, a.quiet);
  return ok ? rc : 1;
}

int runBench(int argc, char** argv) {
  BenchOptions b;
  b.jobs = 0;  // hardware concurrency unless --jobs given
  std::string traceOut, statsOut, logFile, logLevel;
  bool simSuite = false;
  bool staSuite = false;
  bool repeatsGiven = false;
  bool check = false;
  BenchCheckOptions cc;
  cc.inDirs.clear();
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--sim") {
      simSuite = true;
    } else if (arg == "--sta") {
      staSuite = true;
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--baseline-dir") {
      const char* v = next();
      if (!v) return (usage(), 2);
      cc.baselineDir = v;
    } else if (arg == "--in") {
      const char* v = next();
      if (!v) return (usage(), 2);
      cc.inDirs.push_back(v);
    } else if (arg == "--log-file") {
      const char* v = next();
      if (!v) return (usage(), 2);
      logFile = v;
    } else if (arg == "--log-level") {
      const char* v = next();
      if (!v) return (usage(), 2);
      logLevel = v;
    } else if (arg == "--jobs") {
      const char* v = next();
      if (!v || std::atoi(v) < 1) return (usage(), 2);
      b.jobs = std::atoi(v);
    } else if (arg == "--points") {
      const char* v = next();
      if (!v || std::atoi(v) < 1) return (usage(), 2);
      b.points = std::atoi(v);
    } else if (arg == "--repeats") {
      const char* v = next();
      if (!v || std::atoi(v) < 1) return (usage(), 2);
      b.repeats = std::atoi(v);
      repeatsGiven = true;
    } else if (arg == "--sched-ops") {
      const char* v = next();
      if (!v || std::atoi(v) < 4) return (usage(), 2);
      b.schedOps = std::atoi(v);
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return (usage(), 2);
      b.outDir = v;
    } else if (arg == "--trace") {
      const char* v = next();
      if (!v) return (usage(), 2);
      traceOut = v;
    } else if (arg == "--stats") {
      const char* v = next();
      if (!v) return (usage(), 2);
      statsOut = v;
    } else if (arg == "--quiet") {
      b.quiet = true;
    } else {
      usage();
      return 2;
    }
  }
  if (!applyLogging(logFile, logLevel)) return 1;
  if (check) {
    if (cc.inDirs.empty()) cc.inDirs.push_back(".");
    if (b.outDir != "." && !b.outDir.empty()) cc.outFile = b.outDir;
    cc.quiet = b.quiet;
    return runBenchCheck(cc);
  }
  enableTracing(traceOut);
  int rc;
  if (simSuite) {
    fuzz::SimBenchOptions sb;
    sb.repeats = repeatsGiven ? b.repeats : 5;  // sim suite: best-of-5
    sb.outDir = b.outDir;
    sb.quiet = b.quiet;
    rc = fuzz::runSimBenchSuite(sb);
  } else if (staSuite) {
    if (!repeatsGiven) b.repeats = 5;  // analysis is fast: best-of-5
    rc = runStaBenchSuite(b);
  } else {
    rc = runBenchSuite(b);
  }
  if (writeObsOutputs(traceOut, statsOut, b.quiet) != 0 && rc == 0) rc = 1;
  return rc;
}

/// `mphls fuzz`: differential co-simulation campaigns and corpus replay.
int runFuzz(int argc, char** argv) {
  fuzz::CampaignOptions c;
  c.jobs = 0;  // hardware concurrency unless --jobs given
  std::string matrixName = "standard";
  std::string replayDir;
  std::string outFile;
  std::string traceOut, statsOut, logFile, logLevel;
  bool save = true;
  bool quiet = false;
  c.corpusDir = "fuzz-corpus";
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--seeds") {
      const char* v = next();
      if (!v || std::atoi(v) < 1) return (usage(), 2);
      c.seeds = std::atoi(v);
    } else if (arg == "--seed-base") {
      const char* v = next();
      if (!v) return (usage(), 2);
      c.seedBase = std::strtoull(v, nullptr, 0);
    } else if (arg == "--jobs") {
      const char* v = next();
      if (!v || std::atoi(v) < 1) return (usage(), 2);
      c.jobs = std::atoi(v);
    } else if (arg == "--matrix") {
      const char* v = next();
      if (!v) return (usage(), 2);
      matrixName = v;
    } else if (arg == "--trials") {
      const char* v = next();
      if (!v || std::atoi(v) < 1) return (usage(), 2);
      c.diff.trials = std::atoi(v);
    } else if (arg == "--engine") {
      const char* v = next();
      if (!v || !vm::parseEngineKind(v, c.diff.engine.kind))
        return (usage(), 2);
    } else if (arg == "--cross-check") {
      const char* v = next();
      if (!v) return (usage(), 2);
      const double rate = std::atof(v);
      if (rate < 0.0 || rate > 1.0) return (usage(), 2);
      c.diff.engine.crossCheck = rate;
    } else if (arg == "--reduce") {
      c.reduce = true;
    } else if (arg == "--corpus") {
      const char* v = next();
      if (!v) return (usage(), 2);
      c.corpusDir = v;
    } else if (arg == "--no-save") {
      save = false;
    } else if (arg == "--replay") {
      const char* v = next();
      if (!v) return (usage(), 2);
      replayDir = v;
    } else if (arg == "--inject") {
      const char* v = next();
      if (!v || !fuzz::parseInjectedBug(v, c.diff.inject))
        return (usage(), 2);
    } else if (arg == "--no-check") {
      c.diff.check = false;
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return (usage(), 2);
      outFile = v;
    } else if (arg == "--trace") {
      const char* v = next();
      if (!v) return (usage(), 2);
      traceOut = v;
    } else if (arg == "--stats") {
      const char* v = next();
      if (!v) return (usage(), 2);
      statsOut = v;
    } else if (arg == "--log-file") {
      const char* v = next();
      if (!v) return (usage(), 2);
      logFile = v;
    } else if (arg == "--log-level") {
      const char* v = next();
      if (!v) return (usage(), 2);
      logLevel = v;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      usage();
      return 2;
    }
  }
  if (!applyLogging(logFile, logLevel)) return 1;
  fuzz::FuzzMatrix matrix;
  if (!fuzz::FuzzMatrix::parse(matrixName, matrix)) return (usage(), 2);
  c.diff.points = matrix.points();
  if (!save) c.corpusDir.clear();
  enableTracing(traceOut);
  // The live progress line is cosmetic, so it only runs when a human is
  // plausibly watching: stderr is a terminal and --quiet was not given.
  c.heartbeat = !quiet && isatty(2) != 0;

  if (!replayDir.empty()) {
    auto r = fuzz::replayCorpus(replayDir, c.diff, c.jobs);
    if (r.entries == 0) return fail("no corpus entries under " + replayDir);
    for (const auto& o : r.outcomes) {
      if (o.verdict.ok()) {
        if (!quiet)
          std::cout << "replay " << o.name << ": ok (" << o.verdict.pointsRun
                    << " points)\n";
        continue;
      }
      std::cout << "replay " << o.name << ": FAIL\n";
      for (const auto& f : o.verdict.failures) {
        const std::string pl = f.pointLabel();
        std::cout << "  [" << f.kind << "]"
                  << (pl.empty() ? "" : " " + pl) << ": " << f.detail << "\n";
      }
    }
    std::cout << "fuzz replay: " << r.entries << " entries, " << r.failed
              << " failing (" << matrixName << " matrix)\n";
    if (writeObsOutputs(traceOut, statsOut, quiet) != 0) return 1;
    return r.clean() ? 0 : 1;
  }

  fuzz::CampaignResult r = fuzz::runCampaign(c);
  if (!quiet || !r.clean()) {
    std::cout << "fuzz: " << r.seeds << " seeds x " << r.pointsPerProgram
              << " matrix points (" << matrixName << ", engine="
              << vm::engineKindName(c.diff.engine.kind) << "), "
              << r.pointsRun << " designs synthesized, " << r.simulations
              << " co-simulations in " << r.wallSeconds << "s ("
              << (r.wallSeconds > 0
                      ? (double)r.simulations / r.wallSeconds
                      : 0.0)
              << " cosims/s)\n";
    for (const auto& fc : r.failures) {
      const auto& first = fc.verdict.failures.front();
      const std::string pl = first.pointLabel();
      std::cout << "  seed " << fc.verdict.seed << ": [" << first.kind
                << "]" << (pl.empty() ? "" : " " + pl) << ": " << first.detail
                << "\n";
      if (!fc.corpusPath.empty())
        std::cout << "    saved " << fc.corpusPath << "\n";
      if (!fc.reducedPath.empty())
        std::cout << "    minimized (" << fc.reduceStats.finalStmts
                  << " stmts, " << fc.reduceStats.attempts
                  << " attempts) " << fc.reducedPath << "\n";
    }
    std::cout << "fuzz: " << r.failedPrograms << " failing programs ("
              << r.mismatches << " mismatches, " << r.checkFailures
              << " check findings, " << r.errors << " errors, "
              << r.divergences << " vm divergences, " << r.staFailures
              << " sta failures)\n";
  }

  if (outFile.empty() && !r.clean() && !c.corpusDir.empty())
    outFile = c.corpusDir + "/FUZZ_report.json";
  if (!outFile.empty()) {
    std::ofstream out(outFile);
    if (!out) return fail("cannot write " + outFile);
    out << fuzz::campaignReport(c, r, matrixName).dump();
    if (!quiet) std::cout << "wrote " << outFile << "\n";
  }
  if (writeObsOutputs(traceOut, statsOut, quiet) != 0) return 1;
  return r.clean() ? 0 : 1;
}

/// The running daemon, for the signal handlers. requestStop() is
/// async-signal-safe (one write(2) down the self-pipe).
std::atomic<serve::Server*> g_serveServer{nullptr};

void serveSignalHandler(int) {
  if (serve::Server* s = g_serveServer.load()) s->requestStop();
}

/// `mphls serve`: run the synthesis daemon until SIGTERM/SIGINT.
int runServe(int argc, char** argv) {
  serve::ServerOptions so;
  so.port = 8080;
  // Same baseline option vector as the offline CLI (universalSet(2) FUs):
  // a daemon request with no "options" must produce the CLI's exact bytes.
  so.service.defaults.resources = ResourceLimits::universalSet(2);
  bool quiet = false;
  std::string logFile, logLevel;
  std::string flightDump = "mphls-flight.dump";
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--port") {
      const char* v = next();
      if (!v || std::atoi(v) < 0 || std::atoi(v) > 65535) return (usage(), 2);
      so.port = std::atoi(v);
    } else if (arg == "--jobs") {
      const char* v = next();
      if (!v || std::atoi(v) < 1) return (usage(), 2);
      so.jobs = std::atoi(v);
    } else if (arg == "--max-connections") {
      const char* v = next();
      if (!v || std::atoi(v) < 1) return (usage(), 2);
      so.maxConnections = std::atoi(v);
    } else if (arg == "--log-file") {
      const char* v = next();
      if (!v) return (usage(), 2);
      logFile = v;
    } else if (arg == "--log-level") {
      const char* v = next();
      if (!v) return (usage(), 2);
      logLevel = v;
    } else if (arg == "--flight-dump") {
      const char* v = next();
      if (!v) return (usage(), 2);
      flightDump = v;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      usage();
      return 2;
    }
  }
  // The daemon always records: the flight ring is cheap (a few MB, no
  // locks), and the whole point is having history when a crash arrives
  // unannounced. SIGQUIT dumps and keeps running; fatal signals dump and
  // re-raise.
  obs::FlightRecorder::installCrashHandlers(flightDump.c_str());
  if (!applyLogging(logFile, logLevel)) return 1;
  serve::Server server(so);
  std::string err;
  if (!server.start(err)) return fail("serve: " + err);
  g_serveServer.store(&server);
  std::signal(SIGTERM, serveSignalHandler);
  std::signal(SIGINT, serveSignalHandler);
  std::signal(SIGPIPE, SIG_IGN);
  // One flushed line with the resolved port: scripts bind port 0 and read
  // the real one from here.
  std::cout << "mphls serve: listening on 127.0.0.1:" << server.port()
            << " (jobs=" << resolveJobs(so.jobs) << ")" << std::endl;
  server.run();
  g_serveServer.store(nullptr);
  if (!quiet)
    std::cout << "mphls serve: drained " << server.sessionsOpened()
              << " session(s), exiting\n";
  return 0;
}

/// `mphls loadgen`: replay a deterministic request mix against a daemon.
int runLoadgenCmd(int argc, char** argv) {
  serve::LoadgenOptions lo;
  bool quiet = false;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--url") {
      const char* v = next();
      if (!v) return (usage(), 2);
      lo.url = v;
    } else if (arg == "--clients") {
      const char* v = next();
      if (!v || std::atoi(v) < 1) return (usage(), 2);
      lo.clients = std::atoi(v);
    } else if (arg == "--requests") {
      const char* v = next();
      if (!v || std::atoi(v) < 1) return (usage(), 2);
      lo.requests = std::atoi(v);
    } else if (arg == "--mix") {
      const char* v = next();
      if (!v) return (usage(), 2);
      lo.mix = v;
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return (usage(), 2);
      lo.seed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return (usage(), 2);
      lo.reportPath = v;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      usage();
      return 2;
    }
  }
  std::signal(SIGPIPE, SIG_IGN);
  const serve::LoadgenReport rep = serve::runLoadgen(lo);
  if (!rep.error.empty()) return fail("loadgen: " + rep.error);
  if (!quiet) {
    std::printf("loadgen: %d requests from %d client(s) in %.3fs"
                " (%.1f req/s)\n",
                rep.requestsSent, lo.clients, rep.wallSeconds,
                rep.requestsPerSecond);
    std::printf("  latency p50 %.2fms, p99 %.2fms; errors: %d transport,"
                " %d http, %d invalid-json\n",
                rep.p50Ms, rep.p99Ms, rep.transportErrors, rep.httpErrors,
                rep.invalidJson);
    std::printf("  frontend cache hit rate %.1f%%\n",
                100.0 * rep.cacheHitRate);
    if (!lo.reportPath.empty())
      std::printf("  wrote %s\n", lo.reportPath.c_str());
  }
  return rep.clean() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "bench") return runBench(argc, argv);
  if (argc > 1 && std::string(argv[1]) == "fuzz") return runFuzz(argc, argv);
  if (argc > 1 && std::string(argv[1]) == "serve") return runServe(argc, argv);
  if (argc > 1 && std::string(argv[1]) == "loadgen")
    return runLoadgenCmd(argc, argv);
  auto parsed = parseArgs(argc, argv);
  if (!parsed) {
    usage();
    return 2;
  }
  CliArgs& a = *parsed;
  enableTracing(a.traceOut);
  if (!applyLogging(a.logFile, a.logLevel)) return 1;

  if (a.profile && !a.flightIn.empty()) return runProfileFlight(a.flightIn);
  if (a.analyze && a.builtins) return runAnalyzeBuiltins(a.quiet);
  if (a.prove && a.builtins) return runProve(a, std::nullopt);
  if (a.sta && a.builtins) return runStaCmd(a, std::nullopt);

  std::ifstream in(a.file);
  if (!in) return fail("cannot open " + a.file);
  std::stringstream buf;
  buf << in.rdbuf();

  // Single-file --format json goes through the shared command layer
  // (core/commands.h) — the exact functions behind the daemon's endpoints,
  // so the offline reports and the served ones can never drift.
  if (a.jsonFormat && a.inject == fuzz::InjectedBug::None &&
      (a.synthCmd || a.lint || a.analyze || a.prove || a.sta)) {
    cmd::Request req{a.file, buf.str(), a.top, a.opts};
    cmd::Result r;
    if (a.lint)
      r = cmd::lintJson(req);
    else if (a.analyze)
      r = cmd::analyzeJson(req,
                           a.optExplicit && a.opts.opt != OptLevel::None);
    else if (a.prove)
      r = cmd::proveJson(req, a.provePasses);
    else if (a.sta)
      r = cmd::staJson(req, a.staClock, a.staPaths);
    else
      r = cmd::synthJson(req);
    std::cout << r.body;
    const int rc = writeObsOutputs(a.traceOut, a.statsOut, a.quiet);
    return r.ok ? rc : 1;
  }

  DiagEngine diags;
  auto fn = compileBdl(buf.str(), diags, a.top);
  for (const auto& d : diags.all()) std::cerr << a.file << ":" << d.str() << "\n";
  if (!fn) return 1;

  if (a.analyze) {
    // With an explicit --opt, analyze the post-pipeline IR — the facts the
    // narrowing pass actually consumes (and a debugging aid for it). With
    // --narrow as well, apply the narrowing pass too and show the widths
    // and re-derived facts it left behind.
    if (a.optExplicit && a.opts.opt != OptLevel::None) {
      auto pm = a.opts.opt == OptLevel::Aggressive
                    ? PassManager::aggressivePipeline()
                    : PassManager::standardPipeline();
      pm.run(*fn);
    }
    if (a.opts.narrow) {
      PassManager pm;
      pm.add(createNarrowWidthsPass());
      pm.run(*fn);
    }
    return runAnalyze(*fn, a.file, a.dotFactsOut, a.quiet);
  }

  if (a.prove) return runProve(a, std::move(*fn));
  if (a.sta) return runStaCmd(a, std::move(*fn));

  if (a.lint) {
    // Lint collects every finding in one pass, so the stage-exit throwing
    // checks inside the pipeline are disabled and checkDesign runs on the
    // finished design instead.
    SynthesisOptions lintOpts = a.opts;
    lintOpts.check = false;
    Synthesizer synth(lintOpts);
    std::optional<SynthesisResult> result;
    try {
      result = synth.synthesize(std::move(*fn));
    } catch (const InternalError& e) {
      return fail(std::string("synthesis failed before checking: ") +
                  e.what());
    }
    CheckOptions copts;
    const bool limited = a.opts.scheduler != SchedulerKind::ForceDirected &&
                         a.opts.scheduler != SchedulerKind::Serial;
    copts.resources =
        limited ? a.opts.resources : ResourceLimits::unlimited();
    copts.latencies = a.opts.latencies;
    CheckReport report = checkDesign(result->design, copts);
    if (a.jsonFormat) {
      std::cout << cmd::reportJson("file", a.file, report) << "\n";
      return report.clean() ? 0 : 1;
    }
    if (report.empty()) {
      std::cout << a.file << ": clean (0 findings)\n";
      return 0;
    }
    std::cout << report.render();
    return report.clean() ? 0 : 1;
  }

  Synthesizer synth(a.opts);
  SynthesisResult result = synth.synthesize(std::move(*fn));
  const RtlDesign& d = result.design;

  if (a.profile) return runProfile(a, result);

  if (!a.quiet) {
    std::cout << "design '" << d.fn.name() << "': " << d.fn.numLiveOps()
              << " ops in " << d.fn.numBlocks() << " blocks after "
              << "optimization\n";
    std::cout << "scheduler: " << schedulerName(a.opts.scheduler)
              << "; static latency " << result.staticLatency()
              << " control steps\n";
    for (const auto& blk : d.fn.blocks()) {
      if (blk.ops.empty()) continue;
      BlockDeps deps(d.fn, blk);
      std::cout << "  " << blk.name << " (" << d.sched.of(blk.id).numSteps
                << " steps)\n"
                << renderBlockSchedule(deps, d.sched.of(blk.id));
    }
    std::cout << "datapath: " << d.regs.numRegs << " registers, "
              << d.binding.numFus() << " functional units (";
    for (int f = 0; f < d.binding.numFus(); ++f)
      std::cout << (f ? ", " : "")
                << d.lib.component(d.binding.fus[(std::size_t)f].comp).name;
    std::cout << "), " << d.ic.mux2to1Count << " 2:1 muxes\n";
    std::cout << "controller: " << d.ctrl.numStates() << " states ("
              << stateEncodingName(a.opts.encoding) << ", "
              << result.fsm.minimizedLogic.termCount()
              << " PLA terms); microcode "
              << result.microEncoded.wordWidth << "b/word encoded vs "
              << result.microHorizontal.wordWidth << "b horizontal\n";
    std::cout << "estimates: area " << result.area.total() << ", cycle time "
              << result.timing.cycleTime << "\n";
  }

  if (!a.dotOut.empty()) {
    std::ofstream out(a.dotOut);
    if (!out) return fail("cannot write " + a.dotOut);
    out << controlFlowDot(d.fn);
    for (const auto& blk : d.fn.blocks())
      if (!blk.ops.empty()) out << dataFlowDot(d.fn, blk.id);
    if (!a.quiet) std::cout << "wrote DOT to " << a.dotOut << "\n";
  }
  if (!a.verilogOut.empty()) {
    std::ofstream out(a.verilogOut);
    if (!out) return fail("cannot write " + a.verilogOut);
    out << emitVerilog(d);
    if (!a.quiet) std::cout << "wrote Verilog to " << a.verilogOut << "\n";
  }

  int failures = 0;
  if (!a.verifyRuns.empty()) {
    vm::RtlSim verifySim(d);  // compiled once, reused across --verify runs
    for (const auto& inputs : a.verifyRuns) {
      std::string msg = verifyAgainstBehavior(result, inputs);
      auto res = verifySim.run(inputs);
      std::cout << "verify";
      for (const auto& [k, v] : inputs) std::cout << " " << k << "=" << v;
      if (msg.empty()) {
        std::cout << " -> OK (" << res.cycles << " cycles;";
        for (const auto& [k, v] : res.outputs)
          std::cout << " " << k << "=" << v;
        std::cout << ")\n";
      } else {
        std::cout << " -> " << msg << "\n";
        ++failures;
      }
    }
  }

  if (a.sweep > 0) {
    auto points = exploreResourceSweep(buf.str(), a.sweep, a.opts);
    std::cout << "sweep (list scheduling, 1.." << a.sweep << " FUs):\n";
    std::printf("  %-8s %8s %12s %12s %8s\n", "FUs", "latency", "cycle",
                "area", "pareto");
    for (const auto& p : points)
      std::printf("  %-8d %8d %12.2f %12.1f %8s\n", p.limit, p.latencySteps,
                  p.cycleTime, p.area, p.pareto ? "*" : "");
  }

  if (!a.vcdOut.empty())
    if (!recordSimulation(d, simInputs(a, d), a.vcdOut, a.quiet)) ++failures;
  if (writeObsOutputs(a.traceOut, a.statsOut, a.quiet) != 0) ++failures;
  return failures == 0 ? 0 : 1;
}
