#include "ir/opcode.h"

#include "common/diag.h"

namespace mphls {

std::string_view opName(OpKind k) {
  switch (k) {
    case OpKind::Const: return "const";
    case OpKind::ReadPort: return "read";
    case OpKind::LoadVar: return "load";
    case OpKind::Not: return "not";
    case OpKind::Neg: return "neg";
    case OpKind::Inc: return "inc";
    case OpKind::Dec: return "dec";
    case OpKind::ShlConst: return "shlc";
    case OpKind::ShrConst: return "shrc";
    case OpKind::SarConst: return "sarc";
    case OpKind::Trunc: return "trunc";
    case OpKind::ZExt: return "zext";
    case OpKind::SExt: return "sext";
    case OpKind::Add: return "add";
    case OpKind::Sub: return "sub";
    case OpKind::Mul: return "mul";
    case OpKind::Div: return "div";
    case OpKind::UDiv: return "udiv";
    case OpKind::Mod: return "mod";
    case OpKind::UMod: return "umod";
    case OpKind::And: return "and";
    case OpKind::Or: return "or";
    case OpKind::Xor: return "xor";
    case OpKind::Shl: return "shl";
    case OpKind::Shr: return "shr";
    case OpKind::Sar: return "sar";
    case OpKind::Eq: return "eq";
    case OpKind::Ne: return "ne";
    case OpKind::Lt: return "lt";
    case OpKind::Le: return "le";
    case OpKind::Gt: return "gt";
    case OpKind::Ge: return "ge";
    case OpKind::ULt: return "ult";
    case OpKind::ULe: return "ule";
    case OpKind::UGt: return "ugt";
    case OpKind::UGe: return "uge";
    case OpKind::Select: return "select";
    case OpKind::StoreVar: return "store";
    case OpKind::WritePort: return "write";
    case OpKind::Nop: return "nop";
  }
  MPHLS_CHECK(false, "unknown OpKind");
  return "?";
}

int opArity(OpKind k) {
  switch (k) {
    case OpKind::Const:
    case OpKind::ReadPort:
    case OpKind::LoadVar:
    case OpKind::Nop:
      return 0;
    case OpKind::Not:
    case OpKind::Neg:
    case OpKind::Inc:
    case OpKind::Dec:
    case OpKind::ShlConst:
    case OpKind::ShrConst:
    case OpKind::SarConst:
    case OpKind::Trunc:
    case OpKind::ZExt:
    case OpKind::SExt:
    case OpKind::StoreVar:
    case OpKind::WritePort:
      return 1;
    case OpKind::Select:
      return 3;
    default:
      return 2;
  }
}

bool opHasResult(OpKind k) {
  switch (k) {
    case OpKind::StoreVar:
    case OpKind::WritePort:
    case OpKind::Nop:
      return false;
    default:
      return true;
  }
}

bool opIsFree(OpKind k) {
  switch (k) {
    case OpKind::Const:
    case OpKind::ShlConst:
    case OpKind::ShrConst:
    case OpKind::SarConst:
    case OpKind::Trunc:
    case OpKind::ZExt:
    case OpKind::SExt:
    case OpKind::Nop:
      return true;
    default:
      return false;
  }
}

bool opIsCommutative(OpKind k) {
  switch (k) {
    case OpKind::Add:
    case OpKind::Mul:
    case OpKind::And:
    case OpKind::Or:
    case OpKind::Xor:
    case OpKind::Eq:
    case OpKind::Ne:
      return true;
    default:
      return false;
  }
}

bool opIsCompare(OpKind k) {
  switch (k) {
    case OpKind::Eq:
    case OpKind::Ne:
    case OpKind::Lt:
    case OpKind::Le:
    case OpKind::Gt:
    case OpKind::Ge:
    case OpKind::ULt:
    case OpKind::ULe:
    case OpKind::UGt:
    case OpKind::UGe:
      return true;
    default:
      return false;
  }
}

bool opIsSink(OpKind k) {
  return k == OpKind::StoreVar || k == OpKind::WritePort;
}

bool opIsPure(OpKind k) {
  switch (k) {
    case OpKind::LoadVar:
    case OpKind::ReadPort:
    case OpKind::StoreVar:
    case OpKind::WritePort:
    case OpKind::Nop:
      return false;
    default:
      return true;
  }
}

}  // namespace mphls
