#include "ir/cdfg.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "common/bitutil.h"

namespace mphls {

PortId Function::addInput(const std::string& name, int width, bool isSigned) {
  PortId id(ports_.size());
  ports_.push_back({id, name, width, /*isInput=*/true, isSigned});
  return id;
}

PortId Function::addOutput(const std::string& name, int width, bool isSigned) {
  PortId id(ports_.size());
  ports_.push_back({id, name, width, /*isInput=*/false, isSigned});
  return id;
}

VarId Function::addVar(const std::string& name, int width, bool isSigned) {
  VarId id(vars_.size());
  vars_.push_back({id, name, width, isSigned});
  return id;
}

BlockId Function::addBlock(const std::string& name) {
  BlockId id(blocks_.size());
  Block b;
  b.id = id;
  b.name = name;
  blocks_.push_back(std::move(b));
  if (!entry_.valid()) entry_ = id;
  return id;
}

ValueId Function::newValue(int width, OpId def, std::string name) {
  MPHLS_CHECK(width >= 1 && width <= kMaxWidth, "bad value width " << width);
  ValueId id(values_.size());
  values_.push_back({id, width, def, std::move(name)});
  return id;
}

OpId Function::makeOp(BlockId block, OpKind kind, std::vector<ValueId> args,
                      int resultWidth, std::int64_t imm, VarId var,
                      PortId port, SourceLoc loc) {
  MPHLS_CHECK(block.valid() && block.index() < blocks_.size(),
              "makeOp on invalid block");
  MPHLS_CHECK(static_cast<int>(args.size()) == opArity(kind),
              "arity mismatch for " << opName(kind) << ": got "
                                    << args.size());
  OpId id(ops_.size());
  Op op;
  op.id = id;
  op.kind = kind;
  op.args = std::move(args);
  op.imm = imm;
  op.var = var;
  op.port = port;
  op.loc = loc;
  if (opHasResult(kind)) {
    MPHLS_CHECK(resultWidth >= 1, "op " << opName(kind) << " needs width");
    op.result = newValue(resultWidth, id);
  }
  ops_.push_back(std::move(op));
  blocks_[block.index()].ops.push_back(id);
  return id;
}

ValueId Function::emitConst(BlockId b, std::int64_t value, int width) {
  OpId id = makeOp(b, OpKind::Const, {}, width, value);
  return op(id).result;
}

ValueId Function::emitRead(BlockId b, PortId p) {
  OpId id = makeOp(b, OpKind::ReadPort, {}, port(p).width, 0,
                   VarId::invalid(), p);
  return op(id).result;
}

ValueId Function::emitLoad(BlockId b, VarId v) {
  OpId id = makeOp(b, OpKind::LoadVar, {}, var(v).width, 0, v);
  return op(id).result;
}

ValueId Function::emitUnary(BlockId b, OpKind k, ValueId a, int width,
                            std::int64_t imm) {
  if (width < 0) width = value(a).width;
  OpId id = makeOp(b, k, {a}, width, imm);
  return op(id).result;
}

ValueId Function::emitBinary(BlockId b, OpKind k, ValueId a, ValueId c,
                             int width) {
  if (width < 0) {
    width = opIsCompare(k) ? 1
                           : std::max(value(a).width, value(c).width);
  }
  OpId id = makeOp(b, k, {a, c}, width);
  return op(id).result;
}

ValueId Function::emitSelect(BlockId b, ValueId cond, ValueId t, ValueId f) {
  int width = std::max(value(t).width, value(f).width);
  OpId id = makeOp(b, OpKind::Select, {cond, t, f}, width);
  return op(id).result;
}

void Function::emitStore(BlockId b, VarId v, ValueId val) {
  makeOp(b, OpKind::StoreVar, {val}, 0, 0, v);
}

void Function::emitWrite(BlockId b, PortId p, ValueId val) {
  MPHLS_CHECK(!port(p).isInput, "write to input port " << port(p).name);
  makeOp(b, OpKind::WritePort, {val}, 0, 0, VarId::invalid(), p);
}

void Function::emitNop(BlockId b) { makeOp(b, OpKind::Nop, {}, 0); }

void Function::setReturn(BlockId b) {
  block(b).term = Terminator{Terminator::Kind::Return, {}, {}, {}};
}

void Function::setJump(BlockId b, BlockId target) {
  block(b).term = Terminator{Terminator::Kind::Jump, target, {}, {}};
}

void Function::setBranch(BlockId b, ValueId cond, BlockId taken,
                         BlockId fallthrough) {
  MPHLS_CHECK(value(cond).width == 1, "branch condition must be 1 bit");
  block(b).term =
      Terminator{Terminator::Kind::Branch, taken, fallthrough, cond};
}

std::size_t Function::numRealOps() const {
  std::size_t n = 0;
  for (const auto& blk : blocks_)
    for (OpId oid : blk.ops) {
      const Op& o = op(oid);
      if (!o.dead && !o.isFree()) ++n;
    }
  return n;
}

std::size_t Function::numLiveOps() const {
  std::size_t n = 0;
  for (const auto& blk : blocks_)
    for (OpId oid : blk.ops)
      if (!op(oid).dead) ++n;
  return n;
}

PortId Function::findPort(const std::string& name) const {
  for (const auto& p : ports_)
    if (p.name == name) return p.id;
  return PortId::invalid();
}

VarId Function::findVar(const std::string& name) const {
  for (const auto& v : vars_)
    if (v.name == name) return v.id;
  return VarId::invalid();
}

BlockId Function::findBlock(const std::string& name) const {
  for (const auto& b : blocks_)
    if (b.name == name) return b.id;
  return BlockId::invalid();
}

void Function::removeOp(OpId id) {
  Op& o = op(id);
  o.dead = true;
  for (auto& blk : blocks_) {
    auto it = std::find(blk.ops.begin(), blk.ops.end(), id);
    if (it != blk.ops.end()) {
      blk.ops.erase(it);
      break;
    }
  }
}

void Function::replaceAllUses(ValueId from, ValueId to) {
  for (auto& o : ops_) {
    if (o.dead) continue;
    for (auto& a : o.args)
      if (a == from) a = to;
  }
  for (auto& blk : blocks_) {
    if (blk.term.kind == Terminator::Kind::Branch && blk.term.cond == from)
      blk.term.cond = to;
  }
}

void Function::compact() {
  // Renumber live ops and the values they define; rewrite all references.
  std::vector<Op> newOps;
  std::vector<Value> newValues;
  std::unordered_map<std::uint32_t, OpId> opMap;
  std::unordered_map<std::uint32_t, ValueId> valMap;

  for (auto& blk : blocks_) {
    for (OpId oid : blk.ops) {
      const Op& o = op(oid);
      MPHLS_CHECK(!o.dead, "dead op still attached to block");
      OpId nid(newOps.size());
      opMap.emplace(oid.get(), nid);
      newOps.push_back(o);
      newOps.back().id = nid;
      if (o.result.valid()) {
        ValueId nv(newValues.size());
        valMap.emplace(o.result.get(), nv);
        Value v = value(o.result);
        v.id = nv;
        v.def = nid;
        newValues.push_back(std::move(v));
        newOps.back().result = nv;
      }
    }
  }
  for (auto& o : newOps)
    for (auto& a : o.args) {
      auto it = valMap.find(a.get());
      MPHLS_CHECK(it != valMap.end(), "use of value defined by dead op");
      a = it->second;
    }
  for (auto& blk : blocks_) {
    for (auto& oid : blk.ops) oid = opMap.at(oid.get());
    if (blk.term.kind == Terminator::Kind::Branch) {
      auto it = valMap.find(blk.term.cond.get());
      MPHLS_CHECK(it != valMap.end(), "branch cond defined by dead op");
      blk.term.cond = it->second;
    }
  }
  ops_ = std::move(newOps);
  values_ = std::move(newValues);
}

std::string Function::dump() const {
  std::ostringstream oss;
  oss << "function " << name_ << "\n";
  for (const auto& p : ports_)
    oss << "  " << (p.isInput ? "in " : "out ") << p.name << " : "
        << (p.isSigned ? "int" : "uint") << "<" << p.width << ">\n";
  for (const auto& v : vars_)
    oss << "  var " << v.name << " : " << (v.isSigned ? "int" : "uint") << "<"
        << v.width << ">\n";
  for (const auto& blk : blocks_) {
    oss << blk.name << ":\n";
    for (OpId oid : blk.ops) {
      const Op& o = op(oid);
      oss << "    ";
      if (o.result.valid()) oss << "v" << o.result.get() << " = ";
      oss << opName(o.kind);
      if (o.kind == OpKind::Const || o.kind == OpKind::ShlConst ||
          o.kind == OpKind::ShrConst || o.kind == OpKind::SarConst)
        oss << " " << o.imm;
      if (o.var.valid()) oss << " " << var(o.var).name;
      if (o.port.valid()) oss << " " << port(o.port).name;
      for (ValueId a : o.args) oss << " v" << a.get();
      if (o.result.valid()) oss << "  ; w" << value(o.result).width;
      oss << "\n";
    }
    switch (blk.term.kind) {
      case Terminator::Kind::Return:
        oss << "    return\n";
        break;
      case Terminator::Kind::Jump:
        oss << "    jump " << block(blk.term.target).name << "\n";
        break;
      case Terminator::Kind::Branch:
        oss << "    branch v" << blk.term.cond.get() << " ? "
            << block(blk.term.target).name << " : "
            << block(blk.term.elseTarget).name << "\n";
        break;
    }
  }
  return oss.str();
}

}  // namespace mphls
