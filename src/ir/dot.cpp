#include "ir/dot.h"

#include <sstream>

#include "ir/deps.h"

namespace mphls {

namespace {

/// Escape a string for use inside a double-quoted DOT label.
std::string dotEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string dataFlowDot(const Function& fn, BlockId block,
                        const std::map<ValueId, std::string>& valueNotes) {
  const Block& blk = fn.block(block);
  BlockDeps deps(fn, blk);
  std::ostringstream oss;
  oss << "digraph dfg_" << blk.name << " {\n";
  oss << "  rankdir=TB;\n  node [shape=circle];\n";
  for (std::size_t i = 0; i < deps.numOps(); ++i) {
    const Op& o = deps.op(i);
    oss << "  n" << i << " [label=\"" << opName(o.kind);
    if (o.kind == OpKind::Const) oss << " " << o.imm;
    if (o.var.valid()) oss << " " << fn.var(o.var).name;
    if (o.port.valid()) oss << " " << fn.port(o.port).name;
    if (o.result.valid()) {
      auto it = valueNotes.find(o.result);
      if (it != valueNotes.end()) oss << "\\n" << dotEscape(it->second);
    }
    oss << "\"";
    if (o.isFree()) oss << " style=dashed";
    if (o.isSink()) oss << " shape=box";
    oss << "];\n";
  }
  for (const DepEdge& e : deps.edges()) {
    oss << "  n" << e.from << " -> n" << e.to;
    if (e.kind != DepKind::Data) oss << " [style=dotted]";
    oss << ";\n";
  }
  oss << "}\n";
  return oss.str();
}

std::string dataFlowDot(const Function& fn, BlockId block) {
  return dataFlowDot(fn, block, {});
}

std::string controlFlowDot(const Function& fn) {
  std::ostringstream oss;
  oss << "digraph cfg_" << fn.name() << " {\n";
  oss << "  node [shape=box];\n";
  for (const auto& blk : fn.blocks()) {
    oss << "  b" << blk.id.get() << " [label=\"" << blk.name << "\\n("
        << blk.ops.size() << " ops)\"];\n";
  }
  for (const auto& blk : fn.blocks()) {
    const Terminator& t = blk.term;
    if (t.kind == Terminator::Kind::Jump) {
      oss << "  b" << blk.id.get() << " -> b" << t.target.get() << ";\n";
    } else if (t.kind == Terminator::Kind::Branch) {
      oss << "  b" << blk.id.get() << " -> b" << t.target.get()
          << " [label=\"T\"];\n";
      oss << "  b" << blk.id.get() << " -> b" << t.elseTarget.get()
          << " [label=\"F\"];\n";
    }
  }
  oss << "}\n";
  return oss.str();
}

}  // namespace mphls
