#include "ir/deps.h"

#include <algorithm>
#include <unordered_map>

namespace mphls {

BlockDeps::BlockDeps(const Function& fn, const Block& block,
                     OpLatencyModel latencies)
    : fn_(&fn), latencies_(std::move(latencies)) {
  opIds_ = block.ops;
  n_ = opIds_.size();
  succs_.resize(n_);
  preds_.resize(n_);

  // Map each value defined in this block to its defining node index.
  std::unordered_map<std::uint32_t, std::size_t> defOf;
  for (std::size_t i = 0; i < n_; ++i) {
    const Op& o = fn.op(opIds_[i]);
    if (o.result.valid()) defOf.emplace(o.result.get(), i);
  }

  // Value (RAW-through-temp) edges.
  for (std::size_t i = 0; i < n_; ++i) {
    const Op& o = fn.op(opIds_[i]);
    for (ValueId a : o.args) {
      auto it = defOf.find(a.get());
      MPHLS_CHECK(it != defOf.end(),
                  "value v" << a.get() << " used but not defined in block "
                            << block.name);
      addEdge(it->second, i, DepKind::Data);
    }
  }

  // Variable ordering edges: walk in program order tracking last store and
  // the loads since that store, per variable.
  struct VarState {
    std::size_t lastStore = SIZE_MAX;
    std::vector<std::size_t> loadsSinceStore;
  };
  std::unordered_map<std::uint32_t, VarState> vs;
  for (std::size_t i = 0; i < n_; ++i) {
    const Op& o = fn.op(opIds_[i]);
    if (o.kind == OpKind::LoadVar) {
      auto& st = vs[o.var.get()];
      if (st.lastStore != SIZE_MAX) addEdge(st.lastStore, i, DepKind::VarRaw);
      st.loadsSinceStore.push_back(i);
    } else if (o.kind == OpKind::StoreVar) {
      auto& st = vs[o.var.get()];
      for (std::size_t ld : st.loadsSinceStore)
        addEdge(ld, i, DepKind::VarWar);
      if (st.lastStore != SIZE_MAX) addEdge(st.lastStore, i, DepKind::VarWaw);
      st.lastStore = i;
      st.loadsSinceStore.clear();
    }
  }

  // Port write ordering (two writes to the same port must stay ordered).
  std::unordered_map<std::uint32_t, std::size_t> lastWrite;
  for (std::size_t i = 0; i < n_; ++i) {
    const Op& o = fn.op(opIds_[i]);
    if (o.kind == OpKind::WritePort) {
      auto it = lastWrite.find(o.port.get());
      if (it != lastWrite.end()) addEdge(it->second, i, DepKind::PortWaw);
      lastWrite[o.port.get()] = i;
    }
  }

  // Use-before-overwrite edges: a register's loaded value is only valid
  // until the next store to the same variable commits, so every operation
  // consuming a value *rooted* at a load must be scheduled no later than
  // that store (same step is fine: reads see the pre-clock value). Without
  // these edges a schedule could overwrite a register while a consumer
  // still needs the old value.
  {
    // Root load (node index) of each value defined in this block, walking
    // through free wiring ops; SIZE_MAX when not load-rooted.
    std::unordered_map<std::uint32_t, std::size_t> loadRootOfValue;
    auto rootLoad = [&](ValueId v) -> std::size_t {
      const Op* def = &fn.defOf(v);
      while (kindFlowsFree(def->kind) && def->kind != OpKind::LoadVar &&
             !def->args.empty())
        def = &fn.defOf(def->args[0]);
      if (def->kind != OpKind::LoadVar) return SIZE_MAX;
      auto it = defOf.find(def->result.get());
      return it == defOf.end() ? SIZE_MAX : it->second;
    };
    // A store that writes a load's value straight back into the same
    // variable (store v <- load v, nothing between) leaves the register
    // content unchanged, so it does not invalidate consumers of that load
    // — the invalidating store is the first *later* store of a different
    // value. Emitting an edge at the write-back store would contradict the
    // WAW chain through it and create a cycle (seen after `0 ^ v` folds to
    // the bare load and forwarding collapses a later reload into it); but
    // the edge must then move to the following store, not vanish, or a
    // consumer could be scheduled past a real overwrite. Only a bare Nop
    // chain preserves the value — casts and constant shifts are free for
    // scheduling but change the stored bits.
    auto storesLoadBack = [&](std::size_t st, std::size_t ld) {
      const Op* def = &fn.defOf(fn.op(opIds_[st]).args[0]);
      while (def->kind == OpKind::Nop && !def->args.empty())
        def = &fn.defOf(def->args[0]);
      return def->result.get() == fn.op(opIds_[ld]).result.get();
    };
    std::unordered_map<std::uint32_t, std::vector<std::size_t>> storesOfVar;
    for (std::size_t k = 0; k < n_; ++k) {
      const Op& o = fn.op(opIds_[k]);
      if (o.kind == OpKind::StoreVar) storesOfVar[o.var.get()].push_back(k);
    }
    // First store after each load that actually changes the register.
    std::vector<std::size_t> invalidatingStoreOfLoad(n_, SIZE_MAX);
    for (std::size_t k = 0; k < n_; ++k) {
      const Op& o = fn.op(opIds_[k]);
      if (o.kind != OpKind::LoadVar) continue;
      auto it = storesOfVar.find(o.var.get());
      if (it == storesOfVar.end()) continue;
      for (std::size_t st : it->second) {
        if (st < k || storesLoadBack(st, k)) continue;
        invalidatingStoreOfLoad[k] = st;
        break;
      }
    }
    for (std::size_t i = 0; i < n_; ++i) {
      const Op& o = fn.op(opIds_[i]);
      for (ValueId a : o.args) {
        std::size_t ld = rootLoad(a);
        if (ld == SIZE_MAX) continue;
        std::size_t st = invalidatingStoreOfLoad[ld];
        if (st == SIZE_MAX || st == i) continue;
        addEdge(i, st, DepKind::VarWar);
      }
    }
  }
}

void BlockDeps::addEdge(std::size_t from, std::size_t to, DepKind kind) {
  if (from == to) return;
  // Skip duplicate edges between the same pair to keep degrees meaningful.
  if (std::find(succs_[from].begin(), succs_[from].end(), to) !=
      succs_[from].end())
    return;
  edges_.push_back({from, to, kind});
  succs_[from].push_back(to);
  preds_[to].push_back(from);
}

std::vector<std::size_t> BlockDeps::topoOrder() const {
  std::vector<std::size_t> indeg(n_, 0);
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t s : succs_[i]) {
      (void)s;
      // counted below
    }
  for (std::size_t i = 0; i < n_; ++i) indeg[i] = preds_[i].size();
  std::vector<std::size_t> order;
  order.reserve(n_);
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < n_; ++i)
    if (indeg[i] == 0) ready.push_back(i);
  // Prefer program order among ready nodes (stable, deterministic).
  std::size_t cursor = 0;
  while (cursor < ready.size()) {
    std::size_t i = ready[cursor++];
    order.push_back(i);
    for (std::size_t s : succs_[i])
      if (--indeg[s] == 0) ready.push_back(s);
  }
  MPHLS_CHECK(order.size() == n_, "dependence graph has a cycle");
  return order;
}

ValueId rootValue(const Function& fn, ValueId v) {
  const Op* def = &fn.defOf(v);
  while (kindFlowsFree(def->kind) && !def->args.empty()) {
    v = def->args[0];
    def = &fn.defOf(v);
  }
  return v;
}

bool kindFlowsFree(OpKind k) {
  switch (k) {
    case OpKind::Const:
    case OpKind::ReadPort:
    case OpKind::LoadVar:
    case OpKind::Trunc:
    case OpKind::ZExt:
    case OpKind::SExt:
    case OpKind::ShlConst:
    case OpKind::ShrConst:
    case OpKind::SarConst:
    case OpKind::Nop:
      return true;
    default:
      return false;
  }
}

bool BlockDeps::occupiesSlot(std::size_t i) const {
  if (occupiesCache_.empty()) occupiesCache_.assign(n_, -1);
  if (occupiesCache_[i] >= 0) return occupiesCache_[i] != 0;

  const Op& o = op(i);
  bool result;
  if (o.isSink()) {
    // A sink chains with the occupying op that (transitively) produces its
    // stored value; with none in-block it is a stand-alone data move.
    // Walk the value chain through free ops (casts, constant shifts).
    const Op* p = &fn_->defOf(o.args[0]);
    while (kindFlowsFree(p->kind) && !p->args.empty())
      p = &fn_->defOf(p->args[0]);
    result = kindFlowsFree(p->kind);  // producer is const/read/load => move
  } else {
    result = !kindFlowsFree(o.kind);
  }
  occupiesCache_[i] = result ? 1 : 0;
  return result;
}

bool BlockDeps::combinationalFromFu(std::size_t i) const {
  if (combFromFuCache_.empty()) combFromFuCache_.assign(n_, -1);
  if (combFromFuCache_[i] >= 0) return combFromFuCache_[i] != 0;

  const Op& o = op(i);
  bool result = false;
  if (kindFlowsFree(o.kind) && !o.args.empty()) {
    // Walk the producing chain: FU producer => combinational.
    const Op* p = &fn_->defOf(o.args[0]);
    while (kindFlowsFree(p->kind) && !p->args.empty())
      p = &fn_->defOf(p->args[0]);
    result = !kindFlowsFree(p->kind);
  }
  combFromFuCache_[i] = result ? 1 : 0;
  return result;
}

int BlockDeps::duration(std::size_t i) const {
  const Op& o = op(i);
  if (o.isSink() || kindFlowsFree(o.kind)) return 1;
  return latencies_.of(o.kind);
}

int BlockDeps::edgeLatency(const DepEdge& e) const {
  switch (e.kind) {
    case DepKind::Data: {
      // Free wiring ops are labeled with their root producer's ISSUE step;
      // edges into wiring therefore carry no latency, and the producer's
      // remaining execution time (delivery happens during its k-th step)
      // is applied when the value leaves the wiring chain.
      if (kindFlowsFree(op(e.to).kind)) return 0;

      int remainder = 0;  // steps from `from`'s label until delivery
      bool fromFu = false;
      if (kindFlowsFree(op(e.from).kind)) {
        if (combinationalFromFu(e.from)) {
          ValueId root = rootValue(*fn_, op(e.from).result);
          remainder = latencies_.of(fn_->defOf(root).kind) - 1;
          fromFu = true;
        }
      } else {
        remainder = latencies_.of(op(e.from).kind) - 1;
        fromFu = true;
      }
      if (op(e.to).isSink()) {
        // The sink latches at the delivery step (remainder steps later).
        return fromFu ? remainder : 0;
      }
      // A consuming functional unit issues the step after delivery; values
      // from registers/ports/constants are available immediately.
      return fromFu ? remainder + 1 : 0;
    }
    case DepKind::VarRaw:
    case DepKind::VarWaw:
    case DepKind::PortWaw:
      return 1;
    case DepKind::VarWar:
      return 0;
  }
  return 1;
}

bool BlockDeps::reaches(std::size_t a, std::size_t b) const {
  if (a == b) return false;
  std::vector<bool> seen(n_, false);
  std::vector<std::size_t> stack{a};
  seen[a] = true;
  while (!stack.empty()) {
    std::size_t x = stack.back();
    stack.pop_back();
    for (std::size_t s : succs_[x]) {
      if (s == b) return true;
      if (!seen[s]) {
        seen[s] = true;
        stack.push_back(s);
      }
    }
  }
  return false;
}

}  // namespace mphls
