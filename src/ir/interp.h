// Behavioral interpreter for CDFG functions.
//
// Executes the specification directly, giving the golden input→output
// mapping against which the synthesized RTL structure is checked — the
// "design verification" problem the paper lists in Section 4. Also records
// the block-execution trace, which, combined with a schedule, yields the
// design's total control-step count (e.g. the paper's 23- and 10-step
// totals for the square-root example).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ir/cdfg.h"

namespace mphls {

/// Result of one behavioral execution.
struct ExecResult {
  /// Final value driven on each output port (by name). Unwritten outputs
  /// are absent.
  std::map<std::string, std::uint64_t> outputs;
  /// Order in which blocks executed (entry first).
  std::vector<BlockId> blockTrace;
  /// Total operations executed (non-free only), a behavioral "work" metric.
  long opsExecuted = 0;
  bool finished = false;  ///< false when the step limit was hit
};

class Interpreter {
 public:
  explicit Interpreter(const Function& fn) : fn_(fn) {}

  /// Called after each result-producing operation executes with the value
  /// id and the concrete pattern assigned. Used by the analysis soundness
  /// fuzzers to check every observed value against its computed fact.
  using ValueObserver = std::function<void(ValueId, std::uint64_t)>;

  /// Run the function once. `inputs` maps input-port names to values (all
  /// input ports must be present). `maxBlockExecs` bounds non-terminating
  /// control flow.
  [[nodiscard]] ExecResult run(
      const std::map<std::string, std::uint64_t>& inputs,
      long maxBlockExecs = 100000,
      const ValueObserver& observe = {}) const;

  /// Evaluate one pure op on concrete operand values (shared with the RTL
  /// simulator so both levels use identical arithmetic).
  [[nodiscard]] static std::uint64_t evalPure(OpKind kind, int width,
                                              std::int64_t imm,
                                              const std::vector<std::uint64_t>& args,
                                              const std::vector<int>& argWidths);

 private:
  const Function& fn_;
};

}  // namespace mphls
