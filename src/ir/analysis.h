// Graph analyses over the CDFG: unit-delay levels (ASAP/ALAP), mobility,
// critical paths, control-flow traversal, natural-loop detection, and
// cross-block variable liveness. These feed the schedulers (Section 3.1)
// and the register allocators (Section 3.2).
#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.h"
#include "ir/cdfg.h"
#include "ir/deps.h"

namespace mphls {

/// Unit-delay level analysis of one block's dependence graph, treating free
/// operations as zero-delay (they chain into their consumer's step).
struct LevelInfo {
  /// Earliest feasible step per op (free ops share their producer's step).
  std::vector<int> asap;
  /// Latest feasible step given the ASAP-critical length.
  std::vector<int> alap;
  /// alap - asap: the paper's "freedom" / mobility of each operation.
  std::vector<int> mobility;
  /// Length of the longest chain of non-free ops starting at each op
  /// (inclusive); the list scheduler's BUD-style priority.
  std::vector<int> pathToSink;
  /// Number of steps on the critical path (minimum schedule length with
  /// unlimited resources).
  int criticalLength = 0;
};

/// Compute levels with every non-free op taking one control step.
[[nodiscard]] LevelInfo computeLevels(const BlockDeps& deps);

/// Same, but with ALAP stretched to an explicit time constraint of
/// `steps` control steps (used by force-directed scheduling).
[[nodiscard]] LevelInfo computeLevels(const BlockDeps& deps, int steps);

/// Reverse post-order of reachable blocks from the entry (a topological
/// order of the CFG ignoring back edges).
[[nodiscard]] std::vector<BlockId> reversePostOrder(const Function& fn);

/// A natural loop discovered from a back edge latch -> header.
struct LoopInfo {
  BlockId header;
  BlockId latch;
  std::vector<BlockId> blocks;  ///< all blocks in the loop body (incl. header)
  /// Trip count when statically known (counter with constant init/step and
  /// constant exit bound), else -1.
  long tripCount = -1;
};

/// Detect natural loops in the CFG.
[[nodiscard]] std::vector<LoopInfo> findLoops(const Function& fn);

/// Cross-block liveness of variables: for each block, the set of variables
/// live on entry and on exit (bit per VarId index).
struct VarLiveness {
  std::vector<std::vector<bool>> liveIn;   ///< [block][var]
  std::vector<std::vector<bool>> liveOut;  ///< [block][var]
};

[[nodiscard]] VarLiveness computeVarLiveness(const Function& fn);

}  // namespace mphls
