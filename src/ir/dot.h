// Graphviz DOT rendering of the data-flow and control-flow graphs,
// presented separately "for intelligibility" exactly as the paper's Fig. 1.
#pragma once

#include <map>
#include <string>

#include "ir/cdfg.h"

namespace mphls {

/// DOT digraph of one block's data-flow graph (value + ordering edges).
/// `valueNotes` (optional) maps values to a second label line on the node
/// producing them — `mphls analyze --dot-facts` passes the abstract
/// interpreter's range/known-bits facts here.
[[nodiscard]] std::string dataFlowDot(
    const Function& fn, BlockId block,
    const std::map<ValueId, std::string>& valueNotes);
[[nodiscard]] std::string dataFlowDot(const Function& fn, BlockId block);

/// DOT digraph of the control-flow graph (blocks and transitions).
[[nodiscard]] std::string controlFlowDot(const Function& fn);

}  // namespace mphls
