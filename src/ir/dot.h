// Graphviz DOT rendering of the data-flow and control-flow graphs,
// presented separately "for intelligibility" exactly as the paper's Fig. 1.
#pragma once

#include <string>

#include "ir/cdfg.h"

namespace mphls {

/// DOT digraph of one block's data-flow graph (value + ordering edges).
[[nodiscard]] std::string dataFlowDot(const Function& fn, BlockId block);

/// DOT digraph of the control-flow graph (blocks and transitions).
[[nodiscard]] std::string controlFlowDot(const Function& fn);

}  // namespace mphls
