// The control/data-flow graph (CDFG) intermediate representation.
//
// Mirrors the tutorial's internal form (Section 2, Fig. 1): the data-flow
// graph "shows the essential ordering of operations ... imposed by the data
// relations", while the control-flow graph captures the sequencing given in
// the program. Here data flow is carried by SSA-like temporary values inside
// basic blocks; control flow by block terminators; state that crosses
// control steps or blocks by named variables (which the allocator later maps
// to registers).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/diag.h"
#include "common/ids.h"
#include "ir/opcode.h"

namespace mphls {

/// A top-level input or output port of the design.
struct Port {
  PortId id;
  std::string name;
  int width = 0;
  bool isInput = true;
  bool isSigned = false;
};

/// A named storage location. Variables carry state across control steps and
/// across basic blocks; data-path allocation assigns them to registers.
struct Variable {
  VarId id;
  std::string name;
  int width = 0;
  bool isSigned = false;
};

/// An SSA-like temporary: produced by exactly one operation and only
/// consumed inside the same basic block. (Cross-block communication goes
/// through variables.) Each value corresponds to one arc bundle in the
/// paper's data-flow graph: "each value produced by one operation and
/// consumed by another is represented uniquely by an arc".
struct Value {
  ValueId id;
  int width = 0;
  OpId def;          ///< producing operation
  std::string name;  ///< optional debug name
};

/// One data-flow operation.
struct Op {
  OpId id;
  OpKind kind = OpKind::Nop;
  std::vector<ValueId> args;
  ValueId result;            ///< invalid for sinks / nop
  std::int64_t imm = 0;      ///< Const payload or constant shift amount
  VarId var;                 ///< LoadVar / StoreVar target
  PortId port;               ///< ReadPort / WritePort target
  SourceLoc loc;
  bool dead = false;         ///< set by passes; removed by Function::compact

  [[nodiscard]] bool isSink() const { return opIsSink(kind); }
  [[nodiscard]] bool isFree() const { return opIsFree(kind); }
};

/// How a basic block transfers control.
struct Terminator {
  enum class Kind { Return, Jump, Branch };
  Kind kind = Kind::Return;
  BlockId target;      ///< Jump target, or Branch taken-target
  BlockId elseTarget;  ///< Branch fall-through target
  ValueId cond;        ///< Branch condition (width 1), defined in this block
};

/// A basic block: a straight-line list of operations plus a terminator.
struct Block {
  BlockId id;
  std::string name;
  std::vector<OpId> ops;  ///< program order (defines sequential semantics)
  Terminator term;
};

/// A complete behavioral design: ports, variables, values, ops, blocks.
///
/// Functions own all IR entities in flat tables indexed by the strong ids;
/// blocks reference operations by OpId. The class doubles as the builder:
/// the frontend and the tests construct IR through the make*/add* methods.
class Function {
 public:
  explicit Function(std::string name) : name_(std::move(name)) {}

  // --- construction -----------------------------------------------------
  PortId addInput(const std::string& name, int width, bool isSigned = false);
  PortId addOutput(const std::string& name, int width, bool isSigned = false);
  VarId addVar(const std::string& name, int width, bool isSigned = false);
  BlockId addBlock(const std::string& name);

  /// Create an operation (appended to `block`) and, when the kind produces
  /// a result, a fresh value of width `resultWidth`.
  OpId makeOp(BlockId block, OpKind kind, std::vector<ValueId> args,
              int resultWidth, std::int64_t imm = 0,
              VarId var = VarId::invalid(), PortId port = PortId::invalid(),
              SourceLoc loc = {});

  // Convenience builders used heavily by tests and built-in designs.
  ValueId emitConst(BlockId b, std::int64_t value, int width);
  ValueId emitRead(BlockId b, PortId port);
  ValueId emitLoad(BlockId b, VarId var);
  ValueId emitUnary(BlockId b, OpKind k, ValueId a, int width = -1,
                    std::int64_t imm = 0);
  ValueId emitBinary(BlockId b, OpKind k, ValueId a, ValueId c,
                     int width = -1);
  ValueId emitSelect(BlockId b, ValueId cond, ValueId t, ValueId f);
  void emitStore(BlockId b, VarId var, ValueId v);
  void emitWrite(BlockId b, PortId port, ValueId v);
  void emitNop(BlockId b);

  void setReturn(BlockId b);
  void setJump(BlockId b, BlockId target);
  void setBranch(BlockId b, ValueId cond, BlockId taken, BlockId fallthrough);

  void setEntry(BlockId b) { entry_ = b; }

  // --- access -------------------------------------------------------------
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] BlockId entry() const { return entry_; }

  [[nodiscard]] const std::vector<Port>& ports() const { return ports_; }
  [[nodiscard]] const std::vector<Variable>& vars() const { return vars_; }
  [[nodiscard]] const std::vector<Value>& values() const { return values_; }
  [[nodiscard]] const std::vector<Block>& blocks() const { return blocks_; }

  [[nodiscard]] const Port& port(PortId id) const {
    return ports_.at(id.index());
  }
  [[nodiscard]] const Variable& var(VarId id) const {
    return vars_.at(id.index());
  }
  [[nodiscard]] Variable& var(VarId id) { return vars_.at(id.index()); }
  [[nodiscard]] const Value& value(ValueId id) const {
    return values_.at(id.index());
  }
  [[nodiscard]] Value& value(ValueId id) { return values_.at(id.index()); }
  [[nodiscard]] const Op& op(OpId id) const { return ops_.at(id.index()); }
  [[nodiscard]] Op& op(OpId id) { return ops_.at(id.index()); }
  [[nodiscard]] const Block& block(BlockId id) const {
    return blocks_.at(id.index());
  }
  [[nodiscard]] Block& block(BlockId id) { return blocks_.at(id.index()); }

  [[nodiscard]] std::size_t numOps() const { return ops_.size(); }
  [[nodiscard]] std::size_t numValues() const { return values_.size(); }
  [[nodiscard]] std::size_t numBlocks() const { return blocks_.size(); }

  /// Number of non-dead, non-free operations across all blocks — the count
  /// the paper's schedules charge control steps for.
  [[nodiscard]] std::size_t numRealOps() const;

  /// Count of live (non-dead) ops in all blocks.
  [[nodiscard]] std::size_t numLiveOps() const;

  [[nodiscard]] PortId findPort(const std::string& name) const;
  [[nodiscard]] VarId findVar(const std::string& name) const;
  [[nodiscard]] BlockId findBlock(const std::string& name) const;

  /// Producing op of a value.
  [[nodiscard]] const Op& defOf(ValueId v) const { return op(value(v).def); }

  // --- mutation by passes ---------------------------------------------------
  /// Mark an op dead and detach it from its block.
  void removeOp(OpId id);

  /// Replace every use of value `from` with `to` (all blocks).
  void replaceAllUses(ValueId from, ValueId to);

  /// Drop dead ops and unused values, renumbering all ids. Invalidates any
  /// ids held outside the function.
  void compact();

  /// Deep copy (ids are indices, so this is a member-wise copy).
  [[nodiscard]] Function clone() const { return *this; }

  /// Human-readable listing of the whole function.
  [[nodiscard]] std::string dump() const;

 private:
  std::string name_;
  std::vector<Port> ports_;
  std::vector<Variable> vars_;
  std::vector<Value> values_;
  std::vector<Op> ops_;
  std::vector<Block> blocks_;
  BlockId entry_;

  ValueId newValue(int width, OpId def, std::string name = {});
};

}  // namespace mphls
