#include "ir/interp.h"

#include "common/bitutil.h"

namespace mphls {

std::uint64_t Interpreter::evalPure(OpKind kind, int width, std::int64_t imm,
                                    const std::vector<std::uint64_t>& args,
                                    const std::vector<int>& argWidths) {
  auto u = [&](std::size_t i) { return args[i]; };
  auto s = [&](std::size_t i) { return signExtend(args[i], argWidths[i]); };
  auto t = [&](std::uint64_t v) { return truncBits(v, width); };
  auto b = [&](bool c) -> std::uint64_t { return c ? 1 : 0; };

  switch (kind) {
    case OpKind::Const:
      return truncBits(static_cast<std::uint64_t>(imm), width);
    case OpKind::Not: return t(~u(0));
    case OpKind::Neg: return t(~u(0) + 1);
    case OpKind::Inc: return t(u(0) + 1);
    case OpKind::Dec: return t(u(0) - 1);
    // Constant shift amounts are in [0, 64) in verified IR; out-of-range
    // amounts still get defined semantics (shift out everything) so direct
    // evalPure callers can never hit C++ shift UB.
    case OpKind::ShlConst:
      return (imm < 0 || imm >= 64) ? 0 : t(u(0) << imm);
    case OpKind::ShrConst:
      return (imm < 0 || imm >= 64) ? 0 : t(u(0) >> imm);
    case OpKind::SarConst:
      return t(static_cast<std::uint64_t>(
          s(0) >> (imm < 0 ? 0 : imm > 63 ? 63 : imm)));
    case OpKind::Trunc: return t(u(0));
    case OpKind::ZExt: return t(u(0));
    case OpKind::SExt: return t(static_cast<std::uint64_t>(s(0)));
    case OpKind::Add: return t(u(0) + u(1));
    case OpKind::Sub: return t(u(0) - u(1));
    case OpKind::Mul: return t(u(0) * u(1));
    case OpKind::Div: {
      std::int64_t d = s(1);
      if (d == 0) return maskBits(width);
      // INT64_MIN / -1 overflows int64; define it as the two's-complement
      // negation (the value the mod-2^width wrap produces for -n).
      if (d == -1)
        return t(0 - static_cast<std::uint64_t>(s(0)));
      return t(static_cast<std::uint64_t>(s(0) / d));
    }
    case OpKind::UDiv:
      return u(1) == 0 ? maskBits(width) : t(u(0) / u(1));
    case OpKind::Mod: {
      std::int64_t d = s(1);
      // d == -1 divides everything (INT64_MIN % -1 is UB in C++).
      return (d == 0 || d == -1)
                 ? 0
                 : t(static_cast<std::uint64_t>(s(0) % d));
    }
    case OpKind::UMod: return u(1) == 0 ? 0 : t(u(0) % u(1));
    case OpKind::And: return t(u(0) & u(1));
    case OpKind::Or: return t(u(0) | u(1));
    case OpKind::Xor: return t(u(0) ^ u(1));
    case OpKind::Shl: return u(1) >= 64 ? 0 : t(u(0) << u(1));
    case OpKind::Shr: return u(1) >= 64 ? 0 : t(u(0) >> u(1));
    case OpKind::Sar: {
      std::uint64_t sh = u(1) >= 63 ? 63 : u(1);
      return t(static_cast<std::uint64_t>(s(0) >> sh));
    }
    case OpKind::Eq: return b(u(0) == u(1));
    case OpKind::Ne: return b(u(0) != u(1));
    case OpKind::Lt: return b(s(0) < s(1));
    case OpKind::Le: return b(s(0) <= s(1));
    case OpKind::Gt: return b(s(0) > s(1));
    case OpKind::Ge: return b(s(0) >= s(1));
    case OpKind::ULt: return b(u(0) < u(1));
    case OpKind::ULe: return b(u(0) <= u(1));
    case OpKind::UGt: return b(u(0) > u(1));
    case OpKind::UGe: return b(u(0) >= u(1));
    case OpKind::Select: return u(0) ? t(u(1)) : t(u(2));
    default:
      MPHLS_CHECK(false, "evalPure on non-pure op " << opName(kind));
      return 0;
  }
}

ExecResult Interpreter::run(const std::map<std::string, std::uint64_t>& inputs,
                            long maxBlockExecs,
                            const ValueObserver& observe) const {
  ExecResult res;
  // Port and variable state.
  std::vector<std::uint64_t> portVal(fn_.ports().size(), 0);
  std::vector<bool> portWritten(fn_.ports().size(), false);
  for (const auto& p : fn_.ports()) {
    if (p.isInput) {
      auto it = inputs.find(p.name);
      MPHLS_CHECK(it != inputs.end(), "missing input '" << p.name << "'");
      portVal[p.id.index()] = truncBits(it->second, p.width);
    }
  }
  std::vector<std::uint64_t> varVal(fn_.vars().size(), 0);

  // Value registers (per function; safe because each is single-assignment
  // within a block and re-assigned on re-entry).
  std::vector<std::uint64_t> vals(fn_.numValues(), 0);

  BlockId cur = fn_.entry();
  long execs = 0;
  while (cur.valid()) {
    if (++execs > maxBlockExecs) return res;  // finished stays false
    res.blockTrace.push_back(cur);
    const Block& blk = fn_.block(cur);
    for (OpId oid : blk.ops) {
      const Op& o = fn_.op(oid);
      switch (o.kind) {
        case OpKind::ReadPort:
          vals[o.result.index()] = portVal[o.port.index()];
          break;
        case OpKind::LoadVar:
          vals[o.result.index()] =
              truncBits(varVal[o.var.index()], fn_.value(o.result).width);
          break;
        case OpKind::StoreVar:
          varVal[o.var.index()] =
              truncBits(vals[o.args[0].index()], fn_.var(o.var).width);
          break;
        case OpKind::WritePort:
          portVal[o.port.index()] =
              truncBits(vals[o.args[0].index()], fn_.port(o.port).width);
          portWritten[o.port.index()] = true;
          break;
        case OpKind::Nop:
          break;
        default: {
          std::vector<std::uint64_t> a;
          std::vector<int> aw;
          a.reserve(o.args.size());
          for (ValueId v : o.args) {
            a.push_back(vals[v.index()]);
            aw.push_back(fn_.value(v).width);
          }
          vals[o.result.index()] =
              evalPure(o.kind, fn_.value(o.result).width, o.imm, a, aw);
          break;
        }
      }
      if (!o.isFree()) ++res.opsExecuted;
      if (observe && o.result.valid())
        observe(o.result, vals[o.result.index()]);
    }
    const Terminator& t = blk.term;
    switch (t.kind) {
      case Terminator::Kind::Return:
        cur = BlockId::invalid();
        break;
      case Terminator::Kind::Jump:
        cur = t.target;
        break;
      case Terminator::Kind::Branch:
        cur = vals[t.cond.index()] ? t.target : t.elseTarget;
        break;
    }
  }
  for (const auto& p : fn_.ports())
    if (!p.isInput && portWritten[p.id.index()])
      res.outputs[p.name] = portVal[p.id.index()];
  res.finished = true;
  return res;
}

}  // namespace mphls
