// Per-block dependence graphs.
//
// This is the paper's data-flow graph (Fig. 1): an edge op_a -> op_b means
// b must not start before a completes in any valid ordering. Edges come
// from value flow (RAW through temporaries) and from ordering constraints
// on variables and ports (RAW/WAR/WAW on the same storage location), which
// is exactly the "essential ordering of operations ... imposed by the data
// relations in the specification".
#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.h"
#include "ir/cdfg.h"
#include "ir/latency.h"

namespace mphls {

enum class DepKind {
  Data,     ///< value produced by `from` consumed by `to`
  VarRaw,   ///< store -> load of the same variable
  VarWar,   ///< load -> store of the same variable
  VarWaw,   ///< store -> store of the same variable
  PortWaw,  ///< write -> write of the same port
};

struct DepEdge {
  std::size_t from = 0;  ///< index into the block's op list
  std::size_t to = 0;
  DepKind kind = DepKind::Data;
};

/// True for op kinds whose results flow for free within a control step:
/// constants, port/variable reads, width casts, constant shifts, nops.
/// Such ops never force their consumer into a later step.
[[nodiscard]] bool kindFlowsFree(OpKind k);

/// Root value of `v`, looking through free unary wiring ops (casts and
/// constant shifts): the value that actually occupies a register, port or
/// constant wire in the datapath.
[[nodiscard]] ValueId rootValue(const Function& fn, ValueId v);

/// Dependence graph over one block's operations. Nodes are identified by
/// their index in `Block::ops` so schedulers can use dense arrays.
class BlockDeps {
 public:
  BlockDeps(const Function& fn, const Block& block,
            OpLatencyModel latencies = OpLatencyModel::unit());

  [[nodiscard]] std::size_t numOps() const { return n_; }
  [[nodiscard]] const std::vector<DepEdge>& edges() const { return edges_; }
  [[nodiscard]] const std::vector<std::size_t>& succs(std::size_t i) const {
    return succs_[i];
  }
  [[nodiscard]] const std::vector<std::size_t>& preds(std::size_t i) const {
    return preds_[i];
  }
  /// The OpId of node `i`.
  [[nodiscard]] OpId opAt(std::size_t i) const { return opIds_[i]; }
  [[nodiscard]] const Op& op(std::size_t i) const {
    return fn_->op(opIds_[i]);
  }
  [[nodiscard]] const Function& fn() const { return *fn_; }

  /// Topological order (indices). Program order is already topological, but
  /// this validates acyclicity and gives a canonical order for schedulers.
  [[nodiscard]] std::vector<std::size_t> topoOrder() const;

  /// True when there is a (possibly transitive) dependence path a ->* b.
  [[nodiscard]] bool reaches(std::size_t a, std::size_t b) const;

  /// True when node `i` occupies a control-step slot (and hence a resource):
  /// functional-unit operations always do; a StoreVar/WritePort does only
  /// when no in-block occupying op feeds it (then it is a pure data move,
  /// like the paper's "0 -> I" node in Fig. 2); constants, port/variable
  /// reads, width casts, constant shifts and nops never do — they chain.
  [[nodiscard]] bool occupiesSlot(std::size_t i) const;

 private:
  mutable std::vector<signed char> occupiesCache_;
  mutable std::vector<signed char> combFromFuCache_;

 public:
  /// True when node `i` is a free-flowing op whose value is produced
  /// combinationally from a functional-unit output in the same step (e.g.
  /// the ">> 1" chained behind the adder in the paper's Fig. 2 schedule).
  /// Consuming such a value on another functional unit requires a step
  /// boundary; storing it does not.
  [[nodiscard]] bool combinationalFromFu(std::size_t i) const;

  /// Minimum control-step separation implied by a dependence edge. With
  /// the unit latency model (`cycles(op) == 1` everywhere):
  ///   - data edges into sinks chain (the register/port write happens at
  ///     the end of the producer's step, 0);
  ///   - data edges out of free-flowing ops chain (0), unless the free op
  ///     carries a combinational FU output into another FU op (1);
  ///   - FU -> FU data edges cross a step boundary (1);
  ///   - store->load (RAW) and store->store (WAW) cross a boundary (1);
  ///   - load->store (WAR) may share a step (registers read old value, 0).
  /// With a multicycle model, a producer executing in `cycles(op)` steps
  /// delivers its result during its last step: FU -> FU becomes
  /// cycles(producer), FU -> sink cycles(producer) - 1, and free wiring
  /// forwards the root producer's remaining latency.
  [[nodiscard]] int edgeLatency(const DepEdge& e) const;

  /// Execution time of node `i` in control steps (1 for everything that
  /// does not occupy a functional unit for multiple steps).
  [[nodiscard]] int duration(std::size_t i) const;

  [[nodiscard]] const OpLatencyModel& latencies() const { return latencies_; }

 private:
  const Function* fn_;
  std::size_t n_ = 0;
  std::vector<OpId> opIds_;
  std::vector<DepEdge> edges_;
  OpLatencyModel latencies_;
  std::vector<std::vector<std::size_t>> succs_;
  std::vector<std::vector<std::size_t>> preds_;

  void addEdge(std::size_t from, std::size_t to, DepKind kind);
};

}  // namespace mphls
