// Structural verifier for CDFG functions. Run after frontend lowering and
// after every transformation pass; violations indicate compiler bugs, so
// failures throw InternalError with a description of the broken invariant.
#pragma once

#include <string>

#include "ir/cdfg.h"

namespace mphls {

/// Check all IR invariants; returns an empty string when the function is
/// well formed, else a description of the first violation.
[[nodiscard]] std::string verifyFunction(const Function& fn);

/// Convenience: verify and throw InternalError on violation.
void verifyOrThrow(const Function& fn);

}  // namespace mphls
