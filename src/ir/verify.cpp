#include "ir/verify.h"

#include <sstream>
#include <unordered_set>

#include "common/bitutil.h"

namespace mphls {

namespace {

std::string check(const Function& fn) {
  std::ostringstream err;
  std::unordered_set<std::uint32_t> attachedOps;

  if (!fn.entry().valid()) return "function has no entry block";
  if (fn.entry().index() >= fn.numBlocks()) return "entry block out of range";

  for (const auto& blk : fn.blocks()) {
    std::unordered_set<std::uint32_t> defined;
    for (OpId oid : blk.ops) {
      if (oid.index() >= fn.numOps()) {
        err << "block " << blk.name << " references op out of range";
        return err.str();
      }
      if (!attachedOps.insert(oid.get()).second) {
        err << "op " << oid << " attached to more than one block";
        return err.str();
      }
      const Op& o = fn.op(oid);
      if (o.dead) {
        err << "dead op " << oid << " still attached to block " << blk.name;
        return err.str();
      }
      if (static_cast<int>(o.args.size()) != opArity(o.kind)) {
        err << "op " << oid << " (" << opName(o.kind) << ") has "
            << o.args.size() << " args, expected " << opArity(o.kind);
        return err.str();
      }
      for (ValueId a : o.args) {
        if (a.index() >= fn.numValues()) {
          err << "op " << oid << " uses value out of range";
          return err.str();
        }
        const Value& av = fn.value(a);
        if (av.def.valid() && av.def.index() < fn.numOps() &&
            fn.op(av.def).dead) {
          err << "op " << oid << " uses value v" << a.get()
              << " produced by deleted op " << av.def;
          return err.str();
        }
        if (!defined.count(a.get())) {
          err << "op " << oid << " in block " << blk.name
              << " uses value v" << a.get()
              << " not defined earlier in the block";
          return err.str();
        }
      }
      if (opHasResult(o.kind)) {
        if (!o.result.valid() || o.result.index() >= fn.numValues()) {
          err << "op " << oid << " missing result value";
          return err.str();
        }
        const Value& v = fn.value(o.result);
        if (v.def != oid) {
          err << "value v" << o.result.get() << " def link broken";
          return err.str();
        }
        if (v.width < 1 || v.width > kMaxWidth) {
          err << "value v" << o.result.get() << " has bad width " << v.width;
          return err.str();
        }
        defined.insert(o.result.get());
      } else if (o.result.valid()) {
        err << "sink op " << oid << " has a result";
        return err.str();
      }
      // Kind-specific payloads.
      if ((o.kind == OpKind::LoadVar || o.kind == OpKind::StoreVar) &&
          (!o.var.valid() || o.var.index() >= fn.vars().size())) {
        err << "op " << oid << " has invalid variable";
        return err.str();
      }
      if (o.kind == OpKind::ReadPort || o.kind == OpKind::WritePort) {
        if (!o.port.valid() || o.port.index() >= fn.ports().size()) {
          err << "op " << oid << " has invalid port";
          return err.str();
        }
        if (o.kind == OpKind::ReadPort && !fn.port(o.port).isInput) {
          err << "op " << oid << " reads an output port";
          return err.str();
        }
        if (o.kind == OpKind::WritePort && fn.port(o.port).isInput) {
          err << "op " << oid << " writes an input port";
          return err.str();
        }
      }
      if (opIsCompare(o.kind) && fn.value(o.result).width != 1) {
        err << "compare op " << oid << " result is not 1 bit";
        return err.str();
      }
      if ((o.kind == OpKind::ShlConst || o.kind == OpKind::ShrConst ||
           o.kind == OpKind::SarConst) &&
          (o.imm < 0 || o.imm >= kMaxWidth)) {
        err << "op " << oid << " has bad shift amount " << o.imm;
        return err.str();
      }
    }
    const Terminator& t = blk.term;
    switch (t.kind) {
      case Terminator::Kind::Return:
        break;
      case Terminator::Kind::Jump:
        if (!t.target.valid() || t.target.index() >= fn.numBlocks()) {
          err << "block " << blk.name << " jumps out of range";
          return err.str();
        }
        break;
      case Terminator::Kind::Branch: {
        if (!t.target.valid() || t.target.index() >= fn.numBlocks() ||
            !t.elseTarget.valid() || t.elseTarget.index() >= fn.numBlocks()) {
          err << "block " << blk.name << " branches out of range";
          return err.str();
        }
        if (!t.cond.valid() || !defined.count(t.cond.get())) {
          err << "block " << blk.name
              << " branch condition not defined in block";
          return err.str();
        }
        if (fn.value(t.cond).width != 1) {
          err << "block " << blk.name << " branch condition is not 1 bit";
          return err.str();
        }
        break;
      }
    }
  }

  // Every live op must belong to exactly one block: a pass that detaches an
  // op without marking it dead (or vice versa) leaves later stages with a
  // schedulable op no block will ever execute.
  for (std::size_t i = 0; i < fn.numOps(); ++i) {
    OpId oid{i};
    const Op& o = fn.op(oid);
    if (!o.dead && !attachedOps.count(oid.get())) {
      err << "live op " << oid << " (" << opName(o.kind)
          << ") is not attached to any block";
      return err.str();
    }
  }
  return {};
}

}  // namespace

std::string verifyFunction(const Function& fn) { return check(fn); }

void verifyOrThrow(const Function& fn) {
  std::string msg = check(fn);
  MPHLS_CHECK(msg.empty(), "IR verification failed for '" << fn.name()
                                                          << "': " << msg);
}

}  // namespace mphls
