#include "ir/analysis.h"

#include <algorithm>
#include <functional>

namespace mphls {

LevelInfo computeLevels(const BlockDeps& deps) {
  return computeLevels(deps, /*steps=*/0);
}

LevelInfo computeLevels(const BlockDeps& deps, int steps) {
  const std::size_t n = deps.numOps();
  LevelInfo info;
  info.asap.assign(n, 0);
  info.alap.assign(n, 0);
  info.mobility.assign(n, 0);
  info.pathToSink.assign(n, 0);

  const auto order = deps.topoOrder();

  // Index edges by endpoint for latency-aware propagation.
  std::vector<std::vector<const DepEdge*>> in(n), out(n);
  for (const DepEdge& e : deps.edges()) {
    in[e.to].push_back(&e);
    out[e.from].push_back(&e);
  }

  // ASAP: earliest feasible step.
  for (std::size_t i : order) {
    int s = 0;
    for (const DepEdge* e : in[i])
      s = std::max(s, info.asap[e->from] + deps.edgeLatency(*e));
    info.asap[i] = s;
  }

  // The critical length counts the completion of the latest slot-occupying
  // op (multicycle ops finish duration steps after issue).
  int critical = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (deps.occupiesSlot(i))
      critical = std::max(critical, info.asap[i] + deps.duration(i));
  info.criticalLength = std::max(critical, 1);

  const int horizon = std::max(steps, info.criticalLength);

  // ALAP within `horizon` steps: an op must complete by the horizon.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    std::size_t i = *it;
    int s = horizon - (deps.occupiesSlot(i) ? deps.duration(i) : 1);
    for (const DepEdge* e : out[i])
      s = std::min(s, info.alap[e->to] - deps.edgeLatency(*e));
    info.alap[i] = std::max(s, info.asap[i]);
  }

  for (std::size_t i = 0; i < n; ++i)
    info.mobility[i] = info.alap[i] - info.asap[i];

  // Longest chain of slot-occupying ops from each node onward (inclusive):
  // the BUD-style "length of the path from the operation to the end of the
  // block" list-scheduling priority.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    std::size_t i = *it;
    int best = 0;
    for (const DepEdge* e : out[i])
      best = std::max(best, info.pathToSink[e->to]);
    info.pathToSink[i] = best + (deps.occupiesSlot(i) ? deps.duration(i) : 0);
  }

  return info;
}

std::vector<BlockId> reversePostOrder(const Function& fn) {
  std::vector<BlockId> post;
  std::vector<char> state(fn.numBlocks(), 0);  // 0 unseen, 1 open, 2 done

  std::function<void(BlockId)> dfs = [&](BlockId b) {
    state[b.index()] = 1;
    const Terminator& t = fn.block(b).term;
    auto visit = [&](BlockId s) {
      if (s.valid() && state[s.index()] == 0) dfs(s);
    };
    if (t.kind == Terminator::Kind::Jump) {
      visit(t.target);
    } else if (t.kind == Terminator::Kind::Branch) {
      visit(t.elseTarget);
      visit(t.target);
    }
    state[b.index()] = 2;
    post.push_back(b);
  };
  if (fn.entry().valid()) dfs(fn.entry());
  std::reverse(post.begin(), post.end());
  return post;
}

namespace {

/// Collect the natural loop of back edge latch->header by walking
/// predecessors from the latch until the header.
std::vector<BlockId> collectLoop(const Function& fn, BlockId header,
                                 BlockId latch) {
  // Build predecessor lists.
  std::vector<std::vector<BlockId>> preds(fn.numBlocks());
  for (const auto& b : fn.blocks()) {
    const Terminator& t = b.term;
    if (t.kind == Terminator::Kind::Jump) {
      preds[t.target.index()].push_back(b.id);
    } else if (t.kind == Terminator::Kind::Branch) {
      preds[t.target.index()].push_back(b.id);
      preds[t.elseTarget.index()].push_back(b.id);
    }
  }
  std::vector<bool> inLoop(fn.numBlocks(), false);
  inLoop[header.index()] = true;
  std::vector<BlockId> stack;
  std::vector<BlockId> result{header};
  if (!inLoop[latch.index()]) {
    inLoop[latch.index()] = true;
    result.push_back(latch);
    stack.push_back(latch);
  }
  while (!stack.empty()) {
    BlockId b = stack.back();
    stack.pop_back();
    for (BlockId p : preds[b.index()]) {
      if (!inLoop[p.index()]) {
        inLoop[p.index()] = true;
        result.push_back(p);
        stack.push_back(p);
      }
    }
  }
  return result;
}

}  // namespace

std::vector<LoopInfo> findLoops(const Function& fn) {
  // DFS from entry; an edge b -> h with h still open is a back edge.
  std::vector<char> state(fn.numBlocks(), 0);
  std::vector<LoopInfo> loops;

  std::function<void(BlockId)> dfs = [&](BlockId b) {
    state[b.index()] = 1;
    const Terminator& t = fn.block(b).term;
    auto walk = [&](BlockId s) {
      if (!s.valid()) return;
      if (state[s.index()] == 1) {
        LoopInfo li;
        li.header = s;
        li.latch = b;
        li.blocks = collectLoop(fn, s, b);
        loops.push_back(std::move(li));
      } else if (state[s.index()] == 0) {
        dfs(s);
      }
    };
    if (t.kind == Terminator::Kind::Jump) {
      walk(t.target);
    } else if (t.kind == Terminator::Kind::Branch) {
      walk(t.target);
      walk(t.elseTarget);
    }
    state[b.index()] = 2;
  };
  if (fn.entry().valid()) dfs(fn.entry());
  return loops;
}

VarLiveness computeVarLiveness(const Function& fn) {
  const std::size_t nb = fn.numBlocks();
  const std::size_t nv = fn.vars().size();
  VarLiveness lv;
  lv.liveIn.assign(nb, std::vector<bool>(nv, false));
  lv.liveOut.assign(nb, std::vector<bool>(nv, false));

  // Per block: use (read before any write) and def (written) sets.
  std::vector<std::vector<bool>> use(nb, std::vector<bool>(nv, false));
  std::vector<std::vector<bool>> def(nb, std::vector<bool>(nv, false));
  for (const auto& blk : fn.blocks()) {
    const std::size_t bi = blk.id.index();
    for (OpId oid : blk.ops) {
      const Op& o = fn.op(oid);
      if (o.kind == OpKind::LoadVar) {
        if (!def[bi][o.var.index()]) use[bi][o.var.index()] = true;
      } else if (o.kind == OpKind::StoreVar) {
        def[bi][o.var.index()] = true;
      }
    }
  }

  // Successor lists.
  std::vector<std::vector<BlockId>> succ(nb);
  for (const auto& blk : fn.blocks()) {
    const Terminator& t = blk.term;
    if (t.kind == Terminator::Kind::Jump) {
      succ[blk.id.index()].push_back(t.target);
    } else if (t.kind == Terminator::Kind::Branch) {
      succ[blk.id.index()].push_back(t.target);
      succ[blk.id.index()].push_back(t.elseTarget);
    }
  }

  // Standard backward fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t b = 0; b < nb; ++b) {
      std::vector<bool> out(nv, false);
      for (BlockId s : succ[b])
        for (std::size_t v = 0; v < nv; ++v)
          if (lv.liveIn[s.index()][v]) out[v] = true;
      std::vector<bool> in(nv, false);
      for (std::size_t v = 0; v < nv; ++v)
        in[v] = use[b][v] || (out[v] && !def[b][v]);
      if (out != lv.liveOut[b] || in != lv.liveIn[b]) {
        lv.liveOut[b] = std::move(out);
        lv.liveIn[b] = std::move(in);
        changed = true;
      }
    }
  }
  return lv;
}

}  // namespace mphls
