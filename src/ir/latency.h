// Operation latency model: execution time of each operation kind in
// control steps. The tutorial's Section 3.1.1 observes that "finding the
// most efficient possible schedule for the real hardware requires knowing
// the delays for the different operations"; with slow operators (array
// multipliers, sequential dividers) an operation can span several control
// steps, shortening the clock at the price of more steps.
//
// The default is unit latency (every operation completes in its own step,
// the model of the paper's worked figures). A multicycle model assigns
// multipliers/dividers several steps; schedulers that support it keep the
// unit busy for the whole span and consumers wait for completion.
#pragma once

#include <map>

#include "ir/opcode.h"

namespace mphls {

class OpLatencyModel {
 public:
  /// Every operation takes one step (the default everywhere).
  [[nodiscard]] static OpLatencyModel unit() { return OpLatencyModel{}; }

  /// A representative multicycle technology: 2-step multiply, 4-step
  /// divide/modulo, everything else single step.
  [[nodiscard]] static OpLatencyModel multiCycle() {
    OpLatencyModel m;
    m.cycles_[OpKind::Mul] = 2;
    m.cycles_[OpKind::Div] = 4;
    m.cycles_[OpKind::UDiv] = 4;
    m.cycles_[OpKind::Mod] = 4;
    m.cycles_[OpKind::UMod] = 4;
    return m;
  }

  [[nodiscard]] static OpLatencyModel with(std::map<OpKind, int> cycles) {
    OpLatencyModel m;
    m.cycles_ = std::move(cycles);
    return m;
  }

  /// Execution time of `k` in control steps (>= 1 for non-free ops).
  [[nodiscard]] int of(OpKind k) const {
    auto it = cycles_.find(k);
    return it == cycles_.end() ? 1 : it->second;
  }

  [[nodiscard]] bool isUnit() const { return cycles_.empty(); }

 private:
  std::map<OpKind, int> cycles_;
};

}  // namespace mphls
