// Operation kinds of the CDFG intermediate representation.
//
// The tutorial's internal representation is a graph "containing both the
// data-flow and the control flow implied by the specification" (Section 2).
// Operations here are the data-flow nodes; control flow lives in the block
// structure (see cdfg.h).
#pragma once

#include <string_view>

namespace mphls {

enum class OpKind {
  // --- producers with no value operands -------------------------------
  Const,     ///< immediate constant (imm)
  ReadPort,  ///< sample an input port (port)
  LoadVar,   ///< read a variable / storage location (var)

  // --- unary -----------------------------------------------------------
  Not,       ///< bitwise complement
  Neg,       ///< two's-complement negate
  Inc,       ///< +1 (the tutorial's increment operation)
  Dec,       ///< -1
  ShlConst,  ///< shift left by constant (imm); free in hardware (wiring)
  ShrConst,  ///< logical shift right by constant (imm); free
  SarConst,  ///< arithmetic shift right by constant (imm); free
  Trunc,     ///< width change: keep low bits (free)
  ZExt,      ///< width change: zero extend (free)
  SExt,      ///< width change: sign extend (free)

  // --- binary arithmetic / logic --------------------------------------
  Add, Sub, Mul,
  Div,   ///< signed divide
  UDiv,  ///< unsigned divide
  Mod,   ///< signed remainder
  UMod,  ///< unsigned remainder
  And, Or, Xor,
  Shl,   ///< shift left by variable amount
  Shr,   ///< logical shift right by variable amount
  Sar,   ///< arithmetic shift right by variable amount

  // --- comparisons (result width 1) ------------------------------------
  Eq, Ne,
  Lt, Le, Gt, Ge,      ///< signed
  ULt, ULe, UGt, UGe,  ///< unsigned

  // --- selection --------------------------------------------------------
  Select,  ///< (cond, a, b) -> cond ? a : b

  // --- sinks -------------------------------------------------------------
  StoreVar,   ///< write a variable (var, args[0])
  WritePort,  ///< drive an output port (port, args[0])

  // --- structural ---------------------------------------------------------
  Nop,  ///< no operation; used as a loop-boundary delimiter (paper Fig. 2)
};

/// Printable mnemonic, e.g. "add".
[[nodiscard]] std::string_view opName(OpKind k);

/// Number of value operands the op consumes.
[[nodiscard]] int opArity(OpKind k);

/// True when the op produces a result value.
[[nodiscard]] bool opHasResult(OpKind k);

/// True for ops that cost no functional unit and no time: constant shifts,
/// width changes, constants (wired), and nops. The paper relies on this:
/// "Since the shift operation is free, ... 10 control steps" (Fig. 2).
[[nodiscard]] bool opIsFree(OpKind k);

/// True when operands can be swapped without changing the result.
[[nodiscard]] bool opIsCommutative(OpKind k);

/// True for comparison ops (1-bit result).
[[nodiscard]] bool opIsCompare(OpKind k);

/// True for side-effecting sinks (StoreVar / WritePort).
[[nodiscard]] bool opIsSink(OpKind k);

/// True when the op result depends only on its operands/imm (candidate for
/// common-subexpression elimination and constant folding).
[[nodiscard]] bool opIsPure(OpKind k);

}  // namespace mphls
