#include "estim/estimate.h"

#include <algorithm>
#include <vector>

namespace mphls {

AreaEstimate estimateArea(const RtlDesign& d, const EncodedFsm& fsm,
                          double wiringFactor) {
  AreaEstimate a;
  a.wiringFactor = wiringFactor;
  for (const FuInstance& fu : d.binding.fus)
    a.fuArea += d.lib.component(fu.comp).area(fu.width);
  for (int r = 0; r < d.regs.numRegs; ++r)
    a.regArea += d.lib.registerArea(d.regs.regWidth[(std::size_t)r]);
  a.muxArea = d.ic.muxArea;
  a.busArea = d.ic.busArea;
  a.controlArea = fsm.minimizedLogic.plaArea() +
                  d.lib.registerArea(fsm.stateBits);
  return a;
}

namespace {

// Per-FU arrival memo sentinels.
constexpr double kUnset = -1.0;
constexpr double kInProgress = -2.0;

double fuOutputArrival(const RtlDesign& d, const CtrlState& st, int f,
                       std::vector<double>& memo);

/// Arrival time of datapath source `s` at its consumer in state `st`.
/// Registers, input ports and constants launch at the clock edge (0);
/// free wiring transforms add nothing; a functional-unit output recurses
/// through the operand legs the state actually selects.
double sourceArrival(const RtlDesign& d, const CtrlState& st, const Source& s,
                     std::vector<double>& memo) {
  return s.kind == Source::Kind::Fu ? fuOutputArrival(d, st, s.id, memo) : 0.0;
}

/// Per-stage combinational delay of multicycle unit `f` delivering its
/// result in state `st`: find the issue action in the same block whose
/// span completes here. Falls back to the full component delay when no
/// issue action matches (conservative; only possible on corrupt input).
double completionStageDelay(const RtlDesign& d, const CtrlState& st, int f) {
  const FuInstance& fu = d.binding.fus[(std::size_t)f];
  const double full = d.lib.component(fu.comp).delay(fu.width);
  for (const CtrlState& is : d.ctrl.states) {
    if (is.block != st.block || is.step >= st.step) continue;
    for (const FuAction& fa : is.fuActions)
      if (fa.fu == f && fa.cycles > 1 && is.step + fa.cycles - 1 == st.step)
        return full / fa.cycles;
  }
  return full;
}

/// Arrival time of functional-unit `f`'s output in state `st`. When the
/// state issues an operation on `f`, that is the worst selected operand
/// leg (source arrival + input-mux delay) plus the unit's combinational
/// delay — spread over its span for a multicycle issue. When the state
/// does not drive `f`, the unit is delivering a previously issued
/// multicycle result and contributes only its final internal stage.
double fuOutputArrival(const RtlDesign& d, const CtrlState& st, int f,
                       std::vector<double>& memo) {
  if (f < 0 || (std::size_t)f >= d.binding.fus.size()) return 0.0;
  if (memo[(std::size_t)f] >= 0) return memo[(std::size_t)f];
  // A combinational cycle through FU outputs cannot occur in a scheduled
  // design (a consumer FU issues the step after delivery); cut the
  // recursion defensively so corrupt inputs cannot loop.
  if (memo[(std::size_t)f] == kInProgress) return 0.0;
  memo[(std::size_t)f] = kInProgress;

  const FuAction* act = nullptr;
  for (const FuAction& fa : st.fuActions)
    if (fa.fu == f) act = &fa;

  double arrival;
  if (act == nullptr) {
    arrival = completionStageDelay(d, st, f);
  } else {
    const FuInstance& fu = d.binding.fus[(std::size_t)f];
    double in = 0;
    for (int p = 0; p < 3; ++p) {
      if (act->muxSel[p] < 0) continue;
      const MuxSpec& m = d.ic.fuInput[(std::size_t)f][(std::size_t)p];
      if (act->muxSel[p] >= m.legs()) continue;  // corrupt; checked elsewhere
      in = std::max(in,
                    sourceArrival(d, st, m.sources[(std::size_t)act->muxSel[p]],
                                  memo) +
                        d.lib.muxDelay(m.legs()));
    }
    // A multicycle unit spreads its combinational depth over its span.
    arrival = in + d.lib.component(fu.comp).delay(fu.width) /
                       std::max(act->cycles, 1);
  }
  memo[(std::size_t)f] = arrival;
  return arrival;
}

/// States reachable from the controller's initial state. Unreachable
/// states never execute, so their (would-be) paths do not constrain the
/// clock.
std::vector<char> reachableStates(const Controller& ctrl) {
  std::vector<char> seen(ctrl.states.size(), 0);
  std::vector<std::size_t> work;
  auto visit = [&](StateId s) {
    if (s.valid() && s.index() < seen.size() && !seen[s.index()]) {
      seen[s.index()] = 1;
      work.push_back(s.index());
    }
  };
  visit(ctrl.initial);
  while (!work.empty()) {
    const CtrlState& st = ctrl.states[work.back()];
    work.pop_back();
    visit(st.next);
    visit(st.nextTaken);
    visit(st.nextNot);
  }
  return seen;
}

}  // namespace

// Path-accurate per-state register-to-register timing: for every capture
// point the state enables (register load, output-port write, FSM
// next-state logic, the internal stage boundary of a multicycle issue)
// trace the actual source cone — launch, input mux, functional unit,
// chained free wiring, destination mux, setup — rather than pairing the
// worst FU path with the worst destination mux regardless of whether any
// state connects them. The sta engine (src/sta/) re-derives the same
// quantity over an explicit timing graph; check_timing cross-validates
// the two on every checked synthesis.
TimingEstimate estimateTiming(const RtlDesign& d) {
  TimingEstimate t;
  const double setup = d.lib.registerSetupDelay();
  const std::vector<char> reach = reachableStates(d.ctrl);
  for (const CtrlState& st : d.ctrl.states) {
    if (!reach[st.id.index()]) continue;
    std::vector<double> memo(d.binding.fus.size(), kUnset);
    // The FSM state register itself loads every cycle.
    double stateDelay = setup;
    if (st.conditional)
      stateDelay = std::max(stateDelay,
                            sourceArrival(d, st, st.cond, memo) + setup);
    for (const RegAction& ra : st.regActions) {
      if (ra.reg < 0 || (std::size_t)ra.reg >= d.ic.regInput.size()) continue;
      const MuxSpec& m = d.ic.regInput[(std::size_t)ra.reg];
      if (ra.muxSel < 0 || ra.muxSel >= m.legs()) continue;
      stateDelay = std::max(
          stateDelay,
          sourceArrival(d, st, m.sources[(std::size_t)ra.muxSel], memo) +
              d.lib.muxDelay(m.legs()) + setup);
    }
    for (const PortAction& pa : st.portActions) {
      if (pa.port < 0 || (std::size_t)pa.port >= d.ic.outPortInput.size())
        continue;
      const MuxSpec& m = d.ic.outPortInput[(std::size_t)pa.port];
      if (pa.muxSel < 0 || pa.muxSel >= m.legs()) continue;
      stateDelay = std::max(
          stateDelay,
          sourceArrival(d, st, m.sources[(std::size_t)pa.muxSel], memo) +
              d.lib.muxDelay(m.legs()) + setup);
    }
    // A multicycle issue latches its first internal stage this cycle.
    for (const FuAction& fa : st.fuActions)
      if (fa.cycles > 1)
        stateDelay = std::max(stateDelay,
                              fuOutputArrival(d, st, fa.fu, memo) + setup);
    if (stateDelay > t.cycleTime) {
      t.cycleTime = stateDelay;
      t.criticalState = (int)st.id.get();
    }
  }
  // Bus-style: replace the widest mux with the bus propagation delay.
  double maxBusDelay = 0;
  if (d.ic.numBuses > 0) {
    // Approximate: the busiest bus drives the cycle.
    std::vector<int> sourcesPerBus((std::size_t)d.ic.numBuses, 0);
    for (std::size_t tix = 0; tix < d.ic.transfers.size(); ++tix)
      sourcesPerBus[(std::size_t)d.ic.busOfTransfer[tix]] += 1;
    for (int n : sourcesPerBus)
      maxBusDelay = std::max(maxBusDelay, d.lib.busDelay(n));
  }
  double worstFu = 0;
  for (const FuInstance& fu : d.binding.fus)
    worstFu = std::max(worstFu, d.lib.component(fu.comp).delay(fu.width));
  t.busCycleTime = maxBusDelay + worstFu + d.lib.registerSetupDelay();
  return t;
}

}  // namespace mphls
