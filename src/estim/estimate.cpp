#include "estim/estimate.h"

#include <algorithm>

namespace mphls {

AreaEstimate estimateArea(const RtlDesign& d, const EncodedFsm& fsm,
                          double wiringFactor) {
  AreaEstimate a;
  a.wiringFactor = wiringFactor;
  for (const FuInstance& fu : d.binding.fus)
    a.fuArea += d.lib.component(fu.comp).area(fu.width);
  for (int r = 0; r < d.regs.numRegs; ++r)
    a.regArea += d.lib.registerArea(d.regs.regWidth[(std::size_t)r]);
  a.muxArea = d.ic.muxArea;
  a.busArea = d.ic.busArea;
  a.controlArea = fsm.minimizedLogic.plaArea() +
                  d.lib.registerArea(fsm.stateBits);
  return a;
}

TimingEstimate estimateTiming(const RtlDesign& d) {
  TimingEstimate t;
  for (const CtrlState& st : d.ctrl.states) {
    double stateDelay = 0;
    for (const FuAction& fa : st.fuActions) {
      const FuInstance& fu = d.binding.fus[(std::size_t)fa.fu];
      double inMux = 0;
      for (int p = 0; p < 3; ++p) {
        if (fa.muxSel[p] < 0) continue;
        inMux = std::max(
            inMux,
            d.lib.muxDelay(
                d.ic.fuInput[(std::size_t)fa.fu][(std::size_t)p].legs()));
      }
      // A multicycle unit spreads its combinational depth over its span.
      double delay = inMux + d.lib.component(fu.comp).delay(fu.width) /
                                 std::max(fa.cycles, 1);
      stateDelay = std::max(stateDelay, delay);
    }
    // Destination mux in front of the written registers extends the path.
    double destMux = 0;
    for (const RegAction& ra : st.regActions)
      destMux = std::max(
          destMux, d.lib.muxDelay(d.ic.regInput[(std::size_t)ra.reg].legs()));
    stateDelay += destMux + d.lib.registerSetupDelay();
    if (stateDelay > t.cycleTime) {
      t.cycleTime = stateDelay;
      t.criticalState = (int)st.id.get();
    }
  }
  // Bus-style: replace the widest mux with the bus propagation delay.
  double maxBusDelay = 0;
  if (d.ic.numBuses > 0) {
    // Approximate: the busiest bus drives the cycle.
    std::vector<int> sourcesPerBus((std::size_t)d.ic.numBuses, 0);
    for (std::size_t tix = 0; tix < d.ic.transfers.size(); ++tix)
      sourcesPerBus[(std::size_t)d.ic.busOfTransfer[tix]] += 1;
    for (int n : sourcesPerBus)
      maxBusDelay = std::max(maxBusDelay, d.lib.busDelay(n));
  }
  double worstFu = 0;
  for (const FuInstance& fu : d.binding.fus)
    worstFu = std::max(worstFu, d.lib.component(fu.comp).delay(fu.width));
  t.busCycleTime = maxBusDelay + worstFu + d.lib.registerSetupDelay();
  return t;
}

}  // namespace mphls
