// Area and cycle-time estimation (Section 4, "integrating levels of
// design": "to make realistic evaluations of design tradeoffs at the
// algorithmic and register transfer levels, it is necessary to be able to
// anticipate what the lower level tools will do. Estimation of performance
// and area at the layout level is performed by BUD").
//
// The models are deliberately simple and library-driven: component areas
// from the module library, storage and mux costs from the technology
// parameters, a BUD-style wiring overhead factor, and a PLA model for the
// controller. Cycle time is the worst per-state register-to-register path,
// traced capture-point by capture-point through the sources each state
// actually selects: input mux, functional unit, wiring transforms (free),
// destination mux, register setup. The sta engine (src/sta/) re-derives
// the same number over an explicit timing graph and the two are
// cross-validated on every checked synthesis.
#pragma once

#include "ctrl/encode.h"
#include "rtl/design.h"

namespace mphls {

struct AreaEstimate {
  double fuArea = 0;
  double regArea = 0;
  double muxArea = 0;       ///< mux-style interconnect
  double busArea = 0;       ///< bus-style alternative for the same transfers
  double controlArea = 0;   ///< minimized PLA of the hardwired controller
  double wiringFactor = 0;  ///< BUD-style overhead applied in total()

  /// Total with mux-style interconnect.
  [[nodiscard]] double total() const {
    return (fuArea + regArea + muxArea + controlArea) * (1.0 + wiringFactor);
  }
  /// Total with bus-style interconnect.
  [[nodiscard]] double totalBus() const {
    return (fuArea + regArea + busArea + controlArea) * (1.0 + wiringFactor);
  }
};

struct TimingEstimate {
  double cycleTime = 0;       ///< worst state's register-to-register delay
  double busCycleTime = 0;    ///< same, bus-style interconnect
  int criticalState = -1;     ///< state achieving cycleTime
};

[[nodiscard]] AreaEstimate estimateArea(const RtlDesign& design,
                                        const EncodedFsm& fsm,
                                        double wiringFactor = 0.15);

[[nodiscard]] TimingEstimate estimateTiming(const RtlDesign& design);

/// A point in the design space: static latency (control steps for one
/// pass), estimated clock period and area.
struct DesignPoint {
  int latencySteps = 0;
  double cycleTime = 0;
  double area = 0;

  [[nodiscard]] double executionTime() const {
    return latencySteps * cycleTime;
  }
  /// Area-time product, the classic quality figure.
  [[nodiscard]] double areaTime() const { return area * executionTime(); }
};

}  // namespace mphls
