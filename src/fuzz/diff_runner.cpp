#include "fuzz/diff_runner.h"

#include <cmath>
#include <exception>
#include <sstream>

#include "alloc/interconnect.h"
#include "core/frontend_cache.h"
#include "check/check.h"
#include "ctrl/fsm.h"
#include "fuzz/bdl_gen.h"
#include "ir/deps.h"
#include "ir/interp.h"
#include "lang/frontend.h"
#include "opt/pass.h"
#include "rtl/rtlsim.h"
#include "sta/sta.h"

namespace mphls::fuzz {

namespace {

std::string_view regMethodName(RegAllocMethod m) {
  switch (m) {
    case RegAllocMethod::LeftEdge: return "leftedge";
    case RegAllocMethod::Clique: return "clique";
    case RegAllocMethod::Naive: return "naive";
  }
  return "?";
}

std::string_view optLevelName(OptLevel o) {
  switch (o) {
    case OptLevel::None: return "none";
    case OptLevel::Standard: return "standard";
    case OptLevel::Aggressive: return "aggressive";
  }
  return "?";
}

std::string describeMismatch(
    const std::map<std::string, std::uint64_t>& want,
    const std::map<std::string, std::uint64_t>& got,
    const std::map<std::string, std::uint64_t>& inputs) {
  std::ostringstream oss;
  oss << "output mismatch on";
  for (const auto& [k, v] : inputs) oss << " " << k << "=" << v;
  oss << ":";
  for (const auto& [k, v] : want) oss << " " << k << " behavioral=" << v;
  for (const auto& [k, v] : got) oss << " " << k << " rtl=" << v;
  if (got.size() != want.size())
    oss << " (written-output sets differ: behavioral " << want.size()
        << ", rtl " << got.size() << ")";
  return oss.str();
}

}  // namespace

std::string MatrixPoint::label() const {
  std::ostringstream oss;
  oss << "sched=" << schedulerName(sched) << " fu=" << fuAllocMethodName(fu)
      << " reg=" << regMethodName(reg) << " enc=" << stateEncodingName(enc)
      << " opt=" << optLevelName(opt) << " narrow=" << (narrow ? 1 : 0)
      << " lat=" << (multicycle ? "multi" : "unit") << " fus=" << fus;
  return oss.str();
}

SynthesisOptions MatrixPoint::toOptions() const {
  SynthesisOptions so;
  so.scheduler = sched;
  so.fuMethod = fu;
  so.regMethod = reg;
  so.encoding = enc;
  so.opt = opt;
  so.resources = ResourceLimits::universalSet(fus);
  so.latencies =
      multicycle ? OpLatencyModel::multiCycle() : OpLatencyModel::unit();
  so.check = true;
  // The runner applies optimization and narrowing itself (through
  // FrontendCache and an explicit pass run) so narrowed IR is shared
  // between the points that want it; the Synthesizer only sees the
  // backend stages.
  so.narrow = false;
  return so;
}

FuzzMatrix FuzzMatrix::quick() {
  FuzzMatrix m;
  m.schedulers = {SchedulerKind::List};
  m.allocators = {{FuAllocMethod::GreedyLocal, RegAllocMethod::LeftEdge}};
  m.encodings = {StateEncoding::Binary};
  m.optLevels = {OptLevel::Standard};
  m.narrows = {false, true};
  m.multicycles = {false};
  m.fuLimits = {2};
  return m;
}

FuzzMatrix FuzzMatrix::standard() {
  FuzzMatrix m;
  m.schedulers = {SchedulerKind::List, SchedulerKind::Asap,
                  SchedulerKind::ForceDirected};
  m.allocators = {{FuAllocMethod::GreedyLocal, RegAllocMethod::LeftEdge},
                  {FuAllocMethod::Clique, RegAllocMethod::Clique}};
  m.encodings = {StateEncoding::Binary, StateEncoding::OneHot};
  m.optLevels = {OptLevel::Standard};
  m.narrows = {false, true};
  m.multicycles = {false};
  m.fuLimits = {2};
  return m;
}

FuzzMatrix FuzzMatrix::full() {
  FuzzMatrix m;
  m.schedulers = {SchedulerKind::List,         SchedulerKind::Asap,
                  SchedulerKind::ForceDirected, SchedulerKind::Serial,
                  SchedulerKind::Freedom,       SchedulerKind::BranchBound,
                  SchedulerKind::Transform};
  m.allocators = {{FuAllocMethod::GreedyLocal, RegAllocMethod::LeftEdge},
                  {FuAllocMethod::Clique, RegAllocMethod::Clique},
                  {FuAllocMethod::InterconnectBlind, RegAllocMethod::Naive}};
  m.encodings = {StateEncoding::Binary, StateEncoding::Gray,
                 StateEncoding::OneHot};
  m.optLevels = {OptLevel::Standard, OptLevel::Aggressive};
  m.narrows = {false, true};
  m.multicycles = {false, true};
  m.fuLimits = {2};
  return m;
}

bool FuzzMatrix::parse(const std::string& name, FuzzMatrix& out) {
  if (name == "quick") out = quick();
  else if (name == "standard") out = standard();
  else if (name == "full") out = full();
  else return false;
  return true;
}

std::vector<MatrixPoint> FuzzMatrix::points() const {
  std::vector<MatrixPoint> pts;
  for (SchedulerKind s : schedulers)
    for (const auto& [fu, reg] : allocators)
      for (StateEncoding e : encodings)
        for (OptLevel o : optLevels)
          for (bool n : narrows)
            for (bool mc : multicycles)
              for (int f : fuLimits) {
                if (mc && s == SchedulerKind::ForceDirected) continue;
                MatrixPoint p;
                p.sched = s;
                p.fu = fu;
                p.reg = reg;
                p.enc = e;
                p.opt = o;
                p.narrow = n;
                p.multicycle = mc;
                p.fus = f;
                pts.push_back(p);
              }
  return pts;
}

bool parseInjectedBug(const std::string& name, InjectedBug& out) {
  if (name == "mul") out = InjectedBug::MulToAdd;
  else if (name == "sched") out = InjectedBug::ScheduleShift;
  else if (name == "bind") out = InjectedBug::SwappedBinding;
  else return false;
  return true;
}

int injectMulToAdd(Function& fn) {
  int rewritten = 0;
  for (const Block& blk : fn.blocks())
    for (OpId oid : blk.ops)
      if (fn.op(oid).kind == OpKind::Mul) {
        fn.op(oid).kind = OpKind::Add;
        ++rewritten;
      }
  return rewritten;
}

int injectScheduleShift(RtlDesign& d, const OpLatencyModel& lat) {
  const Function& fn = d.fn;
  for (const Block& blk : fn.blocks()) {
    BlockSchedule& bs = d.sched.of(blk.id);
    const std::vector<int>& fuOf = d.binding.fuOfOp[blk.id.index()];
    for (std::size_t i = 0; i < blk.ops.size(); ++i) {
      const Op& o = fn.op(blk.ops[i]);
      int f = fuOf[i];
      if (f < 0 || lat.of(o.kind) != 1) continue;
      int s = bs.step[i];
      if (s < 1) continue;
      // The result must be latched into a register: consumers then read
      // the (now wrong) register instead of a no-longer-active unit
      // output, so the mutated design still executes end to end.
      if (!o.result.valid() ||
          d.lifetimes.itemOfValue[o.result.index()] < 0)
        continue;
      // The unit must be idle in the destination step.
      bool busy = false;
      for (std::size_t j = 0; j < blk.ops.size() && !busy; ++j) {
        if (j == i || fuOf[j] != f) continue;
        int js = bs.step[j];
        if (js <= s - 1 && s - 1 <= js + lat.of(fn.op(blk.ops[j]).kind) - 1)
          busy = true;
      }
      if (busy) continue;
      // Operands must be stable wiring (registers, ports, constants), and
      // at least one must read a register whose producing operation
      // completes exactly in step s-1: issuing in s-1 then latches the
      // register's previous contents instead of the fresh value.
      bool wired = true, stale = false;
      for (std::size_t a = 0; a < o.args.size() && wired; ++a) {
        Source src =
            operandSource(fn, d.lifetimes, d.regs, blk.id, i, a);
        if (src.kind == Source::Kind::Fu) {
          wired = false;
          break;
        }
        if (src.kind != Source::Kind::Reg) continue;
        ValueId root = rootValue(fn, o.args[a]);
        const Op& def = fn.defOf(root);
        if (def.isFree() || def.kind == OpKind::LoadVar) continue;
        for (std::size_t j = 0; j < blk.ops.size(); ++j)
          if (blk.ops[j] == def.id &&
              bs.step[j] + lat.of(def.kind) - 1 == s - 1)
            stale = true;
      }
      if (!wired || !stale) continue;
      bs.step[i] -= 1;
      d.ctrl = buildController(fn, d.sched, d.lifetimes, d.regs, d.binding,
                               d.ic, lat);
      return 1;
    }
  }
  return 0;
}

int injectSwappedBinding(RtlDesign& d, const OpLatencyModel& lat) {
  const Function& fn = d.fn;
  for (const Block& blk : fn.blocks()) {
    const std::vector<int>& fuOf = d.binding.fuOfOp[blk.id.index()];
    for (std::size_t i = 0; i < blk.ops.size(); ++i) {
      const Op& o = fn.op(blk.ops[i]);
      if (fuOf[i] < 0 || o.args.size() != 2) continue;
      if (opIsCommutative(o.kind) || o.kind == OpKind::Select) continue;
      if (!o.result.valid()) continue;
      Source sa = operandSource(fn, d.lifetimes, d.regs, blk.id, i, 0);
      Source sb = operandSource(fn, d.lifetimes, d.regs, blk.id, i, 1);
      // Identical sources would make the swap a no-op; same-step unit
      // outputs are left alone to keep the rebuilt wiring well-formed.
      if (sa == sb || sa.kind == Source::Kind::Fu ||
          sb.kind == Source::Kind::Fu)
        continue;
      std::vector<bool>& sw = d.binding.swappedOfOp[blk.id.index()];
      sw[i] = !sw[i];
      d.ic = buildInterconnect(fn, d.sched, d.lifetimes, d.regs, d.binding,
                               d.lib, lat);
      d.ctrl = buildController(fn, d.sched, d.lifetimes, d.regs, d.binding,
                               d.ic, lat);
      return 1;
    }
  }
  return 0;
}

std::vector<MatrixPoint> ProgramVerdict::failingPoints() const {
  std::vector<MatrixPoint> pts;
  for (const PointFailure& f : failures) {
    bool seen = false;
    for (const MatrixPoint& p : pts)
      if (p.label() == f.point.label()) {
        seen = true;
        break;
      }
    if (!seen) pts.push_back(f.point);
  }
  return pts;
}

ProgramVerdict runSource(const std::string& source, std::uint64_t seed,
                         const DiffOptions& options) {
  ProgramVerdict v;
  v.seed = seed;

  // Golden behavior: the interpreter on the raw, unoptimized compile.
  DiagEngine diags;
  auto golden = compileBdl(source, diags, options.top);
  if (!golden) {
    v.failures.push_back({MatrixPoint{}, "compile", diags.summary(), -1});
    return v;
  }
  v.compiled = true;

  std::vector<std::string> names;
  for (const Port& p : golden->ports())
    if (p.isInput) names.push_back(p.name);

  // Per-program engine options: mix the program seed into the sampling
  // stream so "2% cross-checks" draws differently (but reproducibly) for
  // every program.
  vm::EngineOptions eng = options.engine;
  eng.seed ^= seed * 0x9e3779b97f4a7c15ull;

  std::vector<std::map<std::string, std::uint64_t>> trialIns, goldenOuts;
  vm::BehavSim gi(*golden, eng);
  for (int t = 0; t < options.trials; ++t) {
    auto in = randomInputs(names, seed, t);
    ExecResult r;
    try {
      r = gi.run(in, options.maxBlockExecs);
    } catch (const vm::DivergenceError& e) {
      v.failures.push_back(
          {MatrixPoint{}, "vm-divergence-behav", e.what(), t});
      return v;
    }
    if (!r.finished) {
      v.failures.push_back({MatrixPoint{}, "nonterminating",
                            "behavioral execution hit the block budget",
                            t});
      return v;
    }
    trialIns.push_back(std::move(in));
    goldenOuts.push_back(std::move(r.outputs));
  }

  // Narrowed IR is shared across the points that request it, keyed by opt
  // level (narrowing runs after the optimization pipeline).
  std::map<std::pair<OptLevel, bool>, std::shared_ptr<const Function>>
      fronts;
  auto frontendFor = [&](const MatrixPoint& p) {
    auto key = std::make_pair(p.opt, p.narrow);
    auto it = fronts.find(key);
    if (it != fronts.end()) return it->second;
    std::shared_ptr<const Function> fn =
        FrontendCache::global().get(source, options.top, p.opt);
    if (p.narrow) {
      auto narrowed = std::make_shared<Function>(fn->clone());
      PassManager pm;
      pm.add(createNarrowWidthsPass());
      pm.run(*narrowed);
      fn = std::move(narrowed);
    }
    fronts.emplace(key, fn);
    return fn;
  };

  for (const MatrixPoint& p : options.points) {
    auto fail = [&](const std::string& kind, const std::string& detail,
                    int trial = -1) {
      v.failures.push_back({p, kind, detail, trial});
    };
    try {
      Synthesizer synth(p.toOptions());
      std::shared_ptr<const Function> base = frontendFor(p);
      Function work = base->clone();
      if (options.inject == InjectedBug::MulToAdd) injectMulToAdd(work);
      if (options.preBackend) options.preBackend(work, p);
      SynthesisResult r = synth.synthesizeOptimized(work);
      OpLatencyModel lat = p.multicycle ? OpLatencyModel::multiCycle()
                                        : OpLatencyModel::unit();
      if (options.inject == InjectedBug::ScheduleShift)
        injectScheduleShift(r.design, lat);
      if (options.inject == InjectedBug::SwappedBinding)
        injectSwappedBinding(r.design, lat);
      if (options.postSynthesis) options.postSynthesis(r, p);
      ++v.pointsRun;

      if (options.check) {
        // STA oracle, before the structural checks so its failures keep
        // their own kinds: the timing engine must not crash on any
        // generated design, must close timing at its own estimated clock,
        // and must agree with the estimator it cross-validates.
        bool staFailed = false;
        try {
          sta::StaResult sr = sta::runSta(r.design);
          if (std::fabs(sr.cycleTime - sr.estimatedCycleTime) > 1e-6) {
            std::ostringstream oss;
            oss << "STA cycle time " << sr.cycleTime
                << " != estimateTiming " << sr.estimatedCycleTime;
            fail("sta-divergence", oss.str());
            staFailed = true;
          } else if (sr.worstSlack < -1e-9 || sr.combLoop) {
            fail("sta-negative-slack",
                 sr.combLoop ? "combinational loop in timing graph"
                             : sr.paths.empty()
                                   ? "negative slack"
                                   : sr.paths.front().describe());
            staFailed = true;
          }
        } catch (const std::exception& e) {
          fail("sta-crash", e.what());
          staFailed = true;
        }
        if (staFailed) {
          if (options.stopAtFirstFailure) return v;
          continue;
        }

        CheckOptions co;
        co.resources = p.resourceLimited()
                           ? ResourceLimits::universalSet(p.fus)
                           : ResourceLimits::unlimited();
        co.latencies = p.multicycle ? OpLatencyModel::multiCycle()
                                    : OpLatencyModel::unit();
        // The oracle above already ran the timing lint's substance with
        // per-kind reporting; skip the duplicate inside checkDesign.
        co.timing = false;
        CheckReport rep = checkDesign(r.design, co);
        if (!rep.clean()) {
          fail("check", rep.firstError());
          if (options.stopAtFirstFailure) return v;
          continue;
        }
      }

      // One engine per point: the bytecode program is compiled once here
      // and reused across all input trials (the compile cache).
      vm::RtlSim sim(r.design, eng);
      for (int t = 0; t < options.trials; ++t) {
        auto res = sim.run(trialIns[(std::size_t)t], options.maxCycles);
        ++v.simulations;
        if (!res.finished) {
          fail("rtl-timeout",
               "RTL simulation did not reach the halt state", t);
        } else if (res.outputs != goldenOuts[(std::size_t)t]) {
          fail("mismatch",
               describeMismatch(goldenOuts[(std::size_t)t], res.outputs,
                                trialIns[(std::size_t)t]),
               t);
        }
        if (!v.failures.empty() && options.stopAtFirstFailure) return v;
      }
    } catch (const vm::DivergenceError& e) {
      fail("vm-divergence", e.what());
      if (options.stopAtFirstFailure) return v;
    } catch (const std::exception& e) {
      // The synthesizer's own stage-exit timing check throws before this
      // runner's oracle gets a look; keep the per-kind classification.
      const std::string what = e.what();
      fail(what.find("timing closure check failed") != std::string::npos
               ? "sta-divergence"
               : "error",
           what);
      if (options.stopAtFirstFailure) return v;
    }
  }
  return v;
}

}  // namespace mphls::fuzz
