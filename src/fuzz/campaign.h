// Fuzz campaigns: seed-parallel differential sweeps with corpus capture,
// reduction and replay — the engine behind `mphls fuzz`.
//
// A campaign generates one program per seed in [seedBase, seedBase+seeds),
// runs each through the differential matrix (fuzz/diff_runner.h) on the
// shared work-stealing ThreadPool, then — sequentially, so results are
// deterministic at any job count — reduces every failing program against
// exactly its failing matrix points (fuzz/reduce.h) and saves raw plus
// minimized entries into the corpus directory (fuzz/corpus.h). Replay
// re-runs every saved corpus entry through the matrix, turning yesterday's
// failures into today's regression gate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bench_report.h"
#include "fuzz/bdl_gen.h"
#include "fuzz/diff_runner.h"
#include "fuzz/reduce.h"

namespace mphls::fuzz {

struct CampaignOptions {
  std::uint64_t seedBase = 1;
  int seeds = 100;
  /// Worker threads: <= 0 one per hardware thread, 1 runs serially.
  int jobs = 1;
  GenOptions gen;
  DiffOptions diff;
  /// Delta-debug every failing program down to a minimal reproducer.
  bool reduce = false;
  int maxReduceAttempts = 600;
  /// Save failing (and minimized) programs here; empty disables saving.
  std::string corpusDir;
  /// Print a live one-line progress counter (seeds/sec, mismatches) to
  /// stderr, refreshed ~4x/sec and erased when the sweep ends. The CLI
  /// enables this only when stderr is a TTY. Read from the same
  /// obs::MetricsRegistry counters the campaign publishes.
  bool heartbeat = false;
};

struct FailureCase {
  ProgramVerdict verdict;
  std::string source;           ///< the failing program as generated
  std::string reducedSource;    ///< minimized program (when reduced)
  ReduceStats reduceStats;
  std::string corpusPath;       ///< where the raw entry was saved
  std::string reducedPath;      ///< where the minimized entry was saved
};

struct CampaignResult {
  int seeds = 0;
  int pointsPerProgram = 0;
  long pointsRun = 0;
  long simulations = 0;
  int failedPrograms = 0;
  long mismatches = 0, checkFailures = 0, errors = 0, other = 0;
  /// VM/interpreter disagreements ("vm-divergence*" failure kinds) —
  /// always 0 unless the bytecode VM itself miscompiles.
  long divergences = 0;
  /// Static-timing oracle failures ("sta-crash", "sta-negative-slack",
  /// "sta-divergence"): the STA engine crashed on a generated design,
  /// reported negative slack at its own estimated clock, or disagreed
  /// with estimateTiming.
  long staFailures = 0;
  std::vector<FailureCase> failures;
  double wallSeconds = 0;

  [[nodiscard]] bool clean() const { return failedPrograms == 0; }
};

/// Run a campaign. Deterministic per (seedBase, seeds, gen, diff) at any
/// `jobs` value: program generation is a pure function of the seed, the
/// matrix verdicts land in seed order, and reduction runs post-sweep on
/// the caller's thread.
[[nodiscard]] CampaignResult runCampaign(const CampaignOptions& options);

/// Replay every corpus entry under `dir` through the matrix. Entry order
/// (and hence output order) is the sorted filename order.
struct ReplayOutcome {
  std::string name;
  ProgramVerdict verdict;
};
struct ReplayResult {
  int entries = 0;
  int failed = 0;
  std::vector<ReplayOutcome> outcomes;

  [[nodiscard]] bool clean() const { return failed == 0; }
};
[[nodiscard]] ReplayResult replayCorpus(const std::string& dir,
                                        const DiffOptions& diff,
                                        int jobs = 1);

/// BenchReporter-style JSON summary of a campaign (schema documented in
/// README "Differential fuzzing").
[[nodiscard]] JsonValue campaignReport(const CampaignOptions& options,
                                       const CampaignResult& result,
                                       const std::string& matrixName);

}  // namespace mphls::fuzz
