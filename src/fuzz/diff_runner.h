// Differential co-simulation oracle for the fuzzer.
//
// For one BDL program, the runner establishes golden behavior by running
// the behavioral interpreter on the *unoptimized* compile (so optimizer
// bugs are caught, not baked into the oracle), then sweeps a configurable
// synthesis matrix — scheduler × allocator (FU + register method) ×
// controller style (state encoding) × {narrow on/off} × latency model —
// and for every matrix point:
//
//   1. synthesizes the design with the stage-exit checkers armed
//      (SynthesisOptions::check), sharing the frontend through
//      FrontendCache so the parse/optimize cost is paid once per
//      (program, opt level) rather than per point;
//   2. gates the finished design through the full checkDesign/lint pass;
//   3. co-simulates the RTL against the golden outputs on several input
//      patterns (all-zeros, all-ones, seeded random).
//
// Any disagreement — a mismatch, a check finding, a simulator that never
// halts, or an exception out of the pipeline — is recorded as a
// PointFailure naming the exact matrix point, which is what the reducer
// and the corpus replay key on.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/synthesizer.h"
#include "vm/sim_engine.h"

namespace mphls::fuzz {

/// One coordinate of the synthesis matrix.
struct MatrixPoint {
  SchedulerKind sched = SchedulerKind::List;
  FuAllocMethod fu = FuAllocMethod::GreedyLocal;
  RegAllocMethod reg = RegAllocMethod::LeftEdge;
  StateEncoding enc = StateEncoding::Binary;
  OptLevel opt = OptLevel::Standard;
  bool narrow = false;
  bool multicycle = false;
  int fus = 2;

  /// Stable human-readable coordinates, e.g.
  /// "sched=list fu=greedy reg=leftedge enc=binary opt=standard narrow=0
  ///  lat=unit fus=2".
  [[nodiscard]] std::string label() const;

  /// Synthesis options for this point (check armed, narrow handled by the
  /// runner itself so the narrowed IR is shared between points).
  [[nodiscard]] SynthesisOptions toOptions() const;

  /// Whether the schedule is produced under the resource limits (false
  /// for the time-constrained and trivially-serial schedulers).
  [[nodiscard]] bool resourceLimited() const {
    return sched != SchedulerKind::ForceDirected &&
           sched != SchedulerKind::Serial;
  }
};

/// An axis-product description of the matrix; points() expands it,
/// skipping invalid combinations (force-directed scheduling requires unit
/// latency).
struct FuzzMatrix {
  std::vector<SchedulerKind> schedulers;
  std::vector<std::pair<FuAllocMethod, RegAllocMethod>> allocators;
  std::vector<StateEncoding> encodings;
  std::vector<OptLevel> optLevels;
  std::vector<bool> narrows;
  std::vector<bool> multicycles;
  std::vector<int> fuLimits;

  /// 2 points: list scheduling, greedy/left-edge, binary, narrow off/on.
  [[nodiscard]] static FuzzMatrix quick();
  /// 24 points: {list, asap, force} × {greedy+leftedge, clique+clique} ×
  /// {binary, onehot} × narrow {off, on}.
  [[nodiscard]] static FuzzMatrix standard();
  /// The whole space: every scheduler, three allocator pairings, all three
  /// encodings, standard+aggressive optimization, narrow off/on, unit and
  /// multicycle latency models.
  [[nodiscard]] static FuzzMatrix full();

  /// Parse "quick" | "standard" | "full"; returns false on anything else.
  static bool parse(const std::string& name, FuzzMatrix& out);

  [[nodiscard]] std::vector<MatrixPoint> points() const;
};

/// What the runner injects — a seeded, deliberate miscompile used to prove
/// the oracles (co-simulation, the static checkers, and the `mphls prove`
/// equivalence engine) detect divergence and to exercise the reducer.
///
///   - MulToAdd mutates the IR handed to the backend: every multiply
///     becomes an add, so any program whose output depends on a product
///     mismatches.
///   - ScheduleShift mutates the finished design: one eligible operation
///     is issued a control step early, so it latches a stale register
///     value (a classic off-by-one scheduler bug).
///   - SwappedBinding mutates the finished design: one non-commutative
///     operation gets its operand wiring swapped (a classic binding bug).
enum class InjectedBug { None, MulToAdd, ScheduleShift, SwappedBinding };

/// Parse "mul" | "sched" | "bind"; returns false on anything else.
bool parseInjectedBug(const std::string& name, InjectedBug& out);

/// Rewrite every Mul op into Add; returns the number of ops rewritten.
int injectMulToAdd(Function& fn);

/// Move one operation one control step earlier and rebuild the controller.
/// The site is chosen so the mutated design still executes (its unit is
/// idle in the destination step, no same-step unit-output wiring breaks)
/// but reads at least one operand register before its producer's write
/// commits. Returns 1 when a site was mutated, 0 when none qualifies.
int injectScheduleShift(RtlDesign& d,
                        const OpLatencyModel& lat = OpLatencyModel::unit());

/// Flip the operand wiring of one non-commutative two-operand operation
/// and rebuild the interconnect and controller. Returns 1 when a site was
/// mutated, 0 when none qualifies.
int injectSwappedBinding(RtlDesign& d,
                         const OpLatencyModel& lat = OpLatencyModel::unit());

struct PointFailure {
  MatrixPoint point;
  std::string kind;    ///< "compile" | "nonterminating" | "check" |
                       ///< "mismatch" | "rtl-timeout" | "error" |
                       ///< "vm-divergence" | "vm-divergence-behav"
  std::string detail;
  int trial = -1;      ///< input-pattern index for co-simulation failures

  /// The point's label, or "" for the program-level kinds ("compile",
  /// "nonterminating", "vm-divergence-behav") where `point` is a
  /// meaningless default.
  [[nodiscard]] std::string pointLabel() const {
    if (kind == "compile" || kind == "nonterminating" ||
        kind == "vm-divergence-behav")
      return "";
    return point.label();
  }
};

struct ProgramVerdict {
  std::uint64_t seed = 0;
  bool compiled = false;
  int pointsRun = 0;       ///< points fully synthesized
  long simulations = 0;    ///< co-simulation trials executed
  std::vector<PointFailure> failures;

  [[nodiscard]] bool ok() const { return compiled && failures.empty(); }
  /// The distinct matrix points that failed (reduction re-checks only
  /// these, which keeps the shrink loop cheap and the failure focused).
  [[nodiscard]] std::vector<MatrixPoint> failingPoints() const;
};

struct DiffOptions {
  std::vector<MatrixPoint> points = FuzzMatrix::standard().points();
  int trials = 4;
  /// Run the full checkDesign/lint gate on every synthesized point.
  bool check = true;
  /// Stop at the first failing point/trial (used by the reducer, where
  /// only "still fails" matters, not the full failure inventory).
  bool stopAtFirstFailure = false;
  InjectedBug inject = InjectedBug::None;
  /// Test hooks: mutate the optimized IR before the backend (a synthetic
  /// miscompile), or the finished result before checking/simulation (a
  /// synthetic corrupted design).
  std::function<void(Function&, const MatrixPoint&)> preBackend;
  std::function<void(SynthesisResult&, const MatrixPoint&)> postSynthesis;
  std::string top;
  long maxBlockExecs = 100000;
  long maxCycles = 1000000;
  /// Simulation engine selection: the compiled bytecode VM (default), the
  /// tree-walking interpreters, or both with every run cross-checked. A
  /// VM/interpreter disagreement surfaces as a "vm-divergence" /
  /// "vm-divergence-behav" failure. The engine seed is mixed with the
  /// program seed so sampled cross-checks stay deterministic per program.
  vm::EngineOptions engine;
};

/// Run the full differential matrix over one program.
[[nodiscard]] ProgramVerdict runSource(const std::string& source,
                                       std::uint64_t seed,
                                       const DiffOptions& options);

}  // namespace mphls::fuzz
