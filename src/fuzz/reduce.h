// Test-case reduction for failing fuzz programs.
//
// Greedy delta debugging over the GenProgram tree: repeatedly try the
// smallest-description edits — delete a statement, hoist a block body into
// its parent, drop an else-branch, shrink a loop bound, replace an
// expression node by one of its children or by a constant, drop an unused
// declaration — and keep any edit after which the failure predicate still
// holds. The predicate re-renders and re-runs the candidate through the
// differential oracle, so the reducer needs no well-formedness invariants:
// a candidate that no longer compiles simply "no longer fails" and is
// rejected. Runs to a fixpoint (one full pass with no accepted edit) or
// until the predicate-call budget is exhausted. Fully deterministic: edits
// are enumerated in a fixed order.
#pragma once

#include <functional>

#include "fuzz/bdl_gen.h"

namespace mphls::fuzz {

/// Returns true while the candidate still exhibits the failure being
/// chased (e.g. "the differential matrix still reports a mismatch").
using FailPredicate = std::function<bool(const GenProgram&)>;

struct ReduceStats {
  int attempts = 0;       ///< predicate invocations
  int accepted = 0;       ///< edits kept
  std::size_t initialStmts = 0, finalStmts = 0;
  std::size_t initialBytes = 0, finalBytes = 0;
};

/// Shrink `program` while `stillFails` holds. If the input does not fail
/// the predicate, it is returned unchanged.
[[nodiscard]] GenProgram reduceProgram(const GenProgram& program,
                                       const FailPredicate& stillFails,
                                       ReduceStats* stats = nullptr,
                                       int maxAttempts = 2000);

}  // namespace mphls::fuzz
