// Simulation-throughput benchmark (`mphls bench --sim`): interpreter vs
// bytecode VM on every built-in design, at both levels (behavioral runs/sec
// and RTL cycles/sec), plus an end-to-end fuzz batch (full runSource over a
// fixed seed range, quick matrix) timed per engine. Batch sizes are
// auto-calibrated so each timed pass is long enough to measure, the
// reported rate is the best of `repeats` passes (the standard estimator on
// a noisy shared machine), and everything lands in BENCH_sim.json.
#pragma once

#include <string>

namespace mphls::fuzz {

struct SimBenchOptions {
  int repeats = 5;      ///< best-of-N timing passes per measurement
  std::string outDir;   ///< where BENCH_sim.json is written ("" = cwd)
  int fuzzSeeds = 12;   ///< seeds in the end-to-end fuzz batch
  bool quiet = false;
};

/// Run the suite and write BENCH_sim.json. Returns a process exit code
/// (non-zero only on I/O failure).
int runSimBenchSuite(const SimBenchOptions& options);

}  // namespace mphls::fuzz
