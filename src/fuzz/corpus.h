// Fuzz corpus management: failing programs (and their minimized forms)
// are saved as self-describing .bdl files whose metadata rides in comment
// lines, so every corpus entry is simultaneously a valid BDL compilation
// unit and a replayable record of what failed:
//
//   # mphls-fuzz seed: 1234
//   # mphls-fuzz kind: mismatch
//   # mphls-fuzz point: sched=list fu=greedy reg=leftedge ...
//   # mphls-fuzz note: output mismatch on in0=0 ...
//   proc fuzz(...) { ... }
//
// loadCorpus returns entries in filename order so replay runs — and the
// regression suite built on tests/fixtures/fuzz/ — are deterministic.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mphls::fuzz {

struct CorpusEntry {
  std::string name;        ///< file stem, e.g. "seed-000042"
  std::uint64_t seed = 0;
  std::string kind;        ///< "mismatch" | "check" | "error" | "fixture" ...
  std::string point;       ///< matrix-point label of the first failure
  std::string note;        ///< one-line failure description
  std::string source;      ///< the full file text (metadata comments + BDL)
};

/// Serialize an entry (metadata header + program text). Newlines inside
/// the note are flattened so the header stays line-oriented.
[[nodiscard]] std::string renderEntry(const CorpusEntry& entry,
                                      const std::string& program);

/// Parse an entry from file text. Unknown header keys are ignored;
/// `source` keeps the complete text (the header lines are BDL comments).
[[nodiscard]] CorpusEntry parseEntry(const std::string& text,
                                     const std::string& name);

/// Write `dir/name.bdl`, creating `dir` if needed. Returns the path, or
/// nullopt on I/O failure.
std::optional<std::string> saveEntry(const std::string& dir,
                                     const CorpusEntry& entry,
                                     const std::string& program);

/// Load every *.bdl under `dir` (non-recursive), sorted by filename.
[[nodiscard]] std::vector<CorpusEntry> loadCorpus(const std::string& dir);

}  // namespace mphls::fuzz
