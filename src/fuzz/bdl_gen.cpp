#include "fuzz/bdl_gen.h"

#include <algorithm>
#include <optional>
#include <string_view>

namespace mphls::fuzz {

// --------------------------------------------------------------- rendering

GenExpr GenExpr::makeConst(std::uint64_t v) {
  GenExpr e;
  e.kind = Kind::Const;
  e.value = v;
  return e;
}

GenExpr GenExpr::makeRef(std::string name) {
  GenExpr e;
  e.kind = Kind::Ref;
  e.name = std::move(name);
  return e;
}

void GenExpr::render(std::string& out) const {
  switch (kind) {
    case Kind::Const:
      out += std::to_string(value);
      break;
    case Kind::Ref:
      out += name;
      break;
    case Kind::Cast:
      out += op;
      out += '<';
      out += std::to_string(castWidth);
      out += ">(";
      kids[0].render(out);
      out += ')';
      break;
    case Kind::Binary:
      out += '(';
      kids[0].render(out);
      out += ' ';
      out += op;
      out += ' ';
      kids[1].render(out);
      out += ')';
      break;
    case Kind::Ternary:
      out += '(';
      kids[0].render(out);
      out += " ? ";
      kids[1].render(out);
      out += " : ";
      kids[2].render(out);
      out += ')';
      break;
  }
}

std::string GenExpr::str() const {
  std::string s;
  render(s);
  return s;
}

std::size_t GenExpr::size() const {
  std::size_t n = 1;
  for (const GenExpr& k : kids) n += k.size();
  return n;
}

void GenStmt::render(std::string& out, int depth) const {
  const std::string pad((std::size_t)(2 * depth + 2), ' ');
  switch (kind) {
    case Kind::Assign:
      out += pad + target + " = " + expr.str() + ";\n";
      break;
    case Kind::If:
      out += pad + "if " + expr.str() + " {\n";
      for (const GenStmt& s : body) s.render(out, depth + 1);
      if (!elseBody.empty()) {
        out += pad + "} else {\n";
        for (const GenStmt& s : elseBody) s.render(out, depth + 1);
      }
      out += pad + "}\n";
      break;
    case Kind::DoUntil:
      out += pad + "var " + counter + ": uint<" +
             std::to_string(counterWidth) + ">;\n";
      out += pad + counter + " = 0;\n";
      out += pad + "do {\n";
      for (const GenStmt& s : body) s.render(out, depth + 1);
      out += pad + "  " + counter + " = " + counter + " + 1;\n";
      out += pad + "} until (" + counter + " == " + std::to_string(trip) +
             ");\n";
      break;
    case Kind::While: {
      out += pad + "var " + counter + ": uint<" +
             std::to_string(counterWidth) + ">;\n";
      out += pad + counter + " = 0;\n";
      std::string guard =
          "(" + counter + " < " + std::to_string(trip) + ")";
      if (hasCond) guard = "(" + guard + " && " + expr.str() + ")";
      out += pad + "while " + guard + " {\n";
      for (const GenStmt& s : body) s.render(out, depth + 1);
      out += pad + "  " + counter + " = " + counter + " + 1;\n";
      out += pad + "}\n";
      break;
    }
  }
}

std::size_t GenStmt::size() const {
  std::size_t n = 1;
  for (const GenStmt& s : body) n += s.size();
  for (const GenStmt& s : elseBody) n += s.size();
  return n;
}

std::string GenProgram::render() const {
  std::string out = "proc " + procName + "(";
  bool first = true;
  for (const Decl& d : ins) {
    if (!first) out += ", ";
    first = false;
    out += "in " + d.name + ": uint<" + std::to_string(d.width) + ">";
  }
  for (const Decl& d : outs) {
    if (!first) out += ", ";
    first = false;
    out += "out " + d.name + ": uint<" + std::to_string(d.width) + ">";
  }
  out += ") {\n";
  for (const Decl& d : vars)
    out += "  var " + d.name + ": uint<" + std::to_string(d.width) + ">;\n";
  for (const GenStmt& s : stmts) s.render(out, 0);
  out += "}\n";
  return out;
}

std::vector<std::string> GenProgram::inputNames() const {
  std::vector<std::string> names;
  names.reserve(ins.size());
  for (const Decl& d : ins) names.push_back(d.name);
  return names;
}

std::size_t GenProgram::stmtCount() const {
  std::size_t n = 0;
  for (const GenStmt& s : stmts) n += s.size();
  return n;
}

// -------------------------------------------------------------- generation

namespace {

/// Bits needed to represent `v` (>= 1).
int bitsFor(std::uint64_t v) {
  int b = 1;
  while (v >>= 1) ++b;
  return b;
}

class ProgramGen {
 public:
  ProgramGen(std::uint64_t seed, const GenOptions& opt)
      : rng_(seed), opt_(opt) {}

  GenProgram generate() {
    GenProgram p;
    const int nIn = draw(opt_.minInputs, opt_.maxInputs);
    const int nOut = draw(opt_.minOutputs, opt_.maxOutputs);
    const int nVar = draw(opt_.minVars, opt_.maxVars);

    for (int i = 0; i < nIn; ++i)
      p.ins.push_back({"in" + std::to_string(i), randWidth()});
    for (int i = 0; i < nOut; ++i)
      p.outs.push_back({"out" + std::to_string(i), randWidth()});
    for (int i = 0; i < nVar; ++i)
      p.vars.push_back({"v" + std::to_string(i), randWidth()});

    // Initialization prologue: inputs are readable from the start; each
    // var and output becomes readable once assigned, so expressions draw
    // only from already-defined symbols.
    for (const auto& d : p.ins) readable_.push_back({d.name, d.width});
    for (const auto& d : p.vars) {
      GenStmt s;
      s.target = d.name;
      s.expr = expr(1).e;
      p.stmts.push_back(std::move(s));
      readable_.push_back({d.name, d.width});
      writable_.push_back(d.name);
    }
    for (const auto& d : p.outs) {
      GenStmt s;
      s.target = d.name;
      s.expr = expr(1).e;
      p.stmts.push_back(std::move(s));
      readable_.push_back({d.name, d.width});
      writable_.push_back(d.name);
    }

    const int nStmt = draw(opt_.minStmts, opt_.maxStmts);
    for (int i = 0; i < nStmt; ++i) p.stmts.push_back(stmt(0));
    return p;
  }

 private:
  /// An expression plus its inferred BDL width, tracked so casts can be
  /// emitted legally (zext/sext targets must be at least the operand
  /// width) without consulting the frontend. `cv` mirrors the frontend's
  /// literal-only constant folding: a folded subexpression lowers to a
  /// constant whose width comes from its value, not from its operands.
  struct WExpr {
    GenExpr e;
    int w = 1;
    std::optional<std::uint64_t> cv;
  };

  /// Mirror of the frontend's tryConstEval for binary operators: folds only
  /// when the result is representable (no overflow/underflow/div-by-zero).
  static std::optional<std::uint64_t> foldBin(const char* op,
                                              std::uint64_t a,
                                              std::uint64_t b) {
    const std::string_view o = op;
    if (o == "+") {
      const std::uint64_t r = a + b;
      return r >= a ? std::optional(r) : std::nullopt;
    }
    if (o == "-") return a >= b ? std::optional(a - b) : std::nullopt;
    if (o == "*") {
      if (a != 0 && b > ~0ull / a) return std::nullopt;
      return a * b;
    }
    if (o == "/") return b != 0 ? std::optional(a / b) : std::nullopt;
    if (o == "%") return b != 0 ? std::optional(a % b) : std::nullopt;
    if (o == "&") return a & b;
    if (o == "|") return a | b;
    if (o == "^") return a ^ b;
    if (o == "<<")
      return b < 64 && (a << b) >> b == a ? std::optional(a << b)
                                          : std::nullopt;
    if (o == ">>") return b < 64 ? std::optional(a >> b) : std::nullopt;
    if (o == "==") return a == b ? 1 : 0;
    if (o == "!=") return a != b ? 1 : 0;
    if (o == "<") return a < b ? 1 : 0;
    if (o == "<=") return a <= b ? 1 : 0;
    if (o == ">") return a > b ? 1 : 0;
    if (o == ">=") return a >= b ? 1 : 0;
    return std::nullopt;
  }

  Rng rng_;
  const GenOptions& opt_;
  std::vector<std::pair<std::string, int>> readable_;  ///< name, width
  std::vector<std::string> writable_;
  int loopCounter_ = 0;

  int draw(int lo, int hi) {
    if (hi <= lo) return lo;
    return lo + (int)rng_.below((std::size_t)(hi - lo + 1));
  }

  int randWidth() {
    return opt_.widths[rng_.below(opt_.widths.size())];
  }

  WExpr readable() {
    const auto& [name, w] = readable_[rng_.below(readable_.size())];
    return {GenExpr::makeRef(name), w, std::nullopt};
  }

  std::string writable() {
    return writable_[rng_.below(writable_.size())];
  }

  WExpr binary(const char* op, WExpr a, WExpr b, int width) {
    std::optional<std::uint64_t> cv;
    if (a.cv && b.cv) cv = foldBin(op, *a.cv, *b.cv);
    GenExpr e;
    e.kind = GenExpr::Kind::Binary;
    e.op = op;
    e.kids.push_back(std::move(a.e));
    e.kids.push_back(std::move(b.e));
    if (cv) return {std::move(e), bitsFor(*cv), cv};
    return {std::move(e), width, std::nullopt};
  }
  /// Arithmetic/logic combine: the frontend gives these max(widths)
  /// unless the whole subtree constant-folds.
  WExpr binArith(const char* op, WExpr a, WExpr b) {
    const int w = std::max(a.w, b.w);
    return binary(op, std::move(a), std::move(b), w);
  }

  WExpr expr(int depth) {
    if (depth >= opt_.maxExprDepth || rng_.chance(35)) {
      if (rng_.chance(30)) {
        const std::uint64_t v = rng_.below(1000);
        return {GenExpr::makeConst(v), bitsFor(v), v};
      }
      return readable();
    }
    // The operator mix: arithmetic, logic, shifts, div/mod, casts,
    // comparisons-under-ternary. Draw from a fixed table so the stream of
    // rng values (and hence the whole program) is a pure function of the
    // seed and options.
    switch (rng_.below(14)) {
      case 0: return binArith("+", expr(depth + 1), expr(depth + 1));
      case 1: return binArith("-", expr(depth + 1), expr(depth + 1));
      case 2:
        if (opt_.mul) return binArith("*", expr(depth + 1), expr(depth + 1));
        return binArith("+", expr(depth + 1), expr(depth + 1));
      case 3:
        if (opt_.divMod)
          return binArith("/", expr(depth + 1), expr(depth + 1));
        return binArith("-", expr(depth + 1), expr(depth + 1));
      case 4:
        if (opt_.divMod)
          return binArith("%", expr(depth + 1), expr(depth + 1));
        return binArith("^", expr(depth + 1), expr(depth + 1));
      case 5: return binArith("^", expr(depth + 1), expr(depth + 1));
      case 6: return binArith("&", expr(depth + 1), expr(depth + 1));
      case 7: return binArith("|", expr(depth + 1), expr(depth + 1));
      case 8:
        if (opt_.shifts) {
          // Constant shift: the result keeps the operand's width. A
          // literal amount >= the operand width is a compile error unless
          // the whole subtree folds, so clamp for non-constant operands.
          WExpr a = expr(depth + 1);
          const int w = a.w;
          std::uint64_t sh = 1 + rng_.below(3);
          if (!a.cv && (int)sh >= w) sh = (std::uint64_t)(w - 1);
          return binary(">>", std::move(a),
                        {GenExpr::makeConst(sh), bitsFor(sh), sh}, w);
        }
        return binArith("&", expr(depth + 1), expr(depth + 1));
      case 9:
        if (opt_.shifts) {
          // Variable shift amounts exercise the shifter FU; both levels
          // share evalPure so out-of-range amounts stay consistent.
          WExpr a = expr(depth + 1);
          const int w = a.w;
          if (rng_.chance(40))
            return binary(">>", std::move(a), readable(), w);
          std::uint64_t sh = 1 + rng_.below(3);
          if (!a.cv && (int)sh >= w) sh = (std::uint64_t)(w - 1);
          return binary("<<", std::move(a),
                        {GenExpr::makeConst(sh), bitsFor(sh), sh}, w);
        }
        return binArith("|", expr(depth + 1), expr(depth + 1));
      case 10:
        if (opt_.ternary) {
          GenExpr e;
          e.kind = GenExpr::Kind::Ternary;
          WExpr c = cond(depth);
          WExpr t = expr(depth + 1);
          WExpr f = expr(depth + 1);
          // Folds only when the condition AND the taken arm are literal.
          std::optional<std::uint64_t> cv;
          if (c.cv) cv = *c.cv ? t.cv : f.cv;
          const int w = cv ? bitsFor(*cv) : std::max(t.w, f.w);
          e.kids.push_back(std::move(c.e));
          e.kids.push_back(std::move(t.e));
          e.kids.push_back(std::move(f.e));
          return {std::move(e), w, cv};
        }
        return binArith("+", expr(depth + 1), expr(depth + 1));
      case 11:
      case 12:
        if (opt_.casts) {
          GenExpr e;
          e.kind = GenExpr::Kind::Cast;
          WExpr a = expr(depth + 1);
          const int pick = (int)rng_.below(3);
          const int chosen = randWidth();
          if (pick == 2) {
            // trunc accepts any target width (a wider trunc extends).
            e.op = "trunc";
            e.castWidth = chosen;
          } else {
            // zext/sext targets must not be narrower than the operand.
            e.op = pick == 0 ? "zext" : "sext";
            e.castWidth = std::max(chosen, a.w);
          }
          const int w = e.castWidth;
          e.kids.push_back(std::move(a.e));
          return {std::move(e), w, std::nullopt};
        }
        return binArith("-", expr(depth + 1), expr(depth + 1));
      default:
        return binArith("+", expr(depth + 1), expr(depth + 1));
    }
  }

  WExpr cond(int depth) {
    static const char* const cmps[] = {"!=", ">", "<", ">=", "<=", "=="};
    return binary(cmps[rng_.below(6)], expr(depth + 1), expr(depth + 1), 1);
  }

  GenStmt stmt(int depth) {
    const int roll = (int)rng_.below(100);
    if (roll < 55 || depth >= opt_.maxStmtDepth) {
      GenStmt s;
      s.target = writable();
      s.expr = expr(0).e;
      return s;
    }
    if (roll < 80) {
      GenStmt s;
      s.kind = GenStmt::Kind::If;
      s.expr = cond(0).e;
      const int n = draw(1, 2);
      for (int i = 0; i < n; ++i) s.body.push_back(stmt(depth + 1));
      if (rng_.chance(60))
        for (int i = 0; i < n; ++i) s.elseBody.push_back(stmt(depth + 1));
      return s;
    }
    GenStmt s;
    const bool useWhile = opt_.whileLoops && rng_.chance(40);
    s.kind = useWhile ? GenStmt::Kind::While : GenStmt::Kind::DoUntil;
    s.counter = "k" + std::to_string(loopCounter_++);
    // do-until bodies always run at least once, so the bound starts at 1;
    // while loops may draw a zero bound and never enter the body.
    s.trip = useWhile ? rng_.below((std::size_t)opt_.maxTrip + 1)
                      : 1 + rng_.below((std::size_t)opt_.maxTrip);
    if (useWhile && rng_.chance(40)) {
      s.hasCond = true;
      s.expr = cond(0).e;
    }
    const int n = draw(1, 2);
    for (int i = 0; i < n; ++i) s.body.push_back(stmt(depth + 1));
    return s;
  }
};

}  // namespace

GenProgram generateProgram(std::uint64_t seed, const GenOptions& options) {
  return ProgramGen(seed, options).generate();
}

std::map<std::string, std::uint64_t> randomInputs(
    const std::vector<std::string>& names, std::uint64_t seed, int trial) {
  Rng rng(seed ^ (0xD1B54A32D192ED03ull * (std::uint64_t)(trial + 1)));
  std::map<std::string, std::uint64_t> in;
  for (const auto& n : names) {
    std::uint64_t v = rng.next();
    if (trial == 0) v = 0;
    if (trial == 1) v = ~0ull;
    in[n] = v;
  }
  return in;
}

}  // namespace mphls::fuzz
