#include "fuzz/corpus.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace mphls::fuzz {

namespace {

constexpr const char* kTag = "# mphls-fuzz ";

std::string oneLine(std::string s) {
  for (char& c : s)
    if (c == '\n' || c == '\r') c = ' ';
  return s;
}

}  // namespace

std::string renderEntry(const CorpusEntry& entry,
                        const std::string& program) {
  std::ostringstream oss;
  oss << kTag << "seed: " << entry.seed << "\n";
  oss << kTag << "kind: " << oneLine(entry.kind) << "\n";
  if (!entry.point.empty())
    oss << kTag << "point: " << oneLine(entry.point) << "\n";
  if (!entry.note.empty())
    oss << kTag << "note: " << oneLine(entry.note) << "\n";
  oss << program;
  if (program.empty() || program.back() != '\n') oss << "\n";
  return oss.str();
}

CorpusEntry parseEntry(const std::string& text, const std::string& name) {
  CorpusEntry e;
  e.name = name;
  e.source = text;
  std::istringstream iss(text);
  std::string line;
  while (std::getline(iss, line)) {
    if (line.rfind(kTag, 0) != 0) continue;
    std::string rest = line.substr(std::string(kTag).size());
    auto colon = rest.find(':');
    if (colon == std::string::npos) continue;
    std::string key = rest.substr(0, colon);
    std::string val = rest.substr(colon + 1);
    if (!val.empty() && val[0] == ' ') val.erase(0, 1);
    if (key == "seed") e.seed = std::strtoull(val.c_str(), nullptr, 0);
    else if (key == "kind") e.kind = val;
    else if (key == "point") e.point = val;
    else if (key == "note") e.note = val;
  }
  return e;
}

std::optional<std::string> saveEntry(const std::string& dir,
                                     const CorpusEntry& entry,
                                     const std::string& program) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return std::nullopt;
  const std::string path =
      (std::filesystem::path(dir) / (entry.name + ".bdl")).string();
  std::ofstream out(path);
  if (!out) return std::nullopt;
  out << renderEntry(entry, program);
  return out ? std::optional<std::string>(path) : std::nullopt;
}

std::vector<CorpusEntry> loadCorpus(const std::string& dir) {
  std::vector<std::filesystem::path> files;
  std::error_code ec;
  for (const auto& de : std::filesystem::directory_iterator(dir, ec)) {
    if (!de.is_regular_file()) continue;
    if (de.path().extension() == ".bdl") files.push_back(de.path());
  }
  std::sort(files.begin(), files.end());

  std::vector<CorpusEntry> entries;
  for (const auto& f : files) {
    std::ifstream in(f);
    if (!in) continue;
    std::stringstream buf;
    buf << in.rdbuf();
    entries.push_back(parseEntry(buf.str(), f.stem().string()));
  }
  return entries;
}

}  // namespace mphls::fuzz
